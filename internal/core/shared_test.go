package core

import (
	"math"
	"reflect"
	"testing"

	"hbmvolt/internal/board"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

// sharedCfg is the shared-enumeration sweep the determinism tests pin:
// both paper patterns plus an address-dependent one, a sensitive and a
// quiet port.
func sharedCfg(b *board.Board, workers int) ReliabilityConfig {
	return ReliabilityConfig{
		Board:             b,
		Ports:             []hbm.PortID{5, 18, 25},
		Patterns:          []pattern.Pattern{pattern.AllOnes(), pattern.AllZeros(), pattern.Checkerboard()},
		Grid:              []float64{0.95, 0.91, 0.89, 0.87, 0.85},
		BatchSize:         3,
		Workers:           workers,
		SharedEnumeration: true,
	}
}

// TestSharedSweepBitIdenticalAcrossWorkers pins the shared mode's
// sharding contract at the acceptance worker counts: -j {1, 8} (and 2)
// produce bit-identical results, crashes included.
func TestSharedSweepBitIdenticalAcrossWorkers(t *testing.T) {
	grid := append([]float64{0.93, 0.90, 0.87}, 0.80) // 0.80 crashes
	run := func(workers int) *ReliabilityResult {
		t.Helper()
		b := board.MustNew(board.Config{Scale: 1024, SparseFaults: true})
		cfg := sharedCfg(b, workers)
		cfg.Grid = grid
		res, err := RunReliability(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if !ref.Points[len(ref.Points)-1].Crashed {
		t.Fatal("0.80V did not crash; sweep under-covers the ladder")
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(ref, got) {
			t.Errorf("shared sweep at %d workers differs from sequential", workers)
		}
	}
}

// TestSharedExactMatchesLegacy is the strongest equivalence pin: on the
// bit-exact sampler the fault set is already pattern-agnostic, so the
// shared path must reproduce the legacy per-pattern sweep bit for bit —
// every observation, every statistic.
func TestSharedExactMatchesLegacy(t *testing.T) {
	run := func(shared bool) *ReliabilityResult {
		t.Helper()
		b := board.MustNew(board.Config{Scale: 1024})
		cfg := sharedCfg(b, 1)
		cfg.SharedEnumeration = shared
		res, err := RunReliability(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(false)
	sharedRes := run(true)
	if !reflect.DeepEqual(legacy, sharedRes) {
		t.Fatalf("exact-mode shared sweep differs from legacy:\nlegacy: %+v\nshared: %+v",
			legacy.Points, sharedRes.Points)
	}
	// The test must actually observe faults to mean anything.
	any := false
	for _, pt := range legacy.Points {
		any = any || pt.MeanFlips > 0
	}
	if !any {
		t.Fatal("no faults observed; equivalence test is vacuous")
	}
}

// TestSharedSparseStatisticalEquivalence pins the acceptance bound for
// the sparse realization: shared-mode flip counts match the legacy
// per-pattern draws within Poisson bounds, for both paper patterns,
// across ≥5 voltages spanning the enumeration and aggregate regimes.
func TestSharedSparseStatisticalEquivalence(t *testing.T) {
	grid := []float64{0.93, 0.91, 0.89, 0.87, 0.85}
	run := func(shared bool) *ReliabilityResult {
		t.Helper()
		b := board.MustNew(board.Config{Scale: 64, SparseFaults: true})
		cfg := ReliabilityConfig{
			Board:             b,
			Ports:             []hbm.PortID{18},
			Patterns:          []pattern.Pattern{pattern.AllOnes(), pattern.AllZeros()},
			Grid:              grid,
			BatchSize:         2,
			SharedEnumeration: shared,
		}
		res, err := RunReliability(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(false)
	sharedRes := run(true)
	faultsSeen := false
	for i := range grid {
		lp, sp := legacy.Points[i], sharedRes.Points[i]
		for oi := range lp.Observations {
			lo, so := lp.Observations[oi], sp.Observations[oi]
			if lo.Port != so.Port || lo.Pattern != so.Pattern {
				t.Fatalf("%vV: observation order diverged", grid[i])
			}
			faultsSeen = faultsSeen || lo.MeanFlips > 0
			// Both are realizations of the same survival statistics;
			// their difference is bounded by the combined Poisson noise.
			sd := math.Sqrt(math.Max(lo.MeanFlips, 1) + math.Max(so.MeanFlips, 1))
			if math.Abs(lo.MeanFlips-so.MeanFlips) > 8*sd {
				t.Errorf("%vV %s port %d: legacy %v vs shared %v (>8σ=%v apart)",
					grid[i], lo.Pattern, lo.Port, lo.MeanFlips, so.MeanFlips, 8*sd)
			}
		}
	}
	if !faultsSeen {
		t.Fatal("no faults observed; statistical equivalence test is vacuous")
	}
}

// TestSharedRejectsUnknownDensity: a custom pattern without a
// closed-form ones density is refused at config time, not mid-sweep.
func TestSharedRejectsUnknownDensity(t *testing.T) {
	b := board.MustNew(board.Config{Scale: 1024, SparseFaults: true})
	_, err := RunReliability(ReliabilityConfig{
		Board:             b,
		Ports:             []hbm.PortID{18},
		Patterns:          []pattern.Pattern{opaquePattern{}},
		Grid:              []float64{0.90},
		BatchSize:         1,
		SharedEnumeration: true,
	})
	if err == nil {
		t.Fatal("density-less pattern accepted in shared mode")
	}
}

// opaquePattern is a valid Pattern with no OnesFraction.
type opaquePattern struct{}

func (opaquePattern) Word(addr uint64) pattern.Word { return pattern.Word{addr} }
func (opaquePattern) Name() string                  { return "opaque" }
