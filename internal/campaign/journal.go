package campaign

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hbmvolt/internal/chaos"
	"hbmvolt/internal/report"
	"hbmvolt/internal/service"
)

// The campaign checkpoint journal is an append-only NDJSON file that
// makes an interrupted campaign resumable without breaking the
// byte-identical manifest contract. The first line binds the journal to
// one campaign realization (name, normalized-spec hash, cell count,
// planner mode); every following line records one completed cell: its
// campaign-order index, cache key, and payload SHA-256. Records are
// fsynced as they are appended, so a crash — power loss, SIGKILL, OOM
// — loses at most the record being written, never a completed one.
//
// On resume the engine replays the journal: a journaled cell whose
// payload is still in the manager's cache (the durable disk tier,
// normally) with a matching checksum is served from it and skipped;
// everything else — unjournaled cells, journaled cells whose cache
// entry was lost or corrupted — is recomputed. Either way the finished
// manifest is byte-identical to an uninterrupted run's, because every
// payload is a pure function of its normalized request.

// journalHeader is the first line, binding the file to one campaign
// realization. Resuming with a different spec, or the same spec under a
// different planner mode (which changes cell requests and keys), is
// refused rather than silently mixed.
type journalHeader struct {
	V                 int    `json:"v"`
	Campaign          string `json:"campaign"`
	SpecSHA256        string `json:"spec_sha256"`
	Cells             int    `json:"cells"`
	SharedEnumeration bool   `json:"shared_enumeration,omitempty"`
}

// journalRecord is one completed cell.
type journalRecord struct {
	Cell   int    `json:"cell"`
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// journal is an open checkpoint file positioned for appending.
type journal struct {
	f    *os.File
	path string
	// done maps campaign-order cell index → its journaled completion.
	done map[int]journalRecord
	// replayed counts records recovered from an existing file.
	replayed int
}

// specHash fingerprints the normalized spec deterministically.
func specHash(spec *Spec) (string, error) {
	blob, err := report.Marshal(spec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// openJournal opens (creating if absent) the checkpoint journal at
// path for the given campaign realization. An existing journal is
// replayed: the header must match, valid records populate done, and a
// torn final record — the crash caught mid-append — is truncated away
// so subsequent appends start on a clean line boundary.
func openJournal(path string, spec *Spec, cellCount int, shared bool) (*journal, error) {
	hash, err := specHash(spec)
	if err != nil {
		return nil, fmt.Errorf("campaign journal: hashing spec: %w", err)
	}
	header := journalHeader{
		V:                 1,
		Campaign:          spec.Name,
		SpecSHA256:        hash,
		Cells:             cellCount,
		SharedEnumeration: shared,
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign journal: %w", err)
	}
	j := &journal{f: f, path: path, done: make(map[int]journalRecord)}

	validBytes, err := j.replay(header, cellCount)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop any torn trailing record (or torn header — then the whole file)
	// and position at the end of the valid prefix; replay read through a
	// buffered reader, so the raw offset must be restored regardless.
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign journal: truncating torn record: %w", err)
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign journal: %w", err)
	}
	if validBytes == 0 {
		// Fresh (or fully torn) journal: write and sync the binding header.
		if err := j.writeLine(header); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign journal: writing header: %w", err)
		}
	}
	return j, nil
}

// replay scans an existing journal, verifying the header and loading
// completed-cell records. It returns the byte length of the valid
// prefix (0 for an empty file). Scanning stops at the first torn or
// malformed line: the file is append-only, so everything before it is
// trustworthy and everything after it is the tail of a crash.
func (j *journal) replay(want journalHeader, cellCount int) (int64, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("campaign journal: %w", err)
	}
	rd := bufio.NewReader(j.f)
	var valid int64
	first := true
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			// No trailing newline (or a read error): whatever was read is a
			// torn record; the valid prefix ends before it.
			return valid, nil
		}
		trimmed := bytes.TrimSpace(line)
		if first {
			first = false
			var got journalHeader
			if json.Unmarshal(trimmed, &got) != nil {
				return 0, fmt.Errorf("campaign journal %s: unreadable header (not a journal?)", j.path)
			}
			if got != want {
				return 0, fmt.Errorf("campaign journal %s: belongs to a different campaign realization (have %s/%s…, want %s/%s…); use a fresh journal path",
					j.path, got.Campaign, shortHash(got.SpecSHA256), want.Campaign, shortHash(want.SpecSHA256))
			}
			valid += int64(len(line))
			continue
		}
		var rec journalRecord
		if json.Unmarshal(trimmed, &rec) != nil || rec.Cell < 0 || rec.Cell >= cellCount {
			// Malformed or out-of-range: treat as the torn tail.
			return valid, nil
		}
		j.done[rec.Cell] = rec
		j.replayed++
		valid += int64(len(line))
	}
}

func shortHash(h string) string {
	if len(h) > 8 {
		return h[:8]
	}
	return h
}

// writeLine appends one JSON line and fsyncs it.
func (j *journal) writeLine(v any) error {
	if err := chaos.Inject("journal.append"); err != nil {
		return err
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if _, err := j.f.Write(blob); err != nil {
		return err
	}
	return j.f.Sync()
}

// completed returns the journaled record for a cell, if any.
func (j *journal) completed(cell int) (journalRecord, bool) {
	rec, ok := j.done[cell]
	return rec, ok
}

// append records a completed cell durably. The record is fsynced before
// append returns: once the engine moves on, a crash cannot unrecord the
// cell.
func (j *journal) append(cell int, key uint64, payload []byte) error {
	sum := sha256.Sum256(payload)
	rec := journalRecord{
		Cell:   cell,
		Key:    service.FormatKey(key),
		SHA256: hex.EncodeToString(sum[:]),
		Bytes:  len(payload),
	}
	if err := j.writeLine(rec); err != nil {
		return fmt.Errorf("campaign journal: recording cell %d: %w", cell, err)
	}
	j.done[cell] = rec
	return nil
}

// Close closes the journal file (records are already synced).
func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
