package chaos

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTPMode is a transport-level failure shape for sites guarded by a
// Transport. Each mode reproduces how a distinct real-world network
// failure looks to an HTTP client:
//
//   - HTTPRefuse: the dial fails immediately (peer process dead, port
//     closed) — the fastest failure a client can observe.
//   - HTTPBlackhole: the request never completes and never errors on
//     its own (packet loss, a partition with no RST) — only the
//     request's context deadline ends it.
//   - HTTPSlow: the round trip completes but only after Fault.Sleep —
//     a congested or degraded link that a hedging deadline must cut.
//   - HTTPDropBody: the response headers arrive intact but the body is
//     severed after DropAfter bytes (connection reset mid-transfer).
type HTTPMode string

const (
	HTTPRefuse    HTTPMode = "refuse"
	HTTPBlackhole HTTPMode = "blackhole"
	HTTPSlow      HTTPMode = "slow"
	HTTPDropBody  HTTPMode = "drop-body"
)

// Transport is the HTTP fault-injection site: an http.RoundTripper
// wrapping Base (nil → http.DefaultTransport) that consults the armed
// plan on every round trip. With no plan armed — every production run —
// it is a single atomic load and a delegation. Faults without an HTTP
// mode behave like Inject: Sleep, then Callback, then Err (a non-nil
// Err fails the round trip; nil passes through to Base).
type Transport struct {
	// Site names this transport's injection point, e.g. "fleet.forward".
	Site string
	// Base performs real round trips (nil → http.DefaultTransport).
	Base http.RoundTripper
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper with the site's armed fault
// applied, honoring the request context throughout so an injected hang
// never outlives the caller's deadline.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	plan := active.Load()
	if plan == nil {
		return t.base().RoundTrip(req)
	}
	f, fire := plan.trigger(t.Site)
	if !fire {
		return t.base().RoundTrip(req)
	}
	if f.Sleep > 0 {
		select {
		case <-time.After(f.Sleep):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if f.Callback != nil {
		f.Callback()
	}
	switch f.HTTP {
	case HTTPRefuse:
		return nil, fmt.Errorf("chaos %s: dial tcp: connection refused", t.Site)
	case HTTPBlackhole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case HTTPSlow:
		// The delay already happened above; the round trip itself is fine.
		return t.base().RoundTrip(req)
	case HTTPDropBody:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &droppingBody{rc: resp.Body, remain: f.DropAfter, site: t.Site}
		return resp, nil
	default:
		if f.Err != nil {
			return nil, fmt.Errorf("chaos %s: %w", t.Site, f.Err)
		}
		return t.base().RoundTrip(req)
	}
}

// droppingBody passes through the first remain bytes of a response
// body, then fails the read the way a reset connection does.
type droppingBody struct {
	rc     io.ReadCloser
	remain int
	site   string
}

func (d *droppingBody) Read(p []byte) (int, error) {
	if d.remain <= 0 {
		return 0, fmt.Errorf("chaos %s: %w", d.site, io.ErrUnexpectedEOF)
	}
	if len(p) > d.remain {
		p = p[:d.remain]
	}
	n, err := d.rc.Read(p)
	d.remain -= n
	if err == io.EOF && d.remain <= 0 {
		// The drop point landed exactly at the real end: still report the
		// severed connection, not a clean EOF.
		err = fmt.Errorf("chaos %s: %w", d.site, io.ErrUnexpectedEOF)
	}
	return n, err
}

func (d *droppingBody) Close() error { return d.rc.Close() }
