package report

import (
	"bytes"
	"encoding/json"
	"io"
)

// JSON serialization shared by the CLI's -json exports and the sweep
// service's HTTP payloads. Everything here is deterministic: the same
// value always encodes to the same bytes (encoding/json emits struct
// fields in declaration order and sorts map keys), which is what lets
// the service cache marshaled payloads and serve byte-identical bodies
// for identical requests.

// Marshal encodes v as compact JSON with a trailing newline. HTML
// escaping is disabled so payloads stay readable and byte-stable
// regardless of transport.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// NDJSON streams newline-delimited JSON records to an io.Writer — the
// machine-readable sibling of Table/CSV, and the wire format of the
// sweep service's event stream. Errors are sticky: after the first
// failed record, subsequent calls are no-ops and Flush reports the
// error.
type NDJSON struct {
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewNDJSON wraps a writer.
func NewNDJSON(w io.Writer) *NDJSON {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return &NDJSON{w: w, enc: enc}
}

// Record writes one value as a single JSON line.
func (n *NDJSON) Record(v any) {
	if n.err != nil {
		return
	}
	n.err = n.enc.Encode(v)
}

// Flush reports the first error encountered. (Records are written
// eagerly; the name parallels CSV.Flush.)
func (n *NDJSON) Flush() error { return n.err }
