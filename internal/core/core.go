// Package core implements the paper's characterization framework — the
// primary contribution of Nabavi Larimi et al. (DATE 2021) recast as a
// reusable library:
//
//   - Tester runs Algorithm 1 (batched sequential write/read-check over a
//     voltage ladder) against a simulated VCU128 board;
//   - SweepScheduler shards a sweep's voltage points across a fleet of
//     board clones (bit-identical to the sequential path at any worker
//     count, with context cancellation and progress callbacks);
//   - PowerSweep regenerates the power study (Fig. 2) and the effective
//     switched-capacitance analysis (Fig. 3);
//   - ReliabilitySweep regenerates the per-stack fault-fraction curves
//     (Fig. 4) and the per-PC fault atlas (Fig. 5);
//   - FaultMap + Planner expose the three-factor trade-off among power,
//     memory capacity, and fault rate (Fig. 6 / §III-C);
//   - FindGuardband locates V_min and V_critical.
//
// Experiments have two evaluation paths that share one fault model:
// analytic expectations (exact, full-size, used for figures) and
// Monte-Carlo runs through the board's AXI traffic generators (Algorithm
// 1 verbatim, used for validation and scaled studies).
package core

// PaperBatchSize is the repetition count the paper uses for every test:
// 130 runs, which yields a ~7% error margin at 90% confidence for a
// worst-case proportion (see internal/stats).
const PaperBatchSize = 130

// DefaultConfidence is the confidence level of the paper's methodology.
const DefaultConfidence = 0.90
