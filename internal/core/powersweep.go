package core

import (
	"context"
	"errors"
	"fmt"

	"hbmvolt/internal/board"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/power"
)

// PowerSweepConfig configures the Fig. 2/Fig. 3 experiment.
type PowerSweepConfig struct {
	// Board under test.
	Board *board.Board
	// Grid is the voltage ladder, descending; nil means the paper's
	// sweep down to V_critical.
	Grid []float64
	// PortCounts are the bandwidth operating points (enabled AXI ports);
	// nil means {0, 8, 16, 24, 32} — the paper's 25% utilization steps.
	PortCounts []int
	// Samples is the number of averaged monitor reads per point (0 → 5).
	Samples int
	// OnPoint, when non-nil, is invoked after each measured (voltage,
	// bandwidth) point with monotone progress counters; MeanFlips is
	// always zero and Watts carries the measurement. The sweep service
	// streams these to its clients.
	OnPoint ProgressFunc
}

// PowerPoint is one measured (voltage, bandwidth) operating point.
type PowerPoint struct {
	Volts       float64
	Ports       int
	Utilization float64
	// Watts is the INA226 reading (averaged over Samples).
	Watts float64
	// BandwidthGBs is the aggregate traffic bandwidth at this point.
	BandwidthGBs float64
	// NormPower is Watts normalized to the (V_nom, 100% BW) measurement,
	// the Fig. 2 quantity.
	NormPower float64
	// NormAlphaCLF is (P/V²) normalized per-bandwidth to its value at
	// V_nom, the Fig. 3 quantity.
	NormAlphaCLF float64
	// Savings is P(V_nom, this BW) / P(V, this BW).
	Savings float64
}

// PowerSweepResult is the full measurement matrix.
type PowerSweepResult struct {
	Points []PowerPoint
	// BaselineWatts is the (V_nom, 100% BW) reference.
	BaselineWatts float64
}

// At returns the point for (volts, ports), or nil.
func (r *PowerSweepResult) At(volts float64, ports int) *PowerPoint {
	for i := range r.Points {
		if r.Points[i].Volts == volts && r.Points[i].Ports == ports {
			return &r.Points[i]
		}
	}
	return nil
}

// SavingsAt returns the measured savings factor at volts for the given
// port count.
func (r *PowerSweepResult) SavingsAt(volts float64, ports int) (float64, error) {
	p := r.At(volts, ports)
	if p == nil {
		return 0, fmt.Errorf("core: no power point at %vV/%d ports", volts, ports)
	}
	return p.Savings, nil
}

// RunPowerSweep measures power at every (voltage, bandwidth) pair via
// the board's INA226, reproducing Fig. 2 and Fig. 3.
func RunPowerSweep(cfg PowerSweepConfig) (*PowerSweepResult, error) {
	return RunPowerSweepCtx(context.Background(), cfg)
}

// RunPowerSweepCtx is RunPowerSweep with context cancellation: a
// cancelled ctx stops the sweep between measurement points, restores
// nominal conditions, and returns ctx.Err().
func RunPowerSweepCtx(ctx context.Context, cfg PowerSweepConfig) (*PowerSweepResult, error) {
	if cfg.Board == nil {
		return nil, errors.New("core: PowerSweepConfig.Board is nil")
	}
	b := cfg.Board
	if cfg.Grid == nil {
		cfg.Grid = faults.PaperGrid()
	}
	if cfg.PortCounts == nil {
		cfg.PortCounts = []int{0, 8, 16, 24, 32}
	}
	if cfg.Samples == 0 {
		cfg.Samples = 5
	}
	measurable := 0
	for _, v := range cfg.Grid {
		if v >= faults.VCritical {
			measurable++
		}
	}
	progress := SweepProgress{Total: len(cfg.PortCounts) * measurable}

	measure := func() (float64, error) {
		sum := 0.0
		for i := 0; i < cfg.Samples; i++ {
			w, err := b.MeasurePower()
			if err != nil {
				return 0, err
			}
			sum += w
		}
		return sum / float64(cfg.Samples), nil
	}

	setPoint := func(v float64, ports int) error {
		if err := b.SetActivePorts(ports); err != nil {
			return err
		}
		return b.SetHBMVoltage(v)
	}

	// Reference: nominal voltage, full bandwidth.
	if err := setPoint(faults.VNom, 32); err != nil {
		return nil, err
	}
	baseline, err := measure()
	if err != nil {
		return nil, err
	}
	if baseline <= 0 {
		return nil, errors.New("core: zero baseline power")
	}

	res := &PowerSweepResult{BaselineWatts: baseline}
	for _, ports := range cfg.PortCounts {
		if ports < 0 || ports > 32 {
			return nil, fmt.Errorf("core: port count %d out of range", ports)
		}
		// Per-bandwidth nominal reference for Savings and Fig. 3.
		if err := setPoint(faults.VNom, ports); err != nil {
			return nil, err
		}
		nomWatts, err := measure()
		if err != nil {
			return nil, err
		}
		nomAlpha := power.AlphaCLF(nomWatts, faults.VNom)

		for _, v := range cfg.Grid {
			if v < faults.VCritical {
				continue // the memory crashes; power is meaningless
			}
			if cerr := ctx.Err(); cerr != nil {
				// Leave the board at nominal conditions even on the
				// cancellation path.
				if rerr := setPoint(faults.VNom, 32); rerr != nil {
					return nil, rerr
				}
				return nil, cerr
			}
			if err := setPoint(v, ports); err != nil {
				return nil, err
			}
			w, err := measure()
			if err != nil {
				return nil, err
			}
			pt := PowerPoint{
				Volts:        v,
				Ports:        ports,
				Utilization:  float64(ports) / 32,
				Watts:        w,
				BandwidthGBs: b.AggregateBandwidthGBs(),
				NormPower:    w / baseline,
			}
			if nomAlpha > 0 {
				pt.NormAlphaCLF = power.AlphaCLF(w, v) / nomAlpha
			}
			if w > 0 {
				pt.Savings = nomWatts / w
			}
			res.Points = append(res.Points, pt)
			if cfg.OnPoint != nil {
				progress.Done++
				progress.Volts = pt.Volts
				progress.Watts = pt.Watts
				cfg.OnPoint(progress)
			}
		}
	}

	// Restore nominal conditions.
	if err := setPoint(faults.VNom, 32); err != nil {
		return nil, err
	}
	return res, nil
}
