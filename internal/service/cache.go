package service

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU over marshaled result payloads, keyed by
// the request cache key. It survives job eviction: once a sweep's bytes
// are in here, a repeat of the same request is answered without
// recomputation until capacity pressure ages the entry out. Payload
// slices are stored and returned by reference and must be treated as
// immutable by all parties.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[uint64]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key     uint64
	payload []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[uint64]*list.Element),
	}
}

// Get returns the payload for key, marking it most recently used.
func (c *resultCache) Get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// Put stores a payload, evicting the least recently used entry on
// overflow. Storing an existing key refreshes its recency; the payload
// is not replaced — by the determinism contract a key's payload never
// changes, so the first write wins and stays byte-stable.
func (c *resultCache) Put(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, payload)
}

// Touch records a served-from-cache event for a payload that may or may
// not still be resident: a resident entry is refreshed, an evicted one
// re-inserted. Either way it counts as a hit — the caller served the
// bytes without recomputation, which is what the hit counter measures.
// (The coalescing path keeps payloads alive on completed jobs beyond
// this LRU's horizon.)
func (c *resultCache) Touch(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	c.putLocked(key, payload)
}

func (c *resultCache) putLocked(key uint64, payload []byte) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the live entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit/miss counters.
func (c *resultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
