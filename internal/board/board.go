// Package board assembles the paper's test platform (§II-B): a VCU128
// evaluation board with two HBM stacks behind a shared VCC_HBM rail, an
// ISL68301 PMBus regulator driving that rail, an INA226 monitor sensing
// it, and 32 AXI ports with traffic generators (16 per stack).
//
// The board couples the electrical and functional models: programming
// the regulator moves the stacks' supply (changing their fault
// behaviour), the stacks' stuck-cell population derates the power
// model's active capacitance, and the monitor reads the resulting watts
// back through its register pipeline — the same loop the paper's host
// software closes over PMBus.
package board

import (
	"fmt"

	"hbmvolt/internal/axi"
	"hbmvolt/internal/dramctl"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/ina226"
	"hbmvolt/internal/pmbus"
	"hbmvolt/internal/power"
)

// Config parameterizes a board build. The zero value gives the paper's
// platform at 1/1024 capacity scale (suitable for tests; pass Scale: 1
// for the full 8 GB).
type Config struct {
	// Seed drives every stochastic aspect (fault map, measurement noise).
	Seed uint64
	// Scale divides each pseudo channel's capacity (power of two). 0
	// means 1024 (8 MB device), keeping unit work cheap.
	Scale uint64
	// Temperature in °C (default 35, the paper's operating point).
	Temperature float64
	// Power overrides the power parameters (default power.DefaultParams).
	Power power.Params
	// NoiseSigma is the per-sample measurement noise of the monitor
	// chain; 0 disables noise (exact measurements).
	NoiseSigma float64
	// AXIClockMHz overrides the per-port AXI clock.
	AXIClockMHz float64
	// Timing overrides the DRAM timing model.
	Timing dramctl.Timing
	// SwitchEnabled turns the AXI switching network on (the paper keeps
	// it off).
	SwitchEnabled bool
	// SparseFaults selects the fault model's sparse enumeration mode:
	// full-capacity Algorithm 1 traffic costs O(#faults) instead of
	// O(bits). See faults.Config.SparseEnumeration for the trade-off.
	SparseFaults bool
	// Profiles optionally overrides the per-PC fault variation.
	Profiles *[faults.NumPCs]faults.PCProfile
}

// Board is the assembled platform.
type Board struct {
	cfg Config

	Org    hbm.Organization
	Faults *faults.Model
	Device *hbm.Device
	Power  *power.Model

	Bus       *pmbus.Bus
	Regulator *pmbus.ISL68301
	Monitor   *ina226.INA226
	Switch    *axi.Switch
	Ports     [hbm.MaxPorts]*axi.Port
	TGs       [hbm.MaxPorts]*axi.TrafficGen

	activePorts int
}

// FaultConfig returns the (default-filled) fault-model configuration a
// board built from cfg would carry — without building the board. Its
// Fingerprint is the analytic-rate cache key that board's model will
// memoize under, which is what result-caching services key sweep
// payloads by; keeping this the single constructor (New routes through
// it) guarantees the two can never diverge.
func FaultConfig(cfg Config) (faults.Config, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1024
	}
	org, err := hbm.Scaled(cfg.Scale)
	if err != nil {
		return faults.Config{}, err
	}
	fcfg := faults.DefaultConfig()
	fcfg.Seed = cfg.Seed
	if cfg.Temperature != 0 {
		fcfg.Temperature = cfg.Temperature
	}
	fcfg.Geometry = faults.Geometry{WordsPerPC: org.WordsPerPC, WordsPerRow: org.WordsPerRow}
	fcfg.SparseEnumeration = cfg.SparseFaults
	if cfg.Profiles != nil {
		fcfg.Profiles = *cfg.Profiles
	}
	return fcfg, nil
}

// New builds a board.
func New(cfg Config) (*Board, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1024
	}
	org, err := hbm.Scaled(cfg.Scale)
	if err != nil {
		return nil, err
	}
	fcfg, err := FaultConfig(cfg)
	if err != nil {
		return nil, err
	}
	fm, err := faults.New(fcfg)
	if err != nil {
		return nil, err
	}

	dev, err := hbm.NewDevice(org, fm)
	if err != nil {
		return nil, err
	}

	pp := cfg.Power
	if pp == (power.Params{}) {
		pp = power.DefaultParams()
	}
	pm, err := power.New(pp, func(v float64) float64 { return 1 - fm.GlobalStuckFraction(v) })
	if err != nil {
		return nil, err
	}

	b := &Board{cfg: cfg, Org: org, Faults: fm, Device: dev, Power: pm}

	b.Regulator = pmbus.NewISL68301(pmbus.ISLConfig{
		OnVout:   dev.SetVoltage,
		LoadAmps: b.railAmps,
	})
	b.Bus = pmbus.NewBus()
	if err := b.Bus.Attach(b.Regulator); err != nil {
		return nil, err
	}

	b.Monitor, err = ina226.New(ina226.Config{
		ShuntOhms:  0.002,
		Seed:       cfg.Seed ^ 0xd1e,
		NoiseSigma: cfg.NoiseSigma,
		Rail: func() (float64, float64) {
			v := b.Regulator.Vout()
			return v, b.railAmps(v)
		},
	})
	if err != nil {
		return nil, err
	}
	cal, err := ina226.CalibrationFor(25, 0.002)
	if err != nil {
		return nil, err
	}
	if err := b.Monitor.WriteRegister(ina226.RegCalibration, cal); err != nil {
		return nil, err
	}
	// 16-sample hardware averaging, matching a telemetry-grade setup.
	if err := b.Monitor.WriteRegister(ina226.RegConfig, 0x4127|2<<9); err != nil {
		return nil, err
	}

	b.Switch = axi.NewSwitch()
	b.Switch.Enabled = cfg.SwitchEnabled
	pcfg := axi.PortConfig{ClockMHz: cfg.AXIClockMHz, Timing: cfg.Timing}
	for i := range b.Ports {
		p, err := axi.NewPort(hbm.PortID(i), dev, b.Switch, pcfg)
		if err != nil {
			return nil, err
		}
		b.Ports[i] = p
		b.TGs[i] = axi.NewTrafficGen(p)
	}
	b.activePorts = hbm.MaxPorts
	return b, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Board {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Config returns the (default-filled) configuration the board was built
// from.
func (b *Board) Config() Config { return b.cfg }

// Clone builds an independent board of the same configuration: same
// seed, scale, temperature and fault realization, but fresh electrical
// and memory state (contents zeroed, regulator at nominal, counters
// reset). The fault model draws are pure functions of the seeded
// configuration, so a clone observes exactly the faults the original
// does at every (voltage, rep) — which is what lets a sweep scheduler
// fan one logical device out across a fleet of clones and still produce
// bit-identical results. Cloned models with equal fingerprints share the
// memoized analytic rate atlas, so a fleet costs no redundant analytic
// work.
func (b *Board) Clone() (*Board, error) {
	return New(b.cfg)
}

// railAmps models the rail's current draw at voltage v given how many
// ports are actively generating traffic.
func (b *Board) railAmps(v float64) float64 {
	return b.Power.Amps(v, b.Utilization())
}

// Utilization returns the bandwidth utilization implied by the active
// port count.
func (b *Board) Utilization() float64 {
	return float64(b.activePorts) / float64(hbm.MaxPorts)
}

// SetActivePorts enables the first n ports and disables the rest; n also
// sets the utilization the rail model sees. The paper scales bandwidth
// exactly this way — by disabling AXI ports.
func (b *Board) SetActivePorts(n int) error {
	if n < 0 || n > hbm.MaxPorts {
		return fmt.Errorf("board: active port count %d out of [0,%d]", n, hbm.MaxPorts)
	}
	for i, p := range b.Ports {
		p.SetEnabled(i < n)
	}
	b.activePorts = n
	return nil
}

// ActivePorts returns the number of traffic-generating ports.
func (b *Board) ActivePorts() int { return b.activePorts }

// SetHBMVoltage programs the regulator over PMBus. The voltage reaches
// the stacks through the rail coupling; driving it below the HBM's
// V_critical crashes the memory exactly as on the real board.
func (b *Board) SetHBMVoltage(volts float64) error {
	w, err := pmbus.Linear16(volts, -12)
	if err != nil {
		return err
	}
	return b.Bus.WriteWord(b.Regulator.Address(), pmbus.CmdVoutCommand, w)
}

// HBMVoltage reads the rail voltage back over PMBus.
func (b *Board) HBMVoltage() (float64, error) {
	w, err := b.Bus.ReadWord(b.Regulator.Address(), pmbus.CmdReadVout)
	if err != nil {
		return 0, err
	}
	return pmbus.FromLinear16(w, -12), nil
}

// MeasurePower reads the INA226 power register (watts).
func (b *Board) MeasurePower() (float64, error) {
	return b.Monitor.PowerWatts()
}

// MeasureVoltageCurrent reads bus voltage and current from the monitor.
func (b *Board) MeasureVoltageCurrent() (volts, amps float64, err error) {
	volts, err = b.Monitor.BusVolts()
	if err != nil {
		return 0, 0, err
	}
	amps, err = b.Monitor.CurrentAmps()
	return volts, amps, err
}

// Crashed reports whether the HBM device has stopped responding.
func (b *Board) Crashed() bool { return b.Device.Crashed() }

// PowerCycle performs the full recovery the paper describes for a
// crashed device: power down (OPERATION off), restart the memory, clear
// regulator faults, and restore nominal voltage.
func (b *Board) PowerCycle() error {
	if err := b.Bus.WriteByteData(b.Regulator.Address(), pmbus.CmdOperation, pmbus.OperationOff); err != nil {
		return err
	}
	if err := b.Bus.SendByte(b.Regulator.Address(), pmbus.CmdClearFaults); err != nil {
		return err
	}
	// Re-program nominal voltage while the output is off, so the rail
	// comes back at V_nom and not at the last (possibly sub-critical)
	// command value.
	if err := b.SetHBMVoltage(faults.VNom); err != nil {
		return err
	}
	if err := b.Bus.WriteByteData(b.Regulator.Address(), pmbus.CmdOperation, pmbus.OperationOn); err != nil {
		return err
	}
	// Restart the memory last: restoring the supply alone does not
	// un-crash the stacks (§III-B) — the explicit restart does.
	b.Device.PowerCycle()
	for _, tg := range b.TGs {
		if err := tg.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// AggregateBandwidthGBs sums the effective bandwidth of the active
// ports.
func (b *Board) AggregateBandwidthGBs() float64 {
	sum := 0.0
	for _, p := range b.Ports {
		if p.Enabled() {
			sum += p.EffectiveBandwidthGBs()
		}
	}
	return sum
}
