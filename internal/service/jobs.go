package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"hbmvolt/internal/board"
	"hbmvolt/internal/core"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
	"hbmvolt/internal/report"
	"hbmvolt/internal/telemetry"
	tlog "hbmvolt/internal/telemetry/log"
)

// JobState is the lifecycle of one submitted sweep.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one record of a job's NDJSON event stream.
type Event struct {
	// Type is "progress" while the sweep runs, then exactly one of
	// "done", "failed" or "cancelled".
	Type string `json:"type"`
	core.SweepProgress
	// Error carries the failure reason of a "failed" event.
	Error string `json:"error,omitempty"`
}

// Job is one submitted sweep: its normalized request, its lifecycle
// state, its event history, and — once done — its cached payload.
type Job struct {
	// ID addresses the job in the HTTP API.
	ID string
	// Key is the request's cache key; jobs with equal keys coalesce.
	Key uint64
	// Req is the normalized request.
	Req SweepRequest

	// runCtx governs the sweep's execution; cancel aborts it. Both are
	// fixed at submit time, so a DELETE always cancels the same context
	// the worker runs under, whether the job is still queued or already
	// mid-sweep.
	runCtx context.Context
	cancel context.CancelFunc

	// noForward pins execution to this node (see SubmitOptions).
	noForward bool
	// trace is the submission's trace ID (minted or adopted at the HTTP
	// edge), immutable after submit. Observability only: it is never
	// part of the cache key, so identical requests with different traces
	// still coalesce.
	trace string

	mu      sync.Mutex
	state   JobState
	errMsg  string
	payload []byte
	events  []Event
	// serve records which fleet node produced the payload (zero when no
	// forwarder is configured).
	serve ServeInfo
	// changed is closed and replaced on every event append or state
	// transition; streamers wait on the instance they snapshotted.
	changed chan struct{}
}

func (j *Job) signalLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendEvent records a progress event and wakes streamers.
func (j *Job) appendEvent(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, e)
	j.signalLocked()
}

// finish moves the job to a terminal state exactly once, recording the
// terminal event in the same step so streamers observe "last event ⇔
// terminal state" atomically. Later calls are ignored — e.g. a
// cancellation racing the sweep's own completion keeps whichever
// outcome landed first.
func (j *Job) finish(state JobState, payload []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.payload = payload
	j.errMsg = errMsg
	e := Event{Type: string(state)}
	if state == StateFailed {
		e.Error = errMsg
	}
	j.events = append(j.events, e)
	j.signalLocked()
}

// setRunning transitions queued → running; it is a no-op (returning
// false) if the job was cancelled while queued.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.signalLocked()
	return true
}

// eventsSince returns the events after index i, the current state, and
// the change channel to wait on if the caller has consumed everything.
func (j *Job) eventsSince(i int) ([]Event, JobState, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i > len(j.events) {
		i = len(j.events)
	}
	evs := j.events[i:len(j.events):len(j.events)]
	return evs, j.state, j.changed
}

// Snapshot returns the job's externally visible status.
func (j *Job) Snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.ID,
		Kind:     j.Req.Kind,
		Key:      formatKey(j.Key),
		State:    j.state,
		Error:    j.errMsg,
		ServedBy: j.serve.ServedBy,
		Degraded: j.serve.Degraded,
		Trace:    j.trace,
	}
	for i := len(j.events) - 1; i >= 0; i-- {
		if j.events[i].Type == "progress" {
			st.Done, st.Total = j.events[i].Done, j.events[i].Total
			break
		}
	}
	return st
}

// Payload returns the marshaled result bytes (nil unless done).
func (j *Job) Payload() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.payload
}

// ServeInfo returns the job's fleet serving record (zero value when no
// forwarder is configured).
func (j *Job) ServeInfo() ServeInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.serve
}

func (j *Job) setServeInfo(info ServeInfo) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.serve = info
}

// Trace returns the submission's trace ID ("" for programmatic
// submissions that carried none).
func (j *Job) Trace() string { return j.trace }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Wait blocks until the job reaches a terminal state (returned) or ctx
// is cancelled (the current non-terminal state and ctx's error are
// returned). It does not cancel the job.
func (j *Job) Wait(ctx context.Context) (JobState, error) {
	for {
		j.mu.Lock()
		st, changed := j.state, j.changed
		j.mu.Unlock()
		if st.terminal() {
			return st, nil
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Err returns the failure reason of a failed job ("" otherwise).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// JobStatus is the GET /v1/sweeps/{id} body (result excluded).
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
	// Done/Total mirror the latest progress event.
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
	// ServedBy/Degraded mirror the job's fleet serving record: the node
	// whose compute produced the payload, and whether the fleet fell
	// back to local compute because the key's owner was unreachable.
	// Empty/false outside fleet mode.
	ServedBy string `json:"served_by,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// Trace is the submission's trace ID, when one was minted or adopted
	// at the edge (X-Hbmvolt-Trace-Id).
	Trace string `json:"trace,omitempty"`
}

// Config parameterizes a Manager (and its Server).
type Config struct {
	// Workers is the number of sweeps running concurrently (default 2).
	// Distinct from SweepRequest.Workers, the per-sweep board-fleet size.
	Workers int
	// QueueDepth bounds the backlog of queued jobs; submissions beyond
	// it fail with ErrQueueFull (default 16).
	QueueDepth int
	// CacheEntries bounds the result LRU (default 256 payloads).
	CacheEntries int
	// CacheBytes bounds the result LRU's total payload bytes (default
	// 64 MB). Entries are weighed by their marshaled size for every
	// result kind — analytic campaign envelopes (faultmap/ecc-study) the
	// same as sweep payloads — so eviction pressure tracks what the
	// cache actually retains.
	CacheBytes int64
	// MaxJobs bounds retained job records; the oldest terminal jobs are
	// evicted beyond it (their payloads survive in the LRU) (default 1024).
	MaxJobs int
	// FleetSize is the default per-sweep board-fleet size when a request
	// leaves Workers at 0 (default 1, sequential).
	FleetSize int
	// CacheDir, when non-empty, adds the crash-durable disk tier under
	// this directory: completed payloads are written through to disk and
	// survive process restarts (verified per-entry on read; see
	// DiskTier). Constructors that cannot return an error (NewManager,
	// New) reject a non-empty CacheDir — use OpenManager / Open.
	CacheDir string
	// DiskCacheBytes bounds the disk tier's total payload bytes
	// (0 = unbounded; LRU files are unlinked under pressure).
	DiskCacheBytes int64
	// RatePerSec enables per-client token-bucket admission on
	// submissions: each client refills at this rate up to RateBurst
	// tokens (0 disables rate limiting).
	RatePerSec float64
	// RateBurst is the per-client bucket size (default 8 when rate
	// limiting is enabled).
	RateBurst int
	// TrustProxy honors the X-Forwarded-For header when attributing
	// admission tokens: the leftmost (originating-client) address
	// becomes the client key instead of the remote host. Off by
	// default — a spoofable header must never split rate-limit buckets
	// unless a trusted proxy is known to set it. X-Client-ID still wins
	// when present.
	TrustProxy bool
	// Forwarder, when non-nil, routes executions across a fleet: each
	// job's cache key is owned by one node, remote-owned jobs are
	// fetched from their owner, and any failure to reach the owner
	// degrades byte-identically to local compute (see internal/fleet).
	Forwarder Forwarder
	// Metrics, when non-nil, is the registry the manager registers its
	// instrument families in — the daemon shares one registry across the
	// service, fleet and campaign layers so GET /metrics renders them
	// all. Nil gets a private registry (still served at /metrics).
	Metrics *telemetry.Registry
	// Logger receives the manager's structured JSON logs (disk-tier
	// discards, job failures). Nil silences the manager's own logs, but
	// the disk tier still falls back to a stderr logger — corruption
	// reports stay loud even in embedded managers.
	Logger *tlog.Logger
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.FleetSize <= 0 {
		c.FleetSize = 1
	}
	if c.RatePerSec > 0 && c.RateBurst <= 0 {
		c.RateBurst = 8
	}
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity (HTTP 503).
var ErrQueueFull = errors.New("service: sweep queue full")

// ErrDraining is returned by Submit while the manager drains for
// shutdown (HTTP 503): in-flight jobs finish, new work is refused.
var ErrDraining = errors.New("service: draining for shutdown")

// errShutdown is returned by Submit after Close.
var errShutdown = errors.New("service: manager is shut down")

// Manager owns the job table, the bounded work queue, the worker pool
// driving sweeps through internal/core, and the result LRU. It
// coalesces identical submissions: one live job per cache key.
type Manager struct {
	cfg     Config
	cache   *resultCache
	latency *latencyTracker
	limiter *rateLimiter
	// forward, when non-nil, is the fleet routing hook consulted before
	// computing a job locally (Config.Forwarder).
	forward Forwarder

	// reg/met/rec are the telemetry surface: the registry /metrics
	// renders, the manager's live instruments in it, and the bounded
	// span recorder trace IDs resolve against. /healthz re-derives its
	// counters from met, so the two surfaces cannot drift.
	reg    *telemetry.Registry
	met    *serviceMetrics
	rec    *telemetry.Recorder
	logger *tlog.Logger

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	draining bool
	nextID   uint64
	jobs     map[string]*Job
	// byKey maps a cache key to its coalescing target: the live (or
	// successfully completed) job for that key.
	byKey map[uint64]*Job
	// order lists job IDs in creation order, for MaxJobs eviction.
	order []string
	queue chan *Job

	// runSweep executes one job's sweep and returns the marshaled
	// payload. Overridable in tests to control timing; defaults to the
	// real board + core path.
	runSweep func(ctx context.Context, j *Job) ([]byte, error)
}

// NewManager builds an in-memory-only manager and starts its worker
// pool. A Config naming a CacheDir needs the error-returning
// OpenManager; passing one here panics (a programmer error, not a
// runtime condition).
func NewManager(cfg Config) *Manager {
	if cfg.CacheDir != "" {
		panic("service.NewManager: Config.CacheDir requires OpenManager")
	}
	m, err := OpenManager(cfg)
	if err != nil {
		panic(err) // unreachable: only the disk tier can fail to open
	}
	return m
}

// OpenManager builds a manager — opening the disk cache tier (with its
// boot recovery scan) when cfg.CacheDir is set — and starts its worker
// pool.
func OpenManager(cfg Config) (*Manager, error) {
	cfg.fill()
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	met := newServiceMetrics(reg)
	tiers := []CacheTier{NewMemoryTier(cfg.CacheEntries, cfg.CacheBytes)}
	if cfg.CacheDir != "" {
		disk, err := NewDiskTier(cfg.CacheDir, cfg.DiskCacheBytes, cfg.Logger)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, disk)
	}
	node := "local"
	if cfg.Forwarder != nil {
		node = cfg.Forwarder.Self()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		cache:   newResultCache(met, tiers...),
		latency: newLatencyTracker(),
		limiter: newRateLimiter(cfg.RatePerSec, cfg.RateBurst, met.rejected.With("rate")),
		forward: cfg.Forwarder,
		reg:     reg,
		met:     met,
		rec:     telemetry.NewRecorder(node, telemetry.DefaultSpanCapacity),
		logger:  cfg.Logger,
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		byKey:   make(map[uint64]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
	}
	m.registerSamplers()
	m.runSweep = m.executeSweep
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Close cancels every running sweep, drains the workers, flushes the
// cache tiers, and rejects further submissions.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	m.cache.Close()
}

// Drain performs a graceful shutdown: new submissions are refused with
// ErrDraining, queued and running jobs are given until ctx expires to
// finish, then the manager closes (cancelling whatever remains and
// flushing the disk tier). It returns ctx.Err() if the deadline cut the
// drain short, nil if every job finished.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.mu.Unlock()

	var err error
	for {
		var pending *Job
		m.mu.Lock()
		for _, j := range m.jobs {
			if !j.State().terminal() {
				pending = j
				break
			}
		}
		m.mu.Unlock()
		if pending == nil {
			break
		}
		if _, werr := pending.Wait(ctx); werr != nil {
			err = werr // deadline: stop waiting, force-cancel via Close
			break
		}
	}
	m.Close()
	return err
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Submit registers a sweep request. The returned bools report whether
// the request coalesced onto an existing job and whether it was
// answered from the result cache without queueing any work.
func (m *Manager) Submit(req SweepRequest) (job *Job, coalesced, cacheHit bool, err error) {
	return m.SubmitOpts(req, SubmitOptions{})
}

// SubmitOpts is Submit with per-submission flags — currently only
// NoForward, the fleet's already-forwarded-once marker.
func (m *Manager) SubmitOpts(req SweepRequest, opts SubmitOptions) (job *Job, coalesced, cacheHit bool, err error) {
	if err := req.Normalize(); err != nil {
		return nil, false, false, err
	}
	key, err := req.CacheKey()
	if err != nil {
		return nil, false, false, badRequest("%v", err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, false, errShutdown
	}
	if m.draining {
		m.met.rejected.With("draining").Inc()
		return nil, false, false, ErrDraining
	}
	// Coalesce onto the live (or done) job for this key. Failed and
	// cancelled jobs are not coalescing targets — a resubmission retries.
	if j, ok := m.byKey[key]; ok {
		if st := j.State(); !st.terminal() || st == StateDone {
			outcome := "coalesced"
			if st == StateDone {
				// Served without recomputation: count the hit and keep
				// the payload warm in the LRU.
				m.cache.Touch(key, j.Payload())
				outcome = "cache_hit"
			}
			m.submitted(opts.TraceID, j, outcome)
			return j, true, st == StateDone, nil
		}
	}
	// Evicted job but retained payload: answer from the LRU with a
	// pre-completed job, no queueing, no recomputation.
	if payload, tier, ok := m.cache.getTier(key); ok {
		j := m.newJobLocked(key, req, nil)
		j.trace = opts.TraceID
		j.state = StateDone
		j.payload = payload
		j.events = []Event{{Type: string(StateDone)}}
		if opts.TraceID != "" {
			m.rec.Record(opts.TraceID, "cache.lookup", map[string]string{
				"tier": tier, "key": formatKey(key),
			})
		}
		m.submitted(opts.TraceID, j, "cache_hit")
		return j, false, true, nil
	}

	ctx, cancel := context.WithCancel(m.baseCtx)
	j := m.newJobLocked(key, req, cancel)
	j.trace = opts.TraceID
	// The run context carries the trace and this node's recorder, so
	// every layer under the sweep — fleet forward, enum-store lookup —
	// can attach spans to the submission's trace.
	j.runCtx = telemetry.WithRecorder(telemetry.WithTrace(ctx, opts.TraceID), m.rec)
	j.noForward = opts.NoForward
	select {
	case m.queue <- j:
	default:
		// Queue full: roll the registration back.
		cancel()
		delete(m.jobs, j.ID)
		delete(m.byKey, key)
		m.order = m.order[:len(m.order)-1]
		m.met.rejected.With("queue_full").Inc()
		return nil, false, false, ErrQueueFull
	}
	m.submitted(opts.TraceID, j, "accepted")
	return j, false, false, nil
}

// submitted records one resolved submission: the outcome counter,
// plus a job.submit span for traced submissions.
func (m *Manager) submitted(trace string, j *Job, outcome string) {
	m.met.submitted.With(outcome).Inc()
	if trace == "" {
		return
	}
	m.rec.Record(trace, "job.submit", map[string]string{
		"outcome": outcome, "job": j.ID, "key": formatKey(j.Key),
	})
}

// newJobLocked allocates and registers a job (m.mu held).
func (m *Manager) newJobLocked(key uint64, req SweepRequest, cancel context.CancelFunc) *Job {
	m.nextID++
	j := &Job{
		ID:      fmt.Sprintf("swp-%06d", m.nextID),
		Key:     key,
		Req:     req,
		state:   StateQueued,
		changed: make(chan struct{}),
		cancel:  cancel,
	}
	if cancel == nil {
		j.cancel = func() {}
	}
	m.jobs[j.ID] = j
	m.byKey[key] = j
	m.order = append(m.order, j.ID)
	m.evictLocked()
	return j
}

// evictLocked drops the oldest terminal jobs beyond MaxJobs. Their
// payloads stay in the LRU, so evicted results remain servable.
func (m *Manager) evictLocked() {
	for len(m.jobs) > m.cfg.MaxJobs {
		evicted := false
		for i, id := range m.order {
			j, ok := m.jobs[id]
			if !ok {
				continue
			}
			if !j.State().terminal() {
				continue
			}
			delete(m.jobs, id)
			if m.byKey[j.Key] == j {
				delete(m.byKey, j.Key)
			}
			m.order = append(m.order[:i:i], m.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return // everything live; allow temporary overshoot
		}
	}
}

// Job returns a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Queued jobs terminate
// immediately; running sweeps stop at the next voltage point through
// context propagation into the scheduler. Terminal jobs are unaffected
// (cancellation is idempotent).
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Job(id)
	if !ok {
		return nil, false
	}
	// Mark a still-queued job cancelled right away so the worker skips
	// it; for running jobs the context does the work.
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.events = append(j.events, Event{Type: string(StateCancelled)})
		j.signalLocked()
	}
	j.mu.Unlock()
	j.cancel()
	return j, true
}

// Runs returns the number of sweeps actually executed (cache hits and
// coalesced submissions excluded) — read from the same counter
// /metrics renders as hbmvolt_sweep_runs_total.
func (m *Manager) Runs() uint64 { return m.met.sweepRuns.Value() }

// Cached returns the byte-stable payload for a cache key if any tier
// retains it, without scheduling work — the campaign resume path's
// lookup for journaled cells. Disk-tier entries are checksum-verified
// by the read, so a corrupted payload reports a miss here and the
// caller recomputes.
func (m *Manager) Cached(key uint64) ([]byte, bool) {
	return m.cache.Get(key)
}

// AllowClient spends one admission token for client (the per-client
// token bucket). It reports false plus a Retry-After hint in whole
// seconds when the client is over its rate; with rate limiting disabled
// it always admits.
func (m *Manager) AllowClient(client string) (ok bool, retryAfter int) {
	return m.limiter.Allow(client)
}

// RetryAfterSeconds is the server's backpressure hint when a
// submission is refused for queue depth: the expected time for the
// current backlog to drain, from observed job latency (queued jobs ÷
// workers × recent median), floored at 1 s.
func (m *Manager) RetryAfterSeconds() int {
	return retryAfterSeconds(len(m.queue)+1, m.cfg.Workers, m.latency.Median())
}

// Stats summarizes the manager for /healthz.
type Stats struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`

	SweepRuns    uint64 `json:"sweep_runs"`
	CacheEntries int    `json:"cache_entries"`
	CacheBytes   int64  `json:"cache_bytes"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Workers      int    `json:"workers"`
	QueueDepth   int    `json:"queue_depth"`
	// DiskCache reports the durable tier, when configured: entry/byte
	// population, reads it answered, and the recovery-scan and
	// verification counters (recovered / discarded / evicted).
	DiskCache *DiskStats `json:"disk_cache,omitempty"`
	// RetryAfterSeconds is the current backpressure hint — what a 503's
	// Retry-After header would say right now (queue depth × median job
	// latency ÷ workers).
	RetryAfterSeconds int `json:"retry_after_seconds"`
	// MedianJobMillis is the recent median job latency the hint derives
	// from (0 until the first job completes).
	MedianJobMillis int64 `json:"median_job_ms"`
	// RateLimited counts submissions refused by the per-client token
	// bucket (429s).
	RateLimited uint64 `json:"rate_limited"`
	// Draining is true once graceful shutdown has begun.
	Draining bool `json:"draining,omitempty"`
	// SharedEnums reports the process-wide shared-enumeration memo store
	// (the sweep planner's physics cache).
	SharedEnums faults.EnumStats `json:"shared_enums"`
	// Fleet is the peer-mode block, present only when a fleet forwarder
	// is configured: this node's name, per-peer circuit/probe state, and
	// the forwarded/degraded serve counters (see fleet.Health).
	Fleet any `json:"fleet,omitempty"`
}

// Stats gathers current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	st := Stats{
		SweepRuns:         m.met.sweepRuns.Value(),
		CacheEntries:      m.cache.Len(),
		CacheBytes:        m.cache.Bytes(),
		Workers:           m.cfg.Workers,
		QueueDepth:        m.cfg.QueueDepth,
		RetryAfterSeconds: m.RetryAfterSeconds(),
		MedianJobMillis:   m.latency.Median().Milliseconds(),
		RateLimited:       m.limiter.Denied(),
		Draining:          m.Draining(),
		SharedEnums:       faults.EnumStoreStats(),
	}
	if m.forward != nil {
		st.Fleet = m.forward.Health()
	}
	st.CacheHits, st.CacheMisses = m.cache.Stats()
	if disk, ok := m.cache.disk(); ok {
		ds := disk.Stats()
		ds.Hits = m.cache.diskHits()
		st.DiskCache = &ds
	}
	for _, j := range jobs {
		switch j.State() {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// worker drains the queue, running one sweep at a time.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		if !j.setRunning() {
			continue // cancelled while queued
		}
		m.runJob(j)
	}
}

// runJob executes one job under its submit-time context and records its
// terminal state. With a fleet forwarder configured (and the job not
// pinned local by a forwarded-once marker), execution routes through
// the forwarder: the key's owner serves it remotely when healthy, local
// compute otherwise — byte-identical either way. Only actual local
// sweeps count toward Runs; a remote-served job costs this node no
// compute.
func (m *Manager) runJob(j *Job) {
	defer j.cancel()
	start := time.Now()
	local := func(ctx context.Context) ([]byte, error) {
		m.met.sweepRuns.Inc()
		return m.runSweep(ctx, j)
	}
	var payload []byte
	var err error
	if m.forward != nil && !j.noForward {
		var info ServeInfo
		payload, info, err = m.forward.ExecuteSweep(j.runCtx, j.Key, j.Req, local)
		j.setServeInfo(info)
	} else {
		payload, err = local(j.runCtx)
		if m.forward != nil {
			j.setServeInfo(ServeInfo{ServedBy: m.forward.Self()})
		}
	}
	elapsed := time.Since(start)
	m.latency.Observe(elapsed)
	m.met.jobSeconds.Observe(elapsed.Seconds())
	var final JobState
	switch {
	case err == nil:
		// Locally computed payloads (and fleet-admitted remote ones) go
		// write-through to every tier; a forwarded payload the fleet did
		// not admit for replication stays memory-only, so the replica byte
		// budget actually bounds what remote data lands on local disk.
		if info := j.ServeInfo(); m.forward != nil && info.ServedBy != "" &&
			info.ServedBy != m.forward.Self() && !info.Replicated {
			m.cache.PutMemory(j.Key, payload)
		} else {
			m.cache.Put(j.Key, payload)
		}
		j.finish(StateDone, payload, "")
		final = StateDone
		m.met.payloadBytes.Observe(float64(len(payload)))
	case errors.Is(err, context.Canceled) || j.runCtx.Err() != nil:
		// A cancelled manager context (shutdown) lands here too.
		j.finish(StateCancelled, nil, "")
		final = StateCancelled
	default:
		j.finish(StateFailed, nil, err.Error())
		final = StateFailed
		m.logger.WithTrace(j.runCtx).Warn("job failed",
			tlog.F("job", j.ID), tlog.F("kind", j.Req.Kind),
			tlog.F("key", formatKey(j.Key)), tlog.Err(err))
	}
	m.met.completed.With(string(final)).Inc()
	if j.trace != "" {
		info := j.ServeInfo()
		m.rec.RecordSpan(telemetry.Span{
			Trace: j.trace, Name: "job.run",
			Attrs: map[string]string{
				"job": j.ID, "state": string(final),
				"served_by": info.ServedBy,
				"degraded":  strconv.FormatBool(info.Degraded),
			},
			Time: start, Duration: elapsed,
		})
	}
}

// executeSweep is the real sweep path, labeled for profilers: every
// sample taken under it carries the request kind and enumeration mode,
// so a CPU or mutex profile of a busy daemon splits by workload.
func (m *Manager) executeSweep(ctx context.Context, j *Job) (payload []byte, err error) {
	pprof.Do(ctx, pprof.Labels(
		"hbmvolt_kind", j.Req.Kind,
		"hbmvolt_shared", strconv.FormatBool(j.Req.Shared),
	), func(ctx context.Context) {
		payload, err = m.sweepPayload(ctx, j)
	})
	return payload, err
}

// sweepPayload builds the request's board (or, for the analytic kinds,
// its full-capacity fault model), runs the configured study through
// internal/core with progress events, and marshals the deterministic
// payload.
func (m *Manager) sweepPayload(ctx context.Context, j *Job) ([]byte, error) {
	req := j.Req
	onPoint := func(p core.SweepProgress) {
		j.appendEvent(Event{Type: "progress", SweepProgress: p})
	}
	env := Envelope{Kind: req.Kind, Key: formatKey(j.Key)}
	env.Request = req
	env.Request.Workers = 0

	// The analytic kinds need no board — just the device's fault model
	// at full geometry, the same construction System's atlas uses.
	if req.Kind == KindFaultMap || req.Kind == KindECCStudy {
		fcfg, err := board.FaultConfig(board.Config{Seed: req.Seed, Scale: req.Scale})
		if err != nil {
			return nil, err
		}
		fm, err := faults.New(fcfg)
		if err != nil {
			return nil, err
		}
		switch req.Kind {
		case KindFaultMap:
			study, err := core.RunFaultMapStudy(fm, req.Grid)
			if err != nil {
				return nil, err
			}
			env.FaultMap = study
		case KindECCStudy:
			study, err := core.RunECCStudy(fm, req.Grid)
			if err != nil {
				return nil, err
			}
			env.ECC = study
		}
		return report.Marshal(env)
	}

	b, err := board.New(board.Config{
		Seed:         req.Seed,
		Scale:        req.Scale,
		NoiseSigma:   req.Noise,
		SparseFaults: !req.Exact,
	})
	if err != nil {
		return nil, err
	}

	switch req.Kind {
	case KindReliability:
		patterns := make([]pattern.Pattern, len(req.Patterns))
		for i, name := range req.Patterns {
			if patterns[i], err = pattern.ByName(name); err != nil {
				return nil, err
			}
		}
		ports := make([]hbm.PortID, len(req.Ports))
		for i, p := range req.Ports {
			ports[i] = hbm.PortID(p)
		}
		workers := req.Workers
		if workers == 0 {
			workers = m.cfg.FleetSize
		}
		res, err := core.RunReliabilitySweep(ctx, core.ReliabilityConfig{
			Board:             b,
			Ports:             ports,
			Patterns:          patterns,
			BatchSize:         req.Batch,
			Grid:              req.Grid,
			Workers:           workers,
			SharedEnumeration: req.Shared,
			OnPoint:           onPoint,
		})
		if err != nil {
			return nil, err
		}
		env.Reliability = res
	case KindPower:
		res, err := core.RunPowerSweepCtx(ctx, core.PowerSweepConfig{
			Board:      b,
			Grid:       req.Grid,
			PortCounts: req.PortCounts,
			Samples:    req.Samples,
			OnPoint:    onPoint,
		})
		if err != nil {
			return nil, err
		}
		env.Power = res
	default:
		return nil, badRequest("unknown kind %q", req.Kind)
	}
	return report.Marshal(env)
}
