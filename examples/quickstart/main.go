// Quickstart: build the simulated VCU128 platform, undervolt the HBM
// rail step by step, and watch power drop and faults appear — the
// paper's experiment in twenty lines.
package main

import (
	"fmt"
	"log"

	"hbmvolt"
)

func main() {
	sys, err := hbmvolt.New(hbmvolt.Config{Scale: 256})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("V      power(W)  saving  fault-free PCs  usable @0.0001%")
	for _, v := range []float64{1.20, 1.10, 1.00, 0.98, 0.95, 0.90, 0.85} {
		if err := sys.SetVoltage(v); err != nil {
			log.Fatal(err)
		}
		watts, err := sys.PowerWatts()
		if err != nil {
			log.Fatal(err)
		}
		if v == 1.20 {
			fmt.Printf("%.2f   %6.2f    1.00x        %2d              %2d\n",
				v, watts, sys.UsablePCs(v, 0), sys.UsablePCs(v, 1e-6))
			continue
		}
		nominal := 17.36
		fmt.Printf("%.2f   %6.2f    %.2fx        %2d              %2d\n",
			v, watts, nominal/watts, sys.UsablePCs(v, 0), sys.UsablePCs(v, 1e-6))
	}

	g, err := sys.Guardband()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(g)

	plan, err := sys.Plan(1e-6, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan for a fault-tolerant app needing half the memory:")
	fmt.Println(" ", plan)

	// Crash behaviour below V_critical — and the recovery procedure.
	if err := sys.SetVoltage(0.80); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat 0.80V: crashed=%v (restore requires a power cycle)\n", sys.Crashed())
	if err := sys.PowerCycle(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after power cycle: crashed=%v\n", sys.Crashed())
}
