package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hbmvolt/internal/chaos"
)

// flakyHandler rejects the first n requests with the given status (and
// optional Retry-After), then delegates to the real handler.
type flakyHandler struct {
	n          int32
	status     int
	retryAfter string
	inner      http.Handler
	rejected   atomic.Int32
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.rejected.Add(1) <= f.n {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		http.Error(w, `{"error":"shedding load"}`, f.status)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func fastClient(url string) *Client {
	c := NewClient(url)
	c.RetryBase = time.Millisecond // keep test wall-clock negligible
	return c
}

func TestClientRetriesOn429And503(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		srv := New(Config{Workers: 1})
		fh := &flakyHandler{n: 2, status: status, inner: srv}
		ts := httptest.NewServer(fh)
		c := fastClient(ts.URL)

		sub, err := c.Submit(t.Context(), SweepRequest{
			Kind: KindReliability, Scale: 1024, Ports: []int{0},
			Patterns: []string{"all1"}, Grid: []float64{0.90}, Batch: 1,
		})
		if err != nil {
			t.Fatalf("status %d: Submit did not retry through: %v", status, err)
		}
		if st, err := c.Wait(t.Context(), sub.ID); err != nil || st != StateDone {
			t.Fatalf("status %d: Wait = %v, %v", status, st, err)
		}
		if got := fh.rejected.Load(); got < 3 {
			t.Fatalf("status %d: server saw %d requests, want >= 3 (2 rejections + success)", status, got)
		}
		ts.Close()
		srv.Close()
	}
}

func TestClientRetryHonorsRetryAfter(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	fh := &flakyHandler{n: 1, status: http.StatusServiceUnavailable, retryAfter: "1", inner: srv}
	ts := httptest.NewServer(fh)
	defer ts.Close()
	c := fastClient(ts.URL)

	start := time.Now()
	if _, err := c.Health(t.Context()); err != nil {
		t.Fatal(err)
	}
	// Backoff base is 1ms, so any wait ≥ 1s came from honoring the header.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry waited only %v; Retry-After: 1 not honored", elapsed)
	}
}

func TestClientRetryExhaustionSurfacesAPIError(t *testing.T) {
	var requests atomic.Int32
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, `{"error":"permanently overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer always.Close()
	c := fastClient(always.URL)
	c.Retries = 2

	_, err := c.Health(t.Context())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("APIError = %+v, want 503", apiErr)
	}
	if got := requests.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestClientParsesRetryAfterHeader(t *testing.T) {
	hinting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}))
	defer hinting.Close()
	c := fastClient(hinting.URL)
	c.Retries = -1 // single attempt: inspect the decoded error, don't wait 7s

	_, err := c.Health(t.Context())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 7 {
		t.Fatalf("error = %v, want *APIError with RetryAfter 7", err)
	}
}

func TestClientNoRetryOnBadRequest(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	var requests atomic.Int32
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		srv.ServeHTTP(w, r)
	}))
	defer counting.Close()
	c := fastClient(counting.URL)

	_, err := c.Submit(t.Context(), SweepRequest{Kind: "nonsense"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("error = %v, want 400 *APIError", err)
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("400 was retried %d times; permanent errors must not retry", got-1)
	}
}

// TestClientWaitFallsBackToPolling drops the NDJSON event stream
// mid-job via the service.events chaos site — exactly what a broken
// connection or restarted proxy looks like — and asserts Wait still
// reports the job's true terminal state by polling Status.
func TestClientWaitFallsBackToPolling(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	m := srv.Manager()
	runner := newBlockingRunner()
	m.runSweep = runner.run
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := fastClient(ts.URL)
	c.PollInterval = 10 * time.Millisecond

	plan := chaos.NewPlan().Set("service.events", chaos.Fault{
		Err: errors.New("injected stream drop"), Count: 1,
	})
	defer chaos.Activate(plan)()

	sub, err := c.Submit(t.Context(), SweepRequest{
		Kind: KindReliability, Scale: 1024, Ports: []int{0},
		Patterns: []string{"all1"}, Grid: []float64{0.90}, Batch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started

	waitDone := make(chan struct{})
	var state JobState
	var waitErr error
	go func() {
		defer close(waitDone)
		state, waitErr = c.Wait(t.Context(), sub.ID)
	}()

	// Let Wait hit the injected drop and enter its polling loop while the
	// job is still running, then release the worker.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-waitDone:
		t.Fatal("Wait returned while the job was still running")
	default:
	}
	close(runner.release)

	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never recovered from the dropped stream")
	}
	if waitErr != nil || state != StateDone {
		t.Fatalf("Wait after stream drop = %v, %v; want done", state, waitErr)
	}
	if p := plan.Fired("service.events"); p != 1 {
		t.Fatalf("chaos site fired %d times, want 1", p)
	}
}

// TestClientWaitTimeoutBoundsPolling runs Wait against a server whose
// job never terminates — the stream ends with no terminal event and
// Status reports running forever. The polling fallback must give up at
// WaitTimeout with the typed ErrWaitTimeout, while a caller-side
// cancellation still surfaces as the context's error.
func TestClientWaitTimeoutBoundsPolling(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/j1/events", func(w http.ResponseWriter, r *http.Request) {
		// The stream ends cleanly with the job still mid-flight.
	})
	mux.HandleFunc("GET /v1/sweeps/j1", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, JobStatus{ID: "j1", State: StateRunning})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	c.WaitTimeout = 150 * time.Millisecond
	start := time.Now()
	_, err := c.Wait(t.Context(), "j1")
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("Wait on a never-terminal job = %v, want ErrWaitTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("Wait gave up after %v, want about the 150ms bound", elapsed)
	}

	c2 := NewClient(ts.URL)
	c2.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(t.Context(), 50*time.Millisecond)
	defer cancel()
	if _, err := c2.Wait(ctx, "j1"); errors.Is(err, ErrWaitTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller-cancelled Wait = %v, want the context error, not ErrWaitTimeout", err)
	}
}

func TestClientWaitTimeoutDefaults(t *testing.T) {
	c := &Client{}
	if got := c.waitTimeout(); got != 15*time.Minute {
		t.Fatalf("default wait bound = %v, want 15m", got)
	}
	c.WaitTimeout = -1
	if got := c.waitTimeout(); got != 0 {
		t.Fatalf("negative WaitTimeout = %v, want 0 (unbounded)", got)
	}
	c.WaitTimeout = time.Second
	if got := c.waitTimeout(); got != time.Second {
		t.Fatalf("explicit WaitTimeout = %v, want it verbatim", got)
	}
}

// TestClientWaitStreamStillPreferred pins that the happy path is
// untouched: with no fault armed, Wait consumes the terminal event from
// the stream and never needs Status.
func TestClientWaitStreamStillPreferred(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := fastClient(ts.URL)
	c.PollInterval = time.Hour // a fallback poll would hang the test

	sub, err := c.Submit(t.Context(), SweepRequest{
		Kind: KindReliability, Scale: 1024, Ports: []int{0},
		Patterns: []string{"all1"}, Grid: []float64{0.90}, Batch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 10*time.Second)
	defer cancel()
	if st, err := c.Wait(ctx, sub.ID); err != nil || st != StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
}
