package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hbmvolt/internal/service"
)

// Hedged forwarding: a forward that is slow past the hedge delay races
// the second-choice rendezvous owner — the node the key would move to
// if the owner left — with the loser cancelled. Tail latency drops to
// the faster of two independent nodes, and a primary that *fails*
// (rather than stalls) fails over to the second choice immediately,
// before the serve ever degrades to local compute. Determinism makes
// this safe: both choices produce byte-identical payloads, so whichever
// answer lands first is the answer.

const (
	// hedgeWindowSize bounds the sliding window of forward latencies
	// the adaptive hedge delay derives from.
	hedgeWindowSize = 64
	// hedgeDelayFloor is the minimum adaptive hedge delay: below this,
	// racing costs more in duplicate compute than it saves in tail
	// latency.
	hedgeDelayFloor = 50 * time.Millisecond
)

// latencyWindow is a bounded sliding window of forward latencies.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	idx     int
	n       int // live samples, ≤ len(samples)
}

func (w *latencyWindow) init(size int) {
	w.samples = make([]time.Duration, size)
}

// Observe records one successful forward's total latency.
func (w *latencyWindow) Observe(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples[w.idx] = d
	w.idx = (w.idx + 1) % len(w.samples)
	if w.n < len(w.samples) {
		w.n++
	}
}

// P95 returns the window's 95th-percentile latency (0 while empty).
func (w *latencyWindow) P95() time.Duration {
	w.mu.Lock()
	live := make([]time.Duration, w.n)
	copy(live, w.samples[:w.n])
	w.mu.Unlock()
	if len(live) == 0 {
		return 0
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	i := (len(live)*95 + 99) / 100
	if i > 0 {
		i--
	}
	return live[i]
}

// hedgeState is the forwarder's hedging state: the latency window the
// adaptive delay derives from, plus the outcome counters /healthz and
// /metrics render.
type hedgeState struct {
	window                         latencyWindow
	launched, wins, losses, failed atomic.Uint64
}

// hedgeDelay picks how long the primary forward may run before the
// second choice is raced: the configured fixed delay, or the sliding-
// window p95 of observed forward latencies floored at 50ms (falling
// back to the full forward timeout while the window is empty, so a
// cold node does not race every first request).
func (f *Forwarder) hedgeDelay() time.Duration {
	if d := f.opts.HedgeDelay; d != 0 {
		return d
	}
	p95 := f.hedge.window.P95()
	if p95 == 0 {
		return f.opts.ForwardTimeout
	}
	if p95 < hedgeDelayFloor {
		return hedgeDelayFloor
	}
	return p95
}

// errOpenCircuit reports that no remote choice was even attemptable:
// the primary's circuit was open and no usable second choice existed.
var errOpenCircuit = errors.New("fleet: owner circuit open")

// raceResult is one contender's outcome in a hedged forward.
type raceResult struct {
	p       *peer
	payload []byte
	err     error
}

// forward serves req from primary, hedging to second (which may be
// nil) when the primary is slow past the hedge delay or fails outright.
// The losing fetch is cancelled; breaker bookkeeping happens here for
// both contenders. It returns the payload and the peer that produced
// it, or an error once every viable choice failed.
func (f *Forwarder) forward(ctx context.Context, req service.SweepRequest, primary, second *peer) ([]byte, *peer, error) {
	if !primary.breaker.Allow() {
		// The owner's circuit is open: no point waiting a hedge delay.
		// Go straight at the second choice when its breaker admits.
		if second == nil || !second.breaker.Allow() {
			return nil, nil, errOpenCircuit
		}
		start := time.Now()
		payload, err := f.fetch(ctx, second, req)
		if err == nil {
			second.breaker.Success()
			f.hedge.window.Observe(time.Since(start))
			return payload, second, nil
		}
		if ctx.Err() == nil {
			second.forwardFailures.Add(1)
			second.breaker.Failure()
		}
		return nil, nil, err
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser (and any laggard on early return)
	resc := make(chan raceResult, 2)
	start := time.Now()
	run := func(p *peer) {
		payload, err := f.fetch(rctx, p, req)
		resc <- raceResult{p, payload, err}
	}
	go run(primary)
	inflight := 1
	hedged := false

	// launchHedge starts the second-choice fetch at most once, breaker
	// permitting. Hedging disabled (negative delay) still fails over on
	// primary *failure* — the timer path just never fires.
	launchHedge := func() {
		if hedged || second == nil || !second.breaker.Allow() {
			return
		}
		hedged = true
		f.hedge.launched.Add(1)
		inflight++
		go run(second)
	}

	var timerC <-chan time.Time
	if second != nil && f.opts.HedgeDelay >= 0 {
		timer := time.NewTimer(f.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}

	var firstErr error
	for inflight > 0 {
		select {
		case <-timerC:
			timerC = nil
			launchHedge()
		case r := <-resc:
			inflight--
			if r.err == nil {
				r.p.breaker.Success()
				f.hedge.window.Observe(time.Since(start))
				if hedged {
					if r.p == second {
						f.hedge.wins.Add(1)
					} else {
						f.hedge.losses.Add(1)
					}
				}
				return r.payload, r.p, nil
			}
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			r.p.forwardFailures.Add(1)
			r.p.breaker.Failure()
			if firstErr == nil {
				firstErr = r.err
			} else {
				firstErr = fmt.Errorf("%v; %w", firstErr, r.err)
			}
			// A failed primary does not wait out the hedge delay: fail
			// over to the second choice immediately.
			timerC = nil
			launchHedge()
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	if hedged {
		f.hedge.failed.Add(1)
	}
	return nil, nil, firstErr
}
