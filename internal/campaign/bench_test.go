package campaign

import (
	"context"
	"testing"
)

// BenchmarkCampaignExpand measures spec normalization plus cross-product
// expansion of the built-in paper-repro campaign — the pure declarative
// overhead a campaign adds before any sweep runs.
func BenchmarkCampaignExpand(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := PaperRepro(true)
		if err := spec.Normalize(); err != nil {
			b.Fatal(err)
		}
		cells, err := spec.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// benchSpec is the multi-pattern campaign the throughput benchmark
// runs: five reliability cells probing one device over one grid with
// four pattern sets (plus a paired all-pattern cell), and an analytic
// scenario riding along. Exactly the shape the sweep planner targets —
// many cells, one silicon.
func benchSpec() Spec {
	return Spec{
		Name: "bench",
		Scenarios: []Scenario{
			{
				Name: "rel",
				Kind: "reliability",
				PatternSets: [][]string{
					{"all1"}, {"all0"}, {"checker"}, {"all1", "all0", "checker"},
				},
				Grid:  []float64{0.91, 0.90, 0.89, 0.88},
				Ports: []int{5, 18},
				Batch: 2,
			},
			{Name: "ecc", Kind: "ecc-study", Grid: []float64{0.95, 0.90}},
		},
	}
}

// BenchmarkCampaignRun measures end-to-end campaign execution of the
// multi-pattern spec on a private manager, manifest assembly included,
// in both execution modes: isolated (the legacy per-pattern path) and
// shared (the sweep planner). cells/sec is the headline metric — the
// planner's contract is that it scales with the spec's unique physics,
// not its cell count, so shared must beat isolated by ≥3× here.
func BenchmarkCampaignRun(b *testing.B) {
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		shared bool
	}{
		{"isolated", false},
		{"shared", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			spec := benchSpec()
			cells := 0
			for i := 0; i < b.N; i++ {
				res, err := Run(ctx, spec, Options{Jobs: 2, SharedEnumeration: mode.shared})
				if err != nil {
					b.Fatal(err)
				}
				if res.Manifest.Cells != 5 {
					b.Fatalf("cells = %d", res.Manifest.Cells)
				}
				cells += res.Manifest.Cells
			}
			b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/sec")
		})
	}
}
