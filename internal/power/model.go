// Package power models the HBM subsystem's power consumption under
// voltage underscaling, following the paper's §III-A.
//
// Active power obeys P = α·C_L·f·V² (Eq. 1, from Micron's DDR4 power
// technical report). Idle power — clocking, refresh, standby — is
// measured in the paper to be roughly one third of full-load power, and
// scales with V² as well. Below the guardband, stuck cells stop
// charging/discharging, reducing the effective switched capacitance
// (α·C_L); the paper measures this as a 14% drop at 0.85 V (Fig. 3),
// which is why total savings reach 2.3× instead of the (1.2/0.85)² ≈ 2×
// that voltage scaling alone would give.
package power

import (
	"fmt"
	"math"
)

// Params configures the power model. The defaults reproduce the paper's
// platform-level numbers.
type Params struct {
	// VNominal is the nominal supply voltage (1.20 V).
	VNominal float64
	// PeakBandwidthGBs is the achieved full-utilization bandwidth the
	// power numbers are normalized to (310 GB/s in the paper).
	PeakBandwidthGBs float64
	// FullLoadWatts is the total HBM power at (VNominal, 100%
	// utilization). The paper quotes ~7 pJ/bit for HBM: 310 GB/s ×
	// 8 bit/B × 7 pJ/bit ≈ 17.4 W across both stacks.
	FullLoadWatts float64
	// IdleFraction is idle power as a fraction of full-load power at the
	// same voltage (≈ 1/3 per §III-A2).
	IdleFraction float64
}

// DefaultParams matches the paper's platform.
func DefaultParams() Params {
	return Params{
		VNominal:         1.20,
		PeakBandwidthGBs: 310,
		FullLoadWatts:    17.36,
		IdleFraction:     1.0 / 3.0,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.VNominal <= 0:
		return fmt.Errorf("power: VNominal %v must be positive", p.VNominal)
	case p.PeakBandwidthGBs <= 0:
		return fmt.Errorf("power: PeakBandwidthGBs %v must be positive", p.PeakBandwidthGBs)
	case p.FullLoadWatts <= 0:
		return fmt.Errorf("power: FullLoadWatts %v must be positive", p.FullLoadWatts)
	case p.IdleFraction < 0 || p.IdleFraction >= 1:
		return fmt.Errorf("power: IdleFraction %v out of [0,1)", p.IdleFraction)
	}
	return nil
}

// CapFactor returns the fraction of switched capacitance still active at
// voltage v (1.0 in the guardband, dropping once cells stick). The board
// wires this to faults.Model.GlobalStuckFraction.
type CapFactor func(v float64) float64

// UnityCapFactor models an ideal device with no stuck cells.
func UnityCapFactor(float64) float64 { return 1 }

// Model computes rail power for the two HBM stacks.
type Model struct {
	p   Params
	cap CapFactor
}

// New builds a power model; a nil capFactor means UnityCapFactor.
func New(p Params, capFactor CapFactor) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if capFactor == nil {
		capFactor = UnityCapFactor
	}
	return &Model{p: p, cap: capFactor}, nil
}

// MustNew is New but panics on error.
func MustNew(p Params, capFactor CapFactor) *Model {
	m, err := New(p, capFactor)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// Watts returns total HBM power at supply voltage v and bandwidth
// utilization util ∈ [0,1]. Both the idle and active components scale
// with V² and with the active-capacitance factor, which is why the
// measured savings factor is independent of utilization (§III-A1).
func (m *Model) Watts(v, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	idle := m.p.FullLoadWatts * m.p.IdleFraction
	base := idle + util*(m.p.FullLoadWatts-idle)
	scale := (v / m.p.VNominal) * (v / m.p.VNominal)
	return base * scale * m.cap(v)
}

// Savings returns the power-saving factor of running at voltage v versus
// nominal, at the given utilization: P(VNominal)/P(v).
func (m *Model) Savings(v, util float64) float64 {
	pv := m.Watts(v, util)
	if pv == 0 {
		return math.Inf(1)
	}
	return m.Watts(m.p.VNominal, util) / pv
}

// AlphaCLF returns the effective switched capacitance per second
// (α·C_L·f, units: farads/second) implied by a power measurement at
// (v, util): P / V². This is the Fig. 3 quantity.
func AlphaCLF(watts, v float64) float64 {
	if v == 0 {
		return 0
	}
	return watts / (v * v)
}

// NormalizedAlphaCLF divides the α·C_L·f at (v, util) by its value at
// nominal voltage and the same utilization, reproducing Fig. 3's per-
// bandwidth normalization.
func (m *Model) NormalizedAlphaCLF(v, util float64) float64 {
	nom := AlphaCLF(m.Watts(m.p.VNominal, util), m.p.VNominal)
	if nom == 0 {
		return 0
	}
	return AlphaCLF(m.Watts(v, util), v) / nom
}

// NormalizedPower divides power at (v, util) by power at nominal voltage
// and full utilization, reproducing Fig. 2's normalization.
func (m *Model) NormalizedPower(v, util float64) float64 {
	return m.Watts(v, util) / m.Watts(m.p.VNominal, 1)
}

// Amps returns the rail current draw at (v, util).
func (m *Model) Amps(v, util float64) float64 {
	if v <= 0 {
		return 0
	}
	return m.Watts(v, util) / v
}

// EnergyPerBit returns the access energy in picojoules per bit at
// (v, util); util must be positive. At nominal voltage and full load the
// default parameters give ≈7 pJ/bit, the figure the paper quotes for
// HBM (vs ~25 pJ/bit for DDRx).
func (m *Model) EnergyPerBit(v, util float64) (float64, error) {
	if util <= 0 {
		return 0, fmt.Errorf("power: energy per bit undefined at zero utilization")
	}
	bitsPerSec := m.p.PeakBandwidthGBs * 1e9 * 8 * util
	return m.Watts(v, util) / bitsPerSec * 1e12, nil
}
