package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hbmvolt
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkReliabilitySweep/j=1         	       1	1932172936 ns/op	        20.70 points/sec	         1.000 workers
BenchmarkReliabilitySweep/j=8-4       	       2	 486000000 ns/op	        82.30 points/sec	         8.000 workers
some unrelated chatter
PASS
ok  	hbmvolt	7.768s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "hbmvolt" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkReliabilitySweep/j=8-4" || b.Runs != 2 {
		t.Fatalf("record: %+v", b)
	}
	if b.Metrics["points/sec"] != 82.30 || b.Metrics["workers"] != 8 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
	if !strings.HasPrefix(b.Raw, "BenchmarkReliabilitySweep/j=8-4") {
		t.Fatalf("raw line lost: %q", b.Raw)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnly",
		"BenchmarkOdd 1 100",
		"BenchmarkBadRuns x 100 ns/op",
		"BenchmarkBadValue 1 abc ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}
