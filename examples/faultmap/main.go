// Faultmap renders the per-PC fault atlas (Fig. 5) plus a spatial view
// of the weak-cell clusters inside one pseudo channel — the paper's
// observation that faults concentrate in small regions of the HBM
// layers, which is what makes capacity/fault-rate trading possible at
// sub-PC granularity.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"hbmvolt"
)

func main() {
	sys, err := hbmvolt.New(hbmvolt.Config{Scale: 1}) // full-size atlas
	if err != nil {
		log.Fatal(err)
	}

	if err := sys.RenderFig5(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Spatial cluster view for one sensitive PC: each character covers an
	// equal slice of the 256 MB address space; '#' marks weak clusters.
	const stack, pc = 0, 5 // global PC5
	fm := sys.Board.Faults
	ranges := fm.ClusterRanges(stack, pc)
	rows := fm.Geometry().RowsPerPC()
	const width = 100
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = '.'
	}
	for _, r := range ranges {
		lo := int(r[0] * width / rows)
		hi := int((r[1] - 1) * width / rows)
		for i := lo; i <= hi && i < width; i++ {
			cells[i] = '#'
		}
	}
	fmt.Printf("weak-cell clusters of PC%d (%d regions, %.1f%% of rows):\n",
		pc, len(ranges), 100*fm.ClusterCoverage(stack, pc))
	fmt.Printf("  |%s|\n", string(cells))
	fmt.Printf("  0%s256MB\n", strings.Repeat(" ", width-7))

	// How concentrated are the faults at a moderate undervolt?
	share := fm.ClusteredFaultShare(stack, pc, 0.92)
	fmt.Printf("\nat 0.92V, %.0f%% of PC%d's faults fall inside %.1f%% of its rows\n",
		share*100, pc, 100*fm.ClusterCoverage(stack, pc))
}
