package faults

// Analytic evaluation path: exact expectations over full-size memories,
// derived from the same survival functions the Sampler draws from. These
// functions regenerate the paper's figures without touching simulated
// memory, and the test suite checks them against Monte-Carlo runs.

// FlipKind selects which observable flip class a rate refers to. A
// stuck-at-0 cell manifests as a 1→0 flip (visible under the all-1s
// pattern); a stuck-at-1 cell as a 0→1 flip (all-0s pattern).
type FlipKind int

const (
	// AnyFlip counts every stuck cell regardless of polarity; this is the
	// union over the paper's two pattern tests.
	AnyFlip FlipKind = iota
	// OneToZero counts stuck-at-0 cells only.
	OneToZero
	// ZeroToOne counts stuck-at-1 cells only.
	ZeroToOne
)

// String implements fmt.Stringer.
func (k FlipKind) String() string {
	switch k {
	case OneToZero:
		return "1to0"
	case ZeroToOne:
		return "0to1"
	default:
		return "any"
	}
}

// regionRate returns the per-cell stuck probability of the given flip
// class for cells inside or outside clusters of PC idx at voltage v.
func (m *Model) regionRate(idx int, v float64, inCluster bool, kind FlipKind) float64 {
	s := m.cellSurvival(idx, v, inCluster)
	if s == 0 {
		return 0
	}
	if kind == AnyFlip {
		return s
	}
	// Tail cells (V_c > polarityTailV) are always stuck-at-0.
	t := m.cellSurvival(idx, polarityTailV, inCluster)
	if t > s {
		t = s
	}
	body := s - t
	if kind == OneToZero {
		return t + body*(1-pStuckAt1)
	}
	return body * pStuckAt1
}

// CellRate returns the expected fraction of faulty cells of the given
// flip class in pseudo channel (stack, pc) at voltage v, served from the
// memoized rate atlas (atlas.go).
func (m *Model) CellRate(stack, pc int, v float64, kind FlipKind) float64 {
	return m.rates(v, kind).pcs[pcIndex(stack, pc)]
}

// RegionRates exposes the two-region decomposition of a PC's fault rate:
// the per-cell rate inside weak clusters, outside them, and the cluster
// coverage. Consumers that care about fault co-location within small
// codewords (e.g. ECC failure analysis) need this rather than the PC
// average, because double faults concentrate inside clusters.
func (m *Model) RegionRates(stack, pc int, v float64, kind FlipKind) (inRate, outRate, coverage float64) {
	idx := pcIndex(stack, pc)
	return m.regionRate(idx, v, true, kind), m.regionRate(idx, v, false, kind), m.coverage[idx]
}

// ExpectedFaults returns the expected number of faulty cells of the given
// class within the word-address window [wordLo, wordHi) of (stack, pc) at
// voltage v. It accounts exactly for how many of the window's rows fall
// inside weak clusters, which matters when tests sample a prefix of a PC.
func (m *Model) ExpectedFaults(stack, pc int, v float64, kind FlipKind, wordLo, wordHi uint64) float64 {
	if wordHi <= wordLo {
		return 0
	}
	idx := pcIndex(stack, pc)
	wpr := m.cfg.Geometry.WordsPerRow
	cs := &m.clusters[idx]

	// Whole rows in the window plus partial edges.
	words := wordHi - wordLo
	rowLo, rowHi := wordLo/wpr, wordHi/wpr

	var coveredWords uint64
	// Partial first row.
	if wordLo%wpr != 0 {
		n := wpr - wordLo%wpr
		if words < n {
			n = words
		}
		if cs.contains(rowLo) {
			coveredWords += n
		}
		wordLo += n
		rowLo = wordLo / wpr
	}
	if wordLo < wordHi {
		// Partial last row.
		if wordHi%wpr != 0 && rowHi >= rowLo {
			if cs.contains(rowHi) {
				coveredWords += wordHi % wpr
			}
		}
		// Full rows in between.
		coveredWords += cs.coveredIn(rowLo, rowHi) * wpr
	}

	inRate := m.regionRate(idx, v, true, kind)
	outRate := m.regionRate(idx, v, false, kind)
	uncovered := words - coveredWords
	return 256 * (float64(coveredWords)*inRate + float64(uncovered)*outRate)
}

// ExpectedPCFaults returns the expected faulty-cell count of a whole
// pseudo channel.
func (m *Model) ExpectedPCFaults(stack, pc int, v float64, kind FlipKind) float64 {
	return m.CellRate(stack, pc, v, kind) * m.cfg.Geometry.BitsPerPC()
}

// StackFaultFraction returns the expected fraction of faulty cells over
// an entire stack (the quantity of Fig. 4), served from the memoized
// rate atlas.
func (m *Model) StackFaultFraction(stack int, v float64, kind FlipKind) float64 {
	return m.rates(v, kind).stacks[stack]
}

// GlobalStuckFraction returns the device-wide fraction of stuck cells
// (both polarities). This is the quantity that derates active
// capacitance in the power model (Fig. 3): stuck cells no longer
// charge/discharge, so α·C_L drops by exactly this fraction. The power
// model evaluates it once per INA226 sample, so it is served from the
// memoized rate atlas.
func (m *Model) GlobalStuckFraction(v float64) float64 {
	return m.rates(v, AnyFlip).global
}

// PCFaultFree reports whether pseudo channel (stack, pc) is expected to
// be fault-free at voltage v: fewer than 0.5 expected stuck cells across
// its whole capacity, i.e. the most likely observation is zero faults.
func (m *Model) PCFaultFree(stack, pc int, v float64) bool {
	return m.ExpectedPCFaults(stack, pc, v, AnyFlip) < 0.5
}

// UsablePCs counts pseudo channels whose fault rate does not exceed
// tolerable at voltage v (the Fig. 6 quantity). A tolerable rate of 0
// means strictly fault-free (see PCFaultFree).
func (m *Model) UsablePCs(v, tolerable float64) int {
	n := 0
	for s := 0; s < NumStacks; s++ {
		for pc := 0; pc < PCsPerStack; pc++ {
			if m.PCUsable(s, pc, v, tolerable) {
				n++
			}
		}
	}
	return n
}

// PCUsable reports whether one pseudo channel meets the tolerable fault
// rate at voltage v.
func (m *Model) PCUsable(stack, pc int, v, tolerable float64) bool {
	if tolerable <= 0 {
		return m.PCFaultFree(stack, pc, v)
	}
	return m.CellRate(stack, pc, v, AnyFlip) <= tolerable
}

// UsablePCList returns the (stack, pc) pairs usable at voltage v under
// the tolerable rate, in global PC order.
func (m *Model) UsablePCList(v, tolerable float64) [][2]int {
	var out [][2]int
	for s := 0; s < NumStacks; s++ {
		for pc := 0; pc < PCsPerStack; pc++ {
			if m.PCUsable(s, pc, v, tolerable) {
				out = append(out, [2]int{s, pc})
			}
		}
	}
	return out
}

// ClusteredFaultShare returns the fraction of expected faults (any
// polarity) that fall inside weak clusters for (stack, pc) at voltage v.
// Near 1.0 in the moderate undervolt region, it quantifies the paper's
// "most faults are clustered together in small regions".
func (m *Model) ClusteredFaultShare(stack, pc int, v float64) float64 {
	idx := pcIndex(stack, pc)
	cov := m.coverage[idx]
	in := cov * m.regionRate(idx, v, true, AnyFlip)
	out := (1 - cov) * m.regionRate(idx, v, false, AnyFlip)
	if in+out == 0 {
		return 0
	}
	return in / (in + out)
}

// WeakSurvivalAt exposes the base weak survival curve (multiplier 1,
// reference temperature) for documentation plots and tests.
func WeakSurvivalAt(v float64) float64 { return weakSurvival(v) }

// BulkSurvivalAt exposes the model's bulk survival at voltage v.
func (m *Model) BulkSurvivalAt(v float64) float64 { return m.bulkSurvival(v) }

// VoltageGrid returns the paper's sweep grid from hi down to lo inclusive
// in VStep decrements, computed in integer millivolts to avoid float
// drift.
func VoltageGrid(hi, lo float64) []float64 {
	hmV := int(hi*1000 + 0.5)
	lmV := int(lo*1000 + 0.5)
	const step = int(VStep * 1000)
	var out []float64
	for mv := hmV; mv >= lmV; mv -= step {
		out = append(out, float64(mv)/1000)
	}
	return out
}

// PaperGrid returns the full characterization grid, 1.20 V down to
// 0.81 V.
func PaperGrid() []float64 { return VoltageGrid(VNom, VCritical) }

// DisplayGrid returns the paper's figure display grid: PaperGrid
// filtered to 50 mV steps, the resolution Figs. 2-4 plot at.
func DisplayGrid() []float64 {
	var out []float64
	for _, v := range PaperGrid() {
		if int(v*1000+0.5)%50 == 0 {
			out = append(out, v)
		}
	}
	return out
}
