package faults

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hbmvolt/internal/pattern"
)

// enumPatterns are the probes the shared-path tests derive from one
// enumeration: the paper's two uniform patterns plus an
// address-dependent one.
func enumPatterns() []pattern.Pattern {
	return []pattern.Pattern{pattern.AllOnes(), pattern.AllZeros(), pattern.Checkerboard()}
}

// legacyFlips evaluates one pattern the way the legacy per-pattern
// sampler path does: a uniform fill/check through CheckUniformRange for
// uniform patterns, a word-by-word overlay compare otherwise.
func legacyFlips(s *Sampler, pat pattern.Pattern, words uint64) (pattern.Flips, uint64) {
	if w, ok := pattern.UniformWord(pat); ok {
		return s.CheckUniformRange(0, words, w, w)
	}
	var flips pattern.Flips
	var faulty uint64
	s.RangeFaultWords(0, words, func(addr uint64, fs []CellFault) {
		w := pat.Word(addr)
		f := pattern.Compare(w, Overlay(w, fs))
		if f.Total() > 0 {
			faulty++
			flips.Add(f)
		}
	})
	return flips, faulty
}

// TestEnumerationExactBitIdentical pins the strongest form of the
// sharing contract: on the bit-exact sampler the fault set is already
// pattern-agnostic, so flips derived from one shared Enumeration must
// equal the legacy per-pattern evaluation bit for bit — every pattern,
// several voltages and reps, a sensitive and a quiet PC.
func TestEnumerationExactBitIdentical(t *testing.T) {
	const words = 1 << 13
	cfg := DefaultConfig()
	cfg.Geometry = Geometry{WordsPerPC: words, WordsPerRow: 32}
	m := MustNew(cfg)
	for _, pc := range []struct{ stack, pc int }{{1, 2}, {0, 1}} {
		for _, v := range []float64{0.93, 0.90, 0.87, 0.85} {
			for rep := uint64(0); rep < 2; rep++ {
				e := m.Enumerate(pc.stack, pc.pc, v, rep, words)
				if e.Aggregated() {
					t.Fatalf("bit-exact enumeration aggregated at %vV", v)
				}
				s := m.NewBatchSampler(pc.stack, pc.pc, v, rep)
				for _, pat := range enumPatterns() {
					gotF, gotW, ok := e.PatternFlips(pat)
					if !ok {
						t.Fatalf("PatternFlips !ok without aggregate segments")
					}
					wantF, wantW := legacyFlips(s, pat, words)
					if gotF != wantF || gotW != wantW {
						t.Errorf("stack%d pc%d %vV rep%d %s: shared (%+v, %d) vs legacy (%+v, %d)",
							pc.stack, pc.pc, v, rep, pat.Name(), gotF, gotW, wantF, wantW)
					}
				}
			}
		}
	}
}

// TestEnumerationSparsePositionalIdentical: in sparse mode the per-row
// position draws are keyed without any pattern term, so wherever no
// segment crosses the aggregate threshold the shared derivation must
// match the legacy sparse path bit for bit too.
func TestEnumerationSparsePositionalIdentical(t *testing.T) {
	const words = 1 << 13
	m := sparseModel(t, 0, words)
	for _, v := range []float64{0.93, 0.91, 0.90, 0.89} {
		for rep := uint64(0); rep < 2; rep++ {
			e := m.Enumerate(1, 2, v, rep, words)
			if e.Aggregated() {
				t.Skipf("aggregate regime engaged at %vV for this window; covered by the statistical test", v)
			}
			s := m.NewBatchSampler(1, 2, v, rep)
			for _, pat := range enumPatterns() {
				gotF, gotW, ok := e.PatternFlips(pat)
				if !ok {
					t.Fatalf("PatternFlips !ok without aggregate segments")
				}
				wantF, wantW := legacyFlips(s, pat, words)
				if gotF != wantF || gotW != wantW {
					t.Errorf("%vV rep%d %s: shared (%+v, %d) vs legacy (%+v, %d)",
						v, rep, pat.Name(), gotF, gotW, wantF, wantW)
				}
			}
		}
	}
}

// TestEnumerationStatisticalEquivalence pins the aggregate regime: the
// shared pattern-agnostic count draws must land within Poisson bounds
// of the analytic expectation for both flip classes, across the unsafe
// region — the same contract the legacy sparse aggregate draws satisfy.
func TestEnumerationStatisticalEquivalence(t *testing.T) {
	const words = 1 << 18
	m := sparseModel(t, 11, words)
	aggregated := false
	for _, c := range []struct {
		stack, pc int
		v         float64
	}{
		{1, 2, 0.90}, {0, 4, 0.92}, {0, 12, 0.87}, {0, 1, 0.85}, {0, 3, 0.845},
	} {
		e := m.Enumerate(c.stack, c.pc, c.v, 0, words)
		aggregated = aggregated || e.Aggregated()
		f10, _, ok := e.PatternFlips(pattern.AllOnes())
		if !ok {
			t.Fatalf("all1 density unknown")
		}
		f01, _, ok := e.PatternFlips(pattern.AllZeros())
		if !ok {
			t.Fatalf("all0 density unknown")
		}
		exp10 := m.ExpectedFaults(c.stack, c.pc, c.v, OneToZero, 0, words)
		exp01 := m.ExpectedFaults(c.stack, c.pc, c.v, ZeroToOne, 0, words)
		for _, chk := range []struct {
			name     string
			got, exp float64
		}{
			{"1to0", float64(f10.OneToZero), exp10},
			{"0to1", float64(f01.ZeroToOne), exp01},
		} {
			sd := math.Sqrt(math.Max(chk.exp, 1))
			if math.Abs(chk.got-chk.exp) > 6*sd {
				t.Errorf("stack%d pc%d %vV %s: shared enum %v, analytic %v ± %v",
					c.stack, c.pc, c.v, chk.name, chk.got, chk.exp, 6*sd)
			}
		}
		if f10.ZeroToOne != 0 || f01.OneToZero != 0 {
			t.Errorf("stack%d pc%d %vV: impossible flip polarity under uniform patterns", c.stack, c.pc, c.v)
		}
	}
	if !aggregated {
		t.Fatal("no case engaged the aggregate regime; test is vacuous")
	}
}

// TestEnumerationAggregateSharedAcrossPatterns: the stuck-cell counts
// of an aggregate segment are a property of the silicon — all-1s and
// all-0s probes of one enumeration must observe complementary splits
// of the same k0/k1 draws (exactly k0 1→0 flips under all-1s, exactly
// k1 0→1 flips under all-0s).
func TestEnumerationAggregateSharedAcrossPatterns(t *testing.T) {
	const words = 1 << 18
	m := sparseModel(t, 5, words)
	e := m.Enumerate(0, 3, 0.85, 0, words)
	if !e.Aggregated() {
		t.Fatal("0.85V window did not aggregate; test is vacuous")
	}
	var k0, k1 uint64
	for i := range e.aggs {
		k0 += e.aggs[i].k0
		k1 += e.aggs[i].k1
	}
	f10, _, _ := e.PatternFlips(pattern.AllOnes())
	f01, _, _ := e.PatternFlips(pattern.AllZeros())
	// Enumerated segments contribute too; subtract their exact counts.
	e10, _ := e.uniformFlips(pattern.AllOnesWord)
	e01, _ := e.uniformFlips(pattern.AllZerosWord)
	if uint64(f10.OneToZero-e10.OneToZero) != k0 {
		t.Errorf("all1 aggregate flips %d != shared k0 %d", f10.OneToZero-e10.OneToZero, k0)
	}
	if uint64(f01.ZeroToOne-e01.ZeroToOne) != k1 {
		t.Errorf("all0 aggregate flips %d != shared k1 %d", f01.ZeroToOne-e01.ZeroToOne, k1)
	}
}

// TestEnumerationUnknownDensity: a pattern without a closed-form ones
// density is refused (ok=false) when an aggregate segment exists, and
// accepted when the whole window enumerated.
func TestEnumerationUnknownDensity(t *testing.T) {
	opaque := opaquePattern{}
	const words = 1 << 18
	m := sparseModel(t, 5, words)
	if e := m.Enumerate(0, 3, 0.85, 0, words); !e.Aggregated() {
		t.Fatal("expected aggregate segments at 0.85V")
	} else if _, _, ok := e.PatternFlips(opaque); ok {
		t.Fatal("aggregate window accepted a pattern with unknown density")
	}
	if e := m.Enumerate(1, 2, 0.90, 0, 1<<13); e.Aggregated() {
		t.Skip("small window unexpectedly aggregated")
	} else if _, _, ok := e.PatternFlips(opaque); !ok {
		t.Fatal("fully enumerated window refused a density-less pattern")
	}
}

// opaquePattern is a valid Pattern with no OnesFraction.
type opaquePattern struct{}

func (opaquePattern) Word(addr uint64) pattern.Word { return pattern.Word{addr} }
func (opaquePattern) Name() string                  { return "opaque" }

// TestEnumStoreSingleflight: N concurrent requesters of one key must
// trigger exactly one computation and observe the same result.
func TestEnumStoreSingleflight(t *testing.T) {
	store := newEnumStore(1 << 20)
	var computes atomic.Int64
	release := make(chan struct{})
	key := EnumKey{Fingerprint: 1, VBits: 2}
	const n = 16
	results := make([]*Enumeration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = store.get(key, func() *Enumeration {
				computes.Add(1)
				<-release // hold the computation until everyone queued
				return &Enumeration{words: 7}
			})
		}(i)
	}
	// Wait until one computation is in flight, then let it finish. The
	// other requesters either coalesce onto it or (arriving later) hit
	// the published entry — either way, one compute.
	for store.stats().Misses == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for one key, want 1", got)
	}
	for i, e := range results {
		if e != results[0] {
			t.Fatalf("requester %d got a different enumeration", i)
		}
	}
	st := store.stats()
	if st.Computes != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want one miss and one compute", st)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Fatalf("stats = %+v: hits+coalesced = %d, want %d", st, st.Hits+st.Coalesced, n-1)
	}
}

// TestEnumStoreLRUEviction pins the byte accounting: inserts beyond the
// budget evict oldest-first, the byte counter always equals the sum of
// retained sizes, and the newest entry survives even when oversized.
func TestEnumStoreLRUEviction(t *testing.T) {
	mk := func(faults int) *Enumeration {
		return &Enumeration{faults: make([]uint64, faults)}
	}
	unit := int64(mk(100).SizeBytes())
	store := newEnumStore(3 * unit)
	key := func(i int) EnumKey { return EnumKey{Fingerprint: uint64(i)} }
	for i := 0; i < 5; i++ {
		store.get(key(i), func() *Enumeration { return mk(100) })
	}
	st := store.stats()
	if st.Entries != 3 || st.Bytes != 3*unit {
		t.Fatalf("after 5 same-size inserts: %+v, want 3 entries / %d bytes", st, 3*unit)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	// Keys 0 and 1 evicted, 2..4 retained: re-requesting 2 must hit.
	store.get(key(2), func() *Enumeration { t.Fatal("retained key recomputed"); return nil })
	// Re-requesting 0 recomputes (it was evicted).
	recomputed := false
	store.get(key(0), func() *Enumeration { recomputed = true; return mk(100) })
	if !recomputed {
		t.Fatal("evicted key served from cache")
	}
	// An oversized entry evicts everything else but itself survives.
	store.get(key(99), func() *Enumeration { return mk(10000) })
	st = store.stats()
	if st.Entries != 1 {
		t.Fatalf("oversized insert left %d entries, want 1", st.Entries)
	}
	if st.Bytes != int64(mk(10000).SizeBytes()) {
		t.Fatalf("byte accounting drifted: %d", st.Bytes)
	}
}

// TestEnumStoreConcurrent hammers the store from many goroutines over
// a small key space with a tight byte budget, so gets, inserts and
// evictions interleave — the -race gate for the memo.
func TestEnumStoreConcurrent(t *testing.T) {
	store := newEnumStore(2048)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := EnumKey{Fingerprint: uint64(i % 7), Rep: uint64(g % 2)}
				e := store.get(k, func() *Enumeration {
					return &Enumeration{words: k.Fingerprint, faults: make([]uint64, 16)}
				})
				if e.words != k.Fingerprint {
					t.Errorf("wrong enumeration for key %+v", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := store.stats()
	if st.Bytes > 2048+int64((&Enumeration{faults: make([]uint64, 16)}).SizeBytes()) {
		t.Fatalf("byte budget exceeded: %+v", st)
	}
}

// TestSharedEnumerationMemoized: two models with equal fingerprints
// resolve to one process-wide entry; distinct reps and voltages get
// distinct entries.
func TestSharedEnumerationMemoized(t *testing.T) {
	const words = 1 << 10
	m1 := sparseModel(t, 1301, words)
	m2 := sparseModel(t, 1301, words)
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("equal configs fingerprint differently")
	}
	before := EnumStoreStats()
	e1 := m1.SharedEnumeration(1, 2, 0.90, 0, words)
	e2 := m2.SharedEnumeration(1, 2, 0.90, 0, words)
	if e1 != e2 {
		t.Fatal("equal-fingerprint models did not share the enumeration")
	}
	if d := EnumStoreStats().Computes - before.Computes; d != 1 {
		t.Fatalf("%d computes for one shared key, want 1", d)
	}
	if m1.SharedEnumeration(1, 2, 0.90, 1, words) == e1 {
		t.Fatal("distinct reps shared an enumeration")
	}
	if m1.SharedEnumeration(1, 2, 0.89, 0, words) == e1 {
		t.Fatal("distinct voltages shared an enumeration")
	}
}

// BenchmarkSharedVsIsolatedEnumeration quantifies the tentpole win: at
// one voltage point, evaluating P patterns costs P full fault
// enumerations on the isolated (legacy) path, but one enumeration plus
// P allocation-free mask passes on the shared path.
func BenchmarkSharedVsIsolatedEnumeration(b *testing.B) {
	const words = 1 << 16
	pats := []pattern.Pattern{
		pattern.AllOnes(), pattern.AllZeros(), pattern.Checkerboard(), pattern.WalkingOnes(),
	}
	for _, v := range []float64{0.90, 0.87} {
		m := sparseModel(b, 17, words)
		b.Run(fmt.Sprintf("isolated/%.2fV", v), func(b *testing.B) {
			b.ReportAllocs()
			s := m.NewBatchSampler(1, 2, v, 0)
			for i := 0; i < b.N; i++ {
				for _, pat := range pats {
					legacyFlips(s, pat, words)
				}
			}
			b.ReportMetric(float64(len(pats))*float64(b.N)/b.Elapsed().Seconds(), "patterns/sec")
		})
		b.Run(fmt.Sprintf("shared/%.2fV", v), func(b *testing.B) {
			b.ReportAllocs()
			e := m.Enumerate(1, 2, v, 0, words)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, pat := range pats {
					if _, _, ok := e.PatternFlips(pat); !ok {
						b.Fatal("density unknown")
					}
				}
			}
			b.ReportMetric(float64(len(pats))*float64(b.N)/b.Elapsed().Seconds(), "patterns/sec")
		})
	}
}

// TestEnumerationExactStreamsWhenDense: a bit-exact window whose
// expected fault count exceeds the materialization budget spills to
// streaming mode — tiny memo entry, bit-identical statistics.
func TestEnumerationExactStreamsWhenDense(t *testing.T) {
	const words = 1 << 17 // ×256 bits ×~12.5% stuck at 0.85V ≈ 4M faults
	cfg := DefaultConfig()
	cfg.Geometry = Geometry{WordsPerPC: words, WordsPerRow: 32}
	m := MustNew(cfg)
	e := m.Enumerate(0, 3, 0.85, 0, words)
	if !e.Streamed() {
		t.Fatal("dense bit-exact window did not spill to streaming mode")
	}
	if e.FaultCount() != 0 || e.SizeBytes() > 256 {
		t.Fatalf("streamed enumeration retained %d faults / %d bytes", e.FaultCount(), e.SizeBytes())
	}
	s := m.NewBatchSampler(0, 3, 0.85, 0)
	for _, pat := range enumPatterns() {
		gotF, gotW, ok := e.PatternFlips(pat)
		if !ok {
			t.Fatalf("streamed PatternFlips !ok for %s", pat.Name())
		}
		wantF, wantW := legacyFlips(s, pat, words)
		if gotF != wantF || gotW != wantW {
			t.Errorf("%s: streamed (%+v, %d) vs legacy (%+v, %d)", pat.Name(), gotF, gotW, wantF, wantW)
		}
	}
	// A sparse window of the same shape keeps using the aggregate
	// regime, never the spill.
	if es := sparseModel(t, 0, words).Enumerate(0, 3, 0.85, 0, words); es.Streamed() {
		t.Fatal("sparse window spilled; aggregate regime should bound it")
	}
}

// TestEnumStorePanicSafety: a panicking computation must propagate to
// its caller, release concurrent waiters loudly, and leave the key
// retryable instead of wedged.
func TestEnumStorePanicSafety(t *testing.T) {
	store := newEnumStore(1 << 20)
	key := EnumKey{Fingerprint: 0xbad}
	waiterPanicked := make(chan bool, 1)
	go func() {
		defer func() { waiterPanicked <- recover() != nil }()
		for {
			store.mu.Lock()
			_, inflight := store.inflight[key]
			store.mu.Unlock()
			if inflight {
				break
			}
			runtime.Gosched()
		}
		store.get(key, func() *Enumeration { t.Error("waiter recomputed"); return nil })
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("computing caller did not observe the panic")
			}
		}()
		store.get(key, func() *Enumeration {
			// Hold the computation until the waiter has coalesced onto
			// it (bounded spin; the panic path is correct either way).
			for i := 0; i < 10000 && store.stats().Coalesced == 0; i++ {
				runtime.Gosched()
			}
			panic("compute failed")
		})
	}()
	if !<-waiterPanicked {
		t.Fatal("waiter returned silently from a panicked computation")
	}
	// The key is not wedged: a retry computes fresh.
	e := store.get(key, func() *Enumeration { return &Enumeration{words: 9} })
	if e == nil || e.words != 9 {
		t.Fatal("retry after panic did not recompute")
	}
}
