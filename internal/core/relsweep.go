package core

import (
	"errors"

	"hbmvolt/internal/faults"
)

// StackCurve is one stack's faulty-cell fraction across the voltage grid
// (Fig. 4).
type StackCurve struct {
	Stack     int
	Grid      []float64
	Fractions []float64
}

// Fig4Curves computes the per-stack fault-fraction curves analytically
// over the full-capacity device. Grid points are served from the
// memoized rate atlas, so figures sharing a grid (Fig. 5, Fig. 6, the
// capacity study) never recompute each other's expectations.
func Fig4Curves(fm *faults.Model, grid []float64) ([]StackCurve, error) {
	if fm == nil {
		return nil, errors.New("core: fault model is nil")
	}
	if grid == nil {
		grid = faults.PaperGrid()
	}
	curves := make([]StackCurve, faults.NumStacks)
	for s := 0; s < faults.NumStacks; s++ {
		c := StackCurve{Stack: s, Grid: grid}
		for _, v := range grid {
			c.Fractions = append(c.Fractions, fm.StackFaultFraction(s, v, faults.AnyFlip))
		}
		curves[s] = c
	}
	return curves, nil
}

// Fig5Cell is one entry of the per-PC fault atlas: the expected faulty-
// cell percentage of one pseudo channel at one voltage under one
// pattern, with the paper's presentation semantics (NF for no expected
// faults; values under 1% reported as 0).
type Fig5Cell struct {
	// Percent is the exact expected faulty-cell percentage.
	Percent float64
	// NF marks "no fault": fewer than 0.5 expected faulty cells in the
	// whole PC.
	NF bool
}

// Display renders the cell the way the paper's Fig. 5 does.
func (c Fig5Cell) Display() string {
	switch {
	case c.NF:
		return "NF"
	case c.Percent < 1:
		return "0"
	default:
		return itoaPct(c.Percent)
	}
}

// itoaPct formats a percentage with no decimals (Fig. 5 style).
func itoaPct(p float64) string {
	n := int(p + 0.5)
	if n > 100 {
		n = 100
	}
	// Small local formatter to avoid fmt in a hot path.
	if n == 0 {
		return "0"
	}
	buf := [3]byte{}
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Fig5Table holds the atlas for one flip class: rows are voltages,
// columns are the 32 pseudo channels.
type Fig5Table struct {
	Kind  faults.FlipKind
	Grid  []float64
	Cells [][faults.NumPCs]Fig5Cell
}

// BuildFig5Table computes the atlas analytically. kind selects the
// pattern: OneToZero corresponds to the all-1s test, ZeroToOne to
// all-0s, AnyFlip to their union.
func BuildFig5Table(fm *faults.Model, grid []float64, kind faults.FlipKind) (*Fig5Table, error) {
	if fm == nil {
		return nil, errors.New("core: fault model is nil")
	}
	if grid == nil {
		// Fig. 5 covers the unsafe region only.
		grid = faults.VoltageGrid(faults.VFirst10, faults.VAllFaulty)
	}
	t := &Fig5Table{Kind: kind, Grid: grid}
	bits := fm.Geometry().BitsPerPC()
	for _, v := range grid {
		var row [faults.NumPCs]Fig5Cell
		rates := fm.RateVector(v, kind)
		for g, rate := range rates {
			row[g] = Fig5Cell{
				Percent: rate * 100,
				NF:      rate*bits < 0.5,
			}
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// SensitiveSeparation quantifies the §III-B variability claim at one
// voltage: the ratio between the weakest "sensitive" PC and the
// strongest remaining PC.
func SensitiveSeparation(fm *faults.Model, v float64) float64 {
	sens := map[int]bool{}
	for _, g := range faults.SensitivePCs {
		sens[g] = true
	}
	minSens, maxOther := -1.0, 0.0
	rates := fm.RateVector(v, faults.AnyFlip)
	for g, r := range rates {
		if sens[g] {
			if minSens < 0 || r < minSens {
				minSens = r
			}
		} else if r > maxOther {
			maxOther = r
		}
	}
	if maxOther == 0 {
		return 0
	}
	return minSens / maxOther
}
