package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// silenceStdout redirects os.Stdout to /dev/null for the test and
// restores it afterwards.
func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunAllCommands(t *testing.T) {
	silenceStdout(t)
	*flagScale = 1024
	*flagNoise = 0
	*flagBatch = 2
	*flagVolts = 0.90
	commands := []string{
		"info", "fig2", "fig3", "fig4", "fig5", "fig6",
		"ecc", "temp", "capacity", "bandwidth",
		"tradeoff", "reliability",
	}
	for _, cmd := range commands {
		if err := run(cmd); err != nil {
			t.Fatalf("command %q: %v", cmd, err)
		}
	}
}

func TestRunUnknownCommand(t *testing.T) {
	silenceStdout(t)
	err := run("bogus")
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCSVExport(t *testing.T) {
	silenceStdout(t)
	*flagScale = 1024
	*flagNoise = 0
	path := filepath.Join(t.TempDir(), "fig2.csv")
	*flagCSV = path
	t.Cleanup(func() { *flagCSV = "" })
	if err := run("fig2"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "volts,ports,") {
		t.Fatalf("csv content: %.60s", data)
	}
}

func TestTradeoffInfeasible(t *testing.T) {
	silenceStdout(t)
	*flagScale = 1024
	*flagTol = 0
	*flagPCs = 33
	t.Cleanup(func() { *flagTol = 0; *flagPCs = 32 })
	if err := run("tradeoff"); err == nil {
		t.Fatal("impossible plan accepted")
	}
}

func TestGridAround(t *testing.T) {
	g := gridAround(1.00, 0.95)
	if len(g) != 6 {
		t.Fatalf("grid length %d", len(g))
	}
	if g[0] != 1.00 || g[5] != 0.95 {
		t.Fatalf("grid endpoints %v..%v", g[0], g[5])
	}
}
