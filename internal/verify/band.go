package verify

import (
	"fmt"
	"math"
)

// Band is an inclusive tolerance interval. A check whose observed value
// lands exactly on either boundary passes: bands state how far a value
// may drift, and "exactly N% off" is still within N%.
type Band struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Contains reports whether x lies inside the band (boundaries
// included). NaN never passes — a computation that produced no number
// cannot confirm a claim.
func (b Band) Contains(x float64) bool {
	return !math.IsNaN(x) && x >= b.Lo && x <= b.Hi
}

// PercentBand builds the band center ± pct percent of center.
func PercentBand(center, pct float64) Band {
	d := math.Abs(center) * pct / 100
	return Band{Lo: center - d, Hi: center + d}
}

// Exactly builds the degenerate band [v, v]: the observed value must
// match v (integer-valued extractions such as PC counts).
func Exactly(v float64) Band { return Band{Lo: v, Hi: v} }

// Check is one measured quantity of a claim: the observed value, the
// band it must land in, and the verdict.
type Check struct {
	Name     string  `json:"name"`
	Observed float64 `json:"observed"`
	Band     Band    `json:"band"`
	Pass     bool    `json:"pass"`
	// Note carries extraction context (units, window) for the findings
	// report; it never affects the verdict.
	Note string `json:"note,omitempty"`
}

// check evaluates observed against band.
func check(name string, observed float64, band Band) Check {
	return Check{Name: name, Observed: observed, Band: band, Pass: band.Contains(observed)}
}

func (c Check) withNote(note string) Check {
	c.Note = note
	return c
}

// EvalError is the typed failure of a claim extractor: the evidence was
// present but unusable (too few points, a zero denominator, a NaN
// input). Extractors return it instead of panicking, and the runner
// renders it as an ERROR verdict — which fails the gate, because a
// claim that cannot be evaluated is not confirmed.
type EvalError struct {
	// Reason describes what made the input unusable.
	Reason string
}

func (e *EvalError) Error() string { return "verify: " + e.Reason }

func evalErrf(format string, args ...any) *EvalError {
	return &EvalError{Reason: fmt.Sprintf(format, args...)}
}

// MAPE returns the mean absolute percentage error of observed against
// truth, in percent. Length mismatches, empty inputs, non-finite values
// and zero ground-truth denominators are reported as a *EvalError, never
// a panic or a silent Inf/NaN: callers that need to compare against a
// curve with zero-valued points must filter those points into a
// separate absolute check first.
func MAPE(observed, truth []float64) (float64, error) {
	if len(observed) != len(truth) {
		return 0, evalErrf("MAPE: length mismatch: %d observed vs %d truth", len(observed), len(truth))
	}
	if len(observed) == 0 {
		return 0, evalErrf("MAPE: no points")
	}
	sum := 0.0
	for i := range observed {
		o, t := observed[i], truth[i]
		if math.IsNaN(o) || math.IsInf(o, 0) {
			return 0, evalErrf("MAPE: observed[%d] is not finite", i)
		}
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return 0, evalErrf("MAPE: truth[%d] is not finite", i)
		}
		if t == 0 {
			return 0, evalErrf("MAPE: truth[%d] is zero (zero denominator)", i)
		}
		sum += math.Abs(o-t) / math.Abs(t)
	}
	return 100 * sum / float64(len(observed)), nil
}
