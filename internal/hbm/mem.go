package hbm

import (
	"sort"

	"hbmvolt/internal/pattern"
)

// pageWords is the allocation granule of the sparse store: 4096 words =
// 128 KB.
const pageWords = 4096

type page [pageWords]pattern.Word

// fillRun is a half-open word-address range [Lo, Hi) whose unallocated
// words all read W.
type fillRun struct {
	Lo, Hi uint64
	W      pattern.Word
}

// pagedMemory is a sparse word store: an ordered list of uniform fill
// runs covering the whole address space, with materialized pages layered
// on top for words that deviate from their run's fill. Writing a uniform
// test pattern over a 256 MB pseudo channel is O(existing runs + pages),
// and reading a uniform region back costs O(runs + pages touched) — the
// trick that makes Algorithm 1 runnable at realistic memSize.
type pagedMemory struct {
	words uint64
	// fills is sorted, non-overlapping, and covers [0, words) exactly;
	// adjacent runs always differ in fill word.
	fills []fillRun
	pages map[uint64]*page
}

func newPagedMemory(words uint64) *pagedMemory {
	return &pagedMemory{
		words: words,
		fills: []fillRun{{Lo: 0, Hi: words}},
		pages: make(map[uint64]*page),
	}
}

// Fill resets the whole region to the given word.
func (m *pagedMemory) Fill(w pattern.Word) {
	m.fills = m.fills[:0]
	m.fills = append(m.fills, fillRun{Lo: 0, Hi: m.words, W: w})
	m.pages = make(map[uint64]*page)
}

// fillIndex returns the index of the fill run containing addr.
func (m *pagedMemory) fillIndex(addr uint64) int {
	return sort.Search(len(m.fills), func(i int) bool { return m.fills[i].Hi > addr })
}

// fillAt returns the background word at addr (ignoring pages).
func (m *pagedMemory) fillAt(addr uint64) pattern.Word {
	return m.fills[m.fillIndex(addr)].W
}

// Write stores w at addr.
func (m *pagedMemory) Write(addr uint64, w pattern.Word) {
	pi := addr / pageWords
	p, ok := m.pages[pi]
	if !ok {
		if w == m.fillAt(addr) {
			return // matches the background; nothing to materialize
		}
		p = m.materialize(pi)
	}
	p[addr%pageWords] = w
}

// materialize allocates page pi initialized from the fill runs it spans.
func (m *pagedMemory) materialize(pi uint64) *page {
	p := &page{}
	lo := pi * pageWords
	hi := lo + pageWords
	if hi > m.words {
		hi = m.words
	}
	for i := m.fillIndex(lo); i < len(m.fills) && m.fills[i].Lo < hi; i++ {
		r := m.fills[i]
		a, b := r.Lo, r.Hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		for j := a; j < b; j++ {
			p[j-lo] = r.W
		}
	}
	m.pages[pi] = p
	return p
}

// WriteUniform sets every word of [start, start+count) to w. Cost is
// O(existing fill runs + allocated pages), independent of count: the
// fill-run list is spliced and fully covered pages are dropped; only
// pages straddling the range edges are patched word by word.
func (m *pagedMemory) WriteUniform(start, count uint64, w pattern.Word) {
	if count == 0 {
		return
	}
	end := start + count
	// Splice the fill-run list: keep runs outside [start, end), insert
	// the new run, and merge equal neighbours.
	out := make([]fillRun, 0, len(m.fills)+2)
	for _, r := range m.fills {
		if r.Hi <= start || r.Lo >= end {
			out = append(out, r)
			continue
		}
		if r.Lo < start {
			out = append(out, fillRun{Lo: r.Lo, Hi: start, W: r.W})
		}
		if r.Hi > end {
			out = append(out, fillRun{Lo: end, Hi: r.Hi, W: r.W})
		}
	}
	out = append(out, fillRun{Lo: start, Hi: end, W: w})
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && merged[n-1].Hi == r.Lo && merged[n-1].W == r.W {
			merged[n-1].Hi = r.Hi
			continue
		}
		merged = append(merged, r)
	}
	m.fills = merged

	// Reconcile the page overlay: pages fully inside the range are now
	// redundant; edge pages keep their out-of-range words and take w
	// inside it.
	for pi, p := range m.pages {
		plo, phi := pi*pageWords, pi*pageWords+pageWords
		if phi > m.words {
			phi = m.words
		}
		if plo >= end || phi <= start {
			continue
		}
		if plo >= start && phi <= end {
			delete(m.pages, pi)
			continue
		}
		a, b := plo, phi
		if a < start {
			a = start
		}
		if b > end {
			b = end
		}
		for j := a; j < b; j++ {
			p[j-plo] = w
		}
	}
}

// Read returns the word at addr.
func (m *pagedMemory) Read(addr uint64) pattern.Word {
	if p, ok := m.pages[addr/pageWords]; ok {
		return p[addr%pageWords]
	}
	return m.fillAt(addr)
}

// Runs walks [start, start+count) as maximal homogeneous runs, invoking
// visit for each. A run is either page-backed (pg != nil; words holds
// the run's slice of the page) or uniform (pg == nil; every word reads
// fill). Runs are visited in ascending address order and cover the
// window exactly once; uniform runs never cross a fill boundary.
func (m *pagedMemory) Runs(start, count uint64, visit func(runStart, runCount uint64, words []pattern.Word, fill pattern.Word)) {
	end := start + count
	a := start
	for a < end {
		pi := a / pageWords
		if p, ok := m.pages[pi]; ok {
			b := (pi + 1) * pageWords
			if b > end {
				b = end
			}
			off := a % pageWords
			visit(a, b-a, p[off:off+(b-a)], pattern.Word{})
			a = b
			continue
		}
		// Uniform span: extend across unallocated pages, clipped to the
		// containing fill run.
		fi := m.fillIndex(a)
		b := m.fills[fi].Hi
		if b > end {
			b = end
		}
		// Stop at the first allocated page inside the span.
		for npi := pi + 1; npi*pageWords < b; npi++ {
			if _, ok := m.pages[npi]; ok {
				b = npi * pageWords
				break
			}
		}
		visit(a, b-a, nil, m.fills[fi].W)
		a = b
	}
}

// AllocatedPages reports how many pages have materialized (observability
// for tests and memory budgeting).
func (m *pagedMemory) AllocatedPages() int { return len(m.pages) }
