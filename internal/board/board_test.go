package board

import (
	"hbmvolt/internal/axi"
	"math"
	"testing"

	"hbmvolt/internal/faults"
	"hbmvolt/internal/pattern"
)

func newBoard(t testing.TB, cfg Config) *Board {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBoardDefaults(t *testing.T) {
	b := newBoard(t, Config{})
	if b.Org.TotalPCs() != 32 {
		t.Fatalf("PCs = %d", b.Org.TotalPCs())
	}
	v, err := b.HBMVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.20) > 0.001 {
		t.Fatalf("initial voltage = %v", v)
	}
	if b.ActivePorts() != 32 {
		t.Fatalf("active ports = %d", b.ActivePorts())
	}
}

func TestSetHBMVoltageReachesStacks(t *testing.T) {
	b := newBoard(t, Config{})
	if err := b.SetHBMVoltage(0.95); err != nil {
		t.Fatal(err)
	}
	for _, s := range b.Device.Stacks {
		if math.Abs(s.Voltage()-0.95) > 0.001 {
			t.Fatalf("stack voltage = %v", s.Voltage())
		}
	}
	v, err := b.HBMVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.95) > 0.001 {
		t.Fatalf("read back %v", v)
	}
}

func TestMeasurePowerAnchorsNominal(t *testing.T) {
	b := newBoard(t, Config{})
	// Full utilization at nominal voltage: the paper's ~17.4 W reference
	// point (7 pJ/bit x 310 GB/s).
	if err := b.SetActivePorts(32); err != nil {
		t.Fatal(err)
	}
	w, err := b.MeasurePower()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-17.36) > 0.2 {
		t.Fatalf("full-load power = %v W, want ≈17.36", w)
	}
	// Idle is one third of that (§III-A2).
	if err := b.SetActivePorts(0); err != nil {
		t.Fatal(err)
	}
	idle, err := b.MeasurePower()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idle/w-1.0/3.0) > 0.01 {
		t.Fatalf("idle/full = %v, want ≈1/3", idle/w)
	}
}

func TestPowerSavingsAnchors(t *testing.T) {
	b := newBoard(t, Config{})
	measureAt := func(v float64) float64 {
		if err := b.SetHBMVoltage(v); err != nil {
			t.Fatal(err)
		}
		w, err := b.MeasurePower()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	nom := measureAt(1.20)
	// Guardband edge: 1.5x.
	if s := nom / measureAt(0.98); math.Abs(s-1.5) > 0.02 {
		t.Fatalf("savings at 0.98V = %v, want ≈1.5", s)
	}
	// Deep undervolt: 2.3x total (voltage squared + stuck-cell derating).
	if s := nom / measureAt(0.85); math.Abs(s-2.3) > 0.1 {
		t.Fatalf("savings at 0.85V = %v, want ≈2.3", s)
	}
}

func TestVoltageCurrentTelemetry(t *testing.T) {
	b := newBoard(t, Config{})
	v, a, err := b.MeasureVoltageCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.20) > 0.002 {
		t.Fatalf("bus volts = %v", v)
	}
	w, err := b.MeasurePower()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v*a-w) > 0.3 {
		t.Fatalf("V*I = %v vs P = %v", v*a, w)
	}
}

func TestSetActivePortsChangesUtilization(t *testing.T) {
	b := newBoard(t, Config{})
	if err := b.SetActivePorts(8); err != nil {
		t.Fatal(err)
	}
	if b.Utilization() != 0.25 {
		t.Fatalf("utilization = %v", b.Utilization())
	}
	if b.Ports[7].Enabled() == false || b.Ports[8].Enabled() == true {
		t.Fatal("port enable boundary wrong")
	}
	if err := b.SetActivePorts(33); err == nil {
		t.Fatal("33 ports accepted")
	}
	// Power scales with utilization.
	w8, err := b.MeasurePower()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetActivePorts(32); err != nil {
		t.Fatal(err)
	}
	w32, err := b.MeasurePower()
	if err != nil {
		t.Fatal(err)
	}
	if w8 >= w32 {
		t.Fatalf("power at 8 ports (%v) not below 32 ports (%v)", w8, w32)
	}
}

func TestAggregateBandwidth(t *testing.T) {
	b := newBoard(t, Config{})
	if bw := b.AggregateBandwidthGBs(); math.Abs(bw-310) > 2 {
		t.Fatalf("full bandwidth = %v, want ≈310", bw)
	}
	if err := b.SetActivePorts(16); err != nil {
		t.Fatal(err)
	}
	if bw := b.AggregateBandwidthGBs(); math.Abs(bw-155) > 1 {
		t.Fatalf("half bandwidth = %v", bw)
	}
}

func TestCrashAndPowerCycle(t *testing.T) {
	b := newBoard(t, Config{})
	if err := b.SetHBMVoltage(0.80); err != nil {
		t.Fatal(err)
	}
	if !b.Crashed() {
		t.Fatal("device did not crash below V_critical")
	}
	// Raising the voltage alone is not enough (paper §III-B).
	if err := b.SetHBMVoltage(1.20); err != nil {
		t.Fatal(err)
	}
	if !b.Crashed() {
		t.Fatal("crash cleared without power cycle")
	}
	if err := b.PowerCycle(); err != nil {
		t.Fatal(err)
	}
	if b.Crashed() {
		t.Fatal("still crashed after power cycle")
	}
	v, err := b.HBMVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.20) > 0.001 {
		t.Fatalf("voltage after power cycle = %v", v)
	}
}

func TestEndToEndReliabilityLoop(t *testing.T) {
	// A miniature Algorithm 1 through the full stack: PMBus voltage set,
	// TG traffic, fault counting against the analytic expectation.
	b := newBoard(t, Config{Scale: 64, Seed: 5})
	const port = 4 // sensitive PC4
	v := 0.89
	if err := b.SetHBMVoltage(v); err != nil {
		t.Fatal(err)
	}
	tg := b.TGs[port]
	if err := tg.Reset(); err != nil {
		t.Fatal(err)
	}
	words := b.Org.WordsPerPC
	st, err := tg.Run(axi.FillCheckProgram(pattern.AllOnes(), 0, words))
	if err != nil {
		t.Fatal(err)
	}
	want := b.Faults.ExpectedFaults(0, 4, v, faults.OneToZero, 0, words)
	got := float64(st.Flips.OneToZero)
	sd := math.Sqrt(math.Max(want, 1))
	if math.Abs(got-want) > 5*sd {
		t.Fatalf("end-to-end flips = %v, want %v ± %v", got, want, 5*sd)
	}
	if st.Flips.ZeroToOne != 0 {
		t.Fatal("0→1 flips under all-1s test")
	}
}

func TestNoiseConfigPropagates(t *testing.T) {
	exact := newBoard(t, Config{})
	noisy := newBoard(t, Config{NoiseSigma: 0.01})
	we, err := exact.MeasurePower()
	if err != nil {
		t.Fatal(err)
	}
	var differs bool
	for i := 0; i < 5; i++ {
		wn, err := noisy.MeasurePower()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wn-we) > 1e-6 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("noise config had no effect")
	}
}

func TestScaleOneIsFullSize(t *testing.T) {
	// Full-size construction must work without allocating the 8 GB (the
	// sparse store materializes nothing until writes deviate).
	b := newBoard(t, Config{Scale: 1})
	if b.Org.TotalBytes() != 8<<30 {
		t.Fatalf("total = %d", b.Org.TotalBytes())
	}
	if got := b.Device.Stacks[0].AllocatedPages(); got != 0 {
		t.Fatalf("allocated pages = %d", got)
	}
	if err := b.Device.Stacks[0].FillPC(0, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}
	if got := b.Device.Stacks[0].AllocatedPages(); got != 0 {
		t.Fatalf("fill allocated %d pages", got)
	}
}

func TestSwitchDisabledByDefault(t *testing.T) {
	b := newBoard(t, Config{})
	if b.Switch.Enabled {
		t.Fatal("switching network enabled; the paper disables it")
	}
	// Port 18 must be hard-wired to stack 1 pc 2.
	if err := b.Ports[18].WriteWord(3, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}
	w, err := b.Device.Stacks[1].ReadWord(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != pattern.AllOnesWord {
		t.Fatal("port 18 not wired to PC18")
	}
}
