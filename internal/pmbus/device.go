package pmbus

import (
	"errors"
	"fmt"
)

// ErrUnsupportedCommand is returned by devices for command codes they do
// not implement.
var ErrUnsupportedCommand = errors.New("pmbus: unsupported command")

// ErrPEC is returned when a packet's error code does not match its
// contents.
var ErrPEC = errors.New("pmbus: PEC mismatch")

// Device is a PMBus slave: word- and byte-granular register access keyed
// by command code.
type Device interface {
	// Address returns the 7-bit bus address.
	Address() byte
	WriteByteData(cmd byte, value byte) error
	ReadByteData(cmd byte) (byte, error)
	WriteWord(cmd byte, value uint16) error
	ReadWord(cmd byte) (uint16, error)
}

// Bus routes SMBus transactions to attached devices and (optionally)
// verifies packet error codes end to end, simulating the wire protocol
// the host controller uses on the real board.
type Bus struct {
	devices map[byte]Device
	// UsePEC enables packet error checking on every transaction.
	UsePEC bool
}

// NewBus returns an empty bus with PEC enabled (as the board firmware
// configures it).
func NewBus() *Bus {
	return &Bus{devices: make(map[byte]Device), UsePEC: true}
}

// Attach registers a device; attaching two devices at one address is an
// error.
func (b *Bus) Attach(d Device) error {
	addr := d.Address()
	if addr>>7 != 0 {
		return fmt.Errorf("pmbus: address 0x%02x is not 7-bit", addr)
	}
	if _, dup := b.devices[addr]; dup {
		return fmt.Errorf("pmbus: address 0x%02x already attached", addr)
	}
	b.devices[addr] = d
	return nil
}

func (b *Bus) device(addr byte) (Device, error) {
	d, ok := b.devices[addr]
	if !ok {
		return nil, fmt.Errorf("pmbus: no device at address 0x%02x (NACK)", addr)
	}
	return d, nil
}

// WriteWord performs an SMBus Write Word transaction. With PEC enabled
// the full packet [addr+W, cmd, lo, hi, pec] is assembled and validated
// as the device would.
func (b *Bus) WriteWord(addr, cmd byte, value uint16) error {
	d, err := b.device(addr)
	if err != nil {
		return err
	}
	if b.UsePEC {
		pkt := []byte{addr << 1, cmd, byte(value), byte(value >> 8)}
		if err := verifyPEC(append(pkt, PEC(pkt))); err != nil {
			return err
		}
	}
	return d.WriteWord(cmd, value)
}

// ReadWord performs an SMBus Read Word transaction, validating the
// response PEC when enabled.
func (b *Bus) ReadWord(addr, cmd byte) (uint16, error) {
	d, err := b.device(addr)
	if err != nil {
		return 0, err
	}
	v, err := d.ReadWord(cmd)
	if err != nil {
		return 0, err
	}
	if b.UsePEC {
		pkt := []byte{addr << 1, cmd, addr<<1 | 1, byte(v), byte(v >> 8)}
		if err := verifyPEC(append(pkt, PEC(pkt))); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// WriteByte performs an SMBus Write Byte transaction.
func (b *Bus) WriteByteData(addr, cmd, value byte) error {
	d, err := b.device(addr)
	if err != nil {
		return err
	}
	if b.UsePEC {
		pkt := []byte{addr << 1, cmd, value}
		if err := verifyPEC(append(pkt, PEC(pkt))); err != nil {
			return err
		}
	}
	return d.WriteByteData(cmd, value)
}

// ReadByte performs an SMBus Read Byte transaction.
func (b *Bus) ReadByteData(addr, cmd byte) (byte, error) {
	d, err := b.device(addr)
	if err != nil {
		return 0, err
	}
	v, err := d.ReadByteData(cmd)
	if err != nil {
		return 0, err
	}
	if b.UsePEC {
		pkt := []byte{addr << 1, cmd, addr<<1 | 1, v}
		if err := verifyPEC(append(pkt, PEC(pkt))); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// SendByte performs an SMBus Send Byte transaction (command only).
func (b *Bus) SendByte(addr, cmd byte) error {
	d, err := b.device(addr)
	if err != nil {
		return err
	}
	return d.WriteByteData(cmd, 0)
}

// verifyPEC checks that the last byte of pkt is the CRC of the rest.
func verifyPEC(pkt []byte) error {
	n := len(pkt) - 1
	if PEC(pkt[:n]) != pkt[n] {
		return ErrPEC
	}
	return nil
}
