package hbm

import "hbmvolt/internal/pattern"

// pageWords is the allocation granule of the sparse store: 4096 words =
// 128 KB.
const pageWords = 4096

type page [pageWords]pattern.Word

// pagedMemory is a sparse word store with a uniform fill value. Pages
// materialize only when a word deviates from the fill, so writing a
// uniform test pattern over a 256 MB pseudo channel is O(1) — the trick
// that makes Algorithm 1 runnable at realistic memSize.
type pagedMemory struct {
	words uint64
	fill  pattern.Word
	pages map[uint64]*page
}

func newPagedMemory(words uint64) *pagedMemory {
	return &pagedMemory{words: words, pages: make(map[uint64]*page)}
}

// Fill resets the whole region to the given word.
func (m *pagedMemory) Fill(w pattern.Word) {
	m.fill = w
	m.pages = make(map[uint64]*page)
}

// Write stores w at addr.
func (m *pagedMemory) Write(addr uint64, w pattern.Word) {
	pi := addr / pageWords
	p, ok := m.pages[pi]
	if !ok {
		if w == m.fill {
			return // matches the background; nothing to materialize
		}
		p = &page{}
		for i := range p {
			p[i] = m.fill
		}
		m.pages[pi] = p
	}
	p[addr%pageWords] = w
}

// Read returns the word at addr.
func (m *pagedMemory) Read(addr uint64) pattern.Word {
	if p, ok := m.pages[addr/pageWords]; ok {
		return p[addr%pageWords]
	}
	return m.fill
}

// AllocatedPages reports how many pages have materialized (observability
// for tests and memory budgeting).
func (m *pagedMemory) AllocatedPages() int { return len(m.pages) }
