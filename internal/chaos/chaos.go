// Package chaos is the repository's fault-injection harness: named
// injection sites compiled into production code paths as no-ops, armed
// only by tests. It exists so the resilience layer — the disk cache
// tier, the campaign journal, the NDJSON event stream — can be tested
// against the failures it claims to survive (I/O errors, latency
// spikes, torn writes, dropped streams, crashes mid-campaign) without
// bespoke test seams at every site.
//
// Contract:
//
//   - Production code calls Inject(site) (or Wrap) at the points where
//     the outside world can fail. With no plan armed this is a single
//     atomic load returning nil — safe to leave in hot-ish paths.
//   - Tests arm a Plan mapping sites to faults: an error to return, a
//     delay to impose, a callback to run (e.g. panic, to simulate a
//     crash), and a trigger window (After / Count) selecting which
//     passes through the site fire.
//   - Nothing under cmd/ or any non-test file ever arms a plan, so
//     released binaries cannot be steered into injected failures.
//
// Sites are plain strings owned by the package that calls Inject;
// the convention is "<package>.<operation>", e.g. "disktier.write".
package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens when an armed site triggers.
type Fault struct {
	// Err is returned from Inject when the fault fires (error
	// injection). A firing fault with a nil Err still runs Sleep and
	// Callback — latency or crash injection without an error result.
	Err error
	// Sleep delays the caller before Inject returns (latency injection).
	Sleep time.Duration
	// Callback runs when the fault fires, before Inject returns — panic
	// in it to simulate a crash at the site.
	Callback func()
	// After skips the first After passes through the site before firing.
	After int
	// Count limits how many times the fault fires; 0 means every pass
	// once past After.
	Count int
	// HTTP selects a transport-level failure mode when the site guards
	// an HTTP round trip through a chaos.Transport (see transport.go):
	// connection refused, black hole, slow link, or a response body
	// severed mid-read. Ignored by plain Inject.
	HTTP HTTPMode
	// DropAfter is how many response-body bytes HTTPDropBody lets
	// through before severing the connection (0 = drop immediately).
	DropAfter int
}

// Plan is a set of armed faults keyed by site name. Arm it with
// Activate; a nil or unarmed plan injects nothing.
type Plan struct {
	mu     sync.Mutex
	faults map[string]*armedFault
}

type armedFault struct {
	fault Fault
	seen  int // passes observed
	fired int // times fired
}

// NewPlan builds an empty plan.
func NewPlan() *Plan {
	return &Plan{faults: make(map[string]*armedFault)}
}

// Set arms (or replaces) the fault for a site and returns the plan for
// chaining.
func (p *Plan) Set(site string, f Fault) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[site] = &armedFault{fault: f}
	return p
}

// Fired reports how many times the site's fault has fired.
func (p *Plan) Fired(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.faults[site]; ok {
		return a.fired
	}
	return 0
}

// Seen reports how many passes the site has observed (fired or not).
func (p *Plan) Seen(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.faults[site]; ok {
		return a.seen
	}
	return 0
}

// trigger decides whether the site fires on this pass and snapshots the
// fault if so.
func (p *Plan) trigger(site string) (Fault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.faults[site]
	if !ok {
		return Fault{}, false
	}
	pass := a.seen
	a.seen++
	if pass < a.fault.After {
		return Fault{}, false
	}
	if a.fault.Count > 0 && a.fired >= a.fault.Count {
		return Fault{}, false
	}
	a.fired++
	return a.fault, true
}

// active is the process-wide armed plan (nil = chaos disabled).
var active atomic.Pointer[Plan]

// Activate arms plan process-wide and returns a function restoring the
// previous plan. Tests must call the restore function (defer it); plans
// do not stack — the latest Activate wins until restored.
func Activate(plan *Plan) (restore func()) {
	prev := active.Swap(plan)
	return func() { active.Store(prev) }
}

// Enabled reports whether any plan is armed (tests and assertions; not
// needed before Inject, which is already a no-op when disarmed).
func Enabled() bool { return active.Load() != nil }

// Inject is the production-side hook: it returns nil immediately unless
// a plan arms this site and the fault's trigger window covers this
// pass, in which case it sleeps, runs the callback, and returns the
// fault's error.
func Inject(site string) error {
	plan := active.Load()
	if plan == nil {
		return nil
	}
	f, fire := plan.trigger(site)
	if !fire {
		return nil
	}
	if f.Sleep > 0 {
		time.Sleep(f.Sleep)
	}
	if f.Callback != nil {
		f.Callback()
	}
	return f.Err
}

// Wrap decorates an operation's error with an injected one: the
// injected fault wins, otherwise the real error passes through.
// Convenient at sites shaped like `return chaos.Wrap(site, f())`.
func Wrap(site string, err error) error {
	if ierr := Inject(site); ierr != nil {
		return fmt.Errorf("%s: %w", site, ierr)
	}
	return err
}
