// Package prf provides a small deterministic pseudo-random function used
// for all reproducible randomness in the simulator.
//
// Every stochastic quantity in the model (cell critical voltages, fault
// polarities, cluster placement, measurement noise) is derived by hashing
// a stable identity (seed, stack, pseudo-channel, word, bit, ...) with the
// functions here. There is no global RNG and no hidden state: the same
// configuration always produces the same device, which is what makes the
// Monte-Carlo and analytic evaluation paths comparable and the test suite
// deterministic.
//
// The mixing function is SplitMix64 (Steele et al., "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014), which passes BigCrush
// and costs a handful of arithmetic ops per call.
package prf

// Mix64 applies the SplitMix64 finalizer to x, producing a well-mixed
// 64-bit value. It is a bijection on uint64.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 hashes two values into one well-mixed word.
func Hash2(a, b uint64) uint64 {
	return Mix64(Mix64(a) ^ b)
}

// Hash3 hashes three values into one well-mixed word.
func Hash3(a, b, c uint64) uint64 {
	return Mix64(Hash2(a, b) ^ c)
}

// Hash4 hashes four values into one well-mixed word.
func Hash4(a, b, c, d uint64) uint64 {
	return Mix64(Hash3(a, b, c) ^ d)
}

// Hash5 hashes five values into one well-mixed word.
func Hash5(a, b, c, d, e uint64) uint64 {
	return Mix64(Hash4(a, b, c, d) ^ e)
}

// Float64 maps a hashed word to the unit interval [0,1).
// It uses the top 53 bits so the result is uniform over representable
// doubles in [0,1).
func Float64(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// Uniform hashes (a,b,c,d) and returns a float in [0,1).
func Uniform(a, b, c, d uint64) float64 {
	return Float64(Hash4(a, b, c, d))
}

// Source is a tiny deterministic stream generator seeded from a single
// word. It implements enough surface for sequential draws (cluster
// placement, synthetic workloads) without pulling in math/rand's global
// state. The zero value is a valid source with seed 0.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next value of the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next value of the stream mapped to [0,1).
func (s *Source) Float64() float64 {
	return Float64(s.Uint64())
}

// Intn returns a value in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prf: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Fill writes the next len(dst) values of the stream into dst in one
// pass — exactly the values len(dst) sequential Uint64 calls would
// return, so callers can batch without changing any realization. The
// state advance and finalizer are inlined into a single loop, which is
// what lets bulk consumers (the sparse fault enumeration draws two
// words per fault) amortize the per-draw call setup.
func (s *Source) Fill(dst []uint64) {
	st := s.state
	for i := range dst {
		st += 0x9e3779b97f4a7c15
		z := st
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		dst[i] = z ^ (z >> 31)
	}
	s.state = st
}

// Norm returns an approximately standard-normal variate using the sum of
// 12 uniforms (Irwin-Hall). Accurate to ~3 sigma, which is all the noise
// model needs, and branch-free.
func (s *Source) Norm() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += s.Float64()
	}
	return sum - 6
}
