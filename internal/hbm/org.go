// Package hbm models the High-Bandwidth Memory subsystem of the paper's
// test platform: two 4 GB HBM2 stacks, each with 8 independent 128-bit
// memory channels split into two 64-bit pseudo channels (PCs), for a
// total of 32 PCs of 256 MB each (§II-A/B, Fig. 1).
//
// The model covers exactly what the experiments exercise: word-granular
// reads and writes through the pseudo channels, the voltage-dependent
// fault overlay, and the crash behaviour below V_critical. Bank-level
// command timing lives in internal/dramctl.
package hbm

import "fmt"

// Organization captures the address-space geometry of the platform. The
// zero value is not useful; use DefaultOrganization (the paper's VCU128
// configuration) or a scaled variant from Scaled.
type Organization struct {
	// Stacks is the number of HBM stacks (2 on the VCU128).
	Stacks int
	// ChannelsPerStack is the number of 128-bit memory channels per stack.
	ChannelsPerStack int
	// PCsPerChannel is the number of pseudo channels per channel.
	PCsPerChannel int
	// WordsPerPC is the number of 256-bit AXI words per pseudo channel
	// (8M words = 256 MB at full scale).
	WordsPerPC uint64
	// WordsPerRow is the number of words per DRAM row (32 = 1 KB rows).
	WordsPerRow uint64
	// BankGroups and BanksPerGroup describe the per-PC bank organization.
	BankGroups    int
	BanksPerGroup int
}

// DefaultOrganization is the paper's platform: 2 stacks x 8 channels x 2
// pseudo channels, 256 MB per PC, 1 KB rows, 16 banks per PC.
var DefaultOrganization = Organization{
	Stacks:           2,
	ChannelsPerStack: 8,
	PCsPerChannel:    2,
	WordsPerPC:       8 << 20,
	WordsPerRow:      32,
	BankGroups:       4,
	BanksPerGroup:    4,
}

// Scaled returns the default organization with each pseudo channel
// shrunk by the given factor (must be a power-of-two divisor of the full
// word count). Scaling preserves row size and bank structure, so fault
// clustering and addressing behave identically; only capacity shrinks.
// It mirrors the paper's own reduction from 256M words (whole HBM) to 8M
// words (single PC).
func Scaled(factor uint64) (Organization, error) {
	o := DefaultOrganization
	if factor == 0 {
		return o, fmt.Errorf("hbm: zero scale factor")
	}
	if o.WordsPerPC%factor != 0 {
		return o, fmt.Errorf("hbm: scale factor %d does not divide %d words", factor, o.WordsPerPC)
	}
	o.WordsPerPC /= factor
	if o.WordsPerPC < o.WordsPerRow {
		return o, fmt.Errorf("hbm: scale factor %d leaves less than one row", factor)
	}
	return o, nil
}

// PCsPerStack returns the number of pseudo channels per stack (16).
func (o Organization) PCsPerStack() int { return o.ChannelsPerStack * o.PCsPerChannel }

// TotalPCs returns the device-wide pseudo-channel count (32).
func (o Organization) TotalPCs() int { return o.Stacks * o.PCsPerStack() }

// BytesPerPC returns the capacity of one pseudo channel in bytes.
func (o Organization) BytesPerPC() uint64 { return o.WordsPerPC * 32 }

// BytesPerStack returns the capacity of one stack in bytes.
func (o Organization) BytesPerStack() uint64 {
	return o.BytesPerPC() * uint64(o.PCsPerStack())
}

// TotalBytes returns the device capacity in bytes (8 GB at full scale).
func (o Organization) TotalBytes() uint64 {
	return o.BytesPerStack() * uint64(o.Stacks)
}

// RowsPerPC returns the number of DRAM rows per pseudo channel.
func (o Organization) RowsPerPC() uint64 { return o.WordsPerPC / o.WordsPerRow }

// Banks returns the number of banks per pseudo channel.
func (o Organization) Banks() int { return o.BankGroups * o.BanksPerGroup }

// Validate reports whether the organization is internally consistent.
func (o Organization) Validate() error {
	switch {
	case o.Stacks <= 0 || o.ChannelsPerStack <= 0 || o.PCsPerChannel <= 0:
		return fmt.Errorf("hbm: non-positive structure counts: %+v", o)
	case o.WordsPerRow == 0 || o.WordsPerPC == 0:
		return fmt.Errorf("hbm: zero geometry: %+v", o)
	case o.WordsPerPC%o.WordsPerRow != 0:
		return fmt.Errorf("hbm: WordsPerPC %d not a multiple of WordsPerRow %d", o.WordsPerPC, o.WordsPerRow)
	case o.BankGroups <= 0 || o.BanksPerGroup <= 0:
		return fmt.Errorf("hbm: bank structure invalid: %+v", o)
	case o.RowsPerPC()%uint64(o.Banks()) != 0:
		return fmt.Errorf("hbm: rows per PC %d not divisible by %d banks", o.RowsPerPC(), o.Banks())
	}
	return nil
}

// MaxPorts is the number of AXI ports the platform exposes (one per
// pseudo channel).
const MaxPorts = 32

// PortID identifies one of the 32 AXI ports; each port is hard-wired to
// one pseudo channel when the switching network is disabled (the paper's
// configuration).
type PortID int

// StackPC resolves a port to its (stack, pc-within-stack) pair: ports
// 0-15 belong to HBM0, 16-31 to HBM1, matching the paper's Fig. 5 axis.
func (p PortID) StackPC(o Organization) (stack, pc int) {
	per := o.PCsPerStack()
	return int(p) / per, int(p) % per
}

// GlobalPC returns the flattened pseudo-channel index of the port.
func (p PortID) GlobalPC() int { return int(p) }

// Location decodes a word address within a pseudo channel into its
// physical coordinates.
type Location struct {
	BankGroup int
	Bank      int
	Row       uint64 // row within the bank
	Column    uint64 // word offset within the row
}

// Decode maps a PC-relative word address to bank/row/column coordinates.
// The mapping interleaves bank groups at word granularity — consecutive
// 256-bit words rotate through the four bank groups, the arrangement the
// Xilinx HBM IP uses so sequential streams avoid the tCCD_L same-group
// spacing penalty — then walks columns, banks within a group, and rows.
func (o Organization) Decode(addr uint64) Location {
	bg := addr % uint64(o.BankGroups)
	rest := addr / uint64(o.BankGroups)
	col := rest % o.WordsPerRow
	blk := rest / o.WordsPerRow
	return Location{
		BankGroup: int(bg),
		Bank:      int(blk % uint64(o.BanksPerGroup)),
		Row:       blk / uint64(o.BanksPerGroup),
		Column:    col,
	}
}

// Encode is the inverse of Decode.
func (o Organization) Encode(l Location) uint64 {
	blk := l.Row*uint64(o.BanksPerGroup) + uint64(l.Bank)
	rest := blk*o.WordsPerRow + l.Column
	return rest*uint64(o.BankGroups) + uint64(l.BankGroup)
}

// GlobalRow returns the cluster-space row index of a word address (the
// coordinate the fault model's weak clusters are defined in).
func (o Organization) GlobalRow(addr uint64) uint64 { return addr / o.WordsPerRow }
