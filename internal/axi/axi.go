// Package axi models the user-side interface of the Xilinx HBM IP: 32
// AXI ports of 256 bits (16 per stack), each hard-wired to one 64-bit
// pseudo channel through an optional switching network, plus the traffic
// generators the paper's controllers instantiate per port (§II-B).
//
// Each AXI port runs at a quarter of the memory data-transfer rate (the
// 4:1 width ratio), so one 256-bit beat per AXI clock saturates a pseudo
// channel. The default port clock is set so that all 32 ports together
// reach the paper's achieved 310 GB/s — the experiment's fabric-limited
// operating point — while the DRAM-side timing model (internal/dramctl)
// confirms the memory itself could sustain more.
package axi

import (
	"errors"
	"fmt"

	"hbmvolt/internal/dramctl"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

// DefaultClockMHz is the per-port AXI clock: 32 ports x 32 B x
// 302.7 MHz ≈ 310 GB/s, the throughput the paper reaches.
const DefaultClockMHz = 302.7

// Switch models the HBM IP's optional switching network. When disabled
// (the paper's configuration — it would otherwise distort the
// measurements) every port maps to its own pseudo channel. When enabled,
// arbitrary port→PC routes are allowed at a bandwidth penalty and extra
// latency.
type Switch struct {
	// Enabled activates routing (and its cost).
	Enabled bool
	// BandwidthPenalty is the fraction of port bandwidth lost when the
	// switch is enabled.
	BandwidthPenalty float64
	// ExtraLatencyCycles is added to every access when enabled.
	ExtraLatencyCycles int

	routes [hbm.MaxPorts]hbm.PortID
}

// MaxPorts mirrors hbm.MaxPorts for convenience.
const MaxPorts = hbm.MaxPorts

// NewSwitch returns a disabled switch with identity routing and the
// penalty parameters of the Xilinx IP (≈30% bandwidth loss, a few cycles
// of latency).
func NewSwitch() *Switch {
	s := &Switch{BandwidthPenalty: 0.30, ExtraLatencyCycles: 4}
	for i := range s.routes {
		s.routes[i] = hbm.PortID(i)
	}
	return s
}

// Route returns the pseudo channel (as a global PC id) the port reaches.
func (s *Switch) Route(port hbm.PortID) hbm.PortID {
	if !s.Enabled {
		return port
	}
	return s.routes[port]
}

// SetRoute points a port at an arbitrary pseudo channel; it requires the
// switch to be enabled.
func (s *Switch) SetRoute(port, pc hbm.PortID) error {
	if !s.Enabled {
		return errors.New("axi: switching network disabled; ports are hard-wired")
	}
	if int(port) >= MaxPorts || int(pc) >= MaxPorts || port < 0 || pc < 0 {
		return fmt.Errorf("axi: route %d->%d out of range", port, pc)
	}
	s.routes[port] = pc
	return nil
}

// Throughput derates a base bandwidth for the switch state.
func (s *Switch) Throughput(base float64) float64 {
	if !s.Enabled {
		return base
	}
	return base * (1 - s.BandwidthPenalty)
}

// Port is one 256-bit AXI master interface.
type Port struct {
	id       hbm.PortID
	dev      *hbm.Device
	sw       *Switch
	clockMHz float64
	enabled  bool
	ctl      *dramctl.Controller
	timing   dramctl.Timing
	geom     dramctl.Geometry
}

// PortConfig parameterizes a port.
type PortConfig struct {
	// ClockMHz is the AXI clock (DefaultClockMHz when zero).
	ClockMHz float64
	// Timing is the DRAM-side timing model (dramctl.DefaultTiming() when
	// zero-valued).
	Timing dramctl.Timing
}

// NewPort builds port id over the device, routed through sw (which may
// be nil for hard-wired operation).
func NewPort(id hbm.PortID, dev *hbm.Device, sw *Switch, cfg PortConfig) (*Port, error) {
	if int(id) < 0 || int(id) >= dev.Org.TotalPCs() {
		return nil, fmt.Errorf("axi: port %d out of range", id)
	}
	if cfg.ClockMHz == 0 {
		cfg.ClockMHz = DefaultClockMHz
	}
	if cfg.ClockMHz < 0 {
		return nil, fmt.Errorf("axi: negative clock")
	}
	if cfg.Timing.ClockMHz == 0 {
		cfg.Timing = dramctl.DefaultTiming()
	}
	if sw == nil {
		sw = NewSwitch()
	}
	geom := dramctl.Geometry{
		BankGroups:    dev.Org.BankGroups,
		BanksPerGroup: dev.Org.BanksPerGroup,
		WordsPerRow:   dev.Org.WordsPerRow,
	}
	ctl, err := dramctl.New(cfg.Timing, geom)
	if err != nil {
		return nil, err
	}
	return &Port{
		id:       id,
		dev:      dev,
		sw:       sw,
		clockMHz: cfg.ClockMHz,
		enabled:  true,
		ctl:      ctl,
		timing:   cfg.Timing,
		geom:     geom,
	}, nil
}

// ID returns the port index.
func (p *Port) ID() hbm.PortID { return p.id }

// Enabled reports whether the port participates in traffic (the paper
// disables ports to scale bandwidth utilization).
func (p *Port) Enabled() bool { return p.enabled }

// SetEnabled switches the port on or off.
func (p *Port) SetEnabled(on bool) { p.enabled = on }

// ClockMHz returns the AXI clock.
func (p *Port) ClockMHz() float64 { return p.clockMHz }

// target resolves the (stack, pc) this port currently reaches.
func (p *Port) target() (*hbm.Stack, int, error) {
	return p.dev.Port(p.sw.Route(p.id))
}

// WriteWord issues one 256-bit write beat.
func (p *Port) WriteWord(addr uint64, w pattern.Word) error {
	if !p.enabled {
		return fmt.Errorf("axi: port %d disabled", p.id)
	}
	st, pc, err := p.target()
	if err != nil {
		return err
	}
	p.ctl.Access(addr, dramctl.Write)
	return st.WriteWord(pc, addr, w)
}

// ReadWord issues one 256-bit read beat.
func (p *Port) ReadWord(addr uint64) (pattern.Word, error) {
	if !p.enabled {
		return pattern.Word{}, fmt.Errorf("axi: port %d disabled", p.id)
	}
	st, pc, err := p.target()
	if err != nil {
		return pattern.Word{}, err
	}
	p.ctl.Access(addr, dramctl.Read)
	return st.ReadWord(pc, addr)
}

// WriteRange issues count sequential write beats from start as one bulk
// transaction: one target resolution, one ranged store, one ranged
// timing advance.
func (p *Port) WriteRange(start, count uint64, pat pattern.Pattern) error {
	if !p.enabled {
		return fmt.Errorf("axi: port %d disabled", p.id)
	}
	st, pc, err := p.target()
	if err != nil {
		return err
	}
	if err := st.WriteRange(pc, start, count, pat); err != nil {
		return err
	}
	p.ctl.AccessRange(start, count, dramctl.Write)
	return nil
}

// ReadRange issues count sequential unchecked read beats (bandwidth
// traffic) as one bulk transaction.
func (p *Port) ReadRange(start, count uint64) error {
	if !p.enabled {
		return fmt.Errorf("axi: port %d disabled", p.id)
	}
	st, pc, err := p.target()
	if err != nil {
		return err
	}
	if err := st.ReadRange(pc, start, count); err != nil {
		return err
	}
	p.ctl.AccessRange(start, count, dramctl.Read)
	return nil
}

// ReadCheckRange reads count beats from start and compares them against
// pat in one bulk transaction, returning the flip classification and the
// faulty-word count.
func (p *Port) ReadCheckRange(start, count uint64, pat pattern.Pattern) (pattern.Flips, uint64, error) {
	if !p.enabled {
		return pattern.Flips{}, 0, fmt.Errorf("axi: port %d disabled", p.id)
	}
	st, pc, err := p.target()
	if err != nil {
		return pattern.Flips{}, 0, err
	}
	flips, faulty, err := st.ReadCheckRange(pc, start, count, pat)
	if err != nil {
		return pattern.Flips{}, 0, err
	}
	p.ctl.AccessRange(start, count, dramctl.Read)
	return flips, faulty, nil
}

// ResetTiming discards the DRAM-side timing state (the per-batch
// reset_axi_ports() of Algorithm 1).
func (p *Port) ResetTiming() error {
	ctl, err := dramctl.New(p.timing, p.geom)
	if err != nil {
		return err
	}
	p.ctl = ctl
	return nil
}

// DRAMSeconds returns the memory-side busy time accumulated since the
// last reset.
func (p *Port) DRAMSeconds() float64 { return p.ctl.ElapsedSeconds() }

// EffectiveBandwidthGBs returns the port's sustainable bandwidth: the
// AXI clock limit derated by the switch, never exceeding what the DRAM
// timing can deliver.
func (p *Port) EffectiveBandwidthGBs() float64 {
	axi := p.clockMHz * 1e6 * 32 / 1e9
	axi = p.sw.Throughput(axi)
	dram := p.timing.PeakBandwidthGBs() // upper bound; dramctl confirms ~90% sustained
	if axi > dram {
		return dram
	}
	return axi
}
