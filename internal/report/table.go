// Package report renders experiment results as ASCII tables, CSV files,
// and terminal charts — the presentation layer for the figure
// regeneration harness (cmd/hbmvolt and the benchmarks).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells, long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf(format, c)
	}
	t.AddRow(parts...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		n, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		total += int64(n)
		return err
	}
	if err := line(t.header); err != nil {
		return total, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}
