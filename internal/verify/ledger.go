package verify

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"sort"
)

// ledgerHeading matches a CLAIMS.md claim section heading: a level-2
// heading whose last inline-code span is the claim ID, e.g.
//
//	## Deep undervolting saves ~2.3x — `power-savings-deep-undervolt`
var ledgerHeading = regexp.MustCompile("^## .*`([a-z][a-z0-9-]*)`\\s*$")

// ParseLedger extracts the claim IDs documented in a CLAIMS.md ledger,
// in document order. Duplicate IDs are an error — each claim gets
// exactly one ledger section.
func ParseLedger(data []byte) ([]string, error) {
	var ids []string
	seen := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		m := ledgerHeading.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if seen[m[1]] {
			return nil, fmt.Errorf("verify: ledger line %d: duplicate claim section %q", line, m[1])
		}
		seen[m[1]] = true
		ids = append(ids, m[1])
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("verify: scanning ledger: %w", err)
	}
	return ids, nil
}

// CheckLedger compares documented ledger IDs against the registered
// claim IDs, both directions: a registered claim missing from the
// ledger and a ledger section documenting no registered claim are both
// drift. Returned slices are sorted; both empty means in sync.
func CheckLedger(ledgerIDs []string) (missing, stale []string) {
	reg := map[string]bool{}
	for _, id := range RegisteredIDs() {
		reg[id] = true
	}
	doc := map[string]bool{}
	for _, id := range ledgerIDs {
		doc[id] = true
		if !reg[id] {
			stale = append(stale, id)
		}
	}
	for id := range reg {
		if !doc[id] {
			missing = append(missing, id)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	return missing, stale
}
