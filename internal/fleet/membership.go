package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"hbmvolt/internal/chaos"
	"hbmvolt/internal/service"
	tlog "hbmvolt/internal/telemetry/log"
)

// Dynamic membership: the node set lives behind the forwarder's
// versioned, copy-on-write view. AddPeer/RemovePeer build a fresh view
// (unchanged peers keep their structs, so breaker state and counters
// survive churn) and swap it atomically; every reader — Owner, the
// forward path, the prober, metrics samplers — sees one consistent
// snapshot. Rendezvous hashing makes each transition cheap (only ~1/N
// of keys change owner) and the byte-identical-degradation contract
// makes it safe: a node holding a stale view at worst forwards to a
// non-owner, which computes the identical bytes under the loop guard.
//
// Chaos sites: "fleet.membership.add", "fleet.membership.remove", and
// "fleet.join.announce" let fault plans fail mutations or join
// announcements mid-churn.

// ErrRemoveSelf is returned by RemovePeer for this node's own name.
var ErrRemoveSelf = errors.New("fleet: cannot remove self from the membership view")

// AddPeer adds a node to the membership view, bumping its version. It
// reports false (with no version bump) when the node is already a
// member or is this node itself, so announcements are idempotent.
func (f *Forwarder) AddPeer(raw string) (bool, error) {
	name, err := normalizeNode(raw)
	if err != nil {
		return false, err
	}
	if name == f.self {
		return false, nil
	}
	if err := chaos.Inject("fleet.membership.add"); err != nil {
		return false, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.live.Load()
	if _, ok := cur.peers[name]; ok {
		return false, nil
	}
	next := cur.clone()
	next.peers[name] = f.newPeer(name)
	next.nodes = append(next.nodes, name)
	sort.Strings(next.nodes)
	f.live.Store(next)
	f.log().Info("peer joined the membership view",
		tlog.F("subsys", "fleet"), tlog.F("peer", name), tlog.F("version", next.version))
	return true, nil
}

// RemovePeer removes a node from the membership view, bumping its
// version. Unknown nodes report false with no version bump; removing
// self is an error. In-flight forwards to the removed peer finish on
// their own deadlines; re-adding the peer later starts it with a fresh
// breaker.
func (f *Forwarder) RemovePeer(raw string) (bool, error) {
	name, err := normalizeNode(raw)
	if err != nil {
		return false, err
	}
	if name == f.self {
		return false, ErrRemoveSelf
	}
	if err := chaos.Inject("fleet.membership.remove"); err != nil {
		return false, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.live.Load()
	if _, ok := cur.peers[name]; !ok {
		return false, nil
	}
	next := cur.clone()
	delete(next.peers, name)
	next.nodes = next.nodes[:0]
	for n := range next.peers {
		next.nodes = append(next.nodes, n)
	}
	next.nodes = append(next.nodes, f.self)
	sort.Strings(next.nodes)
	f.live.Store(next)
	f.log().Info("peer left the membership view",
		tlog.F("subsys", "fleet"), tlog.F("peer", name), tlog.F("version", next.version))
	return true, nil
}

// clone copies a view with the version bumped; the caller mutates the
// copy before storing it. Peer structs are shared, not copied — their
// breakers and counters survive membership churn.
func (v *view) clone() *view {
	next := &view{
		version: v.version + 1,
		nodes:   append([]string(nil), v.nodes...),
		peers:   make(map[string]*peer, len(v.peers)+1),
	}
	for n, p := range v.peers {
		next.peers[n] = p
	}
	return next
}

// MembershipVersion returns the current view's version (1 at boot;
// bumps on every successful AddPeer/RemovePeer).
func (f *Forwarder) MembershipVersion() uint64 {
	return f.live.Load().version
}

// Membership is the admin API's view of the node set — the
// GET/POST/DELETE /v1/fleet/peers response body.
type Membership struct {
	Self    string   `json:"self"`
	Version uint64   `json:"version"`
	Nodes   []string `json:"nodes"`
}

// Membership snapshots the current view for the admin API.
func (f *Forwarder) Membership() Membership {
	v := f.live.Load()
	return Membership{
		Self:    f.self,
		Version: v.version,
		Nodes:   append([]string(nil), v.nodes...),
	}
}

// peerBody is the POST /v1/fleet/peers request body.
type peerBody struct {
	Peer string `json:"peer"`
}

// AdminHandler serves the membership admin API:
//
//	GET    /v1/fleet/peers        current membership view (self, version, nodes)
//	POST   /v1/fleet/peers        add {"peer":"http://host:port"} to the view
//	DELETE /v1/fleet/peers?peer=  remove a node from the view
//
// Mutations answer with the updated view, so a joining node can adopt
// the seed's whole node set from the announcement's response. The
// daemon mounts this on its mux in fleet mode.
func (f *Forwarder) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/fleet/peers", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, f.Membership())
	})
	mux.HandleFunc("POST /v1/fleet/peers", func(w http.ResponseWriter, r *http.Request) {
		var body peerBody
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil || body.Peer == "" {
			service.WriteError(w, http.StatusBadRequest, `want body {"peer":"http://host:port"}`)
			return
		}
		if _, err := f.AddPeer(body.Peer); err != nil {
			service.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		service.WriteJSON(w, http.StatusOK, f.Membership())
	})
	mux.HandleFunc("DELETE /v1/fleet/peers", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("peer")
		if raw == "" {
			service.WriteError(w, http.StatusBadRequest, "want ?peer=http://host:port")
			return
		}
		if _, err := f.RemovePeer(raw); err != nil {
			service.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		service.WriteJSON(w, http.StatusOK, f.Membership())
	})
	return mux
}

// Join announces this node to every seed (POST /v1/fleet/peers on
// each) and adopts each answering seed's membership view, so one
// -join flag bootstraps the full node set with no restarts anywhere.
// It returns how many seeds acknowledged; reaching none is an error
// (the caller retries — seeds may still be booting).
func (f *Forwarder) Join(ctx context.Context, seeds []string) (int, error) {
	body, err := json.Marshal(peerBody{Peer: f.self})
	if err != nil {
		return 0, err
	}
	reached := 0
	var lastErr error
	for _, raw := range seeds {
		seed, err := normalizeNode(raw)
		if err != nil {
			return reached, err
		}
		if seed == f.self {
			continue
		}
		m, err := f.announce(ctx, seed, body)
		if err != nil {
			lastErr = err
			f.log().Warn("join announcement failed",
				tlog.F("subsys", "fleet"), tlog.F("seed", seed), tlog.Err(err))
			continue
		}
		reached++
		// Adopt the seed's whole node set (which now includes us): the
		// seed's peers become ours, so every node routes on one view.
		for _, n := range m.Nodes {
			if _, err := f.AddPeer(n); err != nil {
				return reached, err
			}
		}
	}
	if reached == 0 && lastErr != nil {
		return 0, fmt.Errorf("fleet: join reached no seed: %w", lastErr)
	}
	return reached, nil
}

// announce POSTs this node to one seed's admin API and decodes the
// seed's updated membership view.
func (f *Forwarder) announce(ctx context.Context, seed string, body []byte) (Membership, error) {
	if err := chaos.Inject("fleet.join.announce"); err != nil {
		return Membership{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, f.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, seed+"/v1/fleet/peers", bytes.NewReader(body))
	if err != nil {
		return Membership{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.httpc.Do(req)
	if err != nil {
		return Membership{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Membership{}, fmt.Errorf("fleet: announce to %s: HTTP %d", seed, resp.StatusCode)
	}
	var m Membership
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return Membership{}, fmt.Errorf("fleet: announce to %s: %w", seed, err)
	}
	return m, nil
}
