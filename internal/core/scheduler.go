package core

// SweepScheduler: board-fleet parallelism for Algorithm 1 sweeps.
//
// A reliability sweep is embarrassingly parallel across voltage points —
// each point programs the rail, writes patterns and reads them back, and
// every random draw underneath (cell critical voltages, metastability
// jitter, sparse row realizations, aggregate count draws) is a pure
// function of (seed, PC, address, rep, voltage), never of evaluation
// order. The scheduler exploits that: it instantiates one independent
// board clone per worker and distributes the grid points over a bounded
// worker pool, so a full-grid sweep scales with cores instead of pinning
// one. Because the draws are keyed rather than streamed, sharded output
// is bit-identical to the sequential path at any worker count — the
// determinism tests pin this across worker counts and patterns.
//
// Cloned boards share the memoized analytic rate atlas (same config
// fingerprint), so the fleet duplicates electrical state but never
// analytic work.

import (
	"context"
	"runtime"
	"sync"

	"hbmvolt/internal/board"
	"hbmvolt/internal/stats"
)

// SweepProgress reports one completed voltage point of a running sweep.
// The JSON field names are the wire format of the sweep service's event
// stream (internal/service), so they are part of the API surface.
type SweepProgress struct {
	// Done is the number of completed points so far (monotone, 1-based);
	// Total is the grid size. Both are omitted from JSON when zero, so
	// terminal service events carry no vestigial counters.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Volts is the completed point's voltage; under a sharded sweep
	// points complete out of grid order.
	Volts float64 `json:"volts,omitempty"`
	// Crashed marks a point below V_critical (the board was power
	// cycled).
	Crashed bool `json:"crashed,omitempty"`
	// MeanFlips is the point's batch-mean flip count over all ports and
	// patterns. Zero for power-sweep progress.
	MeanFlips float64 `json:"mean_flips,omitempty"`
	// Watts is the measured rail power of a completed power-sweep point.
	// Zero for reliability-sweep progress.
	Watts float64 `json:"watts,omitempty"`
}

// ProgressFunc receives sweep progress. Calls are serialized; the
// callback must not invoke the scheduler reentrantly.
type ProgressFunc func(SweepProgress)

// SweepScheduler shards a reliability sweep across a fleet of
// independently instantiated simulated boards — one clone per worker —
// with bounded concurrency, context cancellation and progress callbacks.
// The zero value is valid and runs GOMAXPROCS workers.
type SweepScheduler struct {
	// Workers is the board-fleet size; 0 means GOMAXPROCS. The fleet is
	// never larger than the grid.
	Workers int
	// OnProgress, when non-nil, is called after every completed voltage
	// point (serialized, completion order).
	OnProgress ProgressFunc
}

// progressTracker serializes completion callbacks and owns the monotone
// Done counter.
type progressTracker struct {
	mu    sync.Mutex
	done  int
	total int
	fn    ProgressFunc
}

func (p *progressTracker) completed(pt VoltagePoint) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.fn(SweepProgress{
		Done:      p.done,
		Total:     p.total,
		Volts:     pt.Volts,
		Crashed:   pt.Crashed,
		MeanFlips: pt.MeanFlips,
	})
}

// RunReliability executes Algorithm 1 over cfg's grid, sharding the
// voltage points across the scheduler's board fleet. cfg.Board is the
// fleet template (and first worker's board); it is restored to nominal
// voltage on every exit, as are all clones. Results are bit-identical to
// the sequential single-board sweep regardless of worker count.
func (s *SweepScheduler) RunReliability(ctx context.Context, cfg ReliabilityConfig) (*ReliabilityResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	margin, err := stats.MarginOfError(cfg.BatchSize, DefaultConfidence)
	if err != nil {
		return nil, err
	}
	res := &ReliabilityResult{
		Margin: margin,
		Points: make([]VoltagePoint, len(cfg.Grid)),
	}
	prog := &progressTracker{total: len(cfg.Grid), fn: s.OnProgress}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfg.Grid) {
		workers = len(cfg.Grid)
	}
	if workers <= 1 {
		if err := runSequential(ctx, &cfg, res, prog); err != nil {
			return nil, err
		}
		return res, nil
	}

	if err := s.runSharded(ctx, &cfg, res, prog, workers); err != nil {
		return nil, err
	}
	return res, nil
}

// runSharded drives the fleet. Grid indices flow through an unbuffered
// channel so a cancelled context stops dispatch immediately; each worker
// owns its board exclusively, writes results into its grid slot, and the
// first error cancels the rest of the sweep.
func (s *SweepScheduler) runSharded(ctx context.Context, cfg *ReliabilityConfig, res *ReliabilityResult, prog *progressTracker, workers int) (err error) {
	boards := make([]*board.Board, workers)
	boards[0] = cfg.Board
	for w := 1; w < workers; w++ {
		b, cerr := cfg.Board.Clone()
		if cerr != nil {
			// Restore the clones built so far before bailing.
			for _, built := range boards[:w] {
				restoreNominal(built, &err)
			}
			if err == nil {
				err = cerr
			}
			return err
		}
		boards[w] = b
	}
	defer func() {
		for _, b := range boards {
			restoreNominal(b, &err)
		}
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(werr error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = werr
		}
		errMu.Unlock()
		cancel()
	}

	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(b *board.Board) {
			defer wg.Done()
			for i := range tasks {
				pt, perr := runVoltagePoint(ctx, b, cfg, cfg.Grid[i])
				if perr != nil {
					fail(perr)
					return
				}
				res.Points[i] = pt
				prog.completed(pt)
			}
		}(boards[w])
	}

feed:
	for i := range cfg.Grid {
		select {
		case tasks <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return nil
}
