package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"hbmvolt/internal/chaos"
	"hbmvolt/internal/report"
	"hbmvolt/internal/telemetry"
)

// Server is the HTTP face of a Manager. It implements http.Handler; use
// New to build one and Close to shut the worker pool down.
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// New builds a server (and its manager) from cfg. Like NewManager it is
// the in-memory-only constructor; a Config naming a CacheDir needs the
// error-returning Open.
func New(cfg Config) *Server {
	return newServer(NewManager(cfg))
}

// Open builds a server whose manager may carry the durable disk cache
// tier (cfg.CacheDir) — the daemon's constructor.
func Open(cfg Config) (*Server, error) {
	mgr, err := OpenManager(cfg)
	if err != nil {
		return nil, err
	}
	return newServer(mgr), nil
}

func newServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", mgr.Metrics().Handler())
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	return s
}

// Manager exposes the underlying job manager (tests, embedding).
func (s *Server) Manager() *Manager { return s.mgr }

// Close stops the manager: running sweeps are cancelled and the worker
// pool drained.
func (s *Server) Close() { s.mgr.Close() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

// WriteJSON writes v as a deterministic JSON response body — the
// serialization every route of this service (and the campaign API on
// top of it) shares.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	body, err := report.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// WriteError writes the service's standard {"error": ...} body.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// maxRequestBody bounds POST bodies; a maximal legitimate request (512
// grid points, every port listed) is a few KB.
const maxRequestBody = 1 << 20

// Fleet-mode HTTP headers. Markers ride in headers, never in payloads:
// response bodies stay byte-identical whether a job was served by its
// owner, degraded to local compute, or never touched a fleet at all.
const (
	// HeaderServedBy names the node whose compute produced a job's
	// payload (submit/status/result responses in fleet mode).
	HeaderServedBy = "X-Hbmvolt-Served-By"
	// HeaderDegraded is "true" when the job's owner was a remote peer
	// the fleet could not reach and the payload was computed locally.
	HeaderDegraded = "X-Hbmvolt-Degraded"
	// HeaderNoForward marks a submission that already crossed the fleet
	// once; the receiving node executes it locally, never re-forwards.
	HeaderNoForward = "X-Hbmvolt-No-Forward"
	// HeaderPayloadSHA carries the hex SHA-256 of a /result body, so
	// fetchers detect truncated or corrupted transfers instead of
	// caching wrong bytes.
	HeaderPayloadSHA = "X-Hbmvolt-Payload-Sha256"
)

// serveHeaders stamps the fleet serving record and trace ID onto a
// job-scoped response (serving record no-ops outside fleet mode).
func serveHeaders(w http.ResponseWriter, j *Job) {
	if t := j.Trace(); t != "" {
		w.Header().Set(telemetry.HeaderTraceID, t)
	}
	info := j.ServeInfo()
	if info.ServedBy == "" {
		return
	}
	w.Header().Set(HeaderServedBy, info.ServedBy)
	if info.Degraded {
		w.Header().Set(HeaderDegraded, "true")
	}
}

// SubmitResponse is the POST /v1/sweeps body.
type SubmitResponse struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
	// Coalesced marks a submission answered by an already live or
	// completed identical job; CacheHit marks one answered from the
	// result LRU. Either way no new computation was scheduled.
	Coalesced bool `json:"coalesced,omitempty"`
	CacheHit  bool `json:"cache_hit,omitempty"`
}

// ClientKey identifies the client a request's admission tokens are
// charged to: the X-Client-ID header when present (trusted deployments
// behind a proxy), otherwise the remote host. This is the
// proxy-agnostic form; Manager.ClientKey adds the opt-in
// X-Forwarded-For handling.
func ClientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// ClientKey identifies the client a request's admission tokens are
// charged to, honoring Config.TrustProxy: X-Client-ID wins when
// present; with TrustProxy set, the leftmost X-Forwarded-For entry —
// the originating client as recorded by the proxy — comes next, so
// distinct clients behind one proxy stop sharing a single bucket; the
// remote host is the fallback. Without TrustProxy the (spoofable)
// X-Forwarded-For header is ignored entirely.
func (m *Manager) ClientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if m.cfg.TrustProxy {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			first, _, _ := strings.Cut(xff, ",")
			if host := strings.TrimSpace(first); host != "" {
				return host
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Admit spends one of the request's client admission tokens, answering
// 429 with a Retry-After itself when the client is over rate. It
// reports whether the request may proceed. Shared with the campaign
// API, so sweep and campaign submissions draw from one bucket per
// client.
func (s *Server) Admit(w http.ResponseWriter, r *http.Request) bool {
	client := s.mgr.ClientKey(r)
	ok, retryAfter := s.mgr.AllowClient(client)
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		WriteError(w, http.StatusTooManyRequests, "client %s over submission rate", client)
	}
	return ok
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.Admit(w, r) {
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	// A request that already crossed the fleet once executes here, no
	// matter who the local router believes owns it: two nodes with
	// disagreeing peer lists must degrade to an extra local compute,
	// never bounce a request between each other.
	//
	// Every submission gets a trace: a valid client- or peer-supplied
	// X-Hbmvolt-Trace-Id is adopted (one trace spans the whole fleet
	// path), anything else is replaced by a freshly minted ID. The ID is
	// echoed on the response so the client learns it either way.
	trace := r.Header.Get(telemetry.HeaderTraceID)
	if !telemetry.ValidTraceID(trace) {
		trace = telemetry.NewTraceID()
	}
	w.Header().Set(telemetry.HeaderTraceID, trace)
	opts := SubmitOptions{
		NoForward: r.Header.Get(HeaderNoForward) != "",
		TraceID:   trace,
	}
	j, coalesced, cacheHit, err := s.mgr.SubmitOpts(req, opts)
	if err != nil {
		var reqErr *RequestError
		switch {
		case errors.As(err, &reqErr):
			WriteError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			// The hint is honest, not hardcoded: expected backlog drain
			// time from observed job latency.
			w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfterSeconds()))
			WriteError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			WriteError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	status := http.StatusAccepted
	if coalesced || cacheHit {
		status = http.StatusOK
	}
	serveHeaders(w, j)
	WriteJSON(w, status, SubmitResponse{
		ID:        j.ID,
		Key:       formatKey(j.Key),
		State:     j.State(),
		Coalesced: coalesced,
		CacheHit:  cacheHit,
	})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.Job(id)
	if !ok {
		WriteError(w, http.StatusNotFound, "no sweep %q", id)
		return nil, false
	}
	return j, true
}

// statusBody is the GET /v1/sweeps/{id} response: the status, plus the
// raw result payload once done.
type statusBody struct {
	JobStatus
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	serveHeaders(w, j)
	WriteJSON(w, http.StatusOK, statusBody{JobStatus: j.Snapshot(), Result: j.Payload()})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Snapshot()
	if st.State != StateDone {
		WriteError(w, http.StatusConflict, "sweep %s is %s, not done", j.ID, st.State)
		return
	}
	// The payload is served verbatim: identical requests get
	// byte-identical bodies, first run or cache hit alike. The explicit
	// Content-Length and SHA-256 header let fetchers — the fleet's
	// peer-forwarding client above all — distinguish a complete transfer
	// from one severed mid-body, so truncated bytes are never cached.
	payload := j.Payload()
	sum := sha256.Sum256(payload)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.Header().Set(HeaderPayloadSHA, hex.EncodeToString(sum[:]))
	serveHeaders(w, j)
	w.Write(payload)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before possibly blocking on the first
		// event, so subscribers to queued jobs see the stream open.
		flusher.Flush()
	}
	nd := report.NewNDJSON(w)
	i := 0
	for {
		evs, state, changed := j.eventsSince(i)
		for _, e := range evs {
			nd.Record(e)
		}
		if nd.Flush() != nil {
			return // client went away mid-write
		}
		if chaos.Inject("service.events") != nil {
			// Fault injection: drop the stream mid-job without a terminal
			// event, the way a broken connection looks to the client.
			return
		}
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		i += len(evs)
		if state.terminal() {
			// The terminal transition appends its event atomically, so a
			// terminal state with all events drained means the stream is
			// complete.
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.mgr.Cancel(id)
	if !ok {
		WriteError(w, http.StatusNotFound, "no sweep %q", id)
		return
	}
	WriteJSON(w, http.StatusOK, j.Snapshot())
}

// Health is the GET /healthz body.
type Health struct {
	Status string `json:"status"`
	Stats
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, Health{Status: "ok", Stats: s.mgr.Stats()})
}

// traceBody is the GET /v1/traces/{id} response: every span this node
// retains for the trace, oldest first.
type traceBody struct {
	Trace string           `json:"trace"`
	Spans []telemetry.Span `json:"spans"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !telemetry.ValidTraceID(id) {
		WriteError(w, http.StatusBadRequest, "malformed trace id %q", id)
		return
	}
	spans := s.mgr.Recorder().ForTrace(id)
	if spans == nil {
		spans = []telemetry.Span{}
	}
	WriteJSON(w, http.StatusOK, traceBody{Trace: id, Spans: spans})
}
