package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV streams rows to an io.Writer in RFC-4180 form; a thin convenience
// over encoding/csv with numeric formatting helpers.
type CSV struct {
	w   *csv.Writer
	err error
}

// NewCSV wraps a writer.
func NewCSV(w io.Writer) *CSV { return &CSV{w: csv.NewWriter(w)} }

// Row writes one record of stringable values.
func (c *CSV) Row(cells ...any) {
	if c.err != nil {
		return
	}
	rec := make([]string, len(cells))
	for i, cell := range cells {
		switch v := cell.(type) {
		case string:
			rec[i] = v
		case float64:
			rec[i] = strconv.FormatFloat(v, 'g', 8, 64)
		case int:
			rec[i] = strconv.Itoa(v)
		case uint64:
			rec[i] = strconv.FormatUint(v, 10)
		default:
			rec[i] = fmt.Sprint(v)
		}
	}
	c.err = c.w.Write(rec)
}

// Flush completes the stream and reports the first error encountered.
func (c *CSV) Flush() error {
	c.w.Flush()
	if c.err != nil {
		return c.err
	}
	return c.w.Error()
}
