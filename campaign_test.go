package hbmvolt

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"hbmvolt/internal/service"
)

// TestCampaignFig2MatchesLegacy pins the campaign engine's Fig. 2/3
// path to the legacy figures.go path byte for byte: the same device
// configuration rendered through System.RenderFig2/RenderFig3 and
// through a campaign power scenario's decoded payload must be
// indistinguishable.
func TestCampaignFig2MatchesLegacy(t *testing.T) {
	const scale = 1024

	// Legacy path: a live System (sparse sampler, matching the board the
	// service builds for the request below).
	sys, err := New(Config{Scale: scale, SparseFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if _, err := sys.RenderFig2(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RenderFig3(&legacy); err != nil {
		t.Fatal(err)
	}

	// Campaign path: the same experiment as a one-scenario spec.
	spec := CampaignSpec{
		Name: "fig2-pin",
		Scenarios: []CampaignScenario{{
			Name:   "fig2",
			Kind:   "power",
			Scales: []uint64{scale},
			Grid:   DisplayGrid(),
		}},
	}
	res, err := RunCampaign(context.Background(), spec, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env, err := service.DecodeResult(res.Scenarios[0].Cells[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if env.Power == nil {
		t.Fatal("power scenario returned no power result")
	}
	var viaCampaign bytes.Buffer
	if err := renderFig2(&viaCampaign, env.Request.Grid, env.Request.PortCounts, env.Power); err != nil {
		t.Fatal(err)
	}
	if err := renderFig3(&viaCampaign, env.Request.Grid, env.Request.PortCounts, env.Power); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(legacy.Bytes(), viaCampaign.Bytes()) {
		t.Fatalf("campaign Fig. 2/3 output differs from the legacy path:\n--- legacy ---\n%s\n--- campaign ---\n%s",
			legacy.String(), viaCampaign.String())
	}
}

// TestCampaignRenderAnalyticFigures pins the campaign renderers for the
// analytic scenarios (Figs. 4-6, ECC) to the legacy System renderers.
func TestCampaignRenderAnalyticFigures(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if _, err := sys.RenderFig4(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := sys.RenderFig5(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := sys.RenderFig6(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RenderECCStudy(&legacy); err != nil {
		t.Fatal(err)
	}

	spec := CampaignSpec{
		Name: "analytic-pin",
		Scenarios: []CampaignScenario{
			{Name: "fmap", Kind: "faultmap"},
			{Name: "ecc", Kind: "ecc-study"},
		},
	}
	res, err := RunCampaign(context.Background(), spec, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var viaCampaign bytes.Buffer
	for _, sr := range res.Scenarios {
		env, err := service.DecodeResult(sr.Cells[0].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := renderEnvelope(&viaCampaign, env); err != nil {
			t.Fatal(err)
		}
	}

	if !bytes.Equal(legacy.Bytes(), viaCampaign.Bytes()) {
		t.Fatal("campaign analytic figure output differs from the legacy path")
	}
}

// TestCampaignPaperReproSmokeGolden is the golden-regression pin for
// the whole stack: the built-in paper-repro campaign at smoke scale
// must reproduce the committed manifest and NDJSON artifacts byte for
// byte. Regenerate with: go test -run TestCampaignPaperReproSmokeGolden -update .
func TestCampaignPaperReproSmokeGolden(t *testing.T) {
	res, err := RunCampaign(context.Background(), PaperReproCampaign(true), CampaignOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteArtifacts(dir); err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join("testdata", "campaign", "paper-repro-smoke")

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries {
		got, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		goldenPath := filepath.Join(goldenDir, e.Name())
		if *updateGolden {
			if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden; run with -update after verifying the change", e.Name())
		}
	}
	if !*updateGolden {
		goldens, err := os.ReadDir(goldenDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(goldens) != len(entries) {
			t.Errorf("campaign wrote %d files, goldens have %d", len(entries), len(goldens))
		}
	}
}
