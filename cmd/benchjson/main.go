// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so CI can archive benchmark results as a
// machine-readable artifact (BENCH_sweep.json) while keeping the raw
// benchstat-compatible line alongside each record.
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkReliabilitySweep -benchtime=1x . \
//	    | go run ./cmd/benchjson > BENCH_sweep.json
//
// Output shape:
//
//	{
//	  "goos": "linux", "goarch": "amd64", "pkg": "hbmvolt", "cpu": "...",
//	  "benchmarks": [
//	    {"name": "BenchmarkReliabilitySweep/j=8", "runs": 1,
//	     "metrics": {"ns/op": 1.9e9, "points/sec": 20.6, "workers": 8},
//	     "raw": "BenchmarkReliabilitySweep/j=8 ..."}
//	  ]
//	}
//
// Feeding the concatenated "raw" lines (plus the goos/goarch/pkg header)
// back to benchstat reproduces its input format exactly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
	Raw     string             `json:"raw"`
}

// Report is the whole document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine splits "BenchmarkName-8  N  v1 unit1  v2 unit2 ..." into a
// record; malformed lines are skipped rather than failing the run.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:    fields[0],
		Runs:    runs,
		Metrics: map[string]float64{},
		Raw:     line,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
