// Package pmbus implements the subset of the Power Management Bus
// protocol the paper's experiments rely on: the LINEAR11 and LINEAR16
// data formats, SMBus packet-error-checking (PEC), and a device model of
// the Intersil ISL68301 regulator that supplies the VCC_HBM rail on the
// VCU128 board.
//
// The paper's host-side tooling tunes the HBM supply exclusively through
// PMBus VOUT commands and reads voltage/current/power telemetry back;
// this package provides the same command surface.
package pmbus

import (
	"fmt"
	"math"
)

// Linear11 encodes a real value into the PMBus LINEAR11 format: a 5-bit
// two's-complement exponent N in bits 15:11 and an 11-bit two's-
// complement mantissa Y in bits 10:0, representing Y·2^N. The encoder
// picks the exponent that maximizes mantissa resolution.
func Linear11(value float64) (uint16, error) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return 0, fmt.Errorf("pmbus: cannot encode %v as LINEAR11", value)
	}
	// Find the smallest exponent in [-16, 15] whose mantissa fits 11
	// signed bits, to keep precision.
	for exp := -16; exp <= 15; exp++ {
		m := value / math.Pow(2, float64(exp))
		mr := math.Round(m)
		if mr >= -1024 && mr <= 1023 {
			y := int16(mr)
			return (uint16(exp)&0x1f)<<11 | uint16(y)&0x7ff, nil
		}
	}
	return 0, fmt.Errorf("pmbus: value %v out of LINEAR11 range", value)
}

// FromLinear11 decodes a LINEAR11 word.
func FromLinear11(w uint16) float64 {
	exp := int16(w>>11) & 0x1f
	if exp > 15 {
		exp -= 32 // sign-extend 5 bits
	}
	man := int16(w & 0x7ff)
	if man > 1023 {
		man -= 2048 // sign-extend 11 bits
	}
	return float64(man) * math.Pow(2, float64(exp))
}

// Linear16 encodes a non-negative value with the fixed exponent conveyed
// by VOUT_MODE (a 5-bit two's-complement number; -12 gives 244 µV
// resolution). The mantissa is an unsigned 16-bit integer.
func Linear16(value float64, voutModeExp int8) (uint16, error) {
	if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		return 0, fmt.Errorf("pmbus: cannot encode %v as LINEAR16", value)
	}
	m := math.Round(value / math.Pow(2, float64(voutModeExp)))
	if m > math.MaxUint16 {
		return 0, fmt.Errorf("pmbus: value %v overflows LINEAR16 with exponent %d", value, voutModeExp)
	}
	return uint16(m), nil
}

// FromLinear16 decodes a LINEAR16 mantissa under the given VOUT_MODE
// exponent.
func FromLinear16(w uint16, voutModeExp int8) float64 {
	return float64(w) * math.Pow(2, float64(voutModeExp))
}

// VoutModeExp extracts the 5-bit signed exponent from a VOUT_MODE byte in
// linear mode (upper 3 bits 000).
func VoutModeExp(mode byte) (int8, error) {
	if mode>>5 != 0 {
		return 0, fmt.Errorf("pmbus: VOUT_MODE 0x%02x is not linear format", mode)
	}
	e := int8(mode & 0x1f)
	if e > 15 {
		e -= 32
	}
	return e, nil
}

// PEC computes the SMBus packet error code: CRC-8 with polynomial
// x^8 + x^2 + x + 1 (0x07), zero initial value, over the raw packet
// bytes (address phases included).
func PEC(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
