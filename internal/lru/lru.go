// Package lru provides the byte-bounded LRU index shared by the sweep
// service's result cache (internal/service) and the fault model's
// enumeration memo store (internal/faults): one eviction policy, one
// byte-accounting implementation, so the two caches cannot drift.
//
// Policy: entries are weighed by a caller-supplied byte size; Add
// evicts least-recently-used entries while either bound (entries or
// bytes) is exceeded, but never the entry just added — an oversized
// value still serves its immediate repeats instead of thrashing.
// Duplicate Adds refresh recency and keep the first value (the callers'
// determinism contracts make a key's value immutable).
//
// A Cache is NOT safe for concurrent use; callers hold their own locks
// (both consumers already serialize access alongside counters of their
// own).
package lru

import "container/list"

type entry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// Cache is a byte- and entry-bounded LRU map.
type Cache[K comparable, V any] struct {
	maxEntries int   // 0 = unbounded
	maxBytes   int64 // 0 = unbounded
	bytes      int64
	order      *list.List // front = most recently used
	entries    map[K]*list.Element
	onEvict    func(K, V)
	evictions  uint64
}

// OnEvict registers a callback invoked for every entry dropped by
// capacity eviction (not by Remove) — the disk cache tier uses it to
// unlink the evicted entry's file. Pass nil to clear.
func (c *Cache[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// New builds a cache bounded by maxEntries and maxBytes; zero disables
// the respective bound.
func New[K comparable, V any](maxEntries int, maxBytes int64) *Cache[K, V] {
	return &Cache[K, V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		entries:    make(map[K]*list.Element),
	}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add stores value with the given byte size and evicts from the LRU
// tail until both bounds hold again, returning the number of evicted
// entries. Adding an existing key only refreshes its recency (first
// write wins); the newest entry is never evicted.
func (c *Cache[K, V]) Add(key K, value V, size int64) (evicted int) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: value, size: size})
	c.bytes += size
	for c.order.Len() > 1 &&
		((c.maxEntries > 0 && c.order.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.order.Back()
		ent := oldest.Value.(*entry[K, V])
		c.order.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= ent.size
		evicted++
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.val)
		}
	}
	return evicted
}

// Remove drops key from the cache (no OnEvict callback — the caller
// chose the removal and owns any cleanup), reporting whether it was
// present.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	ent := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.entries, key)
	c.bytes -= ent.size
	return true
}

// Len returns the live entry count.
func (c *Cache[K, V]) Len() int { return c.order.Len() }

// Evictions returns the cumulative count of entries dropped by
// capacity eviction since construction (Remove calls excluded) — the
// counter the telemetry layer surfaces per cache tier.
func (c *Cache[K, V]) Evictions() uint64 { return c.evictions }

// Bytes returns the total accounted size of retained entries.
func (c *Cache[K, V]) Bytes() int64 { return c.bytes }
