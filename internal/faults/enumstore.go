package faults

// Process-wide memo store for shared enumerations, the sibling of the
// rate atlas (atlas.go): where the atlas caches analytic expectations
// per (fingerprint, voltage, kind), this store caches stuck-cell
// *realizations* per (fingerprint, voltage) sub-key — pseudo channel,
// batch rep, window and sampling mode. A campaign whose cells differ
// only in test patterns resolves every (voltage, port, rep) physics
// evaluation to one entry here, which is what makes campaign
// throughput scale with unique physics rather than cell count.
//
// Unlike atlas entries (a few hundred bytes each), an enumeration can
// hold thousands of packed faults, so the LRU is bounded by bytes, not
// entries. Computations are singleflight-guarded: N concurrent
// requesters of one key perform one computation; latecomers block on
// the in-flight call and share its result. Enumerations are pure
// functions of their key, so sharing is semantically invisible.

import (
	"context"
	"math"
	"strconv"
	"sync"

	"hbmvolt/internal/lru"
	"hbmvolt/internal/telemetry"
)

// EnumKey addresses one memoized enumeration. Voltages are keyed by
// exact bit pattern (grid builders produce identical float64s for
// equal grid points); Sparse distinguishes the two sampler
// realizations, which share a config fingerprint but draw different
// devices.
type EnumKey struct {
	Fingerprint uint64
	Sparse      bool
	VBits       uint64
	PC          int // global pseudo-channel index
	Rep         uint64
	Words       uint64
}

// DefaultEnumCacheBytes bounds the process-wide enumeration store. A
// full smoke campaign needs well under 1 MB; the headroom covers
// full-scale sweeps, whose low-voltage windows aggregate rather than
// enumerate, keeping entries small.
const DefaultEnumCacheBytes = 128 << 20

// EnumStats reports the shared enumeration store's counters, for
// health endpoints and the memo tests.
type EnumStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Computes  uint64 `json:"computes"`
	Evictions uint64 `json:"evictions"`
}

// enumCall is one in-flight computation; waiters block on wg and read
// e afterwards.
type enumCall struct {
	wg sync.WaitGroup
	e  *Enumeration
}

// enumStore is a byte-bounded, singleflight-guarded memo of
// enumerations: the singleflight layer here, the eviction policy and
// byte accounting in the shared internal/lru index (the same one the
// service result cache uses).
type enumStore struct {
	mu       sync.Mutex
	maxBytes int64
	lru      *lru.Cache[EnumKey, *Enumeration]
	inflight map[EnumKey]*enumCall

	hits, misses, coalesced, computes, evictions uint64
}

func newEnumStore(maxBytes int64) *enumStore {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &enumStore{
		maxBytes: maxBytes,
		lru:      lru.New[EnumKey, *Enumeration](0, maxBytes),
		inflight: make(map[EnumKey]*enumCall),
	}
}

// get returns the memoized enumeration for key, computing it (at most
// once per key, however many goroutines ask concurrently) on a miss.
// A panicking compute (an OOM-killed append, a future bug) must not
// wedge the key: the in-flight record is removed and waiters released
// under defer, so the panic propagates to the computing caller while
// waiters — and every later requester — fail loudly or retry instead
// of blocking forever.
func (s *enumStore) get(key EnumKey, compute func() *Enumeration) *Enumeration {
	e, _ := s.getOutcome(key, compute)
	return e
}

// getOutcome is get plus the lookup's resolution — "hit" (memoized),
// "coalesced" (joined an in-flight compute), or "compute" (paid for
// the physics) — for the trace layer. The outcome is observability
// metadata only; the returned enumeration is identical either way.
func (s *enumStore) getOutcome(key EnumKey, compute func() *Enumeration) (*Enumeration, string) {
	s.mu.Lock()
	if e, ok := s.lru.Get(key); ok {
		s.hits++
		s.mu.Unlock()
		return e, "hit"
	}
	if c, ok := s.inflight[key]; ok {
		s.coalesced++
		s.mu.Unlock()
		c.wg.Wait()
		if c.e == nil {
			panic("faults: shared enumeration computation panicked in a concurrent requester")
		}
		return c.e, "coalesced"
	}
	c := &enumCall{}
	c.wg.Add(1)
	s.inflight[key] = c
	s.misses++
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		if c.e != nil {
			s.computes++
			s.evictions += uint64(s.lru.Add(key, c.e, int64(c.e.SizeBytes())))
		}
		s.mu.Unlock()
		c.wg.Done()
	}()
	c.e = compute()
	return c.e, "compute"
}

// stats snapshots the counters.
func (s *enumStore) stats() EnumStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return EnumStats{
		Entries:   s.lru.Len(),
		Bytes:     s.lru.Bytes(),
		MaxBytes:  s.maxBytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Coalesced: s.coalesced,
		Computes:  s.computes,
		Evictions: s.evictions,
	}
}

// sharedEnums is the process-wide store, shared by every model the way
// the atlas map is: equal fingerprints resolve to the same entries.
var sharedEnums = newEnumStore(DefaultEnumCacheBytes)

// SharedEnumeration returns the process-wide memoized enumeration of
// (stack, pc) at voltage v for batch rep rep over the window
// [0, words), computing it once per key across all models with this
// configuration fingerprint. Safe for concurrent use; concurrent
// requesters of one key coalesce onto a single computation.
func (m *Model) SharedEnumeration(stack, pc int, v float64, rep, words uint64) *Enumeration {
	return m.SharedEnumerationCtx(context.Background(), stack, pc, v, rep, words)
}

// SharedEnumerationCtx is SharedEnumeration with trace propagation:
// when ctx carries a telemetry recorder, the lookup's resolution
// (hit / coalesced / compute) is recorded as an "enum.lookup" span on
// the submission's trace. The enumeration itself is untouched — spans
// never feed back into physics.
func (m *Model) SharedEnumerationCtx(ctx context.Context, stack, pc int, v float64, rep, words uint64) *Enumeration {
	key := EnumKey{
		Fingerprint: m.Fingerprint(),
		Sparse:      m.cfg.SparseEnumeration,
		VBits:       math.Float64bits(v),
		PC:          pcIndex(stack, pc),
		Rep:         rep,
		Words:       words,
	}
	e, outcome := sharedEnums.getOutcome(key, func() *Enumeration {
		return m.Enumerate(stack, pc, v, rep, words)
	})
	if rec := telemetry.RecorderOf(ctx); rec != nil {
		rec.Record(telemetry.TraceOf(ctx), "enum.lookup", map[string]string{
			"outcome": outcome,
			"voltage": strconv.FormatFloat(v, 'f', -1, 64),
			"pc":      strconv.Itoa(key.PC),
		})
	}
	return e
}

// EnumStoreStats reports the process-wide enumeration store's
// occupancy and hit counters.
func EnumStoreStats() EnumStats { return sharedEnums.stats() }

// RegisterEnumMetrics surfaces the process-wide enumeration store in a
// telemetry registry as sampler-backed families, so /metrics and the
// /healthz shared_enums block read the same counters.
func RegisterEnumMetrics(r *telemetry.Registry) {
	one := func(v float64) []telemetry.Sample { return []telemetry.Sample{{Value: v}} }
	r.CounterSampler("hbmvolt_enum_store_requests_total",
		"Shared-enumeration store lookups by resolution: served memoized (hit), joined an in-flight compute (coalesced), or scheduled a compute (miss).",
		[]string{"outcome"}, func() []telemetry.Sample {
			st := EnumStoreStats()
			return []telemetry.Sample{
				{Labels: []string{"coalesced"}, Value: float64(st.Coalesced)},
				{Labels: []string{"hit"}, Value: float64(st.Hits)},
				{Labels: []string{"miss"}, Value: float64(st.Misses)},
			}
		})
	r.CounterSampler("hbmvolt_enum_store_computes_total",
		"Enumerations actually computed (unique physics paid for).", nil,
		func() []telemetry.Sample { return one(float64(EnumStoreStats().Computes)) })
	r.CounterSampler("hbmvolt_enum_store_evictions_total",
		"Enumerations evicted from the byte-bounded memo store.", nil,
		func() []telemetry.Sample { return one(float64(EnumStoreStats().Evictions)) })
	r.GaugeSampler("hbmvolt_enum_store_entries",
		"Enumerations currently memoized.", nil,
		func() []telemetry.Sample { return one(float64(EnumStoreStats().Entries)) })
	r.GaugeSampler("hbmvolt_enum_store_bytes",
		"Bytes retained by the enumeration memo store.", nil,
		func() []telemetry.Sample { return one(float64(EnumStoreStats().Bytes)) })
}
