package verify

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLedger(t *testing.T) {
	doc := strings.Join([]string{
		"# Claims ledger",
		"",
		"intro text with `inline-code` that is not a heading",
		"## Deep undervolting saves power — `power-savings-deep-undervolt`",
		"body",
		"### a sub-heading with `code` is not a claim section",
		"## The guardband ends at 0.98 V — `guardband-vmin`",
	}, "\n")
	ids, err := ParseLedger([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"power-savings-deep-undervolt", "guardband-vmin"}
	if len(ids) != len(want) {
		t.Fatalf("ParseLedger = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ParseLedger = %v, want %v", ids, want)
		}
	}

	dup := doc + "\n## again — `guardband-vmin`\n"
	if _, err := ParseLedger([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate section: got err %v, want duplicate error", err)
	}
}

func TestCheckLedgerBothDirections(t *testing.T) {
	ids := RegisteredIDs()
	if missing, stale := CheckLedger(ids); len(missing) != 0 || len(stale) != 0 {
		t.Fatalf("exact registry must be in sync: missing %v stale %v", missing, stale)
	}
	// Drop one and add a phantom: both directions must be reported.
	drifted := append([]string{"phantom-claim"}, ids[1:]...)
	missing, stale := CheckLedger(drifted)
	if len(missing) != 1 || missing[0] != ids[0] {
		t.Errorf("missing = %v, want [%s]", missing, ids[0])
	}
	if len(stale) != 1 || stale[0] != "phantom-claim" {
		t.Errorf("stale = %v, want [phantom-claim]", stale)
	}
}

// TestClaimsLedgerInSync is the doc-lint: docs/CLAIMS.md must document
// exactly the registered claim IDs (cmd/claimcheck runs the same check
// from the CI claims-gate job).
func TestClaimsLedgerInSync(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "CLAIMS.md"))
	if err != nil {
		t.Fatalf("reading claims ledger: %v", err)
	}
	ids, err := ParseLedger(data)
	if err != nil {
		t.Fatal(err)
	}
	missing, stale := CheckLedger(ids)
	if len(missing) != 0 {
		t.Errorf("registered claims missing a docs/CLAIMS.md section: %v", missing)
	}
	if len(stale) != 0 {
		t.Errorf("docs/CLAIMS.md documents unregistered claims: %v", stale)
	}
}
