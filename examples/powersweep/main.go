// Powersweep regenerates the paper's Fig. 2 and Fig. 3 measurements and
// writes them as CSV for external plotting, demonstrating the
// measurement loop a real host would run over PMBus + INA226.
package main

import (
	"fmt"
	"log"
	"os"

	"hbmvolt"
)

func main() {
	sys, err := hbmvolt.New(hbmvolt.Config{
		Scale:      256,
		NoiseSigma: 0.005, // realistic monitor noise
	})
	if err != nil {
		log.Fatal(err)
	}

	// Full 10 mV resolution, all five bandwidth points, like the real
	// experiment (the figures in the paper display every 50 mV).
	res, err := sys.RunPowerSweep(hbmvolt.PowerSweepConfig{
		Grid:       hbmvolt.PaperGrid(),
		PortCounts: []int{0, 8, 16, 24, 32},
		Samples:    10,
	})
	if err != nil {
		log.Fatal(err)
	}

	const path = "fig2_fig3.csv"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sys.WriteFig2CSV(f, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(res.Points))

	// Headline numbers.
	for _, v := range []float64{0.98, 0.85} {
		s, err := res.SavingsAt(v, 32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("savings at %.2fV: %.2fx\n", v, s)
	}
	pt := res.At(0.85, 32)
	fmt.Printf("alpha*CL*f at 0.85V: %.3f of nominal (stuck cells stop switching)\n",
		pt.NormAlphaCLF)
}
