// Command metricscheck validates Prometheus text exposition read from
// stdin and checks that required metric families are present — the CI
// gate that keeps /metrics parseable and complete as the daemon grows.
//
// Usage:
//
//	curl -sf http://127.0.0.1:8023/metrics | metricscheck family...
//
// It exits nonzero (with a diagnostic per problem) when:
//
//   - a line is neither a comment, a blank, nor a well-formed sample
//     (name{labels} value, with balanced quotes and a parseable float);
//   - a # TYPE names a type other than counter, gauge, or histogram;
//   - a sample appears before its family's # TYPE line;
//   - a histogram family lacks its _bucket/_sum/_count series or its
//     +Inf bucket;
//   - any family named on the command line has no samples.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	problems := check(os.Args[1:])
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "metricscheck:", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Println("metricscheck: ok")
}

// check scans stdin and returns every problem found (empty = valid).
func check(required []string) []string {
	var problems []string
	// typed maps family name → declared type; sampled maps the base
	// family name (histogram suffixes stripped) → sample count.
	typed := make(map[string]string)
	sampled := make(map[string]int)
	// histSeries tracks which of _bucket/_sum/_count/+Inf each histogram
	// family has shown.
	histSeries := make(map[string]map[string]bool)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram":
					typed[fields[2]] = typ
				default:
					problems = append(problems, fmt.Sprintf("line %d: unknown TYPE %q for %s", lineNo, typ, fields[2]))
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v (%q)", lineNo, err, line))
			continue
		}
		base, series := baseName(name, typed)
		if _, ok := typed[base]; !ok {
			problems = append(problems, fmt.Sprintf("line %d: sample %s before its # TYPE line", lineNo, name))
		}
		sampled[base]++
		if series != "" {
			hs := histSeries[base]
			if hs == nil {
				hs = make(map[string]bool)
				histSeries[base] = hs
			}
			hs[series] = true
			if series == "_bucket" && strings.Contains(labels, `le="+Inf"`) {
				hs["+Inf"] = true
			}
		}
		_ = value
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("reading stdin: %v", err))
	}

	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		hs := histSeries[fam]
		for _, want := range []string{"_bucket", "_sum", "_count", "+Inf"} {
			if !hs[want] {
				problems = append(problems, fmt.Sprintf("histogram %s: missing %s series", fam, want))
			}
		}
	}
	for _, fam := range required {
		if sampled[fam] == 0 {
			problems = append(problems, fmt.Sprintf("required family %s: no samples", fam))
		}
	}
	return problems
}

// parseSample splits one exposition sample line into its metric name,
// raw label block (without braces; empty when unlabeled), and value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		name = line[:brace]
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			return "", "", 0, fmt.Errorf("unbalanced label braces")
		}
		labels = line[brace+1 : end]
		if strings.Count(labels, `"`)%2 != 0 {
			return "", "", 0, fmt.Errorf("unbalanced label quotes")
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("no value")
		}
		name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	if name == "" || !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	// A sample may carry an optional timestamp after the value.
	valueField := strings.Fields(rest)
	if len(valueField) == 0 {
		return "", "", 0, fmt.Errorf("no value")
	}
	value, err = strconv.ParseFloat(valueField[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable value %q", valueField[0])
	}
	return name, labels, value, nil
}

// baseName strips a histogram sample suffix when the stripped name is a
// declared histogram family, returning the family name and the suffix
// ("" for plain samples).
func baseName(name string, typed map[string]string) (base, series string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed != name && typed[trimmed] == "histogram" {
			return trimmed, suffix
		}
	}
	return name, ""
}

// validName checks the Prometheus metric name charset.
func validName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}
