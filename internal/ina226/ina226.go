// Package ina226 models the Texas Instruments INA226 current/power
// monitor that the VCU128 board places on the HBM supply rail and that
// the paper collects all power measurements from (§II-B).
//
// The model is register-accurate to the datasheet (SBOS547A): bus voltage
// LSB of 1.25 mV, shunt voltage LSB of 2.5 µV, the calibration-register
// current/power pipeline (Current = Shunt×Cal/2048, Power = Current×Bus/
// 20000, power LSB = 25× current LSB), and hardware sample averaging per
// the AVG configuration bits. Measurement noise is deterministic and
// shrinks with averaging exactly as the real part's effective resolution
// does.
package ina226

import (
	"errors"
	"fmt"
	"math"

	"hbmvolt/internal/prf"
)

// Register addresses (datasheet table 3).
const (
	RegConfig      = 0x00
	RegShuntVolt   = 0x01
	RegBusVolt     = 0x02
	RegPower       = 0x03
	RegCurrent     = 0x04
	RegCalibration = 0x05
	RegMaskEnable  = 0x06
	RegAlertLimit  = 0x07
	RegMfrID       = 0xfe
	RegDieID       = 0xff
)

// Fixed LSB weights (datasheet §7.5).
const (
	BusVoltLSB   = 1.25e-3 // volts
	ShuntVoltLSB = 2.5e-6  // volts
)

// ConfigReset is the reset bit of the configuration register.
const ConfigReset = 1 << 15

// configDefault is the power-on configuration value (datasheet: 0x4127).
const configDefault = 0x4127

// avgCounts maps the AVG field (config bits 11:9) to sample counts.
var avgCounts = [8]int{1, 4, 16, 64, 128, 256, 512, 1024}

// ctMicros maps the VBUSCT/VSHCT fields (config bits 8:6 / 5:3) to
// conversion times in microseconds.
var ctMicros = [8]float64{140, 204, 332, 588, 1100, 2116, 4156, 8244}

// ErrBadRegister is returned for reads/writes of unknown registers.
var ErrBadRegister = errors.New("ina226: unknown register")

// Rail is the electrical source the monitor samples: bus voltage in
// volts and load current in amps.
type Rail func() (volts, amps float64)

// Config parameterizes the monitor.
type Config struct {
	// ShuntOhms is the sense resistor (2 mΩ on the VCU128 HBM rail).
	ShuntOhms float64
	// Rail supplies the sampled electrical state.
	Rail Rail
	// Seed drives the deterministic per-sample noise.
	Seed uint64
	// NoiseSigma is the relative 1-sample measurement noise (e.g. 0.005);
	// averaging reduces it by sqrt(N). Zero disables noise.
	NoiseSigma float64
}

// INA226 is the monitor device. Its registers are recomputed from a
// fresh rail sample burst on every trigger, mimicking continuous
// conversion mode.
type INA226 struct {
	cfg     Config
	config  uint16
	cal     uint16
	sample  uint64 // monotone sample counter feeding the noise stream
	shunt   int16
	bus     uint16
	current int16
	power   uint16
}

// New builds the monitor.
func New(cfg Config) (*INA226, error) {
	if cfg.ShuntOhms <= 0 {
		return nil, fmt.Errorf("ina226: ShuntOhms %v must be positive", cfg.ShuntOhms)
	}
	if cfg.Rail == nil {
		return nil, errors.New("ina226: Rail must be set")
	}
	return &INA226{cfg: cfg, config: configDefault}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *INA226 {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// CurrentLSB returns the amps-per-count weight implied by the programmed
// calibration register, or 0 if uncalibrated.
func (m *INA226) CurrentLSB() float64 {
	if m.cal == 0 {
		return 0
	}
	return 0.00512 / (float64(m.cal) * m.cfg.ShuntOhms)
}

// CalibrationFor returns the calibration word for a desired maximum
// expected current, using the datasheet recipe currentLSB = Imax/2^15.
func CalibrationFor(maxAmps, shuntOhms float64) (uint16, error) {
	if maxAmps <= 0 || shuntOhms <= 0 {
		return 0, fmt.Errorf("ina226: invalid calibration inputs (%v A, %v Ω)", maxAmps, shuntOhms)
	}
	lsb := maxAmps / 32768
	cal := 0.00512 / (lsb * shuntOhms)
	if cal < 1 || cal > math.MaxUint16 {
		return 0, fmt.Errorf("ina226: calibration %v out of range", cal)
	}
	return uint16(cal), nil
}

// convert runs one averaged conversion burst and refreshes the data
// registers.
func (m *INA226) convert() {
	n := avgCounts[(m.config>>9)&7]
	var sumV, sumI float64
	for i := 0; i < n; i++ {
		v, a := m.cfg.Rail()
		m.sample++
		if m.cfg.NoiseSigma != 0 {
			h := prf.Hash2(m.cfg.Seed, m.sample)
			zv := prf.Float64(prf.Hash2(h, 1)) + prf.Float64(prf.Hash2(h, 2)) +
				prf.Float64(prf.Hash2(h, 3)) - 1.5
			zi := prf.Float64(prf.Hash2(h, 4)) + prf.Float64(prf.Hash2(h, 5)) +
				prf.Float64(prf.Hash2(h, 6)) - 1.5
			// Sum of three uniforms centered: sd = 0.5; scale to sigma.
			v *= 1 + m.cfg.NoiseSigma*2*zv
			a *= 1 + m.cfg.NoiseSigma*2*zi
		}
		sumV += v
		sumI += a
	}
	busV := sumV / float64(n)
	amps := sumI / float64(n)

	// Quantize to the fixed LSBs.
	bus := math.Round(busV / BusVoltLSB)
	if bus < 0 {
		bus = 0
	}
	if bus > 0x7fff {
		bus = 0x7fff
	}
	m.bus = uint16(bus)

	shunt := math.Round(amps * m.cfg.ShuntOhms / ShuntVoltLSB)
	if shunt > math.MaxInt16 {
		shunt = math.MaxInt16
	}
	if shunt < math.MinInt16 {
		shunt = math.MinInt16
	}
	m.shunt = int16(shunt)

	// Datasheet pipeline: current and power derive from the quantized
	// registers, not the analog values.
	if m.cal == 0 {
		m.current = 0
		m.power = 0
		return
	}
	cur := float64(m.shunt) * float64(m.cal) / 2048
	if cur > math.MaxInt16 {
		cur = math.MaxInt16
	}
	if cur < math.MinInt16 {
		cur = math.MinInt16
	}
	m.current = int16(math.Round(cur))

	pw := float64(m.current) * float64(m.bus) / 20000
	if pw < 0 {
		pw = 0
	}
	if pw > math.MaxUint16 {
		pw = math.MaxUint16
	}
	m.power = uint16(math.Round(pw))
}

// ReadRegister performs a register read; data registers trigger a fresh
// conversion burst first (continuous mode abstraction).
func (m *INA226) ReadRegister(reg byte) (uint16, error) {
	switch reg {
	case RegConfig:
		return m.config, nil
	case RegShuntVolt:
		m.convert()
		return uint16(m.shunt), nil
	case RegBusVolt:
		m.convert()
		return m.bus, nil
	case RegPower:
		m.convert()
		return m.power, nil
	case RegCurrent:
		m.convert()
		return uint16(m.current), nil
	case RegCalibration:
		return m.cal, nil
	case RegMfrID:
		return 0x5449, nil // "TI"
	case RegDieID:
		return 0x2260, nil
	default:
		return 0, fmt.Errorf("%w: 0x%02x", ErrBadRegister, reg)
	}
}

// WriteRegister performs a register write.
func (m *INA226) WriteRegister(reg byte, value uint16) error {
	switch reg {
	case RegConfig:
		if value&ConfigReset != 0 {
			m.config = configDefault
			m.cal = 0
			return nil
		}
		m.config = value
		return nil
	case RegCalibration:
		m.cal = value & 0x7fff
		return nil
	default:
		return fmt.Errorf("%w: 0x%02x not writable", ErrBadRegister, reg)
	}
}

// ConversionMicros returns the total conversion time of one averaged
// read burst under the current configuration (bus + shunt conversion
// times multiplied by the averaging count).
func (m *INA226) ConversionMicros() float64 {
	n := float64(avgCounts[(m.config>>9)&7])
	vbus := ctMicros[(m.config>>6)&7]
	vsh := ctMicros[(m.config>>3)&7]
	return n * (vbus + vsh)
}

// BusVolts reads and decodes the bus voltage register.
func (m *INA226) BusVolts() (float64, error) {
	raw, err := m.ReadRegister(RegBusVolt)
	if err != nil {
		return 0, err
	}
	return float64(raw) * BusVoltLSB, nil
}

// CurrentAmps reads and decodes the current register.
func (m *INA226) CurrentAmps() (float64, error) {
	raw, err := m.ReadRegister(RegCurrent)
	if err != nil {
		return 0, err
	}
	return float64(int16(raw)) * m.CurrentLSB(), nil
}

// PowerWatts reads and decodes the power register.
func (m *INA226) PowerWatts() (float64, error) {
	raw, err := m.ReadRegister(RegPower)
	if err != nil {
		return 0, err
	}
	return float64(raw) * 25 * m.CurrentLSB(), nil
}
