package pmbus

// PMBus command codes used by the regulator model (PMBus spec part II).
const (
	CmdOperation        = 0x01
	CmdOnOffConfig      = 0x02
	CmdClearFaults      = 0x03
	CmdVoutMode         = 0x20
	CmdVoutCommand      = 0x21
	CmdVoutMax          = 0x24
	CmdVoutMarginHigh   = 0x25
	CmdVoutMarginLow    = 0x26
	CmdVoutOVFaultLimit = 0x40
	CmdVoutOVWarnLimit  = 0x42
	CmdVoutUVWarnLimit  = 0x43
	CmdVoutUVFaultLimit = 0x44
	CmdIoutOCFaultLimit = 0x46
	CmdStatusByte       = 0x78
	CmdStatusWord       = 0x79
	CmdStatusVout       = 0x7a
	CmdStatusIout       = 0x7b
	CmdReadVin          = 0x88
	CmdReadVout         = 0x8b
	CmdReadIout         = 0x8c
	CmdReadTemperature1 = 0x8d
	CmdReadPout         = 0x96
	CmdReadPin          = 0x97
	CmdPMBusRevision    = 0x98
	CmdMfrID            = 0x99
	CmdICDeviceID       = 0xad
)

// OPERATION command values.
const (
	OperationOff         = 0x00
	OperationOn          = 0x80
	OperationMarginLow   = 0x98
	OperationMarginHigh  = 0xa8
	OperationSoftOffMask = 0x40
)

// STATUS_BYTE / STATUS_WORD bits (low byte).
const (
	StatusNoneOfTheAbove = 1 << 0
	StatusCML            = 1 << 1
	StatusTemperature    = 1 << 2
	StatusVinUV          = 1 << 3
	StatusIoutOC         = 1 << 4
	StatusVoutOV         = 1 << 5
	StatusOff            = 1 << 6
	StatusBusy           = 1 << 7
)

// STATUS_WORD high-byte bits.
const (
	StatusWordVout = 1 << 15
	StatusWordIout = 1 << 14
)

// STATUS_VOUT bits.
const (
	StatusVoutOVFault = 1 << 7
	StatusVoutOVWarn  = 1 << 6
	StatusVoutUVWarn  = 1 << 5
	StatusVoutUVFault = 1 << 4
)
