// Tradeoff walks the three-factor power/capacity/fault-rate design
// space of §III-C for a set of application profiles, from crash-
// intolerant databases to fault-tolerant video analytics, and prints
// the deepest safe operating point for each.
package main

import (
	"fmt"
	"log"

	"hbmvolt"
)

// profile describes an application's memory requirements.
type profile struct {
	name string
	// tolerableRate is the cell fault rate the application survives
	// (0 = must be fault-free).
	tolerableRate float64
	// minPCs is the number of 256 MB pseudo channels it needs.
	minPCs int
}

func main() {
	sys, err := hbmvolt.New(hbmvolt.Config{Scale: 1024})
	if err != nil {
		log.Fatal(err)
	}

	profiles := []profile{
		// The paper's own examples (§III-C):
		{"in-memory DB (needs all 8 GB, zero faults)", 0, 32},
		{"HPC kernel (zero faults, small footprint)", 0, 7},
		{"video analytics (0.0001% ok, half capacity)", 1e-6, 16},
		// Further points on the frontier:
		{"NN inference (0.01% ok, quarter capacity)", 1e-4, 8},
		{"approximate analytics (1% ok, 2 PCs)", 1e-2, 2},
	}

	fmt.Println("application profile                                   operating point")
	fmt.Println("----------------------------------------------------  ------------------------------------------")
	for _, p := range profiles {
		plan, err := sys.Plan(p.tolerableRate, p.minPCs)
		if err != nil {
			fmt.Printf("%-53s  no feasible point: %v\n", p.name, err)
			continue
		}
		fmt.Printf("%-53s  %s\n", p.name, plan)
	}

	// The same query, expressed as "how much can I save if...":
	fmt.Println("\nsavings frontier at half capacity (16 PCs):")
	for _, tol := range []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		plan, err := sys.Plan(tol, 16)
		if err != nil {
			continue
		}
		fmt.Printf("  tolerate %8.1g → run at %.2fV, save %.2fx\n", tol, plan.Volts, plan.Savings)
	}
}
