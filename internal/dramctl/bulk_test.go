package dramctl

import (
	"math"
	"testing"
)

// TestAccessRangeSmallIsExact: below the threshold AccessRange is the
// per-word scheduler, cycle for cycle.
func TestAccessRangeSmallIsExact(t *testing.T) {
	exact, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	const n = bulkExactThreshold
	var wantDone float64
	for a := uint64(0); a < n; a++ {
		wantDone = exact.Access(a, Write)
	}
	if got := bulk.AccessRange(0, n, Write); got != wantDone {
		t.Fatalf("small AccessRange done = %v, exact = %v", got, wantDone)
	}
	if exact.Stats() != bulk.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", exact.Stats(), bulk.Stats())
	}
}

// TestAccessRangeExtrapolated exercises the statistical branch (count
// above the threshold): elapsed time must track the exact scheduler
// within a few percent, statistics must stay internally consistent, and
// the controller must remain usable for further accesses.
func TestAccessRangeExtrapolated(t *testing.T) {
	const n = 1 << 20 // 64x the exact threshold
	for _, op := range []Op{Read, Write} {
		exact, err := New(DefaultTiming(), DefaultGeometry)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < n; a++ {
			exact.Access(a, op)
		}
		bulk, err := New(DefaultTiming(), DefaultGeometry)
		if err != nil {
			t.Fatal(err)
		}
		done := bulk.AccessRange(0, n, op)

		if math.IsNaN(done) || math.IsInf(done, 0) || done <= 0 {
			t.Fatalf("op %v: degenerate completion cycle %v", op, done)
		}
		ratio := bulk.ElapsedSeconds() / exact.ElapsedSeconds()
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("op %v: extrapolated time off by %vx (bulk %v, exact %v)",
				op, ratio, bulk.ElapsedSeconds(), exact.ElapsedSeconds())
		}
		st := bulk.Stats()
		if st.Accesses != n {
			t.Fatalf("op %v: accesses = %d, want %d", op, st.Accesses, n)
		}
		if st.RowHits+st.RowMisses != n {
			t.Fatalf("op %v: hits %d + misses %d != %d", op, st.RowHits, st.RowMisses, n)
		}
		if st.Refreshes == 0 {
			t.Fatalf("op %v: a %d-word stream must cross refresh intervals", op, n)
		}
		if u := st.BusUtilization(); u <= 0 || u > 1 {
			t.Fatalf("op %v: bus utilization %v", op, u)
		}

		// The controller keeps scheduling correctly after the fast-forward:
		// time advances monotonically and refresh bookkeeping holds.
		prev := done
		for a := uint64(n); a < n+100; a++ {
			next := bulk.Access(a, op)
			if next <= prev-1e-9 {
				t.Fatalf("op %v: time went backwards after bulk fast-forward (%v -> %v)", op, prev, next)
			}
			prev = next
		}
		if bulk.nextRefresh <= done-1e-9 {
			t.Fatalf("op %v: refresh schedule left behind the clock", op)
		}
	}
}

// TestAccessRangeSplitMatchesWhole: chaining bulk ranges accumulates
// the same totals as one big range (no per-call fixed distortion).
func TestAccessRangeSplitMatchesWhole(t *testing.T) {
	whole, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	whole.AccessRange(0, 1<<20, Read)
	split, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	split.AccessRange(0, 1<<19, Read)
	split.AccessRange(1<<19, 1<<19, Read)
	r := split.ElapsedSeconds() / whole.ElapsedSeconds()
	if r < 0.99 || r > 1.01 {
		t.Fatalf("split ranges cost %vx the whole range", r)
	}
	if split.Stats().Accesses != whole.Stats().Accesses {
		t.Fatal("access counters differ")
	}
}
