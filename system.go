// Package hbmvolt is an open-source reproduction of "Understanding Power
// Consumption and Reliability of High-Bandwidth Memory with Voltage
// Underscaling" (Nabavi Larimi et al., DATE 2021).
//
// It simulates the paper's entire test platform — a VCU128 board with
// two 4 GB HBM2 stacks, an ISL68301 PMBus voltage regulator, an INA226
// power monitor, and 32 AXI traffic generators — around a fault model
// calibrated to every quantitative observation in the paper, and layers
// the paper's characterization framework on top: guardband discovery,
// power sweeps, Algorithm 1 reliability testing, per-PC fault maps, and
// the three-factor power/capacity/fault-rate trade-off planner.
//
// Quick start:
//
//	sys, err := hbmvolt.New(hbmvolt.Config{})
//	if err != nil { ... }
//	sys.SetVoltage(0.95)                  // undervolt via PMBus
//	watts, _ := sys.PowerWatts()          // INA226 measurement
//	plan, _ := sys.Plan(1e-6, 16)         // trade-off planning
package hbmvolt

import (
	"context"

	"hbmvolt/internal/board"
	"hbmvolt/internal/core"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

// Re-exported result and helper types. Their fields and methods are the
// stable public surface.
type (
	// Plan is a three-factor trade-off operating point.
	Plan = core.Plan
	// Guardband describes the safe voltage region.
	Guardband = core.Guardband
	// ReliabilityResult is an Algorithm 1 sweep outcome.
	ReliabilityResult = core.ReliabilityResult
	// ReliabilityConfig parameterizes Algorithm 1.
	ReliabilityConfig = core.ReliabilityConfig
	// PowerSweepResult is a Fig. 2/3 measurement matrix.
	PowerSweepResult = core.PowerSweepResult
	// PowerSweepConfig parameterizes the power sweep.
	PowerSweepConfig = core.PowerSweepConfig
	// SweepScheduler shards reliability sweeps across a board fleet.
	SweepScheduler = core.SweepScheduler
	// SweepProgress reports one completed voltage point of a sweep.
	SweepProgress = core.SweepProgress
	// ECCStudy is the SEC-DED mitigation analysis.
	ECCStudy = core.ECCStudy
	// FaultMap is the per-PC fault atlas.
	FaultMap = core.FaultMap
	// PortID identifies one of the 32 AXI ports.
	PortID = hbm.PortID
	// Pattern generates test data words.
	Pattern = pattern.Pattern
	// Board is the assembled platform (advanced use).
	Board = board.Board
)

// Voltage landmarks of the characterized device.
const (
	VNom      = faults.VNom
	VMin      = faults.VMin
	VCritical = faults.VCritical
	VStep     = faults.VStep
)

// PaperBatchSize is the paper's repetition count (130).
const PaperBatchSize = core.PaperBatchSize

// Config parameterizes a simulated platform.
type Config struct {
	// Seed selects the device instance (fault map realization). The
	// default instance (0) is the calibrated reproduction of the paper's
	// board.
	Seed uint64
	// Scale divides pseudo-channel capacity by a power of two; 1 is the
	// full 8 GB device, 0 defaults to 1024 (8 MB) for cheap exploration.
	Scale uint64
	// TemperatureC is the ambient temperature (default 35 °C, the
	// paper's operating point).
	TemperatureC float64
	// NoiseSigma enables measurement noise on the monitor chain.
	NoiseSigma float64
	// SwitchEnabled turns the AXI switching network on.
	SwitchEnabled bool
	// SparseFaults selects the fault model's sparse enumeration mode,
	// making full-capacity Monte-Carlo traffic cost O(#faults) instead
	// of O(bits scanned). The default (false) keeps the bit-exact
	// per-cell fault map.
	SparseFaults bool
	// SweepWorkers is the default board-fleet size for reliability
	// sweeps: voltage points are sharded across this many independently
	// instantiated clones of the board (results are bit-identical at any
	// worker count). 0 or 1 keeps sweeps sequential; a per-call
	// ReliabilityConfig.Workers overrides it.
	SweepWorkers int
}

// System is a live simulated platform plus the characterization
// framework bound to it.
type System struct {
	// Board exposes the underlying platform for advanced scenarios
	// (direct TG programming, PMBus access, monitor registers).
	Board *board.Board

	// atlas is a full-capacity fault model with the same seed and
	// temperature as the board. Figures, usable-PC counts and plans
	// always describe the real 8 GB device, even when the board runs at
	// a reduced Scale for cheap Monte-Carlo work. Its analytic rates are
	// memoized in a process-wide atlas shared by every model with the
	// same config fingerprint, so figures over one grid never recompute
	// each other's expectations.
	atlas *faults.Model
	fmap  *core.FaultMap
	// sweepWorkers is the configured default fleet size for sweeps.
	sweepWorkers int
}

// New builds a system.
func New(cfg Config) (*System, error) {
	b, err := board.New(board.Config{
		Seed:          cfg.Seed,
		Scale:         cfg.Scale,
		Temperature:   cfg.TemperatureC,
		NoiseSigma:    cfg.NoiseSigma,
		SwitchEnabled: cfg.SwitchEnabled,
		SparseFaults:  cfg.SparseFaults,
	})
	if err != nil {
		return nil, err
	}
	atlasCfg := b.Faults.Config()
	atlasCfg.Geometry = faults.DefaultGeometry
	atlas, err := faults.New(atlasCfg)
	if err != nil {
		return nil, err
	}
	fmap, err := core.NewFaultMap(atlas, b.Power, nil)
	if err != nil {
		return nil, err
	}
	return &System{Board: b, atlas: atlas, fmap: fmap, sweepWorkers: cfg.SweepWorkers}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// SetVoltage programs the HBM supply through the PMBus regulator.
// Driving it below VCritical crashes the memory until PowerCycle.
func (s *System) SetVoltage(volts float64) error {
	return s.Board.SetHBMVoltage(volts)
}

// Voltage reads the supply back over PMBus.
func (s *System) Voltage() (float64, error) { return s.Board.HBMVoltage() }

// PowerWatts measures rail power through the INA226.
func (s *System) PowerWatts() (float64, error) { return s.Board.MeasurePower() }

// SetActivePorts scales bandwidth utilization by enabling the first n
// AXI ports (n/32 of peak bandwidth), the paper's §II-C1 technique.
func (s *System) SetActivePorts(n int) error { return s.Board.SetActivePorts(n) }

// Crashed reports whether the memory has stopped responding.
func (s *System) Crashed() bool { return s.Board.Crashed() }

// PowerCycle recovers a crashed device (contents are lost).
func (s *System) PowerCycle() error { return s.Board.PowerCycle() }

// FaultMap returns the per-PC fault atlas bound to this device.
func (s *System) FaultMap() *FaultMap { return s.fmap }

// Plan answers the three-factor trade-off: the lowest voltage (and its
// usable PC set and power saving) for an application that tolerates the
// given cell fault rate and needs at least minPCs pseudo channels.
func (s *System) Plan(tolerableRate float64, minPCs int) (Plan, error) {
	return s.fmap.Plan(tolerableRate, minPCs)
}

// UsablePCs counts pseudo channels meeting a tolerable fault rate at a
// voltage (the Fig. 6 quantity).
func (s *System) UsablePCs(volts, tolerableRate float64) int {
	return s.fmap.UsablePCs(volts, tolerableRate)
}

// Guardband locates the safe region analytically.
func (s *System) Guardband() (Guardband, error) {
	return core.FindGuardband(s.atlas)
}

// MeasureGuardband locates the safe region empirically through traffic
// (slower; exercises the full Algorithm 1 path).
func (s *System) MeasureGuardband(wordsPerPort uint64, grid []float64) (Guardband, error) {
	return core.MeasureGuardband(s.Board, wordsPerPort, grid)
}

// RunReliability executes Algorithm 1 with this system's board. When
// the config (or the system's SweepWorkers default) asks for more than
// one worker, the voltage grid is sharded across a fleet of board
// clones; results are bit-identical to the sequential sweep.
func (s *System) RunReliability(cfg ReliabilityConfig) (*ReliabilityResult, error) {
	return s.RunReliabilitySweep(context.Background(), cfg)
}

// RunReliabilitySweep is RunReliability with context cancellation: a
// cancelled ctx stops the sweep between voltage points.
func (s *System) RunReliabilitySweep(ctx context.Context, cfg ReliabilityConfig) (*ReliabilityResult, error) {
	cfg.Board = s.Board
	if cfg.Workers == 0 {
		cfg.Workers = s.sweepWorkers
	}
	return core.RunReliabilitySweep(ctx, cfg)
}

// RunPowerSweep executes the Fig. 2/3 measurement with this system's
// board.
func (s *System) RunPowerSweep(cfg PowerSweepConfig) (*PowerSweepResult, error) {
	return s.RunPowerSweepCtx(context.Background(), cfg)
}

// RunPowerSweepCtx is RunPowerSweep with context cancellation: a
// cancelled ctx stops the sweep between measurement points.
func (s *System) RunPowerSweepCtx(ctx context.Context, cfg PowerSweepConfig) (*PowerSweepResult, error) {
	cfg.Board = s.Board
	return core.RunPowerSweepCtx(ctx, cfg)
}

// RunECCStudy evaluates SEC-DED mitigation on this device (full
// capacity).
func (s *System) RunECCStudy() (*ECCStudy, error) {
	return core.RunECCStudy(s.atlas, nil)
}

// PaperGrid returns the paper's 1.20 V → 0.81 V sweep grid.
func PaperGrid() []float64 { return faults.PaperGrid() }

// DisplayGrid returns the paper's figure display grid (50 mV steps).
func DisplayGrid() []float64 { return faults.DisplayGrid() }
