package core

import (
	"math"
	"testing"

	"hbmvolt/internal/board"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

func testBoard(t testing.TB, cfg board.Config) *board.Board {
	t.Helper()
	b, err := board.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fullModel(t testing.TB) *faults.Model {
	t.Helper()
	m, err := faults.New(faults.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// --- Algorithm 1 -----------------------------------------------------

func TestRunReliabilityGuardbandClean(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	res, err := RunReliability(ReliabilityConfig{
		Board:     b,
		Grid:      faults.VoltageGrid(1.20, 0.98),
		BatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		if pt.MeanFlips != 0 {
			t.Fatalf("flips at %vV inside guardband", pt.Volts)
		}
		if pt.Crashed {
			t.Fatalf("crash at %vV", pt.Volts)
		}
	}
}

func TestRunReliabilityMatchesAnalytic(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 64, Seed: 3})
	const port = 18 // sensitive PC18
	v := 0.89
	res, err := RunReliability(ReliabilityConfig{
		Board:     b,
		Ports:     []hbm.PortID{port},
		Patterns:  []pattern.Pattern{pattern.AllOnes()},
		Grid:      []float64{v},
		BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Point(v)
	if pt == nil {
		t.Fatal("missing point")
	}
	want := b.Faults.ExpectedFaults(1, 2, v, faults.OneToZero, 0, b.Org.WordsPerPC)
	sd := math.Sqrt(math.Max(want, 1))
	if math.Abs(pt.MeanFlips-want) > 6*sd {
		t.Fatalf("mean flips %v, want %v ± %v", pt.MeanFlips, want, 6*sd)
	}
	if pt.Flips01 != 0 {
		t.Fatal("0→1 flips under all-1s")
	}
}

func TestRunReliabilityBatchVariance(t *testing.T) {
	// Metastable cells make batch runs differ; the summary must show it.
	b := testBoard(t, board.Config{Scale: 64, Seed: 9})
	res, err := RunReliability(ReliabilityConfig{
		Board:     b,
		Ports:     []hbm.PortID{5},
		Patterns:  []pattern.Pattern{pattern.AllOnes()},
		Grid:      []float64{0.88},
		BatchSize: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := res.Points[0].Observations[0]
	if obs.Batch.N != 6 {
		t.Fatalf("batch N = %d", obs.Batch.N)
	}
	if obs.Batch.Stddev == 0 {
		t.Fatal("no batch-to-batch variation; metastability jitter missing")
	}
	if obs.Batch.CILow > obs.MeanFlips || obs.Batch.CIHigh < obs.MeanFlips {
		t.Fatal("CI does not bracket the mean")
	}
}

func TestRunReliabilityCrashRecovery(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	res, err := RunReliability(ReliabilityConfig{
		Board:        b,
		Ports:        []hbm.PortID{0},
		Grid:         []float64{0.82, 0.80, 0.82}, // dips below V_critical
		WordsPerPort: 512,
		BatchSize:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Crashed {
		t.Fatal("crashed at 0.82V")
	}
	if !res.Points[1].Crashed {
		t.Fatal("no crash recorded at 0.80V")
	}
	// After the power cycle the next point must be measurable again.
	if res.Points[2].Crashed {
		t.Fatal("board did not recover after power cycle")
	}
	if b.Crashed() {
		t.Fatal("board left crashed")
	}
}

func TestRunReliabilityConfigValidation(t *testing.T) {
	if _, err := RunReliability(ReliabilityConfig{}); err == nil {
		t.Fatal("nil board accepted")
	}
	b := testBoard(t, board.Config{Scale: 1024})
	if _, err := RunReliability(ReliabilityConfig{
		Board:        b,
		WordsPerPort: b.Org.WordsPerPC + 1,
	}); err == nil {
		t.Fatal("oversized window accepted")
	}
}

// --- Power sweep (Fig. 2 / Fig. 3) -----------------------------------

func TestPowerSweepAnchors(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	res, err := RunPowerSweep(PowerSweepConfig{Board: b, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2 normalization: (V_nom, 100%) is 1.0.
	ref := res.At(1.20, 32)
	if ref == nil || math.Abs(ref.NormPower-1) > 0.01 {
		t.Fatalf("reference point: %+v", ref)
	}
	// Idle at nominal is ~1/3 (§III-A2).
	idle := res.At(1.20, 0)
	if idle == nil || math.Abs(idle.NormPower-1.0/3.0) > 0.01 {
		t.Fatalf("idle norm power: %+v", idle)
	}
	// 1.5x at the guardband edge, for every bandwidth.
	for _, ports := range []int{0, 8, 16, 24, 32} {
		s, err := res.SavingsAt(0.98, ports)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-1.5) > 0.03 {
			t.Fatalf("savings at 0.98V/%d ports = %v, want ≈1.5", ports, s)
		}
	}
	// 2.3x at 0.85 V.
	s, err := res.SavingsAt(0.85, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2.3) > 0.1 {
		t.Fatalf("savings at 0.85V = %v, want ≈2.3", s)
	}
}

func TestPowerSweepSavingsIndependentOfBandwidth(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	res, err := RunPowerSweep(PowerSweepConfig{
		Board:      b,
		Grid:       []float64{1.10, 1.00, 0.90},
		PortCounts: []int{0, 16, 32},
		Samples:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1.10, 1.00, 0.90} {
		ref, err := res.SavingsAt(v, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, ports := range []int{0, 16} {
			s, err := res.SavingsAt(v, ports)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(s-ref) > 0.02*ref {
				t.Fatalf("savings at %vV: %v (ports %d) vs %v (32)", v, s, ports, ref)
			}
		}
	}
}

func TestPowerSweepAlphaCLF(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	res, err := RunPowerSweep(PowerSweepConfig{
		Board:      b,
		Grid:       []float64{1.20, 1.00, 0.98, 0.85},
		PortCounts: []int{32},
		Samples:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3: within a few percent of 1.0 above the guardband edge...
	for _, v := range []float64{1.00, 0.98} {
		pt := res.At(v, 32)
		if pt == nil || math.Abs(pt.NormAlphaCLF-1) > 0.03 {
			t.Fatalf("alphaCLF at %vV: %+v", v, pt)
		}
	}
	// ...and ~14% below it at 0.85 V.
	pt := res.At(0.85, 32)
	if pt == nil || math.Abs(pt.NormAlphaCLF-0.86) > 0.02 {
		t.Fatalf("alphaCLF at 0.85V: %+v", pt)
	}
}

func TestPowerSweepSkipsCrashRegion(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	res, err := RunPowerSweep(PowerSweepConfig{
		Board:      b,
		Grid:       []float64{0.82, 0.80},
		PortCounts: []int{32},
		Samples:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0.80, 32) != nil {
		t.Fatal("measured power below V_critical")
	}
	if res.At(0.82, 32) == nil {
		t.Fatal("missing 0.82V point")
	}
	if b.Crashed() {
		t.Fatal("power sweep crashed the board")
	}
}

// --- Fault map & planner (Fig. 6 / §III-C) ----------------------------

func TestFaultMapFig6Anchors(t *testing.T) {
	fm := fullModel(t)
	m, err := NewFaultMap(fm, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.UsablePCs(0.95, 0); got != 7 {
		t.Fatalf("fault-free PCs at 0.95V = %d, want 7", got)
	}
	if got := m.UsablePCs(0.90, 1e-6); got != 16 {
		t.Fatalf("0.0001%%-tolerant PCs at 0.90V = %d, want 16", got)
	}
	series := m.UsableSeries(nil)
	if len(series) != len(Fig6Tolerances) {
		t.Fatalf("series count = %d", len(series))
	}
	// Each curve is non-increasing as voltage descends and bounded by 32.
	for ti, row := range series {
		prev := 33
		for i, n := range row {
			if n < 0 || n > 32 {
				t.Fatalf("count %d out of range", n)
			}
			if n > prev {
				t.Fatalf("tolerance %v: usable count rises at grid[%d]", Fig6Tolerances[ti], i)
			}
			prev = n
		}
	}
}

func TestPlannerPaperScenarios(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1})
	m, err := NewFaultMap(b.Faults, b.Power, nil)
	if err != nil {
		t.Fatal(err)
	}
	// §III-C: zero-tolerance app accepting 7 PCs reaches 0.95 V (~1.6x).
	p, err := m.Plan(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Volts != 0.95 {
		t.Fatalf("zero-tolerance plan voltage = %v, want 0.95", p.Volts)
	}
	if len(p.PCs) != 7 {
		t.Fatalf("plan PCs = %d", len(p.PCs))
	}
	if math.Abs(p.Savings-1.6) > 0.05 {
		t.Fatalf("plan savings = %v, want ≈1.6", p.Savings)
	}
	if p.CapacityBytes != 7*256<<20 {
		t.Fatalf("capacity = %d", p.CapacityBytes)
	}
	// §III-C: 0.0001% tolerance + half capacity reaches 0.90 V (~1.8x).
	p, err = m.Plan(1e-6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Volts != 0.90 {
		t.Fatalf("tolerant plan voltage = %v, want 0.90", p.Volts)
	}
	if math.Abs(p.Savings-1.8) > 0.05 {
		t.Fatalf("plan savings = %v, want ≈1.8", p.Savings)
	}
	if p.WorstRate > 1e-6 {
		t.Fatalf("worst rate %v exceeds tolerance", p.WorstRate)
	}
	// Full capacity with zero tolerance pins the plan to the guardband.
	p, err = m.Plan(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.Volts != faults.VMin {
		t.Fatalf("full-capacity plan voltage = %v, want VMin", p.Volts)
	}
}

func TestPlannerValidation(t *testing.T) {
	m, err := NewFaultMap(fullModel(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Plan(0, 0); err == nil {
		t.Fatal("minPCs 0 accepted")
	}
	if _, err := m.Plan(-1, 4); err == nil {
		t.Fatal("negative tolerance accepted")
	}
	if _, err := m.Plan(0, 33); err == nil {
		t.Fatal("minPCs 33 accepted")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Volts: 0.9, PCs: []int{1, 2}, CapacityBytes: 512 << 20, Savings: 1.8, WorstRate: 1e-7}
	s := p.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("Plan.String = %q", s)
	}
}

// --- Guardband ---------------------------------------------------------

func TestFindGuardbandAnalytic(t *testing.T) {
	g, err := FindGuardband(fullModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.VMin != faults.VMin {
		t.Fatalf("VMin = %v, want %v", g.VMin, faults.VMin)
	}
	// (1.20-0.98)/1.20 = 18.3%; the paper rounds to 19%.
	if math.Abs(g.Fraction-0.1833) > 0.002 {
		t.Fatalf("guardband fraction = %v", g.Fraction)
	}
	if math.Abs(g.SafeSavings-1.4994) > 0.001 {
		t.Fatalf("safe savings = %v", g.SafeSavings)
	}
	if g.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMeasureGuardbandMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	b := testBoard(t, board.Config{Scale: 64, Seed: 1})
	g, err := MeasureGuardband(b, 0, faults.VoltageGrid(1.00, 0.95))
	if err != nil {
		t.Fatal(err)
	}
	if g.VMin != faults.VMin {
		t.Fatalf("measured VMin = %v, want %v", g.VMin, faults.VMin)
	}
}

// --- Fig. 4 / Fig. 5 ----------------------------------------------------

func TestFig4Curves(t *testing.T) {
	fm := fullModel(t)
	curves, err := Fig4Curves(fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Fractions) != len(c.Grid) {
			t.Fatal("length mismatch")
		}
		prev := -1.0
		for i, f := range c.Fractions {
			if f < prev-1e-15 {
				t.Fatalf("stack %d fraction decreases at %vV", c.Stack, c.Grid[i])
			}
			prev = f
			if c.Grid[i] >= faults.VMin && f != 0 {
				t.Fatalf("stack %d faulty at %vV", c.Stack, c.Grid[i])
			}
			if c.Grid[i] <= faults.VAllFaulty && f < 0.995 {
				t.Fatalf("stack %d only %v faulty at %vV", c.Stack, f, c.Grid[i])
			}
		}
	}
	// HBM1 above HBM0 through the weak-dominated region.
	g := curves[0].Grid
	for i, v := range g {
		if v <= 0.96 && v >= 0.86 {
			if curves[1].Fractions[i] <= curves[0].Fractions[i] {
				t.Fatalf("HBM1 not above HBM0 at %vV", v)
			}
		}
	}
}

func TestFig5Table(t *testing.T) {
	fm := fullModel(t)
	tbl, err := BuildFig5Table(fm, nil, faults.AnyFlip)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != len(tbl.Grid) {
		t.Fatal("row count mismatch")
	}
	// Robust PC1 shows NF at the top of the unsafe region.
	top := tbl.Cells[0]
	if !top[1].NF {
		t.Fatalf("PC1 at %vV: %+v, want NF", tbl.Grid[0], top[1])
	}
	// Sensitive PC5 must not be NF at the top (it has expected faults).
	if top[5].NF {
		t.Fatal("PC5 NF at 0.97V")
	}
	// At 0.84 V everything reads ~100%.
	bottom := tbl.Cells[len(tbl.Cells)-1]
	for g, c := range bottom {
		if c.Percent < 99 {
			t.Fatalf("PC%d only %v%% at 0.84V", g, c.Percent)
		}
	}
	// Display semantics.
	if (Fig5Cell{NF: true}).Display() != "NF" {
		t.Fatal("NF display")
	}
	if (Fig5Cell{Percent: 0.4}).Display() != "0" {
		t.Fatal("sub-1% display")
	}
	if (Fig5Cell{Percent: 42.4}).Display() != "42" {
		t.Fatal("percent display")
	}
	if (Fig5Cell{Percent: 100}).Display() != "100" {
		t.Fatal("full display")
	}
}

func TestSensitiveSeparation(t *testing.T) {
	fm := fullModel(t)
	if sep := SensitiveSeparation(fm, 0.90); sep < 10 {
		t.Fatalf("sensitive separation = %v, want >= 10x", sep)
	}
	if sep := SensitiveSeparation(fm, 1.0); sep != 0 {
		t.Fatalf("separation defined with no faults: %v", sep)
	}
}

// --- ECC mitigation study ----------------------------------------------

func TestECCStudyExtendsSafeRegion(t *testing.T) {
	fm := fullModel(t)
	study, err := RunECCStudy(fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if study.VMinRaw != faults.VMin {
		t.Fatalf("raw VMin = %v, want %v", study.VMinRaw, faults.VMin)
	}
	if study.VMinECC >= study.VMinRaw {
		t.Fatalf("ECC did not extend the safe region: %v vs %v", study.VMinECC, study.VMinRaw)
	}
	if study.VMinECC < 0.90 {
		t.Fatalf("ECC VMin %v implausibly low for SEC-DED", study.VMinECC)
	}
	if study.ExtraSafeSavings <= 1.5 {
		t.Fatalf("extra safe savings = %v, want > 1.5 (the raw guardband)", study.ExtraSafeSavings)
	}
}

func TestECCStudyPointConsistency(t *testing.T) {
	fm := fullModel(t)
	study, err := RunECCStudy(fm, faults.VoltageGrid(0.98, 0.90))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range study.Points {
		if pt.ExpectedUncorrectable < 0 || pt.ExpectedCorrectable < 0 {
			t.Fatalf("negative expectations at %vV", pt.Volts)
		}
		if pt.ExpectedRawFaults == 0 && pt.ExpectedUncorrectable != 0 {
			t.Fatalf("uncorrectable faults without raw faults at %vV", pt.Volts)
		}
		// In the sparse-fault regime nearly everything is correctable.
		if pt.Volts >= 0.95 && pt.ExpectedRawFaults > 0 {
			if pt.ExpectedUncorrectable > pt.ExpectedCorrectable {
				t.Fatalf("uncorrectable dominates at %vV", pt.Volts)
			}
		}
	}
}

func TestECCStudyValidation(t *testing.T) {
	if _, err := RunECCStudy(nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

// --- Temperature study ---------------------------------------------------

func TestTempStudyReferencePointMatchesPaper(t *testing.T) {
	study, err := RunTempStudy(faults.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ref *TempPoint
	for i := range study.Points {
		if study.Points[i].TempC == 35 {
			ref = &study.Points[i]
		}
	}
	if ref == nil {
		t.Fatal("35°C point missing")
	}
	if ref.VMin != faults.VMin {
		t.Fatalf("VMin at 35°C = %v, want %v", ref.VMin, faults.VMin)
	}
}

func TestTempStudyGuardbandShrinksWithHeat(t *testing.T) {
	study, err := RunTempStudy(faults.DefaultConfig(), []float64{25, 35, 45, 55})
	if err != nil {
		t.Fatal(err)
	}
	// VMin must be non-decreasing with temperature (hotter = less
	// guardband), and fault rates at 0.90V must grow.
	for i := 1; i < len(study.Points); i++ {
		prev, cur := study.Points[i-1], study.Points[i]
		if cur.VMin < prev.VMin {
			t.Fatalf("VMin fell with heat: %v@%v°C vs %v@%v°C",
				prev.VMin, prev.TempC, cur.VMin, cur.TempC)
		}
		if cur.RateAt090 <= prev.RateAt090 {
			t.Fatalf("rate at 0.90V did not grow with heat")
		}
	}
	cold, hot := study.Points[0], study.Points[len(study.Points)-1]
	if cold.VMin >= hot.VMin {
		t.Fatalf("no guardband erosion across 25→55°C: %v vs %v", cold.VMin, hot.VMin)
	}
}

func TestTempStudyValidation(t *testing.T) {
	if _, err := RunTempStudy(faults.DefaultConfig(), []float64{}); err == nil {
		t.Fatal("empty temperature list accepted")
	}
}

// --- Capacity study -------------------------------------------------------

func TestCapacityStudyRowGranularRecovers(t *testing.T) {
	fm := fullModel(t)
	study, err := RunCapacityStudy(fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the guardband, both views see the full device.
	top := study.At(1.20)
	if top.PCGranularBytes != study.TotalBytes || top.RowGranularBytes != study.TotalBytes {
		t.Fatalf("guardband capacity wrong: %+v", top)
	}
	// At 0.92V, PC-granular allocation keeps nothing fault-free while
	// row-granular placement recovers the bulk of the device (faults
	// cluster in ~8% of rows).
	mid := study.At(0.92)
	if mid.PCGranularBytes != 0 {
		t.Fatalf("expected zero fault-free PCs at 0.92V, got %v bytes", mid.PCGranularBytes)
	}
	if frac := mid.RowGranularBytes / study.TotalBytes; frac < 0.85 {
		t.Fatalf("row-granular recovery at 0.92V = %.2f of device, want >= 0.85", frac)
	}
	// At 0.84V everything is gone either way.
	bottom := study.At(0.84)
	if bottom.RowGranularBytes > 0.01*study.TotalBytes {
		t.Fatalf("capacity survives total collapse: %+v", bottom)
	}
	// Row-granular capacity dominates PC-granular at every voltage.
	for _, pt := range study.Points {
		if pt.RowGranularBytes+1 < pt.PCGranularBytes {
			t.Fatalf("row view below PC view at %vV", pt.Volts)
		}
	}
}

func TestCapacityStudyValidation(t *testing.T) {
	if _, err := RunCapacityStudy(nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestRunReliabilityParallelMatchesSequential(t *testing.T) {
	run := func(parallel bool) *ReliabilityResult {
		b := testBoard(t, board.Config{Scale: 256, Seed: 4})
		res, err := RunReliability(ReliabilityConfig{
			Board:     b,
			Grid:      []float64{0.90},
			BatchSize: 3,
			Parallel:  parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	sp, pp := seq.Points[0], par.Points[0]
	if sp.MeanFlips != pp.MeanFlips || sp.Flips10 != pp.Flips10 || sp.Flips01 != pp.Flips01 {
		t.Fatalf("parallel execution changed results: %+v vs %+v", sp, pp)
	}
	if len(sp.Observations) != len(pp.Observations) {
		t.Fatal("observation counts differ")
	}
	for i := range sp.Observations {
		if sp.Observations[i].MeanFlips != pp.Observations[i].MeanFlips {
			t.Fatalf("port %d differs", sp.Observations[i].Port)
		}
	}
}

// TestMeasuredUnsafeRegionShape drives Algorithm 1 through the full
// board stack across the unsafe region and checks the shapes the paper
// reports — exponential growth and per-PC variability — from measured
// counts rather than analytics.
func TestMeasuredUnsafeRegionShape(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 256, Seed: 2})
	ports := []hbm.PortID{1, 5, 13, 18, 25} // robust, sensitive, good, sensitive, robust
	res, err := RunReliability(ReliabilityConfig{
		Board:     b,
		Ports:     ports,
		Grid:      []float64{0.93, 0.90, 0.87},
		BatchSize: 2,
		Parallel:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fault counts grow steeply as voltage drops.
	prev := -1.0
	for _, pt := range res.Points {
		if pt.MeanFlips <= prev {
			t.Fatalf("no growth at %vV: %v after %v", pt.Volts, pt.MeanFlips, prev)
		}
		prev = pt.MeanFlips
	}
	// At 0.87V the sensitive ports dominate the robust ones.
	var sens, robust float64
	for _, obs := range res.Point(0.87).Observations {
		switch obs.Port {
		case 5, 18:
			sens += obs.MeanFlips
		case 1, 25:
			robust += obs.MeanFlips
		}
	}
	if sens < 100*(robust+1) {
		t.Fatalf("sensitive ports (%v flips) not far above robust (%v)", sens, robust)
	}
	// Both polarities appear under their respective patterns.
	if res.Point(0.87).Flips10 == 0 || res.Point(0.87).Flips01 == 0 {
		t.Fatal("missing a flip polarity at 0.87V")
	}
}
