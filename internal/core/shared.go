package core

// Shared-enumeration evaluation of Algorithm 1 voltage points.
//
// The legacy path pays one full fault enumeration per (pattern, port,
// rep): each pattern's fill/check walks the device and re-draws (or
// re-scans) the same stuck cells, even though a cell's stuck state is a
// property of the silicon that no written pattern can change. The
// shared path computes the pattern-agnostic stuck-cell enumeration of
// each (port, rep) once — memoized process-wide under its
// (fingerprint × voltage) sub-key, see faults.SharedEnumeration — and
// derives every pattern's flip statistics from it with an
// allocation-free mask pass. A voltage point with P patterns costs one
// physics evaluation instead of P; across a campaign, repeated
// (fingerprint × voltage) sub-keys cost nothing at all.

import (
	"context"
	"fmt"

	"hbmvolt/internal/board"
	"hbmvolt/internal/pattern"
	"hbmvolt/internal/stats"
)

// sharedVoltagePoint finishes one non-crashed voltage point in
// shared-enumeration mode: pt carries the programmed grid voltage. The
// enumerations are drawn at the regulator's effective output voltage —
// the PMBus-quantized rail the stacks actually see, exactly what the
// legacy device samplers key their draws on — so on the bit-exact
// sampler the shared path reproduces the legacy sweep bit for bit.
// Like the legacy path, the outcome is a pure function of (voltage,
// pattern set, port set, batch size) and the board's seeded
// configuration, so sharded sweeps stay bit-identical at any worker
// count.
func sharedVoltagePoint(ctx context.Context, b *board.Board, cfg *ReliabilityConfig, pt VoltagePoint) (VoltagePoint, error) {
	fm := b.Faults
	vEff := b.Regulator.Vout()
	words := cfg.WordsPerPort
	batch := cfg.BatchSize

	// accs is indexed [pattern][port]; runs in rep order, mirroring the
	// legacy accumulation order so exact-mode results match bit for bit.
	accs := make([][]portAcc, len(cfg.Patterns))
	for pi := range accs {
		accs[pi] = make([]portAcc, len(cfg.Ports))
		for i := range accs[pi] {
			accs[pi][i].runs = make([]float64, 0, batch)
		}
	}

	for rep := 0; rep < batch; rep++ {
		for i, port := range cfg.Ports {
			stack, pc := port.StackPC(b.Org)
			// One physics evaluation per (port, rep); every pattern below
			// derives from it.
			e := fm.SharedEnumerationCtx(ctx, stack, pc, vEff, uint64(rep), words)
			for pi, pat := range cfg.Patterns {
				f, fw, ok := e.PatternFlips(pat)
				if !ok {
					return VoltagePoint{}, fmt.Errorf(
						"core: shared enumeration at %vV: pattern %s has no closed-form ones density",
						pt.Volts, pat.Name())
				}
				a := &accs[pi][i]
				a.flips += float64(f.Total())
				a.faulty += float64(fw)
				a.runs = append(a.runs, float64(f.Total()))
			}
		}
	}

	// Emit observations in the legacy order: patterns outer, ports inner.
	n := float64(batch)
	for pi, pat := range cfg.Patterns {
		for i, port := range cfg.Ports {
			a := &accs[pi][i]
			sum, err := stats.Summarize(a.runs, DefaultConfidence)
			if err != nil {
				return VoltagePoint{}, err
			}
			obs := PortObservation{
				Port:         port,
				Pattern:      pat.Name(),
				MeanFlips:    a.flips / n,
				MeanFaulty:   a.faulty / n,
				WordsPerRun:  words,
				BitFaultRate: a.flips / n / (float64(words) * pattern.WordBits),
				Batch:        sum,
			}
			pt.Observations = append(pt.Observations, obs)
			pt.MeanFlips += obs.MeanFlips
			pt.BitsChecked += float64(words) * pattern.WordBits
			switch pat.Name() {
			case "all1":
				pt.Flips10 += obs.MeanFlips
			case "all0":
				pt.Flips01 += obs.MeanFlips
			}
		}
	}
	return pt, nil
}
