// Safealloc demonstrates a fault-map-aware memory allocator: instead of
// discarding whole pseudo channels that show any fault (the paper's
// Fig. 6 granularity), it consults the weak-cluster map and hands out
// only rows outside the clusters. Because undervolting faults
// concentrate in ~8% of rows (§III-B), this recovers almost the whole
// device in the unsafe region — the capacity side of the three-factor
// trade-off at its practical best.
package main

import (
	"fmt"
	"log"

	"hbmvolt"
	"hbmvolt/internal/pattern"
)

// safeAllocator hands out word ranges of one pseudo channel that avoid
// the weak clusters entirely.
type safeAllocator struct {
	sys         *hbmvolt.System
	port        hbmvolt.PortID
	wordsPerRow uint64
	// safe holds [lo, hi) word ranges outside every weak cluster.
	safe [][2]uint64
	// next allocation cursor: index into safe and offset within it.
	idx int
	off uint64
}

func newSafeAllocator(sys *hbmvolt.System, port hbmvolt.PortID) *safeAllocator {
	fm := sys.Board.Faults
	org := sys.Board.Org
	stack, pc := port.StackPC(org)
	a := &safeAllocator{sys: sys, port: port, wordsPerRow: org.WordsPerRow}

	// Complement of the cluster row ranges, converted to word ranges.
	rows := org.RowsPerPC()
	cursor := uint64(0)
	for _, r := range fm.ClusterRanges(stack, pc) {
		if r[0] > cursor {
			a.safe = append(a.safe, [2]uint64{cursor * org.WordsPerRow, r[0] * org.WordsPerRow})
		}
		cursor = r[1]
	}
	if cursor < rows {
		a.safe = append(a.safe, [2]uint64{cursor * org.WordsPerRow, rows * org.WordsPerRow})
	}
	return a
}

// capacityWords returns the total safe capacity.
func (a *safeAllocator) capacityWords() uint64 {
	var n uint64
	for _, r := range a.safe {
		n += r[1] - r[0]
	}
	return n
}

// alloc returns the next n safe word addresses (nil when exhausted).
func (a *safeAllocator) alloc(n uint64) []uint64 {
	out := make([]uint64, 0, n)
	for uint64(len(out)) < n && a.idx < len(a.safe) {
		r := a.safe[a.idx]
		addr := r[0] + a.off
		if addr >= r[1] {
			a.idx++
			a.off = 0
			continue
		}
		out = append(out, addr)
		a.off++
	}
	if uint64(len(out)) < n {
		return nil
	}
	return out
}

func main() {
	sys, err := hbmvolt.New(hbmvolt.Config{Scale: 64})
	if err != nil {
		log.Fatal(err)
	}
	const port = hbmvolt.PortID(5) // sensitive PC5: worst case for naive use

	alloc := newSafeAllocator(sys, port)
	org := sys.Board.Org
	fmt.Printf("PC%d: %d of %d words are outside weak clusters (%.1f%%)\n",
		port, alloc.capacityWords(), org.WordsPerPC,
		100*float64(alloc.capacityWords())/float64(org.WordsPerPC))

	// Compare two placements of the same dataset on the same (sensitive)
	// pseudo channel: strided across the whole PC (clusters included)
	// versus through the cluster-avoiding allocator. Each placement is
	// written at nominal voltage and read back undervolted, one at a
	// time, so the measurements cannot disturb each other.
	const words = 1 << 14
	data := pattern.Random(99)
	p := sys.Board.Ports[port]

	naive := make([]uint64, words)
	for i := range naive {
		naive[i] = uint64(i) * (org.WordsPerPC / words)
	}
	safe := alloc.alloc(words)
	if safe == nil {
		log.Fatal("safe capacity exhausted")
	}

	measure := func(addrs []uint64, v float64) int {
		if err := sys.SetVoltage(hbmvolt.VNom); err != nil {
			log.Fatal(err)
		}
		for i, addr := range addrs {
			if err := p.WriteWord(addr, data.Word(uint64(i))); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.SetVoltage(v); err != nil {
			log.Fatal(err)
		}
		flips := 0
		for i, addr := range addrs {
			w, err := p.ReadWord(addr)
			if err != nil {
				log.Fatal(err)
			}
			flips += pattern.Compare(data.Word(uint64(i)), w).Total()
		}
		return flips
	}

	fmt.Println("\nV      naive placement   cluster-avoiding placement")
	for _, v := range []float64{0.98, 0.94, 0.92, 0.90, 0.88} {
		fmt.Printf("%.2f   %6d flips      %6d flips\n", v, measure(naive, v), measure(safe, v))
	}
	fmt.Println("\nrows outside the weak clusters stay clean through the unsafe region,")
	fmt.Println("so a fault-map-aware allocator banks the power savings without ECC.")
}
