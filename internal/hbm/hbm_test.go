package hbm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hbmvolt/internal/faults"
	"hbmvolt/internal/pattern"
)

func TestDefaultOrganizationInvariants(t *testing.T) {
	o := DefaultOrganization
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.TotalPCs() != 32 {
		t.Fatalf("TotalPCs = %d, want 32", o.TotalPCs())
	}
	if o.PCsPerStack() != 16 {
		t.Fatalf("PCsPerStack = %d, want 16", o.PCsPerStack())
	}
	if o.BytesPerPC() != 256<<20 {
		t.Fatalf("BytesPerPC = %d, want 256 MiB", o.BytesPerPC())
	}
	if o.BytesPerStack() != 4<<30 {
		t.Fatalf("BytesPerStack = %d, want 4 GiB", o.BytesPerStack())
	}
	if o.TotalBytes() != 8<<30 {
		t.Fatalf("TotalBytes = %d, want 8 GiB", o.TotalBytes())
	}
	if o.Banks() != 16 {
		t.Fatalf("Banks = %d, want 16", o.Banks())
	}
}

func TestScaled(t *testing.T) {
	o, err := Scaled(1024)
	if err != nil {
		t.Fatal(err)
	}
	if o.WordsPerPC != 8<<10 {
		t.Fatalf("scaled WordsPerPC = %d", o.WordsPerPC)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Scaled(0); err == nil {
		t.Fatal("Scaled(0) accepted")
	}
	if _, err := Scaled(3); err == nil {
		t.Fatal("non-divisor scale accepted")
	}
	if _, err := Scaled(1 << 30); err == nil {
		t.Fatal("over-scale accepted")
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	bad := DefaultOrganization
	bad.WordsPerPC = 33
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted WordsPerPC not multiple of row")
	}
	bad = DefaultOrganization
	bad.Stacks = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero stacks")
	}
}

func TestDecodeEncodeBijective(t *testing.T) {
	o := DefaultOrganization
	f := func(raw uint32) bool {
		addr := uint64(raw) % o.WordsPerPC
		l := o.Decode(addr)
		if l.Column >= o.WordsPerRow || l.BankGroup >= o.BankGroups || l.Bank >= o.BanksPerGroup {
			return false
		}
		return o.Encode(l) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInterleavesBankGroups(t *testing.T) {
	o := DefaultOrganization
	// Consecutive words must rotate through bank groups (streaming-
	// friendly interleave, dodging tCCD_L).
	for addr := uint64(0); addr < 8; addr++ {
		got := o.Decode(addr).BankGroup
		if got != int(addr)%o.BankGroups {
			t.Fatalf("word %d in bank group %d, want %d", addr, got, addr%4)
		}
	}
}

func TestPortStackPC(t *testing.T) {
	o := DefaultOrganization
	cases := []struct {
		port      PortID
		stack, pc int
	}{
		{0, 0, 0}, {15, 0, 15}, {16, 1, 0}, {18, 1, 2}, {31, 1, 15},
	}
	for _, c := range cases {
		s, pc := c.port.StackPC(o)
		if s != c.stack || pc != c.pc {
			t.Fatalf("port %d -> (%d,%d), want (%d,%d)", c.port, s, pc, c.stack, c.pc)
		}
	}
}

func TestPagedMemoryFillAndSparsity(t *testing.T) {
	m := newPagedMemory(1 << 20)
	m.Fill(pattern.AllOnesWord)
	if m.Read(12345) != pattern.AllOnesWord {
		t.Fatal("fill not visible")
	}
	if m.AllocatedPages() != 0 {
		t.Fatal("fill allocated pages")
	}
	// Writing the fill value must stay free.
	m.Write(7, pattern.AllOnesWord)
	if m.AllocatedPages() != 0 {
		t.Fatal("writing fill value allocated a page")
	}
	// A deviating write materializes exactly one page.
	m.Write(7, pattern.AllZerosWord)
	if m.AllocatedPages() != 1 {
		t.Fatalf("pages = %d, want 1", m.AllocatedPages())
	}
	if m.Read(7) != pattern.AllZerosWord {
		t.Fatal("write lost")
	}
	if m.Read(8) != pattern.AllOnesWord {
		t.Fatal("neighbor corrupted")
	}
}

func TestPagedMemoryWriteReadProperty(t *testing.T) {
	m := newPagedMemory(1 << 16)
	f := func(addr uint16, w [4]uint64) bool {
		m.Write(uint64(addr), pattern.Word(w))
		return m.Read(uint64(addr)) == pattern.Word(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func scaledDevice(t testing.TB, scale uint64) (*Device, *faults.Model) {
	t.Helper()
	org, err := Scaled(scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.DefaultConfig()
	cfg.Geometry = faults.Geometry{WordsPerPC: org.WordsPerPC, WordsPerRow: org.WordsPerRow}
	fm, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(org, fm)
	if err != nil {
		t.Fatal(err)
	}
	return d, fm
}

func TestStackRoundTripAtNominal(t *testing.T) {
	d, _ := scaledDevice(t, 1024)
	s := d.Stacks[0]
	p := pattern.Random(3)
	for addr := uint64(0); addr < 512; addr++ {
		if err := s.WriteWord(2, addr, p.Word(addr)); err != nil {
			t.Fatal(err)
		}
	}
	for addr := uint64(0); addr < 512; addr++ {
		w, err := s.ReadWord(2, addr)
		if err != nil {
			t.Fatal(err)
		}
		if w != p.Word(addr) {
			t.Fatalf("round trip mismatch at %d", addr)
		}
	}
}

func TestStackGeometryMismatchRejected(t *testing.T) {
	org, _ := Scaled(1024)
	fm, err := faults.New(faults.DefaultConfig()) // full-size geometry
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStack(0, org, fm); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestStackBounds(t *testing.T) {
	d, _ := scaledDevice(t, 1024)
	s := d.Stacks[0]
	if err := s.WriteWord(0, s.org.WordsPerPC, pattern.AllOnesWord); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range write: %v", err)
	}
	if _, err := s.ReadWord(99, 0); err == nil {
		t.Fatal("bad PC accepted")
	}
}

func TestStackFaultsAppearBelowGuardband(t *testing.T) {
	d, _ := scaledDevice(t, 64) // 128K words/PC keeps expected counts visible
	s := d.Stacks[0]
	const pc = 4 // sensitive PC4
	if err := s.FillPC(pc, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}

	countFlips := func() int {
		n := 0
		for addr := uint64(0); addr < s.org.WordsPerPC; addr++ {
			w, err := s.ReadWord(pc, addr)
			if err != nil {
				t.Fatal(err)
			}
			n += pattern.Compare(pattern.AllOnesWord, w).Total()
		}
		return n
	}

	s.SetVoltage(faults.VMin)
	if n := countFlips(); n != 0 {
		t.Fatalf("%d flips at Vmin, want 0", n)
	}
	s.SetVoltage(0.89)
	low := countFlips()
	if low == 0 {
		t.Fatal("no flips at 0.89V on sensitive PC")
	}
	s.SetVoltage(0.87)
	lower := countFlips()
	if lower <= low {
		t.Fatalf("flips did not grow: %d at 0.89V vs %d at 0.87V", low, lower)
	}
	// Restoring the voltage heals the overlay (no crash occurred).
	s.SetVoltage(faults.VNom)
	if n := countFlips(); n != 0 {
		t.Fatalf("%d flips after restore, want 0", n)
	}
}

func TestStackFaultOverlayMatchesAnalytic(t *testing.T) {
	d, fm := scaledDevice(t, 64)
	s := d.Stacks[1]
	const pc = 2 // global PC18, sensitive
	if err := s.FillPC(pc, pattern.AllZerosWord); err != nil {
		t.Fatal(err)
	}
	v := 0.88
	s.SetVoltage(v)
	flips := 0
	for addr := uint64(0); addr < s.org.WordsPerPC; addr++ {
		w, err := s.ReadWord(pc, addr)
		if err != nil {
			t.Fatal(err)
		}
		flips += pattern.Compare(pattern.AllZerosWord, w).Total()
	}
	// All-0s exposes stuck-at-1 cells.
	want := fm.ExpectedFaults(1, pc, v, faults.ZeroToOne, 0, s.org.WordsPerPC)
	sd := math.Sqrt(math.Max(want, 1))
	if math.Abs(float64(flips)-want) > 5*sd {
		t.Fatalf("observed %d flips, want %v ± %v", flips, want, 5*sd)
	}
}

func TestStackCrashSemantics(t *testing.T) {
	d, _ := scaledDevice(t, 1024)
	s := d.Stacks[0]
	if err := s.WriteWord(0, 1, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}
	s.SetVoltage(0.80) // below V_critical
	if !s.Crashed() {
		t.Fatal("stack did not crash below V_critical")
	}
	if _, err := s.ReadWord(0, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed stack: %v", err)
	}
	if err := s.WriteWord(0, 1, pattern.AllOnesWord); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on crashed stack: %v", err)
	}
	// Paper: restoring the supply voltage does not re-enable operation.
	s.SetVoltage(faults.VNom)
	if !s.Crashed() {
		t.Fatal("crash cleared by voltage restore; paper requires power cycle")
	}
	// Power cycle recovers but loses contents.
	s.PowerCycle()
	if s.Crashed() {
		t.Fatal("still crashed after power cycle")
	}
	w, err := s.ReadWord(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != pattern.AllZerosWord {
		t.Fatal("contents survived power cycle; DRAM is volatile")
	}
}

func TestDeviceSetVoltageAffectsAllStacks(t *testing.T) {
	d, _ := scaledDevice(t, 1024)
	d.SetVoltage(0.95)
	for _, s := range d.Stacks {
		if s.Voltage() != 0.95 {
			t.Fatal("shared rail not applied")
		}
	}
	d.SetVoltage(0.79)
	if !d.Crashed() {
		t.Fatal("device did not crash")
	}
	d.PowerCycle()
	if d.Crashed() {
		t.Fatal("device still crashed after power cycle")
	}
}

func TestDevicePortResolution(t *testing.T) {
	d, _ := scaledDevice(t, 1024)
	s, pc, err := d.Port(18)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 1 || pc != 2 {
		t.Fatalf("port 18 -> stack %d pc %d", s.ID(), pc)
	}
	if _, _, err := d.Port(64); err == nil {
		t.Fatal("port 64 accepted")
	}
}

func TestCountersAdvance(t *testing.T) {
	d, _ := scaledDevice(t, 1024)
	s := d.Stacks[0]
	if err := s.WriteWord(0, 0, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadWord(0, 0); err != nil {
		t.Fatal(err)
	}
	r, w := s.Counters()
	if r != 1 || w != 1 {
		t.Fatalf("counters = (%d,%d), want (1,1)", r, w)
	}
}

func BenchmarkReadWordClean(b *testing.B) {
	org, _ := Scaled(64)
	cfg := faults.DefaultConfig()
	cfg.Geometry = faults.Geometry{WordsPerPC: org.WordsPerPC, WordsPerRow: org.WordsPerRow}
	fm := faults.MustNew(cfg)
	s, err := NewStack(0, org, fm)
	if err != nil {
		b.Fatal(err)
	}
	s.SetVoltage(0.95)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadWord(1, uint64(i)%org.WordsPerPC); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConcurrentPortAccess(t *testing.T) {
	// All 16 PCs of a stack hammered concurrently: no races, no cross
	// contamination. Run under -race in CI.
	d, _ := scaledDevice(t, 1024)
	s := d.Stacks[0]
	s.SetVoltage(0.90)
	done := make(chan error, 16)
	for pc := 0; pc < 16; pc++ {
		go func(pc int) {
			p := pattern.Random(uint64(pc))
			for addr := uint64(0); addr < 512; addr++ {
				if err := s.WriteWord(pc, addr, p.Word(addr)); err != nil {
					done <- err
					return
				}
			}
			for addr := uint64(0); addr < 512; addr++ {
				w, err := s.ReadWord(pc, addr)
				if err != nil {
					done <- err
					return
				}
				// At 0.90V robust PCs may still fault; only verify that
				// any mismatch is explainable as stuck bits, i.e. the
				// word differs in at most a few bits.
				if pattern.Compare(p.Word(addr), w).Total() > 16 {
					done <- errors.New("implausible corruption under concurrency")
					return
				}
			}
			done <- nil
		}(pc)
	}
	for pc := 0; pc < 16; pc++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentVoltageChangeSafe(t *testing.T) {
	d, _ := scaledDevice(t, 1024)
	s := d.Stacks[0]
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.SetVoltage(0.85 + float64(i%10)*0.01)
			}
		}
	}()
	for addr := uint64(0); addr < 2000; addr++ {
		if _, err := s.ReadWord(3, addr%64); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
}
