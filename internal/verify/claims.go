package verify

import (
	"math"

	"hbmvolt/internal/core"
	"hbmvolt/internal/faults"
)

// Claim binds one quantitative assertion of the source paper to an
// extractor over campaign evidence and a tolerance band. The textual
// fields feed the generated FINDINGS.md (Snippet-style experiment
// ledger); docs/CLAIMS.md documents each claim's citation, extraction
// method and band rationale, keyed by ID.
type Claim struct {
	// ID is the stable registry key (kebab-case); docs/CLAIMS.md entries
	// and verdicts.json reference it.
	ID string
	// Title is the human headline.
	Title string
	// Citation names the paper figure/section the claim re-derives.
	Citation string
	// Hypothesis is the falsifiable statement under test.
	Hypothesis string
	// Dimension is the single varied dimension (ED-1).
	Dimension string
	// Control describes the directional control or cross-check (ED-2).
	Control string
	// Preconditions lists the evidence the extractor requires (ED-3).
	Preconditions string
	// Eval extracts the claim's checks from evidence. Unusable evidence
	// returns a *EvalError (never a panic).
	Eval func(*Evidence) ([]Check, error)
}

// Registry returns every registered claim, in ledger order. The order
// is part of the verdicts.json contract (golden-pinned).
func Registry() []Claim {
	return []Claim{
		claimPowerSavings(),
		claimAlphaCLF(),
		claimGuardbandVmin(),
		claimFaultOnsetMonotonic(),
		claimFaultGrowthRate(),
		claimPolarityAsymmetry(),
		claimFig4CurveFidelity(),
		claimUsablePCTradeoff(),
		claimECCRegionWidening(),
	}
}

// RegisteredIDs returns the claim IDs in registry order.
func RegisteredIDs() []string {
	var ids []string
	for _, c := range Registry() {
		ids = append(ids, c.ID)
	}
	return ids
}

func needReliability(ev *Evidence) (*core.ReliabilityResult, error) {
	if ev == nil || ev.Reliability == nil || len(ev.Reliability.Points) == 0 {
		return nil, evalErrf("no reliability evidence (need an Algorithm 1 sweep in the campaign)")
	}
	return ev.Reliability, nil
}

func needPower(ev *Evidence) (*core.PowerSweepResult, error) {
	if ev == nil || ev.Power == nil || len(ev.Power.Points) == 0 {
		return nil, evalErrf("no power evidence (need a power sweep in the campaign)")
	}
	return ev.Power, nil
}

func needFaultMap(ev *Evidence) (*core.FaultMapStudy, error) {
	if ev == nil || ev.FaultMap == nil || len(ev.FaultMap.Grid) == 0 {
		return nil, evalErrf("no faultmap evidence (need a faultmap study in the campaign)")
	}
	return ev.FaultMap, nil
}

func needECC(ev *Evidence) (*core.ECCStudy, error) {
	if ev == nil || ev.ECC == nil || len(ev.ECC.Points) == 0 {
		return nil, evalErrf("no ECC evidence (need an ecc-study in the campaign)")
	}
	return ev.ECC, nil
}

// sameV matches grid voltages within half a 10 mV step.
func sameV(a, b float64) bool { return math.Abs(a-b) < faults.VStep/2 }

// vDeep is the deep-undervolt comparison point the power claims read:
// the lowest display-grid voltage above the bulk collapse, where the
// paper quotes its 2.3x saving.
const vDeep = 0.85

func claimPowerSavings() Claim {
	return Claim{
		ID:       "power-savings-deep-undervolt",
		Title:    "Deep undervolting saves ~2.3x total HBM power at full bandwidth",
		Citation: "Fig. 3 / §III-A",
		Hypothesis: "Dropping the HBM supply from V_nom (1.20 V) to 0.85 V at 100% bandwidth " +
			"utilization reduces total HBM power by a factor within ±10% of the paper's 2.3x.",
		Dimension: "Supply voltage only; bandwidth fixed at 32 active ports, same board seed.",
		Control: "The savings factor at V_nom itself must be exactly 1.0 — the ratio is " +
			"measured against the same-bandwidth nominal reference, so a drifting baseline " +
			"would show up here before it could fake a savings number.",
		Preconditions: "A power sweep whose grid includes 1.20 V and 0.85 V at 32 ports.",
		Eval: func(ev *Evidence) ([]Check, error) {
			p, err := needPower(ev)
			if err != nil {
				return nil, err
			}
			deep, err := p.SavingsAt(vDeep, 32)
			if err != nil {
				return nil, evalErrf("%v", err)
			}
			nom, err := p.SavingsAt(faults.VNom, 32)
			if err != nil {
				return nil, evalErrf("%v", err)
			}
			return []Check{
				check("savings_factor_0v85_100bw", deep, PercentBand(2.3, 10)).
					withNote("P(1.20V,32 ports)/P(0.85V,32 ports)"),
				check("savings_factor_nominal", nom, Band{Lo: 0.999, Hi: 1.001}).
					withNote("baseline self-consistency control"),
			}, nil
		},
	}
}

func claimAlphaCLF() Claim {
	return Claim{
		ID:       "alpha-clf-drop-deep-undervolt",
		Title:    "Effective switching activity (alpha*C_L*f) drops ~14% at 0.85 V",
		Citation: "Fig. 3 / §III-A",
		Hypothesis: "At 0.85 V the P/V^2 proxy for switching activity falls to within ±5% of " +
			"0.86x its nominal value — the paper's evidence that undervolting saves more than " +
			"the quadratic CV^2f term alone, because stuck bits stop toggling.",
		Dimension: "Supply voltage only; the proxy is normalized per-bandwidth, removing the " +
			"utilization dimension.",
		Control: "NormAlphaCLF at V_nom is 1.0 by construction; the claim is about the " +
			"departure from 1.0, not the normalization.",
		Preconditions: "A power sweep whose grid includes 1.20 V and 0.85 V at 32 ports.",
		Eval: func(ev *Evidence) ([]Check, error) {
			p, err := needPower(ev)
			if err != nil {
				return nil, err
			}
			pt := p.At(vDeep, 32)
			if pt == nil {
				return nil, evalErrf("no power point at %vV/32 ports", vDeep)
			}
			nomPt := p.At(faults.VNom, 32)
			if nomPt == nil {
				return nil, evalErrf("no power point at %vV/32 ports", faults.VNom)
			}
			return []Check{
				check("norm_alpha_clf_0v85", pt.NormAlphaCLF, PercentBand(0.86, 5)).
					withNote("(P/V^2) at 0.85V normalized to its V_nom value, 32 ports"),
				check("norm_alpha_clf_nominal", nomPt.NormAlphaCLF, Band{Lo: 0.999, Hi: 1.001}).
					withNote("normalization self-consistency control"),
			}, nil
		},
	}
}

func claimGuardbandVmin() Claim {
	return Claim{
		ID:       "guardband-vmin",
		Title:    "The voltage guardband ends at V_min = 0.98 V (~19% of nominal)",
		Citation: "Fig. 4 / §III-B",
		Hypothesis: "Scanning the voltage ladder downward, the lowest voltage with zero " +
			"observed bit flips is within one 10 mV grid step of 0.98 V, making the guardband " +
			"(V_nom - V_min)/V_nom land in [17%, 20%] — the paper reports ~19%.",
		Dimension: "Supply voltage only, on the live Algorithm 1 sweep (not the analytic model).",
		Control: "V_min is read from the same sweep the monotonic-onset control validates; a " +
			"sweep that never shows faults (broken injection) fails the onset claim first.",
		Preconditions: "A reliability sweep covering the ladder from V_nom into the unsafe region.",
		Eval: func(ev *Evidence) ([]Check, error) {
			r, err := needReliability(ev)
			if err != nil {
				return nil, err
			}
			vmin := faults.VNom
			faulted := false
			for i := range r.Points {
				pt := &r.Points[i]
				if pt.Crashed || pt.MeanFlips > 0 {
					faulted = true
					break
				}
				vmin = pt.Volts
			}
			if !faulted {
				return nil, evalErrf("reliability sweep shows no faults anywhere on the ladder; cannot locate V_min")
			}
			frac := (faults.VNom - vmin) / faults.VNom
			return []Check{
				check("vmin_volts", vmin, Band{Lo: faults.VMin - faults.VStep, Hi: faults.VMin + faults.VStep}).
					withNote("lowest zero-fault voltage, scanned downward"),
				check("guardband_fraction", frac, Band{Lo: 0.17, Hi: 0.20}).
					withNote("(V_nom - V_min)/V_nom"),
			}, nil
		},
	}
}

func claimFaultOnsetMonotonic() Claim {
	return Claim{
		ID:       "fault-onset-monotonic",
		Title:    "Fault counts grow monotonically as voltage drops (directional control)",
		Citation: "Fig. 4 / §III-B",
		Hypothesis: "Below the fault onset — itself within one grid step of 0.97 V — the " +
			"per-point mean flip count never decreases by more than 2% from one 10 mV step " +
			"to the next, and at least 8 steps grow by more than 1.5x. If fault counts " +
			"stopped responding to voltage, the harness would not be measuring undervolting " +
			"at all — this is the suite's directional control.",
		Dimension: "Supply voltage only; flip counts aggregate both patterns and all ports.",
		Control: "This claim IS the directional control for the others. The 2% slack exists " +
			"only for the saturated floor (>0.84 V collapse), where Monte-Carlo jitter rides " +
			"on an essentially-total fault population.",
		Preconditions: "A reliability sweep with at least two faulty points.",
		Eval: func(ev *Evidence) ([]Check, error) {
			r, err := needReliability(ev)
			if err != nil {
				return nil, err
			}
			const slack = 0.02
			onset := 0.0
			violations, growth, faulty := 0, 0, 0
			var prev *core.VoltagePoint
			for i := range r.Points {
				pt := &r.Points[i]
				if pt.Crashed {
					break // ladder is descending; everything below has crashed
				}
				if pt.MeanFlips > 0 {
					faulty++
					if onset == 0 {
						onset = pt.Volts
					}
				}
				if prev != nil && prev.MeanFlips > 0 {
					if pt.MeanFlips < prev.MeanFlips*(1-slack) {
						violations++
					}
					if pt.MeanFlips > prev.MeanFlips*1.5 {
						growth++
					}
				}
				prev = pt
			}
			if faulty < 2 {
				return nil, evalErrf("reliability sweep has %d faulty points; need at least 2 to test monotonicity", faulty)
			}
			return []Check{
				check("onset_volts", onset, Band{Lo: faults.VFirst10 - faults.VStep, Hi: faults.VFirst10 + faults.VStep}).
					withNote("highest voltage with nonzero mean flips"),
				check("monotonic_violations", float64(violations), Exactly(0)).
					withNote("steps where flips fell by more than 2% as voltage dropped"),
				check("growth_steps", float64(growth), Band{Lo: 8, Hi: 40}).
					withNote("steps with >1.5x flip growth"),
			}, nil
		},
	}
}

func claimFaultGrowthRate() Claim {
	return Claim{
		ID:       "fault-growth-exponential",
		Title:    "Pre-collapse fault counts grow exponentially, ~0.55 decades per 10 mV",
		Citation: "Fig. 4 / §III-B (Chang et al. antecedent: reduced-voltage DRAM)",
		Hypothesis: "Between fault onset and the bulk collapse, log10(mean flips) rises " +
			"linearly with undervolting at a least-squares slope inside [0.45, 0.65] decades " +
			"per 10 mV step — the exponential-onset shape both the paper's Fig. 4 and the " +
			"DRAM antecedent report, calibrated at 0.55.",
		Dimension: "Supply voltage only; the fit window is the pre-saturation region " +
			"(bit fault rate < 1%), excluding the collapse floor.",
		Control: "The monotonic claim guards the same window directionally; a flat (broken) " +
			"curve fails both, a noisy-but-growing curve fails only the slope band.",
		Preconditions: "A reliability sweep with at least 4 pre-saturation faulty points.",
		Eval: func(ev *Evidence) ([]Check, error) {
			r, err := needReliability(ev)
			if err != nil {
				return nil, err
			}
			var xs, ys []float64 // x in 10 mV steps below the first window point
			v0 := math.NaN()
			for i := range r.Points {
				pt := &r.Points[i]
				if pt.Crashed || pt.MeanFlips <= 0 || pt.FaultRate() >= 0.01 {
					continue
				}
				if math.IsNaN(v0) {
					v0 = pt.Volts
				}
				xs = append(xs, (v0-pt.Volts)/faults.VStep)
				ys = append(ys, math.Log10(pt.MeanFlips))
			}
			if len(xs) < 4 {
				return nil, evalErrf("only %d pre-saturation faulty points; need at least 4 to fit a growth slope", len(xs))
			}
			slope, err := lsqSlope(xs, ys)
			if err != nil {
				return nil, err
			}
			return []Check{
				check("decades_per_step", slope, Band{Lo: 0.45, Hi: 0.65}).
					withNote("least-squares slope of log10(flips) per 10 mV, pre-saturation window"),
				check("fit_points", float64(len(xs)), Band{Lo: 4, Hi: 1e6}).
					withNote("window size sanity"),
			}, nil
		},
	}
}

func claimPolarityAsymmetry() Claim {
	return Claim{
		ID:       "flip-polarity-asymmetry",
		Title:    "1-to-0 flips lead 0-to-1 flips by one grid step and stay ~21% rarer",
		Citation: "Fig. 5 / §III-B",
		Hypothesis: "The first 1-to-0 flips appear 1-3 grid steps above the first 0-to-1 " +
			"flips (paper: 0.97 V vs 0.96 V), and inside the developed fault region the " +
			"0-to-1/1-to-0 count ratio averages within ±10% of the paper's 1.21x.",
		Dimension: "Supply voltage only; polarity classes come from the same sweep's " +
			"all-1s vs all-0s patterns.",
		Control: "The onset-order check is itself directional: a polarity-blind fault model " +
			"would show zero gap and a ratio of exactly 1.0, both outside their bands.",
		Preconditions: "A reliability sweep testing both all-1s and all-0s with a developed " +
			"fault region (>=100 mean flips) before saturation.",
		Eval: func(ev *Evidence) ([]Check, error) {
			r, err := needReliability(ev)
			if err != nil {
				return nil, err
			}
			v10, v01 := math.NaN(), math.NaN()
			var ratios []float64
			for i := range r.Points {
				pt := &r.Points[i]
				if pt.Crashed {
					break
				}
				if math.IsNaN(v10) && pt.Flips10 > 0 {
					v10 = pt.Volts
				}
				if math.IsNaN(v01) && pt.Flips01 > 0 {
					v01 = pt.Volts
				}
				if pt.MeanFlips >= 100 && pt.FaultRate() < 0.01 && pt.Flips10 > 0 {
					ratios = append(ratios, pt.Flips01/pt.Flips10)
				}
			}
			if math.IsNaN(v10) || math.IsNaN(v01) {
				return nil, evalErrf("sweep never observed both flip polarities; cannot measure the asymmetry")
			}
			if len(ratios) == 0 {
				return nil, evalErrf("no developed-region points (>=100 flips, <1%% bit fault rate) to average the polarity ratio over")
			}
			gap := math.Round((v10 - v01) / faults.VStep)
			mean := 0.0
			for _, x := range ratios {
				mean += x
			}
			mean /= float64(len(ratios))
			return []Check{
				check("polarity_onset_gap_steps", gap, Band{Lo: 1, Hi: 3}).
					withNote("grid steps between first 1-to-0 and first 0-to-1 flips"),
				check("mean_01_to_10_ratio", mean, PercentBand(1.21, 10)).
					withNote("developed-region average of Flips01/Flips10"),
			}, nil
		},
	}
}

func claimFig4CurveFidelity() Claim {
	return Claim{
		ID:       "fig4-curve-fidelity",
		Title:    "Per-stack fault-fraction curves track the digitized Fig. 4 within 5% MAPE",
		Citation: "Fig. 4 / §III-B",
		Hypothesis: "Each stack's analytic faulty-fraction curve matches the committed " +
			"paper-digitized ground-truth table with a mean absolute percentage error of at " +
			"most 5% over the faulty region, and stays below 1e-12 everywhere the ground " +
			"truth is fault-free.",
		Dimension: "Supply voltage only; one curve per physical stack, full-capacity device.",
		Control: "The zero-region absolute check is the counterpart of the MAPE: a model " +
			"that smears faults into the guardband cannot pass it, while MAPE alone would " +
			"never see those points (zero denominators are a typed error by design).",
		Preconditions: "A faultmap study over a grid covered by the ground-truth table.",
		Eval: func(ev *Evidence) ([]Check, error) {
			fmStudy, err := needFaultMap(ev)
			if err != nil {
				return nil, err
			}
			if len(fmStudy.Curves) == 0 {
				return nil, evalErrf("faultmap study has no stack curves")
			}
			var checks []Check
			cleanMax := 0.0
			cleanPts := 0
			for _, curve := range fmStudy.Curves {
				truthCurve, ok := fig4Truth(curve.Stack)
				if !ok {
					return nil, evalErrf("no Fig. 4 ground truth for stack %d", curve.Stack)
				}
				var obs, truth []float64
				for i, v := range curve.Grid {
					if i >= len(curve.Fractions) {
						return nil, evalErrf("stack %d curve shorter than its grid", curve.Stack)
					}
					t, ok := truthCurve.at(v)
					if !ok {
						return nil, evalErrf("stack %d: no ground truth at %.2f V", curve.Stack, v)
					}
					if t == 0 {
						cleanPts++
						if curve.Fractions[i] > cleanMax {
							cleanMax = curve.Fractions[i]
						}
						continue
					}
					obs = append(obs, curve.Fractions[i])
					truth = append(truth, t)
				}
				m, err := MAPE(obs, truth)
				if err != nil {
					return nil, err
				}
				checks = append(checks, check(stackCheckName(curve.Stack), m, Band{Lo: 0, Hi: 5}).
					withNote("MAPE vs digitized Fig. 4, faulty region, percent"))
			}
			if cleanPts == 0 {
				return nil, evalErrf("ground truth has no fault-free points; table is suspect")
			}
			checks = append(checks, check("clean_region_max_fraction", cleanMax, Band{Lo: 0, Hi: 1e-12}).
				withNote("largest modeled fraction where ground truth is zero"))
			return checks, nil
		},
	}
}

func stackCheckName(stack int) string {
	return "stack" + string(rune('0'+stack%10)) + "_mape_pct"
}

func claimUsablePCTradeoff() Claim {
	return Claim{
		ID:       "usable-pc-tradeoff",
		Title:    "7 fault-free PCs at 0.95 V; 16 PCs within 1e-6 tolerance at 0.90 V",
		Citation: "Fig. 6 / §III-C",
		Hypothesis: "The usable-PC family reproduces the paper's two quoted operating " +
			"points exactly: 7 of 32 pseudo channels fault-free at 0.95 V, and half the " +
			"capacity (16 PCs) at a 0.0001% tolerable fault rate at 0.90 V.",
		Dimension: "Supply voltage and tolerable fault rate; counts are integers, so the " +
			"bands are exact.",
		Control: "Counts at the two points bound each other: the fault-free count can never " +
			"exceed the tolerant count at any voltage, and both shrink with voltage — " +
			"violations would corrupt one of the two exact checks.",
		Preconditions: "A faultmap study whose grid covers 0.95 V and 0.90 V with the " +
			"standard tolerance family.",
		Eval: func(ev *Evidence) ([]Check, error) {
			fmStudy, err := needFaultMap(ev)
			if err != nil {
				return nil, err
			}
			i95, ok := gridIndex(fmStudy.Grid, 0.95)
			if !ok {
				return nil, evalErrf("faultmap grid lacks 0.95 V")
			}
			i90, ok := gridIndex(fmStudy.Grid, 0.90)
			if !ok {
				return nil, evalErrf("faultmap grid lacks 0.90 V")
			}
			t0, ok := toleranceIndex(fmStudy.Tolerances, 0)
			if !ok {
				return nil, evalErrf("faultmap tolerances lack the fault-free (0) entry")
			}
			t6, ok := toleranceIndex(fmStudy.Tolerances, 1e-6)
			if !ok {
				return nil, evalErrf("faultmap tolerances lack the 1e-6 entry")
			}
			if len(fmStudy.Usable) <= t0 || len(fmStudy.Usable) <= t6 ||
				len(fmStudy.Usable[t0]) <= i95 || len(fmStudy.Usable[t6]) <= i90 {
				return nil, evalErrf("faultmap usable matrix is ragged")
			}
			return []Check{
				check("fault_free_pcs_0v95", float64(fmStudy.Usable[t0][i95]), Exactly(7)).
					withNote("paper: '7 fault-free PCs operating at 0.95V'"),
				check("pcs_tol_1e-6_0v90", float64(fmStudy.Usable[t6][i90]), Exactly(16)).
					withNote("paper: half the capacity at 0.0001% tolerance, 0.90V"),
			}, nil
		},
	}
}

func gridIndex(grid []float64, v float64) (int, bool) {
	for i, g := range grid {
		if sameV(g, v) {
			return i, true
		}
	}
	return 0, false
}

func toleranceIndex(tols []float64, t float64) (int, bool) {
	for i, x := range tols {
		if x == t {
			return i, true
		}
	}
	return 0, false
}

func claimECCRegionWidening() Claim {
	return Claim{
		ID:       "ecc-region-widening",
		Title:    "SEC-DED ECC widens the safe region below the raw V_min",
		Citation: "§IV related-work mitigation (ECC absorption of undervolting faults)",
		Hypothesis: "With Hamming(72,64) SEC-DED, the lowest voltage with fewer than 0.5 " +
			"expected uncorrectable codewords sits 1-6 grid steps below the raw zero-fault " +
			"V_min, inside [0.90, 0.97] V, and the power saving at the widened point " +
			"strictly exceeds the raw guardband's (V_nom/V_min)^2.",
		Dimension: "Supply voltage only; raw and ECC thresholds come from one analytic pass " +
			"over the same device.",
		Control: "The widening is bounded above as well as below: an ECC model that " +
			"'absorbs' the bulk collapse (V_minECC below 0.90 V) is as refuted as one that " +
			"absorbs nothing.",
		Preconditions: "An ecc-study over a grid reaching from the guardband into the " +
			"unsafe region.",
		Eval: func(ev *Evidence) ([]Check, error) {
			e, err := needECC(ev)
			if err != nil {
				return nil, err
			}
			if e.VMinRaw <= 0 || e.VMinECC <= 0 {
				return nil, evalErrf("ecc-study thresholds are unset")
			}
			steps := math.Round((e.VMinRaw - e.VMinECC) / faults.VStep)
			rawSafe := (faults.VNom / e.VMinRaw) * (faults.VNom / e.VMinRaw)
			if rawSafe == 0 || math.IsNaN(rawSafe) || math.IsInf(rawSafe, 0) {
				return nil, evalErrf("raw guardband savings is degenerate")
			}
			return []Check{
				check("widening_steps", steps, Band{Lo: 1, Hi: 6}).
					withNote("grid steps between raw V_min and ECC V_min"),
				check("vmin_ecc_volts", e.VMinECC, Band{Lo: 0.90, Hi: 0.97}).
					withNote("lowest voltage with <0.5 expected uncorrectable codewords"),
				check("extra_savings_ratio", e.ExtraSafeSavings/rawSafe, Band{Lo: 1.01, Hi: 2.0}).
					withNote("ECC-region savings over raw-guardband savings"),
			}, nil
		},
	}
}

// lsqSlope fits y = a + b*x by least squares and returns b. Degenerate
// inputs (no x spread, non-finite values) are a *EvalError.
func lsqSlope(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, evalErrf("slope fit needs >=2 paired points, got %d/%d", len(xs), len(ys))
	}
	mx, my := 0.0, 0.0
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return 0, evalErrf("slope fit input %d is not finite", i)
		}
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(ys))
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, evalErrf("slope fit has no x spread")
	}
	return num / den, nil
}
