package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("V", "Power", "Savings")
	tb.AddRow("1.20", "17.36", "1.00")
	tb.AddRow("0.98", "11.58", "1.50")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "V") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator line %q", lines[1])
	}
	// All data lines align on the same column offsets.
	idx0 := strings.Index(lines[2], "17.36")
	idx1 := strings.Index(lines[3], "11.58")
	if idx0 != idx1 {
		t.Fatalf("misaligned columns: %d vs %d", idx0, idx1)
	}
}

func TestTablePadsAndTruncates(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1")           // short
	tb.AddRow("1", "2", "3") // long
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Fatal("overflow cell not truncated")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRowf("%.2f", 1.234, 5.678)
	if !strings.Contains(tb.String(), "1.23") {
		t.Fatal("formatted cell missing")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSV(&buf)
	c.Row("volts", "watts")
	c.Row(0.98, 11.5)
	c.Row(1, uint64(42))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "volts,watts\n0.98,11.5\n1,42\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestCSVQuotesCommas(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSV(&buf)
	c.Row("a,b", "plain")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"a,b"`) {
		t.Fatalf("comma cell not quoted: %q", buf.String())
	}
}

func TestChartRendersSeries(t *testing.T) {
	ch := &Chart{
		Title:  "Fig. 2",
		XLabel: "V",
		X:      []float64{1.2, 1.1, 1.0, 0.9},
		Series: []Series{
			{Name: "100%", Values: []float64{1.0, 0.84, 0.69, 0.56}},
			{Name: "idle", Values: []float64{0.33, 0.28, 0.23, 0.19}},
		},
		Height: 8,
	}
	out := ch.String()
	if !strings.Contains(out, "Fig. 2") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "idle") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	if !strings.Contains(out, "x: V") {
		t.Fatal("x label missing")
	}
}

func TestChartLogScaleHandlesZeros(t *testing.T) {
	ch := &Chart{
		X: []float64{1, 2, 3},
		Series: []Series{
			{Name: "rate", Values: []float64{0, 1e-6, 1e-2}},
		},
		LogY: true,
	}
	out := ch.String()
	if out == "" {
		t.Fatal("log chart empty")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("log chart plotted nothing")
	}
}

func TestChartEmptyData(t *testing.T) {
	ch := &Chart{}
	if !strings.Contains(ch.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
	ch = &Chart{X: []float64{1}, Series: []Series{{Name: "z", Values: []float64{0}}}, LogY: true}
	if !strings.Contains(ch.String(), "no plottable data") {
		t.Fatal("all-zero log chart should say so")
	}
}

func TestChartConstantSeries(t *testing.T) {
	ch := &Chart{
		X:      []float64{1, 2},
		Series: []Series{{Name: "flat", Values: []float64{5, 5}}},
	}
	if ch.String() == "" {
		t.Fatal("constant series chart empty")
	}
}
