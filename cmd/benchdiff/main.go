// Command benchdiff compares a freshly generated BENCH_sweep.json
// against the committed baseline and fails on throughput regressions
// beyond a tolerance band. It closes the loop cmd/benchjson opened: CI
// used to emit benchmark artifacts that nothing ever read; with a
// baseline committed in the repository, every run now diffs its
// points/sec and cells/sec metrics against it.
//
// Usage:
//
//	go run ./cmd/benchdiff -baseline BENCH_sweep.json -current new.json [-tolerance 0.25]
//
// Rules:
//
//   - only throughput metrics are compared (default "points/sec" and
//     "cells/sec"; override with -metrics) — wall-clock ns/op varies
//     with runner hardware;
//   - absolute throughput also varies with runner hardware, so the
//     gate is fleet-relative: a metric regresses only when BOTH its
//     raw current/baseline ratio AND its ratio normalized by the
//     median ratio across all compared metrics fall below the band. A
//     runner uniformly 40% slower than the baseline machine drops
//     every raw ratio but leaves the normalized ones at ~1 (no
//     failure); genuine improvements elsewhere raise the median but
//     leave unimproved benchmarks' raw ratios in band (no failure); a
//     single benchmark collapsing fails both tests. (-normalize=false
//     gates on raw ratios alone; with fewer than three comparable
//     metrics normalization is skipped, since a median of the
//     regressing metric would mask it.)
//   - regressions exit 1; improvements are reported and never fail;
//   - benchmarks present on only one side are reported but tolerated,
//     so adding or renaming a benchmark does not require a lockstep
//     baseline update (the baseline refresh catches up on commit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Benchmark mirrors cmd/benchjson's record shape.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
	Raw     string             `json:"raw"`
}

// Report mirrors cmd/benchjson's document shape.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var (
	flagBaseline  = flag.String("baseline", "BENCH_sweep.json", "committed baseline report")
	flagCurrent   = flag.String("current", "", "freshly generated report to check (required)")
	flagTolerance = flag.Float64("tolerance", 0.25, "allowed fractional regression of a (normalized) throughput metric")
	flagMetrics   = flag.String("metrics", "points/sec,cells/sec", "comma-separated throughput metrics to compare")
	flagNormalize = flag.Bool("normalize", true, "divide each ratio by the median ratio, cancelling uniform machine-speed differences")
)

func main() {
	flag.Parse()
	if *flagCurrent == "" || *flagTolerance < 0 || *flagTolerance >= 1 {
		flag.Usage()
		os.Exit(2)
	}
	regressions, err := run(*flagBaseline, *flagCurrent, *flagTolerance,
		strings.Split(*flagMetrics, ","), *flagNormalize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d throughput regression(s) beyond the %.0f%% band\n",
			regressions, *flagTolerance*100)
		os.Exit(1)
	}
}

// procsSuffix matches the "-N" GOMAXPROCS suffix go test appends to
// benchmark names on multi-core machines (and omits at GOMAXPROCS=1).
var procsSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix so a baseline generated
// on a 1-core container compares against reports from multi-core
// runners: "BenchmarkCampaignRun/shared-4" and
// "BenchmarkCampaignRun/shared" are the same benchmark.
func normalizeName(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

func load(path string) (map[string]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[normalizeName(b.Name)] = b
	}
	return out, nil
}

// comparison is one (benchmark, metric) pair present on both sides.
type comparison struct {
	name, metric string
	base, cur    float64
	ratio        float64
}

func run(basePath, curPath string, tolerance float64, metrics []string, normalize bool) (regressions int, err error) {
	base, err := load(basePath)
	if err != nil {
		return 0, err
	}
	cur, err := load(curPath)
	if err != nil {
		return 0, err
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var comps []comparison
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-55s (in baseline only; tolerated)\n", name)
			continue
		}
		for _, metric := range metrics {
			metric = strings.TrimSpace(metric)
			bv, bok := b.Metrics[metric]
			cv, cok := c.Metrics[metric]
			if !bok || !cok || bv <= 0 {
				continue
			}
			comps = append(comps, comparison{name: name, metric: metric, base: bv, cur: cv, ratio: cv / bv})
		}
	}
	if len(comps) == 0 {
		return 0, fmt.Errorf("no comparable throughput metrics (%v) between %s and %s",
			metrics, basePath, curPath)
	}

	scale := 1.0
	if normalize && len(comps) >= 3 {
		scale = medianRatio(comps)
		fmt.Printf("machine-speed scale (median ratio): %.3f — ratios below are relative to it\n", scale)
	}

	for _, c := range comps {
		rel := c.ratio / scale
		switch {
		case c.ratio < 1-tolerance && rel < 1-tolerance:
			regressions++
			fmt.Printf("REGRESS  %-55s %-12s %12.4g -> %-12.4g (raw %.0f%%, fleet-relative %.0f%%)\n",
				c.name, c.metric, c.base, c.cur, c.ratio*100, rel*100)
		case c.ratio > 1+tolerance && rel > 1+tolerance:
			fmt.Printf("IMPROVE  %-55s %-12s %12.4g -> %-12.4g (raw %.0f%%, fleet-relative %.0f%%)\n",
				c.name, c.metric, c.base, c.cur, c.ratio*100, rel*100)
		default:
			fmt.Printf("OK       %-55s %-12s %12.4g -> %-12.4g (raw %.0f%%, fleet-relative %.0f%%)\n",
				c.name, c.metric, c.base, c.cur, c.ratio*100, rel*100)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("NEW      %-55s (not in baseline; tolerated)\n", name)
		}
	}
	return regressions, nil
}

// medianRatio returns the median current/baseline ratio — the uniform
// machine-speed factor the normalization divides out.
func medianRatio(comps []comparison) float64 {
	ratios := make([]float64, len(comps))
	for i, c := range comps {
		ratios[i] = c.ratio
	}
	sort.Float64s(ratios)
	if n := len(ratios); n%2 == 1 {
		return ratios[n/2]
	} else {
		return (ratios[n/2-1] + ratios[n/2]) / 2
	}
}
