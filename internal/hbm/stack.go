package hbm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hbmvolt/internal/faults"
	"hbmvolt/internal/pattern"
)

// ErrCrashed is returned by memory operations after the stack has stopped
// responding (supply driven below V_critical). Matching the paper's
// observation, restoring the voltage does not clear the condition; only
// PowerCycle does.
var ErrCrashed = errors.New("hbm: stack crashed (supply fell below V_critical); power cycle required")

// ErrOutOfRange is returned for word addresses beyond the pseudo
// channel's capacity.
var ErrOutOfRange = errors.New("hbm: word address out of range")

// Stack models one HBM stack: 16 pseudo channels behind a shared supply
// rail. Reads see the voltage-dependent stuck-bit overlay from the fault
// model; writes to stuck cells are silently absorbed (the cell keeps
// reading its stuck value until the voltage rises above its critical
// point again).
//
// Locking: stack-level state (voltage, crash latch, batch rep) is under
// an RWMutex taken for reading by every access, so the 16 pseudo
// channels can be driven concurrently — each channel's memory and fault
// sampler are guarded by their own mutex, matching the hardware's
// independent-PC concurrency.
type Stack struct {
	id  int
	org Organization
	fm  *faults.Model

	mu       sync.RWMutex // guards volts, crashed, batchRep
	volts    float64
	crashed  bool
	batchRep uint64

	pcs      []*pseudoChannel
	readOps  atomic.Uint64
	writeOps atomic.Uint64
}

type pseudoChannel struct {
	pc      int
	mu      sync.Mutex
	mem     *pagedMemory
	sampler *faults.Sampler
	// samplerV/samplerRep identify the state the cached sampler was
	// built for.
	samplerV   float64
	samplerRep uint64
}

// ensureSampler returns the cached fault sampler for (volts, rep),
// rebuilding it when the rail state moved. Callers hold ch.mu.
func (s *Stack) ensureSampler(ch *pseudoChannel, volts float64, rep uint64) *faults.Sampler {
	if ch.sampler == nil || ch.samplerV != volts || ch.samplerRep != rep {
		ch.sampler = s.fm.NewBatchSampler(s.id, ch.pc, volts, rep)
		ch.samplerV, ch.samplerRep = volts, rep
	}
	return ch.sampler
}

// NewStack builds stack id (0 or 1) over the given fault model. The fault
// model's geometry must match org.
func NewStack(id int, org Organization, fm *faults.Model) (*Stack, error) {
	if err := org.Validate(); err != nil {
		return nil, err
	}
	if id < 0 || id >= org.Stacks {
		return nil, fmt.Errorf("hbm: stack id %d out of range", id)
	}
	g := fm.Geometry()
	if g.WordsPerPC != org.WordsPerPC || g.WordsPerRow != org.WordsPerRow {
		return nil, fmt.Errorf("hbm: fault-model geometry %+v does not match organization", g)
	}
	s := &Stack{id: id, org: org, fm: fm, volts: faults.VNom}
	s.pcs = make([]*pseudoChannel, org.PCsPerStack())
	for i := range s.pcs {
		s.pcs[i] = &pseudoChannel{pc: i, mem: newPagedMemory(org.WordsPerPC)}
	}
	return s, nil
}

// ID returns the stack index (0 = HBM0, 1 = HBM1).
func (s *Stack) ID() int { return s.id }

// Organization returns the stack's geometry.
func (s *Stack) Organization() Organization { return s.org }

// SetVoltage applies a new supply voltage. Driving the rail below
// V_critical latches the crash state.
func (s *Stack) SetVoltage(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.volts = v
	if v < faults.VCritical {
		s.crashed = true
	}
}

// Voltage returns the present supply voltage.
func (s *Stack) Voltage() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.volts
}

// Crashed reports whether the stack has stopped responding.
func (s *Stack) Crashed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.crashed
}

// SetBatchRep selects the batch repetition whose metastability
// realization subsequent reads observe (Algorithm 1 increments this per
// batch iteration). Rep 0 is the default realization.
func (s *Stack) SetBatchRep(rep uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchRep = rep
}

// PowerCycle models a full power-down and restart: the crash latch
// clears and, DRAM being volatile, all contents are lost (reset to
// zero). The supply returns to whatever the rail provides; callers
// should re-program the regulator afterwards.
func (s *Stack) PowerCycle() {
	s.mu.Lock()
	s.crashed = false
	s.volts = faults.VNom
	s.mu.Unlock()
	for _, pc := range s.pcs {
		pc.mu.Lock()
		pc.mem.Fill(pattern.AllZerosWord)
		pc.sampler = nil
		pc.mu.Unlock()
	}
}

// state snapshots the rail condition for one access.
func (s *Stack) state() (volts float64, rep uint64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.crashed {
		return 0, 0, ErrCrashed
	}
	return s.volts, s.batchRep, nil
}

func (s *Stack) channel(pc int, addr uint64) (*pseudoChannel, error) {
	if pc < 0 || pc >= len(s.pcs) {
		return nil, fmt.Errorf("hbm: pseudo channel %d out of range", pc)
	}
	if addr >= s.org.WordsPerPC {
		return nil, fmt.Errorf("%w: word %d of %d", ErrOutOfRange, addr, s.org.WordsPerPC)
	}
	return s.pcs[pc], nil
}

// WriteWord stores a 256-bit word at the PC-relative word address.
func (s *Stack) WriteWord(pc int, addr uint64, w pattern.Word) error {
	if _, _, err := s.state(); err != nil {
		return err
	}
	ch, err := s.channel(pc, addr)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	ch.mem.Write(addr, w)
	ch.mu.Unlock()
	s.writeOps.Add(1)
	return nil
}

// ReadWord loads the 256-bit word at the PC-relative word address,
// applying the stuck-bit overlay for the present supply voltage.
func (s *Stack) ReadWord(pc int, addr uint64) (pattern.Word, error) {
	volts, rep, err := s.state()
	if err != nil {
		return pattern.Word{}, err
	}
	ch, err := s.channel(pc, addr)
	if err != nil {
		return pattern.Word{}, err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	w := ch.mem.Read(addr)
	s.readOps.Add(1)
	s.ensureSampler(ch, volts, rep)
	if ch.sampler.MightFault() {
		w = faults.Overlay(w, ch.sampler.WordFaults(addr, nil))
	}
	return w, nil
}

// channelRange validates a [start, start+count) window on pc.
func (s *Stack) channelRange(pc int, start, count uint64) (*pseudoChannel, error) {
	if pc < 0 || pc >= len(s.pcs) {
		return nil, fmt.Errorf("hbm: pseudo channel %d out of range", pc)
	}
	if start > s.org.WordsPerPC || count > s.org.WordsPerPC-start {
		return nil, fmt.Errorf("%w: words [%d,%d) of %d", ErrOutOfRange, start, start+count, s.org.WordsPerPC)
	}
	return s.pcs[pc], nil
}

// WriteRange stores pat's words over [start, start+count) of the pseudo
// channel, taking the channel lock once. Uniform patterns splice the
// sparse store's fill runs — O(allocated pages + fill runs) regardless
// of count; address-dependent patterns fall back to word-by-word stores
// under the single lock.
func (s *Stack) WriteRange(pc int, start, count uint64, pat pattern.Pattern) error {
	if _, _, err := s.state(); err != nil {
		return err
	}
	ch, err := s.channelRange(pc, start, count)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	if w, ok := pattern.UniformWord(pat); ok {
		ch.mem.WriteUniform(start, count, w)
	} else {
		for a := start; a < start+count; a++ {
			ch.mem.Write(a, pat.Word(a))
		}
	}
	ch.mu.Unlock()
	s.writeOps.Add(count)
	return nil
}

// ReadRange models reading [start, start+count) without checking the
// data (bandwidth traffic): it validates the access and counts the
// words, but skips materializing values nobody observes.
func (s *Stack) ReadRange(pc int, start, count uint64) error {
	if _, _, err := s.state(); err != nil {
		return err
	}
	if _, err := s.channelRange(pc, start, count); err != nil {
		return err
	}
	s.readOps.Add(count)
	return nil
}

// ReadCheckRange reads [start, start+count) back and compares every
// word against pat, returning the total flip classification and the
// number of words with at least one flipped bit. It is the bulk
// equivalent of ReadWord+Compare per address — the channel lock is taken
// once, the fault sampler is consulted per fault site instead of per
// word, and uniform regions are charged O(fault sites), not O(words).
// On the bit-exact fault path the counts are identical to the per-word
// loop; in sparse mode they follow the same statistics.
func (s *Stack) ReadCheckRange(pc int, start, count uint64, pat pattern.Pattern) (pattern.Flips, uint64, error) {
	volts, rep, err := s.state()
	if err != nil {
		return pattern.Flips{}, 0, err
	}
	ch, err := s.channelRange(pc, start, count)
	if err != nil {
		return pattern.Flips{}, 0, err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	sampler := s.ensureSampler(ch, volts, rep)
	s.readOps.Add(count)

	var flips pattern.Flips
	var faulty uint64
	uniformPat, uniformOK := pattern.UniformWord(pat)
	ch.mem.Runs(start, count, func(runStart, runCount uint64, words []pattern.Word, fill pattern.Word) {
		if uniformOK && words == nil {
			f, fw := sampler.CheckUniformRange(runStart, runCount, uniformPat, fill)
			flips.Add(f)
			faulty += fw
			return
		}
		// Word-by-word fallback: page-backed runs and address-dependent
		// patterns. Faults still arrive pre-aggregated from the range
		// enumerator, so clean words cost a compare, not 256 hashes.
		readAt := func(a uint64) pattern.Word {
			if words != nil {
				return words[a-runStart]
			}
			return fill
		}
		check := func(a uint64, w pattern.Word) {
			f := pattern.Compare(pat.Word(a), w)
			if f.Total() > 0 {
				faulty++
				flips.Add(f)
			}
		}
		next := runStart
		sampler.RangeFaultWords(runStart, runCount, func(addr uint64, fs []faults.CellFault) {
			for a := next; a < addr; a++ {
				check(a, readAt(a))
			}
			check(addr, faults.Overlay(readAt(addr), fs))
			next = addr + 1
		})
		for a := next; a < runStart+runCount; a++ {
			check(a, readAt(a))
		}
	})
	return flips, faulty, nil
}

// FillPC resets an entire pseudo channel to the given word, modelling the
// O(n) sequential write pass of Algorithm 1 without materializing pages.
// It respects crash state like any other access.
func (s *Stack) FillPC(pc int, w pattern.Word) error {
	if _, _, err := s.state(); err != nil {
		return err
	}
	ch, err := s.channel(pc, 0)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	ch.mem.Fill(w)
	ch.mu.Unlock()
	s.writeOps.Add(s.org.WordsPerPC)
	return nil
}

// Counters returns the cumulative read and write word counts (telemetry
// for the host controller).
func (s *Stack) Counters() (reads, writes uint64) {
	return s.readOps.Load(), s.writeOps.Load()
}

// AllocatedPages reports the number of materialized memory pages across
// all pseudo channels (test observability for the sparse store).
func (s *Stack) AllocatedPages() int {
	n := 0
	for _, pc := range s.pcs {
		pc.mu.Lock()
		n += pc.mem.AllocatedPages()
		pc.mu.Unlock()
	}
	return n
}

// Device bundles the platform's HBM stacks and resolves AXI ports to
// pseudo channels.
type Device struct {
	Org    Organization
	Stacks []*Stack
}

// NewDevice builds all stacks of the organization over one fault model.
func NewDevice(org Organization, fm *faults.Model) (*Device, error) {
	d := &Device{Org: org}
	for i := 0; i < org.Stacks; i++ {
		s, err := NewStack(i, org, fm)
		if err != nil {
			return nil, err
		}
		d.Stacks = append(d.Stacks, s)
	}
	return d, nil
}

// Port resolves an AXI port to its stack and pseudo channel.
func (d *Device) Port(p PortID) (*Stack, int, error) {
	stack, pc := p.StackPC(d.Org)
	if stack < 0 || stack >= len(d.Stacks) {
		return nil, 0, fmt.Errorf("hbm: port %d out of range", p)
	}
	return d.Stacks[stack], pc, nil
}

// SetVoltage drives every stack's rail (they share the VCC_HBM supply on
// the VCU128).
func (d *Device) SetVoltage(v float64) {
	for _, s := range d.Stacks {
		s.SetVoltage(v)
	}
}

// PowerCycle power-cycles every stack.
func (d *Device) PowerCycle() {
	for _, s := range d.Stacks {
		s.PowerCycle()
	}
}

// SetBatchRep selects the metastability realization on every stack.
func (d *Device) SetBatchRep(rep uint64) {
	for _, s := range d.Stacks {
		s.SetBatchRep(rep)
	}
}

// Crashed reports whether any stack has crashed.
func (d *Device) Crashed() bool {
	for _, s := range d.Stacks {
		if s.Crashed() {
			return true
		}
	}
	return false
}
