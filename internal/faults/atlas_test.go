package faults

import (
	"sync"
	"testing"
)

// TestAtlasMatchesDirect: the memoized rates must equal the direct
// survival-function computation exactly — memoization is a cache, never
// an approximation.
func TestAtlasMatchesDirect(t *testing.T) {
	m := MustNew(DefaultConfig())
	for _, v := range PaperGrid() {
		for _, kind := range []FlipKind{AnyFlip, OneToZero, ZeroToOne} {
			direct := m.computeRates(v, kind)
			for s := 0; s < NumStacks; s++ {
				for pc := 0; pc < PCsPerStack; pc++ {
					if got := m.CellRate(s, pc, v, kind); got != direct.pcs[pcIndex(s, pc)] {
						t.Fatalf("CellRate(%d,%d,%v,%v) = %v, direct %v",
							s, pc, v, kind, got, direct.pcs[pcIndex(s, pc)])
					}
				}
				if got := m.StackFaultFraction(s, v, kind); got != direct.stacks[s] {
					t.Fatalf("StackFaultFraction(%d,%v,%v) mismatch", s, v, kind)
				}
			}
		}
		if got := m.GlobalStuckFraction(v); got != m.computeRates(v, AnyFlip).global {
			t.Fatalf("GlobalStuckFraction(%v) mismatch", v)
		}
	}
}

// TestAtlasSharing: equal (default-filled) configs fingerprint to one
// shared atlas — including the sparse/exact twins, whose analytic rates
// are identical — while any rate-relevant difference separates them.
func TestAtlasSharing(t *testing.T) {
	base := MustNew(DefaultConfig())
	same := MustNew(DefaultConfig())
	if base.atlas != same.atlas {
		t.Fatal("identical configs did not share an atlas")
	}
	sparse := DefaultConfig()
	sparse.SparseEnumeration = true
	if MustNew(sparse).atlas != base.atlas {
		t.Fatal("sparse twin did not share the exact model's atlas")
	}
	seeded := DefaultConfig()
	seeded.Seed = 99
	if MustNew(seeded).atlas == base.atlas {
		t.Fatal("different seed shared an atlas")
	}
	hot := DefaultConfig()
	hot.Temperature = 55
	if MustNew(hot).atlas == base.atlas {
		t.Fatal("different temperature shared an atlas")
	}
	prof := DefaultConfig()
	prof.Profiles[7].WeakMult *= 2
	if MustNew(prof).atlas == base.atlas {
		t.Fatal("different profile shared an atlas")
	}
	scaled := DefaultConfig()
	scaled.Geometry = Geometry{WordsPerPC: 8 << 10, WordsPerRow: 32}
	if MustNew(scaled).atlas == base.atlas {
		t.Fatal("different geometry shared an atlas")
	}
}

// TestAtlasConcurrent hammers one atlas from many goroutines over a
// fresh (uncached) voltage set; every reader must observe the exact
// direct value. Run under -race this also proves the locking.
func TestAtlasConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 424242 // fresh fingerprint: the cache starts cold
	m := MustNew(cfg)
	grid := VoltageGrid(1.10, 0.82)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range grid {
				want := m.computeRates(v, AnyFlip).global
				if got := m.GlobalStuckFraction(v); got != want {
					errs <- "concurrent read mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
