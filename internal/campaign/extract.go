package campaign

import (
	"bytes"
	"fmt"

	"hbmvolt/internal/service"
)

// CellEnvelope pairs one decoded result envelope with its provenance
// inside the campaign — which scenario produced it and at which cell
// index. The envelope's Kind mirrors the scenario kind.
type CellEnvelope struct {
	Scenario string
	Index    int
	Envelope *service.Envelope
}

// Envelopes decodes every cell payload of a completed campaign into its
// typed service envelope, strictly in campaign (spec) order. This is
// the extraction hook downstream consumers — the claim verifier, report
// generators — use to get at typed results without re-parsing NDJSON
// artifacts themselves.
func (r *Result) Envelopes() ([]CellEnvelope, error) {
	var out []CellEnvelope
	for _, sr := range r.Scenarios {
		for _, cr := range sr.Cells {
			env, err := service.DecodeResult(cr.Payload)
			if err != nil {
				return nil, fmt.Errorf("campaign %s: scenario %q cell %d: %w",
					r.Spec.Name, sr.Name, cr.Cell.Index, err)
			}
			out = append(out, CellEnvelope{Scenario: sr.Name, Index: cr.Cell.Index, Envelope: env})
		}
	}
	return out, nil
}

// EnvelopesByKind decodes the campaign's payloads and keeps only the
// envelopes of one sweep kind (service.KindReliability, KindPower,
// KindFaultMap or KindECCStudy), in campaign order.
func (r *Result) EnvelopesByKind(kind string) ([]CellEnvelope, error) {
	all, err := r.Envelopes()
	if err != nil {
		return nil, err
	}
	var out []CellEnvelope
	for _, ce := range all {
		if ce.Envelope.Kind == kind {
			out = append(out, ce)
		}
	}
	return out, nil
}

// DecodeArtifact parses one scenario's NDJSON artifact (the files
// WriteArtifacts emits: one result-envelope line per cell) back into
// typed envelopes. It is the file-shaped counterpart of
// (*Result).Envelopes, for consumers that work from committed artifacts
// rather than a live run.
func DecodeArtifact(data []byte) ([]*service.Envelope, error) {
	var out []*service.Envelope
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		env, err := service.DecodeResult(line)
		if err != nil {
			return nil, fmt.Errorf("campaign: artifact line %d: %w", i+1, err)
		}
		out = append(out, env)
	}
	return out, nil
}
