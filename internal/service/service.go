// Package service exposes the repository's Algorithm 1 sweeps as a
// long-lived HTTP service — sweep-as-a-service over the board-fleet
// scheduler (internal/core) instead of one-shot CLI runs.
//
// The API is JSON over HTTP:
//
//	POST   /v1/sweeps             submit a sweep (reliability | power |
//	                              faultmap | ecc-study)
//	GET    /v1/sweeps/{id}        job status (+ result when done)
//	GET    /v1/sweeps/{id}/result raw result payload, byte-stable
//	GET    /v1/sweeps/{id}/events NDJSON stream of SweepProgress events
//	DELETE /v1/sweeps/{id}        cancel (context cancellation mid-sweep)
//	GET    /healthz               liveness + queue/cache statistics
//
// Determinism is the service's core contract, inherited from the
// simulation underneath: a sweep's outcome is a pure function of the
// normalized request (every random draw is keyed on the device seed,
// address, repetition and voltage — never on evaluation order, wall
// clock, or worker count). That purity is what makes results cacheable
// at all. Each submitted request is normalized (defaults filled) and
// condensed into a cache key — the fault-model config fingerprint
// (seed × geometry × temperature × per-PC profiles, see
// faults.Config.Fingerprint) hashed together with the voltage grid,
// pattern set, port set, batch size, sampling mode and sweep kind.
// Identical requests, whether concurrent or repeated, coalesce onto a
// single computation; completed payloads are retained in an LRU so a
// repeat after job eviction is still served without recomputation, and
// the response body is byte-identical to the first run's. The fleet
// size (Workers) is deliberately excluded from the key: results are
// bit-identical at every worker count, so requests differing only in
// parallelism hints share one cache entry.
package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"hbmvolt/internal/board"
	"hbmvolt/internal/core"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
	"hbmvolt/internal/report"
)

// Sweep kinds. Reliability and power are Monte-Carlo/measurement sweeps
// over a board instance; faultmap and ecc-study are analytic studies of
// the full-capacity device (the Fig. 4/5/6 atlas and the SEC-DED
// mitigation ablation).
const (
	KindReliability = "reliability"
	KindPower       = "power"
	KindFaultMap    = "faultmap"
	KindECCStudy    = "ecc-study"
)

// Kinds lists every sweep kind the service executes, in documentation
// order.
var Kinds = []string{KindReliability, KindPower, KindFaultMap, KindECCStudy}

// SweepRequest is the POST /v1/sweeps body. The zero value of every
// optional field selects the paper's methodology default.
type SweepRequest struct {
	// Kind is "reliability" (Algorithm 1), "power" (Fig. 2/3),
	// "faultmap" (the Fig. 4/5/6 atlas) or "ecc-study" (SEC-DED
	// ablation).
	Kind string `json:"kind"`
	// Seed selects the device instance (0 = the calibrated paper board).
	Seed uint64 `json:"seed,omitempty"`
	// Scale divides pseudo-channel capacity (power of two; 0 → 1024, the
	// 8 MB test device; 1 = the full 8 GB board).
	Scale uint64 `json:"scale,omitempty"`
	// Exact selects the bit-exact per-cell fault sampler instead of the
	// default sparse enumeration ("mode" in the cache key).
	Exact bool `json:"exact,omitempty"`
	// Shared evaluates every pattern of a voltage point from one
	// pattern-agnostic stuck-cell enumeration, memoized process-wide by
	// (fingerprint × voltage) sub-key — the sweep planner's
	// computation-sharing mode (reliability only). On the sparse sampler
	// shared sweeps are a distinct (statistically identical, separately
	// golden-pinned) realization, so Shared is part of the cache key; on
	// the bit-exact sampler results are bit-identical to the legacy path
	// but the key still separates the two modes for uniformity.
	Shared bool `json:"shared,omitempty"`
	// Grid is the voltage ladder, descending; nil → the paper's
	// 1.20 V → 0.81 V sweep.
	Grid []float64 `json:"grid,omitempty"`
	// Patterns names the test patterns (reliability; see pattern.ByName);
	// nil → {all1, all0}.
	Patterns []string `json:"patterns,omitempty"`
	// Batch is the repetition count (reliability; 0 → 5).
	Batch int `json:"batch,omitempty"`
	// Ports restricts the reliability test to these AXI ports; nil → all 32.
	Ports []int `json:"ports,omitempty"`
	// PortCounts are the power sweep's bandwidth operating points;
	// nil → {0, 8, 16, 24, 32}.
	PortCounts []int `json:"port_counts,omitempty"`
	// Samples is the power sweep's averaged monitor reads per point (0 → 5).
	Samples int `json:"samples,omitempty"`
	// Noise is the relative measurement noise of the monitor chain
	// (power sweeps only; 0 = exact). Noise draws are keyed on the seed
	// and sample counter, so noisy sweeps stay deterministic.
	Noise float64 `json:"noise,omitempty"`
	// Workers is the board-fleet size for sharded reliability sweeps
	// (0 → the server default). A parallelism hint only: results are
	// bit-identical at every worker count, so Workers is excluded from
	// the cache key.
	Workers int `json:"workers,omitempty"`
}

// RequestError marks a client-side (4xx) validation failure, as opposed
// to an internal sweep failure.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// maxGridPoints bounds a single request's voltage grid; the paper's
// full ladder is 40 points, so the cap only rejects abuse.
const maxGridPoints = 512

// maxBatch bounds the repetition count (the paper's methodology uses
// 130).
const maxBatch = 1 << 12

// Normalize fills methodology defaults in place and validates every
// field, so that two requests meaning the same sweep become structurally
// identical before keying. Violations return a *RequestError (HTTP 400).
func (r *SweepRequest) Normalize() error {
	switch r.Kind {
	case KindReliability, KindPower, KindFaultMap, KindECCStudy:
	case "":
		return badRequest("missing kind: want one of %q", Kinds)
	default:
		return badRequest("unknown kind %q: want one of %q", r.Kind, Kinds)
	}
	if r.Kind == KindFaultMap || r.Kind == KindECCStudy {
		// The analytic studies always describe the full-capacity device;
		// a scale would fragment the cache without changing the result.
		if r.Scale > 1 {
			return badRequest("scale applies to kind %q or %q only", KindReliability, KindPower)
		}
		r.Scale = 1
	}
	if r.Scale == 0 {
		r.Scale = 1024
	}
	if r.Scale&(r.Scale-1) != 0 {
		return badRequest("scale %d: must be a power of two", r.Scale)
	}
	if _, err := hbm.Scaled(r.Scale); err != nil {
		return badRequest("scale %d: %v", r.Scale, err)
	}
	// Empty slices normalize exactly like absent ones: a "[]" typo must
	// not validate into a sweep that tests nothing (and then cache that
	// contentless payload as a success).
	if len(r.Grid) == 0 {
		r.Grid = faults.PaperGrid()
	}
	if len(r.Grid) > maxGridPoints {
		return badRequest("grid has %d points: max %d", len(r.Grid), maxGridPoints)
	}
	for _, v := range r.Grid {
		if v < 0.5 || v > 1.5 {
			return badRequest("grid voltage %v out of [0.5, 1.5]", v)
		}
	}
	if r.Workers < 0 || r.Workers > 256 {
		return badRequest("workers %d out of [0, 256]", r.Workers)
	}
	if r.Noise != 0 && r.Kind != KindPower {
		return badRequest("noise applies to kind %q only", KindPower)
	}
	if r.Shared && r.Kind != KindReliability {
		return badRequest("shared applies to kind %q only", KindReliability)
	}
	if r.Noise < 0 || r.Noise > 0.5 {
		return badRequest("noise %v out of [0, 0.5]", r.Noise)
	}
	switch r.Kind {
	case KindReliability:
		if len(r.PortCounts) != 0 || r.Samples != 0 {
			return badRequest("port_counts/samples apply to kind %q only", KindPower)
		}
		if r.Batch == 0 {
			r.Batch = 5
		}
		if r.Batch < 0 || r.Batch > maxBatch {
			return badRequest("batch %d out of [1, %d]", r.Batch, maxBatch)
		}
		if len(r.Patterns) == 0 {
			r.Patterns = []string{"all1", "all0"}
		}
		for _, name := range r.Patterns {
			if _, err := pattern.ByName(name); err != nil {
				return badRequest("%v", err)
			}
		}
		if len(r.Ports) == 0 {
			r.Ports = nil
			for p := 0; p < hbm.MaxPorts; p++ {
				r.Ports = append(r.Ports, p)
			}
		}
		for _, p := range r.Ports {
			if p < 0 || p >= hbm.MaxPorts {
				return badRequest("port %d out of [0, %d)", p, hbm.MaxPorts)
			}
		}
	case KindPower:
		// Reliability-only fields are rejected, not ignored: a stray
		// "batch" (or an "exact" that cannot change a power measurement)
		// would otherwise fold into the cache key and fragment identical
		// power sweeps into distinct entries.
		if len(r.Patterns) != 0 || len(r.Ports) != 0 || r.Batch != 0 || r.Exact {
			return badRequest("patterns/ports/batch/exact apply to kind %q only", KindReliability)
		}
		if len(r.PortCounts) == 0 {
			r.PortCounts = []int{0, 8, 16, 24, 32}
		}
		for _, n := range r.PortCounts {
			if n < 0 || n > hbm.MaxPorts {
				return badRequest("port count %d out of [0, %d]", n, hbm.MaxPorts)
			}
		}
		if r.Samples == 0 {
			r.Samples = 5
		}
		if r.Samples < 0 || r.Samples > 1000 {
			return badRequest("samples %d out of [1, 1000]", r.Samples)
		}
	case KindFaultMap, KindECCStudy:
		// Only the device instance and the voltage grid parameterize the
		// analytic studies; every Monte-Carlo knob is rejected, not
		// ignored, so a stray field can't fragment the cache.
		if len(r.Patterns) != 0 || len(r.Ports) != 0 || r.Batch != 0 ||
			len(r.PortCounts) != 0 || r.Samples != 0 || r.Exact {
			return badRequest("patterns/ports/batch/port_counts/samples/exact do not apply to kind %q", r.Kind)
		}
	}
	return nil
}

// CacheKey condenses a normalized request into the result-cache key:
// the fault-model fingerprint the request's board would carry (computed
// without building the board) mixed with a canonical serialization of
// every result-affecting field. Workers is zeroed first — parallelism
// never changes results.
func (r SweepRequest) CacheKey() (uint64, error) {
	// board.FaultConfig is the same constructor the job's board.New will
	// run, so the fingerprint here is exactly the one the board's model
	// memoizes its analytic rates under.
	fcfg, err := board.FaultConfig(board.Config{Seed: r.Seed, Scale: r.Scale})
	if err != nil {
		return 0, err
	}
	fp := fcfg.Fingerprint()

	r.Workers = 0
	blob, err := report.Marshal(r)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var fpb [8]byte
	binary.LittleEndian.PutUint64(fpb[:], fp)
	h.Write(fpb[:])
	h.Write(blob)
	return h.Sum64(), nil
}

// Envelope is the cached result payload: self-describing, free of
// per-job identifiers and timestamps, so identical requests always
// yield byte-identical bodies. Exactly one result field is set,
// matching Kind.
type Envelope struct {
	Kind string `json:"kind"`
	// Key is the request's cache key (hex), identifying the request
	// class the payload answers.
	Key string `json:"key"`
	// Request echoes the normalized request (Workers stripped).
	Request     SweepRequest            `json:"request"`
	Reliability *core.ReliabilityResult `json:"reliability,omitempty"`
	Power       *core.PowerSweepResult  `json:"power,omitempty"`
	FaultMap    *core.FaultMapStudy     `json:"faultmap,omitempty"`
	ECC         *core.ECCStudy          `json:"ecc,omitempty"`
}

// DecodeResult parses a result payload (the /v1/sweeps/{id}/result
// body) back into its typed envelope.
func DecodeResult(payload []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("service: decoding result payload: %w", err)
	}
	return &env, nil
}

// FormatKey renders a cache key the way the API does (16 hex digits).
func FormatKey(key uint64) string { return fmt.Sprintf("%016x", key) }

func formatKey(key uint64) string { return FormatKey(key) }
