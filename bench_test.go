package hbmvolt

// Benchmark harness: one benchmark per paper table/figure. Each bench
// regenerates its figure end to end through the simulated platform and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduction numbers
// next to the timing. EXPERIMENTS.md records paper-vs-measured values.

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"

	"hbmvolt/internal/axi"
	"hbmvolt/internal/board"
	"hbmvolt/internal/core"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/pattern"
	"hbmvolt/internal/service"
)

// BenchmarkFig2PowerSweep regenerates Fig. 2 (normalized power vs
// voltage per bandwidth) and reports the two headline savings factors.
func BenchmarkFig2PowerSweep(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var res *PowerSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sys.RenderFig2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	s95, err := res.SavingsAt(0.95, 32)
	if err != nil {
		b.Fatal(err)
	}
	s85, err := res.SavingsAt(0.85, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s95, "savings@0.95V")
	b.ReportMetric(s85, "savings@0.85V(paper:2.3)")
}

// BenchmarkFig3AlphaCLF regenerates Fig. 3 and reports the active-
// capacitance drop at 0.85 V.
func BenchmarkFig3AlphaCLF(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var res *PowerSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sys.RenderFig3(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	pt := res.At(0.85, 32)
	if pt == nil {
		b.Fatal("missing 0.85V point")
	}
	b.ReportMetric(pt.NormAlphaCLF, "alphaCLF@0.85V(paper:0.86)")
}

// BenchmarkFig4StackCurves regenerates Fig. 4 (faulty fraction per
// stack) over the full 8 GB device and reports the HBM1/HBM0 gap.
func BenchmarkFig4StackCurves(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var curves []core.StackCurve
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = sys.RenderFig4(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Average HBM1/HBM0 ratio over the unsafe region (paper: ~1.13).
	var sum float64
	var n int
	for i, v := range curves[0].Grid {
		if v > 0.97 || v < 0.84 {
			continue
		}
		if f0 := curves[0].Fractions[i]; f0 > 0 {
			sum += curves[1].Fractions[i] / f0
			n++
		}
	}
	if n == 0 {
		// No unsafe-region grid point with a nonzero HBM0 fraction (e.g.
		// a custom grid or profile set): the ratio is undefined, not NaN.
		b.Skip("no nonzero HBM0 fractions in the unsafe region")
	}
	b.ReportMetric(sum/float64(n), "HBM1/HBM0(paper:1.13)")
}

// BenchmarkFig5FaultAtlas regenerates the per-PC fault atlas for both
// patterns and reports the polarity asymmetry.
func BenchmarkFig5FaultAtlas(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	for i := 0; i < b.N; i++ {
		if err := sys.RenderFig5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	fm := sys.Board.Faults
	var r01, r10 float64
	for _, v := range faults.VoltageGrid(0.94, 0.88) {
		for s := 0; s < faults.NumStacks; s++ {
			r01 += fm.StackFaultFraction(s, v, faults.ZeroToOne)
			r10 += fm.StackFaultFraction(s, v, faults.OneToZero)
		}
	}
	b.ReportMetric(r01/r10, "0to1/1to0(paper:1.21)")
}

// BenchmarkFig6UsablePCs regenerates the trade-off curves and reports
// the two anchors of §III-C.
func BenchmarkFig6UsablePCs(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	for i := 0; i < b.N; i++ {
		if err := sys.RenderFig6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sys.UsablePCs(0.95, 0)), "faultfreePCs@0.95V(paper:7)")
	b.ReportMetric(float64(sys.UsablePCs(0.90, 1e-6)), "PCs@1e-6@0.90V(paper:16)")
}

// BenchmarkAlgorithm1 runs the paper's reliability tester (Monte-Carlo
// path) on one sensitive pseudo channel of a scaled board.
func BenchmarkAlgorithm1(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{Scale: 256})
	cfg := ReliabilityConfig{
		Ports:     []PortID{18},
		Patterns:  []Pattern{pattern.AllOnes()},
		Grid:      []float64{0.89},
		BatchSize: 3,
	}
	b.ResetTimer()
	var res *ReliabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sys.RunReliability(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].FaultRate(), "bitFaultRate@0.89V")
}

// BenchmarkAlgorithm1FullPC measures one full fill/check pass of a
// whole 8M-word (256 MB) pseudo channel at 0.90 V — the paper's real
// per-PC memSize — through three data paths:
//
//   - wordwise: the per-word reference path (one device access, one
//     timing step, one fault lookup per word);
//   - bulk-exact: the ranged path over the bit-exact fault model
//     (identical statistics, O(cluster words) fault scanning);
//   - bulk-sparse: the ranged path over the sparse fault enumeration
//     (O(#faults); the cmd/hbmvolt default).
//
// The words/sec metric is the headline: bulk-sparse must beat wordwise
// by orders of magnitude for full-scale sweeps to be routine.
func BenchmarkAlgorithm1FullPC(b *testing.B) {
	b.ReportAllocs()
	const port = 18 // sensitive PC: plenty of faults to enumerate
	modes := []struct {
		name     string
		wordwise bool
		sparse   bool
	}{
		{"wordwise", true, false},
		{"bulk-exact", false, false},
		{"bulk-sparse", false, true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			brd := board.MustNew(board.Config{Scale: 1, SparseFaults: mode.sparse})
			brd.Device.SetVoltage(0.90)
			tg := brd.TGs[port]
			tg.Wordwise = mode.wordwise
			words := brd.Org.WordsPerPC
			prog := axi.FillCheckProgram(pattern.AllOnes(), 0, words)
			b.ResetTimer()
			var st axi.Stats
			for i := 0; i < b.N; i++ {
				if err := tg.Reset(); err != nil {
					b.Fatal(err)
				}
				var err error
				st, err = tg.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(2*words)*float64(b.N)/b.Elapsed().Seconds(), "words/sec")
			b.ReportMetric(float64(st.Flips.Total()), "flips")
		})
	}
}

// BenchmarkReliabilitySweep measures the full-grid Algorithm 1 sweep
// (1.20V→0.81V, both patterns, every port, sparse sampler) under the
// sweep scheduler at increasing board-fleet sizes. Results are
// bit-identical at every worker count (pinned by the determinism test
// suite); only wall clock changes, so points/sec across the j=N
// sub-benchmarks is the scaling curve. CI emits these lines as
// BENCH_sweep.json so the perf trajectory is tracked per commit.
func BenchmarkReliabilitySweep(b *testing.B) {
	b.ReportAllocs()
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			sys := MustNew(Config{Scale: 8, SparseFaults: true})
			cfg := ReliabilityConfig{BatchSize: 2, Workers: j}
			b.ResetTimer()
			var res *ReliabilityResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = sys.RunReliability(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Points))*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
			b.ReportMetric(float64(j), "workers")
		})
	}
}

// benchSweepRequest is the small reliability sweep the service
// benchmarks submit: one sensitive port, one pattern, two grid points.
func benchSweepRequest(seed uint64) service.SweepRequest {
	return service.SweepRequest{
		Kind:     service.KindReliability,
		Seed:     seed,
		Scale:    1024,
		Grid:     []float64{0.90, 0.89},
		Patterns: []string{"all1"},
		Ports:    []int{18},
		Batch:    2,
	}
}

// BenchmarkServiceSubmit measures the sweep service end to end over
// real HTTP: submit a small uncached reliability sweep, follow its
// event stream to completion, fetch the result. Every iteration uses a
// fresh device seed, so this is the cache-miss path — board build,
// scheduler run, payload marshal and transport included.
func BenchmarkServiceSubmit(b *testing.B) {
	b.ReportAllocs()
	srv := service.New(service.Config{Workers: 1, CacheEntries: 4, MaxJobs: 64})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	c := service.NewClient(ts.URL)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := c.Submit(ctx, benchSweepRequest(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if state, err := c.Wait(ctx, sub.ID); err != nil || state != service.StateDone {
			b.Fatalf("state=%v err=%v", state, err)
		}
		if _, err := c.Result(ctx, sub.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sweeps/sec")
}

// BenchmarkServiceCacheHit measures the coalesced repeat path: the
// sweep ran once at setup, so every iteration is submit + result over
// HTTP served entirely from the fingerprint-keyed cache — the number
// that bounds how fast the daemon answers the many-identical-consumers
// workload.
func BenchmarkServiceCacheHit(b *testing.B) {
	b.ReportAllocs()
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	c := service.NewClient(ts.URL)
	ctx := context.Background()
	warm, err := c.Submit(ctx, benchSweepRequest(1))
	if err != nil {
		b.Fatal(err)
	}
	if state, err := c.Wait(ctx, warm.ID); err != nil || state != service.StateDone {
		b.Fatalf("state=%v err=%v", state, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := c.Submit(ctx, benchSweepRequest(1))
		if err != nil {
			b.Fatal(err)
		}
		if !sub.CacheHit {
			b.Fatalf("iteration %d missed the cache: %+v", i, sub)
		}
		if _, err := c.Result(ctx, sub.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "hits/sec")
	if runs := srv.Manager().Runs(); runs != 1 {
		b.Fatalf("cache-hit benchmark recomputed: %d runs", runs)
	}
}

// BenchmarkFigureSuiteAtlas regenerates every analytic figure twice per
// iteration against one system: the second pass is served entirely from
// the memoized rate atlas, so the per-iteration time (after the first)
// is the marginal cost of rendering, not of recomputing expectations.
func BenchmarkFigureSuiteAtlas(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	render := func() {
		if _, err := sys.RenderFig4(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := sys.RenderFig5(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := sys.RenderFig6(io.Discard); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RenderCapacityStudy(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < b.N; i++ {
		render()
		render()
	}
}

// BenchmarkGuardband locates Vmin analytically (the §III-B landmark).
func BenchmarkGuardband(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var g Guardband
	for i := 0; i < b.N; i++ {
		var err error
		g, err = sys.Guardband()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(g.VMin, "Vmin(paper:0.98)")
	b.ReportMetric(g.Fraction*100, "guardband%(paper:19)")
}

// BenchmarkECCStudy runs the SEC-DED mitigation ablation (extension
// experiment) and reports the extended safe voltage.
func BenchmarkECCStudy(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var study *ECCStudy
	for i := 0; i < b.N; i++ {
		var err error
		study, err = sys.RunECCStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(study.VMinECC, "VminECC")
	b.ReportMetric(study.ExtraSafeSavings, "safeSavingsECC")
}

// BenchmarkPlanner measures a three-factor trade-off query.
func BenchmarkPlanner(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Plan(1e-6, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPMBusVoltageSet measures the full PMBus voltage-programming
// round trip (encode, PEC, regulator, rail propagation to both stacks).
func BenchmarkPMBusVoltageSet(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	for i := 0; i < b.N; i++ {
		v := 0.90 + float64(i%4)*0.01
		if err := sys.SetVoltage(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerMeasurement measures the INA226 measurement pipeline
// (rail sampling, averaging, register quantization, decode).
func BenchmarkPowerMeasurement(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	for i := 0; i < b.N; i++ {
		if _, err := sys.PowerWatts(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClusterFraction quantifies design choice #2 of
// DESIGN.md: how cluster concentration (vs uniform spread) changes the
// ECC failure onset, holding the PC-average fault rate fixed.
func BenchmarkAblationClusterFraction(b *testing.B) {
	b.ReportAllocs()
	var vmins [2]float64
	for i, frac := range []float64{0.08, 1.0} {
		cfg := faults.DefaultConfig()
		for p := range cfg.Profiles {
			cfg.Profiles[p].ClusterFraction = frac
		}
		fm, err := faults.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var study *core.ECCStudy
		for n := 0; n < b.N; n++ {
			study, err = core.RunECCStudy(fm, nil)
			if err != nil {
				b.Fatal(err)
			}
		}
		vmins[i] = study.VMinECC
	}
	b.ReportMetric(vmins[0], "VminECC@clustered")
	b.ReportMetric(vmins[1], "VminECC@uniform")
}

// BenchmarkAblationSwitchNetwork quantifies the cost of enabling the
// AXI switching network, which the paper disables (§II-C): aggregate
// bandwidth with and without it.
func BenchmarkAblationSwitchNetwork(b *testing.B) {
	b.ReportAllocs()
	direct := MustNew(Config{})
	switched := MustNew(Config{SwitchEnabled: true})
	var bwD, bwS float64
	for i := 0; i < b.N; i++ {
		bwD = direct.Board.AggregateBandwidthGBs()
		bwS = switched.Board.AggregateBandwidthGBs()
	}
	b.ReportMetric(bwD, "GB/s@direct(paper:310)")
	b.ReportMetric(bwS, "GB/s@switched")
}

// BenchmarkTempStudy sweeps operating temperature (extension study) and
// reports the guardband erosion across the deployment envelope.
func BenchmarkTempStudy(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var study *TempStudy
	for i := 0; i < b.N; i++ {
		var err error
		study, err = sys.RunTempStudy(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(study.Points[0].VMin, "Vmin@25C")
	b.ReportMetric(study.Points[len(study.Points)-1].VMin, "Vmin@55C")
}

// BenchmarkCapacityStudy compares allocation granularities (extension
// study) and reports the recovery at 0.92 V.
func BenchmarkCapacityStudy(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var study *CapacityStudy
	for i := 0; i < b.N; i++ {
		var err error
		study, err = sys.RunCapacityStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	pt := study.At(0.92)
	b.ReportMetric(pt.PCGranularBytes/(1<<30), "PCgranularGB@0.92V")
	b.ReportMetric(pt.RowGranularBytes/(1<<30), "rowGranularGB@0.92V")
}

// BenchmarkBandwidthStudy characterizes the workload suite through the
// DRAM timing model and reports the sequential/random spread.
func BenchmarkBandwidthStudy(b *testing.B) {
	b.ReportAllocs()
	sys := MustNew(Config{})
	var results []WorkloadResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = sys.RunBandwidthStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(results[0].BandwidthGBs, "seqGB/s")
	b.ReportMetric(results[len(results)-1].BandwidthGBs, "randGB/s")
}
