package campaign

import (
	"context"
	"testing"
)

// BenchmarkCampaignExpand measures spec normalization plus cross-product
// expansion of the built-in paper-repro campaign — the pure declarative
// overhead a campaign adds before any sweep runs.
func BenchmarkCampaignExpand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := PaperRepro(true)
		if err := spec.Normalize(); err != nil {
			b.Fatal(err)
		}
		cells, err := spec.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkCampaignRun measures end-to-end campaign execution of a
// small mixed campaign (reliability + analytic scenarios) on a private
// manager, including manifest assembly.
func BenchmarkCampaignRun(b *testing.B) {
	spec := Spec{
		Name: "bench",
		Scenarios: []Scenario{
			{
				Name:  "rel",
				Kind:  "reliability",
				Grid:  []float64{0.90, 0.89},
				Ports: []int{18},
				Batch: 2,
			},
			{Name: "ecc", Kind: "ecc-study", Grid: []float64{0.95, 0.90}},
		},
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(ctx, spec, Options{Jobs: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Manifest.Cells != 2 {
			b.Fatalf("cells = %d", res.Manifest.Cells)
		}
	}
}
