package axi

import (
	"math"
	"strings"
	"testing"

	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

func testDevice(t testing.TB, scale uint64) *hbm.Device {
	t.Helper()
	org, err := hbm.Scaled(scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.DefaultConfig()
	cfg.Geometry = faults.Geometry{WordsPerPC: org.WordsPerPC, WordsPerRow: org.WordsPerRow}
	fm, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hbm.NewDevice(org, fm)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func testPort(t testing.TB, dev *hbm.Device, id hbm.PortID) *Port {
	t.Helper()
	p, err := NewPort(id, dev, nil, PortConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPortValidation(t *testing.T) {
	dev := testDevice(t, 1024)
	if _, err := NewPort(32, dev, nil, PortConfig{}); err == nil {
		t.Fatal("port 32 accepted")
	}
	if _, err := NewPort(-1, dev, nil, PortConfig{}); err == nil {
		t.Fatal("negative port accepted")
	}
	if _, err := NewPort(0, dev, nil, PortConfig{ClockMHz: -5}); err == nil {
		t.Fatal("negative clock accepted")
	}
}

func TestPortRoundTrip(t *testing.T) {
	dev := testDevice(t, 1024)
	p := testPort(t, dev, 7)
	pat := pattern.Random(1)
	for a := uint64(0); a < 128; a++ {
		if err := p.WriteWord(a, pat.Word(a)); err != nil {
			t.Fatal(err)
		}
	}
	for a := uint64(0); a < 128; a++ {
		w, err := p.ReadWord(a)
		if err != nil {
			t.Fatal(err)
		}
		if w != pat.Word(a) {
			t.Fatalf("mismatch at %d", a)
		}
	}
}

func TestPortIsolation(t *testing.T) {
	// Ports write to distinct pseudo channels: no cross-talk.
	dev := testDevice(t, 1024)
	p0 := testPort(t, dev, 0)
	p1 := testPort(t, dev, 1)
	if err := p0.WriteWord(5, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}
	w, err := p1.ReadWord(5)
	if err != nil {
		t.Fatal(err)
	}
	if w != pattern.AllZerosWord {
		t.Fatal("write on port 0 visible on port 1")
	}
}

func TestPortDisable(t *testing.T) {
	dev := testDevice(t, 1024)
	p := testPort(t, dev, 0)
	p.SetEnabled(false)
	if err := p.WriteWord(0, pattern.AllOnesWord); err == nil {
		t.Fatal("disabled port accepted write")
	}
	if _, err := p.ReadWord(0); err == nil {
		t.Fatal("disabled port accepted read")
	}
	p.SetEnabled(true)
	if err := p.WriteWord(0, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateBandwidthMatchesPaper(t *testing.T) {
	dev := testDevice(t, 1024)
	total := 0.0
	for id := hbm.PortID(0); id < 32; id++ {
		p := testPort(t, dev, id)
		total += p.EffectiveBandwidthGBs()
	}
	if math.Abs(total-310) > 2 {
		t.Fatalf("aggregate port bandwidth = %v GB/s, want ≈310 (paper)", total)
	}
}

func TestSwitchDisabledIdentity(t *testing.T) {
	sw := NewSwitch()
	for i := hbm.PortID(0); i < 32; i++ {
		if sw.Route(i) != i {
			t.Fatal("disabled switch does not route identity")
		}
	}
	if err := sw.SetRoute(0, 5); err == nil {
		t.Fatal("SetRoute on disabled switch accepted")
	}
	if sw.Throughput(100) != 100 {
		t.Fatal("disabled switch derated throughput")
	}
}

func TestSwitchRouting(t *testing.T) {
	dev := testDevice(t, 1024)
	sw := NewSwitch()
	sw.Enabled = true
	if err := sw.SetRoute(0, 17); err != nil {
		t.Fatal(err)
	}
	p0, err := NewPort(0, dev, sw, PortConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p0.WriteWord(9, pattern.AllOnesWord); err != nil {
		t.Fatal(err)
	}
	// The write must land in stack 1, pc 1 (global PC 17).
	w, err := dev.Stacks[1].ReadWord(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w != pattern.AllOnesWord {
		t.Fatal("routed write did not reach PC17")
	}
	if sw.Throughput(100) >= 100 {
		t.Fatal("enabled switch must cost bandwidth")
	}
	if err := sw.SetRoute(0, 99); err == nil {
		t.Fatal("out-of-range route accepted")
	}
}

func TestTrafficGenFillCheckCleanAtNominal(t *testing.T) {
	dev := testDevice(t, 1024)
	tg := NewTrafficGen(testPort(t, dev, 3))
	st, err := tg.Run(FillCheckProgram(pattern.AllOnes(), 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if st.WordsWritten != 1024 || st.WordsRead != 1024 {
		t.Fatalf("words = %d/%d", st.WordsWritten, st.WordsRead)
	}
	if st.Flips.Total() != 0 || st.FaultyWords != 0 {
		t.Fatalf("faults at nominal voltage: %+v", st.Flips)
	}
	if st.ElapsedSeconds() <= 0 {
		t.Fatal("no elapsed time accounted")
	}
	if st.BandwidthGBs() <= 0 {
		t.Fatal("no bandwidth computed")
	}
}

func TestTrafficGenSeesUndervoltFaults(t *testing.T) {
	dev := testDevice(t, 64)
	dev.SetVoltage(0.88)
	tg := NewTrafficGen(testPort(t, dev, 4)) // sensitive PC4
	st, err := tg.Run(FillCheckProgram(pattern.AllOnes(), 0, dev.Org.WordsPerPC))
	if err != nil {
		t.Fatal(err)
	}
	if st.Flips.OneToZero == 0 {
		t.Fatal("no 1→0 flips on sensitive PC at 0.88V")
	}
	if st.Flips.ZeroToOne != 0 {
		t.Fatal("0→1 flips under all-1s pattern are impossible")
	}
	if st.FaultyWords == 0 || st.FaultyWords > st.WordsRead {
		t.Fatalf("faulty words = %d", st.FaultyWords)
	}
	if st.FaultBitRate() <= 0 {
		t.Fatal("fault bit rate not computed")
	}
}

func TestTrafficGenResetClearsStats(t *testing.T) {
	dev := testDevice(t, 1024)
	tg := NewTrafficGen(testPort(t, dev, 0))
	if _, err := tg.Run(FillCheckProgram(pattern.AllZeros(), 0, 64)); err != nil {
		t.Fatal(err)
	}
	if err := tg.Reset(); err != nil {
		t.Fatal(err)
	}
	if tg.Stats() != (Stats{}) {
		t.Fatalf("stats after reset: %+v", tg.Stats())
	}
}

func TestTrafficGenCrashedStackError(t *testing.T) {
	dev := testDevice(t, 1024)
	dev.SetVoltage(0.79) // below V_critical
	tg := NewTrafficGen(testPort(t, dev, 0))
	_, err := tg.Run(FillCheckProgram(pattern.AllOnes(), 0, 16))
	if err == nil {
		t.Fatal("traffic on crashed stack succeeded")
	}
	if !strings.Contains(err.Error(), "crash") {
		t.Fatalf("error does not mention crash: %v", err)
	}
}

func TestTrafficGenProgramValidation(t *testing.T) {
	dev := testDevice(t, 1024)
	tg := NewTrafficGen(testPort(t, dev, 0))
	if _, err := tg.Run([]Macro{{Op: OpWriteSeq, Count: 4}}); err == nil {
		t.Fatal("write without pattern accepted")
	}
	if _, err := tg.Run([]Macro{{Op: OpReadCheck, Count: 4}}); err == nil {
		t.Fatal("check without pattern accepted")
	}
	if _, err := tg.Run([]Macro{{Op: MacroOp(99)}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := tg.Run([]Macro{{Op: OpNop}}); err != nil {
		t.Fatal("nop rejected")
	}
}

func TestStatsAddAndRates(t *testing.T) {
	var s Stats
	s.Add(Stats{WordsWritten: 10, WordsRead: 20, FaultyWords: 2,
		Flips: pattern.Flips{OneToZero: 3, ZeroToOne: 1}, AXISeconds: 1, DRAMSeconds: 0.5})
	s.Add(Stats{WordsRead: 20, AXISeconds: 1, DRAMSeconds: 3})
	if s.WordsRead != 40 || s.WordsWritten != 10 {
		t.Fatalf("add broken: %+v", s)
	}
	if s.ElapsedSeconds() != 3.5 {
		t.Fatalf("elapsed = %v, want max(axi,dram)=3.5", s.ElapsedSeconds())
	}
	wantRate := 4.0 / (40 * 256)
	if math.Abs(s.FaultBitRate()-wantRate) > 1e-12 {
		t.Fatalf("fault rate = %v", s.FaultBitRate())
	}
}

func TestMacroOpString(t *testing.T) {
	ops := map[MacroOp]string{
		OpWriteSeq: "write-seq", OpReadCheck: "read-check",
		OpReadSeq: "read-seq", OpNop: "nop",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("%d.String() = %q", op, op.String())
		}
	}
}

func TestReadSeqCountsNoFaults(t *testing.T) {
	dev := testDevice(t, 64)
	dev.SetVoltage(0.88)
	tg := NewTrafficGen(testPort(t, dev, 4))
	st, err := tg.Run([]Macro{{Op: OpReadSeq, Start: 0, Count: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Flips.Total() != 0 {
		t.Fatal("read-seq must not check")
	}
	if st.WordsRead != 4096 {
		t.Fatalf("words read = %d", st.WordsRead)
	}
}

func BenchmarkTrafficGenFillCheck(b *testing.B) {
	dev := testDevice(b, 1024)
	dev.SetVoltage(0.90)
	tg := NewTrafficGen(testPort(b, dev, 4))
	prog := FillCheckProgram(pattern.AllOnes(), 0, dev.Org.WordsPerPC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tg.Reset(); err != nil {
			b.Fatal(err)
		}
		if _, err := tg.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}
