package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"hbmvolt/internal/board"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

// shardGrid spans the guardband edge, the exponential fault region, the
// bulk collapse, and a sub-critical crash point, so sharded runs must
// reproduce clean points, fault counts and crash markers alike. One
// explicit point per regime keeps the bit-exact cases affordable.
func shardGrid() []float64 {
	return []float64{0.99, 0.95, 0.91, 0.89, 0.87, 0.85, 0.80}
}

// runSweepWorkers runs the full-ladder sweep with the given worker count
// on a fresh board of the given config. A port subset spanning both
// stacks and the sensitive PCs keeps the bit-exact collapse points
// affordable; port independence is covered by TestRunPortsWorkerPool.
func runSweepWorkers(t *testing.T, bcfg board.Config, workers int, pats []pattern.Pattern) *ReliabilityResult {
	t.Helper()
	res, err := RunReliability(ReliabilityConfig{
		Board:     testBoard(t, bcfg),
		Ports:     []hbm.PortID{0, 4, 5, 18, 19, 31},
		Patterns:  pats,
		Grid:      shardGrid(),
		BatchSize: 3,
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedSweepBitIdentical is the scheduler's core contract: the
// sharded sweep must equal the sequential sweep bit for bit — every
// voltage point, observation, flip count, batch summary and crash marker
// — at every worker count, on both the bit-exact and the sparse fault
// model, for both patterns together and each alone.
func TestShardedSweepBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		bcfg board.Config
		pats []pattern.Pattern
	}{
		{"exact/both-patterns", board.Config{Scale: 1024, Seed: 3}, nil},
		{"sparse/both-patterns", board.Config{Scale: 1024, Seed: 3, SparseFaults: true}, nil},
		{"exact/all1", board.Config{Scale: 1024, Seed: 7}, []pattern.Pattern{pattern.AllOnes()}},
		{"exact/all0", board.Config{Scale: 1024, Seed: 7}, []pattern.Pattern{pattern.AllZeros()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq := runSweepWorkers(t, c.bcfg, 1, c.pats)
			crashes := 0
			for _, pt := range seq.Points {
				if pt.Crashed {
					crashes++
				}
			}
			if crashes == 0 {
				t.Fatal("grid never crashed the board; crash-marker equality is vacuous")
			}
			for _, workers := range []int{2, 8} {
				sharded := runSweepWorkers(t, c.bcfg, workers, c.pats)
				if !reflect.DeepEqual(seq, sharded) {
					for i := range seq.Points {
						if !reflect.DeepEqual(seq.Points[i], sharded.Points[i]) {
							t.Fatalf("workers=%d: point %d (%vV) differs:\nseq: %+v\nshr: %+v",
								workers, i, seq.Points[i].Volts, seq.Points[i], sharded.Points[i])
						}
					}
					t.Fatalf("workers=%d: results differ outside Points", workers)
				}
			}
		})
	}
}

// nearVNom reports whether a PMBus readback equals V_nom up to Linear16
// quantization (2^-12 V exponent).
func nearVNom(v float64) bool {
	return v > faults.VNom-1.0/4096 && v < faults.VNom+1.0/4096
}

// TestShardedSweepRestoresNominal: every fleet board — the caller's
// template included — must end at nominal voltage, and so must the
// sequential path on error exits (the defer-restore contract).
func TestShardedSweepRestoresNominal(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	_, err := RunReliability(ReliabilityConfig{
		Board:     b,
		Ports:     []hbm.PortID{0, 1},
		Grid:      shardGrid(),
		BatchSize: 2,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.HBMVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if !nearVNom(v) {
		t.Fatalf("board left at %vV after sharded sweep, want %vV", v, faults.VNom)
	}
}

// TestRunReliabilityCancelRestoresNominal: an early exit from the
// sequential path (here context cancellation while the board sits
// undervolted) must still restore nominal conditions via the deferred
// restore.
func TestRunReliabilityCancelRestoresNominal(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	if err := b.SetHBMVoltage(0.90); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first point
	_, err := RunReliabilitySweep(ctx, ReliabilityConfig{
		Board:     b,
		Ports:     []hbm.PortID{0},
		Grid:      []float64{0.95, 0.94},
		BatchSize: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	v, err := b.HBMVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if !nearVNom(v) {
		t.Fatalf("board left at %vV after cancelled sweep, want %vV", v, faults.VNom)
	}
}

// TestShardedSweepCancellation: cancelling mid-sweep stops dispatch and
// surfaces ctx.Err from the sharded path too.
func TestShardedSweepCancellation(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 1024})
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	sch := &SweepScheduler{
		Workers: 2,
		OnProgress: func(SweepProgress) {
			once.Do(cancel) // cancel after the first completed point
		},
	}
	_, err := sch.RunReliability(ctx, ReliabilityConfig{
		Board:     b,
		Ports:     []hbm.PortID{0, 1, 2, 3},
		Grid:      faults.VoltageGrid(1.20, 0.90),
		BatchSize: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepProgressCallback: Done must count 1..Total monotonically,
// Total must equal the grid size, and every grid voltage must be
// reported exactly once — under sharding the order is the completion
// order, but nothing may be lost or duplicated.
func TestSweepProgressCallback(t *testing.T) {
	grid := faults.VoltageGrid(1.00, 0.88)
	for _, workers := range []int{1, 4} {
		seen := map[float64]int{}
		last := 0
		res, err := RunReliability(ReliabilityConfig{
			Board:     testBoard(t, board.Config{Scale: 1024}),
			Ports:     []hbm.PortID{0, 18},
			Grid:      grid,
			BatchSize: 2,
			Workers:   workers,
			OnPoint: func(p SweepProgress) {
				if p.Total != len(grid) {
					t.Errorf("workers=%d: Total = %d, want %d", workers, p.Total, len(grid))
				}
				if p.Done != last+1 {
					t.Errorf("workers=%d: Done jumped %d -> %d", workers, last, p.Done)
				}
				last = p.Done
				seen[p.Volts]++
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if last != len(grid) {
			t.Fatalf("workers=%d: %d progress calls, want %d", workers, last, len(grid))
		}
		for _, v := range grid {
			if seen[v] != 1 {
				t.Fatalf("workers=%d: voltage %v reported %d times", workers, v, seen[v])
			}
		}
		if len(res.Points) != len(grid) {
			t.Fatalf("workers=%d: %d points", workers, len(res.Points))
		}
	}
}

// TestSchedulerZeroValue: the zero-value scheduler (GOMAXPROCS workers,
// no progress) must work and cap its fleet at the grid size.
func TestSchedulerZeroValue(t *testing.T) {
	var sch SweepScheduler
	res, err := sch.RunReliability(context.Background(), ReliabilityConfig{
		Board:     testBoard(t, board.Config{Scale: 1024}),
		Ports:     []hbm.PortID{18},
		Grid:      []float64{0.90, 0.89}, // fleet capped at 2
		BatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Volts != 0.90 || res.Points[1].Volts != 0.89 {
		t.Fatalf("points out of grid order: %+v", res.Points)
	}
}

// TestBoardCloneIndependence: a clone realizes the same device (same
// fault draws at every voltage) but owns independent electrical state.
func TestBoardCloneIndependence(t *testing.T) {
	b := testBoard(t, board.Config{Scale: 256, Seed: 5})
	c, err := b.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetHBMVoltage(0.85); err != nil {
		t.Fatal(err)
	}
	cv, err := c.HBMVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if !nearVNom(cv) {
		t.Fatalf("clone rail moved to %vV with the original", cv)
	}
	// Same realization: identical fault sets on sensitive PC18 (stack 1,
	// pc 2).
	want := b.Faults.NewSampler(1, 2, 0.89).WordFaults(4096, nil)
	got := c.Faults.NewSampler(1, 2, 0.89).WordFaults(4096, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("clone realizes a different device: %v vs %v", want, got)
	}
	if c.Config() != b.Config() {
		t.Fatal("clone config differs")
	}
}
