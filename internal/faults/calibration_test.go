package faults

import (
	"math"
	"testing"
)

// These tests pin the model to the paper's reported numbers. If one of
// them fails after a constant change, the model no longer reproduces
// DATE'21; fix the calibration, not the test.

func TestAnchorGuardbandClean(t *testing.T) {
	m := defaultModel(t)
	for _, v := range VoltageGrid(VNom, VMin) {
		if f := m.GlobalStuckFraction(v); f != 0 {
			t.Fatalf("stuck fraction %v at %vV inside guardband", f, v)
		}
	}
}

func TestAnchorFirstFlipVoltages(t *testing.T) {
	m := defaultModel(t)
	// §III-B: first 1→0 flips at 0.97 V, first 0→1 flips at 0.96 V.
	total := func(v float64, kind FlipKind) float64 {
		sum := 0.0
		for s := 0; s < NumStacks; s++ {
			for pc := 0; pc < PCsPerStack; pc++ {
				sum += m.ExpectedPCFaults(s, pc, v, kind)
			}
		}
		return sum
	}
	if got := total(0.98, AnyFlip); got != 0 {
		t.Fatalf("faults at 0.98V: %v", got)
	}
	f10 := total(VFirst10, OneToZero)
	if f10 < 10 || f10 > 1e4 {
		t.Fatalf("1→0 faults at 0.97V = %v, want a small nonzero count", f10)
	}
	if f01 := total(VFirst10, ZeroToOne); f01 != 0 {
		t.Fatalf("0→1 faults already present at 0.97V: %v", f01)
	}
	if f01 := total(VFirst01, ZeroToOne); f01 <= 0 {
		t.Fatalf("no 0→1 faults at 0.96V")
	}
}

func TestAnchorExponentialGrowth(t *testing.T) {
	m := defaultModel(t)
	// Fault counts must grow roughly exponentially through the unsafe
	// region: each 10 mV step multiplies the rate by ~10^0.55 ≈ 3.5 in
	// the weak-dominated region.
	prev := 0.0
	for _, v := range VoltageGrid(0.97, 0.87) {
		cur := m.StackFaultFraction(0, v, AnyFlip)
		if prev > 0 {
			growth := cur / prev
			if growth < 2 || growth > 6 {
				t.Fatalf("growth factor %v at %vV, want ~3.5 (exponential)", growth, v)
			}
		}
		prev = cur
	}
}

func TestAnchorAllBitsFaultyAt084(t *testing.T) {
	m := defaultModel(t)
	for _, v := range VoltageGrid(VAllFaulty, VCritical) {
		for s := 0; s < NumStacks; s++ {
			if f := m.StackFaultFraction(s, v, AnyFlip); f < 0.995 {
				t.Fatalf("stack%d only %v faulty at %vV, want ~all", s, f, v)
			}
		}
	}
}

func TestAnchorStuckFractionAt085(t *testing.T) {
	m := defaultModel(t)
	// Fig. 3: active capacitance at 0.85 V is 14% below nominal, i.e.
	// ~14% of bits are stuck. This also fixes the 2.3x power saving.
	f := m.GlobalStuckFraction(0.85)
	if f < 0.12 || f > 0.16 {
		t.Fatalf("stuck fraction at 0.85V = %v, want ~0.14", f)
	}
	savings := (VNom / 0.85) * (VNom / 0.85) / (1 - f)
	if savings < 2.2 || savings > 2.4 {
		t.Fatalf("implied power saving at 0.85V = %vx, want ~2.3x", savings)
	}
}

func TestAnchorPolarityAsymmetry(t *testing.T) {
	m := defaultModel(t)
	// §III-B: the average 0→1 rate is ~21% higher than the 1→0 rate.
	// Evaluate in the weak-dominated region where the tail is negligible.
	var r01, r10 float64
	for _, v := range VoltageGrid(0.94, 0.88) {
		for s := 0; s < NumStacks; s++ {
			r01 += m.StackFaultFraction(s, v, ZeroToOne)
			r10 += m.StackFaultFraction(s, v, OneToZero)
		}
	}
	ratio := r01 / r10
	if ratio < 1.15 || ratio > 1.27 {
		t.Fatalf("0→1/1→0 ratio = %v, want ~1.21", ratio)
	}
}

func TestAnchorStackVariation(t *testing.T) {
	m := defaultModel(t)
	// §III-B: HBM0's fault rate is ~13% lower than HBM1's on average in
	// the unsafe region.
	var sum float64
	var n int
	for _, v := range VoltageGrid(0.97, VAllFaulty) {
		f0 := m.StackFaultFraction(0, v, AnyFlip)
		f1 := m.StackFaultFraction(1, v, AnyFlip)
		if f0 == 0 {
			continue
		}
		sum += f1 / f0
		n++
	}
	avg := sum / float64(n)
	if avg < 1.08 || avg > 1.18 {
		t.Fatalf("HBM1/HBM0 average fault ratio = %v, want ~1.13", avg)
	}
	// Both stacks share Vmin and Vcritical (paper: same guardband edges).
	if m.StackFaultFraction(0, VMin, AnyFlip) != 0 || m.StackFaultFraction(1, VMin, AnyFlip) != 0 {
		t.Fatal("stacks disagree on Vmin")
	}
}

func TestAnchorSensitivePCs(t *testing.T) {
	m := defaultModel(t)
	// §III-B: PC4, PC5 (HBM0) and PC18, PC19, PC20 (HBM1) are the
	// fault-prone channels: at moderate undervolt they must show
	// strictly higher rates than every other PC.
	v := 0.90
	sensitive := map[int]bool{}
	for _, g := range SensitivePCs {
		sensitive[g] = true
	}
	minSens, maxOther := math.Inf(1), 0.0
	for g := 0; g < NumPCs; g++ {
		r := m.CellRate(g/PCsPerStack, g%PCsPerStack, v, AnyFlip)
		if sensitive[g] {
			if r < minSens {
				minSens = r
			}
		} else if r > maxOther {
			maxOther = r
		}
	}
	if minSens <= maxOther {
		t.Fatalf("sensitive PCs not separated: min sensitive %v <= max other %v", minSens, maxOther)
	}
	if minSens < 10*maxOther {
		t.Fatalf("sensitive PCs only %vx worse than others; expect an order of magnitude", minSens/maxOther)
	}
}

func TestAnchorFig6UsableCounts(t *testing.T) {
	m := defaultModel(t)
	// §III-C: "up to 1.6X power savings ... using only 7 fault-free PCs
	// operating at 0.95V".
	if got := m.UsablePCs(0.95, 0); got != 7 {
		t.Fatalf("fault-free PCs at 0.95V = %d, want 7", got)
	}
	// §III-C: "an application that can tolerate a 0.0001%% fault rate and
	// requires only half of the total memory capacity can push the
	// voltage down to 0.90V" — 16 of 32 PCs.
	if got := m.UsablePCs(0.90, 1e-6); got != 16 {
		t.Fatalf("PCs at ≤0.0001%% fault rate at 0.90V = %d, want 16", got)
	}
	// Everything is usable in the guardband.
	if got := m.UsablePCs(VMin, 0); got != NumPCs {
		t.Fatalf("usable at Vmin = %d, want %d", got, NumPCs)
	}
	// Usable counts are monotone in tolerance.
	for _, v := range []float64{0.95, 0.92, 0.90, 0.88} {
		prev := -1
		for _, tol := range []float64{0, 1e-9, 1e-6, 1e-4, 1e-2} {
			n := m.UsablePCs(v, tol)
			if n < prev {
				t.Fatalf("usable count not monotone in tolerance at %vV", v)
			}
			prev = n
		}
	}
}

func TestAnchorUsableListMatchesCount(t *testing.T) {
	m := defaultModel(t)
	for _, v := range []float64{0.95, 0.90} {
		for _, tol := range []float64{0, 1e-6} {
			list := m.UsablePCList(v, tol)
			if len(list) != m.UsablePCs(v, tol) {
				t.Fatalf("list/count mismatch at %vV tol %v", v, tol)
			}
			for _, sp := range list {
				if !m.PCUsable(sp[0], sp[1], v, tol) {
					t.Fatalf("listed PC %v not usable", sp)
				}
			}
		}
	}
}

func TestAnchorClusteredFaults(t *testing.T) {
	m := defaultModel(t)
	// §III-B: most faults cluster in small regions. In the weak-dominated
	// band the share inside clusters must be ~100% while clusters cover
	// only ~8% of the address space.
	for _, v := range []float64{0.95, 0.92, 0.89} {
		for _, g := range SensitivePCs {
			share := m.ClusteredFaultShare(g/PCsPerStack, g%PCsPerStack, v)
			if share < 0.99 {
				t.Fatalf("clustered share %v at %vV for PC%d", share, v, g)
			}
		}
	}
}

func TestWeakSurvivalShape(t *testing.T) {
	if WeakSurvivalAt(0.98) != 0 || WeakSurvivalAt(weakVcMax) != 0 {
		t.Fatal("weak survival must vanish above the truncation point")
	}
	if got := WeakSurvivalAt(weakAnchorV); math.Abs(got-weakAnchorRate) > 1e-15 {
		t.Fatalf("weak survival at anchor = %v, want %v", got, weakAnchorRate)
	}
	// One 10 mV step changes the rate by 10^0.55.
	ratio := WeakSurvivalAt(0.95) / WeakSurvivalAt(0.96)
	if math.Abs(ratio-math.Pow(10, weakSlopeDecades)) > 1e-9 {
		t.Fatalf("slope ratio = %v", ratio)
	}
}

func TestBulkSurvivalShape(t *testing.T) {
	m := defaultModel(t)
	if m.BulkSurvivalAt(0.90) != 0 {
		t.Fatal("bulk survival must be 0 above cutoff")
	}
	if s := m.BulkSurvivalAt(bulkMu); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("bulk survival at mu = %v, want 0.5", s)
	}
	if s := m.BulkSurvivalAt(0.84); s < 0.999 {
		t.Fatalf("bulk survival at 0.84 = %v, want ~1", s)
	}
}
