package ina226

import (
	"errors"
	"math"
	"testing"
)

// fixedRail returns a Rail pinned at the given operating point.
func fixedRail(volts, amps float64) Rail {
	return func() (float64, float64) { return volts, amps }
}

func calibrated(t *testing.T, cfg Config, maxAmps float64) *INA226 {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := CalibrationFor(maxAmps, cfg.ShuntOhms)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRegister(RegCalibration, cal); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ShuntOhms: 0, Rail: fixedRail(1, 1)}); err == nil {
		t.Fatal("zero shunt accepted")
	}
	if _, err := New(Config{ShuntOhms: 0.002}); err == nil {
		t.Fatal("nil rail accepted")
	}
}

func TestIDs(t *testing.T) {
	m := MustNew(Config{ShuntOhms: 0.002, Rail: fixedRail(1.2, 10)})
	mfr, err := m.ReadRegister(RegMfrID)
	if err != nil {
		t.Fatal(err)
	}
	if mfr != 0x5449 {
		t.Fatalf("MFR ID = 0x%04x, want 0x5449 ('TI')", mfr)
	}
	die, err := m.ReadRegister(RegDieID)
	if err != nil {
		t.Fatal(err)
	}
	if die != 0x2260 {
		t.Fatalf("die ID = 0x%04x", die)
	}
}

func TestBusVoltageQuantization(t *testing.T) {
	m := calibrated(t, Config{ShuntOhms: 0.002, Rail: fixedRail(1.2, 10)}, 20)
	v, err := m.BusVolts()
	if err != nil {
		t.Fatal(err)
	}
	// Must be within one 1.25 mV LSB of the true value.
	if math.Abs(v-1.2) > BusVoltLSB {
		t.Fatalf("bus volts = %v", v)
	}
	// And exactly on the LSB grid.
	raw, _ := m.ReadRegister(RegBusVolt)
	if float64(raw)*BusVoltLSB != v {
		t.Fatal("BusVolts does not match raw register decode")
	}
}

func TestCurrentAndPowerPipeline(t *testing.T) {
	const volts, amps = 1.2, 12.0
	m := calibrated(t, Config{ShuntOhms: 0.002, Rail: fixedRail(volts, amps)}, 20)
	i, err := m.CurrentAmps()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i-amps) > amps*0.005 {
		t.Fatalf("current = %v, want %v", i, amps)
	}
	p, err := m.PowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	want := volts * amps
	if math.Abs(p-want) > want*0.01 {
		t.Fatalf("power = %v, want %v", p, want)
	}
	// Power LSB is 25x current LSB by construction.
	if lsb := m.CurrentLSB(); lsb <= 0 {
		t.Fatalf("current LSB = %v", lsb)
	}
}

func TestUncalibratedReadsZero(t *testing.T) {
	m := MustNew(Config{ShuntOhms: 0.002, Rail: fixedRail(1.2, 12)})
	i, err := m.CurrentAmps()
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Fatalf("uncalibrated current = %v, want 0", i)
	}
	p, err := m.PowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("uncalibrated power = %v, want 0", p)
	}
}

func TestCalibrationFor(t *testing.T) {
	cal, err := CalibrationFor(20, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	// currentLSB = 20/32768 ≈ 610 µA; cal = 0.00512/(lsb*0.002) ≈ 4194.
	if cal < 4100 || cal > 4300 {
		t.Fatalf("cal = %d, want ≈4194", cal)
	}
	if _, err := CalibrationFor(0, 0.002); err == nil {
		t.Fatal("zero amps accepted")
	}
	if _, err := CalibrationFor(1e6, 1); err == nil {
		t.Fatal("calibration below 1 accepted")
	}
	if _, err := CalibrationFor(0.001, 0.0001); err == nil {
		t.Fatal("calibration above 16 bits accepted")
	}
}

func TestShuntRegisterSigned(t *testing.T) {
	// Negative current (sinking) produces a negative shunt register.
	m := calibrated(t, Config{ShuntOhms: 0.002, Rail: fixedRail(1.2, -5)}, 20)
	raw, err := m.ReadRegister(RegShuntVolt)
	if err != nil {
		t.Fatal(err)
	}
	if int16(raw) >= 0 {
		t.Fatalf("shunt register = %d, want negative", int16(raw))
	}
	i, err := m.CurrentAmps()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i-(-5)) > 0.05 {
		t.Fatalf("current = %v, want -5", i)
	}
}

func TestConfigResetRestoresDefaults(t *testing.T) {
	m := calibrated(t, Config{ShuntOhms: 0.002, Rail: fixedRail(1.2, 10)}, 20)
	if err := m.WriteRegister(RegConfig, 0x4ea7); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRegister(RegConfig, ConfigReset); err != nil {
		t.Fatal(err)
	}
	cfgReg, err := m.ReadRegister(RegConfig)
	if err != nil {
		t.Fatal(err)
	}
	if cfgReg != 0x4127 {
		t.Fatalf("config after reset = 0x%04x, want 0x4127", cfgReg)
	}
	cal, err := m.ReadRegister(RegCalibration)
	if err != nil {
		t.Fatal(err)
	}
	if cal != 0 {
		t.Fatal("calibration survived reset")
	}
}

func TestUnknownRegisterRejected(t *testing.T) {
	m := MustNew(Config{ShuntOhms: 0.002, Rail: fixedRail(1, 1)})
	if _, err := m.ReadRegister(0x42); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("err = %v", err)
	}
	if err := m.WriteRegister(RegPower, 1); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("data register writable: %v", err)
	}
}

func TestAveragingReducesNoise(t *testing.T) {
	spread := func(avgField uint16) float64 {
		m := calibrated(t, Config{
			ShuntOhms:  0.002,
			Rail:       fixedRail(1.2, 12),
			Seed:       77,
			NoiseSigma: 0.01,
		}, 20)
		if err := m.WriteRegister(RegConfig, 0x4007|avgField<<9); err != nil {
			t.Fatal(err)
		}
		var xs []float64
		for k := 0; k < 60; k++ {
			p, err := m.PowerWatts()
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, p)
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return math.Sqrt(ss / float64(len(xs)))
	}
	noisy := spread(0)  // 1 sample
	smooth := spread(4) // 128 samples
	if smooth >= noisy/3 {
		t.Fatalf("averaging did not reduce noise: 1-sample sd %v vs 128-sample sd %v", noisy, smooth)
	}
}

func TestConversionMicros(t *testing.T) {
	m := MustNew(Config{ShuntOhms: 0.002, Rail: fixedRail(1, 1)})
	// Default config 0x4127: AVG=0 (1 sample), VBUSCT=VSHCT=1.1 ms.
	got := m.ConversionMicros()
	if math.Abs(got-2200) > 1 {
		t.Fatalf("conversion time = %v µs, want 2200", got)
	}
	// 16-sample averaging scales it 16x.
	if err := m.WriteRegister(RegConfig, 0x4127|2<<9); err != nil {
		t.Fatal(err)
	}
	if got := m.ConversionMicros(); math.Abs(got-35200) > 1 {
		t.Fatalf("averaged conversion time = %v µs", got)
	}
}

func TestRailTracksOperatingPoint(t *testing.T) {
	volts, amps := 1.2, 12.0
	rail := func() (float64, float64) { return volts, amps }
	m := calibrated(t, Config{ShuntOhms: 0.002, Rail: rail}, 20)
	p1, err := m.PowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	volts, amps = 0.9, 8.0
	p2, err := m.PowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-14.4) > 0.2 || math.Abs(p2-7.2) > 0.2 {
		t.Fatalf("power tracking broken: %v, %v", p1, p2)
	}
}

func TestClampsAtRegisterLimits(t *testing.T) {
	// A pathological operating point must clamp, not wrap.
	m := calibrated(t, Config{ShuntOhms: 0.002, Rail: fixedRail(50, 1e6)}, 20)
	raw, err := m.ReadRegister(RegBusVolt)
	if err != nil {
		t.Fatal(err)
	}
	if raw != 0x7fff {
		t.Fatalf("bus register = 0x%04x, want clamped 0x7fff", raw)
	}
	sh, err := m.ReadRegister(RegShuntVolt)
	if err != nil {
		t.Fatal(err)
	}
	if int16(sh) != math.MaxInt16 {
		t.Fatalf("shunt register = %d, want clamp", int16(sh))
	}
}

func BenchmarkPowerWatts(b *testing.B) {
	m := MustNew(Config{ShuntOhms: 0.002, Rail: fixedRail(1.2, 12)})
	cal, _ := CalibrationFor(20, 0.002)
	if err := m.WriteRegister(RegCalibration, cal); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PowerWatts(); err != nil {
			b.Fatal(err)
		}
	}
}
