// Command hbmvolt regenerates the tables and figures of "Understanding
// Power Consumption and Reliability of High-Bandwidth Memory with
// Voltage Underscaling" (DATE 2021) from the simulated VCU128 platform,
// and exposes the three-factor trade-off planner interactively.
//
// Usage:
//
//	hbmvolt [flags] <command>
//
// Commands:
//
//	fig2        normalized power vs voltage per bandwidth (Fig. 2)
//	fig3        normalized alpha*CL*f vs voltage (Fig. 3)
//	fig4        faulty fraction per stack vs voltage (Fig. 4)
//	fig5        per-PC fault atlas per pattern (Fig. 5)
//	fig6        usable PCs per tolerable fault rate (Fig. 6)
//	ecc         SEC-DED mitigation ablation (extension)
//	temp        temperature sensitivity study (extension)
//	capacity    row- vs PC-granular capacity recovery (extension)
//	bandwidth   workload bandwidth characterization (extension)
//	guardband   locate Vmin/Vcritical (analytic + measured)
//	reliability run Algorithm 1 on a scaled board and print fault counts
//	tradeoff    plan an operating point: -tol and -pcs
//	info        platform summary (organization, bandwidth, power anchors)
//	all         fig2..fig6 + ecc + guardband
//	campaign    execute a declarative experiment campaign (-spec names a
//	            built-in campaign or a JSON spec file; -out writes the
//	            manifest and per-scenario NDJSON artifacts; -render
//	            prints the figure suite from the campaign's payloads;
//	            -checkpoint with -cache-dir makes the run crash-safe:
//	            an interrupted campaign resumes from its journal and
//	            durable cache, and the finished manifest is
//	            byte-identical to an uninterrupted run's; -metrics
//	            dumps the run's telemetry registry as Prometheus text)
//	verify      run the built-in paper-repro campaign and validate every
//	            registered paper claim against its tolerance band
//	            (-smoke for the fast profile; -out names the report
//	            directory, default verify-out; writes FINDINGS.md and
//	            verdicts.json; exits non-zero when any claim is REFUTED
//	            or cannot be evaluated — see docs/CLAIMS.md)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"hbmvolt"
	"hbmvolt/internal/report"
	"hbmvolt/internal/telemetry"
	"hbmvolt/internal/verify"
)

var (
	flagSeed  = flag.Uint64("seed", 0, "device instance seed (0 = the calibrated paper board)")
	flagScale = flag.Uint64("scale", 1, "capacity divisor for Monte-Carlo commands (power of two; 1 = the paper's full 8 GB)")
	flagNoise = flag.Float64("noise", 0.005, "relative measurement noise of the monitor chain (0 = exact)")
	flagCSV   = flag.String("csv", "", "also write machine-readable data to this file (fig2/fig5)")
	flagJSON  = flag.String("json", "", "also write machine-readable NDJSON data to this file (fig2/fig5)")
	flagTol   = flag.Float64("tol", 0, "tradeoff: tolerable cell fault rate (e.g. 1e-6 for 0.0001%)")
	flagPCs   = flag.Int("pcs", 32, "tradeoff: minimum pseudo channels required")
	flagBatch = flag.Int("batch", 5, "reliability: batch size (paper uses 130)")
	flagVolts = flag.Float64("volts", 0, "reliability: single test voltage (0 = full 1.20V→0.81V sweep)")
	flagExact = flag.Bool("exact", false, "bit-exact per-cell fault sampling instead of sparse enumeration (slow at full scale; pair with -scale)")
	flagJ     = flag.Int("j", runtime.GOMAXPROCS(0), "reliability: sweep workers — voltage points are sharded across this many board clones; results are bit-identical at any count (1 = sequential)")

	flagSpec       = flag.String("spec", "paper-repro", "campaign: built-in campaign name or spec file path")
	flagSmoke      = flag.Bool("smoke", false, "campaign: select a built-in campaign's smoke-scale variant")
	flagOut        = flag.String("out", "", "campaign: write manifest.json and per-scenario NDJSON artifacts to this directory")
	flagJobs       = flag.Int("jobs", 2, "campaign: sweeps executing concurrently")
	flagRender     = flag.Bool("render", false, "campaign: also print the human-readable figure suite from the campaign's payloads")
	flagShared     = flag.Bool("shared", false, "campaign: run through the sweep planner — reliability cells grouped by physics sub-key share one stuck-cell enumeration per (voltage, port, rep); a distinct, separately golden-pinned realization")
	flagCheckpoint = flag.String("checkpoint", "", "campaign: checkpoint journal path; an interrupted campaign rerun with the same -checkpoint and -cache-dir resumes instead of recomputing")
	flagCacheDir   = flag.String("cache-dir", "", "campaign: durable result-cache directory (computed cells survive crashes; pairs with -checkpoint)")
	flagMetrics    = flag.String("metrics", "", "campaign: after the run, write the engine's telemetry registry to this file in Prometheus text exposition format (job, cache, enum-store, and campaign families)")
)

func main() {
	flag.Usage = usage
	// Accept both "hbmvolt <cmd> [flags]" and "hbmvolt [flags] <cmd>".
	args := os.Args[1:]
	cmd := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(2)
	}
	if cmd == "" {
		if flag.NArg() != 1 {
			usage()
			os.Exit(2)
		}
		cmd = flag.Arg(0)
	}
	if err := validateFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "hbmvolt: %v\n\n", err)
		usage()
		os.Exit(2)
	}
	if err := run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "hbmvolt:", err)
		os.Exit(1)
	}
}

// validateFlags rejects flag values that would otherwise propagate into
// the board or the sweep as confusing downstream failures (or, worse,
// silently bogus statistics — a zero batch would divide by zero, a
// negative noise sigma is meaningless).
func validateFlags() error {
	if *flagScale == 0 || *flagScale&(*flagScale-1) != 0 {
		return fmt.Errorf("-scale %d: must be a nonzero power of two", *flagScale)
	}
	if *flagBatch < 1 {
		return fmt.Errorf("-batch %d: must be >= 1", *flagBatch)
	}
	if *flagJ < 1 {
		return fmt.Errorf("-j %d: must be >= 1", *flagJ)
	}
	if *flagJobs < 1 {
		return fmt.Errorf("-jobs %d: must be >= 1", *flagJobs)
	}
	if *flagNoise < 0 {
		return fmt.Errorf("-noise %v: must be >= 0", *flagNoise)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hbmvolt [flags] <fig2|fig3|fig4|fig5|fig6|ecc|temp|capacity|bandwidth|guardband|reliability|tradeoff|info|all|campaign|verify>\n\n")
	flag.PrintDefaults()
}

func newSystem() (*hbmvolt.System, error) {
	return hbmvolt.New(hbmvolt.Config{
		Seed:         *flagSeed,
		Scale:        *flagScale,
		NoiseSigma:   *flagNoise,
		SparseFaults: !*flagExact,
	})
}

func run(cmd string) error {
	if cmd == "campaign" {
		// Campaigns build their own boards per cell; no ambient System.
		return runCampaign()
	}
	if cmd == "verify" {
		// The claim verifier runs its own campaign; no ambient System.
		return runVerify()
	}
	sys, err := newSystem()
	if err != nil {
		return err
	}
	out := os.Stdout
	switch cmd {
	case "fig2":
		res, err := sys.RenderFig2(out)
		if err != nil {
			return err
		}
		if err := maybeWrite(*flagCSV, func(w io.Writer) error { return sys.WriteFig2CSV(w, res) }); err != nil {
			return err
		}
		return maybeWrite(*flagJSON, func(w io.Writer) error { return sys.WriteFig2JSON(w, res) })
	case "fig3":
		_, err := sys.RenderFig3(out)
		return err
	case "fig4":
		_, err := sys.RenderFig4(out)
		return err
	case "fig5":
		if err := sys.RenderFig5(out); err != nil {
			return err
		}
		if err := maybeWrite(*flagCSV, sys.WriteFig5CSV); err != nil {
			return err
		}
		return maybeWrite(*flagJSON, sys.WriteFig5JSON)
	case "fig6":
		return sys.RenderFig6(out)
	case "ecc":
		_, err := sys.RenderECCStudy(out)
		return err
	case "temp":
		_, err := sys.RenderTempStudy(out)
		return err
	case "capacity":
		_, err := sys.RenderCapacityStudy(out)
		return err
	case "bandwidth":
		_, err := sys.RenderBandwidthStudy(out)
		return err
	case "guardband":
		return runGuardband(sys)
	case "reliability":
		return runReliability(sys)
	case "tradeoff":
		return runTradeoff(sys)
	case "info":
		return runInfo(sys)
	case "all":
		for _, c := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "ecc", "temp", "capacity", "bandwidth", "guardband"} {
			fmt.Fprintf(out, "\n===== %s =====\n", strings.ToUpper(c))
			if err := run(c); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runCampaign executes the campaign subcommand: resolve the spec, run
// it through the engine, write artifacts (-out), print the manifest
// summary, and optionally render the figure suite (-render).
func runCampaign() error {
	spec, err := hbmvolt.LoadCampaignSpec(*flagSpec, *flagSmoke)
	if err != nil {
		return err
	}
	if *flagCheckpoint != "" && *flagCacheDir == "" {
		fmt.Fprintln(os.Stderr, "warning: -checkpoint without -cache-dir records progress but has no durable cache to resume payloads from; completed cells will be recomputed on resume")
	}
	// -metrics: hand the engine a registry to report into and dump it as
	// Prometheus text after the run — the same families a daemon serves
	// live on /metrics, captured for a one-shot CLI run.
	var reg *telemetry.Registry
	if *flagMetrics != "" {
		reg = telemetry.NewRegistry()
	}
	res, err := hbmvolt.RunCampaign(context.Background(), spec, hbmvolt.CampaignOptions{
		Jobs:              *flagJobs,
		Fleet:             *flagJ,
		SharedEnumeration: *flagShared,
		Journal:           *flagCheckpoint,
		CacheDir:          *flagCacheDir,
		Metrics:           reg,
		OnCell: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcampaign %s: %d/%d cells   ", spec.Name, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		return err
	}
	if reg != nil {
		if err := maybeWrite(*flagMetrics, func(w io.Writer) error {
			_, werr := reg.WriteTo(w)
			return werr
		}); err != nil {
			return err
		}
	}
	if *flagOut != "" {
		if err := res.WriteArtifacts(*flagOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *flagOut)
	}
	m := res.Manifest
	fmt.Printf("campaign %s: %d cells (%d unique sweeps), %d scenarios\n",
		m.Campaign, m.Cells, m.UniqueSweeps, len(m.Scenarios))
	if m.Plan != nil {
		fmt.Printf("plan: %d shared cells in %d physics groups; %d unique enumerations cover %d pattern evaluations\n",
			m.Plan.SharedCells, len(m.Plan.Groups), m.Plan.UniquePhysics, m.Plan.PatternEvals)
	}
	tbl := report.NewTable("scenario", "kind", "cell", "key", "bytes", "sha256")
	for _, sm := range m.Scenarios {
		for _, cm := range sm.Cells {
			tbl.AddRow(sm.Name, sm.Kind, fmt.Sprintf("%d", cm.Index), cm.Key,
				fmt.Sprintf("%d", cm.Bytes), cm.SHA256[:12])
		}
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	if *flagRender {
		return hbmvolt.RenderCampaignResult(os.Stdout, res)
	}
	return nil
}

// runVerify executes the verify subcommand: run the built-in
// paper-repro campaign through the engine, evaluate every registered
// claim, write FINDINGS.md + verdicts.json into the report directory,
// print the verdict summary, and fail (non-zero exit) when any claim is
// not CONFIRMED.
func runVerify() error {
	outDir := *flagOut
	if outDir == "" {
		outDir = "verify-out"
	}
	rep, err := verify.Run(context.Background(), verify.Options{
		Smoke:  *flagSmoke,
		Jobs:   *flagJobs,
		Fleet:  *flagJ,
		Shared: *flagShared,
		OnCell: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rverify: %d/%d cells   ", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	blob, err := rep.JSON()
	if err != nil {
		return err
	}
	verdictsPath := outDir + "/verdicts.json"
	if err := os.WriteFile(verdictsPath, blob, 0o644); err != nil {
		return err
	}
	findingsPath := outDir + "/FINDINGS.md"
	f, err := os.Create(findingsPath)
	if err != nil {
		return err
	}
	werr := verify.WriteFindings(f, rep)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}

	tbl := report.NewTable("claim", "citation", "status", "checks")
	for _, v := range rep.Verdicts {
		passed := 0
		for _, c := range v.Checks {
			if c.Pass {
				passed++
			}
		}
		tbl.AddRow(v.Claim, v.Citation, v.Status, fmt.Sprintf("%d/%d", passed, len(v.Checks)))
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("claims: %d confirmed, %d refuted, %d errored\n", rep.Confirmed, rep.Refuted, rep.Errored)
	fmt.Printf("wrote %s and %s\n", verdictsPath, findingsPath)
	if rep.Failed() {
		return fmt.Errorf("%d of %d claims not confirmed (see %s)", rep.Refuted+rep.Errored, rep.Claims, findingsPath)
	}
	return nil
}

// maybeWrite runs the export if its destination flag (-csv or -json)
// was set.
func maybeWrite(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func runGuardband(sys *hbmvolt.System) error {
	g, err := sys.Guardband()
	if err != nil {
		return err
	}
	fmt.Println("analytic:", g)
	// Empirical confirmation through traffic on the scaled board,
	// scanning the edge of the safe region.
	mg, err := sys.MeasureGuardband(0, gridAround(1.00, 0.95))
	if err != nil {
		return err
	}
	fmt.Println("measured:", mg)
	return nil
}

func gridAround(hi, lo float64) []float64 {
	var out []float64
	for mv := int(hi * 1000); mv >= int(lo*1000); mv -= 10 {
		out = append(out, float64(mv)/1000)
	}
	return out
}

func runReliability(sys *hbmvolt.System) error {
	// The default is the paper's whole-HBM methodology: every word of
	// every pseudo channel, across the full voltage ladder. The sweep is
	// sharded across -j board-fleet workers; with one worker the ports
	// within each point run concurrently instead (both modes produce
	// identical results — see the sweep scheduler's determinism tests).
	var grid []float64
	where := "1.20V→0.81V sweep"
	if *flagVolts != 0 {
		grid = []float64{*flagVolts}
		where = fmt.Sprintf("%.2fV", *flagVolts)
	}
	res, err := sys.RunReliability(hbmvolt.ReliabilityConfig{
		Grid:      grid,
		BatchSize: *flagBatch,
		Workers:   *flagJ,
		// Port-level parallelism takes over where point-level sharding
		// cannot: a single worker, or a single-voltage run whose one grid
		// point would otherwise pin one core.
		Parallel: *flagJ <= 1 || *flagVolts != 0,
		OnPoint:  progressLine(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1, %s (batch %d, margin ±%.1f%% @90%%, %d sweep workers):\n",
		where, *flagBatch, res.Margin*100, *flagJ)
	tbl := report.NewTable("volts", "port", "pattern", "mean flips", "bit fault rate", "ci low", "ci high")
	for _, pt := range res.Points {
		if pt.Crashed {
			fmt.Printf("  %.2fV: DEVICE CRASHED (power cycle performed)\n", pt.Volts)
			continue
		}
		for _, obs := range pt.Observations {
			if obs.MeanFlips == 0 {
				continue
			}
			tbl.AddRow(
				fmt.Sprintf("%.2f", pt.Volts),
				fmt.Sprintf("%d", obs.Port),
				obs.Pattern,
				fmt.Sprintf("%.1f", obs.MeanFlips),
				fmt.Sprintf("%.3g", obs.BitFaultRate),
				fmt.Sprintf("%.1f", obs.Batch.CILow),
				fmt.Sprintf("%.1f", obs.Batch.CIHigh),
			)
		}
	}
	if tbl.Len() == 0 {
		fmt.Println("  no faults observed")
		return nil
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

// progressLine returns a sweep progress callback that keeps one status
// line updated on stderr, leaving stdout to the result tables (so
// redirected output stays clean and -j equality is byte-exact).
func progressLine() func(hbmvolt.SweepProgress) {
	return func(p hbmvolt.SweepProgress) {
		state := "ok"
		if p.Crashed {
			state = "CRASH"
		}
		fmt.Fprintf(os.Stderr, "\rreliability: %d/%d points (%.2fV %s)   ", p.Done, p.Total, p.Volts, state)
		if p.Done == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func runTradeoff(sys *hbmvolt.System) error {
	plan, err := sys.Plan(*flagTol, *flagPCs)
	if err != nil {
		return err
	}
	fmt.Printf("tolerable rate %.3g, need >= %d PCs:\n  %s\n  PCs: %v\n",
		*flagTol, *flagPCs, plan, plan.PCs)
	return nil
}

func runInfo(sys *hbmvolt.System) error {
	b := sys.Board
	fmt.Printf("platform: VCU128-class, %d HBM stacks, %d pseudo channels, %.1f GB (scale 1/%d)\n",
		len(b.Device.Stacks), b.Org.TotalPCs(), float64(b.Org.TotalBytes())/(1<<30), *flagScale)
	fmt.Printf("aggregate bandwidth: %.0f GB/s (paper: 310 achieved / 429 theoretical)\n",
		b.AggregateBandwidthGBs())
	w, err := sys.PowerWatts()
	if err != nil {
		return err
	}
	fmt.Printf("power at nominal, full load: %.2f W\n", w)
	g, err := sys.Guardband()
	if err != nil {
		return err
	}
	fmt.Println(g)
	fmt.Printf("fault-free PCs at 0.95V: %d; PCs at <=0.0001%% at 0.90V: %d\n",
		sys.UsablePCs(0.95, 0), sys.UsablePCs(0.90, 1e-6))
	return nil
}
