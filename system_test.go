package hbmvolt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func newSystem(t testing.TB, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSystem(t, Config{})
	if err := sys.SetVoltage(0.95); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Voltage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.95) > 0.001 {
		t.Fatalf("voltage = %v", v)
	}
	w, err := sys.PowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w > 20 {
		t.Fatalf("watts = %v", w)
	}
	plan, err := sys.Plan(1e-6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Volts != 0.90 {
		t.Fatalf("plan voltage = %v", plan.Volts)
	}
	if sys.UsablePCs(0.95, 0) != 7 {
		t.Fatal("usable PC count broken through façade")
	}
}

func TestGuardbandThroughFacade(t *testing.T) {
	sys := newSystem(t, Config{})
	g, err := sys.Guardband()
	if err != nil {
		t.Fatal(err)
	}
	if g.VMin != VMin {
		t.Fatalf("VMin = %v", g.VMin)
	}
}

func TestCrashRecoveryThroughFacade(t *testing.T) {
	sys := newSystem(t, Config{})
	if err := sys.SetVoltage(0.79); err != nil {
		t.Fatal(err)
	}
	if !sys.Crashed() {
		t.Fatal("no crash")
	}
	if err := sys.PowerCycle(); err != nil {
		t.Fatal(err)
	}
	if sys.Crashed() {
		t.Fatal("still crashed")
	}
}

func TestDisplayGrid(t *testing.T) {
	g := DisplayGrid()
	if g[0] != 1.20 {
		t.Fatalf("grid start %v", g[0])
	}
	for i := 1; i < len(g); i++ {
		step := g[i-1] - g[i]
		if math.Abs(step-0.05) > 1e-9 {
			t.Fatalf("display step %v", step)
		}
	}
	if len(PaperGrid()) != 40 {
		t.Fatalf("paper grid %d points", len(PaperGrid()))
	}
}

func TestRenderFig2(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	res, err := sys.RenderFig2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 2") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "1.20") || !strings.Contains(out, "0.85") {
		t.Fatal("missing voltage rows")
	}
	// The display grid is 50 mV, so check the headline ratios numerically
	// at the nearest displayed points: ~1.6x at 0.95 V, ~2.3x at 0.85 V.
	s95, err := res.SavingsAt(0.95, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s95-1.6) > 0.05 {
		t.Fatalf("fig2 savings at 0.95 = %v", s95)
	}
	s, err := res.SavingsAt(0.85, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2.3) > 0.1 {
		t.Fatalf("fig2 savings at 0.85 = %v", s)
	}
	// CSV export round-trips.
	var csvBuf bytes.Buffer
	if err := sys.WriteFig2CSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "volts,ports,") {
		t.Fatal("csv header missing")
	}
}

func TestRenderFig3(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	res, err := sys.RenderFig3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "α·C_L·f") {
		t.Fatal("missing annotation")
	}
	pt := res.At(0.85, 32)
	if pt == nil || math.Abs(pt.NormAlphaCLF-0.86) > 0.02 {
		t.Fatalf("alphaCLF at 0.85V: %+v", pt)
	}
}

func TestRenderFig4(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	curves, err := sys.RenderFig4(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatal("need two stacks")
	}
	if !strings.Contains(buf.String(), "HBM0") || !strings.Contains(buf.String(), "HBM1") {
		t.Fatal("missing stacks in output")
	}
}

func TestRenderFig5(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	if err := sys.RenderFig5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NF") {
		t.Fatal("no NF cells")
	}
	if !strings.Contains(out, "P31") {
		t.Fatal("missing PC columns")
	}
	if !strings.Contains(out, "1→0") || !strings.Contains(out, "0→1") {
		t.Fatal("missing pattern sections")
	}
	var csvBuf bytes.Buffer
	if err := sys.WriteFig5CSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "1to0") {
		t.Fatal("csv kinds missing")
	}
}

func TestRenderFig6(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	if err := sys.RenderFig6(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 6") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "fault-free") {
		t.Fatal("missing zero-tolerance series")
	}
}

func TestRenderECCStudy(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	study, err := sys.RenderECCStudy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if study.VMinECC >= study.VMinRaw {
		t.Fatal("ECC study shows no extension")
	}
	if !strings.Contains(buf.String(), "SEC-DED") {
		t.Fatal("missing summary line")
	}
}

func TestReliabilityThroughFacade(t *testing.T) {
	sys := newSystem(t, Config{Scale: 1024})
	res, err := sys.RunReliability(ReliabilityConfig{
		Grid:      []float64{1.0},
		BatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].MeanFlips != 0 {
		t.Fatal("faults at 1.0V")
	}
}

func TestSeedSelectsDeviceInstance(t *testing.T) {
	a := newSystem(t, Config{Seed: 1})
	b := newSystem(t, Config{Seed: 2})
	// Different device instances have different cluster placements.
	ra := a.Board.Faults.ClusterRanges(0, 4)
	rb := b.Board.Faults.ClusterRanges(0, 4)
	same := len(ra) == len(rb)
	if same {
		for i := range ra {
			if ra[i] != rb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical devices")
	}
}
