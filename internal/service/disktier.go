package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"hbmvolt/internal/chaos"
	"hbmvolt/internal/lru"
	tlog "hbmvolt/internal/telemetry/log"
)

// DiskTier is the crash-durable CacheTier: one file per payload under a
// cache directory, written atomically and verified on every read.
//
// On-disk layout (documented in README "Resilience"):
//
//	<dir>/<16-hex-key>.cache
//
// Each file is a one-line header followed by the raw payload bytes:
//
//	hbmvolt-cache 1 <16-hex-key> <64-hex-sha256-of-payload> <payload-size>\n
//	<payload bytes>
//
// Durability discipline:
//
//   - Writes go to a ".tmp-*" file in the same directory, are fsynced,
//     then renamed into place (atomic on POSIX), then the directory is
//     fsynced — a crash at any point leaves either the old state or the
//     complete new entry, never a half-visible one.
//   - Every read re-verifies the header's SHA-256 against the payload
//     bytes; a mismatch (bit rot, torn write that survived rename,
//     manual tampering) is logged, the entry is discarded, and the read
//     reports a miss — corrupt bytes are recomputed, never served.
//   - Boot runs a recovery scan: every ".cache" file is verified and
//     repopulates the index; torn or corrupt files and stray temp files
//     are deleted and counted.
//
// The index is byte-bounded (MaxBytes; 0 = unbounded): least recently
// used entries are evicted and their files unlinked under pressure.
type DiskTier struct {
	dir string

	mu    sync.Mutex
	index *lru.Cache[uint64, int64] // key → payload size

	recovered int
	discarded int
	evicted   int

	// log carries the tier's structured discard/eviction reports, with
	// subsys=disktier pre-bound; every record names its event and entry.
	log *tlog.Logger
}

// DiskStats describes the disk tier for /healthz.
type DiskStats struct {
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	// Hits counts Gets answered by this tier (misses of the memory tier
	// saved from recomputation); filled in by the manager.
	Hits uint64 `json:"hits"`
	// Recovered counts entries the boot scan verified and repopulated.
	Recovered int `json:"recovered"`
	// Discarded counts torn/corrupt entries dropped (boot scan and
	// read-time verification failures).
	Discarded int `json:"discarded"`
	// Evicted counts capacity evictions (files unlinked under MaxBytes
	// pressure).
	Evicted int `json:"evicted"`
}

// diskHeaderMagic identifies (and versions) the entry file format.
const diskHeaderMagic = "hbmvolt-cache 1"

// NewDiskTier opens (creating if needed) a disk tier rooted at dir and
// runs the recovery scan. maxBytes bounds total retained payload bytes
// (0 = unbounded). logger receives a structured JSON record for every
// discarded entry; nil falls back to a stderr logger, so corruption
// reports stay loud by default.
func NewDiskTier(dir string, maxBytes int64, logger *tlog.Logger) (*DiskTier, error) {
	if logger == nil {
		logger = tlog.New(os.Stderr, tlog.LevelInfo)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk cache tier: %w", err)
	}
	d := &DiskTier{
		dir:   dir,
		index: lru.New[uint64, int64](0, maxBytes),
		log:   logger.With(tlog.F("subsys", "disktier")),
	}
	d.index.OnEvict(func(key uint64, _ int64) {
		// Called with d.mu held (every index mutation is under it).
		d.evicted++
		if err := os.Remove(d.path(key)); err != nil && !os.IsNotExist(err) {
			d.log.Warn("unlinking evicted entry failed",
				tlog.F("event", "evict_unlink_failed"), tlog.F("key", formatKey(key)), tlog.Err(err))
		}
	})
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// Dir returns the tier's root directory.
func (d *DiskTier) Dir() string { return d.dir }

func (d *DiskTier) path(key uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("%016x.cache", key))
}

// recover scans the cache directory, verifying every entry end to end:
// verified entries repopulate the index, torn/corrupt entries and stray
// temp files are deleted. Scan order is name order, i.e. key order —
// deterministic, so a bounded tier's post-recovery population does not
// depend on directory iteration order.
func (d *DiskTier) recover() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("disk cache tier: recovery scan: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ent := range entries {
		name := ent.Name()
		full := filepath.Join(d.dir, name)
		if ent.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".tmp-") {
			// A write the crash interrupted before rename; the entry was
			// never visible, so removal loses nothing.
			os.Remove(full)
			d.discarded++
			d.log.Warn("recovery removed torn temp file",
				tlog.F("event", "torn_temp_removed"), tlog.F("file", name))
			continue
		}
		if !strings.HasSuffix(name, ".cache") {
			continue // not ours; leave it alone
		}
		key, payload, err := d.load(full)
		if err != nil {
			os.Remove(full)
			d.discarded++
			d.log.Warn("recovery discarded corrupt entry",
				tlog.F("event", "discarded"), tlog.F("file", name), tlog.Err(err))
			continue
		}
		if fmt.Sprintf("%016x.cache", key) != name {
			os.Remove(full)
			d.discarded++
			d.log.Warn("recovery discarded entry: header key does not match filename",
				tlog.F("event", "discarded"), tlog.F("file", name), tlog.F("header_key", formatKey(key)))
			continue
		}
		d.index.Add(key, int64(len(payload)), int64(len(payload)))
		d.recovered++
	}
	return nil
}

// load reads and fully verifies one entry file, returning its header
// key and payload.
func (d *DiskTier) load(path string) (uint64, []byte, error) {
	if err := chaos.Inject("disktier.read"); err != nil {
		return 0, nil, err
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	nl := -1
	for i, b := range blob {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return 0, nil, fmt.Errorf("no header line")
	}
	header := string(blob[:nl])
	fields := strings.Fields(header)
	if len(fields) != 5 || fields[0]+" "+fields[1] != diskHeaderMagic {
		return 0, nil, fmt.Errorf("malformed header %q", header)
	}
	key, err := strconv.ParseUint(fields[2], 16, 64)
	if err != nil || len(fields[2]) != 16 {
		return 0, nil, fmt.Errorf("malformed header key %q", fields[2])
	}
	shaHex := fields[3]
	if len(shaHex) != 64 {
		return 0, nil, fmt.Errorf("malformed header checksum %q", shaHex)
	}
	size, err := strconv.Atoi(fields[4])
	if err != nil || size < 0 {
		return 0, nil, fmt.Errorf("malformed header size %q", fields[4])
	}
	payload := blob[nl+1:]
	if len(payload) != size {
		return 0, nil, fmt.Errorf("payload is %d bytes, header says %d (torn write)", len(payload), size)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != shaHex {
		return 0, nil, fmt.Errorf("payload SHA-256 mismatch (corruption)")
	}
	return key, payload, nil
}

// Get returns the payload for key after re-verifying its checksum. Any
// verification or read failure is logged, the entry is discarded, and
// the result is a miss: the caller recomputes instead of trusting
// corrupt bytes.
func (d *DiskTier) Get(key uint64) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.index.Get(key); !ok {
		return nil, false
	}
	gotKey, payload, err := d.load(d.path(key))
	if err == nil && gotKey != key {
		err = fmt.Errorf("header key %016x does not match requested %016x", gotKey, key)
	}
	if err != nil {
		d.index.Remove(key)
		if rmErr := os.Remove(d.path(key)); rmErr != nil && !os.IsNotExist(rmErr) {
			d.log.Warn("removing corrupt entry failed",
				tlog.F("event", "discard_unlink_failed"), tlog.F("key", formatKey(key)), tlog.Err(rmErr))
		}
		d.discarded++
		d.log.Warn("discarded entry on read; will recompute",
			tlog.F("event", "discarded"), tlog.F("key", formatKey(key)), tlog.Err(err))
		return nil, false
	}
	return payload, true
}

// Put durably stores a payload: temp file, fsync, rename, directory
// fsync. An existing entry only has its recency refreshed (first write
// wins, like every tier). Write failures are logged and leave the tier
// without the entry — the cache stays correct, merely less durable.
func (d *DiskTier) Put(key uint64, payload []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.index.Get(key); ok {
		return
	}
	if err := d.write(key, payload); err != nil {
		d.log.Warn("writing entry failed; entry not persisted",
			tlog.F("event", "write_failed"), tlog.F("key", formatKey(key)), tlog.Err(err))
		return
	}
	d.index.Add(key, int64(len(payload)), int64(len(payload)))
}

// write performs the atomic entry write (d.mu held).
func (d *DiskTier) write(key uint64, payload []byte) error {
	if err := chaos.Inject("disktier.write"); err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %016x %s %d\n", diskHeaderMagic, key, hex.EncodeToString(sum[:]), len(payload))
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	if _, err := tmp.WriteString(header); err != nil {
		cleanup()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return d.syncDir()
}

// syncDir fsyncs the cache directory so renames are durable.
func (d *DiskTier) syncDir() error {
	dir, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// Len returns the live entry count.
func (d *DiskTier) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.index.Len()
}

// Bytes returns the total payload bytes retained on disk (header bytes
// excluded — the bound is about payload retention, like the memory
// tier's).
func (d *DiskTier) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.index.Bytes()
}

// Stats snapshots the tier's counters (Hits is owned and filled by the
// manager's composite cache).
func (d *DiskTier) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Dir:       d.dir,
		Entries:   d.index.Len(),
		Bytes:     d.index.Bytes(),
		Recovered: d.recovered,
		Discarded: d.discarded,
		Evicted:   d.evicted,
	}
}

// Close flushes the tier: entry writes are already synchronous, so this
// is a final directory fsync.
func (d *DiskTier) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncDir()
}
