package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseReport = `{"benchmarks":[
	{"name":"BenchmarkReliabilitySweep/j=1","runs":2,"metrics":{"points/sec":100,"ns/op":5}},
	{"name":"BenchmarkReliabilitySweep/j=2","runs":2,"metrics":{"points/sec":200}},
	{"name":"BenchmarkCampaignRun/shared","runs":2,"metrics":{"cells/sec":1000}},
	{"name":"BenchmarkCampaignRun/isolated","runs":2,"metrics":{"cells/sec":50}},
	{"name":"BenchmarkOld","runs":1,"metrics":{"points/sec":50}}
]}`

func TestDiffToleranceBand(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", baseReport)

	cases := []struct {
		name        string
		current     string
		normalize   bool
		regressions int
		wantErr     bool
	}{
		{
			// A uniformly 40% slower runner: every raw ratio is 0.6, far
			// outside the band, but the median normalization cancels the
			// machine-speed factor entirely.
			name: "uniformly slower machine passes normalized",
			current: `{"benchmarks":[
				{"name":"BenchmarkReliabilitySweep/j=1","runs":2,"metrics":{"points/sec":60}},
				{"name":"BenchmarkReliabilitySweep/j=2","runs":2,"metrics":{"points/sec":120}},
				{"name":"BenchmarkCampaignRun/shared","runs":2,"metrics":{"cells/sec":600}},
				{"name":"BenchmarkCampaignRun/isolated","runs":2,"metrics":{"cells/sec":30}}
			]}`,
			normalize:   true,
			regressions: 0,
		},
		{
			// Same numbers without normalization regress everything —
			// the failure mode the fleet-relative gate exists to avoid.
			name: "uniformly slower machine fails raw",
			current: `{"benchmarks":[
				{"name":"BenchmarkReliabilitySweep/j=1","runs":2,"metrics":{"points/sec":60}},
				{"name":"BenchmarkReliabilitySweep/j=2","runs":2,"metrics":{"points/sec":120}},
				{"name":"BenchmarkCampaignRun/shared","runs":2,"metrics":{"cells/sec":600}},
				{"name":"BenchmarkCampaignRun/isolated","runs":2,"metrics":{"cells/sec":30}}
			]}`,
			normalize:   false,
			regressions: 4,
		},
		{
			// One benchmark collapses relative to its peers on the same
			// (slightly slower) machine: exactly one regression; the
			// worsened ns/op on another benchmark is ignored.
			name: "relative collapse detected",
			current: `{"benchmarks":[
				{"name":"BenchmarkReliabilitySweep/j=1","runs":2,"metrics":{"points/sec":90,"ns/op":50}},
				{"name":"BenchmarkReliabilitySweep/j=2","runs":2,"metrics":{"points/sec":180}},
				{"name":"BenchmarkCampaignRun/shared","runs":2,"metrics":{"cells/sec":250}},
				{"name":"BenchmarkCampaignRun/isolated","runs":2,"metrics":{"cells/sec":45}}
			]}`,
			normalize:   true,
			regressions: 1,
		},
		{
			// Inside the band, an improvement, and new/missing entries
			// tolerated.
			name: "within band with new entry",
			current: `{"benchmarks":[
				{"name":"BenchmarkReliabilitySweep/j=1","runs":2,"metrics":{"points/sec":80}},
				{"name":"BenchmarkReliabilitySweep/j=2","runs":2,"metrics":{"points/sec":170}},
				{"name":"BenchmarkCampaignRun/shared","runs":2,"metrics":{"cells/sec":2000}},
				{"name":"BenchmarkCampaignRun/isolated","runs":2,"metrics":{"cells/sec":48}},
				{"name":"BenchmarkNew","runs":1,"metrics":{"points/sec":1}}
			]}`,
			normalize:   true,
			regressions: 0,
		},
		{
			name:      "nothing comparable",
			current:   `{"benchmarks":[{"name":"BenchmarkUnrelated","runs":1,"metrics":{"ns/op":1}}]}`,
			normalize: true,
			wantErr:   true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := write(t, dir, "cur.json", tc.current)
			got, err := run(base, cur, 0.25, []string{"points/sec", "cells/sec"}, tc.normalize)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected an error for an incomparable report")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.regressions {
				t.Fatalf("regressions = %d, want %d", got, tc.regressions)
			}
		})
	}
}

// TestFewMetricsSkipsNormalization: with fewer than three comparable
// metrics the median would be dominated by the regressing metric
// itself, so raw ratios gate instead.
func TestFewMetricsSkipsNormalization(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json",
		`{"benchmarks":[{"name":"BenchmarkOnly","runs":1,"metrics":{"points/sec":100}}]}`)
	cur := write(t, dir, "cur.json",
		`{"benchmarks":[{"name":"BenchmarkOnly","runs":1,"metrics":{"points/sec":10}}]}`)
	got, err := run(base, cur, 0.25, []string{"points/sec"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("regressions = %d, want 1 (normalization must not mask a lone collapse)", got)
	}
}

// TestProcsSuffixNormalized: a baseline from a 1-core container (no
// -N suffix) must compare against a multi-core runner's report (with
// one) — the names are the same benchmarks.
func TestProcsSuffixNormalized(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", baseReport)
	cur := write(t, dir, "cur.json", `{"benchmarks":[
		{"name":"BenchmarkReliabilitySweep/j=1-4","runs":2,"metrics":{"points/sec":100}},
		{"name":"BenchmarkReliabilitySweep/j=2-4","runs":2,"metrics":{"points/sec":200}},
		{"name":"BenchmarkCampaignRun/shared-4","runs":2,"metrics":{"cells/sec":1000}},
		{"name":"BenchmarkCampaignRun/isolated-4","runs":2,"metrics":{"cells/sec":50}}
	]}`)
	got, err := run(base, cur, 0.25, []string{"points/sec", "cells/sec"}, true)
	if err != nil {
		t.Fatalf("suffixed names did not match the baseline: %v", err)
	}
	if got != 0 {
		t.Fatalf("regressions = %d, want 0 (identical numbers under suffixed names)", got)
	}
	// "/j=2" must survive normalization — only the trailing procs
	// suffix is stripped.
	if normalizeName("BenchmarkReliabilitySweep/j=2-8") != "BenchmarkReliabilitySweep/j=2" {
		t.Fatal("normalizeName mangled the sub-benchmark name")
	}
}
