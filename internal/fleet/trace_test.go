package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"hbmvolt/internal/chaos"
	"hbmvolt/internal/service"
	"hbmvolt/internal/telemetry"
	tlog "hbmvolt/internal/telemetry/log"
)

// The trace suite pins cross-fleet trace propagation: the trace ID a
// client presents at one node's edge must appear on the span records —
// and structured log records — of every node its sweep touches, healthy
// or partitioned. Traces are observability-only, so every scenario also
// reconfirms the payload byte-identity the fleet already guarantees.

// traceSite is the chaos injection site wrapping the submitting node's
// fleet transport in the degraded scenarios.
const traceSite = "fleet.trace.forward"

// logBuffer is a goroutine-safe sink for structured log records.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// records decodes every buffered line into its structured fields.
func (b *logBuffer) records(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	for _, line := range bytes.Split(b.buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("log line is not one JSON object: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// tracedClient is a service client that presents the trace ID on every
// request, the way an instrumented caller would.
func tracedClient(url, trace string) *service.Client {
	c := service.NewClient(url)
	c.Header = http.Header{telemetry.HeaderTraceID: []string{trace}}
	return c
}

// remoteSpans fetches one node's retained spans for a trace over the
// wire (GET /v1/traces/{id}).
func remoteSpans(t *testing.T, url, trace string) []telemetry.Span {
	t.Helper()
	resp, err := http.Get(url + "/v1/traces/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s on %s: HTTP %d", trace, url, resp.StatusCode)
	}
	var body struct {
		Trace string           `json:"trace"`
		Spans []telemetry.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Trace != trace {
		t.Fatalf("trace body echoes %q, want %q", body.Trace, trace)
	}
	return body.Spans
}

// spanNames collects the set of span names, asserting every span
// carries exactly the wanted trace and the node's own identity.
func spanNames(t *testing.T, spans []telemetry.Span, trace, node string) map[string]bool {
	t.Helper()
	names := make(map[string]bool)
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %q carries trace %q, want %q", s.Name, s.Trace, trace)
		}
		if s.Node != node {
			t.Fatalf("span %q stamped node %q, want %q", s.Name, s.Node, node)
		}
		names[s.Name] = true
	}
	return names
}

// TestTracePropagatesAcrossForward pins the happy path: a trace minted
// by the client and presented to a non-owner node appears on the span
// records of both the forwarder and the owner — one ID, two nodes —
// while the third node never sees it.
func TestTracePropagatesAcrossForward(t *testing.T) {
	nodes := startNodes(t, 3, nil)
	trace := "trace-forward-e2e"
	seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
	req := smallReq(seed)
	want := localPayload(t, req)

	c := tracedClient(nodes[0].url, trace)
	sub, err := c.Submit(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(t.Context(), sub.ID); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	payload, err := c.Result(t.Context(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, want) {
		t.Fatal("forwarded payload differs from single-node compute")
	}

	// The forwarder's records: submission accepted, then served via the
	// fleet forward path, all under the presented trace.
	fwdNames := spanNames(t, remoteSpans(t, nodes[0].url, trace), trace, nodes[0].url)
	for _, wantSpan := range []string{"job.submit", "fleet.forward", "job.run"} {
		if !fwdNames[wantSpan] {
			t.Fatalf("forwarder spans %v: missing %q", fwdNames, wantSpan)
		}
	}
	// The owner's records: it adopted the same trace from the forwarded
	// request's header and ran the sweep under it.
	ownerNames := spanNames(t, remoteSpans(t, nodes[1].url, trace), trace, nodes[1].url)
	for _, wantSpan := range []string{"job.submit", "job.run"} {
		if !ownerNames[wantSpan] {
			t.Fatalf("owner spans %v: missing %q", ownerNames, wantSpan)
		}
	}
	// The bystander never touched the sweep: no spans under this trace.
	if spans := remoteSpans(t, nodes[2].url, trace); len(spans) != 0 {
		t.Fatalf("bystander node retains %d spans for the trace, want 0", len(spans))
	}
}

// TestTraceSurvivesDegradedServes pins the partitioned paths: when
// every remote choice is down the degraded serve keeps the trace on
// the forwarder's span records and its structured fleet logs; when the
// transfer severs mid-body the owner has already adopted the trace, so
// one ID ends up on both nodes' records even though the forward
// failed.
func TestTraceSurvivesDegradedServes(t *testing.T) {
	t.Run("owner-down", func(t *testing.T) {
		logs := &logBuffer{}
		nodes := startNodes(t, 3, func(i int, o *Options) {
			o.ForwardTimeout = 300 * time.Millisecond
			if i == 0 {
				o.Logger = tlog.New(logs, tlog.LevelDebug)
			}
		})
		trace := "trace-owner-down"
		seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
		req := smallReq(seed)
		want := localPayload(t, req)
		// Kill both remote nodes: hedged failover would otherwise rescue
		// the serve through the second choice, and this test pins the
		// path where no remote is left and the serve degrades.
		nodes[1].kill()
		nodes[2].kill()

		c := tracedClient(nodes[0].url, trace)
		sub, err := c.Submit(t.Context(), req)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := c.Wait(t.Context(), sub.ID); err != nil || st != service.StateDone {
			t.Fatalf("Wait = %v, %v", st, err)
		}
		payload, err := c.Result(t.Context(), sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatal("degraded payload differs from single-node compute")
		}

		names := spanNames(t, remoteSpans(t, nodes[0].url, trace), trace, nodes[0].url)
		for _, wantSpan := range []string{"job.submit", "fleet.degrade", "job.run"} {
			if !names[wantSpan] {
				t.Fatalf("degraded-serve spans %v: missing %q", names, wantSpan)
			}
		}
		// The degradation's structured log record carries the same trace
		// as a field — asserted on fields, not substrings.
		found := false
		for _, rec := range logs.records(t) {
			if rec["subsys"] == "fleet" && rec["trace"] == trace {
				if rec["level"] != "warn" {
					t.Fatalf("fleet degrade record at level %v, want warn: %v", rec["level"], rec)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("no structured fleet log record carries trace %q: %v", trace, logs.records(t))
		}
	})

	t.Run("drop-mid-body", func(t *testing.T) {
		// Transfers sever mid-body: the owner receives (and traces) the
		// forwarded submission, but the forwarder cannot finish collecting
		// the result and degrades to local compute. One trace ID must end
		// up on both nodes' span records.
		defer chaos.Activate(chaos.NewPlan().Set(traceSite,
			chaos.Fault{HTTP: chaos.HTTPDropBody, DropAfter: 64}))()
		nodes := startNodes(t, 3, func(i int, o *Options) {
			o.ForwardTimeout = 500 * time.Millisecond
			if i == 0 {
				o.HTTPClient = &http.Client{Transport: &chaos.Transport{Site: traceSite}}
			}
		})
		trace := "trace-drop-mid-body"
		seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
		req := smallReq(seed)
		want := localPayload(t, req)

		c := tracedClient(nodes[0].url, trace)
		sub, err := c.Submit(t.Context(), req)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := c.Wait(t.Context(), sub.ID); err != nil || st != service.StateDone {
			t.Fatalf("Wait = %v, %v", st, err)
		}
		payload, err := c.Result(t.Context(), sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatal("degraded payload differs from single-node compute")
		}

		names := spanNames(t, remoteSpans(t, nodes[0].url, trace), trace, nodes[0].url)
		for _, wantSpan := range []string{"job.submit", "fleet.degrade", "job.run"} {
			if !names[wantSpan] {
				t.Fatalf("forwarder spans %v: missing %q", names, wantSpan)
			}
		}
		// The owner adopted the trace from the severed forward before the
		// transfer died: its records carry the same ID.
		ownerNames := spanNames(t, remoteSpans(t, nodes[1].url, trace), trace, nodes[1].url)
		if !ownerNames["job.submit"] {
			t.Fatalf("owner spans %v: missing %q (trace should have been adopted before the transfer severed)", ownerNames, "job.submit")
		}
	})
}
