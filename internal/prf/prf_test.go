package prf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, 1 << 63, math.MaxUint64} {
		if Mix64(x) != Mix64(x) {
			t.Fatalf("Mix64(%d) not deterministic", x)
		}
	}
}

func TestMix64NotIdentity(t *testing.T) {
	hits := 0
	for x := uint64(0); x < 1000; x++ {
		if Mix64(x) == x {
			hits++
		}
	}
	if hits > 1 {
		t.Fatalf("Mix64 looks like identity on %d/1000 inputs", hits)
	}
}

// Mix64 is a bijection, so distinct inputs in a modest window must map to
// distinct outputs.
func TestMix64InjectiveWindow(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for x := uint64(0); x < 1<<16; x++ {
		h := Mix64(x)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", x, prev)
		}
		seen[h] = x
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(x uint64) bool {
		v := Float64(x)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashFamilySeparation(t *testing.T) {
	// Hash4 with different argument order should (overwhelmingly) differ.
	if Hash4(1, 2, 3, 4) == Hash4(4, 3, 2, 1) {
		t.Fatal("Hash4 ignores argument order")
	}
	if Hash2(0, 0) == Hash3(0, 0, 0) {
		t.Fatal("Hash2 and Hash3 collide on zero input")
	}
}

func TestUniformMean(t *testing.T) {
	const n = 20000
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += Uniform(7, i, 13, 99)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Uniform mean = %v, want ~0.5", mean)
	}
}

func TestSourceStreamDiffersBySeed(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestSourceReproducible(t *testing.T) {
	a, b := NewSource(99), NewSource(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestSourceIntnBounds(t *testing.T) {
	s := NewSource(5)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestSourceIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := NewSource(123)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

// Fill must be stream-equivalent to sequential Uint64 calls: same
// values, same post-call state, at every batch size and chunking.
func TestSourceFillMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 255, 1000} {
		seq := NewSource(42)
		want := make([]uint64, n)
		for i := range want {
			want[i] = seq.Uint64()
		}
		bulk := NewSource(42)
		got := make([]uint64, n)
		bulk.Fill(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Fill[%d] = %#x, sequential = %#x", n, i, got[i], want[i])
			}
		}
		if seq.Uint64() != bulk.Uint64() {
			t.Fatalf("n=%d: stream state diverged after Fill", n)
		}
	}
	// Chunked fills concatenate to the same stream.
	chunked, whole := NewSource(7), NewSource(7)
	var buf [96]uint64
	chunked.Fill(buf[:32])
	chunked.Fill(buf[32:80])
	chunked.Fill(buf[80:])
	ref := make([]uint64, len(buf))
	whole.Fill(ref)
	for i := range buf {
		if buf[i] != ref[i] {
			t.Fatalf("chunked Fill diverged at %d", i)
		}
	}
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mix64(uint64(i))
	}
	_ = acc
}

func BenchmarkHash5(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Hash5(1, 2, 3, uint64(i), 5)
	}
	_ = acc
}

// BenchmarkSourceDraws compares per-call stream draws against the
// block-batched Fill the sparse fault enumeration uses — the per-draw
// setup the batching amortizes.
func BenchmarkSourceDraws(b *testing.B) {
	const n = 256
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		s := NewSource(1)
		var acc uint64
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				acc ^= s.Uint64()
			}
		}
		_ = acc
	})
	b.Run("fill", func(b *testing.B) {
		b.ReportAllocs()
		s := NewSource(1)
		var buf [n]uint64
		var acc uint64
		for i := 0; i < b.N; i++ {
			s.Fill(buf[:])
			acc ^= buf[n-1]
		}
		_ = acc
	})
}
