package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"hbmvolt/internal/service"
	"hbmvolt/internal/telemetry"
)

// API serves the campaign routes on top of a shared sweep-service job
// manager: campaigns fan their cells into the same queue, worker pool
// and result cache that single-sweep submissions use, so a campaign
// cell and an identical ad-hoc sweep coalesce onto one computation.
//
//	POST   /v1/campaigns       submit a spec (or {"builtin": name})
//	GET    /v1/campaigns       list campaign runs
//	GET    /v1/campaigns/{id}  status; manifest included once done
//	DELETE /v1/campaigns/{id}  cancel the run's remaining cells
type API struct {
	mgr *service.Manager

	mu     sync.Mutex
	nextID uint64
	runs   map[string]*apiRun
	order  []string
}

// maxRuns bounds retained campaign records; the oldest terminal runs
// are evicted beyond it.
const maxRuns = 256

// apiRun is one submitted campaign's lifecycle. Only the manifest is
// retained after completion — cell payloads stay addressable through
// the shared result cache, not through the campaign record.
type apiRun struct {
	id     string
	spec   Spec
	fleet  int
	shared bool
	trace  string
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string // "running" | "done" | "failed" | "cancelled"
	done     int
	total    int
	errMsg   string
	manifest *Manifest
}

// NewAPI builds the campaign API over mgr.
func NewAPI(mgr *service.Manager) *API {
	return &API{mgr: mgr, runs: make(map[string]*apiRun)}
}

// Register mounts the campaign routes on mux.
func (a *API) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/campaigns", a.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", a.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", a.handleStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", a.handleCancel)
}

// SubmitBody is the POST /v1/campaigns request: either a built-in
// campaign by name or an inline spec.
type SubmitBody struct {
	// Builtin names a built-in campaign ("paper-repro"); Smoke selects
	// its smoke-scale variant. Mutually exclusive with Spec.
	Builtin string `json:"builtin,omitempty"`
	Smoke   bool   `json:"smoke,omitempty"`
	// Spec is an inline campaign spec.
	Spec *Spec `json:"spec,omitempty"`
	// Fleet is the per-sweep board-fleet size hint (never affects
	// results or the manifest).
	Fleet int `json:"fleet,omitempty"`
	// Shared runs the campaign through the sweep planner: reliability
	// cells grouped by physics sub-key execute in shared-enumeration
	// mode (see Options.SharedEnumeration).
	Shared bool `json:"shared,omitempty"`
}

// Status is the externally visible campaign state.
type Status struct {
	ID       string `json:"id"`
	Campaign string `json:"campaign"`
	State    string `json:"state"`
	// Done/Total count (cell, repeat) executions.
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
	// Trace is the run's observability trace ID: every cell's spans
	// across the fleet carry it (see GET /v1/traces/{id}).
	Trace string `json:"trace,omitempty"`
	// Manifest is present once State is "done".
	Manifest *Manifest `json:"manifest,omitempty"`
}

func (r *apiRun) status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:       r.id,
		Campaign: r.spec.Name,
		State:    r.state,
		Done:     r.done,
		Total:    r.total,
		Error:    r.errMsg,
		Trace:    r.trace,
	}
	st.Manifest = r.manifest
	return st
}

// maxBody bounds campaign POST bodies; a maximal spec is a few hundred
// KB of grids and pattern sets.
const maxBody = 4 << 20

// maxActiveRuns bounds concurrently running campaigns; submissions
// beyond it get 503 (the cells already backpressure through the sweep
// queue, but the campaign records and their driver goroutines need an
// admission bound of their own).
const maxActiveRuns = 16

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Campaign submissions draw admission tokens from the same
	// per-client bucket as sweep submissions: a client cannot dodge its
	// rate by wrapping sweeps in campaigns. The manager's key honors
	// TrustProxy, so clients behind a trusted proxy get their own
	// buckets here too.
	client := a.mgr.ClientKey(r)
	if ok, retryAfter := a.mgr.AllowClient(client); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		service.WriteError(w, http.StatusTooManyRequests, "client %s over submission rate", client)
		return
	}
	var body SubmitBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		service.WriteError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var spec Spec
	switch {
	case body.Builtin != "" && body.Spec != nil:
		service.WriteError(w, http.StatusBadRequest, "builtin and spec are mutually exclusive")
		return
	case body.Builtin != "":
		var err error
		if spec, err = Builtin(body.Builtin, body.Smoke); err != nil {
			service.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case body.Spec != nil:
		spec = *body.Spec
	default:
		service.WriteError(w, http.StatusBadRequest, "missing campaign: want \"builtin\" or \"spec\"")
		return
	}
	if body.Fleet < 0 || body.Fleet > 256 {
		service.WriteError(w, http.StatusBadRequest, "fleet %d out of [0, 256]", body.Fleet)
		return
	}
	if err := spec.Normalize(); err != nil {
		service.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The campaign edge mints (or adopts) the trace ID exactly like the
	// sweep edge: every cell submission carries it, so one ID follows
	// the whole campaign through coalescing, cache tiers, and fleet
	// forwards. Observability only — never a cache key or manifest input.
	trace := r.Header.Get(telemetry.HeaderTraceID)
	if !telemetry.ValidTraceID(trace) {
		trace = telemetry.NewTraceID()
	}
	w.Header().Set(telemetry.HeaderTraceID, trace)

	ctx, cancel := context.WithCancel(context.Background())
	run := &apiRun{spec: spec, fleet: body.Fleet, shared: body.Shared, trace: trace, cancel: cancel, state: "running", total: spec.Executions()}
	a.mu.Lock()
	if active := a.activeLocked(); active >= maxActiveRuns {
		a.mu.Unlock()
		cancel()
		// Retry-After reflects the sweep queue the running campaigns are
		// draining through — observed job latency, not a hardcoded guess.
		w.Header().Set("Retry-After", strconv.Itoa(a.mgr.RetryAfterSeconds()))
		service.WriteError(w, http.StatusServiceUnavailable,
			"%d campaigns already running (max %d)", active, maxActiveRuns)
		return
	}
	a.nextID++
	run.id = fmt.Sprintf("cmp-%06d", a.nextID)
	a.runs[run.id] = run
	a.order = append(a.order, run.id)
	a.evictLocked()
	a.mu.Unlock()

	go a.execute(ctx, run)
	service.WriteJSON(w, http.StatusAccepted, run.status())
}

// execute drives one campaign run to completion in the background.
func (a *API) execute(ctx context.Context, run *apiRun) {
	defer run.cancel()
	a.mgr.Recorder().Record(run.trace, "campaign.submit", map[string]string{
		"campaign": run.spec.Name, "id": run.id,
	})
	res, err := Execute(ctx, a.mgr, run.spec, Options{
		Fleet:             run.fleet,
		SharedEnumeration: run.shared,
		TraceID:           run.trace,
		OnCell: func(done, total int) {
			run.mu.Lock()
			run.done, run.total = done, total
			run.mu.Unlock()
		},
	})
	run.mu.Lock()
	defer run.mu.Unlock()
	switch {
	case err == nil:
		run.state = "done"
		run.manifest = &res.Manifest
	case errors.Is(err, context.Canceled):
		run.state = "cancelled"
	default:
		run.state = "failed"
		run.errMsg = err.Error()
	}
	newCampaignMetrics(a.mgr.Metrics()).runs.With(run.state).Inc()
}

// activeLocked counts non-terminal runs (a.mu held).
func (a *API) activeLocked() int {
	n := 0
	for _, run := range a.runs {
		run.mu.Lock()
		if run.state == "running" {
			n++
		}
		run.mu.Unlock()
	}
	return n
}

// evictLocked drops the oldest terminal runs beyond maxRuns (a.mu held).
func (a *API) evictLocked() {
	for len(a.runs) > maxRuns {
		evicted := false
		for i, id := range a.order {
			run, ok := a.runs[id]
			if !ok {
				continue
			}
			run.mu.Lock()
			terminal := run.state != "running"
			run.mu.Unlock()
			if !terminal {
				continue
			}
			delete(a.runs, id)
			a.order = append(a.order[:i:i], a.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

func (a *API) run(w http.ResponseWriter, r *http.Request) (*apiRun, bool) {
	id := r.PathValue("id")
	a.mu.Lock()
	run, ok := a.runs[id]
	a.mu.Unlock()
	if !ok {
		service.WriteError(w, http.StatusNotFound, "no campaign %q", id)
		return nil, false
	}
	return run, true
}

func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	run, ok := a.run(w, r)
	if !ok {
		return
	}
	service.WriteJSON(w, http.StatusOK, run.status())
}

// handleCancel aborts a run: the engine's cleanup then cancels every
// sweep the campaign submitted (shared-manager semantics — a cell
// coalesced with another client's identical sweep is cancelled for
// both, mirroring DELETE /v1/sweeps/{id}).
func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := a.run(w, r)
	if !ok {
		return
	}
	run.cancel()
	service.WriteJSON(w, http.StatusOK, run.status())
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	ids := append([]string(nil), a.order...)
	runs := make([]*apiRun, 0, len(ids))
	for _, id := range ids {
		if run, ok := a.runs[id]; ok {
			runs = append(runs, run)
		}
	}
	a.mu.Unlock()
	out := make([]Status, 0, len(runs))
	for _, run := range runs {
		st := run.status()
		st.Manifest = nil // list stays light
		out = append(out, st)
	}
	service.WriteJSON(w, http.StatusOK, out)
}
