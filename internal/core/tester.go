package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"

	"hbmvolt/internal/axi"
	"hbmvolt/internal/board"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
	"hbmvolt/internal/stats"
)

// ReliabilityConfig configures Algorithm 1.
type ReliabilityConfig struct {
	// Board under test.
	Board *board.Board
	// Ports to exercise; nil means all 32 (the paper's whole-HBM test;
	// a single entry reproduces the per-PC test).
	Ports []hbm.PortID
	// Patterns to probe; nil means {all-1s, all-0s} as in the paper.
	Patterns []pattern.Pattern
	// WordsPerPort is memSize per port; 0 means the full pseudo channel.
	WordsPerPort uint64
	// BatchSize is the repetition count; 0 means 5 (use PaperBatchSize
	// for the full methodology — it is just slower).
	BatchSize int
	// Grid is the voltage ladder, descending; nil means the paper's
	// 1.20 V → 0.81 V sweep.
	Grid []float64
	// Parallel runs the ports of each (voltage, pattern) step
	// concurrently, as the 32 hardware traffic generators do. Results
	// are identical to sequential execution (ports are independent and
	// the fault model is deterministic); only wall time changes.
	Parallel bool
	// Workers shards the sweep's voltage points across a fleet of board
	// clones (see SweepScheduler). 0 or 1 runs the classic sequential
	// sweep on Board; larger values distribute grid points over that many
	// workers, each driving its own clone of Board. Results are
	// bit-identical at every worker count; only wall time changes.
	Workers int
	// SharedEnumeration evaluates every pattern of a voltage point from
	// one pattern-agnostic stuck-cell enumeration (faults.Enumeration)
	// instead of re-enumerating per pattern, memoized process-wide so
	// sweeps sharing a (fingerprint × voltage) sub-key — across patterns,
	// batch runs, and whole campaigns — pay for unique physics, not for
	// cells. The shared mode is a distinct (statistically identical,
	// separately golden-pinned) realization of the sparse device; on the
	// bit-exact sampler it is bit-identical to the legacy path. Patterns
	// must have a closed-form ones density (all built-ins do). Results
	// remain bit-identical at every Workers count.
	SharedEnumeration bool
	// OnPoint, when non-nil, is invoked after each completed voltage
	// point with monotone progress counters. Under a sharded sweep the
	// callback is serialized but arrives in completion order, not grid
	// order.
	OnPoint ProgressFunc
}

func (c *ReliabilityConfig) fill() error {
	if c.Board == nil {
		return errors.New("core: ReliabilityConfig.Board is nil")
	}
	if c.Ports == nil {
		for i := 0; i < hbm.MaxPorts; i++ {
			c.Ports = append(c.Ports, hbm.PortID(i))
		}
	}
	if c.Patterns == nil {
		c.Patterns = []pattern.Pattern{pattern.AllOnes(), pattern.AllZeros()}
	}
	if c.WordsPerPort == 0 {
		c.WordsPerPort = c.Board.Org.WordsPerPC
	}
	if c.WordsPerPort > c.Board.Org.WordsPerPC {
		return fmt.Errorf("core: WordsPerPort %d exceeds PC capacity %d",
			c.WordsPerPort, c.Board.Org.WordsPerPC)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 5
	}
	if c.Grid == nil {
		c.Grid = faults.PaperGrid()
	}
	if c.SharedEnumeration {
		for _, p := range c.Patterns {
			if _, ok := pattern.OnesFraction(p); !ok {
				return fmt.Errorf("core: SharedEnumeration requires patterns with a closed-form ones density; %q has none", p.Name())
			}
		}
	}
	return nil
}

// PortObservation is the batch-averaged outcome of one (port, pattern)
// test at one voltage.
type PortObservation struct {
	Port        hbm.PortID
	Pattern     string
	MeanFlips   float64
	MeanFaulty  float64 // words with >= 1 flip
	WordsPerRun uint64
	// BitFaultRate is MeanFlips / (WordsPerRun*256).
	BitFaultRate float64
	// Batch summarizes the per-run total flip counts.
	Batch stats.Summary
}

// VoltagePoint is everything observed at one supply voltage.
type VoltagePoint struct {
	Volts        float64
	Crashed      bool
	Observations []PortObservation
	// MeanFlips aggregates both patterns and all ports per run.
	MeanFlips   float64
	BitsChecked float64
	// Flips10/Flips01 are the batch-mean 1→0 / 0→1 counts.
	Flips10, Flips01 float64
}

// FaultRate returns the overall bit fault rate at this voltage.
func (p VoltagePoint) FaultRate() float64 {
	if p.BitsChecked == 0 {
		return 0
	}
	return p.MeanFlips / p.BitsChecked
}

// ReliabilityResult is the outcome of a full Algorithm 1 sweep.
type ReliabilityResult struct {
	Points []VoltagePoint
	// Margin is the statistical error margin of the batch size at
	// DefaultConfidence.
	Margin float64
}

// Point returns the voltage point for v, or nil. Voltages match within
// half a grid step, so values like 0.87 resolve regardless of whether
// the caller and the grid builder accumulated the same float64 rounding.
func (r *ReliabilityResult) Point(v float64) *VoltagePoint {
	for i := range r.Points {
		if math.Abs(r.Points[i].Volts-v) < faults.VStep/2 {
			return &r.Points[i]
		}
	}
	return nil
}

// RunReliability executes Algorithm 1: for each voltage of the grid (top
// down), repeat batchSize times {reset ports; write pattern; read back
// and count mismatches}, for every configured pattern and port. A crash
// (voltage below V_critical) is recorded and the board power-cycled, as
// the paper's procedure requires. With cfg.Workers > 1 the grid is
// sharded across a board fleet (see SweepScheduler); results are
// bit-identical either way. Every exit — success, mid-sweep error, or
// cancellation — leaves the board back at nominal voltage.
func RunReliability(cfg ReliabilityConfig) (*ReliabilityResult, error) {
	return RunReliabilitySweep(context.Background(), cfg)
}

// RunReliabilitySweep is RunReliability with context cancellation: a
// cancelled ctx stops the sweep between voltage points and returns
// ctx.Err().
func RunReliabilitySweep(ctx context.Context, cfg ReliabilityConfig) (*ReliabilityResult, error) {
	sch := &SweepScheduler{Workers: max(cfg.Workers, 1), OnProgress: cfg.OnPoint}
	return sch.RunReliability(ctx, cfg)
}

// restoreNominal re-programs the board to V_nom, joining a restore
// failure into err unless an earlier error already explains the exit.
// Deferred by every sweep path so no exit leaves the board undervolted.
func restoreNominal(b *board.Board, err *error) {
	if rerr := b.SetHBMVoltage(faults.VNom); rerr != nil && *err == nil {
		*err = fmt.Errorf("core: restoring nominal voltage: %w", rerr)
	}
}

// runSequential is the single-board reference path: grid points visited
// in order on one board. The sharded scheduler must match its output
// bit for bit.
func runSequential(ctx context.Context, cfg *ReliabilityConfig, res *ReliabilityResult, prog *progressTracker) (err error) {
	b := cfg.Board
	defer restoreNominal(b, &err)
	for i, v := range cfg.Grid {
		if err := ctx.Err(); err != nil {
			return err
		}
		pt, err := runVoltagePoint(ctx, b, cfg, v)
		if err != nil {
			return err
		}
		res.Points[i] = pt
		prog.completed(pt)
	}
	return nil
}

// voltageBand buckets a grid voltage into a 0.05 V band for profiling
// labels, so a CPU profile of a full 1.20 V → 0.81 V sweep attributes
// samples by physics regime (nominal, degrading, near-critical) with
// bounded label cardinality.
func voltageBand(v float64) string {
	lo := math.Floor(v*20) / 20
	return fmt.Sprintf("%.2f-%.2f", lo, lo+0.05)
}

// runVoltagePoint executes one full Algorithm 1 step at voltage v on b:
// program the rail, record and recover a crash, otherwise run every
// configured pattern over every port for the whole batch. The outcome is
// a pure function of (voltage, pattern set, port set, batch size) and
// the board's seeded configuration — it depends neither on which board
// of a fleet evaluates it nor on which points ran before, which is the
// invariant that makes sharded sweeps bit-identical to sequential ones.
// ctx carries profiling labels (mode, voltage band) and the telemetry
// trace for the enum-store lookups; it never influences the outcome.
func runVoltagePoint(ctx context.Context, b *board.Board, cfg *ReliabilityConfig, v float64) (VoltagePoint, error) {
	if err := b.SetHBMVoltage(v); err != nil {
		return VoltagePoint{}, fmt.Errorf("core: setting %vV: %w", v, err)
	}
	pt := VoltagePoint{Volts: v}
	if b.Crashed() {
		// Below V_critical the stacks stop responding; restoring the
		// voltage does not help — power cycle and move on.
		pt.Crashed = true
		if err := b.PowerCycle(); err != nil {
			return VoltagePoint{}, err
		}
		return pt, nil
	}

	mode := "isolated"
	if cfg.SharedEnumeration {
		mode = "shared"
	}
	var err error
	pprof.Do(ctx, pprof.Labels("hbmvolt_mode", mode, "hbmvolt_vband", voltageBand(v)), func(ctx context.Context) {
		if cfg.SharedEnumeration {
			pt, err = sharedVoltagePoint(ctx, b, cfg, pt)
		} else {
			pt, err = isolatedVoltagePoint(ctx, b, cfg, pt)
		}
	})
	if err != nil {
		return VoltagePoint{}, err
	}
	return pt, nil
}

// isolatedVoltagePoint finishes one non-crashed voltage point on the
// legacy per-pattern enumeration path, labeling each pattern's
// fill/check pass for the profiler.
func isolatedVoltagePoint(ctx context.Context, b *board.Board, cfg *ReliabilityConfig, pt VoltagePoint) (VoltagePoint, error) {
	scratch := newPortScratch(len(cfg.Ports), cfg.BatchSize)
	for _, pat := range cfg.Patterns {
		var observations []PortObservation
		var err error
		pprof.Do(ctx, pprof.Labels("hbmvolt_pattern", pat.Name()), func(context.Context) {
			observations, err = runPorts(b, cfg.Ports, pat, cfg.WordsPerPort, cfg.BatchSize, cfg.Parallel, scratch)
		})
		if err != nil {
			return VoltagePoint{}, fmt.Errorf("core: pattern %s at %vV: %w", pat.Name(), pt.Volts, err)
		}
		for _, obs := range observations {
			pt.Observations = append(pt.Observations, obs)
			pt.MeanFlips += obs.MeanFlips
			pt.BitsChecked += float64(obs.WordsPerRun) * pattern.WordBits
			switch pat.Name() {
			case "all1":
				pt.Flips10 += obs.MeanFlips
			case "all0":
				pt.Flips01 += obs.MeanFlips
			}
		}
	}
	return pt, nil
}

// portAcc accumulates one (port, pattern) test's batch statistics.
type portAcc struct {
	flips, faulty float64
	runs          []float64
}

// portScratch holds runPorts' per-call buffers. A voltage point
// allocates one scratch and reuses it across its patterns, so the
// batched fill/check hot path allocates per point, not per (pattern ×
// call) — the b.ReportAllocs discipline of the sweep benchmarks.
type portScratch struct {
	accs    []portAcc
	saved   []bool
	results []axi.Stats
	errs    []error
	out     []PortObservation
}

// newPortScratch sizes a scratch for nPorts ports and batch reps.
func newPortScratch(nPorts, batch int) *portScratch {
	s := &portScratch{
		accs:    make([]portAcc, nPorts),
		saved:   make([]bool, nPorts),
		results: make([]axi.Stats, nPorts),
		errs:    make([]error, nPorts),
		out:     make([]PortObservation, nPorts),
	}
	for i := range s.accs {
		s.accs[i].runs = make([]float64, 0, batch)
	}
	return s
}

// reset clears the accumulators for another pattern pass.
func (s *portScratch) reset() {
	for i := range s.accs {
		s.accs[i].flips, s.accs[i].faulty = 0, 0
		s.accs[i].runs = s.accs[i].runs[:0]
		s.errs[i] = nil
	}
}

// runPorts runs the batched fill/check of Algorithm 1 on the given
// ports, optionally driving them concurrently within each batch
// repetition (the hardware's natural mode: all traffic generators run
// at once). Parallel execution reuses one bounded worker pool across
// every (port × repetition) task — repetitions form a barrier, because
// the batch-rep register is device-global state, but the goroutines and
// result buffers live once for the whole batch instead of being respawned
// per repetition. The returned slice aliases scratch.out; callers copy
// the observations out before the next call.
func runPorts(b *board.Board, ports []hbm.PortID, pat pattern.Pattern, words uint64, batch int, parallel bool, scratch *portScratch) ([]PortObservation, error) {
	if scratch == nil {
		scratch = newPortScratch(len(ports), batch)
	}
	scratch.reset()
	accs := scratch.accs

	saved := scratch.saved
	for i, p := range ports {
		saved[i] = b.TGs[p].Port().Enabled()
		b.TGs[p].Port().SetEnabled(true)
	}
	defer func() {
		for i, p := range ports {
			b.TGs[p].Port().SetEnabled(saved[i])
		}
	}()

	results := scratch.results
	errs := scratch.errs

	var tasks chan int
	var wg sync.WaitGroup
	if workers := min(len(ports), runtime.GOMAXPROCS(0)); parallel && workers > 1 {
		tasks = make(chan int, len(ports))
		defer close(tasks)
		for w := 0; w < workers; w++ {
			go func() {
				for i := range tasks {
					results[i], errs[i] = runOnePass(b.TGs[ports[i]], pat, words)
					wg.Done()
				}
			}()
		}
	}

	for rep := 0; rep < batch; rep++ {
		b.Device.SetBatchRep(uint64(rep))
		if tasks != nil {
			wg.Add(len(ports))
			for i := range ports {
				tasks <- i
			}
			wg.Wait()
		} else {
			for i, p := range ports {
				results[i], errs[i] = runOnePass(b.TGs[p], pat, words)
			}
		}
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("port %d: %w", ports[i], err)
			}
		}
		for i, st := range results {
			accs[i].flips += float64(st.Flips.Total())
			accs[i].faulty += float64(st.FaultyWords)
			accs[i].runs = append(accs[i].runs, float64(st.Flips.Total()))
		}
	}
	b.Device.SetBatchRep(0)

	out := scratch.out
	for i, p := range ports {
		sum, err := stats.Summarize(accs[i].runs, DefaultConfidence)
		if err != nil {
			return nil, err
		}
		n := float64(batch)
		out[i] = PortObservation{
			Port:         p,
			Pattern:      pat.Name(),
			MeanFlips:    accs[i].flips / n,
			MeanFaulty:   accs[i].faulty / n,
			WordsPerRun:  words,
			BitFaultRate: accs[i].flips / n / (float64(words) * pattern.WordBits),
			Batch:        sum,
		}
	}
	return out, nil
}

// runOnePass executes one fill/check pass on a traffic generator.
func runOnePass(tg *axi.TrafficGen, pat pattern.Pattern, words uint64) (axi.Stats, error) {
	if err := tg.Reset(); err != nil {
		return axi.Stats{}, err
	}
	return tg.Run(axi.FillCheckProgram(pat, 0, words))
}
