package faults

import (
	"math"
	"testing"

	"hbmvolt/internal/pattern"
)

func sparseModel(t testing.TB, seed uint64, words uint64) *Model {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Geometry = Geometry{WordsPerPC: words, WordsPerRow: 32}
	cfg.SparseEnumeration = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSparseMatchesAnalytic is the sparse twin of
// TestMonteCarloMatchesAnalytic: the O(#faults) enumeration must land
// within Poisson bounds of the analytic expectation for both flip
// classes, in both the per-row enumeration regime (moderate undervolt)
// and the aggregate-draw regime (deep undervolt, bulk collapse active).
func TestSparseMatchesAnalytic(t *testing.T) {
	const words = 1 << 18
	m := sparseModel(t, 11, words)
	cases := []struct {
		stack, pc int
		v         float64
	}{
		{1, 2, 0.90},  // sensitive PC18, cluster-only, enumeration regime
		{0, 4, 0.92},  // sensitive PC4 higher voltage, tiny counts
		{0, 12, 0.87}, // mid PC, larger counts
		{0, 1, 0.85},  // robust PC in the bulk collapse, aggregate regime
	}
	for _, c := range cases {
		s := m.NewSampler(c.stack, c.pc, c.v)
		// All-1s exposes stuck-at-0 (1→0); all-0s exposes stuck-at-1.
		f10, _ := s.CheckUniformRange(0, words, pattern.AllOnesWord, pattern.AllOnesWord)
		f01, _ := s.CheckUniformRange(0, words, pattern.AllZerosWord, pattern.AllZerosWord)
		exp10 := m.ExpectedFaults(c.stack, c.pc, c.v, OneToZero, 0, words)
		exp01 := m.ExpectedFaults(c.stack, c.pc, c.v, ZeroToOne, 0, words)
		for _, chk := range []struct {
			name     string
			got, exp float64
		}{
			{"1to0", float64(f10.OneToZero), exp10},
			{"0to1", float64(f01.ZeroToOne), exp01},
		} {
			sd := math.Sqrt(math.Max(chk.exp, 1))
			if math.Abs(chk.got-chk.exp) > 6*sd {
				t.Errorf("stack%d pc%d %vV %s: got %v, want %v ± %v",
					c.stack, c.pc, c.v, chk.name, chk.got, chk.exp, 6*sd)
			}
		}
		if (f10.ZeroToOne != 0) || (f01.OneToZero != 0) {
			t.Errorf("stack%d pc%d %vV: impossible flip polarity under uniform patterns", c.stack, c.pc, c.v)
		}
	}
}

// TestSparseRangeFaultsConsistent pins the determinism contract: the
// draws depend only on (seed, PC, row, rep), so fault enumeration is
// identical across repeated and split queries.
func TestSparseRangeFaultsConsistent(t *testing.T) {
	m := sparseModel(t, 7, 1<<14)
	s := m.NewBatchSampler(1, 2, 0.89, 3)
	collect := func(windows [][2]uint64) []uint64 {
		var out []uint64
		for _, w := range windows {
			s.RangeFaults(w[0], w[1]-w[0], func(addr uint64, f CellFault) {
				out = append(out, addr<<9|uint64(f.Bit)<<1|uint64(f.Polarity))
			})
		}
		return out
	}
	whole := collect([][2]uint64{{0, 1 << 14}})
	if len(whole) == 0 {
		t.Fatal("no faults drawn on a sensitive PC at 0.89V; test is vacuous")
	}
	split := collect([][2]uint64{{0, 5000}, {5000, 1 << 14}})
	if len(whole) != len(split) {
		t.Fatalf("split query changed fault count: %d vs %d", len(whole), len(split))
	}
	for i := range whole {
		if whole[i] != split[i] {
			t.Fatalf("fault %d differs between whole and split queries", i)
		}
	}
	// Ascending (addr, bit) order.
	for i := 1; i < len(whole); i++ {
		if whole[i]>>1 <= whole[i-1]>>1 {
			t.Fatalf("faults not strictly ascending at %d", i)
		}
	}
	// WordFaults must agree with RangeFaults word by word.
	seen := map[uint64][]CellFault{}
	s.RangeFaults(0, 1<<14, func(addr uint64, f CellFault) {
		seen[addr] = append(seen[addr], f)
	})
	for addr, want := range seen {
		got := s.WordFaults(addr, nil)
		if len(got) != len(want) {
			t.Fatalf("addr %d: WordFaults %d vs RangeFaults %d", addr, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("addr %d fault %d differs", addr, i)
			}
		}
	}
}

// TestSparseClusterConfinement: above the bulk knee, sparse draws must
// stay inside weak clusters exactly like the bit-exact path.
func TestSparseClusterConfinement(t *testing.T) {
	m := sparseModel(t, 9, 1<<14)
	s := m.NewSampler(1, 2, 0.90)
	n := 0
	s.RangeFaults(0, 1<<14, func(addr uint64, f CellFault) {
		n++
		if !s.InCluster(addr) {
			t.Fatalf("sparse fault outside cluster at addr %d", addr)
		}
	})
	if !s.Sparse() {
		t.Fatal("sampler not in sparse mode")
	}
}

// TestSparseBatchRepsVary: sparse draws are keyed on rep, so batch
// repetitions realize different fault sets while staying unbiased.
func TestSparseBatchRepsVary(t *testing.T) {
	const words = 1 << 16
	m := sparseModel(t, 23, words)
	count := func(rep uint64) float64 {
		s := m.NewBatchSampler(1, 2, 0.90, rep)
		f, _ := s.CheckUniformRange(0, words, pattern.AllOnesWord, pattern.AllOnesWord)
		return float64(f.OneToZero)
	}
	base := count(0)
	varies := false
	var sum float64
	const reps = 20
	for rep := uint64(0); rep < reps; rep++ {
		c := count(rep)
		sum += c
		if c != base {
			varies = true
		}
	}
	if !varies {
		t.Fatal("sparse batch reps produced identical fault counts")
	}
	want := m.ExpectedFaults(1, 2, 0.90, OneToZero, 0, words)
	if want < 20 {
		t.Skipf("expectation %v too small for a stable check", want)
	}
	mean := sum / reps
	if mean < want*0.8 || mean > want*1.25 {
		t.Fatalf("rep-averaged sparse count %v vs expectation %v", mean, want)
	}
}

// TestSparseAggregateFaultyWordsPlausible: in the aggregate regime the
// drawn faulty-word count must respect the physical bounds relative to
// the drawn flip totals and the window size.
func TestSparseAggregateFaultyWordsPlausible(t *testing.T) {
	const words = 1 << 18
	m := sparseModel(t, 5, words)
	for _, v := range []float64{0.87, 0.855, 0.85, 0.84} {
		s := m.NewSampler(0, 3, v)
		f, fw := s.CheckUniformRange(0, words, pattern.AllOnesWord, pattern.AllOnesWord)
		total := uint64(f.Total())
		if fw > words {
			t.Fatalf("%vV: faulty words %d exceed window %d", v, fw, words)
		}
		if fw > total {
			t.Fatalf("%vV: faulty words %d exceed total flips %d", v, fw, total)
		}
		if total > 0 && fw < (total+255)/256 {
			t.Fatalf("%vV: %d flips cannot fit in %d words", v, total, fw)
		}
	}
	// At 0.84V essentially every word must be faulty.
	s := m.NewSampler(0, 3, 0.84)
	_, fw := s.CheckUniformRange(0, words, pattern.AllOnesWord, pattern.AllOnesWord)
	if float64(fw) < 0.99*words {
		t.Fatalf("collapse voltage left %d of %d words clean", words-fw, words)
	}
}
