package faults

// Memoized fault-rate atlas: every analytic figure and study walks the
// same (voltage, flip-kind) grid and re-derives the same per-PC cell
// rates — Fig. 4 per stack, Fig. 5 per PC, Fig. 6 per tolerance, the
// capacity and temperature studies, and the power model's stuck-cell
// derating (which runs once per INA226 sample). This file caches those
// expectations once per device realization.
//
// The cache is keyed by the model's config fingerprint × voltage × flip
// kind. Entries are shared process-wide: two Models built from the same
// (default-filled) configuration — e.g. a board-scale model and the
// full-capacity figure atlas with equal geometry, or the per-temperature
// models a repeated TempStudy rebuilds — resolve to one atlas. The
// SparseEnumeration flag is deliberately excluded from the fingerprint
// because it changes only the sampling realization, never the analytic
// expectations, so exact and sparse twins share their entries too.
//
// Concurrency: lookups take an RWMutex read lock; misses compute outside
// the lock and publish under the write lock (double-checked, idempotent —
// rates are pure functions of the fingerprinted fields, so racing
// computations produce identical entries). The sweep scheduler's board
// fleet hits the atlas from many goroutines at once.

import (
	"math"
	"sync"

	"hbmvolt/internal/prf"
)

// Fingerprint condenses every field the analytic rates depend on — seed,
// temperature, geometry, and the per-PC variation profiles — into one
// cache key. Call it on a default-filled config (Model.Config returns
// one); two configs with equal fingerprints realize identical expected
// rates at every voltage.
func (c Config) Fingerprint() uint64 {
	h := prf.Hash4(c.Seed, math.Float64bits(c.Temperature),
		c.Geometry.WordsPerPC, c.Geometry.WordsPerRow)
	for i := range c.Profiles {
		p := c.Profiles[i]
		h = prf.Hash4(h, math.Float64bits(p.WeakMult),
			math.Float64bits(p.ClusterFraction), uint64(p.ClusterCount))
	}
	return h
}

// rateKey addresses one memoized grid point. Voltages are keyed by their
// exact bit pattern: every consumer draws grid values from the same
// integer-millivolt builders (VoltageGrid), so equal voltages hash equal
// and no quantization is needed.
type rateKey struct {
	vbits uint64
	kind  FlipKind
}

// rateEntry holds everything derivable from one (voltage, kind) pass
// over the PCs.
type rateEntry struct {
	pcs    [NumPCs]float64
	stacks [NumStacks]float64
	global float64
}

// maxAtlasEntries bounds one atlas's memory: a full paper grid × 3 flip
// kinds is ~120 entries, so the cap only triggers for adversarial
// callers sweeping thousands of distinct voltages; they get a reset, not
// unbounded growth.
const maxAtlasEntries = 1 << 14

// rateAtlas is the concurrency-safe memo for one config fingerprint.
type rateAtlas struct {
	mu      sync.RWMutex
	entries map[rateKey]*rateEntry
}

// maxAtlases bounds the process-wide fingerprint map: a workload that
// churns through distinct configs (seed scans, temperature grids) would
// otherwise accumulate one atlas per fingerprint forever. On overflow
// the map resets; live Models keep the atlas pointer they captured at
// construction, so only future Models lose the shared cache.
const maxAtlases = 256

var (
	atlasMu sync.Mutex
	atlases = map[uint64]*rateAtlas{}
)

// atlasFor returns the process-wide atlas for a config fingerprint,
// creating it on first use.
func atlasFor(fp uint64) *rateAtlas {
	atlasMu.Lock()
	defer atlasMu.Unlock()
	a := atlases[fp]
	if a == nil {
		if len(atlases) >= maxAtlases {
			atlases = map[uint64]*rateAtlas{}
		}
		a = &rateAtlas{entries: map[rateKey]*rateEntry{}}
		atlases[fp] = a
	}
	return a
}

// rates returns the memoized entry for (v, kind), computing and
// publishing it on a miss.
func (m *Model) rates(v float64, kind FlipKind) *rateEntry {
	key := rateKey{math.Float64bits(v), kind}
	a := m.atlas
	a.mu.RLock()
	e := a.entries[key]
	a.mu.RUnlock()
	if e != nil {
		return e
	}
	e = m.computeRates(v, kind)
	a.mu.Lock()
	if prev := a.entries[key]; prev != nil {
		e = prev // another goroutine published first; identical by purity
	} else {
		if len(a.entries) >= maxAtlasEntries {
			a.entries = map[rateKey]*rateEntry{}
		}
		a.entries[key] = e
	}
	a.mu.Unlock()
	return e
}

// computeRates derives one grid point from the survival functions — the
// un-memoized ground truth the atlas caches.
func (m *Model) computeRates(v float64, kind FlipKind) *rateEntry {
	e := &rateEntry{}
	for idx := 0; idx < NumPCs; idx++ {
		cov := m.coverage[idx]
		r := cov*m.regionRate(idx, v, true, kind) + (1-cov)*m.regionRate(idx, v, false, kind)
		e.pcs[idx] = r
		e.stacks[idx/PCsPerStack] += r
	}
	for s := range e.stacks {
		e.stacks[s] /= PCsPerStack
		e.global += e.stacks[s]
	}
	e.global /= NumStacks
	return e
}

// RateVector returns the expected faulty-cell fraction of every pseudo
// channel (global PC order) at voltage v for the given flip class, from
// the memoized atlas. Figure builders that fill a whole table row should
// prefer this over 32 CellRate calls.
func (m *Model) RateVector(v float64, kind FlipKind) [NumPCs]float64 {
	return m.rates(v, kind).pcs
}
