package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbmvolt/internal/chaos"
	tlog "hbmvolt/internal/telemetry/log"
)

// logCapture collects the tier's structured JSON log lines so tests
// assert on fields (event, key, subsys), not message substrings.
type logCapture struct {
	buf bytes.Buffer
}

// records decodes every captured line.
func (c *logCapture) records(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(c.buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// withEvent filters records to those whose "event" field matches.
func (c *logCapture) withEvent(t *testing.T, event string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, rec := range c.records(t) {
		if rec["event"] == event {
			out = append(out, rec)
		}
	}
	return out
}

func collectLogs(t *testing.T) (*tlog.Logger, *logCapture) {
	t.Helper()
	cap := &logCapture{}
	return tlog.New(&cap.buf, tlog.LevelDebug), cap
}

func newTestDiskTier(t *testing.T, maxBytes int64) (*DiskTier, *logCapture) {
	t.Helper()
	logger, logs := collectLogs(t)
	d, err := NewDiskTier(t.TempDir(), maxBytes, logger)
	if err != nil {
		t.Fatal(err)
	}
	return d, logs
}

func TestDiskTierRoundTrip(t *testing.T) {
	d, _ := newTestDiskTier(t, 0)
	payload := []byte(`{"kind":"reliability","data":[1,2,3]}` + "\n")
	d.Put(42, payload)
	got, ok := d.Get(42)
	if !ok {
		t.Fatal("entry missing after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	if d.Len() != 1 || d.Bytes() != int64(len(payload)) {
		t.Fatalf("len=%d bytes=%d", d.Len(), d.Bytes())
	}
	// First write wins; a duplicate Put never rewrites the file.
	before, err := os.ReadFile(d.path(42))
	if err != nil {
		t.Fatal(err)
	}
	d.Put(42, []byte("different"))
	after, err := os.ReadFile(d.path(42))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("duplicate Put rewrote the entry file")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(d.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestDiskTierRecoveryScan(t *testing.T) {
	dir := t.TempDir()
	logger, _ := collectLogs(t)
	d, err := NewDiskTier(dir, 0, logger)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[uint64][]byte{
		1: []byte("payload-one"),
		2: []byte("payload-two"),
		3: []byte("payload-three"),
	}
	for k, p := range payloads {
		d.Put(k, p)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Sabotage between "runs": corrupt entry 2's payload bits, truncate
	// entry 3 mid-payload (a torn write), drop a stray temp file.
	corrupt, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%016x.cache", uint64(2))))
	if err != nil {
		t.Fatal(err)
	}
	corrupt[len(corrupt)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%016x.cache", uint64(2))), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, fmt.Sprintf("%016x.cache", uint64(3))), int64(len("hbmvolt"))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-12345"), []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}

	logger2, logs := collectLogs(t)
	d2, err := NewDiskTier(dir, 0, logger2)
	if err != nil {
		t.Fatal(err)
	}
	st := d2.Stats()
	if st.Recovered != 1 || st.Discarded != 3 {
		t.Fatalf("recovery stats = %+v, want 1 recovered / 3 discarded", st)
	}
	if got, ok := d2.Get(1); !ok || !bytes.Equal(got, payloads[1]) {
		t.Fatal("healthy entry not recovered byte-identical")
	}
	for _, k := range []uint64{2, 3} {
		if _, ok := d2.Get(k); ok {
			t.Fatalf("corrupt/torn entry %d served after recovery", k)
		}
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("%016x.cache", k))); !os.IsNotExist(err) {
			t.Fatalf("corrupt/torn entry %d file not deleted", k)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-12345")); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived recovery")
	}
	// The discards were reported as structured records naming their
	// event and subsystem — two corrupt/torn entries plus one temp file.
	if got := len(logs.withEvent(t, "discarded")); got != 2 {
		t.Fatalf("want 2 structured 'discarded' records, got %d: %v", got, logs.records(t))
	}
	if got := len(logs.withEvent(t, "torn_temp_removed")); got != 1 {
		t.Fatalf("want 1 'torn_temp_removed' record, got %d", got)
	}
	for _, rec := range logs.records(t) {
		if rec["subsys"] != "disktier" || rec["level"] != "warn" {
			t.Fatalf("record missing subsys/level fields: %v", rec)
		}
	}
}

func TestDiskTierReadVerification(t *testing.T) {
	d, logs := newTestDiskTier(t, 0)
	d.Put(7, []byte("some payload bytes"))

	// Flip one payload byte under the tier's feet.
	path := d.path(7)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-3] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get(7); ok {
		t.Fatal("corrupted entry served instead of discarded")
	}
	if st := d.Stats(); st.Discarded != 1 || st.Entries != 0 {
		t.Fatalf("stats after corrupt read = %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file not unlinked")
	}
	// The discard is a structured record carrying the entry key, not a
	// substring in prose.
	discards := logs.withEvent(t, "discarded")
	if len(discards) != 1 {
		t.Fatalf("want 1 structured 'discarded' record, got %v", logs.records(t))
	}
	if discards[0]["key"] != FormatKey(7) || discards[0]["err"] == "" {
		t.Fatalf("discard record missing key/err fields: %v", discards[0])
	}
	// Re-Put recomputed bytes: the entry is servable again.
	d.Put(7, []byte("some payload bytes"))
	if _, ok := d.Get(7); !ok {
		t.Fatal("entry not servable after recompute")
	}
}

func TestDiskTierByteBoundEviction(t *testing.T) {
	d, _ := newTestDiskTier(t, 25)
	d.Put(1, make([]byte, 10))
	d.Put(2, make([]byte, 10))
	d.Get(1) // refresh 1; 2 becomes LRU
	d.Put(3, make([]byte, 10))
	if _, ok := d.Get(2); ok {
		t.Fatal("LRU entry survived byte-pressure eviction")
	}
	if _, err := os.Stat(d.path(2)); !os.IsNotExist(err) {
		t.Fatal("evicted entry's file not unlinked")
	}
	if st := d.Stats(); st.Evicted != 1 || st.Entries != 2 || st.Bytes != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskTierWriteFaultInjection(t *testing.T) {
	d, logs := newTestDiskTier(t, 0)
	defer chaos.Activate(chaos.NewPlan().Set("disktier.write", chaos.Fault{
		Err: errors.New("injected ENOSPC"), Count: 1,
	}))()
	d.Put(9, []byte("lost to the injected write error"))
	if _, ok := d.Get(9); ok {
		t.Fatal("entry served though its write failed")
	}
	if got := logs.withEvent(t, "write_failed"); len(got) != 1 || got[0]["key"] != FormatKey(9) {
		t.Fatalf("failed write not logged as structured record: %v", logs.records(t))
	}
	// The tier keeps working after the fault clears.
	d.Put(9, []byte("second attempt"))
	if got, ok := d.Get(9); !ok || string(got) != "second attempt" {
		t.Fatal("tier did not recover after write fault")
	}
}

func TestTieredCacheWriteThroughAndPromotion(t *testing.T) {
	mem := NewMemoryTier(2, 1<<20)
	logger, _ := collectLogs(t)
	disk, err := NewDiskTier(t.TempDir(), 0, logger)
	if err != nil {
		t.Fatal(err)
	}
	c := newResultCache(nil, mem, disk)

	c.Put(1, []byte("one"))
	if disk.Len() != 1 {
		t.Fatal("Put did not write through to disk")
	}
	// Overflow the memory tier; entry 1 ages out of memory but stays on
	// disk.
	c.Put(2, []byte("two"))
	c.Put(3, []byte("three"))
	if mem.Len() != 2 || disk.Len() != 3 {
		t.Fatalf("mem=%d disk=%d", mem.Len(), disk.Len())
	}
	if _, ok := mem.Get(1); ok {
		t.Fatal("entry 1 still in memory tier")
	}
	got, ok := c.Get(1)
	if !ok || string(got) != "one" {
		t.Fatal("disk-tier hit failed")
	}
	if c.diskHits() != 1 {
		t.Fatalf("diskHits = %d, want 1", c.diskHits())
	}
	// The hit promoted the entry back into memory.
	if _, ok := mem.Get(1); !ok {
		t.Fatal("disk hit not promoted to memory tier")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if _, ok := c.Get(99); ok {
		t.Fatal("phantom entry")
	}
	if _, m := c.Stats(); m != 1 {
		t.Fatalf("miss not counted: %d", m)
	}
}

// TestManagerDiskTierSurvivesRestart is the tentpole invariant at the
// manager level: a manager with a cache dir computes a sweep once; a
// fresh manager over the same dir — a new process after SIGKILL, as far
// as the cache is concerned — serves the byte-identical payload without
// recomputing.
func TestManagerDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := SweepRequest{Kind: KindReliability, Scale: 1024, Ports: []int{0}, Patterns: []string{"all1"}, Grid: []float64{0.90}, Batch: 1}

	m1, err := OpenManager(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, _, _, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := j.Wait(t.Context()); st != StateDone {
		t.Fatalf("job state %s", st)
	}
	first := j.Payload()
	if m1.Runs() != 1 {
		t.Fatalf("runs = %d", m1.Runs())
	}
	m1.Close()

	m2, err := OpenManager(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if st := m2.Stats(); st.DiskCache == nil || st.DiskCache.Recovered != 1 {
		t.Fatalf("restart did not recover the entry: %+v", st.DiskCache)
	}
	j2, _, cacheHit, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !cacheHit {
		t.Fatal("restarted manager recomputed a durable entry")
	}
	if st, _ := j2.Wait(t.Context()); st != StateDone {
		t.Fatalf("job state %s", st)
	}
	if !bytes.Equal(first, j2.Payload()) {
		t.Fatal("restart re-read is not byte-identical")
	}
	if m2.Runs() != 0 {
		t.Fatalf("restarted manager ran %d sweeps, want 0", m2.Runs())
	}
}
