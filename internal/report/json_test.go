package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

type jsonRow struct {
	Volts   float64 `json:"volts"`
	Ports   int     `json:"ports"`
	Pattern string  `json:"pattern"`
	Watts   float64 `json:"watts"`
	NF      bool    `json:"nf,omitempty"`
}

// TestNDJSONGolden pins the exact bytes of the NDJSON serialization —
// the sweep service's cache stores marshaled payloads and promises
// byte-identical responses, so any encoding drift is a breaking change.
func TestNDJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	n := NewNDJSON(&buf)
	n.Record(jsonRow{Volts: 1.20, Ports: 32, Pattern: "all1", Watts: 17.36})
	n.Record(jsonRow{Volts: 0.85, Ports: 8, Pattern: "all0&<>", Watts: 7.5, NF: true})
	n.Record(map[string]float64{"b": 2, "a": 1}) // map keys sort
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "ndjson.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("NDJSON drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMarshalDeterministic asserts the cache-key contract: equal values
// marshal to equal bytes, HTML is not escaped, and output ends in one
// newline.
func TestMarshalDeterministic(t *testing.T) {
	v := jsonRow{Volts: 0.9, Ports: 16, Pattern: "a<b"}
	a, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("non-deterministic marshal: %q vs %q", a, b)
	}
	if !bytes.Contains(a, []byte("a<b")) {
		t.Fatalf("HTML-escaped output: %q", a)
	}
	if !bytes.HasSuffix(a, []byte("\n")) || bytes.Count(a, []byte("\n")) != 1 {
		t.Fatalf("want single trailing newline: %q", a)
	}
}

// TestNDJSONStickyError verifies that a failed record poisons the
// stream and Flush reports it.
func TestNDJSONStickyError(t *testing.T) {
	n := NewNDJSON(&bytes.Buffer{})
	n.Record(func() {}) // unmarshalable
	n.Record(jsonRow{})
	if n.Flush() == nil {
		t.Fatal("unmarshalable record not reported")
	}
}
