// Package fleet turns N hbmvoltd nodes into one logical sweep cache
// with provable graceful degradation.
//
// Every sweep/campaign request already condenses to a deterministic,
// normalized cache key (internal/service), and every payload is a pure
// function of that key — so ownership can be pure routing: rendezvous
// hashing assigns each key exactly one owner node, forwards go to the
// owner, and the fleet deduplicates compute without any coordination
// state, rebalancing only 1/N of the keyspace when a node joins or
// leaves.
//
// Robustness is the point. A per-peer circuit breaker — fed by an
// active health prober (periodic /healthz probes) and passively by
// forward failures — decides whether an owner is worth trying at all;
// every HTTP call in the forward path runs under a hedging deadline;
// and any failure to get the owner's bytes (open circuit, connection
// refused, black-holed link, slow past the deadline, payload severed
// mid-body) degrades to computing the cell locally. Because payloads
// are deterministic, the degraded response is byte-identical to the
// owner's — availability degrades, correctness never does, and the
// partition tests pin that equality byte for byte. Every fallback is
// observable: X-Hbmvolt-Served-By / X-Hbmvolt-Degraded response
// headers, per-job served_by/degraded status fields, and per-peer
// circuit state plus degraded-serve counters in /healthz.
package fleet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hbmvolt/internal/service"
	"hbmvolt/internal/telemetry"
	tlog "hbmvolt/internal/telemetry/log"
)

// Options parameterizes a Forwarder.
type Options struct {
	// Self is this node's advertised base URL, e.g.
	// "http://10.0.0.1:8023". It must be the name peers know this node
	// by: every node must route a key to the same owner, so the node
	// set — and each node's spelling of it — must agree fleet-wide.
	Self string
	// Peers are the other nodes' base URLs. Self is tolerated in the
	// list (and ignored), so every node can ship the same -peers value.
	Peers []string
	// ForwardTimeout is the hedging deadline on each HTTP call of the
	// forward path — submit, status poll, result fetch. A call slower
	// than this counts as a peer failure and the serve degrades to
	// local compute (default 2s).
	ForwardTimeout time.Duration
	// PollInterval paces remote job status polling (default 100ms).
	PollInterval time.Duration
	// ProbeInterval is the active health checker's period: every tick,
	// each peer's /healthz is probed and the result feeds its circuit
	// breaker — including the probe success that closes an open circuit
	// once the peer recovers. 0 disables active probing (the breaker
	// then runs on passive forward failures and cooldown alone).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default ForwardTimeout).
	ProbeTimeout time.Duration
	// FailureThreshold is the consecutive-failure count that opens a
	// peer's circuit (default 3).
	FailureThreshold int
	// Cooldown is how long an open circuit blocks forwards before one
	// trial request may probe the peer again (default 5s).
	Cooldown time.Duration
	// HTTPClient performs all fleet HTTP (nil → a plain http.Client).
	// Tests wrap a chaos.Transport here to inject partitions.
	HTTPClient *http.Client
	// Logger receives fallback and circuit-transition events as
	// structured JSON records carrying the trace ID of the affected
	// submission (nil = silent).
	Logger *tlog.Logger
}

func (o *Options) fill() {
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 2 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ForwardTimeout
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
}

// normalizeNode canonicalizes a node URL so equal nodes spell equally
// fleet-wide (scheme+host, no trailing slash).
func normalizeNode(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("fleet: node URL %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("fleet: node URL %q: want http(s)://host[:port]", raw)
	}
	if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("fleet: node URL %q: must be a bare base URL", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// peer is one remote node: its typed client and its health state.
type peer struct {
	name    string
	client  *service.Client
	breaker *breaker

	probes, probeFailures     atomic.Uint64
	forwards, forwardFailures atomic.Uint64
}

// Forwarder is the peer-routing fabric: it implements
// service.Forwarder over rendezvous hashing, per-peer circuit
// breakers, and local-compute degradation. Construct with New, stop
// the prober with Close.
type Forwarder struct {
	self  string
	nodes []string // all node names (self + peers), sorted
	peers map[string]*peer
	opts  Options

	localOwned atomic.Uint64 // keys this node owns, computed locally
	forwarded  atomic.Uint64 // keys served by their remote owner
	degraded   atomic.Uint64 // remote-owned keys served by local fallback

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a forwarder and starts its health prober (when
// Options.ProbeInterval is set). Self must be present; Peers may
// repeat or include Self (deduplicated). A fleet of one — no peers —
// is valid and serves everything locally.
func New(opts Options) (*Forwarder, error) {
	opts.fill()
	self, err := normalizeNode(opts.Self)
	if err != nil {
		return nil, fmt.Errorf("fleet: -self: %w", err)
	}
	f := &Forwarder{
		self:  self,
		peers: make(map[string]*peer),
		opts:  opts,
		stopc: make(chan struct{}),
	}
	f.nodes = []string{self}
	httpc := opts.HTTPClient
	if httpc == nil {
		// Deliberately not http.DefaultClient: fleet traffic must never
		// inherit global transport tweaks, and streaming is unused here so
		// per-call contexts are the only timeout source.
		httpc = &http.Client{}
	}
	for _, raw := range opts.Peers {
		name, err := normalizeNode(raw)
		if err != nil {
			return nil, err
		}
		if name == self {
			continue
		}
		if _, dup := f.peers[name]; dup {
			continue
		}
		c := service.NewClient(name)
		c.HTTPClient = httpc
		// The forwarder's degradation policy *is* the retry policy: one
		// attempt per call, fail fast, fall back to local compute. The
		// forwarded-once marker keeps a misconfigured ring from looping.
		c.Retries = -1
		c.PollInterval = opts.PollInterval
		c.Header = http.Header{
			service.HeaderNoForward: []string{"1"},
			"X-Client-ID":           []string{"fleet:" + self},
		}
		f.peers[name] = &peer{
			name:    name,
			client:  c,
			breaker: newBreaker(opts.FailureThreshold, opts.Cooldown),
		}
		f.nodes = append(f.nodes, name)
	}
	sort.Strings(f.nodes)
	if opts.ProbeInterval > 0 && len(f.peers) > 0 {
		f.wg.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// Close stops the health prober. In-flight forwards finish on their
// own deadlines.
func (f *Forwarder) Close() {
	f.stopOnce.Do(func() { close(f.stopc) })
	f.wg.Wait()
}

// Self returns this node's canonical name.
func (f *Forwarder) Self() string { return f.self }

// Nodes returns every node name (self included), sorted.
func (f *Forwarder) Nodes() []string { return append([]string(nil), f.nodes...) }

// Owner maps a cache key to its owning node by rendezvous (highest
// random weight) hashing: every node scores the (node, key) pair and
// the highest score owns the key. All nodes configured with the same
// node set agree on every owner with no coordination, and removing a
// node reassigns only that node's keys.
func (f *Forwarder) Owner(key uint64) string {
	var keyb [8]byte
	binary.LittleEndian.PutUint64(keyb[:], key)
	owner, best := "", uint64(0)
	for _, n := range f.nodes {
		h := fnv.New64a()
		h.Write([]byte(n))
		h.Write(keyb[:])
		if s := h.Sum64(); owner == "" || s > best || (s == best && n < owner) {
			owner, best = n, s
		}
	}
	return owner
}

// log returns the structured logger (nil-safe: a nil Options.Logger
// yields a no-op logger) with the fleet subsystem field bound.
func (f *Forwarder) log() *tlog.Logger {
	return f.opts.Logger
}

// ExecuteSweep implements service.Forwarder: serve the key from its
// owner, or degrade — byte-identically — to local compute when the
// owner is this node, unreachable, open-circuit, or slow. A context
// already cancelled by the caller is never blamed on the peer.
//
// The routing decision is observable three ways, all fed here: the
// serves counters (/metrics, /healthz), a fleet.* span on the
// submission's trace when ctx carries one, and a structured log record
// for every degraded serve.
func (f *Forwarder) ExecuteSweep(ctx context.Context, key uint64, req service.SweepRequest, local func(context.Context) ([]byte, error)) ([]byte, service.ServeInfo, error) {
	owner := f.Owner(key)
	if owner == f.self {
		f.localOwned.Add(1)
		telemetry.Record(ctx, "fleet.local", map[string]string{
			"key": service.FormatKey(key),
		})
		payload, err := local(ctx)
		return payload, service.ServeInfo{ServedBy: f.self}, err
	}
	p := f.peers[owner]
	if !p.breaker.Allow() {
		f.degraded.Add(1)
		telemetry.Record(ctx, "fleet.degrade", map[string]string{
			"key": service.FormatKey(key), "owner": owner, "reason": "open_circuit",
		})
		f.log().WithTrace(ctx).Warn("owner open-circuit; serving degraded from local compute",
			tlog.F("subsys", "fleet"), tlog.F("owner", owner), tlog.F("key", service.FormatKey(key)))
		payload, err := local(ctx)
		return payload, service.ServeInfo{ServedBy: f.self, Degraded: true}, err
	}
	payload, err := f.fetch(ctx, p, req)
	if err == nil {
		p.breaker.Success()
		f.forwarded.Add(1)
		telemetry.Record(ctx, "fleet.forward", map[string]string{
			"key": service.FormatKey(key), "owner": owner,
		})
		return payload, service.ServeInfo{ServedBy: owner}, nil
	}
	if ctx.Err() != nil {
		// The job was cancelled (or the manager is shutting down): not a
		// peer fault, and nothing left to serve.
		return nil, service.ServeInfo{}, ctx.Err()
	}
	p.forwardFailures.Add(1)
	p.breaker.Failure()
	f.degraded.Add(1)
	telemetry.Record(ctx, "fleet.degrade", map[string]string{
		"key": service.FormatKey(key), "owner": owner, "reason": "forward_failed",
	})
	f.log().WithTrace(ctx).Warn("forward to owner failed; serving degraded from local compute",
		tlog.F("subsys", "fleet"), tlog.F("owner", owner),
		tlog.F("key", service.FormatKey(key)), tlog.Err(err))
	payload, lerr := local(ctx)
	return payload, service.ServeInfo{ServedBy: f.self, Degraded: true}, lerr
}

// fetch drives one remote execution: submit, poll to terminal, fetch
// the verified payload. Every call runs under the hedging deadline; a
// single failed call fails the fetch — retrying is the degradation
// path's job, not this one's.
func (f *Forwarder) fetch(ctx context.Context, p *peer, req service.SweepRequest) ([]byte, error) {
	p.forwards.Add(1)
	// The owner picks its own fleet size; the submitter's parallelism
	// hint is meaningless on another node's hardware.
	req.Workers = 0

	var sub service.SubmitResponse
	err := f.call(ctx, func(cctx context.Context) error {
		var serr error
		sub, serr = p.client.Submit(cctx, req)
		return serr
	})
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", p.name, err)
	}

	// Poll rather than stream: every round trip gets its own deadline,
	// so a peer that accepts the job and then black-holes is detected
	// within one poll instead of holding a stream open forever.
	for {
		var st service.JobStatus
		err := f.call(ctx, func(cctx context.Context) error {
			var serr error
			st, serr = p.client.Status(cctx, sub.ID)
			return serr
		})
		if err != nil {
			return nil, fmt.Errorf("status of %s on %s: %w", sub.ID, p.name, err)
		}
		switch st.State {
		case service.StateDone:
			var payload []byte
			err := f.call(ctx, func(cctx context.Context) error {
				var rerr error
				payload, rerr = p.client.Result(cctx, sub.ID)
				return rerr
			})
			if err != nil {
				return nil, fmt.Errorf("result of %s from %s: %w", sub.ID, p.name, err)
			}
			return payload, nil
		case service.StateFailed:
			return nil, fmt.Errorf("%s on %s failed remotely: %s", sub.ID, p.name, st.Error)
		case service.StateCancelled:
			return nil, fmt.Errorf("%s on %s was cancelled remotely", sub.ID, p.name)
		}
		select {
		case <-time.After(f.opts.PollInterval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// call runs one HTTP round trip under the hedging deadline.
func (f *Forwarder) call(ctx context.Context, fn func(context.Context) error) error {
	cctx, cancel := context.WithTimeout(ctx, f.opts.ForwardTimeout)
	defer cancel()
	return fn(cctx)
}

// probeLoop is the active health checker: every ProbeInterval each
// peer's /healthz is probed concurrently (one black-holed peer must
// not delay the others' probes) and the outcome feeds its breaker.
func (f *Forwarder) probeLoop() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stopc:
			return
		case <-ticker.C:
		}
		var wg sync.WaitGroup
		for _, p := range f.peers {
			wg.Add(1)
			go func(p *peer) {
				defer wg.Done()
				f.probe(p)
			}(p)
		}
		wg.Wait()
	}
}

// probe checks one peer's liveness. A success closes the peer's
// circuit (recovery); a failure counts toward opening it.
func (f *Forwarder) probe(p *peer) {
	p.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.ProbeTimeout)
	defer cancel()
	if _, err := p.client.Health(ctx); err != nil {
		p.probeFailures.Add(1)
		if p.breaker.Failure() {
			f.log().Warn("peer unhealthy; circuit open",
				tlog.F("subsys", "fleet"), tlog.F("peer", p.name), tlog.Err(err))
		}
		return
	}
	if p.breaker.Success() {
		f.log().Info("peer recovered; circuit closed",
			tlog.F("subsys", "fleet"), tlog.F("peer", p.name))
	}
}

// ErrNotPeer is returned by PeerState for unknown node names.
var ErrNotPeer = errors.New("fleet: no such peer")

// PeerState reports a peer's current circuit state (tests, debugging).
func (f *Forwarder) PeerState(name string) (string, error) {
	p, ok := f.peers[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotPeer, name)
	}
	return p.breaker.State(), nil
}

// PeerHealth is one peer's entry in the /healthz fleet block.
type PeerHealth struct {
	Peer string `json:"peer"`
	// Circuit is "closed" (healthy), "open" (failing; forwards skip
	// straight to local compute until the cooldown) or "half-open"
	// (cooldown elapsed; one trial in flight).
	Circuit string `json:"circuit"`
	// ConsecutiveFailures is the current failure streak feeding the
	// breaker (reset by any success).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Probes/ProbeFailures count the active health checker's /healthz
	// probes of this peer.
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	// Forwards/ForwardFailures count forward attempts to this peer
	// (failures degrade to local compute).
	Forwards        uint64 `json:"forwards"`
	ForwardFailures uint64 `json:"forward_failures"`
}

// Health is the /healthz fleet block.
type Health struct {
	// Self is this node's canonical name; Nodes the fleet size
	// (peers + self).
	Self  string `json:"self"`
	Nodes int    `json:"nodes"`
	// LocalOwned counts executions this node owned and computed;
	// Forwarded, executions served by their remote owner; and
	// DegradedServes, remote-owned executions served from local compute
	// because the owner was unreachable — each byte-identical to what
	// the owner would have returned.
	LocalOwned     uint64 `json:"local_owned"`
	Forwarded      uint64 `json:"forwarded"`
	DegradedServes uint64 `json:"degraded_serves"`
	// Peers reports each peer's circuit and counters, sorted by name.
	Peers []PeerHealth `json:"peers"`
}

// RegisterMetrics surfaces the forwarder's routing and peer-health
// counters in a telemetry registry as sampler-backed families — the
// very atomics /healthz's fleet block reads, so the two surfaces agree
// by construction.
func (f *Forwarder) RegisterMetrics(r *telemetry.Registry) {
	r.CounterSampler("hbmvolt_fleet_serves_total",
		"Sweep executions by routing outcome: local (this node owned the key), forwarded (served by the remote owner), degraded (owner unreachable; computed locally, byte-identical).",
		[]string{"mode"}, func() []telemetry.Sample {
			return []telemetry.Sample{
				{Labels: []string{"degraded"}, Value: float64(f.degraded.Load())},
				{Labels: []string{"forwarded"}, Value: float64(f.forwarded.Load())},
				{Labels: []string{"local"}, Value: float64(f.localOwned.Load())},
			}
		})
	perPeer := func(get func(*peer) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, n := range f.nodes { // sorted; stable exposition order
				if p, ok := f.peers[n]; ok {
					out = append(out, telemetry.Sample{Labels: []string{p.name}, Value: get(p)})
				}
			}
			return out
		}
	}
	r.CounterSampler("hbmvolt_fleet_peer_forwards_total",
		"Forward attempts per peer.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.forwards.Load()) }))
	r.CounterSampler("hbmvolt_fleet_peer_forward_failures_total",
		"Forward attempts per peer that failed and degraded to local compute.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.forwardFailures.Load()) }))
	r.CounterSampler("hbmvolt_fleet_peer_probes_total",
		"Active /healthz probes per peer.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.probes.Load()) }))
	r.CounterSampler("hbmvolt_fleet_peer_probe_failures_total",
		"Active /healthz probes per peer that failed.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.probeFailures.Load()) }))
	r.GaugeSampler("hbmvolt_fleet_peer_circuit_state",
		"Per-peer circuit breaker state: 0 closed, 1 half-open, 2 open.", []string{"peer"},
		perPeer(func(p *peer) float64 {
			switch p.breaker.State() {
			case circuitHalfOpen:
				return 1
			case circuitOpen:
				return 2
			}
			return 0
		}))
}

// Health implements service.Forwarder's /healthz hook.
func (f *Forwarder) Health() any {
	h := Health{
		Self:           f.self,
		Nodes:          len(f.nodes),
		LocalOwned:     f.localOwned.Load(),
		Forwarded:      f.forwarded.Load(),
		DegradedServes: f.degraded.Load(),
	}
	for _, n := range f.nodes {
		p, ok := f.peers[n]
		if !ok {
			continue // self
		}
		state, consecutive := p.breaker.Snapshot()
		h.Peers = append(h.Peers, PeerHealth{
			Peer:                p.name,
			Circuit:             state,
			ConsecutiveFailures: consecutive,
			Probes:              p.probes.Load(),
			ProbeFailures:       p.probeFailures.Load(),
			Forwards:            p.forwards.Load(),
			ForwardFailures:     p.forwardFailures.Load(),
		})
	}
	return h
}
