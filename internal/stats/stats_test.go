package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZCriticalKnownValues(t *testing.T) {
	cases := []struct {
		level, want float64
	}{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
	}
	for _, c := range cases {
		z, err := ZCritical(c.level)
		if err != nil {
			t.Fatalf("ZCritical(%v): %v", c.level, err)
		}
		if math.Abs(z-c.want) > 1e-9 {
			t.Fatalf("ZCritical(%v) = %v, want %v", c.level, z, c.want)
		}
	}
}

func TestZCriticalInterpolates(t *testing.T) {
	z, err := ZCritical(0.925)
	if err != nil {
		t.Fatal(err)
	}
	if z <= 1.6449 || z >= 1.96 {
		t.Fatalf("interpolated z = %v not between neighbors", z)
	}
}

func TestZCriticalRejectsOutOfRange(t *testing.T) {
	for _, lvl := range []float64{0.5, 0.9999, -1} {
		if _, err := ZCritical(lvl); err == nil {
			t.Fatalf("ZCritical(%v) accepted", lvl)
		}
	}
}

// The paper's central statistical claim: 130 runs give ~7% error at 90%
// confidence.
func TestPaperBatchSize(t *testing.T) {
	m, err := MarginOfError(130, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0.068 || m > 0.076 {
		t.Fatalf("MarginOfError(130, 0.90) = %v, want ~0.072 (paper: 7%%)", m)
	}
	// And the inverse: a 7.2% margin at 90% needs ~130 trials.
	n, err := SampleSize(0, 0.0722, 0.90, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n < 125 || n > 135 {
		t.Fatalf("SampleSize = %d, want ~130", n)
	}
}

func TestSampleSizeFinitePopulationSmaller(t *testing.T) {
	inf, err := SampleSize(0, 0.05, 0.95, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := SampleSize(500, 0.05, 0.95, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fin >= inf {
		t.Fatalf("finite-population size %d not below infinite %d", fin, inf)
	}
	if fin > 500 {
		t.Fatalf("sample size %d exceeds population", fin)
	}
}

func TestSampleSizeRejectsBadInputs(t *testing.T) {
	if _, err := SampleSize(0, 0, 0.9, 0.5); err == nil {
		t.Fatal("e=0 accepted")
	}
	if _, err := SampleSize(0, 0.05, 0.9, 1.5); err == nil {
		t.Fatal("p=1.5 accepted")
	}
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-4.571428571) > 1e-6 {
		t.Fatalf("Variance = %v, want ~4.571", v)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("Median even = %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("Median empty = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Fatal("Median mutated its input")
	}
}

func TestSummarizeCIContainsMean(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitudes to avoid float overflow noise.
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs, 0.95)
		if err != nil {
			return false
		}
		return s.CILow <= s.Mean && s.Mean <= s.CIHigh &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil, 0.95); err == nil {
		t.Fatal("Summarize(nil) accepted")
	}
}

func TestSummarizeConstantSampleTightCI(t *testing.T) {
	s, err := Summarize([]float64{3, 3, 3, 3}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if s.CILow != 3 || s.CIHigh != 3 {
		t.Fatalf("constant sample CI = [%v, %v], want [3,3]", s.CILow, s.CIHigh)
	}
}

func TestPoissonCI(t *testing.T) {
	lo, hi, err := PoissonCI(100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 100 || hi <= 100 {
		t.Fatalf("CI [%v,%v] does not bracket 100", lo, hi)
	}
	lo, _, err = PoissonCI(0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Fatalf("zero-count CI low = %v, want 0", lo)
	}
}

func TestNormalTail(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.158655},
		{2, 0.022750},
		{3, 0.001350},
	}
	for _, c := range cases {
		got := NormalTail(c.x)
		if math.Abs(got-c.want) > 1e-5 {
			t.Fatalf("NormalTail(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalTailMonotone(t *testing.T) {
	prev := 1.0
	for x := -4.0; x <= 4.0; x += 0.25 {
		v := NormalTail(x)
		if v > prev {
			t.Fatalf("NormalTail not monotone at %v", x)
		}
		prev = v
	}
}

func TestMarginOfErrorShrinksWithTrials(t *testing.T) {
	m130, _ := MarginOfError(130, 0.90)
	m520, _ := MarginOfError(520, 0.90)
	if math.Abs(m130/m520-2) > 1e-9 {
		t.Fatalf("margin should halve when trials quadruple: %v vs %v", m130, m520)
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 130)
	for i := range xs {
		xs[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(xs, 0.90); err != nil {
			b.Fatal(err)
		}
	}
}
