package workload

import (
	"testing"

	"hbmvolt/internal/dramctl"
)

const (
	space = 1 << 20
	n     = 1 << 16
)

func runOne(t *testing.T, g Generator) Result {
	t.Helper()
	r, err := Run(g, dramctl.DefaultTiming(), dramctl.DefaultGeometry, space, n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSequentialNearPeak(t *testing.T) {
	r := runOne(t, Sequential(0))
	if r.Efficiency < 0.85 {
		t.Fatalf("sequential efficiency = %v", r.Efficiency)
	}
	if r.RowHitRate < 0.9 {
		t.Fatalf("sequential row hit rate = %v", r.RowHitRate)
	}
}

func TestWriteMixCostsBandwidth(t *testing.T) {
	ro := runOne(t, Sequential(0))
	rw := runOne(t, Sequential(4))
	if rw.BandwidthGBs >= ro.BandwidthGBs {
		t.Fatalf("read/write mix (%v) not below read-only (%v): turnaround penalty missing",
			rw.BandwidthGBs, ro.BandwidthGBs)
	}
}

func TestRandomWorstCase(t *testing.T) {
	seq := runOne(t, Sequential(0))
	rnd := runOne(t, Random(1))
	if rnd.BandwidthGBs >= seq.BandwidthGBs/2 {
		t.Fatalf("random (%v) should be far below sequential (%v)",
			rnd.BandwidthGBs, seq.BandwidthGBs)
	}
	if rnd.RowHitRate > 0.5 {
		t.Fatalf("random row hit rate = %v", rnd.RowHitRate)
	}
}

func TestHotspotBetweenExtremes(t *testing.T) {
	seq := runOne(t, Sequential(0))
	hot := runOne(t, Hotspot(1))
	rnd := runOne(t, Random(1))
	if !(hot.BandwidthGBs < seq.BandwidthGBs) {
		t.Fatalf("hotspot (%v) not below sequential (%v)", hot.BandwidthGBs, seq.BandwidthGBs)
	}
	// Hotspot concentrates on a small region: more locality than pure
	// random.
	if hot.RowHitRate <= rnd.RowHitRate {
		t.Fatalf("hotspot hit rate %v not above random %v", hot.RowHitRate, rnd.RowHitRate)
	}
}

func TestStridePenalty(t *testing.T) {
	small := runOne(t, Strided(1))
	large := runOne(t, Strided(513))
	if large.BandwidthGBs >= small.BandwidthGBs {
		t.Fatalf("large stride (%v) not slower than unit stride (%v)",
			large.BandwidthGBs, small.BandwidthGBs)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Standard() {
		for i := uint64(0); i < 100; i++ {
			if g.Next(i, space) != g.Next(i, space) {
				t.Fatalf("%s not deterministic at %d", g.Name(), i)
			}
			if g.Next(i, space).Addr >= space {
				t.Fatalf("%s out of space at %d", g.Name(), i)
			}
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range Standard() {
		if seen[g.Name()] {
			t.Fatalf("duplicate workload name %s", g.Name())
		}
		seen[g.Name()] = true
	}
}

func TestRunSuite(t *testing.T) {
	rs, err := RunSuite(dramctl.DefaultTiming(), dramctl.DefaultGeometry, space, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(Standard()) {
		t.Fatalf("suite results = %d", len(rs))
	}
	for _, r := range rs {
		if r.BandwidthGBs <= 0 || r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Fatalf("%s: implausible result %+v", r.Name, r)
		}
	}
}

func TestRunRejectsBadTiming(t *testing.T) {
	bad := dramctl.DefaultTiming()
	bad.ClockMHz = 0
	if _, err := Run(Sequential(0), bad, dramctl.DefaultGeometry, space, n); err == nil {
		t.Fatal("bad timing accepted")
	}
}

func BenchmarkSequentialStream(b *testing.B) {
	g := Sequential(0)
	c, err := dramctl.New(dramctl.DefaultTiming(), dramctl.DefaultGeometry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := g.Next(uint64(i), space)
		c.Access(a.Addr, a.Op)
	}
}
