package faults

// Shared fault enumeration: the cross-pattern computation-sharing core
// of the sweep planner.
//
// A cell's stuck position and polarity at a given voltage are
// properties of the silicon — they do not depend on which data pattern
// is later written. Only the *observed flips* depend on the pattern: a
// stuck-at-0 cell flips exactly where a 1 was written, a stuck-at-1
// cell exactly where a 0 was. The legacy samplers ignore that structure
// and re-enumerate the whole fault set once per pattern test; an
// Enumeration computes the pattern-agnostic stuck-cell realization of
// one (pseudo channel, voltage, batch rep) window once, and every
// pattern's Flips are then derived in a tight allocation-free pass
// whose 1→0 vs 0→1 classification is a mask op against the pattern
// word.
//
// Determinism discipline: the enumerated (low-rate) regime consumes the
// exact per-row draws the legacy sparse sampler consumes — and, on the
// bit-exact sampler, the exact per-cell draws — so wherever no
// aggregate segment engages the derived statistics are bit-identical
// to the per-pattern path. Only the aggregate (high-rate) regime draws
// differently: its stuck-cell counts are keyed pattern-agnostically
// (saltShared) where the legacy path keys flip counts per pattern pair
// (saltAggregate). Shared-mode sweeps are therefore a distinct — but
// statistically identical — realization, pinned by their own goldens
// and by Poisson-bound equivalence tests against the legacy streams.

import (
	"math"

	"hbmvolt/internal/pattern"
	"hbmvolt/internal/prf"
)

// packFault packs one stuck cell as addr<<9 | bit<<1 | polarity, so a
// packed slice sorted ascending is sorted by (addr, bit) and a
// per-pattern pass needs no pointer chasing.
func packFault(addr uint64, f CellFault) uint64 {
	p := uint64(0)
	if f.Polarity == StuckAt1 {
		p = 1
	}
	return addr<<9 | uint64(f.Bit)<<1 | p
}

// enumAggregate is one high-rate segment whose stuck cells are drawn in
// aggregate: the per-cell probabilities and the segment's drawn
// stuck-at-0/1 cell counts, shared by every pattern.
type enumAggregate struct {
	lo, words uint64
	p0, p1    float64 // per-cell stuck-at-0 / stuck-at-1 probabilities
	k0, k1    uint64  // drawn stuck-cell counts (pattern-agnostic)
	key       uint64  // base key for the per-pattern measurement split
}

// maxEnumFaults bounds how many stuck cells one Enumeration will
// materialize: 2M packed faults ≈ 16 MB. The sparse sampler never
// approaches it (its aggregate regime caps every segment), but the
// bit-exact sampler has no aggregate form — a full-scale window deep
// in the bulk collapse holds tens of millions of stuck cells. Beyond
// the bound the enumeration spills to streaming mode instead of
// ballooning the memo store.
const maxEnumFaults = 1 << 21

// Enumeration is the pattern-agnostic stuck-cell realization of the
// word window [0, Words) of one pseudo channel at one (voltage, batch
// rep): enumerated faults for low-rate segments, aggregate stuck-cell
// draws for high-rate ones. It is immutable and safe for concurrent
// use; sweeps evaluating many patterns at one voltage point derive all
// of them from one Enumeration (see PatternFlips).
type Enumeration struct {
	words  uint64
	faults []uint64 // packed, ascending by (addr, bit)
	aggs   []enumAggregate
	// stream marks a bit-exact window too fault-dense to materialize
	// (expected faults beyond maxEnumFaults): PatternFlips re-walks the
	// sampler's keyed draws per pattern in O(1) memory instead — the
	// legacy cost, bit-identical results, and a tiny memo entry.
	stream *Sampler
}

// Words returns the enumerated window size.
func (e *Enumeration) Words() uint64 { return e.words }

// FaultCount returns the number of individually enumerated stuck cells
// (aggregate segments contribute counts, not positions).
func (e *Enumeration) FaultCount() int { return len(e.faults) }

// Aggregated reports whether any segment of the window fell into the
// aggregate regime; deriving flips then requires patterns with a known
// ones density (pattern.OnesFraction).
func (e *Enumeration) Aggregated() bool { return len(e.aggs) > 0 }

// Streamed reports whether the window spilled to streaming mode: the
// bit-exact fault set was too dense to materialize, so every pattern
// pass re-walks the sampler's keyed draws instead of a stored list.
func (e *Enumeration) Streamed() bool { return e.stream != nil }

// SizeBytes returns the enumeration's approximate retained size, the
// unit the shared store's LRU accounts in.
func (e *Enumeration) SizeBytes() int {
	const header = 64 // struct + slice headers + sampler pointer
	return header + len(e.faults)*8 + len(e.aggs)*64
}

// Enumerate computes the stuck-cell enumeration of (stack, pc) at
// supply voltage v for batch repetition rep, covering word addresses
// [0, words). The draws it consumes are exactly the ones the legacy
// per-pattern samplers consume (bit-exact per-cell draws, or the
// sparse per-row count/position draws), except in the aggregate regime
// where counts are keyed pattern-agnostically. Prefer
// SharedEnumeration, which memoizes the result process-wide.
func (m *Model) Enumerate(stack, pc int, v float64, rep, words uint64) *Enumeration {
	s := m.NewBatchSampler(stack, pc, v, rep)
	e := &Enumeration{words: words}
	if !s.anyFaults || words == 0 {
		return e
	}
	add := func(addr uint64, f CellFault) {
		e.faults = append(e.faults, packFault(addr, f))
	}
	if !s.sparse {
		// The bit-exact sampler has no aggregate regime; refuse to
		// materialize windows whose expected fault count would dwarf the
		// memo budget and stream them per pattern instead.
		expected := 0.0
		s.segments(0, words, func(lo, hi uint64, in bool) {
			p, _ := s.regionParams(in)
			expected += float64(hi-lo) * 256 * p
		})
		if expected > maxEnumFaults {
			e.stream = s
			return e
		}
		s.RangeFaults(0, words, add)
		return e
	}
	s.segments(0, words, func(lo, hi uint64, in bool) {
		p, t := s.regionParams(in)
		if p <= 0 {
			return
		}
		n := hi - lo
		if lam := float64(n) * 256 * p; lam <= sparseEnumThreshold {
			wpr := s.wordsPerRow
			for r := lo / wpr; r*wpr < hi; r++ {
				rlo, rhi := r*wpr, (r+1)*wpr
				if rlo < lo {
					rlo = lo
				}
				if rhi > hi {
					rhi = hi
				}
				s.sparseRowFaults(r, rlo, rhi, p, t, add)
			}
			return
		}
		// Aggregate regime: draw the segment's stuck-at-0/1 cell counts
		// once, keyed on the silicon's identity only — no pattern term.
		p0 := t + (p-t)*(1-pStuckAt1)
		p1 := (p - t) * pStuckAt1
		key := prf.Hash5(s.seed^saltShared, uint64(s.idx), lo, s.rep, s.vbits)
		src := prf.NewSource(key)
		nb := float64(n) * 256
		e.aggs = append(e.aggs, enumAggregate{
			lo: lo, words: n, p0: p0, p1: p1,
			k0:  gaussCount(src, nb*p0, nb*p0*(1-p0), n*256),
			k1:  gaussCount(src, nb*p1, nb*p1*(1-p1), n*256),
			key: key,
		})
	})
	return e
}

// patternSig folds a pattern's stable name into one key word (FNV-1a),
// so aggregate measurement splits for different patterns draw from
// independent streams.
func patternSig(pat pattern.Pattern) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range []byte(pat.Name()) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// PatternFlips derives the flip statistics of one uniform fill/check
// pass of pat over the enumeration's window — Algorithm 1's inner
// measurement, where the stored data equals the written pattern. It
// returns the total 1→0/0→1 flips and the number of words with at
// least one flip.
//
// The enumerated part is a single allocation-free pass over the packed
// fault list: per fault, one mask op against the pattern word decides
// whether the stuck value differs from the written bit. Aggregate
// segments split their shared stuck-cell counts per pattern using the
// pattern's ones density; ok is false — and the statistics incomplete —
// only when such a segment exists and the pattern's density is unknown
// (pattern.OnesFraction). Callers validate that up front.
func (e *Enumeration) PatternFlips(pat pattern.Pattern) (flips pattern.Flips, faulty uint64, ok bool) {
	if e.stream != nil {
		flips, faulty = e.streamFlips(pat)
		return flips, faulty, true
	}
	if w, uniform := pattern.UniformWord(pat); uniform {
		flips, faulty = e.uniformFlips(w)
	} else {
		flips, faulty = e.wordwiseFlips(pat)
	}
	if len(e.aggs) == 0 {
		return flips, faulty, true
	}
	d, known := pattern.OnesFraction(pat)
	if !known {
		return flips, faulty, false
	}
	sig := patternSig(pat)
	for i := range e.aggs {
		f, fw := e.aggs[i].patternSplit(d, sig)
		flips.Add(f)
		faulty += fw
	}
	return flips, faulty, true
}

// uniformFlips classifies the enumerated faults against one fixed
// word: the hot path for the paper's all-1s/all-0s probes.
func (e *Enumeration) uniformFlips(w pattern.Word) (flips pattern.Flips, faulty uint64) {
	last := ^uint64(0)
	for _, f := range e.faults {
		bit := uint(f>>1) & 255
		wb := (w[bit>>6] >> (bit & 63)) & 1
		if f&1 == 0 { // stuck-at-0 reads 0: flips iff a 1 was written
			if wb == 0 {
				continue
			}
			flips.OneToZero++
		} else { // stuck-at-1 reads 1: flips iff a 0 was written
			if wb == 1 {
				continue
			}
			flips.ZeroToOne++
		}
		if addr := f >> 9; addr != last {
			faulty++
			last = addr
		}
	}
	return flips, faulty
}

// wordwiseFlips is uniformFlips for address-dependent patterns: the
// pattern word is regenerated once per faulted address (faults are
// address-sorted, so consecutive faults share the lookup).
func (e *Enumeration) wordwiseFlips(pat pattern.Pattern) (flips pattern.Flips, faulty uint64) {
	var w pattern.Word
	cur, last := ^uint64(0), ^uint64(0)
	for _, f := range e.faults {
		addr := f >> 9
		if addr != cur {
			w = pat.Word(addr)
			cur = addr
		}
		bit := uint(f>>1) & 255
		wb := (w[bit>>6] >> (bit & 63)) & 1
		if f&1 == 0 {
			if wb == 0 {
				continue
			}
			flips.OneToZero++
		} else {
			if wb == 1 {
				continue
			}
			flips.ZeroToOne++
		}
		if addr != last {
			faulty++
			last = addr
		}
	}
	return flips, faulty
}

// streamFlips evaluates one pattern over a spilled bit-exact window by
// re-walking the sampler's keyed per-cell draws — exactly the legacy
// per-pattern evaluation, so results stay bit-identical while memory
// stays O(1).
func (e *Enumeration) streamFlips(pat pattern.Pattern) (pattern.Flips, uint64) {
	if w, ok := pattern.UniformWord(pat); ok {
		return e.stream.CheckUniformRange(0, e.words, w, w)
	}
	var flips pattern.Flips
	var faulty uint64
	e.stream.RangeFaultWords(0, e.words, func(addr uint64, fs []CellFault) {
		w := pat.Word(addr)
		f := pattern.Compare(w, Overlay(w, fs))
		if f.Total() > 0 {
			faulty++
			flips.Add(f)
		}
	})
	return flips, faulty
}

// patternSplit derives one pattern's flip statistics from the
// segment's shared stuck-cell counts: thinning the pattern-agnostic
// Binomial cell counts by the pattern's ones density is statistically
// identical to the legacy per-pattern aggregate draw, while keeping
// the underlying physics draw shared.
func (a *enumAggregate) patternSplit(d float64, sig uint64) (flips pattern.Flips, faulty uint64) {
	src := prf.NewSource(prf.Hash2(a.key^saltSharedSplit, sig))
	fk0, fk1 := float64(a.k0), float64(a.k1)
	d10 := gaussCount(src, fk0*d, fk0*d*(1-d), a.k0)
	d01 := gaussCount(src, fk1*(1-d), fk1*d*(1-d), a.k1)
	flips.OneToZero = int(d10)
	flips.ZeroToOne = int(d01)

	// Clean-word probability under this pattern: every 1-bit must dodge
	// a stuck-at-0 cell and every 0-bit a stuck-at-1 cell.
	n1 := 256 * d
	n0 := 256 - n1
	q := math.Pow(1-a.p0, n1) * math.Pow(1-a.p1, n0)
	fn := float64(a.words)
	clean := gaussCount(src, fn*q, fn*q*(1-q), a.words)
	fw := a.words - clean

	// Physical clamps: each faulty word carries 1..256 flips.
	total := d10 + d01
	if fw > total {
		fw = total
	}
	if minW := (total + 255) / 256; fw < minW {
		fw = minW
	}
	return flips, fw
}
