package core

import (
	"errors"

	"hbmvolt/internal/faults"
)

// TempPoint is the device behaviour at one operating temperature.
type TempPoint struct {
	TempC float64
	// VMin is the guardband edge at this temperature.
	VMin float64
	// GuardbandFraction is (VNom - VMin) / VNom.
	GuardbandFraction float64
	// SafeSavings is the power saving available inside the guardband.
	SafeSavings float64
	// RateAt090 is the device-average cell fault rate at 0.90 V, showing
	// how the unsafe region deepens with heat.
	RateAt090 float64
}

// TempStudy sweeps operating temperature — the variable the paper holds
// at 35±1 °C — quantifying how much guardband a hotter deployment
// loses. At the paper's reference temperature the study reproduces the
// paper's V_min exactly.
type TempStudy struct {
	Points []TempPoint
}

// DefaultTemps spans a realistic deployment envelope.
var DefaultTemps = []float64{25, 30, 35, 40, 45, 50, 55}

// RunTempStudy evaluates guardband and fault-rate landmarks across
// temperatures, holding the device instance (seed, variation profile)
// fixed. Each temperature builds its own model, but models fingerprint
// into the process-wide rate atlas, so repeated studies (benchmarks, the
// CLI's `all` command) reuse every previously computed grid point.
func RunTempStudy(base faults.Config, temps []float64) (*TempStudy, error) {
	if temps == nil {
		temps = DefaultTemps
	}
	if len(temps) == 0 {
		return nil, errors.New("core: no temperatures to study")
	}
	study := &TempStudy{}
	for _, t := range temps {
		cfg := base
		cfg.Temperature = t
		fm, err := faults.New(cfg)
		if err != nil {
			return nil, err
		}
		g, err := FindGuardband(fm)
		if err != nil {
			return nil, err
		}
		var rate float64
		for s := 0; s < faults.NumStacks; s++ {
			rate += fm.StackFaultFraction(s, 0.90, faults.AnyFlip) / faults.NumStacks
		}
		study.Points = append(study.Points, TempPoint{
			TempC:             t,
			VMin:              g.VMin,
			GuardbandFraction: g.Fraction,
			SafeSavings:       g.SafeSavings,
			RateAt090:         rate,
		})
	}
	return study, nil
}
