package hbmvolt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestRenderTempStudy(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	study, err := sys.RenderTempStudy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Points) == 0 {
		t.Fatal("no points")
	}
	out := buf.String()
	if !strings.Contains(out, "35") || !strings.Contains(out, "Vmin") {
		t.Fatalf("temp table malformed:\n%s", out)
	}
	// The paper's operating point must reproduce its guardband.
	for _, pt := range study.Points {
		if pt.TempC == 35 && pt.VMin != VMin {
			t.Fatalf("35°C VMin = %v", pt.VMin)
		}
	}
}

func TestRenderCapacityStudy(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	study, err := sys.RenderCapacityStudy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pt := study.At(0.92)
	if pt == nil {
		t.Fatal("missing 0.92V point")
	}
	if pt.RowGranularBytes < 0.85*study.TotalBytes {
		t.Fatalf("row recovery at 0.92V = %v of %v", pt.RowGranularBytes, study.TotalBytes)
	}
	if !strings.Contains(buf.String(), "recovered") {
		t.Fatal("capacity table malformed")
	}
}

func TestRenderBandwidthStudy(t *testing.T) {
	sys := newSystem(t, Config{})
	var buf bytes.Buffer
	results, err := sys.RenderBandwidthStudy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 4 {
		t.Fatalf("suite size %d", len(results))
	}
	if results[0].Name != "sequential-read" {
		t.Fatalf("first workload %s", results[0].Name)
	}
	// Sequential must beat random by a wide margin.
	var seq, rnd float64
	for _, r := range results {
		switch r.Name {
		case "sequential-read":
			seq = r.BandwidthGBs
		case "random":
			rnd = r.BandwidthGBs
		}
	}
	if seq < 2*rnd {
		t.Fatalf("sequential %v vs random %v: locality effect missing", seq, rnd)
	}
}

// Golden tests pin the fully deterministic analytic figures: any change
// to the calibration, the analytics, or the rendering shows up as a
// diff. Regenerate with: go test -run TestGolden -update .
func TestGoldenFigures(t *testing.T) {
	sys := newSystem(t, Config{})
	cases := []struct {
		name   string
		render func(*bytes.Buffer) error
	}{
		{"fig4", func(b *bytes.Buffer) error { _, err := sys.RenderFig4(b); return err }},
		{"fig5", func(b *bytes.Buffer) error { return sys.RenderFig5(b) }},
		{"fig6", func(b *bytes.Buffer) error { return sys.RenderFig6(b) }},
		{"ecc", func(b *bytes.Buffer) error { _, err := sys.RenderECCStudy(b); return err }},
		{"temp", func(b *bytes.Buffer) error { _, err := sys.RenderTempStudy(b); return err }},
		{"capacity", func(b *bytes.Buffer) error { _, err := sys.RenderCapacityStudy(b); return err }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.render(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden; run with -update after verifying the change", c.name)
			}
		})
	}
}
