package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hbmvolt/internal/telemetry"
)

// Client is a typed consumer of the sweep service API. The zero value
// is not usable; construct with NewClient.
//
// Every idempotent call (which is all of them — Submit is idempotent by
// the service's determinism contract: resubmitting a request coalesces
// or cache-hits, it never recomputes different bytes) retries
// transparently on 429/503, honoring the server's Retry-After hint with
// exponential backoff and jitter between attempts. Stream does not
// retry (it holds one connection open); Wait recovers from a dropped
// stream by falling back to status polling instead.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8023".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Streaming calls hold a
	// connection open for the sweep's lifetime, so the client must not
	// impose an overall request timeout.
	HTTPClient *http.Client
	// Retries is the number of additional attempts after a 429/503
	// (0 → 4; negative disables retrying).
	Retries int
	// RetryBase is the first backoff step (0 → 200ms); step i waits
	// max(Retry-After, RetryBase×2^i) plus up to RetryBase of jitter.
	RetryBase time.Duration
	// PollInterval paces Wait's status-polling fallback after a dropped
	// event stream (0 → 250ms).
	PollInterval time.Duration
	// WaitTimeout bounds Wait's status-polling fallback end to end
	// (0 → 15m; negative → unbounded, the pre-bound behavior). A job
	// stuck non-terminal past the deadline surfaces ErrWaitTimeout
	// instead of polling forever — the job keeps running server-side and
	// its id stays valid for a later Status or Wait.
	WaitTimeout time.Duration
	// Jitter draws the random extra backoff added to each retry step,
	// returning a duration in [0, max). Nil uses math/rand/v2 — the
	// production default that desynchronizes a fan-out of clients
	// hitting one 503. Tests (and chaos plans asserting exact retry
	// timing) inject a deterministic source instead.
	Jitter func(max time.Duration) time.Duration
	// Header is added to every request this client sends — e.g. a
	// stable X-Client-ID so admission buckets follow the client across
	// addresses, or the fleet's forwarded-once marker.
	Header http.Header
}

// NewClient builds a client for a server root URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTPClient: http.DefaultClient}
}

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint in seconds (0 when the
	// response carried none).
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

// retryable reports whether the error is the server shedding load —
// worth retrying later, as opposed to a request that can never succeed.
func (e *APIError) retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

func (c *Client) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 4
	}
	return c.Retries
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return 200 * time.Millisecond
	}
	return c.RetryBase
}

func (c *Client) jitter(max time.Duration) time.Duration {
	if c.Jitter != nil {
		return c.Jitter(max)
	}
	return time.Duration(rand.Int64N(int64(max)))
}

// doOnce performs a single request attempt. body may be nil.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range c.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	// A trace riding the context propagates to the server — this is how
	// one trace ID spans a fleet forward: the forwarding node's run
	// context carries the submission's trace, so the owner adopts it
	// instead of minting its own.
	if id := telemetry.TraceOf(ctx); id != "" && req.Header.Get(telemetry.HeaderTraceID) == "" {
		req.Header.Set(telemetry.HeaderTraceID, id)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: msg}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			apiErr.RetryAfter = ra
		}
		return nil, apiErr
	}
	return resp, nil
}

// do performs a request with retry: 429/503 responses are retried with
// exponential backoff and jitter, waiting at least the server's
// Retry-After. Everything the client exposes except Stream goes through
// here.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.doOnce(ctx, method, path, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		apiErr, ok := err.(*APIError)
		if !ok || !apiErr.retryable() || attempt >= c.retries() {
			return nil, lastErr
		}
		base := c.retryBase()
		wait := base << attempt
		if ra := time.Duration(apiErr.RetryAfter) * time.Second; ra > wait {
			wait = ra
		}
		// Full jitter on one base step, so synchronized clients (a
		// campaign fan-out hitting one 503) desynchronize.
		wait += c.jitter(base)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a sweep request and returns the job handle. Submission
// is idempotent (identical requests coalesce server-side), so it
// retries on 429/503 like every other call.
func (c *Client) Submit(ctx context.Context, req SweepRequest) (SubmitResponse, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	var out SubmitResponse
	err = c.doJSON(ctx, http.MethodPost, "/v1/sweeps", blob, &out)
	return out, err
}

// Status fetches a job's current status (result payload not included).
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &out)
	return out, err
}

// Result fetches a completed job's raw payload bytes — the byte-stable
// body the cache contract promises. It fails with an *APIError (409)
// while the job is not done. When the server sent its payload checksum
// header the fetched bytes are verified against it, so a transfer
// severed or corrupted mid-body surfaces as an error instead of wrong
// bytes — the guarantee the fleet's peer-forwarding path relies on
// before caching a remote payload.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service: reading result %s: %w", id, err)
	}
	if want := resp.Header.Get(HeaderPayloadSHA); want != "" {
		sum := sha256.Sum256(payload)
		if got := hex.EncodeToString(sum[:]); got != want {
			return nil, fmt.Errorf("service: result %s payload checksum mismatch: got %s want %s (truncated or corrupted transfer)", id, got, want)
		}
	}
	return payload, nil
}

// Stream follows a job's NDJSON event stream, invoking fn per event
// until the stream ends (terminal event), fn returns an error, or ctx
// is cancelled. It returns nil on a completed stream. It does not
// retry: a stream that dies mid-job surfaces its transport error (Wait
// layers reconnection-by-polling on top).
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	resp, err := c.doOnce(ctx, http.MethodGet, "/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("service: decoding event %q: %w", line, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ErrJobLost reports that the server no longer knows the job id — the
// daemon restarted (its job table is in-memory) or evicted the record.
// The sweep itself is not lost: by the determinism contract,
// resubmitting the same request recovers the identical payload, served
// from the durable cache tier when one is configured and recomputed
// otherwise. Wait surfaces this typed error instead of a bare 404 so
// callers can branch to resubmit-by-key recovery.
var ErrJobLost = errors.New("service: job lost (server no longer knows the id)")

// ErrWaitTimeout reports that Wait's status-polling fallback ran out
// its WaitTimeout with the job still non-terminal. Unlike ErrJobLost
// the job id is still valid: the caller may keep waiting with a fresh
// Wait/Status call, or Cancel the job. Distinct from a caller-side
// context cancellation, which Wait surfaces as ctx.Err().
var ErrWaitTimeout = errors.New("service: wait deadline exceeded with job still running")

// Wait blocks until the job reaches a terminal state and returns it.
// It prefers the NDJSON event stream (cheap, push-based); if the stream
// disconnects mid-job — server restart, dropped connection, proxy
// timeout — it falls back to polling Status instead of surfacing the
// scanner error, so callers see the job's real outcome whenever one
// exists. If the poll answers 404 — the daemon restarted and the job id
// vanished with its job table — Wait returns ErrJobLost immediately
// rather than polling a dead id, and the caller recovers by
// resubmitting the request (identical bytes, by the determinism
// contract). The polling fallback is bounded by WaitTimeout (default
// 15m): a job that never goes terminal surfaces ErrWaitTimeout rather
// than pinning the caller forever.
func (c *Client) Wait(ctx context.Context, id string) (JobState, error) {
	last := JobState("")
	// The stream error is deliberately ignored: whether it died with a
	// transport error or the server closed it cleanly mid-job, the only
	// trustworthy source for the outcome is now Status.
	_ = c.Stream(ctx, id, func(e Event) error {
		if JobState(e.Type).terminal() {
			last = JobState(e.Type)
		}
		return nil
	})
	if last != "" {
		return last, nil
	}
	if ctx.Err() != nil {
		return "", ctx.Err()
	}
	interval := c.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	var deadline <-chan time.Time
	if wt := c.waitTimeout(); wt > 0 {
		timer := time.NewTimer(wt)
		defer timer.Stop()
		deadline = timer.C
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
				return "", fmt.Errorf("waiting for %s: %w", id, ErrJobLost)
			}
			return "", fmt.Errorf("service: waiting for %s after stream loss: %w", id, err)
		}
		if st.State.terminal() {
			return st.State, nil
		}
		select {
		case <-time.After(interval):
		case <-deadline:
			return "", fmt.Errorf("waiting for %s: %w", id, ErrWaitTimeout)
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// waitTimeout resolves the Wait polling bound: the configured value,
// 15 minutes by default, unbounded when negative.
func (c *Client) waitTimeout() time.Duration {
	if c.WaitTimeout < 0 {
		return 0
	}
	if c.WaitTimeout == 0 {
		return 15 * time.Minute
	}
	return c.WaitTimeout
}

// Cancel requests cancellation and returns the job's status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.doJSON(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, &out)
	return out, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}
