package campaign

import (
	"hbmvolt/internal/telemetry"
)

// campaignMetrics are the campaign engine's telemetry families. They
// register on the shared manager registry — register-or-fetch, so the
// many Execute calls a daemon serves over one manager all feed the same
// series, and the daemon's /metrics carries campaign progress alongside
// the job families the cells flow through.
type campaignMetrics struct {
	// cells counts cell executions by outcome: planned (scheduled for
	// execution after spec expansion), replayed (resumed from a
	// checkpoint journal without recomputation), completed (finished an
	// execution, repeats included).
	cells *telemetry.CounterVec
	// runs counts campaign runs by terminal state (done | failed |
	// cancelled).
	runs *telemetry.CounterVec
	// journalAppend observes the latency of durable checkpoint-journal
	// record appends (marshal + write + fsync).
	journalAppend *telemetry.Histogram
}

func newCampaignMetrics(r *telemetry.Registry) *campaignMetrics {
	return &campaignMetrics{
		cells: r.CounterVec("hbmvolt_campaign_cells_total",
			"Campaign cell executions by outcome: planned (scheduled after spec expansion), replayed (served from a checkpoint journal + cache), completed (finished executions, repeats included).",
			"outcome"),
		runs: r.CounterVec("hbmvolt_campaign_runs_total",
			"Campaign runs by terminal state.",
			"state"),
		journalAppend: r.Histogram("hbmvolt_journal_append_seconds",
			"Durable checkpoint-journal record append latency (write + fsync) in seconds.",
			telemetry.LatencyBuckets()),
	}
}
