package faults

import (
	"sort"

	"hbmvolt/internal/prf"
)

// rowRange is a half-open range [Lo, Hi) of row indices belonging to a
// weak-cell cluster.
type rowRange struct {
	Lo, Hi uint64
}

// clusterSet holds the merged, sorted weak-cell clusters of one pseudo
// channel, plus the exact coverage bookkeeping the analytic path needs.
type clusterSet struct {
	ranges []rowRange
	// coveredRows is the total number of distinct rows inside clusters.
	coveredRows uint64
	// prefix[i] is the number of covered rows in ranges[0..i-1]; used for
	// O(log n) covered-row counting within arbitrary row windows.
	prefix []uint64
}

// buildClusters deterministically places cnt clusters covering ~frac of
// rowsPerPC rows. Placement is a pure function of (seed, stack, pc), so
// the same configuration always yields the same physical weak regions.
func buildClusters(seed uint64, stack, pc int, rowsPerPC uint64, frac float64, cnt int) clusterSet {
	if cnt <= 0 || frac <= 0 || rowsPerPC == 0 {
		return clusterSet{prefix: []uint64{0}}
	}
	targetRows := float64(rowsPerPC) * frac
	meanLen := targetRows / float64(cnt)
	if meanLen < 1 {
		meanLen = 1
	}
	src := prf.NewSource(prf.Hash3(seed, uint64(stack)<<8|uint64(pc), saltCluster))
	raw := make([]rowRange, 0, cnt)
	for i := 0; i < cnt; i++ {
		// Length uniform in [0.5, 1.5) x mean keeps cluster sizes "small
		// regions" without degenerate single-row spans.
		length := uint64(meanLen * (0.5 + src.Float64()))
		if length == 0 {
			length = 1
		}
		if length > rowsPerPC {
			length = rowsPerPC
		}
		start := uint64(src.Intn(int(rowsPerPC)))
		end := start + length
		if end > rowsPerPC {
			end = rowsPerPC
		}
		if start < end {
			raw = append(raw, rowRange{start, end})
		}
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].Lo < raw[j].Lo })
	// Merge overlaps so coverage accounting is exact.
	merged := make([]rowRange, 0, len(raw))
	for _, r := range raw {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	cs := clusterSet{ranges: merged, prefix: make([]uint64, len(merged)+1)}
	for i, r := range merged {
		cs.coveredRows += r.Hi - r.Lo
		cs.prefix[i+1] = cs.coveredRows
	}
	return cs
}

// contains reports whether row lies inside a cluster.
func (c *clusterSet) contains(row uint64) bool {
	i := sort.Search(len(c.ranges), func(i int) bool { return c.ranges[i].Hi > row })
	return i < len(c.ranges) && c.ranges[i].Lo <= row
}

// coveredIn returns how many rows of the window [lo, hi) lie inside
// clusters.
func (c *clusterSet) coveredIn(lo, hi uint64) uint64 {
	if lo >= hi || len(c.ranges) == 0 {
		return 0
	}
	// First range that ends after lo.
	i := sort.Search(len(c.ranges), func(i int) bool { return c.ranges[i].Hi > lo })
	var covered uint64
	for ; i < len(c.ranges) && c.ranges[i].Lo < hi; i++ {
		l, h := c.ranges[i].Lo, c.ranges[i].Hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if l < h {
			covered += h - l
		}
	}
	return covered
}

// coverage returns the fraction of the PC's rows inside clusters.
func (c *clusterSet) coverage(rowsPerPC uint64) float64 {
	if rowsPerPC == 0 {
		return 0
	}
	return float64(c.coveredRows) / float64(rowsPerPC)
}

// Ranges returns a copy of the merged cluster row ranges (for reporting
// and visualization).
func (c *clusterSet) Ranges() []rowRange {
	return append([]rowRange(nil), c.ranges...)
}
