package fleet

import (
	"sync"
	"time"
)

// breaker is one peer's circuit breaker. It is fed from two sides —
// the active health prober and passive forward outcomes — and answers
// one question: is this peer worth an attempt right now?
//
// States:
//
//   - closed: healthy; every forward may try the peer.
//   - open: the peer accumulated FailureThreshold consecutive failures
//     (or failed its half-open trial); forwards skip straight to local
//     compute until Cooldown elapses. Probes keep running regardless —
//     a successful probe closes the circuit immediately, so recovery
//     does not wait out the cooldown.
//   - half-open: the cooldown elapsed; exactly one trial request is
//     admitted. Its success closes the circuit, its failure re-opens
//     (and restarts the cooldown).
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	// now is the clock, injectable in tests.
	now func() time.Time

	state       string // "closed" | "open" | "half-open"
	consecutive int
	openedAt    time.Time
}

const (
	circuitClosed   = "closed"
	circuitOpen     = "open"
	circuitHalfOpen = "half-open"
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     circuitClosed,
	}
}

// Allow reports whether a forward may try the peer, transitioning
// open → half-open once the cooldown has elapsed (the caller then runs
// the single trial).
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case circuitClosed:
		return true
	case circuitOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = circuitHalfOpen
			return true
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// Success records a healthy interaction, closing the circuit. It
// reports whether this call performed the open/half-open → closed
// recovery transition (so the caller can log it once).
func (b *breaker) Success() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered = b.state != circuitClosed
	b.state = circuitClosed
	b.consecutive = 0
	return recovered
}

// Failure records a failed interaction. The circuit opens when the
// consecutive-failure streak reaches the threshold, or immediately if
// a half-open trial failed. It reports whether this call opened a
// previously non-open circuit.
func (b *breaker) Failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == circuitHalfOpen || (b.state == circuitClosed && b.consecutive >= b.threshold) {
		b.state = circuitOpen
		b.openedAt = b.now()
		return true
	}
	return false
}

// State returns the current circuit state.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns the state and the current failure streak.
func (b *breaker) Snapshot() (state string, consecutive int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consecutive
}
