package log

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hbmvolt/internal/telemetry"
)

// decodeLines parses one JSON object per line.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLevelsAndFields(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.s.now = func() time.Time { return time.Unix(1700000000, 0) }

	l.Debug("hidden")
	l.Info("served", F("job", "j1"), F("bytes", 512))
	l.Warn("degraded", Err(errors.New("owner down")))
	l.Error("boom", Err(nil))

	lines := decodeLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (debug filtered)", len(lines))
	}
	if lines[0]["level"] != "info" || lines[0]["msg"] != "served" ||
		lines[0]["job"] != "j1" || lines[0]["bytes"] != float64(512) {
		t.Fatalf("info line = %v", lines[0])
	}
	if lines[1]["level"] != "warn" || lines[1]["err"] != "owner down" {
		t.Fatalf("warn line = %v", lines[1])
	}
	if lines[2]["err"] != "" {
		t.Fatalf("nil error must render empty err, got %v", lines[2])
	}
	if ts, ok := lines[0]["ts"].(string); !ok || ts == "" {
		t.Fatalf("missing ts: %v", lines[0])
	}
}

// TestFieldOrdering pins the deterministic rendering: ts, level, msg,
// bound fields, then call-site fields, byte for byte.
func TestFieldOrdering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug)
	l.s.now = func() time.Time { return time.Unix(0, 0) }
	l.With(F("node", "n1")).Info("m", F("a", 1))
	want := `{"ts":"1970-01-01T00:00:00Z","level":"info","msg":"m","node":"n1","a":1}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestWithTraceAndNil(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug)
	ctx := telemetry.WithTrace(context.Background(), "trace-9")
	l.WithTrace(ctx).Info("traced")
	l.WithTrace(context.Background()).Info("untraced")

	lines := decodeLines(t, &buf)
	if lines[0]["trace"] != "trace-9" {
		t.Fatalf("traced line = %v", lines[0])
	}
	if _, ok := lines[1]["trace"]; ok {
		t.Fatalf("untraced line must not carry trace: %v", lines[1])
	}

	var nilLogger *Logger
	nilLogger.Info("dropped", F("k", "v")) // must not panic
	nilLogger.With(F("a", 1)).Warn("dropped")
	nilLogger.WithTrace(ctx).Error("dropped")
	nilLogger.SetLevel(LevelError)
	nilLogger.Printf("dropped %d", 1)
}

func TestPrintfAdapter(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Printf("recovered %d entries (%d bytes)", 3, 4096)
	lines := decodeLines(t, &buf)
	if lines[0]["msg"] != "recovered 3 entries (4096 bytes)" || lines[0]["level"] != "info" {
		t.Fatalf("printf line = %v", lines[0])
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, " info ": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) must error")
	}
}

func TestConcurrentLogging(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scoped := l.With(F("worker", w))
			for i := 0; i < 100; i++ {
				scoped.Info("tick", F("i", i))
			}
		}(w)
	}
	wg.Wait()
	if lines := decodeLines(t, &buf); len(lines) != 800 {
		t.Fatalf("got %d intact lines, want 800", len(lines))
	}
}
