package axi

import (
	"testing"

	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

// TestBulkMatchesWordwiseExact pins the tentpole's correctness contract:
// on the bit-exact fault model, the bulk data path must produce
// bit-identical statistics to the word-by-word reference path — same
// flips by polarity, same faulty-word count, same word counters — for
// both paper patterns across the whole voltage ladder, including the
// clean guardband (1.10), the first-flip region (0.95), the cluster-
// dominated region (0.90, 0.87) and the bulk collapse (0.85).
func TestBulkMatchesWordwiseExact(t *testing.T) {
	voltages := []float64{1.10, 0.95, 0.90, 0.87, 0.85}
	patterns := []pattern.Pattern{pattern.AllOnes(), pattern.AllZeros()}
	for _, port := range []hbm.PortID{1, 18} { // robust and sensitive PCs
		for _, v := range voltages {
			for _, pat := range patterns {
				for rep := uint64(0); rep < 2; rep++ {
					run := func(wordwise bool) Stats {
						dev := testDevice(t, 512)
						dev.SetVoltage(v)
						dev.SetBatchRep(rep)
						tg := NewTrafficGen(testPort(t, dev, port))
						tg.Wordwise = wordwise
						st, err := tg.Run(FillCheckProgram(pat, 0, dev.Org.WordsPerPC))
						if err != nil {
							t.Fatal(err)
						}
						return st
					}
					bulk, word := run(false), run(true)
					if bulk.Flips != word.Flips || bulk.FaultyWords != word.FaultyWords {
						t.Errorf("port %d %vV %s rep %d: bulk {flips %+v faulty %d} vs wordwise {flips %+v faulty %d}",
							port, v, pat.Name(), rep, bulk.Flips, bulk.FaultyWords, word.Flips, word.FaultyWords)
					}
					if bulk.WordsWritten != word.WordsWritten || bulk.WordsRead != word.WordsRead {
						t.Errorf("port %d %vV %s: word counters differ: %d/%d vs %d/%d",
							port, v, pat.Name(), bulk.WordsWritten, bulk.WordsRead, word.WordsWritten, word.WordsRead)
					}
				}
			}
		}
	}
}

// TestBulkMatchesWordwiseSubrangesAndPatterns covers the bulk path's
// edge geometry — windows not aligned to rows, pages or clusters — and
// the address-dependent pattern fallback.
func TestBulkMatchesWordwiseSubranges(t *testing.T) {
	windows := [][2]uint64{{0, 16384}, {7, 4098}, {4095, 8193}, {33, 31}}
	patterns := []pattern.Pattern{pattern.AllOnes(), pattern.Checkerboard(), pattern.Random(3)}
	for _, v := range []float64{0.90, 0.86} {
		for _, w := range windows {
			for _, pat := range patterns {
				run := func(wordwise bool) Stats {
					dev := testDevice(t, 512)
					dev.SetVoltage(v)
					tg := NewTrafficGen(testPort(t, dev, 19))
					tg.Wordwise = wordwise
					st, err := tg.Run(FillCheckProgram(pat, w[0], w[1]))
					if err != nil {
						t.Fatal(err)
					}
					return st
				}
				bulk, word := run(false), run(true)
				if bulk.Flips != word.Flips || bulk.FaultyWords != word.FaultyWords {
					t.Errorf("%vV %s window %v: bulk {%+v %d} vs wordwise {%+v %d}",
						v, pat.Name(), w, bulk.Flips, bulk.FaultyWords, word.Flips, word.FaultyWords)
				}
			}
		}
	}
}

// TestBulkDirtyBackground writes scattered words that differ from the
// test pattern before the check, so page-backed runs and fill runs mix;
// the bulk path must agree with the reference on the polluted region
// too.
func TestBulkDirtyBackground(t *testing.T) {
	for _, v := range []float64{0.95, 0.88} {
		run := func(wordwise bool) Stats {
			dev := testDevice(t, 512)
			dev.SetVoltage(v)
			p := testPort(t, dev, 18)
			tg := NewTrafficGen(p)
			tg.Wordwise = wordwise
			words := dev.Org.WordsPerPC
			// Fill with the pattern, then corrupt a scattered set of words.
			if _, err := tg.Run([]Macro{{Op: OpWriteSeq, Start: 0, Count: words, Pattern: pattern.AllOnes()}}); err != nil {
				t.Fatal(err)
			}
			for a := uint64(3); a < words; a += 997 {
				if err := p.WriteWord(a, pattern.Word{0xdead, 0xbeef, a, ^a}); err != nil {
					t.Fatal(err)
				}
			}
			if err := tg.Reset(); err != nil {
				t.Fatal(err)
			}
			st, err := tg.Run([]Macro{{Op: OpReadCheck, Start: 0, Count: words, Pattern: pattern.AllOnes()}})
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		bulk, word := run(false), run(true)
		if bulk.Flips != word.Flips || bulk.FaultyWords != word.FaultyWords {
			t.Errorf("%vV dirty background: bulk {%+v %d} vs wordwise {%+v %d}",
				v, bulk.Flips, bulk.FaultyWords, word.Flips, word.FaultyWords)
		}
		if bulk.FaultyWords == 0 {
			t.Errorf("%vV: dirty background produced no faulty words; test is vacuous", v)
		}
	}
}

// TestBulkReadSeqAndTiming checks that bulk macros still account
// elapsed time and bandwidth, and that read-seq counts words without
// checking.
func TestBulkReadSeqAndTiming(t *testing.T) {
	dev := testDevice(t, 64)
	dev.SetVoltage(0.88)
	tg := NewTrafficGen(testPort(t, dev, 4))
	st, err := tg.Run([]Macro{
		{Op: OpWriteSeq, Start: 0, Count: dev.Org.WordsPerPC, Pattern: pattern.AllOnes()},
		{Op: OpReadSeq, Start: 0, Count: dev.Org.WordsPerPC},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Flips.Total() != 0 {
		t.Fatal("read-seq must not check")
	}
	if st.WordsRead != dev.Org.WordsPerPC || st.WordsWritten != dev.Org.WordsPerPC {
		t.Fatalf("counters %d/%d", st.WordsWritten, st.WordsRead)
	}
	if st.ElapsedSeconds() <= 0 || st.BandwidthGBs() <= 0 {
		t.Fatalf("no time accounted: %+v", st)
	}
	// The bulk timing model must land near the wordwise reference.
	ref := NewTrafficGen(testPort(t, dev, 5))
	ref.Wordwise = true
	rst, err := ref.Run([]Macro{
		{Op: OpWriteSeq, Start: 0, Count: dev.Org.WordsPerPC, Pattern: pattern.AllOnes()},
		{Op: OpReadSeq, Start: 0, Count: dev.Org.WordsPerPC},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := st.DRAMSeconds / rst.DRAMSeconds; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("bulk DRAM time %v vs wordwise %v (ratio %v)", st.DRAMSeconds, rst.DRAMSeconds, ratio)
	}
	// Faults persist across macro programs: a later check still sees them.
	if err := tg.Reset(); err != nil {
		t.Fatal(err)
	}
	st, err = tg.Run([]Macro{{Op: OpReadCheck, Start: 0, Count: dev.Org.WordsPerPC, Pattern: pattern.AllOnes()}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Flips.OneToZero == 0 {
		t.Fatal("no faults on sensitive PC at 0.88V")
	}
}

// TestBulkCrashedStackError mirrors the wordwise crash semantics.
func TestBulkCrashedStackError(t *testing.T) {
	dev := testDevice(t, 1024)
	dev.SetVoltage(0.79)
	tg := NewTrafficGen(testPort(t, dev, 0))
	if _, err := tg.Run(FillCheckProgram(pattern.AllOnes(), 0, 16)); err == nil {
		t.Fatal("traffic on crashed stack succeeded")
	}
	// Disabled ports refuse bulk traffic like word traffic.
	dev2 := testDevice(t, 1024)
	p := testPort(t, dev2, 0)
	p.SetEnabled(false)
	tg2 := NewTrafficGen(p)
	if _, err := tg2.Run(FillCheckProgram(pattern.AllOnes(), 0, 16)); err == nil {
		t.Fatal("disabled port accepted bulk traffic")
	}
}
