package hbmvolt

import (
	"fmt"
	"io"
	"strconv"

	"hbmvolt/internal/core"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/report"
)

// Figure regeneration: each RenderFigN acquires the figure's data from
// this module's models and hands it to a pure renderer (renderFigN)
// that writes the paper's corresponding table/plot to w. The CLI
// (cmd/hbmvolt), the benchmark harness (bench_test.go) and the campaign
// engine's render path (RenderCampaignResult) all share the renderers,
// so "regenerate figure N" produces identical bytes whether the data
// came from a live System or from a campaign artifact. Analytic figures
// share the memoized rate atlas (internal/faults), so rendering the
// suite — or re-rendering one figure — computes each (voltage,
// flip-kind) grid point once per process, not once per figure.

// fig2PortCounts are the bandwidth operating points of Fig. 2/3: 0, 25,
// 50, 75, 100% utilization.
var fig2PortCounts = []int{0, 8, 16, 24, 32}

// bwLabel names a port count as its bandwidth utilization ("idle",
// "25%BW", ...).
func bwLabel(ports int) string {
	if ports == 0 {
		return "idle"
	}
	return fmt.Sprintf("%d%%BW", ports*100/32)
}

// RenderFig2 regenerates Fig. 2 (normalized HBM power vs voltage per
// bandwidth utilization) from INA226 measurements and writes a table and
// chart.
func (s *System) RenderFig2(w io.Writer) (*PowerSweepResult, error) {
	res, err := s.RunPowerSweep(PowerSweepConfig{
		Grid:       DisplayGrid(),
		PortCounts: fig2PortCounts,
	})
	if err != nil {
		return nil, err
	}
	return res, renderFig2(w, DisplayGrid(), fig2PortCounts, res)
}

// renderFig2 writes the Fig. 2 table and chart from an acquired power
// sweep. The savings column appears when the 100% BW operating point
// (32 ports) is part of the sweep.
func renderFig2(w io.Writer, grid []float64, portCounts []int, res *core.PowerSweepResult) error {
	header := []string{"V"}
	for _, ports := range portCounts {
		header = append(header, bwLabel(ports))
	}
	hasFull := false
	for _, ports := range portCounts {
		if ports == 32 {
			hasFull = true
		}
	}
	if hasFull {
		header = append(header, "savings")
	}
	tbl := report.NewTable(header...)
	chart := &report.Chart{
		Title:  "Fig. 2 — HBM power (normalized to 1.20V @ 310GB/s) vs supply voltage",
		XLabel: "supply voltage (V), descending",
		X:      grid,
		Height: 14,
	}
	series := make([]report.Series, len(portCounts))
	for i, ports := range portCounts {
		series[i] = report.Series{Name: fmt.Sprintf("%d%% BW", ports*100/32)}
	}
	for _, v := range grid {
		row := []string{fmt.Sprintf("%.2f", v)}
		for i, ports := range portCounts {
			pt := res.At(v, ports)
			if pt == nil {
				row = append(row, "-")
				series[i].Values = append(series[i].Values, 0)
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", pt.NormPower))
			series[i].Values = append(series[i].Values, pt.NormPower)
		}
		if hasFull {
			if pt := res.At(v, 32); pt != nil {
				row = append(row, fmt.Sprintf("%.2fx", pt.Savings))
			}
		}
		tbl.AddRow(row...)
	}
	chart.Series = series
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}
	_, err := chart.WriteTo(w)
	return err
}

// RenderFig3 regenerates Fig. 3 (normalized α·C_L·f vs voltage per
// bandwidth).
func (s *System) RenderFig3(w io.Writer) (*PowerSweepResult, error) {
	res, err := s.RunPowerSweep(PowerSweepConfig{
		Grid:       DisplayGrid(),
		PortCounts: fig2PortCounts,
	})
	if err != nil {
		return nil, err
	}
	return res, renderFig3(w, DisplayGrid(), fig2PortCounts, res)
}

// renderFig3 writes the Fig. 3 table from an acquired power sweep.
func renderFig3(w io.Writer, grid []float64, portCounts []int, res *core.PowerSweepResult) error {
	header := []string{"V"}
	for _, ports := range portCounts {
		header = append(header, bwLabel(ports))
	}
	tbl := report.NewTable(header...)
	for _, v := range grid {
		row := []string{fmt.Sprintf("%.2f", v)}
		for _, ports := range portCounts {
			pt := res.At(v, ports)
			if pt == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", pt.NormAlphaCLF))
		}
		tbl.AddRow(row...)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 3 — α·C_L·f normalized per bandwidth; <1.0 below the guardband")
	fmt.Fprintln(w, "reflects stuck cells no longer switching (14% drop at 0.85V).")
	return nil
}

// RenderFig4 regenerates Fig. 4 (fraction of faulty cells per stack vs
// voltage) analytically over the full-capacity device.
func (s *System) RenderFig4(w io.Writer) ([]core.StackCurve, error) {
	curves, err := core.Fig4Curves(s.atlas, nil)
	if err != nil {
		return nil, err
	}
	return curves, renderFig4(w, curves)
}

// renderFig4 writes the per-stack fault-fraction table and chart.
func renderFig4(w io.Writer, curves []core.StackCurve) error {
	grid := curves[0].Grid
	tbl := report.NewTable("V", "HBM0 faulty", "HBM1 faulty")
	for i, v := range grid {
		tbl.AddRow(
			fmt.Sprintf("%.2f", v),
			formatFrac(curves[0].Fractions[i]),
			formatFrac(curves[1].Fractions[i]),
		)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}
	chart := &report.Chart{
		Title:  "Fig. 4 — faulty fraction per stack (log scale)",
		XLabel: "supply voltage (V), descending",
		X:      grid,
		Series: []report.Series{
			{Name: "HBM0", Values: curves[0].Fractions},
			{Name: "HBM1", Values: curves[1].Fractions},
		},
		Height: 14,
		LogY:   true,
	}
	_, err := chart.WriteTo(w)
	return err
}

func formatFrac(f float64) string {
	switch {
	case f == 0:
		return "0"
	case f < 1e-4:
		return strconv.FormatFloat(f, 'e', 2, 64)
	default:
		return fmt.Sprintf("%.2f%%", f*100)
	}
}

// RenderFig5 regenerates Fig. 5 (per-PC faulty-cell percentages per
// pattern and voltage, NF = no fault, <1% shown as 0).
func (s *System) RenderFig5(w io.Writer) error {
	var tables []*core.Fig5Table
	for _, kind := range []faults.FlipKind{faults.OneToZero, faults.ZeroToOne} {
		tbl, err := core.BuildFig5Table(s.atlas, nil, kind)
		if err != nil {
			return err
		}
		tables = append(tables, tbl)
	}
	return renderFig5(w, tables)
}

// renderFig5 writes the per-PC fault atlas tables, one per flip class.
func renderFig5(w io.Writer, tables []*core.Fig5Table) error {
	for _, tblData := range tables {
		label := "1→0 flips (all-1s pattern)"
		if tblData.Kind == faults.ZeroToOne {
			label = "0→1 flips (all-0s pattern)"
		}
		fmt.Fprintf(w, "Fig. 5 — %% faulty cells per pseudo channel, %s\n", label)
		header := []string{"V"}
		for pc := 0; pc < faults.NumPCs; pc++ {
			header = append(header, fmt.Sprintf("P%d", pc))
		}
		tbl := report.NewTable(header...)
		for i, v := range tblData.Grid {
			row := []string{fmt.Sprintf("%.2f", v)}
			for pc := 0; pc < faults.NumPCs; pc++ {
				row = append(row, tblData.Cells[i][pc].Display())
			}
			tbl.AddRow(row...)
		}
		if _, err := tbl.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderFig6 regenerates Fig. 6 (usable PCs out of 32 under tolerable
// fault rates vs voltage).
func (s *System) RenderFig6(w io.Writer) error {
	return renderFig6(w, s.fmap.Grid(), core.Fig6Tolerances, s.fmap.UsableSeries(nil))
}

// fig6Names labels the tolerance series the way the paper's legend
// does. Non-default tolerance sets fall back to percentage formatting.
func fig6Names(tolerances []float64) []string {
	defaults := []string{"0 (fault-free)", "1e-5%", "0.0001%", "0.001%", "0.01%", "0.1%", "1%"}
	if len(tolerances) == len(core.Fig6Tolerances) {
		same := true
		for i, t := range tolerances {
			if t != core.Fig6Tolerances[i] {
				same = false
				break
			}
		}
		if same {
			return defaults
		}
	}
	names := make([]string, len(tolerances))
	for i, t := range tolerances {
		if t == 0 {
			names[i] = "0 (fault-free)"
			continue
		}
		names[i] = fmt.Sprintf("%g%%", t*100)
	}
	return names
}

// renderFig6 writes the usable-PC family table and chart.
func renderFig6(w io.Writer, grid []float64, tolerances []float64, series [][]int) error {
	names := fig6Names(tolerances)
	header := append([]string{"V"}, names...)
	tbl := report.NewTable(header...)
	for i, v := range grid {
		row := []string{fmt.Sprintf("%.2f", v)}
		for t := range series {
			row = append(row, strconv.Itoa(series[t][i]))
		}
		tbl.AddRow(row...)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}
	chartSeries := make([]report.Series, len(series))
	for t := range series {
		vals := make([]float64, len(series[t]))
		for i, n := range series[t] {
			vals[i] = float64(n)
		}
		chartSeries[t] = report.Series{Name: names[t], Values: vals}
	}
	chart := &report.Chart{
		Title:  "Fig. 6 — usable PCs (of 32) per tolerable fault rate",
		XLabel: "supply voltage (V), descending",
		X:      grid,
		Series: chartSeries,
		Height: 12,
	}
	_, err := chart.WriteTo(w)
	return err
}

// RenderECCStudy writes the SEC-DED mitigation ablation: raw vs post-ECC
// behaviour per voltage and the extended safe region.
func (s *System) RenderECCStudy(w io.Writer) (*ECCStudy, error) {
	study, err := s.RunECCStudy()
	if err != nil {
		return nil, err
	}
	return study, renderECC(w, study)
}

// renderECC writes the mitigation ablation table and summary line.
func renderECC(w io.Writer, study *core.ECCStudy) error {
	tbl := report.NewTable("V", "raw faults (E)", "correctable (E)", "uncorrectable (E)")
	for _, pt := range study.Points {
		if pt.Volts < 0.90 {
			break // the interesting band for SEC-DED
		}
		tbl.AddRow(
			fmt.Sprintf("%.2f", pt.Volts),
			formatCount(pt.ExpectedRawFaults),
			formatCount(pt.ExpectedCorrectable),
			formatCount(pt.ExpectedUncorrectable),
		)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "SEC-DED(72,64) extends fault-free operation %.2fV → %.2fV (%.2fx → %.2fx safe savings, 12.5%% capacity overhead)\n",
		study.VMinRaw, study.VMinECC,
		(VNom/study.VMinRaw)*(VNom/study.VMinRaw), study.ExtraSafeSavings)
	return nil
}

func formatCount(f float64) string {
	switch {
	case f == 0:
		return "0"
	case f < 0.01 || f >= 1e6:
		return strconv.FormatFloat(f, 'e', 2, 64)
	default:
		return strconv.FormatFloat(f, 'f', 2, 64)
	}
}

// WriteFig2CSV emits Fig. 2 data as CSV (volts, ports, utilization,
// watts, normalized power, savings) — the serialization shared by the
// CLI's -csv export and the campaign examples.
func WriteFig2CSV(w io.Writer, res *PowerSweepResult) error {
	c := report.NewCSV(w)
	c.Row("volts", "ports", "utilization", "watts", "norm_power", "norm_alpha_clf", "savings")
	for _, pt := range res.Points {
		c.Row(pt.Volts, pt.Ports, pt.Utilization, pt.Watts, pt.NormPower, pt.NormAlphaCLF, pt.Savings)
	}
	return c.Flush()
}

// WriteFig2CSV is the method form of the package-level WriteFig2CSV.
func (s *System) WriteFig2CSV(w io.Writer, res *PowerSweepResult) error {
	return WriteFig2CSV(w, res)
}

// Fig2Record is one machine-readable Fig. 2 data point, the JSON
// sibling of the WriteFig2CSV columns.
type Fig2Record struct {
	Volts        float64 `json:"volts"`
	Ports        int     `json:"ports"`
	Utilization  float64 `json:"utilization"`
	Watts        float64 `json:"watts"`
	NormPower    float64 `json:"norm_power"`
	NormAlphaCLF float64 `json:"norm_alpha_clf"`
	Savings      float64 `json:"savings"`
}

// WriteFig2JSON emits the Fig. 2 data as NDJSON, one Fig2Record per
// line — the same rows WriteFig2CSV emits, in the serialization the
// sweep service shares.
func (s *System) WriteFig2JSON(w io.Writer, res *PowerSweepResult) error {
	n := report.NewNDJSON(w)
	for _, pt := range res.Points {
		n.Record(Fig2Record{
			Volts:        pt.Volts,
			Ports:        pt.Ports,
			Utilization:  pt.Utilization,
			Watts:        pt.Watts,
			NormPower:    pt.NormPower,
			NormAlphaCLF: pt.NormAlphaCLF,
			Savings:      pt.Savings,
		})
	}
	return n.Flush()
}

// Fig5Record is one machine-readable Fig. 5 cell, the JSON sibling of
// the WriteFig5CSV columns.
type Fig5Record struct {
	Volts   float64 `json:"volts"`
	PC      int     `json:"pc"`
	Kind    string  `json:"kind"`
	Percent float64 `json:"percent"`
	NF      bool    `json:"nf,omitempty"`
}

// WriteFig5JSON emits the per-PC fault atlas as NDJSON, one Fig5Record
// per line.
func (s *System) WriteFig5JSON(w io.Writer) error {
	n := report.NewNDJSON(w)
	for _, kind := range []faults.FlipKind{faults.OneToZero, faults.ZeroToOne} {
		tbl, err := core.BuildFig5Table(s.atlas, nil, kind)
		if err != nil {
			return err
		}
		for i, v := range tbl.Grid {
			for pc := 0; pc < faults.NumPCs; pc++ {
				cell := tbl.Cells[i][pc]
				n.Record(Fig5Record{Volts: v, PC: pc, Kind: kind.String(), Percent: cell.Percent, NF: cell.NF})
			}
		}
	}
	return n.Flush()
}

// WriteFig5CSV emits the per-PC fault atlas as CSV rows (volts, pc,
// kind, percent, nf).
func (s *System) WriteFig5CSV(w io.Writer) error {
	c := report.NewCSV(w)
	c.Row("volts", "pc", "kind", "percent", "nf")
	for _, kind := range []faults.FlipKind{faults.OneToZero, faults.ZeroToOne} {
		tbl, err := core.BuildFig5Table(s.atlas, nil, kind)
		if err != nil {
			return err
		}
		for i, v := range tbl.Grid {
			for pc := 0; pc < faults.NumPCs; pc++ {
				cell := tbl.Cells[i][pc]
				nf := 0
				if cell.NF {
					nf = 1
				}
				c.Row(v, pc, kind.String(), cell.Percent, nf)
			}
		}
	}
	return c.Flush()
}
