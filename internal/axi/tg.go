package axi

import (
	"fmt"

	"hbmvolt/internal/pattern"
)

// MacroOp enumerates the traffic-generator macro commands. The paper's
// controllers configure each TG with macro commands and read statistics
// back (§II-B); these are the operations Algorithm 1 is built from.
type MacroOp uint8

const (
	// OpWriteSeq writes Count words of Pattern starting at Start.
	OpWriteSeq MacroOp = iota
	// OpReadCheck reads Count words from Start and compares them against
	// Pattern, accumulating flip statistics.
	OpReadCheck
	// OpReadSeq reads Count words without checking (bandwidth traffic).
	OpReadSeq
	// OpNop does nothing (program padding / alignment).
	OpNop
)

// String implements fmt.Stringer.
func (o MacroOp) String() string {
	switch o {
	case OpWriteSeq:
		return "write-seq"
	case OpReadCheck:
		return "read-check"
	case OpReadSeq:
		return "read-seq"
	default:
		return "nop"
	}
}

// Macro is one traffic-generator command.
type Macro struct {
	Op      MacroOp
	Start   uint64
	Count   uint64
	Pattern pattern.Pattern
}

// Stats aggregates what a traffic generator observed. The FPGA-side
// design keeps exactly these raw counters and ships them to the host,
// because the HBM bandwidth far exceeds the host link (§II-C).
type Stats struct {
	WordsWritten uint64
	WordsRead    uint64
	// Flips classifies every mismatched bit from OpReadCheck.
	Flips pattern.Flips
	// FaultyWords counts words with at least one flipped bit.
	FaultyWords uint64
	// AXISeconds is the port-clock-limited transfer time.
	AXISeconds float64
	// DRAMSeconds is the memory-side busy time.
	DRAMSeconds float64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.WordsWritten += o.WordsWritten
	s.WordsRead += o.WordsRead
	s.Flips.Add(o.Flips)
	s.FaultyWords += o.FaultyWords
	s.AXISeconds += o.AXISeconds
	s.DRAMSeconds += o.DRAMSeconds
}

// ElapsedSeconds is the wall time of the traffic: the slower of the AXI
// and DRAM sides.
func (s Stats) ElapsedSeconds() float64 {
	if s.AXISeconds > s.DRAMSeconds {
		return s.AXISeconds
	}
	return s.DRAMSeconds
}

// BandwidthGBs is the achieved data rate over the elapsed time.
func (s Stats) BandwidthGBs() float64 {
	sec := s.ElapsedSeconds()
	if sec == 0 {
		return 0
	}
	return float64(s.WordsWritten+s.WordsRead) * 32 / sec / 1e9
}

// FaultBitRate is the fraction of checked bits that flipped.
func (s Stats) FaultBitRate() float64 {
	if s.WordsRead == 0 {
		return 0
	}
	return float64(s.Flips.Total()) / (float64(s.WordsRead) * pattern.WordBits)
}

// TrafficGen drives one AXI port with macro-command programs.
//
// Sequential macros run on the bulk data path by default: one ranged
// device transaction and one timing/stat update per macro instead of one
// per word. Set Wordwise to force the word-by-word reference path — it
// produces bit-identical fault statistics on the bit-exact fault model
// (the equivalence tests pin this) and remains the natural mode for
// future non-contiguous macro programs, but costs O(words) everywhere.
type TrafficGen struct {
	port  *Port
	stats Stats

	// Wordwise forces the per-word fallback path for every macro.
	Wordwise bool
}

// NewTrafficGen wraps a port.
func NewTrafficGen(p *Port) *TrafficGen { return &TrafficGen{port: p} }

// Port returns the underlying port.
func (tg *TrafficGen) Port() *Port { return tg.port }

// Reset clears statistics and timing state, as Algorithm 1 does between
// batches.
func (tg *TrafficGen) Reset() error {
	tg.stats = Stats{}
	return tg.port.ResetTiming()
}

// Stats returns the counters accumulated since the last Reset.
func (tg *TrafficGen) Stats() Stats { return tg.stats }

// Run executes a macro program. Execution stops at the first device
// error (e.g. a crashed stack), returning both the partial statistics
// and the error.
func (tg *TrafficGen) Run(prog []Macro) (Stats, error) {
	for i, m := range prog {
		if err := tg.run1(m); err != nil {
			return tg.stats, fmt.Errorf("axi: macro %d (%v): %w", i, m.Op, err)
		}
	}
	return tg.stats, nil
}

func (tg *TrafficGen) run1(m Macro) error {
	switch m.Op {
	case OpNop:
		return nil
	case OpWriteSeq:
		if m.Pattern == nil {
			return fmt.Errorf("write-seq without pattern")
		}
		if tg.Wordwise {
			return tg.runWordwise(m)
		}
		dramBefore := tg.port.DRAMSeconds()
		if err := tg.port.WriteRange(m.Start, m.Count, m.Pattern); err != nil {
			return err
		}
		tg.stats.WordsWritten += m.Count
		tg.addTime(m.Count, dramBefore)
		return nil
	case OpReadSeq, OpReadCheck:
		if m.Op == OpReadCheck && m.Pattern == nil {
			return fmt.Errorf("read-check without pattern")
		}
		if tg.Wordwise {
			return tg.runWordwise(m)
		}
		dramBefore := tg.port.DRAMSeconds()
		if m.Op == OpReadCheck {
			flips, faulty, err := tg.port.ReadCheckRange(m.Start, m.Count, m.Pattern)
			if err != nil {
				return err
			}
			tg.stats.Flips.Add(flips)
			tg.stats.FaultyWords += faulty
		} else if err := tg.port.ReadRange(m.Start, m.Count); err != nil {
			return err
		}
		tg.stats.WordsRead += m.Count
		tg.addTime(m.Count, dramBefore)
		return nil
	default:
		return fmt.Errorf("unknown macro op %d", m.Op)
	}
}

// runWordwise is the word-by-word reference implementation of the
// sequential macros: one device access, one timing step and one compare
// per word. It is what the FPGA actually does beat by beat, and the
// yardstick the bulk path's equivalence tests measure against.
func (tg *TrafficGen) runWordwise(m Macro) error {
	dramBefore := tg.port.DRAMSeconds()
	switch m.Op {
	case OpWriteSeq:
		for a := m.Start; a < m.Start+m.Count; a++ {
			if err := tg.port.WriteWord(a, m.Pattern.Word(a)); err != nil {
				return err
			}
			tg.stats.WordsWritten++
		}
	case OpReadSeq, OpReadCheck:
		for a := m.Start; a < m.Start+m.Count; a++ {
			w, err := tg.port.ReadWord(a)
			if err != nil {
				return err
			}
			tg.stats.WordsRead++
			if m.Op == OpReadCheck {
				f := pattern.Compare(m.Pattern.Word(a), w)
				if f.Total() > 0 {
					tg.stats.FaultyWords++
					tg.stats.Flips.Add(f)
				}
			}
		}
	}
	tg.addTime(m.Count, dramBefore)
	return nil
}

// addTime accounts the wall time of count beats: the AXI side moves one
// word per clock (derated by the switch), while the DRAM side is what
// the timing model says it spent.
func (tg *TrafficGen) addTime(count uint64, dramBefore float64) {
	rate := tg.port.sw.Throughput(tg.port.clockMHz * 1e6)
	if rate > 0 {
		tg.stats.AXISeconds += float64(count) / rate
	}
	tg.stats.DRAMSeconds += tg.port.DRAMSeconds() - dramBefore
}

// FillCheckProgram builds the canonical Algorithm 1 inner program: write
// the pattern over [start, start+count), then read it back and check.
func FillCheckProgram(p pattern.Pattern, start, count uint64) []Macro {
	return []Macro{
		{Op: OpWriteSeq, Start: start, Count: count, Pattern: p},
		{Op: OpReadCheck, Start: start, Count: count, Pattern: p},
	}
}
