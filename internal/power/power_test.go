package power

import (
	"math"
	"testing"
	"testing/quick"
)

func defModel(t testing.TB, cf CapFactor) *Model {
	t.Helper()
	m, err := New(DefaultParams(), cf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.VNominal = 0 },
		func(p *Params) { p.PeakBandwidthGBs = -1 },
		func(p *Params) { p.FullLoadWatts = 0 },
		func(p *Params) { p.IdleFraction = 1 },
		func(p *Params) { p.IdleFraction = -0.1 },
	}
	for i, mut := range cases {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

// Eq. 1: with no stuck bits, power scales exactly with V².
func TestQuadraticVoltageLaw(t *testing.T) {
	m := defModel(t, nil)
	f := func(rv, ru uint16) bool {
		v := 0.81 + float64(rv%390)/1000
		util := float64(ru%101) / 100
		got := m.Watts(v, util)
		want := m.Watts(1.20, util) * (v / 1.20) * (v / 1.20)
		return math.Abs(got-want) < 1e-9*want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// §III-A1: the savings factor is independent of bandwidth utilization.
func TestSavingsIndependentOfUtilization(t *testing.T) {
	capf := func(v float64) float64 {
		if v < 0.98 {
			return 0.9
		}
		return 1
	}
	m := defModel(t, capf)
	for _, v := range []float64{1.1, 0.98, 0.9, 0.85} {
		ref := m.Savings(v, 1)
		for _, util := range []float64{0, 0.25, 0.5, 0.75} {
			got := m.Savings(v, util)
			if math.Abs(got-ref) > 1e-9*ref {
				t.Fatalf("savings at %vV util %v = %v, differs from %v", v, util, got, ref)
			}
		}
	}
}

// Guardband edge: eliminating the guardband gives (1.2/0.98)² ≈ 1.5×.
func TestGuardbandSavings(t *testing.T) {
	m := defModel(t, nil)
	s := m.Savings(0.98, 0.5)
	if math.Abs(s-1.4994) > 0.001 {
		t.Fatalf("savings at 0.98V = %v, want ≈1.5", s)
	}
}

// With a 14% capacitance drop at 0.85 V the total saving is ≈2.3×.
func TestDeepUndervoltSavingsWithStuckBits(t *testing.T) {
	capf := func(v float64) float64 {
		if v <= 0.85 {
			return 0.86
		}
		return 1
	}
	m := defModel(t, capf)
	s := m.Savings(0.85, 1)
	if s < 2.25 || s > 2.40 {
		t.Fatalf("savings at 0.85V = %v, want ≈2.3", s)
	}
}

func TestIdleFraction(t *testing.T) {
	m := defModel(t, nil)
	idle := m.Watts(1.20, 0)
	full := m.Watts(1.20, 1)
	frac := idle / full
	if math.Abs(frac-1.0/3.0) > 1e-9 {
		t.Fatalf("idle fraction = %v, want 1/3", frac)
	}
}

func TestWattsMonotoneInUtilization(t *testing.T) {
	m := defModel(t, nil)
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		w := m.Watts(1.0, u)
		if w <= prev {
			t.Fatalf("watts not increasing at util %v", u)
		}
		prev = w
	}
}

func TestWattsClampsUtilization(t *testing.T) {
	m := defModel(t, nil)
	if m.Watts(1.0, -5) != m.Watts(1.0, 0) {
		t.Fatal("negative util not clamped")
	}
	if m.Watts(1.0, 7) != m.Watts(1.0, 1) {
		t.Fatal("util > 1 not clamped")
	}
}

func TestNormalizedPowerAnchors(t *testing.T) {
	m := defModel(t, nil)
	if np := m.NormalizedPower(1.20, 1); math.Abs(np-1) > 1e-12 {
		t.Fatalf("normalized power at reference = %v", np)
	}
	if np := m.NormalizedPower(1.20, 0); math.Abs(np-1.0/3.0) > 1e-9 {
		t.Fatalf("normalized idle = %v, want 1/3", np)
	}
}

func TestNormalizedAlphaCLFFlatWithoutStuckBits(t *testing.T) {
	m := defModel(t, nil)
	for _, v := range []float64{1.2, 1.0, 0.9, 0.85} {
		for _, u := range []float64{0.25, 1} {
			if got := m.NormalizedAlphaCLF(v, u); math.Abs(got-1) > 1e-9 {
				t.Fatalf("alphaCLF at (%v,%v) = %v, want 1", v, u, got)
			}
		}
	}
}

func TestNormalizedAlphaCLFTracksCapFactor(t *testing.T) {
	capf := func(v float64) float64 {
		if v <= 0.85 {
			return 0.86
		}
		return 1
	}
	m := defModel(t, capf)
	got := m.NormalizedAlphaCLF(0.85, 0.5)
	if math.Abs(got-0.86) > 1e-9 {
		t.Fatalf("alphaCLF at 0.85V = %v, want 0.86 (Fig. 3: 14%% drop)", got)
	}
}

func TestEnergyPerBit(t *testing.T) {
	m := defModel(t, nil)
	pj, err := m.EnergyPerBit(1.20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pj < 6.5 || pj > 7.5 {
		t.Fatalf("energy/bit = %v pJ, want ≈7 (paper §II-A)", pj)
	}
	if _, err := m.EnergyPerBit(1.20, 0); err == nil {
		t.Fatal("zero-util energy accepted")
	}
	// Undervolting reduces energy per bit quadratically.
	lo, err := m.EnergyPerBit(0.98, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := pj / lo; math.Abs(ratio-1.4994) > 0.01 {
		t.Fatalf("energy ratio = %v, want ≈1.5", ratio)
	}
}

func TestAmps(t *testing.T) {
	m := defModel(t, nil)
	w := m.Watts(1.20, 1)
	if a := m.Amps(1.20, 1); math.Abs(a-w/1.20) > 1e-12 {
		t.Fatalf("amps = %v", a)
	}
	if m.Amps(0, 1) != 0 {
		t.Fatal("zero-volt amps should be 0")
	}
}

func TestNoiseDeterministicAndCentered(t *testing.T) {
	n := Noise{Seed: 3, Sigma: 0.01}
	a := n.Apply(10, 0.95, 0.5, 7)
	b := n.Apply(10, 0.95, 0.5, 7)
	if a != b {
		t.Fatal("noise not deterministic")
	}
	if n.Apply(10, 0.95, 0.5, 8) == a {
		t.Fatal("noise ignores sample index")
	}
	// Mean over many samples stays near the true value; spread matches
	// sigma.
	var sum, sumSq float64
	const k = 5000
	for i := 0; i < k; i++ {
		v := n.Apply(10, 0.95, 0.5, i)
		sum += v
		sumSq += v * v
	}
	mean := sum / k
	sd := math.Sqrt(sumSq/k - mean*mean)
	if math.Abs(mean-10) > 0.02 {
		t.Fatalf("noisy mean = %v, want ≈10", mean)
	}
	if sd < 0.05 || sd > 0.15 {
		t.Fatalf("noisy sd = %v, want ≈0.1", sd)
	}
}

func TestNoiseZeroSigmaIsIdentity(t *testing.T) {
	n := Noise{Seed: 1}
	if n.Apply(3.14, 1, 1, 0) != 3.14 {
		t.Fatal("zero-sigma noise altered the value")
	}
}

func TestSavingsInfiniteAtZeroPower(t *testing.T) {
	m := defModel(t, func(float64) float64 { return 0 })
	if !math.IsInf(m.Savings(0.9, 1), 1) {
		t.Fatal("zero-power savings should be +Inf")
	}
}

func BenchmarkWatts(b *testing.B) {
	m := MustNew(DefaultParams(), nil)
	for i := 0; i < b.N; i++ {
		_ = m.Watts(0.9, 0.5)
	}
}
