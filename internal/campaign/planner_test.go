package campaign

import (
	"bytes"
	"context"
	"testing"

	"hbmvolt/internal/faults"
	"hbmvolt/internal/service"
)

// plannedSpec is a campaign built to share: per seed, three reliability
// cells differing only in pattern set over one grid, plus an exact-mode
// scenario and an analytic scenario the planner must leave alone.
func plannedSpec() Spec {
	return Spec{
		Name: "planned",
		Scenarios: []Scenario{
			{
				Name:        "rel",
				Kind:        "reliability",
				Seeds:       []uint64{0, 1},
				PatternSets: [][]string{{"all1"}, {"all0"}, {"checker"}},
				Grid:        []float64{0.90, 0.89},
				Ports:       []int{18},
				Batch:       2,
			},
			{
				Name:  "exact",
				Kind:  "reliability",
				Modes: []string{"exact"},
				Grid:  []float64{0.90, 0.89},
				Ports: []int{18},
				Batch: 2,
			},
			{Name: "ecc", Kind: "ecc-study", Grid: []float64{0.95, 0.90}},
		},
	}
}

// TestPlannerGroups pins the grouping rule: cells sharing (fingerprint
// × grid × mode) form one group; distinct seeds and modes split; the
// analytic cell joins no group; the counters quantify the sharing.
func TestPlannerGroups(t *testing.T) {
	spec := plannedSpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 3 { // seed0-sparse, seed1-sparse, seed0-exact
		t.Fatalf("groups = %d, want 3: %+v", len(plan.Groups), plan.Groups)
	}
	if plan.SharedCells != 7 {
		t.Fatalf("shared cells = %d, want 7", plan.SharedCells)
	}
	for gi, wantCells := range [][]int{{0, 1, 2}, {3, 4, 5}, {6}} {
		g := plan.Groups[gi]
		if len(g.Cells) != len(wantCells) {
			t.Fatalf("group %d cells = %v, want %v", gi, g.Cells, wantCells)
		}
		for i, ci := range wantCells {
			if g.Cells[i] != ci {
				t.Fatalf("group %d cells = %v, want %v", gi, g.Cells, wantCells)
			}
		}
		// grid(2) × ports(1) × batch(2) = 4 physics evaluations per
		// group, however many member cells and patterns consume them.
		if g.UniquePhysics != 4 {
			t.Errorf("group %d unique physics = %d, want 4", gi, g.UniquePhysics)
		}
	}
	// Sparse groups: 3 single-pattern cells × 4 = 12 evals each; the
	// exact group's one cell defaults to {all1, all0} = 8.
	for gi, want := range []int{12, 12, 8} {
		if got := plan.Groups[gi].PatternEvals; got != want {
			t.Errorf("group %d pattern evals = %d, want %d", gi, got, want)
		}
	}
	if plan.Groups[2].Mode != "exact" || plan.Groups[0].Mode != "sparse" {
		t.Fatalf("modes = %s/%s", plan.Groups[0].Mode, plan.Groups[2].Mode)
	}
	if plan.UniquePhysics != 12 || plan.PatternEvals != 32 {
		t.Fatalf("totals = %d physics / %d evals, want 12/32", plan.UniquePhysics, plan.PatternEvals)
	}
	// Submission order: groups adjacent, unplanned cells (the analytic
	// one) trailing.
	order := plan.submissionOrder(len(cells))
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("submission order = %v", order)
		}
	}
}

// TestPlannedCampaignDeterminismAndSharing runs the planned campaign
// end to end: manifests and artifacts are byte-identical across
// Jobs/Fleet settings, the manifest carries the plan with shared
// requests, and the enumeration memo computes exactly the plan's
// unique-physics count (not the legacy pattern-evals count).
func TestPlannedCampaignDeterminismAndSharing(t *testing.T) {
	spec := plannedSpec()
	// A fresh seed pair keeps this test's enumeration keys disjoint from
	// every other test in the package, so the memo-compute delta below
	// is exact.
	spec.Scenarios[0].Seeds = []uint64{7101, 7102}
	spec.Scenarios[1].Seeds = []uint64{7101}

	run := func(jobs, fleet int) *Result {
		t.Helper()
		res, err := Run(context.Background(), spec, Options{
			Jobs: jobs, Fleet: fleet, SharedEnumeration: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	before := faults.EnumStoreStats()
	res1 := run(1, 1)
	delta := faults.EnumStoreStats().Computes - before.Computes
	if res1.Manifest.Plan == nil {
		t.Fatal("planned campaign manifest carries no plan")
	}
	if want := uint64(res1.Manifest.Plan.UniquePhysics); delta != want {
		t.Errorf("first run computed %d enumerations, plan predicts %d", delta, want)
	}
	for _, sm := range res1.Manifest.Scenarios {
		for _, cm := range sm.Cells {
			if cm.Request.Kind == service.KindReliability && !cm.Request.Shared {
				t.Errorf("reliability cell %s/%d not in shared mode", sm.Name, cm.Index)
			}
			if cm.Request.Kind != service.KindReliability && cm.Request.Shared {
				t.Errorf("non-reliability cell %s/%d marked shared", sm.Name, cm.Index)
			}
		}
	}

	res2 := run(4, 8)
	m1, err := res1.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := res2.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("planned manifest differs across Jobs/Fleet:\n%s\nvs\n%s", m1, m2)
	}
	for si := range res1.Scenarios {
		for ci := range res1.Scenarios[si].Cells {
			if !bytes.Equal(res1.Scenarios[si].Cells[ci].Payload, res2.Scenarios[si].Cells[ci].Payload) {
				t.Fatalf("scenario %s cell %d payload differs across Jobs/Fleet",
					res1.Scenarios[si].Name, ci)
			}
		}
	}
}

// TestPlannedVsUnplannedKeysDisjoint: the planner switches realizations
// (Shared in the cache key), so planned and unplanned runs of one spec
// never share cache entries, and unplanned manifests never grow a plan.
func TestPlannedVsUnplannedKeysDisjoint(t *testing.T) {
	spec := plannedSpec()
	planned, err := Run(context.Background(), spec, Options{SharedEnumeration: true})
	if err != nil {
		t.Fatal(err)
	}
	unplanned, err := Run(context.Background(), plannedSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if unplanned.Manifest.Plan != nil {
		t.Fatal("unplanned campaign manifest grew a plan")
	}
	pk := map[string]bool{}
	for _, sm := range planned.Manifest.Scenarios {
		for _, cm := range sm.Cells {
			if cm.Request.Kind == service.KindReliability {
				pk[cm.Key] = true
			}
		}
	}
	for _, sm := range unplanned.Manifest.Scenarios {
		for _, cm := range sm.Cells {
			if cm.Request.Kind == service.KindReliability && pk[cm.Key] {
				t.Fatalf("cell %s/%d keys identically planned and unplanned", sm.Name, cm.Index)
			}
		}
	}
}
