package faults

// This file is the single home of every calibration constant in the fault
// model. Each constant is tied to a quantitative anchor reported in the
// paper (§III); the calibration tests in calibration_test.go assert that
// the assembled model actually reproduces those anchors, so editing a
// value here without re-deriving its neighbors will fail the suite.

// Voltage landmarks of the characterized HBM stacks (§I, §III-B).
const (
	// VNom is the nominal HBM supply voltage.
	VNom = 1.20
	// VMin is the minimum safe voltage: the lower edge of the guardband
	// region. No faults occur at or above VMin.
	VMin = 0.98
	// VCritical is the minimum voltage at which the stacks still respond.
	// Below VCritical the device crashes and requires a power cycle.
	VCritical = 0.81
	// VStep is the paper's sweep granularity (10 mV).
	VStep = 0.01
	// VFirst10 is the voltage at which the first 1-to-0 flips appear.
	VFirst10 = 0.97
	// VFirst01 is the voltage at which the first 0-to-1 flips appear.
	VFirst01 = 0.96
	// VAllFaulty is the voltage at/below which essentially every bit is
	// faulty ("between 0.84V and 0.81V, all bits become faulty").
	VAllFaulty = 0.84
)

// Weak-cell population. Weak cells live only inside clusters (small
// contiguous row regions, §III-B "most faults are clustered together in
// small regions"). Their survival function S_w(V) = P(V_c > V) is
// log-linear in voltage: anchored so the whole 8 GB shows its first few
// hundred flips at 0.97 V, with a slope chosen so the per-PC usable
// counts of Fig. 6 come out right (see derivation in DESIGN.md §3).
const (
	// weakVcMax truncates the weak population: no cell has a critical
	// voltage above this, which makes the guardband (>= 0.98 V) exactly
	// fault-free.
	weakVcMax = 0.9725
	// weakAnchorV / weakAnchorRate: at 0.97 V the PC-averaged weak
	// survival for a multiplier-1 PC is 1e-9 (≈2 faulty bits in 256 MB).
	weakAnchorV    = 0.97
	weakAnchorRate = 1e-9
	// weakSlopeDecades is the exponential growth rate of the fault count:
	// decades of fault-rate increase per 10 mV of undervolting.
	weakSlopeDecades = 0.55
)

// Bulk population. Every cell of every PC additionally carries a
// Gaussian-distributed critical voltage around bulkMu. This models the
// collapse at the bottom of the unsafe region: ~12.5% of bits stuck at
// 0.85 V (which combines with the weak population to give the 14% active-
// capacitance drop of Fig. 3 and the 2.3x total power saving), and >99.9%
// stuck at 0.84 V (Fig. 4 "all bits become faulty").
const (
	bulkMu    = 0.8477
	bulkSigma = 0.002
	// bulkCutoff zeroes the Gaussian tail above this voltage so that the
	// moderate-undervolt region is governed purely by the (clustered)
	// weak population.
	bulkCutoff = 0.88
)

// Polarity. The weakest tail of the weak population (V_c above
// polarityTailV) consists of stuck-at-0 cells, which is why 1-to-0 flips
// appear one 10 mV step before 0-to-1 flips (0.97 V vs 0.96 V, §III-B).
// Below the tail, polarity is an independent per-cell draw with
// P(stuck-at-1) = pStuckAt1, making the average 0-to-1 rate
// pStuckAt1/(1-pStuckAt1) ≈ 1.21x the 1-to-0 rate (the paper's 21% gap).
const (
	polarityTailV = 0.965
	pStuckAt1     = 0.5475
)

// Temperature. The experiments ran at 35±1 °C; the model exposes the knob
// with a mild positive coefficient (hotter -> weaker cells), consistent
// with DRAM retention behaviour.
const (
	// TempRef is the reference (and default) operating temperature in °C.
	TempRef = 35.0
	// tempWeakLnCoeff scales the weak survival by exp(coeff * (T-35)).
	tempWeakLnCoeff = 0.05
	// tempBulkShiftPerC moves the bulk knee up by this many volts per °C.
	tempBulkShiftPerC = 0.0002
	// tempTailShiftPerC moves the weak-population truncation point (and
	// with it the guardband edge) up by this many volts per °C: hotter
	// devices lose guardband, as DRAM retention physics suggests. At the
	// paper's 35 °C the shift is zero, keeping V_min at exactly 0.98 V.
	tempTailShiftPerC = 0.0005
)

// NumStacks and PCsPerStack mirror the platform organization (two 4 GB
// stacks, 16 pseudo channels each). They are fixed by the calibration
// table below; the geometry of each PC (words, rows) is configurable.
const (
	NumStacks   = 2
	PCsPerStack = 16
	NumPCs      = NumStacks * PCsPerStack
)

// Default per-PC weak-population multipliers (process variation).
//
// Global PC index: 0-15 = HBM0, 16-31 = HBM1 (the paper's Fig. 5 axis).
// The table realizes four calibration constraints simultaneously:
//
//   - sensitive PCs are HBM0 {4,5} and HBM1 {18,19,20} (§III-B);
//   - exactly 7 PCs are fault-free at 0.95 V (Fig. 6 / §III-C: "7
//     fault-free PCs operating at 0.95V") — the multipliers <= 0.015;
//   - exactly 16 PCs sit at or below a 0.0001% fault rate at 0.90 V
//     (Fig. 6 / §III-C "half of the total memory capacity ... 0.90V") —
//     the multipliers <= 0.13;
//   - HBM1's average fault rate in the unsafe region exceeds HBM0's by
//     ~13% (§III-B) — the per-stack mass ratio 155.9/135.9 plus bulk
//     saturation at the bottom of the region average out to ≈1.13.
var defaultWeakMult = [NumPCs]float64{
	// HBM0 (PC0..PC15)
	0.05,  // PC0
	0.006, // PC1  (robust)
	0.5,   // PC2
	0.07,  // PC3
	58,    // PC4  (sensitive, §III-B)
	68,    // PC5  (sensitive, §III-B)
	0.8,   // PC6
	1.2,   // PC7
	0.009, // PC8  (robust)
	0.09,  // PC9
	2.0,   // PC10
	0.012, // PC11 (robust)
	3.0,   // PC12
	0.11,  // PC13
	1.5,   // PC14
	0.6,   // PC15
	// HBM1 (PC16..PC31)
	0.06,  // PC16
	2.2,   // PC17
	47,    // PC18 (sensitive, §III-B)
	50,    // PC19 (sensitive, §III-B)
	48,    // PC20 (sensitive, §III-B)
	0.08,  // PC21
	0.007, // PC22 (robust)
	3.5,   // PC23
	2.8,   // PC24
	0.010, // PC25 (robust)
	0.10,  // PC26
	1.9,   // PC27
	0.013, // PC28 (robust)
	0.12,  // PC29
	0.015, // PC30 (robust)
	0.13,  // PC31
}

// SensitivePCs lists the pseudo channels the paper singles out as
// noticeably more fault-prone (§III-B, Fig. 5).
var SensitivePCs = []int{4, 5, 18, 19, 20}

// Cluster defaults: weak cells are confined to ~48 contiguous row ranges
// covering ~8% of each PC's rows, realizing the paper's observation that
// faults concentrate in small regions of the HBM layers.
const (
	defaultClusterFraction = 0.08
	defaultClusterCount    = 48
)

// Hash salts. Distinct streams for every random purpose; all derived from
// the user seed, so one seed reproduces the entire device.
const (
	saltVc      = 0xc0ffee_0001
	saltPol     = 0xc0ffee_0002
	saltCluster = 0xc0ffee_0003
	saltJitter  = 0xc0ffee_0004
	// saltSparse keys the per-row fault-count and position draws of the
	// sparse enumeration mode on (seed, PC, row, rep, voltage);
	// saltAggregate keys its per-segment aggregate count draws on
	// (seed, PC, segment, rep, voltage × pattern). Both are pure keyed
	// functions — no cross-voltage stream — so sharded sweeps evaluating
	// points out of order realize the same device as a sequential sweep.
	saltSparse    = 0xc0ffee_0005
	saltAggregate = 0xc0ffee_0006
	// saltShared keys the shared-enumeration aggregate stuck-cell count
	// draws on (seed, PC, segment, rep, voltage) — deliberately without
	// any pattern term, because a cell's stuck state is a property of the
	// silicon, not of the data later written (enum.go). saltSharedSplit
	// keys the per-pattern measurement split of those shared counts.
	saltShared      = 0xc0ffee_0007
	saltSharedSplit = 0xc0ffee_0008
)
