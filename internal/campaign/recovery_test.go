package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbmvolt/internal/chaos"
)

// recoverySpec is the crash-recovery suite's workload: six distinct
// reliability cells (3 seeds × 2 pattern sets), each cheap to compute.
func recoverySpec() Spec {
	return Spec{
		Name: "recovery",
		Scenarios: []Scenario{{
			Name:        "rel",
			Kind:        "reliability",
			Seeds:       []uint64{0, 1, 2},
			PatternSets: [][]string{{"all1"}, {"all0"}},
			Scales:      []uint64{1024},
			Grid:        []float64{0.90, 0.89},
			Ports:       []int{0},
			Batch:       1,
		}},
	}
}

// goldenManifest runs the spec uninterrupted (no journal, no disk
// cache) and returns its manifest bytes — the reference every resumed
// run must reproduce exactly.
func goldenManifest(t *testing.T) []byte {
	t.Helper()
	res, err := Run(t.Context(), recoverySpec(), Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestJournalRoundTrip(t *testing.T) {
	spec := recoverySpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.ndjson")

	j, err := openJournal(path, &spec, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(0, 0xabc, []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := j.append(3, 0xdef, []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := openJournal(path, &spec, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.replayed != 2 {
		t.Fatalf("replayed %d records, want 2", j2.replayed)
	}
	rec, ok := j2.completed(3)
	if !ok || rec.Key != fmt.Sprintf("%016x", 0xdef) || rec.Bytes != len("payload-b") {
		t.Fatalf("record 3 = %+v, %v", rec, ok)
	}
	if _, ok := j2.completed(1); ok {
		t.Fatal("phantom record")
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	spec := recoverySpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := openJournal(path, &spec, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	j.append(0, 1, []byte("x"))
	j.append(1, 2, []byte("y"))
	j.Close()

	// Simulate a crash mid-append: a half-written record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"cell":2,"key":"00`)
	f.Close()

	j2, err := openJournal(path, &spec, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if j2.replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (torn tail dropped)", j2.replayed)
	}
	// The journal stays appendable on a clean line boundary.
	if err := j2.append(2, 3, []byte("z")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := openJournal(path, &spec, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.replayed != 3 {
		t.Fatalf("replayed %d records after post-truncation append, want 3", j3.replayed)
	}
}

func TestJournalRejectsForeignRealization(t *testing.T) {
	spec := recoverySpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := openJournal(path, &spec, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Same journal, different planner mode: cell keys differ, so the
	// binding must refuse.
	if _, err := openJournal(path, &spec, 6, true); err == nil {
		t.Fatal("journal accepted a different planner mode")
	}
	// Different spec entirely.
	other := tinySpec()
	if err := other.Normalize(); err != nil {
		t.Fatal(err)
	}
	_, err = openJournal(path, &other, other.CellTotal(), false)
	if err == nil || !strings.Contains(err.Error(), "different campaign realization") {
		t.Fatalf("foreign spec error = %v", err)
	}
}

// TestCampaignInterruptAndResume is the tentpole's end-to-end claim,
// table-driven over where the "crash" lands: the campaign is cancelled
// after N cells have completed (N = 0, 1, mid, all-but-one of 6), then
// resumed over the same journal and cache directory. The resumed run
// serves journaled cells from the durable cache, recomputes the rest,
// and its manifest is byte-identical to an uninterrupted run's.
func TestCampaignInterruptAndResume(t *testing.T) {
	golden := goldenManifest(t)
	total := 6

	for _, interruptAfter := range []int{0, 1, 3, total - 1} {
		t.Run(fmt.Sprintf("after_%d_cells", interruptAfter), func(t *testing.T) {
			dir := t.TempDir()
			journalPath := filepath.Join(dir, "journal.ndjson")
			cacheDir := filepath.Join(dir, "cache")

			ctx, cancel := context.WithCancel(t.Context())
			defer cancel()
			opts := Options{
				Jobs:     1, // serialize so "after N cells" is well-defined
				Journal:  journalPath,
				CacheDir: cacheDir,
				OnCell: func(done, _ int) {
					if done >= interruptAfter {
						cancel()
					}
				},
			}
			if interruptAfter == 0 {
				cancel() // crash before any cell completes
			}
			if _, err := Run(ctx, recoverySpec(), opts); err == nil {
				t.Fatal("interrupted run reported success")
			}

			res, err := Run(t.Context(), recoverySpec(), Options{
				Jobs: 2, Journal: journalPath, CacheDir: cacheDir,
			})
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			manifest, err := res.ManifestJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(manifest, golden) {
				t.Fatal("resumed manifest differs from uninterrupted golden run")
			}
			// The finished journal records every cell, so a third run is a
			// pure replay: zero submissions reach a worker.
			res3, err := Run(t.Context(), recoverySpec(), Options{
				Jobs: 2, Journal: journalPath, CacheDir: cacheDir,
			})
			if err != nil {
				t.Fatal(err)
			}
			manifest3, err := res3.ManifestJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(manifest3, golden) {
				t.Fatal("replayed manifest differs from golden")
			}
		})
	}
}

// TestCampaignResumeSurvivesCorruptCacheEntry interposes storage-level
// damage between crash and resume: one journaled cell's disk-cache
// entry is bit-flipped and another's is truncated. The disk tier's
// read verification discards both, the engine recomputes exactly those
// cells, and the manifest still matches the golden run.
func TestCampaignResumeSurvivesCorruptCacheEntry(t *testing.T) {
	golden := goldenManifest(t)
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.ndjson")
	cacheDir := filepath.Join(dir, "cache")

	if _, err := Run(t.Context(), recoverySpec(), Options{
		Jobs: 2, Journal: journalPath, CacheDir: cacheDir,
	}); err != nil {
		t.Fatal(err)
	}

	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.cache"))
	if err != nil || len(entries) != 6 {
		t.Fatalf("cache entries = %v (err %v), want 6", entries, err)
	}
	// Bit rot in one entry's payload...
	blob, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x80
	if err := os.WriteFile(entries[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// ...and a torn write in another.
	if err := os.Truncate(entries[1], 10); err != nil {
		t.Fatal(err)
	}

	res, err := Run(t.Context(), recoverySpec(), Options{
		Jobs: 2, Journal: journalPath, CacheDir: cacheDir,
	})
	if err != nil {
		t.Fatalf("resume over damaged cache failed: %v", err)
	}
	manifest, err := res.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest, golden) {
		t.Fatal("manifest after cache damage differs from golden")
	}
	// The recomputed entries were re-persisted: all six are healthy again.
	entries, err = filepath.Glob(filepath.Join(cacheDir, "*.cache"))
	if err != nil || len(entries) != 6 {
		t.Fatalf("cache entries after recompute = %d, want 6", len(entries))
	}
}

// TestCampaignJournalAppendFault arms the journal.append chaos site so
// checkpointing itself fails mid-campaign; the campaign surfaces the
// error, and a rerun over the same (now partial) journal still
// converges to the golden manifest.
func TestCampaignJournalAppendFault(t *testing.T) {
	golden := goldenManifest(t)
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.ndjson")
	cacheDir := filepath.Join(dir, "cache")

	restore := chaos.Activate(chaos.NewPlan().Set("journal.append", chaos.Fault{
		Err:   errors.New("injected journal I/O error"),
		After: 3, // header + two records succeed, the third append fails
		Count: 1,
	}))
	_, err := Run(t.Context(), recoverySpec(), Options{
		Jobs: 1, Journal: journalPath, CacheDir: cacheDir,
	})
	restore()
	if err == nil || !strings.Contains(err.Error(), "injected journal I/O error") {
		t.Fatalf("campaign error = %v, want the injected journal fault", err)
	}

	res, err := Run(t.Context(), recoverySpec(), Options{
		Jobs: 2, Journal: journalPath, CacheDir: cacheDir,
	})
	if err != nil {
		t.Fatalf("resume after journal fault failed: %v", err)
	}
	manifest, err := res.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest, golden) {
		t.Fatal("manifest after journal fault differs from golden")
	}
}
