package pmbus

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLinear11RoundTrip(t *testing.T) {
	values := []float64{0, 1, -1, 0.5, 12, 14.5, 100, -42.25, 0.001, 33000}
	for _, v := range values {
		w, err := Linear11(v)
		if err != nil {
			t.Fatalf("Linear11(%v): %v", v, err)
		}
		got := FromLinear11(w)
		// Relative bound for normal magnitudes; 2^-16-grade absolute bound
		// for values below the mantissa's full-resolution floor.
		tol := math.Max(math.Abs(v)*0.002, 1e-5)
		if math.Abs(got-v) > tol {
			t.Fatalf("Linear11 round trip %v -> %v", v, got)
		}
	}
}

func TestLinear11RoundTripProperty(t *testing.T) {
	f := func(raw int32) bool {
		v := float64(raw) / 1000 // span ±2.1e6 with mV resolution
		w, err := Linear11(v)
		if err != nil {
			return math.Abs(v) > 3.3e7 // only astronomic values may fail
		}
		got := FromLinear11(w)
		tol := math.Max(math.Abs(v)*0.002, 1e-3)
		return math.Abs(got-v) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinear11RejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Linear11(v); err == nil {
			t.Fatalf("Linear11(%v) accepted", v)
		}
	}
}

func TestLinear16RoundTrip(t *testing.T) {
	const exp = -12
	for _, v := range []float64{0, 0.81, 0.98, 1.2, 1.3} {
		w, err := Linear16(v, exp)
		if err != nil {
			t.Fatal(err)
		}
		got := FromLinear16(w, exp)
		if math.Abs(got-v) > math.Pow(2, exp)/2+1e-12 {
			t.Fatalf("Linear16 round trip %v -> %v", v, got)
		}
	}
}

func TestLinear16Resolution(t *testing.T) {
	// With exponent -12 the LSB is 244 µV — fine enough for the paper's
	// 10 mV sweep steps to be exactly representable.
	a, _ := Linear16(0.97, -12)
	b, _ := Linear16(0.96, -12)
	if a == b {
		t.Fatal("10 mV steps indistinguishable in LINEAR16")
	}
}

func TestLinear16Rejects(t *testing.T) {
	if _, err := Linear16(-0.1, -12); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := Linear16(1e9, -12); err == nil {
		t.Fatal("overflow accepted")
	}
}

func TestVoutModeExp(t *testing.T) {
	e, err := VoutModeExp(0x14) // 10100 -> -12
	if err != nil {
		t.Fatal(err)
	}
	if e != -12 {
		t.Fatalf("exp = %d, want -12", e)
	}
	if _, err := VoutModeExp(0x40); err == nil {
		t.Fatal("non-linear mode accepted")
	}
}

func TestPECKnownVector(t *testing.T) {
	// CRC-8/SMBus of "123456789" is 0xF4.
	if got := PEC([]byte("123456789")); got != 0xf4 {
		t.Fatalf("PEC = 0x%02x, want 0xf4", got)
	}
	if PEC(nil) != 0 {
		t.Fatal("PEC of empty input must be 0")
	}
}

func TestPECDetectsSingleBitFlips(t *testing.T) {
	pkt := []byte{0xc0, 0x21, 0x00, 0x4c}
	crc := PEC(pkt)
	for i := range pkt {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), pkt...)
			mut[i] ^= 1 << bit
			if PEC(mut) == crc {
				t.Fatalf("single-bit flip at %d.%d undetected", i, bit)
			}
		}
	}
}

func newTestRail(t *testing.T) (*ISL68301, *float64) {
	t.Helper()
	rail := new(float64)
	reg := NewISL68301(ISLConfig{
		OnVout:   func(v float64) { *rail = v },
		LoadAmps: func(v float64) float64 { return 10 * v }, // resistive-ish load
	})
	return reg, rail
}

func TestISLDefaultsAndInitialVout(t *testing.T) {
	reg, rail := newTestRail(t)
	if reg.Vout() != 1.20 {
		t.Fatalf("initial vout = %v", reg.Vout())
	}
	if *rail != 1.20 {
		t.Fatal("OnVout not fired at init")
	}
	if reg.Address() != 0x60 {
		t.Fatalf("address = 0x%02x", reg.Address())
	}
}

func TestISLVoutCommand(t *testing.T) {
	reg, rail := newTestRail(t)
	w, err := Linear16(0.95, -12)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteWord(CmdVoutCommand, w); err != nil {
		t.Fatal(err)
	}
	if math.Abs(*rail-0.95) > 0.001 {
		t.Fatalf("rail = %v, want 0.95", *rail)
	}
	rd, err := reg.ReadWord(CmdReadVout)
	if err != nil {
		t.Fatal(err)
	}
	if got := FromLinear16(rd, -12); math.Abs(got-0.95) > 0.001 {
		t.Fatalf("READ_VOUT = %v", got)
	}
}

func TestISLVoutMaxClamp(t *testing.T) {
	reg, rail := newTestRail(t)
	w, _ := Linear16(1.29, -12)
	if err := reg.WriteWord(CmdVoutCommand, w); err != nil {
		t.Fatal(err)
	}
	if *rail > 1.301 {
		t.Fatalf("rail %v exceeds VOUT_MAX", *rail)
	}
}

func TestISLOperationOnOff(t *testing.T) {
	reg, rail := newTestRail(t)
	if err := reg.WriteByteData(CmdOperation, OperationOff); err != nil {
		t.Fatal(err)
	}
	if *rail != 0 {
		t.Fatalf("rail = %v after OPERATION off", *rail)
	}
	sb, err := reg.ReadByteData(CmdStatusByte)
	if err != nil {
		t.Fatal(err)
	}
	if sb&StatusOff == 0 {
		t.Fatal("STATUS_BYTE OFF bit not set")
	}
	if err := reg.WriteByteData(CmdOperation, OperationOn); err != nil {
		t.Fatal(err)
	}
	if *rail != 1.20 {
		t.Fatalf("rail = %v after OPERATION on", *rail)
	}
}

func TestISLUVFaultLatches(t *testing.T) {
	reg, rail := newTestRail(t)
	// Program a 0.9 V UV fault floor, then command 0.85 V.
	uv, _ := Linear16(0.90, -12)
	if err := reg.WriteWord(CmdVoutUVFaultLimit, uv); err != nil {
		t.Fatal(err)
	}
	cmd, _ := Linear16(0.85, -12)
	if err := reg.WriteWord(CmdVoutCommand, cmd); err != nil {
		t.Fatal(err)
	}
	if *rail != 0 {
		t.Fatalf("rail = %v, want latched off", *rail)
	}
	if !reg.Faulted() {
		t.Fatal("fault not latched")
	}
	sv, err := reg.ReadWord(CmdStatusVout)
	if err != nil {
		t.Fatal(err)
	}
	if byte(sv)&StatusVoutUVFault == 0 {
		t.Fatal("STATUS_VOUT UV bit missing")
	}
	// Raising the command alone is not enough; faults are latched until
	// CLEAR_FAULTS.
	cmd2, _ := Linear16(1.0, -12)
	if err := reg.WriteWord(CmdVoutCommand, cmd2); err != nil {
		t.Fatal(err)
	}
	if !reg.Faulted() {
		t.Fatal("fault cleared without CLEAR_FAULTS")
	}
	if err := reg.WriteByteData(CmdClearFaults, 0); err != nil {
		t.Fatal(err)
	}
	if reg.Faulted() {
		t.Fatal("CLEAR_FAULTS did not clear")
	}
	if math.Abs(*rail-1.0) > 0.001 {
		t.Fatalf("rail = %v after recovery", *rail)
	}
}

func TestISLPaperSweepRange(t *testing.T) {
	// The paper sweeps 1.20 V down to 0.81 V and below without the
	// regulator tripping: its default UV floor (0.40 V) must admit the
	// whole range.
	reg, rail := newTestRail(t)
	for mv := 1200; mv >= 780; mv -= 10 {
		w, err := Linear16(float64(mv)/1000, -12)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteWord(CmdVoutCommand, w); err != nil {
			t.Fatal(err)
		}
		if reg.Faulted() {
			t.Fatalf("regulator faulted at %d mV", mv)
		}
		if math.Abs(*rail-float64(mv)/1000) > 0.001 {
			t.Fatalf("rail %v at %d mV", *rail, mv)
		}
	}
}

func TestISLTelemetry(t *testing.T) {
	reg, _ := newTestRail(t)
	iout, err := reg.ReadWord(CmdReadIout)
	if err != nil {
		t.Fatal(err)
	}
	if got := FromLinear11(iout); math.Abs(got-12.0) > 0.1 {
		t.Fatalf("IOUT = %v, want 12 (10A/V at 1.2V)", got)
	}
	pout, err := reg.ReadWord(CmdReadPout)
	if err != nil {
		t.Fatal(err)
	}
	if got := FromLinear11(pout); math.Abs(got-14.4) > 0.2 {
		t.Fatalf("POUT = %v, want 14.4", got)
	}
	vin, err := reg.ReadWord(CmdReadVin)
	if err != nil {
		t.Fatal(err)
	}
	if got := FromLinear11(vin); math.Abs(got-12) > 0.1 {
		t.Fatalf("VIN = %v", got)
	}
	temp, err := reg.ReadWord(CmdReadTemperature1)
	if err != nil {
		t.Fatal(err)
	}
	if got := FromLinear11(temp); math.Abs(got-45) > 0.5 {
		t.Fatalf("TEMP = %v", got)
	}
}

func TestISLVoutModeReportsExp(t *testing.T) {
	reg, _ := newTestRail(t)
	mode, err := reg.ReadByteData(CmdVoutMode)
	if err != nil {
		t.Fatal(err)
	}
	e, err := VoutModeExp(mode)
	if err != nil {
		t.Fatal(err)
	}
	if e != -12 {
		t.Fatalf("VOUT_MODE exp = %d", e)
	}
}

func TestISLUnsupportedCommandSetsCML(t *testing.T) {
	reg, _ := newTestRail(t)
	if _, err := reg.ReadWord(0x77); !errors.Is(err, ErrUnsupportedCommand) {
		t.Fatalf("unexpected err %v", err)
	}
	sb, err := reg.ReadByteData(CmdStatusByte)
	if err != nil {
		t.Fatal(err)
	}
	if sb&StatusCML == 0 {
		t.Fatal("CML bit not set after bad command")
	}
}

func TestISLTransitionMicros(t *testing.T) {
	reg, _ := newTestRail(t)
	// 1 mV/µs slew: 1.20 -> 0.98 V is 220 µs.
	if got := reg.TransitionMicros(1.20, 0.98); math.Abs(got-220) > 1 {
		t.Fatalf("transition = %v µs, want 220", got)
	}
}

func TestBusRoutingAndPEC(t *testing.T) {
	bus := NewBus()
	reg, rail := newTestRail(t)
	if err := bus.Attach(reg); err != nil {
		t.Fatal(err)
	}
	if err := bus.Attach(reg); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	w, _ := Linear16(1.00, -12)
	if err := bus.WriteWord(reg.Address(), CmdVoutCommand, w); err != nil {
		t.Fatal(err)
	}
	if math.Abs(*rail-1.0) > 0.001 {
		t.Fatalf("rail = %v via bus", *rail)
	}
	got, err := bus.ReadWord(reg.Address(), CmdReadVout)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(FromLinear16(got, -12)-1.0) > 0.001 {
		t.Fatal("bus read mismatch")
	}
	if _, err := bus.ReadWord(0x33, CmdReadVout); err == nil {
		t.Fatal("ghost address answered")
	}
}

func TestBusByteOps(t *testing.T) {
	bus := NewBus()
	reg, rail := newTestRail(t)
	if err := bus.Attach(reg); err != nil {
		t.Fatal(err)
	}
	if err := bus.WriteByteData(reg.Address(), CmdOperation, OperationOff); err != nil {
		t.Fatal(err)
	}
	if *rail != 0 {
		t.Fatal("byte write not routed")
	}
	b, err := bus.ReadByteData(reg.Address(), CmdOperation)
	if err != nil {
		t.Fatal(err)
	}
	if b != OperationOff {
		t.Fatalf("read back 0x%02x", b)
	}
	if err := bus.SendByte(reg.Address(), CmdClearFaults); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinear11Encode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Linear11(14.53); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPEC(b *testing.B) {
	pkt := []byte{0xc0, 0x21, 0x00, 0x4c}
	for i := 0; i < b.N; i++ {
		_ = PEC(pkt)
	}
}

func TestISLMarginOperation(t *testing.T) {
	reg, rail := newTestRail(t)
	// Default margins are ±5% around the init voltage.
	if err := reg.WriteByteData(CmdOperation, OperationMarginLow); err != nil {
		t.Fatal(err)
	}
	if math.Abs(*rail-1.20*0.95) > 0.001 {
		t.Fatalf("margin low rail = %v, want 1.14", *rail)
	}
	if err := reg.WriteByteData(CmdOperation, OperationMarginHigh); err != nil {
		t.Fatal(err)
	}
	if math.Abs(*rail-1.20*1.05) > 0.001 {
		t.Fatalf("margin high rail = %v, want 1.26", *rail)
	}
	// Programmable margins.
	w, _ := Linear16(1.00, -12)
	if err := reg.WriteWord(CmdVoutMarginHigh, w); err != nil {
		t.Fatal(err)
	}
	if math.Abs(*rail-1.00) > 0.001 {
		t.Fatalf("programmed margin rail = %v", *rail)
	}
	rd, err := reg.ReadWord(CmdVoutMarginHigh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(FromLinear16(rd, -12)-1.00) > 0.001 {
		t.Fatal("margin readback mismatch")
	}
	// Returning to normal operation restores VOUT_COMMAND.
	if err := reg.WriteByteData(CmdOperation, OperationOn); err != nil {
		t.Fatal(err)
	}
	if math.Abs(*rail-1.20) > 0.001 {
		t.Fatalf("rail after margin exit = %v", *rail)
	}
}
