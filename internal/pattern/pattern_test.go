package pattern

import (
	"testing"
	"testing/quick"
)

func TestBitSetBitRoundTrip(t *testing.T) {
	f := func(lanes [4]uint64, idx uint8) bool {
		w := Word(lanes)
		i := int(idx) % WordBits
		orig := w.Bit(i)
		flipped := w.SetBit(i, 1-orig)
		if flipped.Bit(i) != 1-orig {
			return false
		}
		back := flipped.SetBit(i, orig)
		return back == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnesCount(t *testing.T) {
	if got := AllOnesWord.OnesCount(); got != 256 {
		t.Fatalf("AllOnesWord.OnesCount() = %d, want 256", got)
	}
	if got := AllZerosWord.OnesCount(); got != 0 {
		t.Fatalf("AllZerosWord.OnesCount() = %d, want 0", got)
	}
	w := Word{}.SetBit(0, 1).SetBit(100, 1).SetBit(255, 1)
	if got := w.OnesCount(); got != 3 {
		t.Fatalf("OnesCount() = %d, want 3", got)
	}
}

func TestCompareClassifiesFlips(t *testing.T) {
	exp := AllOnesWord
	obs := exp.SetBit(3, 0).SetBit(77, 0)
	f := Compare(exp, obs)
	if f.OneToZero != 2 || f.ZeroToOne != 0 {
		t.Fatalf("Compare = %+v, want {2,0}", f)
	}

	exp = AllZerosWord
	obs = exp.SetBit(200, 1)
	f = Compare(exp, obs)
	if f.OneToZero != 0 || f.ZeroToOne != 1 {
		t.Fatalf("Compare = %+v, want {0,1}", f)
	}
}

func TestCompareProperty(t *testing.T) {
	// Total flips must equal popcount of XOR, and the two classes must
	// partition it.
	f := func(a, b [4]uint64) bool {
		x, y := Word(a), Word(b)
		fl := Compare(x, y)
		return fl.Total() == x.Xor(y).OnesCount() &&
			fl.OneToZero >= 0 && fl.ZeroToOne >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSymmetrySwapsClasses(t *testing.T) {
	f := func(a, b [4]uint64) bool {
		x, y := Word(a), Word(b)
		ab := Compare(x, y)
		ba := Compare(y, x)
		return ab.OneToZero == ba.ZeroToOne && ab.ZeroToOne == ba.OneToZero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipsAdd(t *testing.T) {
	a := Flips{OneToZero: 2, ZeroToOne: 5}
	a.Add(Flips{OneToZero: 1, ZeroToOne: 1})
	if a.OneToZero != 3 || a.ZeroToOne != 6 || a.Total() != 9 {
		t.Fatalf("Add gave %+v", a)
	}
}

func TestUniformPatterns(t *testing.T) {
	for addr := uint64(0); addr < 100; addr += 13 {
		if AllOnes().Word(addr) != AllOnesWord {
			t.Fatal("AllOnes not uniform")
		}
		if AllZeros().Word(addr) != AllZerosWord {
			t.Fatal("AllZeros not uniform")
		}
	}
}

func TestCheckerboardAlternates(t *testing.T) {
	p := Checkerboard()
	if p.Word(0) == p.Word(1) {
		t.Fatal("checkerboard does not alternate")
	}
	if p.Word(0) != p.Word(2) {
		t.Fatal("checkerboard period != 2")
	}
	if p.Word(0).Xor(p.Word(1)) != AllOnesWord {
		t.Fatal("checkerboard phases are not complementary")
	}
}

func TestWalkingOnesSingleBit(t *testing.T) {
	p := WalkingOnes()
	for addr := uint64(0); addr < 2*WordBits; addr++ {
		w := p.Word(addr)
		if w.OnesCount() != 1 {
			t.Fatalf("walking ones at %d has %d bits", addr, w.OnesCount())
		}
		if w.Bit(int(addr%WordBits)) != 1 {
			t.Fatalf("walking ones at %d: wrong bit position", addr)
		}
	}
}

func TestWalkingZerosSingleZero(t *testing.T) {
	p := WalkingZeros()
	for addr := uint64(0); addr < WordBits; addr++ {
		w := p.Word(addr)
		if w.OnesCount() != WordBits-1 {
			t.Fatalf("walking zeros at %d has %d ones", addr, w.OnesCount())
		}
	}
}

func TestAddressInDataDistinct(t *testing.T) {
	p := AddressInData()
	seen := map[Word]uint64{}
	for addr := uint64(0); addr < 4096; addr++ {
		w := p.Word(addr)
		if prev, dup := seen[w]; dup {
			t.Fatalf("address pattern collides: %d and %d", prev, addr)
		}
		seen[w] = addr
	}
}

func TestRandomReproducibleAndSeeded(t *testing.T) {
	a, b, c := Random(1), Random(1), Random(2)
	for addr := uint64(0); addr < 64; addr++ {
		if a.Word(addr) != b.Word(addr) {
			t.Fatal("same-seed random patterns differ")
		}
		if a.Word(addr) == c.Word(addr) {
			t.Fatal("different-seed random patterns collide")
		}
	}
}

func TestRandomBalanced(t *testing.T) {
	p := Random(7)
	ones := 0
	const words = 4096
	for addr := uint64(0); addr < words; addr++ {
		ones += p.Word(addr).OnesCount()
	}
	total := words * WordBits
	frac := float64(ones) / float64(total)
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("random pattern density %v, want ~0.5", frac)
	}
}

func TestByName(t *testing.T) {
	names := []string{"all1", "all0", "checker", "walk1", "walk0", "addr", "rand42"}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) succeeded")
	}
}

func TestWordString(t *testing.T) {
	w := Word{1, 2, 3, 4}
	want := "0000000000000004_0000000000000003_0000000000000002_0000000000000001"
	if w.String() != want {
		t.Fatalf("String() = %q, want %q", w.String(), want)
	}
}

func BenchmarkCompare(b *testing.B) {
	exp := AllOnesWord
	obs := exp.SetBit(5, 0).SetBit(130, 0)
	for i := 0; i < b.N; i++ {
		_ = Compare(exp, obs)
	}
}

func BenchmarkRandomWord(b *testing.B) {
	p := Random(3)
	for i := 0; i < b.N; i++ {
		_ = p.Word(uint64(i))
	}
}
