// Package verify re-derives the source paper's quantitative claims
// from a live campaign run and gates on the result — the hypothesis-
// driven regression net over the physics, where the campaign goldens
// are the regression net over the bytes.
//
// The two nets fail in complementary ways. A refactor of the fault or
// power model can drift the paper's headline numbers (the Fig. 3 power
// reduction, the V_min guardband, the exponential fault onset of
// Fig. 4, the ECC widening of the safe region) while every golden stays
// byte-identical — goldens only pin what was already computed. And an
// intentional re-realization (a new enumeration scheme, a new sampler)
// changes every byte while leaving the physics intact — goldens can
// only be re-blessed on faith. Claims close both gaps: each one binds a
// paper assertion to an extractor over typed campaign results and an
// inclusive tolerance Band, so the physics is re-measured from scratch
// on every run.
//
// A Claim follows the experiment discipline of hypothesis-driven
// FINDINGS ledgers: a falsifiable Hypothesis, a single varied dimension
// (supply voltage, throughout), a directional control (the monotonic
// fault-onset claim — if fault counts stopped growing as voltage drops,
// the model is not measuring undervolting at all), and explicit
// preconditions. Run executes the built-in paper-repro campaign through
// the ordinary engine (same cache keys, same byte-identical artifacts),
// decodes the payloads via the campaign's extraction hooks, evaluates
// every registered claim, and emits two artifacts per run: a
// machine-readable verdicts.json and a human FINDINGS.md. Any REFUTED
// or ERROR verdict fails the gate.
//
// The registered claims live in claims.go; docs/CLAIMS.md is the
// human ledger (citation, extraction method, band rationale per claim)
// and cmd/claimcheck keeps the two in sync.
package verify

import (
	"context"
	"fmt"

	"hbmvolt/internal/campaign"
	"hbmvolt/internal/core"
	"hbmvolt/internal/report"
	"hbmvolt/internal/service"
)

// Evidence is the typed material a campaign run yields for claim
// evaluation: at most one result per sweep kind, selected by
// CollectEvidence. Extractors check for the evidence they need and
// return a *EvalError when it is absent.
type Evidence struct {
	// Reliability is the Algorithm 1 sweep (the campaign's full-grid
	// one, when several are present).
	Reliability *core.ReliabilityResult
	// ReliabilityScale is the capacity divisor the reliability sweep ran
	// at (1 = the full 8 GB board), for findings context.
	ReliabilityScale uint64
	// Power is the Fig. 2/3 measurement matrix.
	Power *core.PowerSweepResult
	// FaultMap is the Fig. 4/5/6 analytic atlas.
	FaultMap *core.FaultMapStudy
	// ECC is the SEC-DED mitigation ablation.
	ECC *core.ECCStudy
}

// CollectEvidence selects claim evidence from decoded campaign
// envelopes. For power, faultmap and ecc-study the first envelope of
// each kind wins (campaign order, so the choice is deterministic); for
// reliability the envelope with the most voltage-grid points wins —
// the paper-repro campaigns carry a full-ladder sweep next to a short
// bit-exact cross-check, and claims about onset and growth need the
// full ladder.
func CollectEvidence(envs []campaign.CellEnvelope) *Evidence {
	ev := &Evidence{}
	for _, ce := range envs {
		env := ce.Envelope
		switch env.Kind {
		case service.KindReliability:
			if env.Reliability == nil {
				continue
			}
			if ev.Reliability == nil || len(env.Reliability.Points) > len(ev.Reliability.Points) {
				ev.Reliability = env.Reliability
				ev.ReliabilityScale = env.Request.Scale
			}
		case service.KindPower:
			if ev.Power == nil {
				ev.Power = env.Power
			}
		case service.KindFaultMap:
			if ev.FaultMap == nil {
				ev.FaultMap = env.FaultMap
			}
		case service.KindECCStudy:
			if ev.ECC == nil {
				ev.ECC = env.ECC
			}
		}
	}
	return ev
}

// Verdict status values.
const (
	// StatusConfirmed: every check landed inside its band.
	StatusConfirmed = "CONFIRMED"
	// StatusRefuted: at least one check landed outside its band.
	StatusRefuted = "REFUTED"
	// StatusError: the extractor could not evaluate the claim (missing
	// evidence, degenerate inputs). Fails the gate like REFUTED.
	StatusError = "ERROR"
)

// Verdict is the outcome of one claim evaluation.
type Verdict struct {
	Claim    string  `json:"claim"`
	Title    string  `json:"title"`
	Citation string  `json:"citation"`
	Status   string  `json:"status"`
	Checks   []Check `json:"checks,omitempty"`
	// Error carries the extractor's *EvalError message for StatusError.
	Error string `json:"error,omitempty"`
}

// Report is a completed verification run.
type Report struct {
	// Campaign names the spec the evidence came from.
	Campaign string `json:"campaign"`
	// Smoke records the campaign profile.
	Smoke bool `json:"smoke"`
	// Claims/Confirmed/Refuted/Errored count the verdicts.
	Claims    int       `json:"claims"`
	Confirmed int       `json:"confirmed"`
	Refuted   int       `json:"refuted"`
	Errored   int       `json:"errored,omitempty"`
	Verdicts  []Verdict `json:"verdicts"`
}

// Failed reports whether the claims gate must trip: any verdict that is
// not CONFIRMED.
func (r *Report) Failed() bool { return r.Refuted > 0 || r.Errored > 0 }

// JSON marshals the report deterministically (compact JSON, trailing
// newline — the service serialization), the verdicts.json artifact.
func (r *Report) JSON() ([]byte, error) { return report.Marshal(r) }

// Evaluate runs every registered claim against the evidence. It never
// panics on degenerate evidence: extractor failures become ERROR
// verdicts carrying the *EvalError message.
func Evaluate(ev *Evidence, campaignName string, smoke bool) *Report {
	rep := &Report{Campaign: campaignName, Smoke: smoke}
	for _, c := range Registry() {
		v := Verdict{Claim: c.ID, Title: c.Title, Citation: c.Citation}
		checks, err := c.Eval(ev)
		switch {
		case err != nil:
			v.Status = StatusError
			v.Error = err.Error()
			rep.Errored++
		case allPass(checks):
			v.Status = StatusConfirmed
			rep.Confirmed++
		default:
			v.Status = StatusRefuted
			rep.Refuted++
		}
		v.Checks = checks
		rep.Claims++
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep
}

func allPass(checks []Check) bool {
	if len(checks) == 0 {
		return false
	}
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Options parameterizes Run.
type Options struct {
	// Smoke selects the scaled-down paper-repro campaign profile
	// (seconds instead of the full-capacity methodology).
	Smoke bool
	// Jobs is the campaign engine's concurrent sweep count.
	Jobs int
	// Fleet is the per-sweep board-fleet size hint.
	Fleet int
	// Shared routes the campaign through the sweep planner
	// (shared-enumeration realization).
	Shared bool
	// OnCell forwards campaign progress.
	OnCell func(done, total int)
}

// Run executes the built-in paper-repro campaign through the ordinary
// engine and evaluates every registered claim against its results.
func Run(ctx context.Context, opts Options) (*Report, error) {
	spec := campaign.PaperRepro(opts.Smoke)
	res, err := campaign.Run(ctx, spec, campaign.Options{
		Jobs:              opts.Jobs,
		Fleet:             opts.Fleet,
		OnCell:            opts.OnCell,
		SharedEnumeration: opts.Shared,
	})
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	envs, err := res.Envelopes()
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	return Evaluate(CollectEvidence(envs), res.Spec.Name, opts.Smoke), nil
}
