package core

import (
	"errors"
	"fmt"
	"sort"

	"hbmvolt/internal/faults"
	"hbmvolt/internal/power"
)

// Fig6Tolerances are the tolerable fault rates the trade-off study
// sweeps, as cell-fault fractions (1e-6 = the paper's "0.0001%").
var Fig6Tolerances = []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}

// FaultMapStudy bundles the paper's spatial fault analysis — the
// per-stack fault-fraction curves (Fig. 4), the per-PC fault atlas for
// both flip classes (Fig. 5), and the usable-PC family (Fig. 6) — into
// one serializable result, so the campaign engine and the sweep service
// can treat "faultmap" as a single scenario kind.
type FaultMapStudy struct {
	// Grid is the voltage ladder of the Fig. 4 curves and Fig. 6 series.
	Grid []float64
	// Curves are the per-stack faulty-fraction curves (Fig. 4).
	Curves []StackCurve
	// Fig5 holds the per-PC atlas per flip class: OneToZero (the all-1s
	// test) then ZeroToOne (all-0s), over Fig. 5's unsafe-region grid.
	Fig5 []*Fig5Table
	// Tolerances and Usable are the Fig. 6 curve family: Usable[t][i] is
	// the usable-PC count at Tolerances[t] and Grid[i].
	Tolerances []float64
	Usable     [][]int
}

// RunFaultMapStudy computes the study analytically over grid (nil = the
// paper's grid). Every rate comes from the model's memoized atlas, so
// the three figures share one analytic pass per (voltage, flip-kind).
func RunFaultMapStudy(fm *faults.Model, grid []float64) (*FaultMapStudy, error) {
	if fm == nil {
		return nil, errors.New("core: fault model is nil")
	}
	if grid == nil {
		grid = faults.PaperGrid()
	}
	curves, err := Fig4Curves(fm, grid)
	if err != nil {
		return nil, err
	}
	study := &FaultMapStudy{Grid: grid, Curves: curves, Tolerances: Fig6Tolerances}
	for _, kind := range []faults.FlipKind{faults.OneToZero, faults.ZeroToOne} {
		tbl, err := BuildFig5Table(fm, nil, kind)
		if err != nil {
			return nil, err
		}
		study.Fig5 = append(study.Fig5, tbl)
	}
	fmap, err := NewFaultMap(fm, nil, grid)
	if err != nil {
		return nil, err
	}
	study.Usable = fmap.UsableSeries(nil)
	return study, nil
}

// FaultMap is the per-PC × voltage fault atlas of §III-C: the practical
// information an application developer needs to trade power against
// capacity and fault rate. Every rate it serves comes from the model's
// memoized rate atlas, so repeated queries (plans, Fig. 6 series, CLI
// lookups) over one grid cost one analytic pass.
type FaultMap struct {
	model *faults.Model
	pm    *power.Model
	grid  []float64
}

// NewFaultMap builds the atlas over the given voltage grid (nil = the
// paper's grid). The power model may be nil if plans don't need savings
// figures.
func NewFaultMap(fm *faults.Model, pm *power.Model, grid []float64) (*FaultMap, error) {
	if fm == nil {
		return nil, errors.New("core: fault model is nil")
	}
	if grid == nil {
		grid = faults.PaperGrid()
	}
	return &FaultMap{model: fm, pm: pm, grid: grid}, nil
}

// Grid returns the voltage grid.
func (f *FaultMap) Grid() []float64 { return f.grid }

// Rate returns the expected faulty-cell fraction of global PC g at
// voltage v for the given flip class.
func (f *FaultMap) Rate(g int, v float64, kind faults.FlipKind) float64 {
	return f.model.CellRate(g/faults.PCsPerStack, g%faults.PCsPerStack, v, kind)
}

// UsablePCs counts PCs meeting the tolerable fault rate at v (Fig. 6).
func (f *FaultMap) UsablePCs(v, tolerable float64) int {
	return f.model.UsablePCs(v, tolerable)
}

// UsableSeries returns, for each tolerance, the usable-PC count at every
// grid voltage — the Fig. 6 curve family.
func (f *FaultMap) UsableSeries(tolerances []float64) [][]int {
	if tolerances == nil {
		tolerances = Fig6Tolerances
	}
	out := make([][]int, len(tolerances))
	for i, tol := range tolerances {
		row := make([]int, len(f.grid))
		for j, v := range f.grid {
			row[j] = f.model.UsablePCs(v, tol)
		}
		out[i] = row
	}
	return out
}

// Plan is the outcome of a three-factor trade-off query: the deepest
// safe operating point for an application's fault tolerance and
// capacity floor.
type Plan struct {
	// Volts is the chosen supply voltage.
	Volts float64
	// PCs lists the usable pseudo channels (global indices).
	PCs []int
	// CapacityBytes is the usable memory under the plan.
	CapacityBytes uint64
	// Savings is the power-saving factor versus nominal voltage.
	Savings float64
	// WorstRate is the highest expected fault rate among the chosen PCs.
	WorstRate float64
}

// String summarizes a plan.
func (p Plan) String() string {
	return fmt.Sprintf("%.2fV, %d PCs (%.1f GB), %.2fx power saving, worst fault rate %.3g",
		p.Volts, len(p.PCs), float64(p.CapacityBytes)/(1<<30), p.Savings, p.WorstRate)
}

// Plan finds the lowest grid voltage at which at least minPCs pseudo
// channels tolerate the given fault rate, and returns the corresponding
// operating point. Usable counts shrink monotonically with voltage, so
// the result is the unique frontier point.
func (f *FaultMap) Plan(tolerable float64, minPCs int) (Plan, error) {
	if minPCs < 1 || minPCs > faults.NumPCs {
		return Plan{}, fmt.Errorf("core: minPCs %d out of [1,%d]", minPCs, faults.NumPCs)
	}
	if tolerable < 0 {
		return Plan{}, fmt.Errorf("core: negative tolerable rate")
	}
	best := -1.0
	for _, v := range f.grid {
		if v < faults.VCritical {
			continue
		}
		if f.model.UsablePCs(v, tolerable) >= minPCs {
			if best < 0 || v < best {
				best = v
			}
		}
	}
	if best < 0 {
		return Plan{}, fmt.Errorf("core: no voltage supports %d PCs at tolerance %g", minPCs, tolerable)
	}
	list := f.model.UsablePCList(best, tolerable)
	plan := Plan{Volts: best}
	for _, sp := range list {
		g := sp[0]*faults.PCsPerStack + sp[1]
		plan.PCs = append(plan.PCs, g)
		if r := f.model.CellRate(sp[0], sp[1], best, faults.AnyFlip); r > plan.WorstRate {
			plan.WorstRate = r
		}
	}
	sort.Ints(plan.PCs)
	plan.CapacityBytes = uint64(len(plan.PCs)) * f.model.Geometry().WordsPerPC * 32
	if f.pm != nil {
		plan.Savings = f.pm.Savings(best, 1)
	}
	return plan, nil
}
