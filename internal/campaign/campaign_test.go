package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hbmvolt/internal/report"
	"hbmvolt/internal/service"
)

// tinySpec is a fast multi-scenario spec exercising every kind and a
// cross-product, used by the execution tests.
func tinySpec() Spec {
	return Spec{
		Name: "tiny",
		Scenarios: []Scenario{
			{
				Name:        "rel",
				Kind:        "reliability",
				Modes:       []string{"sparse", "exact"},
				PatternSets: [][]string{{"all1"}, {"all0"}},
				Grid:        []float64{0.90, 0.89},
				Ports:       []int{18},
				Batch:       2,
			},
			{
				Name:       "pow",
				Kind:       "power",
				Grid:       []float64{1.20, 0.90},
				PortCounts: []int{0, 32},
				Samples:    2,
			},
			{Name: "fmap", Kind: "faultmap", Grid: []float64{0.95, 0.90}},
			{Name: "ecc", Kind: "ecc-study", Grid: []float64{0.95, 0.90}},
		},
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `{
		"name": "round-trip",
		"description": "doc",
		"scenarios": [
			{"name": "a", "kind": "reliability", "seeds": [0, 7], "modes": ["sparse"],
			 "grid": [0.9], "ports": [3], "batch": 2, "repeat": 2},
			{"name": "b", "kind": "power", "noise": [0, 0.01], "samples": 3}
		]
	}`
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := spec.Scenarios[0].Repeat; got != 2 {
		t.Fatalf("repeat = %d", got)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Axis defaults apply at expansion without being written back:
	// scenario b expands along its noise axis only, from seed 0.
	if n := len(cells); n != 2+2 {
		t.Fatalf("expanded to %d cells, want 4", n)
	}
	if cells[2].Request.Seed != 0 || cells[2].Request.Noise != 0 || cells[3].Request.Noise != 0.01 {
		t.Fatalf("scenario b cells = %+v / %+v", cells[2].Request, cells[3].Request)
	}
	if len(spec.Scenarios[1].Seeds) != 0 {
		t.Fatalf("Normalize materialized default seeds: %v", spec.Scenarios[1].Seeds)
	}

	// A normalized spec marshals and re-parses to the same expansion.
	blob, err := report.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec2.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells2, err := spec2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(cells2) {
		t.Fatalf("re-parsed expansion %d cells, want %d", len(cells2), len(cells))
	}
	for i := range cells {
		if cells[i].Key != cells2[i].Key {
			t.Fatalf("cell %d key drifted across round trip: %x vs %x", i, cells[i].Key, cells2[i].Key)
		}
	}
}

func TestExpandCounts(t *testing.T) {
	spec := Spec{
		Name: "counts",
		Scenarios: []Scenario{
			{
				Name:        "rel",
				Kind:        "reliability",
				Seeds:       []uint64{0, 1},
				Scales:      []uint64{1024, 2048},
				Modes:       []string{"sparse", "exact"},
				PatternSets: [][]string{{"all1"}, {"all0"}, {"all1", "all0"}},
				Grid:        []float64{0.9},
				Ports:       []int{0},
				Batch:       1,
			},
			{Name: "one", Kind: "ecc-study"},
		},
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := 2*2*2*3 + 1
	if len(cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(cells), want)
	}
	// Cells are in deterministic axis order and indexed per scenario.
	for i := 0; i < 24; i++ {
		if cells[i].Scenario != "rel" || cells[i].Index != i {
			t.Fatalf("cell %d = %s/%d", i, cells[i].Scenario, cells[i].Index)
		}
	}
	if last := cells[24]; last.Scenario != "one" || last.Index != 0 {
		t.Fatalf("last cell = %s/%d", last.Scenario, last.Index)
	}
	// The first half of the seed axis all share seed 0.
	for i := 0; i < 12; i++ {
		if cells[i].Request.Seed != 0 {
			t.Fatalf("cell %d seed = %d", i, cells[i].Request.Seed)
		}
	}
	if cells[12].Request.Seed != 1 {
		t.Fatalf("cell 12 seed = %d", cells[12].Request.Seed)
	}
}

func TestInvalidSpecs(t *testing.T) {
	cases := map[string]Spec{
		"empty name":    {Scenarios: []Scenario{{Name: "a", Kind: "power"}}},
		"bad name":      {Name: "Bad Name", Scenarios: []Scenario{{Name: "a", Kind: "power"}}},
		"no scenarios":  {Name: "c"},
		"dup scenario":  {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "power"}, {Name: "a", Kind: "power"}}},
		"missing kind":  {Name: "c", Scenarios: []Scenario{{Name: "a"}}},
		"unknown kind":  {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "thermal"}}},
		"bad mode":      {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "reliability", Modes: []string{"fuzzy"}}}},
		"modes on pow":  {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "power", Modes: []string{"exact"}}}},
		"noise on rel":  {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "reliability", Noise: []float64{0.01}}}},
		"axes on fmap":  {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "faultmap", Scales: []uint64{8}}}},
		"repeat range":  {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "power", Repeat: 99}}},
		"bad pattern":   {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "reliability", PatternSets: [][]string{{"zebra"}}}}},
		"bad grid":      {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "power", Grid: []float64{9.9}}}},
		"batch on pow":  {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "power", Batch: 7}}},
		"scale not 2^n": {Name: "c", Scenarios: []Scenario{{Name: "a", Kind: "reliability", Scales: []uint64{3}}}},
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			if err := spec.Normalize(); err == nil {
				t.Fatalf("Normalize accepted invalid spec %q", name)
			}
		})
	}
}

func TestCellCapEnforced(t *testing.T) {
	seeds := make([]uint64, maxCells+1)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	spec := Spec{Name: "big", Scenarios: []Scenario{{Name: "a", Kind: "ecc-study", Seeds: seeds}}}
	if err := spec.Normalize(); err == nil {
		t.Fatal("Normalize accepted an over-cap campaign")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","scenarios":[{"name":"a","kind":"power","voltages":[0.9]}]}`)); err == nil {
		t.Fatal("Parse accepted an unknown scenario field")
	}
}

// TestRunDeterminism pins the campaign acceptance contract: manifests
// and artifacts are byte-identical across runs and across concurrency
// settings (jobs × fleet).
func TestRunDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func(jobs, fleet int) ([]byte, map[string][]byte) {
		t.Helper()
		res, err := Run(ctx, tinySpec(), Options{Jobs: jobs, Fleet: fleet})
		if err != nil {
			t.Fatal(err)
		}
		manifest, err := res.ManifestJSON()
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := res.WriteArtifacts(dir); err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		return manifest, files
	}

	m1, f1 := run(1, 1)
	m8, f8 := run(4, 8)
	if !bytes.Equal(m1, m8) {
		t.Fatalf("manifest differs between (jobs=1,fleet=1) and (jobs=4,fleet=8):\n%s\nvs\n%s", m1, m8)
	}
	if len(f1) != len(f8) {
		t.Fatalf("artifact sets differ: %d vs %d files", len(f1), len(f8))
	}
	for name, data := range f1 {
		if !bytes.Equal(data, f8[name]) {
			t.Fatalf("artifact %s differs across concurrency settings", name)
		}
	}
	if len(f1) != len(tinySpec().Scenarios)+1 {
		t.Fatalf("wrote %d files, want one per scenario + manifest", len(f1))
	}
}

// TestCoalescing verifies duplicate cells — repeats and cross-scenario
// duplicates — coalesce onto single sweeps through the shared manager.
func TestCoalescing(t *testing.T) {
	spec := Spec{
		Name: "dup",
		Scenarios: []Scenario{
			{Name: "a", Kind: "ecc-study", Repeat: 3},
			{Name: "b", Kind: "ecc-study"}, // identical request to scenario a's cell
			{Name: "c", Kind: "faultmap"},
		},
	}
	mgr := service.NewManager(service.Config{Workers: 2, QueueDepth: 16})
	defer mgr.Close()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), mgr, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Cells != 3 {
		t.Fatalf("cells = %d", res.Manifest.Cells)
	}
	if res.Manifest.UniqueSweeps != 2 {
		t.Fatalf("unique sweeps = %d, want 2", res.Manifest.UniqueSweeps)
	}
	if runs := mgr.Runs(); runs != 2 {
		t.Fatalf("manager executed %d sweeps, want 2 (coalescing failed)", runs)
	}
	// Duplicate cells carry identical payload hashes.
	ha := res.Manifest.Scenarios[0].Cells[0].SHA256
	hb := res.Manifest.Scenarios[1].Cells[0].SHA256
	if ha != hb {
		t.Fatalf("identical cells hash differently: %s vs %s", ha, hb)
	}
}

// TestExecuteBackpressure runs a campaign whose cell count exceeds the
// manager's queue depth; submission must apply backpressure rather than
// fail.
func TestExecuteBackpressure(t *testing.T) {
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	spec := Spec{
		Name:      "backpressure",
		Scenarios: []Scenario{{Name: "a", Kind: "ecc-study", Seeds: seeds, Grid: []float64{0.95, 0.90}}},
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	mgr := service.NewManager(service.Config{Workers: 1, QueueDepth: 2})
	defer mgr.Close()
	res, err := Execute(context.Background(), mgr, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Cells != len(seeds) {
		t.Fatalf("cells = %d, want %d", res.Manifest.Cells, len(seeds))
	}
}

// TestCancelStopsSubmittedCells pins Execute's cleanup contract: when
// the campaign's context is cancelled, every sweep it submitted to the
// shared manager is cancelled too, so an abandoned campaign stops
// consuming the worker pool.
func TestCancelStopsSubmittedCells(t *testing.T) {
	seeds := make([]uint64, 6)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	spec := Spec{
		Name: "cancelme",
		Scenarios: []Scenario{{
			Name:  "rel",
			Kind:  "reliability",
			Seeds: seeds,
			Ports: []int{18},
			Batch: 2,
		}},
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	mgr := service.NewManager(service.Config{Workers: 1, QueueDepth: 16})
	defer mgr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Execute(ctx, mgr, spec, Options{
		OnCell: func(done, total int) {
			if done == 1 {
				cancel() // abandon the campaign after its first cell
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled campaign reported success")
	}
	// Every submitted sweep must drain (cancelled or already done) —
	// nothing may stay queued or running on the shared manager.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := mgr.Stats()
		if st.Queued == 0 && st.Running == 0 {
			if st.Cancelled == 0 {
				t.Fatalf("no sweeps were cancelled: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeps still active after campaign cancellation: %+v", mgr.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBuiltinPaperRepro(t *testing.T) {
	for _, smoke := range []bool{false, true} {
		spec, err := Builtin("paper-repro", smoke)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Normalize(); err != nil {
			t.Fatalf("smoke=%v: %v", smoke, err)
		}
		cells, err := spec.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) < 4 {
			t.Fatalf("smoke=%v: only %d cells", smoke, len(cells))
		}
	}
	if _, err := Builtin("nope", false); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

// TestHTTPCampaignAPI drives the daemon-facing routes end to end and
// checks the HTTP path produces the same manifest as a direct run.
func TestHTTPCampaignAPI(t *testing.T) {
	mgr := service.NewManager(service.Config{Workers: 2, QueueDepth: 32})
	defer mgr.Close()
	mux := http.NewServeMux()
	NewAPI(mgr).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	spec := tinySpec()
	body, err := json.Marshal(SubmitBody{Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, st)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		r, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "done" || st.Manifest == nil {
		t.Fatalf("campaign finished %q (err %q), manifest %v", st.State, st.Error, st.Manifest != nil)
	}

	// The HTTP path's manifest matches a direct engine run byte for byte.
	direct, err := Run(context.Background(), tinySpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := report.Marshal(st.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP manifest differs from direct run:\n%s\nvs\n%s", got, want)
	}

	// List includes the run; bad submissions and unknown IDs error.
	r, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
	for name, bad := range map[string]string{
		"empty":        `{}`,
		"both":         `{"builtin":"paper-repro","spec":{"name":"x","scenarios":[{"name":"a","kind":"power"}]}}`,
		"bad builtin":  `{"builtin":"nope"}`,
		"invalid spec": `{"spec":{"name":"x","scenarios":[{"name":"a","kind":"thermal"}]}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	r, err = http.Get(ts.URL + "/v1/campaigns/cmp-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", r.StatusCode)
	}
}
