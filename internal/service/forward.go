package service

import "context"

// ServeInfo records which fleet node produced a job's payload and
// whether the fleet degraded to local compute to produce it. The zero
// value means "no fleet configured" — a plain single-node execution.
type ServeInfo struct {
	// ServedBy is the node whose compute produced the bytes: the remote
	// owner on a successful forward, this node otherwise.
	ServedBy string
	// Degraded is true when the key's owner is a remote peer that could
	// not serve it (open circuit, unreachable, slow past the hedging
	// deadline, corrupt transfer) and the payload was computed locally
	// instead. By the determinism contract the bytes are identical
	// either way; Degraded only marks that availability, not
	// correctness, took the hit.
	Degraded bool
	// Replicated is true when the payload came from a remote peer and
	// the forwarder admitted it (within its replica byte budget) for
	// write-through to this node's durable cache tier. The Manager honors
	// it in runJob: admitted payloads go through every cache tier, so a
	// later owner failure serves the key from local disk without a sweep;
	// non-admitted remote payloads stay memory-only.
	Replicated bool
}

// Forwarder routes sweep executions across a fleet sharing one logical
// cache: each cache key has a single owner node, forwards go to the
// owner, and any failure to reach it degrades — byte-identically — to
// the local compute path. internal/fleet provides the implementation;
// the interface lives here so the Manager can consult it without the
// service depending on fleet topology.
//
// Implementations must be safe for concurrent use: the Manager calls
// ExecuteSweep from every worker goroutine.
type Forwarder interface {
	// ExecuteSweep produces the payload for req (cache key key): fetched
	// from the remote owner when one is healthy, computed via local
	// otherwise. The returned ServeInfo says which happened.
	ExecuteSweep(ctx context.Context, key uint64, req SweepRequest, local func(context.Context) ([]byte, error)) ([]byte, ServeInfo, error)
	// Self returns this node's name (its advertised base URL).
	Self() string
	// Health returns the fleet block /healthz embeds: per-peer circuit
	// state and probe/forward/degraded counters. The concrete type is
	// the implementation's (JSON-marshalable) stats struct.
	Health() any
}

// SubmitOptions carries per-submission flags that are not part of the
// sweep request (and therefore never part of the cache key).
type SubmitOptions struct {
	// NoForward pins execution to this node even when a fleet forwarder
	// is configured. Set for requests that were already forwarded once
	// (the X-Hbmvolt-No-Forward header), so a misconfigured ring — two
	// nodes that each believe the other owns a key — degrades to an
	// extra local compute instead of a forwarding loop.
	NoForward bool
	// TraceID is the submission's trace (minted or adopted at the HTTP
	// edge from X-Hbmvolt-Trace-Id). Observability only: it rides the
	// job's run context across fleet forwards and into span recorders,
	// and is never part of the cache key.
	TraceID string
}
