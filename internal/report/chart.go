package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named data series of a chart, aligned with the chart's
// X values.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders aligned series as a fixed-width ASCII line chart, good
// enough to eyeball the shape of a figure in a terminal. Log scaling
// handles the exponential fault curves.
type Chart struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series
	// Height is the number of chart rows (default 16).
	Height int
	// LogY plots log10 of the values (zeros clamp to the floor).
	LogY bool
}

// markers cycles per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// WriteTo renders the chart.
func (c *Chart) WriteTo(w io.Writer) (int64, error) {
	height := c.Height
	if height <= 0 {
		height = 16
	}
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if c.Title != "" {
		if err := emit("%s\n", c.Title); err != nil {
			return total, err
		}
	}
	if len(c.X) == 0 || len(c.Series) == 0 {
		err := emit("(no data)\n")
		return total, err
	}

	transform := func(v float64) (float64, bool) {
		if c.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if tv, ok := transform(v); ok {
				lo = math.Min(lo, tv)
				hi = math.Max(hi, tv)
			}
		}
	}
	if math.IsInf(lo, 1) {
		err := emit("(no plottable data)\n")
		return total, err
	}
	if hi == lo {
		hi = lo + 1
	}

	cols := len(c.X)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range c.Series {
		mk := markers[si%len(markers)]
		for xi, v := range s.Values {
			if xi >= cols {
				break
			}
			tv, ok := transform(v)
			if !ok {
				continue
			}
			r := int((tv - lo) / (hi - lo) * float64(height-1))
			grid[height-1-r][xi] = mk
		}
	}

	for r, rowBytes := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		label := fmt.Sprintf("%8.3g", yVal)
		if c.LogY {
			label = fmt.Sprintf("%8.2g", math.Pow(10, yVal))
		}
		if err := emit("%s |%s|\n", label, string(rowBytes)); err != nil {
			return total, err
		}
	}
	if err := emit("%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", cols)); err != nil {
		return total, err
	}
	if err := emit("%s  %-8.3g%s%8.3g\n", strings.Repeat(" ", 8),
		c.X[0], strings.Repeat(" ", max(0, cols-16)), c.X[len(c.X)-1]); err != nil {
		return total, err
	}
	for si, s := range c.Series {
		if err := emit("  %c %s\n", markers[si%len(markers)], s.Name); err != nil {
			return total, err
		}
	}
	if c.XLabel != "" {
		if err := emit("  x: %s\n", c.XLabel); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
