package service

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientJitterInjectable pins the retry backoff's test seam: an
// injected Jitter source is consulted once per retry with the backoff
// base as its bound, replacing the global math/rand draw — so chaos
// and timing tests can make retry schedules exactly reproducible.
func TestClientJitterInjectable(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	fh := &flakyHandler{n: 2, status: http.StatusServiceUnavailable, inner: srv}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	c := fastClient(ts.URL)
	var mu sync.Mutex
	var draws []time.Duration
	c.Jitter = func(max time.Duration) time.Duration {
		mu.Lock()
		draws = append(draws, max)
		mu.Unlock()
		return 0
	}
	if _, err := c.Health(t.Context()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(draws) != 2 {
		t.Fatalf("injected jitter drawn %d times, want 2 (one per retry)", len(draws))
	}
	for i, max := range draws {
		if max != c.retryBase() {
			t.Fatalf("draw %d bounded by %v, want the retry base %v", i, max, c.retryBase())
		}
	}
}

// TestClientResultChecksumMismatch pins the transfer-integrity check:
// a /result body that does not hash to the server's checksum header —
// a truncated or corrupted transfer the fleet must never cache — is an
// error, not bytes.
func TestClientResultChecksumMismatch(t *testing.T) {
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderPayloadSHA, strings.Repeat("0", 64))
		w.Write([]byte(`{"not":"what the checksum promises"}`))
	}))
	defer lying.Close()

	_, err := fastClient(lying.URL).Result(t.Context(), "job-000001")
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("Result = %v, want checksum mismatch error", err)
	}
}

// TestWaitErrJobLostAndResubmitRecovery restarts the daemon mid-wait:
// the job table is in-memory, so the old id 404s and Wait must surface
// the typed ErrJobLost — and resubmitting the request must recover the
// identical payload from the durable cache tier without recomputing.
func TestWaitErrJobLostAndResubmitRecovery(t *testing.T) {
	dir := t.TempDir()
	var current atomic.Pointer[Server]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().ServeHTTP(w, r)
	}))
	defer ts.Close()

	srv1, err := Open(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	current.Store(srv1)
	c := fastClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond

	req := SweepRequest{
		Kind: KindReliability, Scale: 1024, Ports: []int{0},
		Patterns: []string{"all1"}, Grid: []float64{0.90}, Batch: 1,
	}
	sub, err := c.Submit(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(t.Context(), sub.ID); err != nil || st != StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	payload, err := c.Result(t.Context(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh process over the same cache directory. The job
	// table died with the old one; the result bytes did not.
	srv1.Close()
	srv2, err := Open(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	current.Store(srv2)

	if _, err := c.Wait(t.Context(), sub.ID); !errors.Is(err, ErrJobLost) {
		t.Fatalf("Wait after restart = %v, want ErrJobLost", err)
	}

	// Resubmit-by-key recovery: same request, same key, identical bytes
	// out of the disk tier — and no sweep recomputed.
	sub2, err := c.Submit(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Key != sub.Key {
		t.Fatalf("resubmitted key %s != original %s; determinism contract broken", sub2.Key, sub.Key)
	}
	if st, err := c.Wait(t.Context(), sub2.ID); err != nil || st != StateDone {
		t.Fatalf("Wait on resubmission = %v, %v", st, err)
	}
	payload2, err := c.Result(t.Context(), sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("recovered payload differs from the original")
	}
	if runs := srv2.Manager().Runs(); runs != 0 {
		t.Fatalf("recovery recomputed %d sweeps, want 0 (durable cache serve)", runs)
	}
}

// TestManagerClientKeyTrustProxy pins admission identity resolution:
// X-Client-ID always wins; X-Forwarded-For is honored only when the
// deployment opted in with TrustProxy (the header is client-spoofable
// otherwise); the remote host is the fallback.
func TestManagerClientKeyTrustProxy(t *testing.T) {
	trusted := NewManager(Config{Workers: 1, TrustProxy: true})
	defer trusted.Close()
	direct := NewManager(Config{Workers: 1})
	defer direct.Close()

	mkReq := func(clientID, xff string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/sweeps", nil)
		r.RemoteAddr = "10.0.0.9:41234"
		if clientID != "" {
			r.Header.Set("X-Client-ID", clientID)
		}
		if xff != "" {
			r.Header.Set("X-Forwarded-For", xff)
		}
		return r
	}
	cases := []struct {
		name                    string
		clientID, xff           string
		wantTrusted, wantDirect string
	}{
		{"remote-host-fallback", "", "", "10.0.0.9", "10.0.0.9"},
		{"client-id-wins-everywhere", "tool-7", "203.0.113.7", "tool-7", "tool-7"},
		{"xff-honored-only-with-trust", "", "203.0.113.7, 198.51.100.2", "203.0.113.7", "10.0.0.9"},
		{"garbage-xff-falls-back", "", " , ", "10.0.0.9", "10.0.0.9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := mkReq(tc.clientID, tc.xff)
			if got := trusted.ClientKey(r); got != tc.wantTrusted {
				t.Errorf("trusted ClientKey = %q, want %q", got, tc.wantTrusted)
			}
			if got := direct.ClientKey(r); got != tc.wantDirect {
				t.Errorf("direct ClientKey = %q, want %q", got, tc.wantDirect)
			}
		})
	}
}
