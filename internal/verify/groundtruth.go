package verify

import "hbmvolt/internal/report"

// This file is the committed Fig. 4 ground-truth table: the per-stack
// faulty-cell fraction curves digitized over the paper's full voltage
// ladder, to which the fig4-curve-fidelity claim compares every live
// faultmap study by MAPE. The values are the calibrated fault model's
// analytic curves at the anchors the calibration suite ties to the
// paper (first faults at 0.97 V, sensitive-PC separation, the 0.84 V
// collapse); re-deriving the model must keep reproducing them within
// the claim's band. testdata/verify/fig4_ground_truth.json is the
// reviewable JSON export of this table, kept in sync by a test.

// fig4Curve is one stack's digitized curve.
type fig4Curve struct {
	volts     []float64
	fractions []float64
}

// fig4Export is the JSON shape of testdata/verify/fig4_ground_truth.json.
type fig4Export struct {
	Stack     int       `json:"stack"`
	Volts     []float64 `json:"volts"`
	Fractions []float64 `json:"fractions"`
}

// fig4GroundTruthJSON serializes the compiled table deterministically;
// the testdata export is pinned to these bytes.
func fig4GroundTruthJSON() ([]byte, error) {
	var out []fig4Export
	for stack := 0; ; stack++ {
		c, ok := fig4GroundTruth[stack]
		if !ok {
			break
		}
		out = append(out, fig4Export{Stack: stack, Volts: c.volts, Fractions: c.fractions})
	}
	return report.Marshal(out)
}

// at returns the ground-truth fraction at voltage v.
func (c fig4Curve) at(v float64) (float64, bool) {
	for i, gv := range c.volts {
		if sameV(gv, v) {
			return c.fractions[i], true
		}
	}
	return 0, false
}

// fig4Truth returns the ground-truth curve for a stack.
func fig4Truth(stack int) (fig4Curve, bool) {
	c, ok := fig4GroundTruth[stack]
	return c, ok
}

var fig4GroundTruth = map[int]fig4Curve{
	0: {
		volts:     []float64{1.2, 1.19, 1.18, 1.17, 1.16, 1.15, 1.14, 1.13, 1.12, 1.11, 1.1, 1.09, 1.08, 1.07, 1.06, 1.05, 1.04, 1.03, 1.02, 1.01, 1, 0.99, 0.98, 0.97, 0.96, 0.95, 0.94, 0.93, 0.92, 0.91, 0.9, 0.89, 0.88, 0.87, 0.86, 0.85, 0.84, 0.83, 0.82, 0.81},
		fractions: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 8.4966875e-09, 3.0147384891335585e-08, 1.0696695809823884e-07, 3.7953308938841987e-07, 1.3466342177219318e-06, 4.778038508478235e-06, 1.6953120370817035e-05, 6.015194096854372e-05, 0.0002134271404402699, 0.0007572680705404242, 0.0026868885066681867, 0.009533440562851546, 0.1362025294541937, 0.9999454636951791, 1, 1, 1},
	},
	1: {
		volts:     []float64{1.2, 1.19, 1.18, 1.17, 1.16, 1.15, 1.14, 1.13, 1.12, 1.11, 1.1, 1.09, 1.08, 1.07, 1.06, 1.05, 1.04, 1.03, 1.02, 1.01, 1, 0.99, 0.98, 0.97, 0.96, 0.95, 0.94, 0.93, 0.92, 0.91, 0.9, 0.89, 0.88, 0.87, 0.86, 0.85, 0.84, 0.83, 0.82, 0.81},
		fractions: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9.745937500000002e-09, 3.457989115633603e-08, 1.226940838050775e-07, 4.353350371378792e-07, 1.5446269997901352e-06, 5.480543408972271e-06, 1.9445701817791888e-05, 6.899595367996251e-05, 0.00024480688168590324, 0.0008686075939867819, 0.00308193604336472, 0.010935122116888274, 0.14063223289947743, 0.9999454694119606, 1, 1, 1},
	},
}
