package service

import (
	"sync"

	"hbmvolt/internal/lru"
)

// resultCache is a bounded LRU over marshaled result payloads, keyed by
// the request cache key. It survives job eviction: once a sweep's bytes
// are in here, a repeat of the same request is answered without
// recomputation until capacity pressure ages the entry out. Payload
// slices are stored and returned by reference and must be treated as
// immutable by all parties.
//
// Eviction pressure is measured in payload bytes (internal/lru),
// uniformly across result kinds: a campaign analytic envelope (a
// faultmap study carries the whole Fig. 4/5/6 atlas) weighs what it
// actually retains, the same way sweep payloads do, rather than
// counting as one entry like a two-point reliability sweep. An
// entry-count bound still applies on top, so a flood of tiny payloads
// cannot grow the index without limit.
type resultCache struct {
	mu  sync.Mutex
	lru *lru.Cache[uint64, []byte]

	hits, misses uint64
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &resultCache{lru: lru.New[uint64, []byte](capacity, maxBytes)}
}

// Get returns the payload for key, marking it most recently used.
func (c *resultCache) Get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, ok := c.lru.Get(key)
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return payload, true
}

// Put stores a payload, evicting least recently used entries while the
// entry or byte budget is exceeded. Storing an existing key refreshes
// its recency; the payload is not replaced — by the determinism
// contract a key's payload never changes, so the first write wins and
// stays byte-stable.
func (c *resultCache) Put(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Add(key, payload, int64(len(payload)))
}

// Touch records a served-from-cache event for a payload that may or may
// not still be resident: a resident entry is refreshed, an evicted one
// re-inserted. Either way it counts as a hit — the caller served the
// bytes without recomputation, which is what the hit counter measures.
// (The coalescing path keeps payloads alive on completed jobs beyond
// this LRU's horizon.)
func (c *resultCache) Touch(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	c.lru.Add(key, payload, int64(len(payload)))
}

// Len returns the live entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the total payload bytes currently retained.
func (c *resultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Bytes()
}

// Stats returns cumulative hit/miss counters.
func (c *resultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
