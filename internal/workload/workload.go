// Package workload provides the synthetic access-pattern generators the
// bandwidth studies drive the DRAM timing model with. The paper's
// introduction motivates HBM with bandwidth-hungry, data-intensive
// applications; these generators characterize how much of the pin
// bandwidth different access shapes actually sustain, and therefore how
// much power-per-useful-byte undervolting saves for each.
package workload

import (
	"fmt"

	"hbmvolt/internal/dramctl"
	"hbmvolt/internal/prf"
)

// Access is one generated memory operation.
type Access struct {
	Addr uint64
	Op   dramctl.Op
}

// Generator produces a deterministic stream of accesses over a word
// address space of the given size.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the i-th access of the stream.
	Next(i uint64, space uint64) Access
}

// Sequential streams reads (or a read/write mix) through the address
// space in order — the paper's Algorithm 1 shape and the best case for
// DRAM timing.
func Sequential(writeEvery int) Generator {
	return sequential{writeEvery}
}

type sequential struct{ writeEvery int }

func (s sequential) Name() string {
	if s.writeEvery <= 0 {
		return "sequential-read"
	}
	return fmt.Sprintf("sequential-rw%d", s.writeEvery)
}

func (s sequential) Next(i, space uint64) Access {
	op := dramctl.Read
	if s.writeEvery > 0 && i%uint64(s.writeEvery) == 0 {
		op = dramctl.Write
	}
	return Access{Addr: i % space, Op: op}
}

// Strided jumps by a fixed word stride (matrix-column walks, texture
// fetches). Large strides defeat row-buffer locality.
func Strided(stride uint64) Generator { return strided{stride} }

type strided struct{ stride uint64 }

func (s strided) Name() string { return fmt.Sprintf("strided-%d", s.stride) }

func (s strided) Next(i, space uint64) Access {
	return Access{Addr: (i * s.stride) % space, Op: dramctl.Read}
}

// Random scatters accesses uniformly (hash joins, graph traversal) —
// the worst case for row-buffer locality.
func Random(seed uint64) Generator { return random{seed} }

type random struct{ seed uint64 }

func (r random) Name() string { return "random" }

func (r random) Next(i, space uint64) Access {
	return Access{Addr: prf.Hash2(r.seed, i) % space, Op: dramctl.Read}
}

// Hotspot concentrates a fraction of accesses on a small region (key-
// value caches, zipfian keys): 90% of accesses to 10% of the space by
// default proportions.
func Hotspot(seed uint64) Generator { return hotspot{seed} }

type hotspot struct{ seed uint64 }

func (h hotspot) Name() string { return "hotspot-90-10" }

func (h hotspot) Next(i, space uint64) Access {
	u := prf.Hash2(h.seed, i)
	hot := space / 10
	if hot == 0 {
		hot = 1
	}
	if u%10 != 0 { // 90% of accesses
		return Access{Addr: prf.Hash3(h.seed, i, 1) % hot, Op: dramctl.Read}
	}
	return Access{Addr: prf.Hash3(h.seed, i, 2) % space, Op: dramctl.Read}
}

// Standard returns the workload suite the bandwidth study runs.
func Standard() []Generator {
	return []Generator{
		Sequential(0),
		Sequential(4), // 25% writes
		Strided(32),   // row-sized hops
		Strided(513),  // prime stride, bank-scattering
		Hotspot(1),
		Random(1),
	}
}

// Result is the outcome of driving one workload through the timing
// model.
type Result struct {
	Name string
	// BandwidthGBs is the sustained DRAM-side bandwidth of one pseudo
	// channel.
	BandwidthGBs float64
	// Efficiency is BandwidthGBs over the pin peak.
	Efficiency float64
	// RowHitRate is the row-buffer locality the pattern achieved.
	RowHitRate float64
}

// Run drives n accesses of the generator through a fresh controller.
func Run(g Generator, t dramctl.Timing, geom dramctl.Geometry, space, n uint64) (Result, error) {
	c, err := dramctl.New(t, geom)
	if err != nil {
		return Result{}, err
	}
	for i := uint64(0); i < n; i++ {
		a := g.Next(i, space)
		c.Access(a.Addr, a.Op)
	}
	sec := c.ElapsedSeconds()
	res := Result{Name: g.Name(), RowHitRate: c.Stats().RowHitRate()}
	if sec > 0 {
		res.BandwidthGBs = float64(n) * 32 / sec / 1e9
		res.Efficiency = res.BandwidthGBs / t.PeakBandwidthGBs()
	}
	return res, nil
}

// RunSuite evaluates the standard suite.
func RunSuite(t dramctl.Timing, geom dramctl.Geometry, space, n uint64) ([]Result, error) {
	var out []Result
	for _, g := range Standard() {
		r, err := Run(g, t, geom, space, n)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
