package faults

import (
	"math"
	"testing"
	"testing/quick"
)

func defaultModel(t testing.TB) *Model {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// smallModel uses a tiny geometry so brute-force checks are affordable.
func smallModel(t testing.TB, seed uint64) *Model {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Geometry = Geometry{WordsPerPC: 4096, WordsPerRow: 8}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geometry = Geometry{WordsPerPC: 100, WordsPerRow: 32}
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted WordsPerPC not multiple of WordsPerRow")
	}
	cfg = DefaultConfig()
	cfg.Profiles[3].WeakMult = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted negative WeakMult")
	}
	cfg = DefaultConfig()
	cfg.Profiles[3].ClusterFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted ClusterFraction > 1")
	}
}

func TestDefaultsFilled(t *testing.T) {
	m, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.Temperature != TempRef {
		t.Fatalf("Temperature = %v, want %v", cfg.Temperature, TempRef)
	}
	if cfg.Geometry != DefaultGeometry {
		t.Fatalf("Geometry = %+v", cfg.Geometry)
	}
	for i, p := range cfg.Profiles {
		if p.WeakMult != defaultWeakMult[i] {
			t.Fatalf("PC%d WeakMult = %v, want default %v", i, p.WeakMult, defaultWeakMult[i])
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	m1 := smallModel(t, 42)
	m2 := smallModel(t, 42)
	s1 := m1.NewSampler(0, 4, 0.88)
	s2 := m2.NewSampler(0, 4, 0.88)
	for addr := uint64(0); addr < 4096; addr += 7 {
		f1 := s1.WordFaults(addr, nil)
		f2 := s2.WordFaults(addr, nil)
		if len(f1) != len(f2) {
			t.Fatalf("addr %d: %d vs %d faults", addr, len(f1), len(f2))
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("addr %d fault %d differs", addr, i)
			}
		}
	}
}

func TestSamplerSeedSensitivity(t *testing.T) {
	a := smallModel(t, 1)
	b := smallModel(t, 2)
	sa := a.NewSampler(0, 4, 0.86)
	sb := b.NewSampler(0, 4, 0.86)
	diff := false
	for addr := uint64(0); addr < 512 && !diff; addr++ {
		fa := sa.WordFaults(addr, nil)
		fb := sb.WordFaults(addr, nil)
		if len(fa) != len(fb) {
			diff = true
			break
		}
		for i := range fa {
			if fa[i] != fb[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fault maps")
	}
}

// Fault inclusion: every fault present at voltage v must be present at
// every lower voltage, with the same polarity.
func TestFaultMonotonicityInVoltage(t *testing.T) {
	m := smallModel(t, 3)
	voltages := []float64{0.97, 0.94, 0.90, 0.87, 0.855, 0.85, 0.845, 0.84}
	for _, pc := range []int{2, 4, 5} {
		var prev map[[2]uint64]Polarity
		for _, v := range voltages {
			s := m.NewSampler(0, pc, v)
			cur := map[[2]uint64]Polarity{}
			for addr := uint64(0); addr < 1024; addr++ {
				for _, f := range s.WordFaults(addr, nil) {
					cur[[2]uint64{addr, uint64(f.Bit)}] = f.Polarity
				}
			}
			for key, pol := range prev {
				got, ok := cur[key]
				if !ok {
					t.Fatalf("pc%d: fault %v at higher voltage vanished at %v", pc, key, v)
				}
				if got != pol {
					t.Fatalf("pc%d: fault %v changed polarity at %v", pc, key, v)
				}
			}
			prev = cur
		}
	}
}

func TestNoFaultsInGuardband(t *testing.T) {
	m := defaultModel(t)
	for _, v := range []float64{VMin, 1.0, 1.1, VNom} {
		for stack := 0; stack < NumStacks; stack++ {
			for pc := 0; pc < PCsPerStack; pc++ {
				if r := m.CellRate(stack, pc, v, AnyFlip); r != 0 {
					t.Fatalf("stack%d pc%d rate %v at %vV (guardband must be clean)", stack, pc, r, v)
				}
				if s := m.NewSampler(stack, pc, v); s.MightFault() {
					t.Fatalf("stack%d pc%d sampler may fault at %vV", stack, pc, v)
				}
			}
		}
	}
}

func TestClusterConfinementAtModerateVoltage(t *testing.T) {
	// At 0.90 V the bulk population is silent, so every fault must sit in
	// a weak cluster.
	m := smallModel(t, 9)
	s := m.NewSampler(1, 2, 0.88) // global PC18, sensitive
	found := 0
	for addr := uint64(0); addr < 4096; addr++ {
		faults := s.WordFaults(addr, nil)
		if len(faults) > 0 {
			found += len(faults)
			if !s.InCluster(addr) {
				t.Fatalf("fault outside cluster at addr %d", addr)
			}
		}
	}
	if share := m.ClusteredFaultShare(1, 2, 0.90); share != 1 {
		t.Fatalf("ClusteredFaultShare = %v, want 1 at 0.90V", share)
	}
	_ = found
}

func TestClusterCoverageNearTarget(t *testing.T) {
	m := defaultModel(t)
	for stack := 0; stack < NumStacks; stack++ {
		for pc := 0; pc < PCsPerStack; pc++ {
			cov := m.ClusterCoverage(stack, pc)
			if cov < 0.05 || cov > 0.11 {
				t.Fatalf("stack%d pc%d coverage %v, want ~0.08", stack, pc, cov)
			}
		}
	}
}

func TestClusterRangesSortedDisjoint(t *testing.T) {
	m := defaultModel(t)
	for stack := 0; stack < NumStacks; stack++ {
		for pc := 0; pc < PCsPerStack; pc++ {
			rs := m.ClusterRanges(stack, pc)
			for i, r := range rs {
				if r[0] >= r[1] {
					t.Fatalf("empty range %v", r)
				}
				if i > 0 && rs[i-1][1] > r[0] {
					t.Fatalf("overlapping ranges %v, %v", rs[i-1], r)
				}
			}
		}
	}
}

// The analytic expectation must agree with Monte-Carlo sampling within
// Poisson bounds, because both derive from the same survival functions.
func TestMonteCarloMatchesAnalytic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.Geometry = Geometry{WordsPerPC: 1 << 18, WordsPerRow: 32}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		stack, pc int
		v         float64
	}{
		{1, 2, 0.90},  // sensitive PC18 at moderate undervolt
		{0, 4, 0.92},  // sensitive PC4 higher voltage
		{0, 12, 0.87}, // mid PC at deep undervolt
	}
	for _, c := range cases {
		s := m.NewSampler(c.stack, c.pc, c.v)
		const words = 1 << 18
		var got10, got01 float64
		for addr := uint64(0); addr < words; addr++ {
			for _, f := range s.WordFaults(addr, nil) {
				if f.Polarity == StuckAt0 {
					got10++
				} else {
					got01++
				}
			}
		}
		exp10 := m.ExpectedFaults(c.stack, c.pc, c.v, OneToZero, 0, words)
		exp01 := m.ExpectedFaults(c.stack, c.pc, c.v, ZeroToOne, 0, words)
		for _, chk := range []struct {
			name     string
			got, exp float64
		}{
			{"1to0", got10, exp10},
			{"0to1", got01, exp01},
		} {
			sd := math.Sqrt(math.Max(chk.exp, 1))
			if math.Abs(chk.got-chk.exp) > 5*sd {
				t.Errorf("stack%d pc%d %vV %s: got %v, want %v ± %v",
					c.stack, c.pc, c.v, chk.name, chk.got, chk.exp, 5*sd)
			}
		}
	}
}

func TestExpectedFaultsWindowsBruteForce(t *testing.T) {
	m := smallModel(t, 5)
	const stack, pc = 0, 5
	v := 0.89
	idx := pcIndex(stack, pc)
	inRate := m.regionRate(idx, v, true, AnyFlip)
	outRate := m.regionRate(idx, v, false, AnyFlip)
	brute := func(lo, hi uint64) float64 {
		sum := 0.0
		for w := lo; w < hi; w++ {
			if m.clusters[idx].contains(w / m.cfg.Geometry.WordsPerRow) {
				sum += 256 * inRate
			} else {
				sum += 256 * outRate
			}
		}
		return sum
	}
	windows := [][2]uint64{
		{0, 4096}, {0, 1}, {5, 9}, {3, 40}, {8, 16}, {100, 1000},
		{7, 8}, {4090, 4096}, {17, 18}, {31, 33},
	}
	for _, w := range windows {
		got := m.ExpectedFaults(stack, pc, v, AnyFlip, w[0], w[1])
		want := brute(w[0], w[1])
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("window %v: got %v, want %v", w, got, want)
		}
	}
	if m.ExpectedFaults(stack, pc, v, AnyFlip, 10, 10) != 0 {
		t.Error("empty window should be 0")
	}
}

func TestExpectedFaultsWindowProperty(t *testing.T) {
	m := smallModel(t, 6)
	f := func(a, b uint16) bool {
		lo, hi := uint64(a)%4096, uint64(b)%4096
		if lo > hi {
			lo, hi = hi, lo
		}
		mid := (lo + hi) / 2
		v := 0.9
		whole := m.ExpectedFaults(0, 4, v, AnyFlip, lo, hi)
		split := m.ExpectedFaults(0, 4, v, AnyFlip, lo, mid) +
			m.ExpectedFaults(0, 4, v, AnyFlip, mid, hi)
		return math.Abs(whole-split) < 1e-6*(1+whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellRateMonotoneInVoltage(t *testing.T) {
	m := defaultModel(t)
	for _, pc := range []int{0, 4, 11} {
		prev := 0.0 // grid descends in voltage, so rates must not decrease
		for _, v := range PaperGrid() {
			r := m.CellRate(0, pc, v, AnyFlip)
			if r < prev-1e-15 {
				t.Fatalf("pc%d rate not monotone at %vV: %v < %v", pc, v, r, prev)
			}
			prev = r
		}
	}
}

func TestTemperatureRaisesFaultRates(t *testing.T) {
	cold := DefaultConfig()
	cold.Temperature = 25
	hot := DefaultConfig()
	hot.Temperature = 45
	mc, err := New(cold)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := New(hot)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.95, 0.90, 0.86} {
		rc := mc.CellRate(0, 4, v, AnyFlip)
		rh := mh.CellRate(0, 4, v, AnyFlip)
		if rh <= rc {
			t.Fatalf("hot rate %v not above cold %v at %vV", rh, rc, v)
		}
	}
	// Guardband must stay clean even when hot.
	if r := mh.CellRate(0, 4, VMin, AnyFlip); r != 0 {
		t.Fatalf("hot model faulty at VMin: %v", r)
	}
}

func TestPolarityString(t *testing.T) {
	if StuckAt0.String() != "stuck-at-0" || StuckAt1.String() != "stuck-at-1" {
		t.Fatal("Polarity.String broken")
	}
}

func TestFlipKindString(t *testing.T) {
	if AnyFlip.String() != "any" || OneToZero.String() != "1to0" || ZeroToOne.String() != "0to1" {
		t.Fatal("FlipKind.String broken")
	}
}

func TestVoltageGrid(t *testing.T) {
	g := PaperGrid()
	if len(g) != 40 {
		t.Fatalf("PaperGrid has %d points, want 40", len(g))
	}
	if g[0] != VNom || g[len(g)-1] != VCritical {
		t.Fatalf("grid endpoints %v..%v", g[0], g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if math.Abs((g[i-1]-g[i])-VStep) > 1e-12 {
			t.Fatalf("grid step %v at %d", g[i-1]-g[i], i)
		}
	}
}

func TestScale64Bounds(t *testing.T) {
	if scale64(0) != 0 {
		t.Fatal("scale64(0)")
	}
	if scale64(1) != math.MaxUint64 {
		t.Fatal("scale64(1)")
	}
	if scale64(2) != math.MaxUint64 {
		t.Fatal("scale64(2) should clamp")
	}
	mid := scale64(0.5)
	if mid < math.MaxUint64/2-1<<32 || mid > math.MaxUint64/2+1<<32 {
		t.Fatalf("scale64(0.5) = %d", mid)
	}
}

func BenchmarkWordFaultsCleanPath(b *testing.B) {
	m := MustNew(DefaultConfig())
	s := m.NewSampler(0, 1, 0.95) // robust PC: nearly all words clean
	var buf []CellFault
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.WordFaults(uint64(i)&0x7fffff, buf[:0])
	}
}

func BenchmarkWordFaultsClusterPath(b *testing.B) {
	m := MustNew(DefaultConfig())
	s := m.NewSampler(0, 4, 0.86) // sensitive PC, deep undervolt
	// Find a cluster word so the bench measures the hashing path.
	addr := uint64(0)
	for ; addr < 1<<23; addr++ {
		if s.InCluster(addr) {
			break
		}
	}
	var buf []CellFault
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.WordFaults(addr, buf[:0])
	}
}

func TestBatchJitterVariesAcrossReps(t *testing.T) {
	m := smallModel(t, 21)
	count := func(rep uint64) int {
		s := m.NewBatchSampler(0, 4, 0.89, rep)
		n := 0
		for addr := uint64(0); addr < 4096; addr++ {
			n += len(s.WordFaults(addr, nil))
		}
		return n
	}
	base := count(0)
	if base == 0 {
		t.Skip("no faults at this scale; cannot exercise jitter")
	}
	varies := false
	for rep := uint64(1); rep < 6; rep++ {
		if count(rep) != base {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("batch reps produced identical fault counts")
	}
}

func TestBatchJitterUnbiased(t *testing.T) {
	// The rep-averaged count must stay near the no-jitter expectation.
	cfg := DefaultConfig()
	cfg.Seed = 23
	cfg.Geometry = Geometry{WordsPerPC: 1 << 16, WordsPerRow: 32}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 20
	var sum float64
	for rep := uint64(0); rep < reps; rep++ {
		s := m.NewBatchSampler(1, 2, 0.90, rep)
		for addr := uint64(0); addr < 1<<16; addr++ {
			sum += float64(len(s.WordFaults(addr, nil)))
		}
	}
	mean := sum / reps
	want := m.ExpectedFaults(1, 2, 0.90, AnyFlip, 0, 1<<16)
	if want < 20 {
		t.Skipf("expectation %v too small for a stable check", want)
	}
	if mean < want*0.8 || mean > want*1.25 {
		t.Fatalf("rep-averaged count %v vs expectation %v", mean, want)
	}
}

func TestBatchJitterGuardbandStillClean(t *testing.T) {
	m := defaultModel(t)
	for rep := uint64(0); rep < 4; rep++ {
		for stack := 0; stack < NumStacks; stack++ {
			for pc := 0; pc < PCsPerStack; pc++ {
				if s := m.NewBatchSampler(stack, pc, VMin, rep); s.MightFault() {
					t.Fatalf("jittered sampler may fault at VMin (stack%d pc%d rep%d)", stack, pc, rep)
				}
			}
		}
	}
}

func TestBatchJitterMonotoneInVoltagePerRep(t *testing.T) {
	m := smallModel(t, 29)
	const rep = 3
	var prev map[[2]uint64]bool
	for _, v := range []float64{0.93, 0.90, 0.88, 0.86} {
		s := m.NewBatchSampler(0, 5, v, rep)
		cur := map[[2]uint64]bool{}
		for addr := uint64(0); addr < 2048; addr++ {
			for _, f := range s.WordFaults(addr, nil) {
				cur[[2]uint64{addr, uint64(f.Bit)}] = true
			}
		}
		for key := range prev {
			if !cur[key] {
				t.Fatalf("fault %v vanished at %vV within one rep", key, v)
			}
		}
		prev = cur
	}
}
