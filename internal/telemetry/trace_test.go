package telemetry

import (
	"context"
	"sync"
	"testing"
)

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("two minted trace IDs collided")
	}
	if len(a) != 32 || !ValidTraceID(a) {
		t.Fatalf("minted ID %q not valid", a)
	}
	for id, want := range map[string]bool{
		"abc123":          true,
		"A-Z_09":          true,
		"":                false,
		"has space":       false,
		"quote\"":         false,
		"line\nbreak":     false,
		string(make([]byte, 65)): false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	rec := NewRecorder("http://n1:1", 8)
	ctx := WithRecorder(WithTrace(context.Background(), "t-1"), rec)
	if TraceOf(ctx) != "t-1" || RecorderOf(ctx) != rec {
		t.Fatal("context round-trip lost trace or recorder")
	}
	Record(ctx, "cache.lookup", map[string]string{"tier": "memory", "outcome": "hit"})
	Record(context.Background(), "dropped", nil) // no recorder: must not panic

	spans := rec.ForTrace("t-1")
	if len(spans) != 1 || spans[0].Name != "cache.lookup" || spans[0].Node != "http://n1:1" {
		t.Fatalf("spans = %+v, want one cache.lookup from n1", spans)
	}
	if spans[0].Attrs["outcome"] != "hit" {
		t.Fatalf("attrs = %v", spans[0].Attrs)
	}
}

// TestRecorderRing pins the bounded-buffer behavior: capacity evicts
// oldest first, order is preserved, nil recorder is a no-op.
func TestRecorderRing(t *testing.T) {
	rec := NewRecorder("n", 3)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		rec.Record("t", name, nil)
	}
	spans := rec.Spans()
	if len(spans) != 3 || spans[0].Name != "c" || spans[2].Name != "e" {
		t.Fatalf("ring = %+v, want [c d e]", spans)
	}
	var nilRec *Recorder
	nilRec.Record("t", "x", nil) // must not panic
	if nilRec.Spans() != nil || nilRec.Node() != "" {
		t.Fatal("nil recorder must read as empty")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder("n", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Record("t", "spin", nil)
				rec.Spans()
			}
		}()
	}
	wg.Wait()
	if got := len(rec.Spans()); got != 64 {
		t.Fatalf("retained %d spans, want capacity 64", got)
	}
}
