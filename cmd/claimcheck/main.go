// Command claimcheck is the claims-ledger doc-lint: it checks that
// docs/CLAIMS.md documents exactly the claim IDs registered in
// internal/verify — no registered claim without a ledger section, no
// ledger section documenting a claim that no longer exists. The CI
// claims-gate job runs it before the verifier so documentation drift
// fails as loudly as a refuted claim.
//
// Usage:
//
//	go run ./cmd/claimcheck [-ledger docs/CLAIMS.md]
package main

import (
	"flag"
	"fmt"
	"os"

	"hbmvolt/internal/verify"
)

var flagLedger = flag.String("ledger", "docs/CLAIMS.md", "path of the claims ledger to check")

func main() {
	flag.Parse()
	data, err := os.ReadFile(*flagLedger)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claimcheck: %v\n", err)
		os.Exit(1)
	}
	ids, err := verify.ParseLedger(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claimcheck: %v\n", err)
		os.Exit(1)
	}
	missing, stale := verify.CheckLedger(ids)
	for _, id := range missing {
		fmt.Fprintf(os.Stderr, "claimcheck: registered claim %q has no section in %s\n", id, *flagLedger)
	}
	for _, id := range stale {
		fmt.Fprintf(os.Stderr, "claimcheck: %s documents %q, which is not a registered claim\n", *flagLedger, id)
	}
	if len(missing) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
	fmt.Printf("claimcheck: %s in sync with %d registered claims\n", *flagLedger, len(ids))
}
