package fleet

import (
	"net/http"
	"testing"
	"time"

	"hbmvolt/internal/service"
)

func TestJitterIntervalBounds(t *testing.T) {
	d := time.Second
	if got := jitterInterval(d, 0); got != 900*time.Millisecond {
		t.Fatalf("jitterInterval(1s, 0) = %v, want 900ms", got)
	}
	if got := jitterInterval(d, 0.5); got != time.Second {
		t.Fatalf("jitterInterval(1s, 0.5) = %v, want 1s", got)
	}
	for _, u := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.999999} {
		got := jitterInterval(d, u)
		if got < 900*time.Millisecond || got >= 1100*time.Millisecond {
			t.Fatalf("jitterInterval(1s, %v) = %v, outside [0.9s, 1.1s)", u, got)
		}
	}
}

func TestLatencyWindowP95(t *testing.T) {
	var w latencyWindow
	w.init(hedgeWindowSize)
	if w.P95() != 0 {
		t.Fatal("empty window must report 0")
	}
	w.Observe(100 * time.Millisecond)
	if w.P95() != 100*time.Millisecond {
		t.Fatalf("single-sample p95 = %v, want the sample", w.P95())
	}
	// 20 samples at 10..200ms: p95 lands on the 19th (190ms).
	var w2 latencyWindow
	w2.init(hedgeWindowSize)
	for i := 1; i <= 20; i++ {
		w2.Observe(time.Duration(i) * 10 * time.Millisecond)
	}
	if got := w2.P95(); got != 190*time.Millisecond {
		t.Fatalf("p95 of 10..200ms = %v, want 190ms", got)
	}
	// Overflow wraps: after 2×size observations of a new value, the old
	// samples are fully displaced.
	for i := 0; i < 2*hedgeWindowSize; i++ {
		w2.Observe(time.Millisecond)
	}
	if got := w2.P95(); got != time.Millisecond {
		t.Fatalf("p95 after displacement = %v, want 1ms", got)
	}
}

func TestHedgeDelayAdaptive(t *testing.T) {
	f, err := New(Options{Self: "http://n1:1", Peers: []string{"http://n2:1"}, ForwardTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Cold window: the full forward timeout, so a cold node never races
	// its very first requests.
	if got := f.hedgeDelay(); got != 3*time.Second {
		t.Fatalf("cold hedge delay = %v, want the forward timeout", got)
	}
	// Fast observed forwards: the floor, not the raw p95.
	for i := 0; i < 20; i++ {
		f.hedge.window.Observe(2 * time.Millisecond)
	}
	if got := f.hedgeDelay(); got != hedgeDelayFloor {
		t.Fatalf("hedge delay on 2ms forwards = %v, want the %v floor", got, hedgeDelayFloor)
	}
	// Slow observed forwards: the p95 itself.
	for i := 0; i < hedgeWindowSize; i++ {
		f.hedge.window.Observe(400 * time.Millisecond)
	}
	if got := f.hedgeDelay(); got != 400*time.Millisecond {
		t.Fatalf("hedge delay on 400ms forwards = %v, want 400ms", got)
	}
	// A fixed configured delay wins over the window.
	f.opts.HedgeDelay = 70 * time.Millisecond
	if got := f.hedgeDelay(); got != 70*time.Millisecond {
		t.Fatalf("fixed hedge delay = %v, want 70ms", got)
	}
}

// hostDelay delays every request to selected hosts — a slow node,
// without chaos plans, keyed per destination.
type hostDelay struct {
	delays map[string]time.Duration // "host:port" → added latency
}

func (h *hostDelay) RoundTrip(req *http.Request) (*http.Response, error) {
	if d := h.delays[req.URL.Host]; d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}

// seedRouted finds a seed whose key f ranks owner-first, second-second
// — so a hedged forward has a known primary and second choice.
func seedRouted(t *testing.T, f *Forwarder, owner, second string) uint64 {
	t.Helper()
	v := f.live.Load()
	for seed := uint64(0); seed < 8192; seed++ {
		r := v.ranked(keyOf(t, smallReq(seed)))
		if r[0] == owner && r[1] == second {
			return seed
		}
	}
	t.Fatalf("no seed in [0,8192) ranked %s then %s", owner, second)
	return 0
}

// TestHedgeWinServesFromSecondChoice slows the owner far past a short
// fixed hedge delay: the race launches, the second-choice node answers
// first, and the serve succeeds un-degraded from the second choice.
func TestHedgeWinServesFromSecondChoice(t *testing.T) {
	delays := map[string]time.Duration{}
	nodes := startNodes(t, 3, func(i int, o *Options) {
		if i == 0 {
			o.HedgeDelay = 30 * time.Millisecond
			o.HTTPClient = &http.Client{Transport: &hostDelay{delays: delays}}
		}
	})
	seed := seedRouted(t, nodes[0].fwd, nodes[1].url, nodes[2].url)
	req := smallReq(seed)
	want := localPayload(t, req)
	delays[nodes[1].url[len("http://"):]] = 500 * time.Millisecond

	j, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if string(j.Payload()) != string(want) {
		t.Fatal("hedged payload differs from single-node compute")
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[2].url || info.Degraded {
		t.Fatalf("ServeInfo = %+v, want un-degraded serve by second choice %s", info, nodes[2].url)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.Forwarded != 1 || h.DegradedServes != 0 {
		t.Fatalf("health = %+v, want 1 forwarded, 0 degraded", h)
	}
	if h.Hedge.Launched != 1 || h.Hedge.Wins != 1 || h.Hedge.Losses != 0 || h.Hedge.Failed != 0 {
		t.Fatalf("hedge counters = %+v, want exactly one launched-and-won hedge", h.Hedge)
	}
	if runs := nodes[0].srv.Manager().Runs(); runs != 0 {
		t.Fatalf("requester ran %d sweeps locally, want 0", runs)
	}
}

// TestHedgeLossPrimaryStillWins launches a hedge (tiny delay) against
// a second choice far slower than the primary: the primary's answer
// lands first and the hedge is accounted a loss, not a win.
func TestHedgeLossPrimaryStillWins(t *testing.T) {
	delays := map[string]time.Duration{}
	nodes := startNodes(t, 3, func(i int, o *Options) {
		if i == 0 {
			o.HedgeDelay = 20 * time.Millisecond
			o.HTTPClient = &http.Client{Transport: &hostDelay{delays: delays}}
		}
	})
	seed := seedRouted(t, nodes[0].fwd, nodes[1].url, nodes[2].url)
	req := smallReq(seed)
	delays[nodes[1].url[len("http://"):]] = 100 * time.Millisecond
	delays[nodes[2].url[len("http://"):]] = 3 * time.Second

	j, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[1].url || info.Degraded {
		t.Fatalf("ServeInfo = %+v, want un-degraded serve by primary %s", info, nodes[1].url)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.Hedge.Launched != 1 || h.Hedge.Wins != 0 || h.Hedge.Losses != 1 {
		t.Fatalf("hedge counters = %+v, want exactly one launched-and-lost hedge", h.Hedge)
	}
}

// TestFailoverOnDeadPrimary kills the owner with timer-based hedging
// disabled (negative delay): the primary's immediate connection
// failure must still fail over to the second choice — un-degraded, no
// local compute — before the degradation path is even considered.
func TestFailoverOnDeadPrimary(t *testing.T) {
	nodes := startNodes(t, 3, func(i int, o *Options) {
		o.HedgeDelay = -1
		o.ForwardTimeout = 2 * time.Second
	})
	seed := seedRouted(t, nodes[0].fwd, nodes[1].url, nodes[2].url)
	req := smallReq(seed)
	want := localPayload(t, req)

	nodes[1].kill()
	j, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if string(j.Payload()) != string(want) {
		t.Fatal("failover payload differs from single-node compute")
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[2].url || info.Degraded {
		t.Fatalf("ServeInfo = %+v, want un-degraded serve by second choice %s", info, nodes[2].url)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.Forwarded != 1 || h.DegradedServes != 0 {
		t.Fatalf("health = %+v, want 1 forwarded, 0 degraded", h)
	}
	if h.Hedge.Launched != 1 || h.Hedge.Wins != 1 {
		t.Fatalf("hedge counters = %+v, want the failover counted as a launched, won hedge", h.Hedge)
	}
	if runs := nodes[0].srv.Manager().Runs(); runs != 0 {
		t.Fatalf("requester ran %d sweeps locally, want 0 (failover, not degradation)", runs)
	}
}
