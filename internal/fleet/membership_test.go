package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"hbmvolt/internal/chaos"
)

func TestMembershipMutations(t *testing.T) {
	f, err := New(Options{Self: "http://n1:1", Peers: []string{"http://n2:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if v := f.MembershipVersion(); v != 1 {
		t.Fatalf("boot version = %d, want 1", v)
	}
	existing, _ := f.live.Load().peers["http://n2:1"]

	if ok, err := f.AddPeer("http://n3:1/"); err != nil || !ok {
		t.Fatalf("AddPeer = %v, %v; want a version-bumping add", ok, err)
	}
	if v := f.MembershipVersion(); v != 2 {
		t.Fatalf("version after add = %d, want 2", v)
	}
	// Idempotent re-add and self-add: no-ops, no version bump.
	if ok, err := f.AddPeer("http://n3:1"); err != nil || ok {
		t.Fatalf("duplicate AddPeer = %v, %v; want a no-op", ok, err)
	}
	if ok, err := f.AddPeer("http://n1:1"); err != nil || ok {
		t.Fatalf("self AddPeer = %v, %v; want a no-op", ok, err)
	}
	if _, err := f.AddPeer("not a url"); err == nil {
		t.Fatal("AddPeer must reject an unparseable node")
	}
	if v := f.MembershipVersion(); v != 2 {
		t.Fatalf("version after no-ops = %d, want still 2", v)
	}
	// The pre-existing peer's struct survived the mutation: breaker
	// state and counters never reset on unrelated churn.
	if got := f.live.Load().peers["http://n2:1"]; got != existing {
		t.Fatal("membership mutation rebuilt an unrelated peer's state")
	}

	if ok, err := f.RemovePeer("http://n2:1"); err != nil || !ok {
		t.Fatalf("RemovePeer = %v, %v; want a version-bumping remove", ok, err)
	}
	if v := f.MembershipVersion(); v != 3 {
		t.Fatalf("version after remove = %d, want 3", v)
	}
	if ok, err := f.RemovePeer("http://n2:1"); err != nil || ok {
		t.Fatalf("unknown RemovePeer = %v, %v; want a no-op", ok, err)
	}
	if _, err := f.RemovePeer("http://n1:1"); !errors.Is(err, ErrRemoveSelf) {
		t.Fatalf("self RemovePeer error = %v, want ErrRemoveSelf", err)
	}
	m := f.Membership()
	if m.Version != 3 || len(m.Nodes) != 2 || m.Nodes[0] != "http://n1:1" || m.Nodes[1] != "http://n3:1" {
		t.Fatalf("membership = %+v, want version 3 over {n1, n3}", m)
	}
}

// TestOwnerMovementOnJoinLeave pins the rendezvous churn guarantee the
// tentpole rests on: a join moves keys only TO the new node (~1/N of
// them), a leave moves only the leaver's keys — every other key keeps
// its owner, so caches stay hot through membership changes.
func TestOwnerMovementOnJoinLeave(t *testing.T) {
	f, err := New(Options{Self: "http://n1:1", Peers: []string{"http://n2:1", "http://n3:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const keys = 4000
	before := make([]string, keys)
	for k := range before {
		before[k] = f.Owner(uint64(k) * 0x9e3779b97f4a7c15)
	}

	if _, err := f.AddPeer("http://n4:1"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k := range before {
		after := f.Owner(uint64(k) * 0x9e3779b97f4a7c15)
		if after == before[k] {
			continue
		}
		if after != "http://n4:1" {
			t.Fatalf("key %d moved %s → %s on a join: keys may only move to the joiner", k, before[k], after)
		}
		moved++
	}
	// Expect ~1/4 of keys on the new node; allow a generous band.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("join moved %d/%d keys, want ~1/4", moved, keys)
	}

	joined := make([]string, keys)
	for k := range joined {
		joined[k] = f.Owner(uint64(k) * 0x9e3779b97f4a7c15)
	}
	if _, err := f.RemovePeer("http://n4:1"); err != nil {
		t.Fatal(err)
	}
	for k := range joined {
		after := f.Owner(uint64(k) * 0x9e3779b97f4a7c15)
		if joined[k] == "http://n4:1" {
			if after != before[k] {
				t.Fatalf("key %d landed on %s after the leave, want its pre-join owner %s", k, after, before[k])
			}
			continue
		}
		if after != joined[k] {
			t.Fatalf("key %d moved %s → %s although its owner stayed", k, joined[k], after)
		}
	}
}

// TestAdminHandler drives the membership admin API over HTTP: reads,
// mutations answering with the updated view, and the error cases.
func TestAdminHandler(t *testing.T) {
	f, err := New(Options{Self: "http://n1:1", Peers: []string{"http://n2:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts := httptest.NewServer(f.AdminHandler())
	defer ts.Close()

	getView := func(resp *http.Response, err error) Membership {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d", resp.StatusCode)
		}
		var m Membership
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	if m := getView(http.Get(ts.URL + "/v1/fleet/peers")); m.Version != 1 || len(m.Nodes) != 2 || m.Self != "http://n1:1" {
		t.Fatalf("GET view = %+v, want boot view over {n1, n2}", m)
	}

	body, _ := json.Marshal(map[string]string{"peer": "http://n3:1"})
	if m := getView(http.Post(ts.URL+"/v1/fleet/peers", "application/json", bytes.NewReader(body))); m.Version != 2 || len(m.Nodes) != 3 {
		t.Fatalf("POST view = %+v, want version 2 over 3 nodes", m)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/peers?peer="+url.QueryEscape("http://n2:1"), nil)
	if m := getView(http.DefaultClient.Do(req)); m.Version != 3 || len(m.Nodes) != 2 {
		t.Fatalf("DELETE view = %+v, want version 3 over 2 nodes", m)
	}

	for name, do := range map[string]func() (*http.Response, error){
		"post without body": func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/fleet/peers", "application/json", bytes.NewReader(nil))
		},
		"post bad node": func() (*http.Response, error) {
			b, _ := json.Marshal(map[string]string{"peer": "not a url"})
			return http.Post(ts.URL+"/v1/fleet/peers", "application/json", bytes.NewReader(b))
		},
		"delete without peer": func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/peers", nil)
			return http.DefaultClient.Do(req)
		},
		"delete self": func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/peers?peer="+url.QueryEscape("http://n1:1"), nil)
			return http.DefaultClient.Do(req)
		},
	} {
		resp, err := do()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	if v := f.MembershipVersion(); v != 3 {
		t.Fatalf("version after rejected requests = %d, want still 3", v)
	}
}

// TestMembershipChurnFaultPlan arms the churn chaos sites: a failed
// mutation must leave the view untouched (no version bump, no partial
// node list) and a failed join announcement must surface so the
// caller's retry loop gets another pass — first retry succeeds on all
// three sites.
func TestMembershipChurnFaultPlan(t *testing.T) {
	t.Run("mutations", func(t *testing.T) {
		plan := chaos.NewPlan().
			Set("fleet.membership.add", chaos.Fault{Err: errors.New("injected add failure"), Count: 1}).
			Set("fleet.membership.remove", chaos.Fault{Err: errors.New("injected remove failure"), Count: 1})
		defer chaos.Activate(plan)()
		f, err := New(Options{Self: "http://n1:1", Peers: []string{"http://n2:1"}})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()

		if _, err := f.AddPeer("http://n3:1"); err == nil {
			t.Fatal("armed add site must fail the mutation")
		}
		if v := f.MembershipVersion(); v != 1 {
			t.Fatalf("version after failed add = %d, want 1 (failed mutations must not bump)", v)
		}
		if ok, err := f.AddPeer("http://n3:1"); err != nil || !ok {
			t.Fatalf("add retry = %v, %v; want success once the fault window closed", ok, err)
		}
		if _, err := f.RemovePeer("http://n2:1"); err == nil {
			t.Fatal("armed remove site must fail the mutation")
		}
		if len(f.Membership().Nodes) != 3 {
			t.Fatal("failed remove must leave the node list intact")
		}
		if ok, err := f.RemovePeer("http://n2:1"); err != nil || !ok {
			t.Fatalf("remove retry = %v, %v; want success", ok, err)
		}
		if plan.Fired("fleet.membership.add") != 1 || plan.Fired("fleet.membership.remove") != 1 {
			t.Fatal("both mutation sites must have fired exactly once")
		}
	})

	t.Run("join-announce", func(t *testing.T) {
		plan := chaos.NewPlan().
			Set("fleet.join.announce", chaos.Fault{Err: errors.New("injected announce failure"), Count: 1})
		defer chaos.Activate(plan)()
		seeds := startNodes(t, 1, nil)
		joiner, err := New(Options{Self: "http://127.0.0.1:1", ForwardTimeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer joiner.Close()
		if n, err := joiner.Join(t.Context(), []string{seeds[0].url}); err == nil || n != 0 {
			t.Fatalf("Join under an armed announce site = %d, %v; want failure", n, err)
		}
		if n, err := joiner.Join(t.Context(), []string{seeds[0].url}); err != nil || n != 1 {
			t.Fatalf("Join retry = %d, %v; want the seed reached", n, err)
		}
		if len(joiner.Membership().Nodes) != 2 {
			t.Fatal("retried join must adopt the seed")
		}
	})
}

// TestJoinAdoptsSeedMembership runs the -join bootstrap against live
// nodes: the joiner announces itself to both seeds and walks away with
// the seeds' full node set; the seeds gained exactly the joiner.
func TestJoinAdoptsSeedMembership(t *testing.T) {
	seeds := startNodes(t, 2, nil)
	joiner, err := New(Options{Self: "http://127.0.0.1:1", ForwardTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	n, err := joiner.Join(t.Context(), []string{seeds[0].url, seeds[1].url})
	if err != nil || n != 2 {
		t.Fatalf("Join = %d, %v; want both seeds reached", n, err)
	}
	if m := joiner.Membership(); len(m.Nodes) != 3 {
		t.Fatalf("joiner membership = %+v, want all 3 nodes adopted", m)
	}
	for _, s := range seeds {
		m := s.fwd.Membership()
		if len(m.Nodes) != 3 || m.Version != 2 {
			t.Fatalf("seed %s membership = %+v, want 3 nodes at version 2", s.url, m)
		}
	}

	// No seed reachable: Join reports the failure so the daemon's retry
	// loop keeps trying instead of silently running solo.
	lone, err := New(Options{Self: "http://127.0.0.1:1", ForwardTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer lone.Close()
	if n, err := lone.Join(t.Context(), []string{"http://127.0.0.1:9"}); err == nil || n != 0 {
		t.Fatalf("Join against a dead seed = %d, %v; want an error", n, err)
	}
}
