// Powersweep regenerates the paper's Fig. 2 and Fig. 3 measurements —
// expressed as a declarative campaign spec instead of hand-wired sweep
// plumbing — and writes the data as CSV for external plotting. The
// campaign engine normalizes the scenario into a sweep request, runs it
// through the service-layer job manager (so an identical sweep
// elsewhere in the process would coalesce onto this computation), and
// returns the byte-stable result envelope this program decodes.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hbmvolt"
	"hbmvolt/internal/service"
)

func main() {
	// The whole experiment is data: one power scenario at full 10 mV
	// resolution, all five bandwidth points, with realistic monitor
	// noise — like the real measurement loop over PMBus + INA226.
	spec := hbmvolt.CampaignSpec{
		Name:        "powersweep-example",
		Description: "Fig. 2/3 power sweep at 10 mV resolution with monitor noise",
		Scenarios: []hbmvolt.CampaignScenario{{
			Name:    "fig2-fig3",
			Kind:    "power",
			Grid:    hbmvolt.PaperGrid(),
			Noise:   []float64{0.005},
			Samples: 10,
		}},
	}

	res, err := hbmvolt.RunCampaign(context.Background(), spec, hbmvolt.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}

	env, err := service.DecodeResult(res.Scenarios[0].Cells[0].Payload)
	if err != nil {
		log.Fatal(err)
	}
	sweep := env.Power

	const path = "fig2_fig3.csv"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := hbmvolt.WriteFig2CSV(f, sweep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(sweep.Points))

	// Headline numbers.
	for _, v := range []float64{0.98, 0.85} {
		s, err := sweep.SavingsAt(v, 32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("savings at %.2fV: %.2fx\n", v, s)
	}
	pt := sweep.At(0.85, 32)
	fmt.Printf("alpha*CL*f at 0.85V: %.3f of nominal (stuck cells stop switching)\n",
		pt.NormAlphaCLF)
	fmt.Printf("campaign key %s — resubmitting this spec anywhere returns these exact bytes\n",
		res.Manifest.Scenarios[0].Cells[0].Key)
}
