package power

import (
	"math"

	"hbmvolt/internal/prf"
)

// Noise models the measurement uncertainty of the board's sensing chain
// (INA226 quantization, regulator ripple, thermal drift). It is
// deterministic: the perturbation depends only on the seed and the
// measurement coordinates, so figure regeneration is reproducible while
// still showing the ±x% scatter visible in the paper's Fig. 3.
type Noise struct {
	// Seed selects the noise realization; 0 is valid.
	Seed uint64
	// Sigma is the relative standard deviation (e.g. 0.01 for 1%).
	// Zero disables the noise entirely.
	Sigma float64
}

// Apply perturbs a wattage measured at (v, util) in batch sample n.
func (n Noise) Apply(watts, v, util float64, sample int) float64 {
	if n.Sigma == 0 {
		return watts
	}
	h := prf.Hash5(n.Seed, math.Float64bits(v), math.Float64bits(util), uint64(sample), 0x9019)
	// Sum of four uniforms, centered: cheap approximately-normal draw
	// with variance 4/12, rescaled to unit variance.
	var sum float64
	for i := uint64(0); i < 4; i++ {
		sum += prf.Float64(prf.Hash2(h, i))
	}
	z := (sum - 2) / math.Sqrt(4.0/12.0)
	return watts * (1 + n.Sigma*z)
}
