package verify

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbmvolt/internal/campaign"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvidence loads the committed paper-repro smoke artifacts — the
// byte-pinned payloads a live smoke campaign reproduces exactly — and
// collects claim evidence from them.
func goldenEvidence(t *testing.T) *Evidence {
	t.Helper()
	return CollectEvidence(goldenEnvelopes(t))
}

func goldenEnvelopes(t *testing.T) []campaign.CellEnvelope {
	t.Helper()
	dir := filepath.Join("..", "..", "testdata", "campaign", "paper-repro-smoke")
	var envs []campaign.CellEnvelope
	for _, name := range []string{"fig2-power", "faultmap", "ecc-mitigation", "algorithm1", "algorithm1-exact"} {
		data, err := os.ReadFile(filepath.Join(dir, name+".ndjson"))
		if err != nil {
			t.Fatalf("reading golden artifact: %v", err)
		}
		list, err := campaign.DecodeArtifact(data)
		if err != nil {
			t.Fatalf("decoding %s: %v", name, err)
		}
		for i, env := range list {
			envs = append(envs, campaign.CellEnvelope{Scenario: name, Index: i, Envelope: env})
		}
	}
	return envs
}

func TestBandBoundaryIsPass(t *testing.T) {
	b := Band{Lo: 1.5, Hi: 2.5}
	for _, tc := range []struct {
		x    float64
		want bool
	}{
		{1.5, true}, // exactly on the lower boundary: PASS
		{2.5, true}, // exactly on the upper boundary: PASS
		{2.0, true},
		{math.Nextafter(1.5, 0), false},
		{math.Nextafter(2.5, 3), false},
		{math.NaN(), false},
		{math.Inf(1), false},
	} {
		if got := b.Contains(tc.x); got != tc.want {
			t.Errorf("Band%v.Contains(%v) = %v, want %v", b, tc.x, got, tc.want)
		}
		ck := check("c", tc.x, b)
		if ck.Pass != tc.want {
			t.Errorf("check(%v).Pass = %v, want %v", tc.x, ck.Pass, tc.want)
		}
	}
	if got := Exactly(7); !got.Contains(7) || got.Contains(7.0000001) {
		t.Errorf("Exactly(7) misbehaves: %+v", got)
	}
	if pb := PercentBand(2.3, 10); !pb.Contains(2.07) || !pb.Contains(2.53) || pb.Contains(2.069) {
		t.Errorf("PercentBand(2.3, 10) = %+v: boundaries must be inclusive", pb)
	}
}

func TestMAPETypedErrors(t *testing.T) {
	cases := []struct {
		name      string
		obs, tr   []float64
		wantInErr string
	}{
		{"length mismatch", []float64{1}, []float64{1, 2}, "length mismatch"},
		{"empty", nil, nil, "no points"},
		{"nan observed", []float64{math.NaN()}, []float64{1}, "not finite"},
		{"inf truth", []float64{1}, []float64{math.Inf(1)}, "not finite"},
		{"zero denominator", []float64{1, 2}, []float64{1, 0}, "zero denominator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MAPE(tc.obs, tc.tr)
			if err == nil {
				t.Fatalf("MAPE(%v, %v): want error", tc.obs, tc.tr)
			}
			var ee *EvalError
			if !errors.As(err, &ee) {
				t.Fatalf("MAPE error is %T, want *EvalError", err)
			}
			if !strings.Contains(err.Error(), tc.wantInErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantInErr)
			}
		})
	}
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatalf("MAPE happy path: %v", err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE = %v, want 10", got)
	}
}

func TestEvaluateMissingEvidenceIsTypedErrorNotPanic(t *testing.T) {
	rep := Evaluate(&Evidence{}, "empty", true)
	if rep.Claims == 0 || rep.Errored != rep.Claims || !rep.Failed() {
		t.Fatalf("empty evidence: got %d claims, %d errored, failed=%v; want all ERROR and failed",
			rep.Claims, rep.Errored, rep.Failed())
	}
	for _, v := range rep.Verdicts {
		if v.Status != StatusError || v.Error == "" {
			t.Errorf("claim %s: status %s error %q; want ERROR with message", v.Claim, v.Status, v.Error)
		}
	}
}

func TestEvaluateGoldenEvidenceConfirmsEveryClaim(t *testing.T) {
	rep := Evaluate(goldenEvidence(t), "paper-repro", true)
	if rep.Failed() {
		for _, v := range rep.Verdicts {
			if v.Status != StatusConfirmed {
				t.Errorf("claim %s: %s (%s)", v.Claim, v.Status, v.Error)
				for _, c := range v.Checks {
					if !c.Pass {
						t.Errorf("  check %s: %v outside [%v, %v]", c.Name, c.Observed, c.Band.Lo, c.Band.Hi)
					}
				}
			}
		}
		t.Fatalf("golden evidence must confirm every claim: %d refuted, %d errored", rep.Refuted, rep.Errored)
	}
	if rep.Claims < 6 {
		t.Fatalf("registry has %d claims; the verifier promises at least 6", rep.Claims)
	}

	blob, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("..", "..", "testdata", "verify", "verdicts.golden.json"), blob)

	var buf bytes.Buffer
	if err := WriteFindings(&buf, rep); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("..", "..", "testdata", "verify", "findings.golden.md"), buf.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden; run with -update after verifying the change", filepath.Base(path))
	}
}

// TestPerturbedPayloadRefutesDirectionalControl proves the gate trips:
// a payload whose fault counts dip as voltage drops — physically
// impossible under the model — must flip the directional-control claim
// to REFUTED and fail the report.
func TestPerturbedPayloadRefutesDirectionalControl(t *testing.T) {
	envs := goldenEnvelopes(t)
	perturbed := false
	for _, ce := range envs {
		r := ce.Envelope.Reliability
		if r == nil || len(r.Points) < 25 {
			continue
		}
		for i := 1; i < len(r.Points); i++ {
			prev := r.Points[i-1]
			if prev.MeanFlips >= 100 && !r.Points[i].Crashed {
				// A >2%-beyond-slack drop mid-curve.
				r.Points[i].MeanFlips = prev.MeanFlips * 0.5
				perturbed = true
				break
			}
		}
	}
	if !perturbed {
		t.Fatal("found no developed-region point to perturb")
	}
	rep := Evaluate(CollectEvidence(envs), "paper-repro", true)
	if !rep.Failed() {
		t.Fatal("perturbed payload did not trip the gate")
	}
	found := false
	for _, v := range rep.Verdicts {
		if v.Claim != "fault-onset-monotonic" {
			continue
		}
		found = true
		if v.Status != StatusRefuted {
			t.Fatalf("directional control is %s, want REFUTED", v.Status)
		}
		sawViolation := false
		for _, c := range v.Checks {
			if c.Name == "monotonic_violations" && !c.Pass && c.Observed >= 1 {
				sawViolation = true
			}
		}
		if !sawViolation {
			t.Errorf("REFUTED verdict does not count the monotonicity violation: %+v", v.Checks)
		}
	}
	if !found {
		t.Fatal("fault-onset-monotonic not in report")
	}
	if rep.Refuted == 0 {
		t.Error("report does not count the refuted claim")
	}
}

func TestFig4GroundTruthExportInSync(t *testing.T) {
	blob, err := fig4GroundTruthJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("..", "..", "testdata", "verify", "fig4_ground_truth.json"), blob)
}

func TestRunSmokeCampaignMatchesGoldenEvidence(t *testing.T) {
	if testing.Short() {
		t.Skip("live smoke campaign in -short mode")
	}
	rep, err := Run(t.Context(), Options{Smoke: true, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	live, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "verify", "verdicts.golden.json"))
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(live, golden) {
		t.Error("live smoke verify drifted from the golden verdicts; the campaign payloads or claim bands changed")
	}
}
