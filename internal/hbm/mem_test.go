package hbm

import (
	"testing"

	"hbmvolt/internal/pattern"
	"hbmvolt/internal/prf"
)

// refMemory is the dead-simple dense reference the sparse store is
// checked against.
type refMemory struct{ words []pattern.Word }

func newRefMemory(n uint64) *refMemory { return &refMemory{words: make([]pattern.Word, n)} }

func (r *refMemory) WriteUniform(start, count uint64, w pattern.Word) {
	for a := start; a < start+count; a++ {
		r.words[a] = w
	}
}

func wordFor(i uint64) pattern.Word { return pattern.Word{i, ^i, i * 3, i ^ 0xabc} }

func TestPagedMemoryAgainstReference(t *testing.T) {
	const words = 1 << 15
	m := newPagedMemory(words)
	ref := newRefMemory(words)
	src := prf.NewSource(42)
	for op := 0; op < 400; op++ {
		switch src.Intn(3) {
		case 0: // uniform range write
			start := uint64(src.Intn(words))
			count := uint64(src.Intn(words - int(start)))
			w := wordFor(uint64(src.Intn(7)))
			m.WriteUniform(start, count, w)
			ref.WriteUniform(start, count, w)
		case 1: // single word write
			a := uint64(src.Intn(words))
			w := wordFor(uint64(src.Intn(1000)))
			m.Write(a, w)
			ref.words[a] = w
		case 2: // full fill
			if src.Intn(10) == 0 {
				w := wordFor(uint64(src.Intn(5)))
				m.Fill(w)
				ref.WriteUniform(0, words, w)
			}
		}
	}
	for a := uint64(0); a < words; a++ {
		if got, want := m.Read(a), ref.words[a]; got != want {
			t.Fatalf("addr %d: %v, want %v", a, got, want)
		}
	}
	// Fill-run invariants: sorted, covering, merged.
	prev := uint64(0)
	for i, r := range m.fills {
		if r.Lo != prev || r.Hi <= r.Lo {
			t.Fatalf("fill run %d = %+v breaks coverage at %d", i, r, prev)
		}
		if i > 0 && m.fills[i-1].W == r.W {
			t.Fatalf("unmerged equal neighbours at run %d", i)
		}
		prev = r.Hi
	}
	if prev != words {
		t.Fatalf("fill runs end at %d, want %d", prev, words)
	}
}

func TestPagedMemoryRunsCoverExactly(t *testing.T) {
	const words = 1 << 15
	m := newPagedMemory(words)
	src := prf.NewSource(7)
	for op := 0; op < 120; op++ {
		if src.Intn(2) == 0 {
			start := uint64(src.Intn(words))
			m.WriteUniform(start, uint64(src.Intn(words-int(start))), wordFor(uint64(src.Intn(4))))
		} else {
			m.Write(uint64(src.Intn(words)), wordFor(uint64(src.Intn(100))))
		}
	}
	windows := [][2]uint64{{0, words}, {13, 29999}, {4096, 8192}, {4100, 4}, {words - 1, 1}}
	for _, win := range windows {
		next := win[0]
		m.Runs(win[0], win[1], func(runStart, runCount uint64, ws []pattern.Word, fill pattern.Word) {
			if runStart != next {
				t.Fatalf("window %v: run starts at %d, want %d", win, runStart, next)
			}
			if runCount == 0 {
				t.Fatalf("window %v: empty run at %d", win, runStart)
			}
			for i := uint64(0); i < runCount; i++ {
				want := m.Read(runStart + i)
				var got pattern.Word
				if ws != nil {
					got = ws[i]
				} else {
					got = fill
				}
				if got != want {
					t.Fatalf("window %v addr %d: run yields %v, Read says %v", win, runStart+i, got, want)
				}
			}
			next = runStart + runCount
		})
		if next != win[0]+win[1] {
			t.Fatalf("window %v: runs end at %d, want %d", win, next, win[0]+win[1])
		}
	}
}

func TestPagedMemoryUniformWriteIsSparse(t *testing.T) {
	const words = 8 << 20 // a full-size 256 MB pseudo channel
	m := newPagedMemory(words)
	m.WriteUniform(0, words, pattern.AllOnesWord)
	if n := m.AllocatedPages(); n != 0 {
		t.Fatalf("uniform fill materialized %d pages", n)
	}
	// A partial uniform overwrite still allocates nothing.
	m.WriteUniform(1000, 4<<20, pattern.AllZerosWord)
	if n := m.AllocatedPages(); n != 0 {
		t.Fatalf("partial uniform fill materialized %d pages", n)
	}
	if m.Read(999) != pattern.AllOnesWord || m.Read(1000) != pattern.AllZerosWord {
		t.Fatal("fill boundary wrong")
	}
	if m.Read(1000+4<<20) != pattern.AllOnesWord {
		t.Fatal("tail of old fill lost")
	}
	// Deviating words materialize pages; re-filling over them reclaims.
	m.Write(5000, wordFor(1))
	if m.AllocatedPages() != 1 {
		t.Fatal("deviating word did not materialize")
	}
	m.WriteUniform(0, words, pattern.AllZerosWord)
	if m.AllocatedPages() != 0 {
		t.Fatal("covered page not reclaimed")
	}
	if len(m.fills) != 1 {
		t.Fatalf("fills not merged: %d runs", len(m.fills))
	}
}
