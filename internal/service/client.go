package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a typed consumer of the sweep service API. The zero value
// is not usable; construct with NewClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8023".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Streaming calls hold a
	// connection open for the sweep's lifetime, so the client must not
	// impose an overall request timeout.
	HTTPClient *http.Client
}

// NewClient builds a client for a server root URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTPClient: http.DefaultClient}
}

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return resp, nil
}

func (c *Client) doJSON(ctx context.Context, method, path string, body io.Reader, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a sweep request and returns the job handle.
func (c *Client) Submit(ctx context.Context, req SweepRequest) (SubmitResponse, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	var out SubmitResponse
	err = c.doJSON(ctx, http.MethodPost, "/v1/sweeps", bytes.NewReader(blob), &out)
	return out, err
}

// Status fetches a job's current status (result payload not included).
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &out)
	return out, err
}

// Result fetches a completed job's raw payload bytes — the byte-stable
// body the cache contract promises. It fails with an *APIError (409)
// while the job is not done.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Stream follows a job's NDJSON event stream, invoking fn per event
// until the stream ends (terminal event), fn returns an error, or ctx
// is cancelled. It returns nil on a completed stream.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("service: decoding event %q: %w", line, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Wait streams events until the job reaches a terminal state and
// returns that state.
func (c *Client) Wait(ctx context.Context, id string) (JobState, error) {
	last := JobState("")
	err := c.Stream(ctx, id, func(e Event) error {
		if JobState(e.Type).terminal() {
			last = JobState(e.Type)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if last == "" {
		return "", fmt.Errorf("service: event stream for %s ended without a terminal event", id)
	}
	return last, nil
}

// Cancel requests cancellation and returns the job's status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.doJSON(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, &out)
	return out, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}
