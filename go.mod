module hbmvolt

go 1.24
