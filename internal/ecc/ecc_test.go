package ecc

import (
	"math"
	"testing"
	"testing/quick"

	"hbmvolt/internal/prf"
)

func TestEncodeDecodeClean(t *testing.T) {
	f := func(data uint64) bool {
		got, res := Decode(Encode(data))
		return got == data && res == OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleErrorCorrection(t *testing.T) {
	// Every single-bit flip in the codeword must be corrected.
	f := func(data uint64, pos uint8) bool {
		p := int(pos) % CodeBits
		cw := Encode(data).FlipBit(p)
		got, res := Decode(cw)
		return got == data && res == Corrected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleErrorExhaustive(t *testing.T) {
	const data = 0xdeadbeefcafef00d
	for p := 0; p < CodeBits; p++ {
		got, res := Decode(Encode(data).FlipBit(p))
		if res != Corrected || got != data {
			t.Fatalf("flip at %d: res=%v got=%x", p, res, got)
		}
	}
}

func TestDoubleErrorDetection(t *testing.T) {
	const data = 0x0123456789abcdef
	cw := Encode(data)
	for a := 0; a < CodeBits; a += 5 {
		for b := a + 1; b < CodeBits; b += 7 {
			_, res := Decode(cw.FlipBit(a).FlipBit(b))
			if res != Uncorrectable {
				t.Fatalf("double error (%d,%d) not detected: %v", a, b, res)
			}
		}
	}
}

func TestDoubleErrorExhaustiveSample(t *testing.T) {
	// Full exhaustive double-error check on one data value.
	const data = 0xaaaa5555f0f00f0f
	cw := Encode(data)
	for a := 0; a < CodeBits; a++ {
		for b := a + 1; b < CodeBits; b++ {
			if _, res := Decode(cw.FlipBit(a).FlipBit(b)); res != Uncorrectable {
				t.Fatalf("double (%d,%d) undetected", a, b)
			}
		}
	}
}

func TestStuckBitMayBeBenign(t *testing.T) {
	// A stuck-at matching the stored bit is harmless; the decode is OK.
	cw := Encode(0)
	// Find a position storing 0 and stick it at 0.
	for p := 0; p < CodeBits; p++ {
		if cw.Bit(p) == 0 {
			got, res := Decode(cw.SetBit(p, 0))
			if res != OK || got != 0 {
				t.Fatalf("benign stuck bit at %d misdecoded", p)
			}
			return
		}
	}
	t.Fatal("no zero bit found")
}

func TestCodewordBitOps(t *testing.T) {
	var c Codeword
	c = c.SetBit(3, 1).SetBit(70, 1)
	if c.Bit(3) != 1 || c.Bit(70) != 1 || c.Bit(4) != 0 {
		t.Fatalf("bit ops broken: %+v", c)
	}
	c = c.FlipBit(3)
	if c.Bit(3) != 0 {
		t.Fatal("flip broken")
	}
}

func TestResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Uncorrectable.String() != "uncorrectable" {
		t.Fatal("Result.String broken")
	}
}

func TestWordFailureProbShape(t *testing.T) {
	if WordFailureProb(0) != 0 {
		t.Fatal("zero rate must give zero failure")
	}
	if WordFailureProb(1) != 1 {
		t.Fatal("rate 1 must give failure 1")
	}
	// For tiny rates the failure probability is ~ (72 choose 2) r².
	r := 1e-6
	want := 72.0 * 71 / 2 * r * r
	got := WordFailureProb(r)
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("failure prob = %v, want ≈%v", got, want)
	}
	// Monotone in rate.
	prev := 0.0
	for _, r := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 0.1, 0.5} {
		p := WordFailureProb(r)
		if p < prev {
			t.Fatalf("failure prob not monotone at %v", r)
		}
		prev = p
	}
}

func TestCorrectableProbPeak(t *testing.T) {
	if CorrectableProb(0) != 0 || CorrectableProb(1) != 0 {
		t.Fatal("edge correctable probs wrong")
	}
	r := 1e-6
	want := 72 * r
	if got := CorrectableProb(r); math.Abs(got-want) > want*0.01 {
		t.Fatalf("correctable prob = %v, want ≈%v", got, want)
	}
}

// Monte Carlo: inject independent faults at a known rate and verify the
// analytic failure probability.
func TestWordFailureProbMonteCarlo(t *testing.T) {
	const rate = 0.01
	const trials = 30000
	src := prf.NewSource(7)
	fails := 0
	for i := 0; i < trials; i++ {
		faults := 0
		for b := 0; b < CodeBits; b++ {
			if src.Float64() < rate {
				faults++
			}
		}
		if faults >= 2 {
			fails++
		}
	}
	got := float64(fails) / trials
	want := WordFailureProb(rate)
	sd := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*sd {
		t.Fatalf("MC failure rate %v vs analytic %v (±%v)", got, want, 5*sd)
	}
}

// End-to-end: random data protected by ECC under random stuck-at faults;
// with at most one fault per codeword the data always survives.
func TestECCSurvivesSingleStuckBits(t *testing.T) {
	src := prf.NewSource(13)
	for trial := 0; trial < 2000; trial++ {
		data := src.Uint64()
		cw := Encode(data)
		pos := src.Intn(CodeBits)
		val := uint(src.Intn(2))
		got, res := Decode(cw.SetBit(pos, val))
		if res == Uncorrectable {
			t.Fatalf("single stuck bit uncorrectable at %d", pos)
		}
		if got != data {
			t.Fatalf("data corrupted by single stuck bit at %d", pos)
		}
	}
}

func TestOverheadValue(t *testing.T) {
	if Overhead != 0.125 {
		t.Fatalf("overhead = %v", Overhead)
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	cw := Encode(0xdeadbeef)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, res := Decode(cw); res != OK {
			b.Fatal("unexpected result")
		}
	}
}

func BenchmarkDecodeCorrect(b *testing.B) {
	cw := Encode(0xdeadbeef).FlipBit(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, res := Decode(cw); res != Corrected {
			b.Fatal("unexpected result")
		}
	}
}
