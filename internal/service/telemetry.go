package service

// Telemetry wiring for the sweep service: every instrument the manager
// exposes at /metrics lives here, and /healthz re-derives its counters
// from the same instruments — one source of truth, so the two surfaces
// cannot drift. Nothing registered here ever feeds into cache keys,
// payloads, or manifests (the determinism contract).

import (
	"hbmvolt/internal/faults"
	"hbmvolt/internal/telemetry"
)

// serviceMetrics bundles the manager's live instruments. Samplers over
// pre-existing counters (cache tiers, enum store, queue) are registered
// separately by registerSamplers once the manager exists.
type serviceMetrics struct {
	// submitted counts submissions by resolution: accepted (queued for
	// compute), coalesced (joined a live or done job), cache_hit
	// (answered from the result cache without a job).
	submitted *telemetry.CounterVec
	// completed counts jobs reaching a terminal state.
	completed *telemetry.CounterVec
	// rejected counts refused submissions by reason: rate (per-client
	// token bucket), queue_full, draining.
	rejected *telemetry.CounterVec
	// sweepRuns counts sweeps actually executed locally — the same
	// observable Manager.Runs and /healthz sweep_runs report.
	sweepRuns *telemetry.Counter
	// jobSeconds observes wall time per job execution (local or
	// forwarded), the histogram behind the admission median.
	jobSeconds *telemetry.Histogram
	// payloadBytes observes completed payload sizes.
	payloadBytes *telemetry.Histogram
	// cacheReq counts result-cache lookups per tier and outcome; the
	// composite cache increments it, /healthz sums it.
	cacheReq *telemetry.CounterVec
}

func newServiceMetrics(r *telemetry.Registry) *serviceMetrics {
	return &serviceMetrics{
		submitted: r.CounterVec("hbmvolt_jobs_submitted_total",
			"Sweep submissions by resolution: accepted (new job queued), coalesced (joined an identical live/done job), cache_hit (served from the result cache).",
			"outcome"),
		completed: r.CounterVec("hbmvolt_jobs_completed_total",
			"Jobs reaching a terminal state.", "state"),
		rejected: r.CounterVec("hbmvolt_admission_rejected_total",
			"Submissions refused by admission control: rate (per-client 429), queue_full (503), draining (503).",
			"reason"),
		sweepRuns: r.Counter("hbmvolt_sweep_runs_total",
			"Sweeps actually executed on this node (cache hits and coalesced submissions excluded)."),
		jobSeconds: r.Histogram("hbmvolt_job_duration_seconds",
			"Wall time per job execution, local compute and fleet forwards alike.",
			telemetry.LatencyBuckets()),
		payloadBytes: r.Histogram("hbmvolt_result_payload_bytes",
			"Marshaled result payload sizes of completed jobs.",
			telemetry.SizeBuckets()),
		cacheReq: r.CounterVec("hbmvolt_cache_requests_total",
			"Result-cache lookups per tier: a hit serves bytes from that tier, a miss falls through to the next tier (or to compute from the last).",
			"tier", "outcome"),
	}
}

// registerSamplers exposes the manager's live state — queue, job
// table, cache tiers, shared enum store — as sampler-backed families
// that read the very structures /healthz reports.
func (m *Manager) registerSamplers() {
	one := func(v float64) []telemetry.Sample { return []telemetry.Sample{{Value: v}} }
	m.reg.GaugeSampler("hbmvolt_queue_depth", "Jobs waiting in the bounded work queue.", nil,
		func() []telemetry.Sample { return one(float64(len(m.queue))) })
	m.reg.GaugeSampler("hbmvolt_queue_capacity", "Capacity of the bounded work queue.", nil,
		func() []telemetry.Sample { return one(float64(m.cfg.QueueDepth)) })
	m.reg.GaugeSampler("hbmvolt_workers", "Sweep worker pool size.", nil,
		func() []telemetry.Sample { return one(float64(m.cfg.Workers)) })
	m.reg.GaugeSampler("hbmvolt_jobs", "Jobs currently tracked, by lifecycle state.",
		[]string{"state"}, func() []telemetry.Sample {
			var counts [5]float64
			states := []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
			m.mu.Lock()
			for _, j := range m.jobs {
				for i, st := range states {
					if j.State() == st {
						counts[i]++
						break
					}
				}
			}
			m.mu.Unlock()
			out := make([]telemetry.Sample, len(states))
			for i, st := range states {
				out[i] = telemetry.Sample{Labels: []string{string(st)}, Value: counts[i]}
			}
			return out
		})

	m.reg.GaugeSampler("hbmvolt_cache_entries", "Entries retained per result-cache tier.",
		[]string{"tier"}, func() []telemetry.Sample { return m.cache.sampleTiers(func(t CacheTier) float64 { return float64(t.Len()) }) })
	m.reg.GaugeSampler("hbmvolt_cache_bytes", "Payload bytes retained per result-cache tier.",
		[]string{"tier"}, func() []telemetry.Sample { return m.cache.sampleTiers(func(t CacheTier) float64 { return float64(t.Bytes()) }) })
	m.reg.CounterSampler("hbmvolt_cache_evictions_total", "Capacity evictions per result-cache tier.",
		[]string{"tier"}, func() []telemetry.Sample {
			return m.cache.sampleTiers(func(t CacheTier) float64 {
				switch tt := t.(type) {
				case *MemoryTier:
					return float64(tt.Evictions())
				case *DiskTier:
					return float64(tt.Stats().Evicted)
				}
				return 0
			})
		})
	if disk, ok := m.cache.disk(); ok {
		m.reg.CounterSampler("hbmvolt_disk_recovered_entries_total",
			"Disk-tier entries the boot recovery scan verified and repopulated.", nil,
			func() []telemetry.Sample { return one(float64(disk.Stats().Recovered)) })
		m.reg.CounterSampler("hbmvolt_disk_discarded_entries_total",
			"Disk-tier entries discarded as torn or corrupt (boot scan and read-time verification).", nil,
			func() []telemetry.Sample { return one(float64(disk.Stats().Discarded)) })
	}

	faults.RegisterEnumMetrics(m.reg)
}

// Metrics returns the registry this manager's instruments live in —
// the one /metrics renders. Always non-nil (a private registry is
// created when Config.Metrics was nil).
func (m *Manager) Metrics() *telemetry.Registry { return m.reg }

// Recorder returns the manager's span recorder: every submission's
// trace events on this node, bounded ring, observability only.
func (m *Manager) Recorder() *telemetry.Recorder { return m.rec }
