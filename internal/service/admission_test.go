package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestLatencyTrackerMedian(t *testing.T) {
	tr := newLatencyTracker()
	if tr.Median() != 0 {
		t.Fatal("median of no observations should be 0")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 1000} {
		tr.Observe(d * time.Millisecond)
	}
	if got := tr.Median(); got != 30*time.Millisecond {
		t.Fatalf("median = %v, want 30ms (outlier-resistant)", got)
	}
	// The window slides: flood with 5ms jobs and the median follows.
	for i := 0; i < latencyWindow; i++ {
		tr.Observe(5 * time.Millisecond)
	}
	if got := tr.Median(); got != 5*time.Millisecond {
		t.Fatalf("median = %v after window turnover, want 5ms", got)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth, workers int
		median         time.Duration
		want           int
	}{
		{0, 1, 0, 1},                      // nothing observed: protocol floor
		{4, 1, 2 * time.Second, 8},        // 4 jobs × 2s each, one worker
		{4, 4, 2 * time.Second, 2},        // same backlog, 4 workers
		{3, 2, 500 * time.Millisecond, 1}, // ceil(3/2)×0.5s → 1s floor
		{1000, 1, time.Minute, 300},       // capped at 5 min
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.workers, c.median); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d, %v) = %d, want %d",
				c.depth, c.workers, c.median, got, c.want)
		}
	}
}

func TestRateLimiterBucket(t *testing.T) {
	l := newRateLimiter(1, 3, nil) // 1 token/s, burst 3
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retryAfter := l.Allow("alice")
	if ok {
		t.Fatal("4th immediate request admitted past burst")
	}
	if retryAfter < 1 {
		t.Fatalf("retryAfter = %d, want >= 1", retryAfter)
	}
	// Another client has its own bucket.
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("independent client denied")
	}
	// Time refills alice.
	now = now.Add(2 * time.Second)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("refilled bucket still denying")
	}
	if l.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", l.Denied())
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	var l *rateLimiter // the manager stores one even when disabled; nil must also be safe
	if ok, _ := l.Allow("x"); !ok {
		t.Fatal("nil limiter denied")
	}
	l = newRateLimiter(0, 0, nil)
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("x"); !ok {
			t.Fatal("disabled limiter denied")
		}
	}
}

// TestServerRateLimit429 drives the HTTP surface: a client over its
// bucket gets 429 with a Retry-After header; a distinct client is
// unaffected; /healthz counts the rejections.
func TestServerRateLimit429(t *testing.T) {
	srv := New(Config{Workers: 1, RatePerSec: 0.001, RateBurst: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"kind":"faultmap","grid":[0.90]}`
	post := func(client string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweeps", bytes.NewReader([]byte(body)))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if got := post("alice").StatusCode; got >= 300 {
		t.Fatalf("first submission: HTTP %d", got)
	}
	if got := post("alice").StatusCode; got >= 300 {
		t.Fatalf("second submission: HTTP %d", got)
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission: HTTP %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if got := post("bob").StatusCode; got >= 300 {
		t.Fatalf("distinct client caught in alice's bucket: HTTP %d", got)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.RateLimited != 1 {
		t.Fatalf("healthz rate_limited = %d, want 1", h.RateLimited)
	}
}

// TestManagerDrain pins the graceful-drain contract: once Drain
// begins, new submissions are refused with ErrDraining while the
// in-flight job is still given time to finish, and Drain returns nil
// when it does.
func TestManagerDrain(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	runner := newBlockingRunner()
	m.runSweep = runner.run

	j, _, _, err := m.Submit(SweepRequest{
		Kind: KindReliability, Scale: 1024, Ports: []int{0},
		Patterns: []string{"all1"}, Grid: []float64{0.90}, Batch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started

	drained := make(chan error, 1)
	go func() { drained <- m.Drain(t.Context()) }()
	for !m.Draining() {
		time.Sleep(time.Millisecond)
	}
	_, _, _, err = m.Submit(SweepRequest{
		Kind: KindReliability, Scale: 1024, Ports: []int{0},
		Patterns: []string{"all1"}, Grid: []float64{0.91}, Batch: 1,
	})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain = %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a job still running", err)
	default:
	}
	close(runner.release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil (in-flight job finished)", err)
	}
	if st := j.State(); st != StateDone {
		t.Fatalf("in-flight job ended %v, want done", st)
	}
}

// TestQueueFullRetryAfterDerived pins the satellite fix: the 503's
// Retry-After is computed from queue depth and observed latency, not
// hardcoded to "1".
func TestQueueFullRetryAfterDerived(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	m := srv.Manager()
	// Seed the latency window with known 2 s jobs and block the single
	// worker so submissions pile into the 1-deep queue.
	for i := 0; i < 8; i++ {
		m.latency.Observe(2 * time.Second)
	}
	runner := newBlockingRunner()
	defer close(runner.release)
	m.runSweep = runner.run

	post := func(grid string) *http.Response {
		body := `{"kind":"reliability","scale":1024,"ports":[0],"patterns":["all1"],"grid":[` + grid + `],"batch":1}`
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	post("0.90") // occupies the worker
	<-runner.started
	post("0.91") // occupies the 1-deep queue
	resp := post("0.92")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full submission: HTTP %d, want 503", resp.StatusCode)
	}
	// 1 queued + the incoming job at 2 s median on one worker → 4 s, and
	// definitely not the legacy hardcoded "1".
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After = %q, want an integer", resp.Header.Get("Retry-After"))
	}
	if ra != 4 {
		t.Fatalf("Retry-After = %d, want 4 (2 jobs × 2s median / 1 worker)", ra)
	}
}
