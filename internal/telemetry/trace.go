package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// HeaderTraceID is the HTTP header that carries a trace ID across
// fleet hops: minted at the edge that first sees a submission, adopted
// by every node it reaches afterwards.
const HeaderTraceID = "X-Hbmvolt-Trace-Id"

// NewTraceID mints a fresh 128-bit random trace ID in hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID
		// still traces correctly, it is just not unique.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is acceptable as an adopted trace ID:
// non-empty, bounded, and limited to URL- and log-safe characters.
// Anything else is discarded and re-minted at the receiving edge.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

type traceKey struct{}
type recorderKey struct{}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceOf returns the context's trace ID, or "".
func TraceOf(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// WithRecorder returns a context carrying the span recorder.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderOf returns the context's span recorder, or nil.
func RecorderOf(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}

// Record appends a span to the context's recorder under the context's
// trace ID. A context without a recorder makes this a no-op, so hot
// paths can call it unconditionally.
func Record(ctx context.Context, name string, attrs map[string]string) {
	rec := RecorderOf(ctx)
	if rec == nil {
		return
	}
	rec.Record(TraceOf(ctx), name, attrs)
}

// Span is one recorded event on a trace: where (node), what (name),
// and key=value detail. Spans are observability records only — they
// never influence sweep results.
type Span struct {
	Trace    string            `json:"trace"`
	Node     string            `json:"node,omitempty"`
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Time     time.Time         `json:"time"`
	Duration time.Duration     `json:"duration_ns,omitempty"`
}

// DefaultSpanCapacity bounds a recorder's ring buffer.
const DefaultSpanCapacity = 4096

// Recorder keeps a bounded ring of spans per node. The zero value is
// unusable; use NewRecorder. All methods are safe for concurrent use,
// and a nil *Recorder is a no-op sink.
type Recorder struct {
	node string
	cap  int

	mu    sync.Mutex
	spans []Span
	next  int
	full  bool
}

// NewRecorder returns a recorder labeled with the node's identity
// (fleet URL or "local"); capacity <= 0 uses DefaultSpanCapacity.
func NewRecorder(node string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Recorder{node: node, cap: capacity}
}

// Node returns the identity the recorder stamps on its spans.
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Record appends one span, evicting the oldest when full.
func (r *Recorder) Record(trace, name string, attrs map[string]string) {
	r.RecordSpan(Span{Trace: trace, Name: name, Attrs: attrs, Time: time.Now()})
}

// RecordSpan appends a fully formed span (the caller may pre-fill
// timing); the recorder stamps its node identity.
func (r *Recorder) RecordSpan(s Span) {
	if r == nil {
		return
	}
	s.Node = r.node
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) < r.cap && !r.full {
		r.spans = append(r.spans, s)
		if len(r.spans) == r.cap {
			r.full, r.next = true, 0
		}
		return
	}
	r.spans[r.next] = s
	r.next = (r.next + 1) % r.cap
}

// Spans returns all retained spans, oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.spans...)
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// ForTrace returns retained spans carrying the given trace ID, oldest
// first.
func (r *Recorder) ForTrace(id string) []Span {
	var out []Span
	for _, s := range r.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}
