// Package dramctl provides a command-level timing model of one HBM2
// pseudo channel: ACT/PRE/RD/WR/REF sequencing over a 16-bank (4 bank
// group) array with JEDEC-style timing parameters.
//
// The model is a timing *budget* estimator, not a cycle-accurate
// scheduler pipeline (see DESIGN.md non-goals): it tracks per-bank state,
// the shared data bus, and periodic all-bank refresh, and answers the
// question the experiments need — what fraction of the theoretical
// bandwidth a given access stream can sustain. With the default HBM2
// timings a sequential stream sustains ≈90% of peak, confirming the
// paper's observation that their 310 GB/s (of 429 GB/s theoretical) was
// limited by the FPGA-side AXI clocking, not by the DRAM.
package dramctl

import (
	"fmt"
	"sync"
)

// Timing holds the pseudo-channel timing parameters in memory-clock
// cycles (except the refresh interval, which is in nanoseconds in JEDEC
// tables and converted via the clock).
type Timing struct {
	ClockMHz float64 // memory clock; data rate is 2x (DDR)
	TRCDRD   int     // ACT to RD
	TRCDWR   int     // ACT to WR
	TRP      int     // PRE to ACT
	TRAS     int     // ACT to PRE
	TCCDL    int     // RD-to-RD same bank group
	TCCDS    int     // RD-to-RD different bank group
	TRTW     int     // read-to-write turnaround
	TWTR     int     // write-to-read turnaround
	TBurst   int     // data transfer cycles per 256-bit word (BL4 on 64b bus = 2)
	TRFCNs   float64 // refresh cycle time, ns
	TREFINs  float64 // refresh interval, ns
}

// DefaultTiming is an HBM2-1600/1700-class parameter set. The clock is
// chosen so that 32 pseudo channels × 64 bit × 2 × clock equals the
// 429 GB/s theoretical bandwidth the paper quotes for the VCU128.
func DefaultTiming() Timing {
	return Timing{
		ClockMHz: 838,
		TRCDRD:   12,
		TRCDWR:   8,
		TRP:      12,
		TRAS:     28,
		TCCDL:    3,
		TCCDS:    2,
		TRTW:     6,
		TWTR:     7,
		TBurst:   2,
		TRFCNs:   260,
		TREFINs:  3900,
	}
}

// Validate checks the parameter set.
func (t Timing) Validate() error {
	switch {
	case t.ClockMHz <= 0:
		return fmt.Errorf("dramctl: ClockMHz %v must be positive", t.ClockMHz)
	case t.TBurst <= 0:
		return fmt.Errorf("dramctl: TBurst must be positive")
	case t.TRCDRD < 0 || t.TRCDWR < 0 || t.TRP < 0 || t.TRAS < 0:
		return fmt.Errorf("dramctl: negative bank timing")
	case t.TCCDL < t.TCCDS:
		return fmt.Errorf("dramctl: TCCDL %d below TCCDS %d", t.TCCDL, t.TCCDS)
	case t.TRFCNs <= 0 || t.TREFINs <= 0 || t.TRFCNs >= t.TREFINs:
		return fmt.Errorf("dramctl: refresh timing inconsistent")
	}
	return nil
}

// PeakBandwidthGBs returns the pin bandwidth of one 64-bit pseudo
// channel.
func (t Timing) PeakBandwidthGBs() float64 {
	return t.ClockMHz * 1e6 * 2 * 8 / 1e9 // 2 transfers/clock x 8 bytes
}

// cyclesPerRefresh returns (tRFC, tREFI) in clock cycles.
func (t Timing) cyclesPerRefresh() (rfc, refi float64) {
	perNs := t.ClockMHz * 1e-3 // cycles per ns
	return t.TRFCNs * perNs, t.TREFINs * perNs
}

// Geometry describes the addressed array as the controller sees it.
type Geometry struct {
	BankGroups    int
	BanksPerGroup int
	WordsPerRow   uint64
}

// DefaultGeometry matches internal/hbm's organization.
var DefaultGeometry = Geometry{BankGroups: 4, BanksPerGroup: 4, WordsPerRow: 32}

// Op is a memory operation type.
type Op uint8

const (
	// Read moves a 256-bit word from the array to the bus.
	Read Op = iota
	// Write moves a 256-bit word from the bus to the array.
	Write
)

// Controller simulates command timing for one pseudo channel.
type Controller struct {
	t   Timing
	g   Geometry
	now float64 // current cycle

	banks []bankState
	// busFree is the cycle the shared data bus becomes free.
	busFree float64
	// lastOp/lastGroup track turnaround penalties.
	lastOp    Op
	hasLast   bool
	lastGroup int
	// nextRefresh is the cycle of the next all-bank refresh.
	nextRefresh float64

	stats Stats
}

type bankState struct {
	openRow  int64 // -1 = precharged
	readyAt  float64
	actAt    float64 // cycle of last ACT, for tRAS
	everOpen bool
}

// Stats aggregates what the controller did.
type Stats struct {
	Accesses   uint64
	RowHits    uint64
	RowMisses  uint64
	Refreshes  uint64
	DataCycles float64
	// Cycles is total elapsed cycles from first to last access.
	Cycles float64
}

// BusUtilization is the fraction of elapsed cycles the data bus carried
// data.
func (s Stats) BusUtilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return s.DataCycles / s.Cycles
}

// RowHitRate is the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// New builds a controller.
func New(t Timing, g Geometry) (*Controller, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if g.BankGroups <= 0 || g.BanksPerGroup <= 0 || g.WordsPerRow == 0 {
		return nil, fmt.Errorf("dramctl: invalid geometry %+v", g)
	}
	c := &Controller{t: t, g: g}
	c.banks = make([]bankState, g.BankGroups*g.BanksPerGroup)
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	_, refi := t.cyclesPerRefresh()
	c.nextRefresh = refi
	return c, nil
}

// decode splits a word address into (bank index, row, bank group). The
// mapping interleaves bank groups at word granularity — the arrangement
// the Xilinx HBM IP uses so that sequential streams dodge the tCCD_L
// same-group penalty — then walks columns, banks within a group, and
// finally rows.
func (c *Controller) decode(addr uint64) (bank int, row int64, group int) {
	bg := int(addr % uint64(c.g.BankGroups))
	rest := addr / uint64(c.g.BankGroups)
	blk := rest / c.g.WordsPerRow
	inGroup := int(blk % uint64(c.g.BanksPerGroup))
	row = int64(blk / uint64(c.g.BanksPerGroup))
	return inGroup*c.g.BankGroups + bg, row, bg
}

// Access schedules one 256-bit operation at addr and returns its
// completion cycle. Bank preparation (precharge/activate) proceeds on
// each bank's own timeline and overlaps with other banks' data
// transfers; only the column data phase serializes on the shared bus.
func (c *Controller) Access(addr uint64, op Op) float64 {
	c.refreshIfDue()
	bank, row, group := c.decode(addr)
	b := &c.banks[bank]

	// Earliest cycle the bank can issue the column command.
	avail := b.readyAt
	if b.everOpen && b.openRow == row {
		c.stats.RowHits++
	} else {
		c.stats.RowMisses++
		if b.everOpen {
			// Precharge no earlier than tRAS after activation.
			preAt := b.actAt + float64(c.t.TRAS)
			if preAt < avail {
				preAt = avail
			}
			avail = preAt + float64(c.t.TRP)
		}
		b.actAt = avail
		b.openRow = row
		b.everOpen = true
		if op == Read {
			avail += float64(c.t.TRCDRD)
		} else {
			avail += float64(c.t.TRCDWR)
		}
	}

	// Shared-bus contention and command spacing.
	start := avail
	if c.hasLast {
		gap := float64(c.t.TCCDS)
		if group == c.lastGroup {
			gap = float64(c.t.TCCDL)
		}
		if c.lastOp != op {
			if op == Write {
				gap = float64(c.t.TRTW)
			} else {
				gap = float64(c.t.TWTR)
			}
		}
		if min := c.busFree - float64(c.t.TBurst) + gap; start < min {
			start = min
		}
	}
	if start < c.busFree {
		start = c.busFree
	}

	done := start + float64(c.t.TBurst)
	c.busFree = done
	ccd := float64(c.t.TCCDL)
	if ccd < float64(c.t.TBurst) {
		ccd = float64(c.t.TBurst)
	}
	b.readyAt = start + ccd
	c.now = done
	c.hasLast = true
	c.lastOp = op
	c.lastGroup = group

	c.stats.Accesses++
	c.stats.DataCycles += float64(c.t.TBurst)
	c.stats.Cycles = done
	return done
}

// bulkExactThreshold is the range length below which AccessRange simply
// loops Access — exact scheduling is cheap there and small unit-test
// streams keep their precise timing.
const bulkExactThreshold = 16384

// bulkWarmup and bulkWindow size the one-off calibration run behind
// AccessRange: warm the bank state machine, then measure the steady
// cycles-per-access over a window long enough to amortize several
// refresh intervals.
const (
	bulkWarmup = 2048
	bulkWindow = 16384
)

// steadyState is the calibrated behaviour of a sequential stream.
type steadyState struct {
	cyclesPerOp float64
	hitRate     float64
}

type steadyKey struct {
	t  Timing
	g  Geometry
	op Op
}

var steadyCache sync.Map // steadyKey -> steadyState

// steadyFor measures (once per timing/geometry/op combination) the
// steady-state cost of a sequential word stream, including amortized
// refresh stalls and row turnover.
func steadyFor(t Timing, g Geometry, op Op) steadyState {
	key := steadyKey{t, g, op}
	if v, ok := steadyCache.Load(key); ok {
		return v.(steadyState)
	}
	c := &Controller{t: t, g: g}
	c.banks = make([]bankState, g.BankGroups*g.BanksPerGroup)
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	_, refi := t.cyclesPerRefresh()
	c.nextRefresh = refi
	for a := uint64(0); a < bulkWarmup; a++ {
		c.Access(a, op)
	}
	start, hits := c.now, c.stats.RowHits
	for a := uint64(bulkWarmup); a < bulkWarmup+bulkWindow; a++ {
		c.Access(a, op)
	}
	st := steadyState{
		cyclesPerOp: (c.now - start) / bulkWindow,
		hitRate:     float64(c.stats.RowHits-hits) / bulkWindow,
	}
	steadyCache.Store(key, st)
	return st
}

// AccessRange schedules count sequential 256-bit operations starting at
// start and returns the completion cycle of the last one. Short ranges
// are scheduled exactly; long ones advance the clock at the calibrated
// steady-state rate (one multiplication instead of count schedule
// steps), which keeps statistics and elapsed time representative while
// making full pseudo-channel macros O(1). This is the bulk data path's
// timing model; per-word Access remains the exact reference.
func (c *Controller) AccessRange(start, count uint64, op Op) float64 {
	if count == 0 {
		return c.now
	}
	if count <= bulkExactThreshold {
		var done float64
		for a := start; a < start+count; a++ {
			done = c.Access(a, op)
		}
		return done
	}
	st := steadyFor(c.t, c.g, op)
	c.refreshIfDue()
	base := c.now
	if c.busFree > base {
		base = c.busFree
	}
	done := base + st.cyclesPerOp*float64(count)

	// Advance the refresh schedule past the bulk window; its stall time
	// is already amortized into cyclesPerOp.
	_, refi := c.t.cyclesPerRefresh()
	for c.nextRefresh <= done {
		c.nextRefresh += refi
		c.stats.Refreshes++
	}

	// Leave the bank state consistent with "the stream just ended here".
	last := start + count - 1
	bank, row, group := c.decode(last)
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].everOpen = false
		if c.banks[i].readyAt < done {
			c.banks[i].readyAt = done
		}
	}
	c.banks[bank].openRow = row
	c.banks[bank].everOpen = true
	c.banks[bank].actAt = done

	hits := uint64(st.hitRate * float64(count))
	if hits > count {
		hits = count
	}
	c.stats.Accesses += count
	c.stats.RowHits += hits
	c.stats.RowMisses += count - hits
	c.stats.DataCycles += float64(c.t.TBurst) * float64(count)
	c.stats.Cycles = done
	c.now, c.busFree = done, done
	c.hasLast = true
	c.lastOp = op
	c.lastGroup = group
	return done
}

// refreshIfDue stalls everything for tRFC when the refresh interval
// elapses.
func (c *Controller) refreshIfDue() {
	rfc, refi := c.t.cyclesPerRefresh()
	for c.now >= c.nextRefresh || c.busFree >= c.nextRefresh {
		end := c.nextRefresh + rfc
		if c.now < end {
			c.now = end
		}
		if c.busFree < end {
			c.busFree = end
		}
		for i := range c.banks {
			c.banks[i].openRow = -1
			c.banks[i].everOpen = false
			if c.banks[i].readyAt < end {
				c.banks[i].readyAt = end
			}
		}
		c.stats.Refreshes++
		c.nextRefresh += refi
	}
}

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ElapsedSeconds converts the controller's elapsed cycles to seconds.
func (c *Controller) ElapsedSeconds() float64 {
	return c.stats.Cycles / (c.t.ClockMHz * 1e6)
}

// SustainedBandwidthGBs runs n sequential word operations from base and
// reports the sustained bandwidth in GB/s. It is the number the AXI
// layer compares its own clock-limited rate against.
func SustainedBandwidthGBs(t Timing, g Geometry, n uint64, op Op) (float64, Stats, error) {
	c, err := New(t, g)
	if err != nil {
		return 0, Stats{}, err
	}
	for addr := uint64(0); addr < n; addr++ {
		c.Access(addr, op)
	}
	sec := c.ElapsedSeconds()
	if sec == 0 {
		return 0, c.stats, nil
	}
	bytes := float64(n) * 32
	return bytes / sec / 1e9, c.stats, nil
}
