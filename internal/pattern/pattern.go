// Package pattern provides the 256-bit data words exchanged over the HBM
// AXI ports and the test data patterns used by the reliability
// experiments.
//
// The paper's Algorithm 1 tests with all-1s and all-0s, which expose
// 1-to-0 and 0-to-1 bit flips respectively. The package also carries the
// classical march-test style patterns (checkerboard, walking 1/0,
// address-in-data, pseudo-random) so that a downstream user can probe
// coupling behaviour beyond the paper's scope.
package pattern

import (
	"fmt"
	"math/bits"

	"hbmvolt/internal/prf"
)

// WordBits is the width of one AXI-port data beat: 256 bits, matching the
// Xilinx HBM IP 4:1 ratio over a 64-bit pseudo channel.
const WordBits = 256

// WordBytes is WordBits expressed in bytes.
const WordBytes = WordBits / 8

// Word is one 256-bit data beat, stored as four little-endian 64-bit lanes
// (lane 0 holds bits 0..63).
type Word [4]uint64

// Bit reports bit i of the word (0 <= i < WordBits).
func (w Word) Bit(i int) uint {
	return uint(w[i>>6]>>(uint(i)&63)) & 1
}

// SetBit returns a copy of w with bit i set to v (0 or 1).
func (w Word) SetBit(i int, v uint) Word {
	mask := uint64(1) << (uint(i) & 63)
	if v == 0 {
		w[i>>6] &^= mask
	} else {
		w[i>>6] |= mask
	}
	return w
}

// OnesCount returns the number of set bits in the word.
func (w Word) OnesCount() int {
	return bits.OnesCount64(w[0]) + bits.OnesCount64(w[1]) +
		bits.OnesCount64(w[2]) + bits.OnesCount64(w[3])
}

// Xor returns the bitwise XOR of two words.
func (w Word) Xor(o Word) Word {
	return Word{w[0] ^ o[0], w[1] ^ o[1], w[2] ^ o[2], w[3] ^ o[3]}
}

// And returns the bitwise AND of two words.
func (w Word) And(o Word) Word {
	return Word{w[0] & o[0], w[1] & o[1], w[2] & o[2], w[3] & o[3]}
}

// AndNot returns w &^ o.
func (w Word) AndNot(o Word) Word {
	return Word{w[0] &^ o[0], w[1] &^ o[1], w[2] &^ o[2], w[3] &^ o[3]}
}

// Or returns the bitwise OR of two words.
func (w Word) Or(o Word) Word {
	return Word{w[0] | o[0], w[1] | o[1], w[2] | o[2], w[3] | o[3]}
}

// Not returns the bitwise complement of the word.
func (w Word) Not() Word {
	return Word{^w[0], ^w[1], ^w[2], ^w[3]}
}

// IsZero reports whether every bit of the word is clear.
func (w Word) IsZero() bool {
	return w[0]|w[1]|w[2]|w[3] == 0
}

// String renders the word as four hex lanes, most-significant lane first.
func (w Word) String() string {
	return fmt.Sprintf("%016x_%016x_%016x_%016x", w[3], w[2], w[1], w[0])
}

// AllOnesWord is the all-1s data beat.
var AllOnesWord = Word{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}

// AllZerosWord is the all-0s data beat.
var AllZerosWord = Word{}

// A Pattern generates the expected data word for each word address of a
// test region. Patterns must be pure functions of the address so that the
// read-back check can regenerate expectations without storing them.
type Pattern interface {
	// Word returns the data beat to write at word address addr.
	Word(addr uint64) Word
	// Name returns a short stable identifier (used in reports/CSV).
	Name() string
}

// Flips classifies the mismatch between an expected and an observed word.
type Flips struct {
	OneToZero int // bits written 1, read 0
	ZeroToOne int // bits written 0, read 1
}

// Total returns the total number of flipped bits.
func (f Flips) Total() int { return f.OneToZero + f.ZeroToOne }

// Add accumulates o into f.
func (f *Flips) Add(o Flips) {
	f.OneToZero += o.OneToZero
	f.ZeroToOne += o.ZeroToOne
}

// Compare counts the 1→0 and 0→1 flips between the expected and observed
// word.
func Compare(expected, observed Word) Flips {
	diff := expected.Xor(observed)
	return Flips{
		OneToZero: diff.And(expected).OnesCount(),
		ZeroToOne: diff.AndNot(expected).OnesCount(),
	}
}

type uniform struct {
	w    Word
	name string
}

func (u uniform) Word(uint64) Word { return u.w }
func (u uniform) Name() string     { return u.name }
func (u uniform) OnesFraction() float64 {
	return float64(u.w.OnesCount()) / WordBits
}

// DensityPattern is implemented by patterns whose average fraction of
// 1 bits per word is known in closed form. Aggregate fault paths (the
// shared enumeration's high-rate segments) use the density to classify
// stuck cells into 1→0 vs 0→1 flips without materializing words: a
// stuck-at-0 cell flips only where the pattern wrote a 1.
type DensityPattern interface {
	Pattern
	// OnesFraction is the average fraction of 1 bits per word, in [0,1].
	OnesFraction() float64
}

// OnesFraction returns p's average 1-bit density when it is known in
// closed form. Every built-in pattern implements it; a custom pattern
// that does not is rejected by density-dependent paths rather than
// silently approximated.
func OnesFraction(p Pattern) (float64, bool) {
	if d, ok := p.(DensityPattern); ok {
		return d.OnesFraction(), true
	}
	return 0, false
}

// UniformWord reports whether p writes the same word at every address,
// returning that word when it does. Bulk data paths use this to express
// a whole region as a single fill instead of materializing every word;
// address-dependent patterns return false and take the word-by-word
// fallback.
func UniformWord(p Pattern) (Word, bool) {
	if u, ok := p.(uniform); ok {
		return u.w, true
	}
	return Word{}, false
}

// AllOnes is the paper's 1-to-0 flip probe: every bit written as 1.
func AllOnes() Pattern { return uniform{AllOnesWord, "all1"} }

// AllZeros is the paper's 0-to-1 flip probe: every bit written as 0.
func AllZeros() Pattern { return uniform{AllZerosWord, "all0"} }

// Checkerboard alternates 0xAA.. and 0x55.. words by address parity,
// stressing inter-cell coupling.
func Checkerboard() Pattern { return checker{} }

type checker struct{}

func (checker) Word(addr uint64) Word {
	const a = 0xaaaaaaaaaaaaaaaa
	const b = 0x5555555555555555
	if addr&1 == 0 {
		return Word{a, a, a, a}
	}
	return Word{b, b, b, b}
}
func (checker) Name() string          { return "checker" }
func (checker) OnesFraction() float64 { return 0.5 }

// WalkingOnes sets a single rotating 1 bit per word, all else 0.
func WalkingOnes() Pattern { return walking{one: true} }

// WalkingZeros clears a single rotating bit per word, all else 1.
func WalkingZeros() Pattern { return walking{one: false} }

type walking struct{ one bool }

func (p walking) Word(addr uint64) Word {
	var w Word
	w = w.SetBit(int(addr%WordBits), 1)
	if !p.one {
		w = w.Not()
	}
	return w
}

func (p walking) Name() string {
	if p.one {
		return "walk1"
	}
	return "walk0"
}

func (p walking) OnesFraction() float64 {
	if p.one {
		return 1.0 / WordBits
	}
	return (WordBits - 1.0) / WordBits
}

// AddressInData writes the word address into each 64-bit lane, a classic
// probe for address-decoder faults.
func AddressInData() Pattern { return addrData{} }

type addrData struct{}

func (addrData) Word(addr uint64) Word {
	return Word{addr, ^addr, addr, ^addr}
}
func (addrData) Name() string { return "addr" }

// OnesFraction: each lane pair (addr, ^addr) carries exactly 64 ones.
func (addrData) OnesFraction() float64 { return 0.5 }

// Random is a reproducible pseudo-random pattern derived from a seed; two
// Random patterns with the same seed generate identical data.
func Random(seed uint64) Pattern { return random{seed} }

type random struct{ seed uint64 }

func (r random) Word(addr uint64) Word {
	return Word{
		prf.Hash3(r.seed, addr, 0),
		prf.Hash3(r.seed, addr, 1),
		prf.Hash3(r.seed, addr, 2),
		prf.Hash3(r.seed, addr, 3),
	}
}
func (r random) Name() string        { return fmt.Sprintf("rand%d", r.seed) }
func (random) OnesFraction() float64 { return 0.5 }

// ByName returns the pattern with the given Name. It recognizes the
// pattern vocabulary used by the CLI: all1, all0, checker, walk1, walk0,
// addr, and randN.
func ByName(name string) (Pattern, error) {
	switch name {
	case "all1":
		return AllOnes(), nil
	case "all0":
		return AllZeros(), nil
	case "checker":
		return Checkerboard(), nil
	case "walk1":
		return WalkingOnes(), nil
	case "walk0":
		return WalkingZeros(), nil
	case "addr":
		return AddressInData(), nil
	}
	var seed uint64
	if n, err := fmt.Sscanf(name, "rand%d", &seed); err == nil && n == 1 {
		return Random(seed), nil
	}
	return nil, fmt.Errorf("pattern: unknown pattern %q", name)
}
