package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// setFlag mutates a CLI flag for one test and restores the previous
// value afterwards, so tests never leak flag state into each other.
func setFlag[T any](t *testing.T, p *T, v T) {
	t.Helper()
	old := *p
	*p = v
	t.Cleanup(func() { *p = old })
}

// silenceStdout redirects os.Stdout to /dev/null for the test and
// restores it afterwards.
func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunAllCommands(t *testing.T) {
	silenceStdout(t)
	setFlag(t, flagScale, 1024)
	setFlag(t, flagNoise, 0)
	setFlag(t, flagBatch, 2)
	setFlag(t, flagVolts, 0.90)
	commands := []string{
		"info", "fig2", "fig3", "fig4", "fig5", "fig6",
		"ecc", "temp", "capacity", "bandwidth",
		"tradeoff", "reliability",
	}
	for _, cmd := range commands {
		if err := run(cmd); err != nil {
			t.Fatalf("command %q: %v", cmd, err)
		}
	}
}

// TestReliabilityFullSweep exercises the default reliability mode: the
// whole voltage ladder on every port (scaled down here so the unit test
// stays fast; the full-capacity sweep is the CLI default).
func TestReliabilityFullSweep(t *testing.T) {
	silenceStdout(t)
	setFlag(t, flagScale, 1024)
	setFlag(t, flagNoise, 0)
	setFlag(t, flagBatch, 2)
	setFlag(t, flagVolts, 0) // full 1.20V→0.81V sweep (the default)
	if err := run("reliability"); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a temp file and
// returns everything fn wrote to it.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	old := os.Stdout
	os.Stdout = f
	ferr := fn()
	os.Stdout = old
	if ferr != nil {
		t.Fatal(ferr)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestReliabilityWorkerCountEquality pins the -j contract: the sharded
// sweep's stdout (tables included) is byte-identical at every worker
// count — the progress line goes to stderr precisely so this holds.
func TestReliabilityWorkerCountEquality(t *testing.T) {
	setFlag(t, flagScale, 1024)
	setFlag(t, flagNoise, 0)
	setFlag(t, flagBatch, 2)
	setFlag(t, flagVolts, 0) // full 1.20V→0.81V sweep
	run1 := func() string {
		setFlag(t, flagJ, 1)
		return captureStdout(t, func() error { return run("reliability") })
	}
	runN := func(j int) string {
		setFlag(t, flagJ, j)
		return captureStdout(t, func() error { return run("reliability") })
	}
	want := run1()
	if !strings.Contains(want, "Algorithm 1") {
		t.Fatalf("unexpected output: %.80s", want)
	}
	for _, j := range []int{2, 8} {
		got := runN(j)
		// The header names the worker count; everything below it — every
		// table row — must match byte for byte.
		wantBody := want[strings.Index(want, ":\n"):]
		gotBody := got[strings.Index(got, ":\n"):]
		if gotBody != wantBody {
			t.Fatalf("-j %d output differs from -j 1:\n--- j=1 ---\n%s\n--- j=%d ---\n%s",
				j, wantBody, j, gotBody)
		}
	}
}

// TestReliabilityExactMode covers the -exact escape hatch.
func TestReliabilityExactMode(t *testing.T) {
	silenceStdout(t)
	setFlag(t, flagScale, 1024)
	setFlag(t, flagBatch, 2)
	setFlag(t, flagVolts, 0.90)
	setFlag(t, flagExact, true)
	if err := run("reliability"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	silenceStdout(t)
	err := run("bogus")
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCSVExport(t *testing.T) {
	silenceStdout(t)
	setFlag(t, flagScale, 1024)
	setFlag(t, flagNoise, 0)
	path := filepath.Join(t.TempDir(), "fig2.csv")
	setFlag(t, flagCSV, path)
	if err := run("fig2"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "volts,ports,") {
		t.Fatalf("csv content: %.60s", data)
	}
}

func TestRunJSONExport(t *testing.T) {
	silenceStdout(t)
	setFlag(t, flagScale, 1024)
	setFlag(t, flagNoise, 0)
	path := filepath.Join(t.TempDir(), "fig2.ndjson")
	setFlag(t, flagJSON, path)
	if err := run("fig2"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"volts":`) {
		t.Fatalf("json content: %.60s", data)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is not a JSON object: %q", i, line)
		}
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		set  func(t *testing.T)
		want string // substring of the error; "" means valid
	}{
		{"defaults", func(t *testing.T) {}, ""},
		{"scale zero", func(t *testing.T) { setFlag(t, flagScale, 0) }, "power of two"},
		{"scale not pow2", func(t *testing.T) { setFlag(t, flagScale, 3) }, "power of two"},
		{"scale pow2 ok", func(t *testing.T) { setFlag(t, flagScale, 4096) }, ""},
		{"batch zero", func(t *testing.T) { setFlag(t, flagBatch, 0) }, "-batch"},
		{"batch negative", func(t *testing.T) { setFlag(t, flagBatch, -2) }, "-batch"},
		{"j zero", func(t *testing.T) { setFlag(t, flagJ, 0) }, "-j"},
		{"noise negative", func(t *testing.T) { setFlag(t, flagNoise, -0.1) }, "-noise"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.set(t)
			err := validateFlags()
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestTradeoffInfeasible(t *testing.T) {
	silenceStdout(t)
	setFlag(t, flagScale, 1024)
	setFlag(t, flagTol, 0)
	setFlag(t, flagPCs, 33)
	if err := run("tradeoff"); err == nil {
		t.Fatal("impossible plan accepted")
	}
}

func TestGridAround(t *testing.T) {
	g := gridAround(1.00, 0.95)
	if len(g) != 6 {
		t.Fatalf("grid length %d", len(g))
	}
	if g[0] != 1.00 || g[5] != 0.95 {
		t.Fatalf("grid endpoints %v..%v", g[0], g[5])
	}
}

// TestCampaignCommand runs the campaign subcommand end to end on a
// small spec file: artifacts land in -out, rerunning reproduces them
// byte for byte, and -render prints the figure suite from the payloads.
func TestCampaignCommand(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
		"name": "cli-test",
		"scenarios": [
			{"name": "rel", "kind": "reliability", "grid": [0.90, 0.89],
			 "ports": [18], "batch": 2},
			{"name": "ecc", "kind": "ecc-study", "grid": [0.95, 0.90]}
		]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(dir, "out1")
	setFlag(t, flagSpec, specPath)
	setFlag(t, flagOut, out1)
	setFlag(t, flagJobs, 2)
	setFlag(t, flagRender, true)
	if err := run("campaign"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.json", "rel.ndjson", "ecc.ndjson"} {
		if _, err := os.Stat(filepath.Join(out1, name)); err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
	}

	out2 := filepath.Join(dir, "out2")
	setFlag(t, flagOut, out2)
	setFlag(t, flagJ, 8)
	if err := run("campaign"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.json", "rel.ndjson", "ecc.ndjson"} {
		a, err := os.ReadFile(filepath.Join(out1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(out2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs across runs", name)
		}
	}
}

// TestCampaignBadSpec covers the unknown-spec error path.
func TestCampaignBadSpec(t *testing.T) {
	silenceStdout(t)
	setFlag(t, flagSpec, "no-such-campaign")
	if err := run("campaign"); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}
