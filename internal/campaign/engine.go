package campaign

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hbmvolt/internal/report"
	"hbmvolt/internal/service"
	"hbmvolt/internal/telemetry"
)

// Options parameterizes a campaign run.
type Options struct {
	// Jobs is the number of sweeps executing concurrently (the job
	// manager's worker count; default 2).
	Jobs int
	// Fleet is the per-sweep board-fleet size hint applied to every
	// submitted cell (default 1, sequential). Results are bit-identical
	// at every fleet size, so Fleet never appears in cache keys,
	// manifests or artifacts.
	Fleet int
	// OnCell, when non-nil, is called after each completed (cell,
	// repeat) execution with monotone counters.
	OnCell func(done, total int)
	// Journal, when non-empty, is the path of the campaign's checkpoint
	// journal (see journal.go): completed cells are recorded durably as
	// the campaign runs, and a rerun over the same journal resumes —
	// journaled cells still present in the manager's cache are served
	// from it, everything else is recomputed — yielding a manifest
	// byte-identical to an uninterrupted run's. Checkpointing pairs with
	// a durable cache (CacheDir here, or a daemon manager opened with
	// one): without it a restarted process has nothing to resume from
	// and recomputes every cell.
	Journal string
	// CacheDir, when non-empty, backs Run's private manager with the
	// durable disk cache tier rooted there (service.Config.CacheDir), so
	// computed cells survive a crash. Ignored by Execute, which uses the
	// caller's manager.
	CacheDir string
	// DiskCacheBytes bounds the disk tier (0 = unbounded).
	DiskCacheBytes int64
	// Metrics, when non-nil, is the telemetry registry Run's private
	// manager reports into — the hook the CLI's -metrics dump uses.
	// Ignored by Execute, which reports into the caller's manager
	// registry.
	Metrics *telemetry.Registry
	// TraceID, when non-empty, rides every cell submission as its
	// observability trace (see internal/telemetry): the cells' job.*,
	// cache.*, enum.*, and fleet.* spans all carry it, so one campaign
	// is followable across coalescing, cache tiers, and fleet forwards.
	// Strictly write-beside: it never affects cache keys, manifests, or
	// payload bytes.
	TraceID string
	// SharedEnumeration runs the campaign through the sweep planner:
	// reliability cells are grouped by their (fault-model fingerprint ×
	// voltage grid × sampling mode) physics sub-key, switched to
	// shared-enumeration execution, and scheduled group-adjacent so each
	// group's (voltage, port, rep) stuck-cell enumerations are computed
	// once for the whole campaign (see planner.go). Planned manifests
	// carry a "plan" section and are byte-identical across Jobs/Fleet
	// settings, like unplanned ones — but they are a different (shared,
	// separately golden-pinned) realization, so planned and unplanned
	// runs of one spec do not share cache entries.
	SharedEnumeration bool
}

// Manifest is the deterministic campaign summary: cells in spec order,
// each with its cache key and the SHA-256 of its payload bytes. Two
// runs of the same spec — any worker count, any fleet size, fresh or
// cache-served — produce byte-identical manifests.
type Manifest struct {
	Campaign     string `json:"campaign"`
	Description  string `json:"description,omitempty"`
	Cells        int    `json:"cells"`
	UniqueSweeps int    `json:"unique_sweeps"`
	// Plan documents the sweep planner's computation-sharing schedule;
	// present only for campaigns run with Options.SharedEnumeration.
	Plan      *Plan              `json:"plan,omitempty"`
	Scenarios []ScenarioManifest `json:"scenarios"`
}

// ScenarioManifest is one scenario's section of the manifest.
type ScenarioManifest struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Artifact is the scenario's NDJSON artifact filename: one line per
	// cell, each line a complete service result envelope.
	Artifact string         `json:"artifact"`
	Cells    []CellManifest `json:"cells"`
}

// CellManifest records one executed cell.
type CellManifest struct {
	Index int `json:"index"`
	// Key is the cell's service cache key (16 hex digits).
	Key string `json:"key"`
	// Repeat is how many times the cell was submitted; the submissions
	// coalesced onto one computation and returned consistent bytes.
	Repeat int `json:"repeat,omitempty"`
	// Request is the normalized sweep request (Workers stripped).
	Request service.SweepRequest `json:"request"`
	// SHA256 and Bytes fingerprint the cell's payload.
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// CellResult pairs a cell with its executed payload.
type CellResult struct {
	Cell    Cell
	Payload []byte
}

// ScenarioResult groups executed cells by scenario, in spec order.
type ScenarioResult struct {
	Name  string
	Kind  string
	Cells []CellResult
}

// Result is a completed campaign: the normalized spec, the manifest,
// and every payload grouped by scenario.
type Result struct {
	Spec      Spec
	Manifest  Manifest
	Scenarios []ScenarioResult
}

// Run normalizes and executes spec on a private job manager, returning
// the completed result. Duplicate cells coalesce; the manifest and all
// artifacts are byte-identical across runs and across Jobs/Fleet
// settings.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = 2
	}
	queue := spec.CellTotal() + jobs
	if queue < 16 {
		queue = 16
	}
	mgr, err := service.OpenManager(service.Config{
		Workers:        jobs,
		QueueDepth:     queue,
		FleetSize:      1,
		CacheDir:       opts.CacheDir,
		DiskCacheBytes: opts.DiskCacheBytes,
		Metrics:        opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", spec.Name, err)
	}
	defer mgr.Close()
	return Execute(ctx, mgr, spec, opts)
}

// Execute runs an already normalized spec's cells through an existing
// job manager — the daemon path, where many campaigns share one
// manager, its queue, and its result cache. Submission applies
// backpressure: when the manager's queue is full, the engine waits for
// one of its own outstanding cells to finish before submitting more.
// On any error — a failed cell, a cancelled context — every sweep this
// campaign submitted is cancelled before returning, so an abandoned
// campaign stops consuming the shared worker pool.
func Execute(ctx context.Context, mgr *service.Manager, spec Spec, opts Options) (res *Result, err error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	fleet := opts.Fleet
	if fleet < 0 {
		fleet = 0
	}

	// Planner pass: group reliability cells by physics sub-key, switch
	// them to shared enumeration, and submit group-adjacent. Collection,
	// manifests and artifacts stay in campaign order either way.
	var plan *Plan
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	if opts.SharedEnumeration {
		if plan, err = planCells(cells); err != nil {
			return nil, err
		}
		if cells, err = applyPlan(cells, plan); err != nil {
			return nil, err
		}
		order = plan.submissionOrder(len(cells))
	}

	met := newCampaignMetrics(mgr.Metrics())
	met.cells.With("planned").Add(uint64(len(cells)))

	total := 0
	for i := range cells {
		total += cells[i].Repeat
	}
	payloads := make([][]byte, len(cells))
	done := 0

	// Checkpoint journal: replay completed cells, serving the ones whose
	// payloads survive in the manager's cache with a matching checksum.
	// A journaled cell whose cache entry was lost (evicted, or discarded
	// as corrupt by the disk tier's verification) is simply recomputed.
	var jr *journal
	if opts.Journal != "" {
		jr, err = openJournal(opts.Journal, &spec, len(cells), opts.SharedEnumeration)
		if err != nil {
			return nil, fmt.Errorf("campaign %s: %w", spec.Name, err)
		}
		defer jr.Close()
		for i := range cells {
			rec, ok := jr.completed(i)
			if !ok || rec.Key != service.FormatKey(cells[i].Key) {
				continue
			}
			payload, ok := mgr.Cached(cells[i].Key)
			if !ok {
				continue
			}
			sum := sha256.Sum256(payload)
			if hex.EncodeToString(sum[:]) != rec.SHA256 {
				continue
			}
			payloads[i] = payload
			done += cells[i].Repeat
			met.cells.With("replayed").Inc()
			if opts.OnCell != nil {
				opts.OnCell(done, total)
			}
		}
	}

	// One execution per unfinished (cell, repeat), in schedule order.
	var execs []execution
	defer func() {
		if err == nil {
			return
		}
		for _, e := range execs {
			mgr.Cancel(e.job.ID)
		}
	}()
	for _, i := range order {
		c := &cells[i]
		if payloads[i] != nil {
			continue // resumed from the journal
		}
		for rep := 0; rep < c.Repeat; rep++ {
			req := c.Request
			req.Workers = fleet
			for {
				j, _, _, serr := mgr.SubmitOpts(req, service.SubmitOptions{TraceID: opts.TraceID})
				if serr == nil {
					execs = append(execs, execution{cell: i, job: j})
					break
				}
				if !errors.Is(serr, service.ErrQueueFull) {
					return nil, fmt.Errorf("campaign %s: scenario %q cell %d: %w",
						spec.Name, c.Scenario, c.Index, serr)
				}
				// Queue full: drain our oldest still-pending execution,
				// then retry. If we have nothing outstanding the queue is
				// saturated by other clients — surface that.
				if err := waitOldest(ctx, execs); err != nil {
					return nil, fmt.Errorf("campaign %s: queue full: %w", spec.Name, err)
				}
			}
		}
	}

	// Collect in campaign order. Repeated submissions coalesce onto one
	// job, so the equality check below guards the coalescing/cache
	// layer's consistency, not independent re-executions.
	res = &Result{Spec: spec}
	for _, e := range execs {
		// Wait returns a terminal job's state even under a cancelled
		// context; check explicitly so cancellation stops the campaign at
		// the next cell boundary instead of racing job completion.
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("campaign %s: %w", spec.Name, cerr)
		}
		c := &cells[e.cell]
		st, werr := e.job.Wait(ctx)
		if werr != nil {
			return nil, fmt.Errorf("campaign %s: %w", spec.Name, werr)
		}
		switch st {
		case service.StateDone:
		case service.StateFailed:
			return nil, fmt.Errorf("campaign %s: scenario %q cell %d failed: %s",
				spec.Name, c.Scenario, c.Index, e.job.Err())
		default:
			return nil, fmt.Errorf("campaign %s: scenario %q cell %d was %s",
				spec.Name, c.Scenario, c.Index, st)
		}
		payload := e.job.Payload()
		if payloads[e.cell] == nil {
			payloads[e.cell] = payload
			if jr != nil {
				start := time.Now()
				jerr := jr.append(e.cell, c.Key, payload)
				met.journalAppend.Observe(time.Since(start).Seconds())
				if jerr != nil {
					return nil, fmt.Errorf("campaign %s: %w", spec.Name, jerr)
				}
			}
		} else if !bytes.Equal(payloads[e.cell], payload) {
			return nil, fmt.Errorf("campaign %s: scenario %q cell %d: repeat produced a different payload (determinism violation)",
				spec.Name, c.Scenario, c.Index)
		}
		done++
		met.cells.With("completed").Inc()
		if opts.OnCell != nil {
			opts.OnCell(done, total)
		}
	}

	res.Manifest, res.Scenarios = assemble(spec, cells, payloads)
	res.Manifest.Plan = plan
	return res, nil
}

// execution is one submitted (cell, repeat) pair.
type execution struct {
	cell int // index into the campaign's cell list
	job  *service.Job
}

// waitOldest blocks until the first non-terminal job among execs
// finishes. It returns service.ErrQueueFull if every exec is already
// terminal (nothing of ours can free a slot).
func waitOldest(ctx context.Context, execs []execution) error {
	for _, e := range execs {
		if e.job.State() == service.StateQueued || e.job.State() == service.StateRunning {
			_, err := e.job.Wait(ctx)
			return err
		}
	}
	return service.ErrQueueFull
}

// assemble builds the manifest and grouped results from executed
// payloads, strictly in spec order.
func assemble(spec Spec, cells []Cell, payloads [][]byte) (Manifest, []ScenarioResult) {
	m := Manifest{
		Campaign:    spec.Name,
		Description: spec.Description,
		Cells:       len(cells),
	}
	unique := make(map[uint64]bool, len(cells))
	for i := range cells {
		unique[cells[i].Key] = true
	}
	m.UniqueSweeps = len(unique)

	var results []ScenarioResult
	byName := make(map[string]int)
	for _, sc := range spec.Scenarios {
		byName[sc.Name] = len(results)
		results = append(results, ScenarioResult{Name: sc.Name, Kind: sc.Kind})
		m.Scenarios = append(m.Scenarios, ScenarioManifest{
			Name:     sc.Name,
			Kind:     sc.Kind,
			Artifact: sc.Name + ".ndjson",
		})
	}
	for i := range cells {
		c := &cells[i]
		payload := payloads[i]
		sum := sha256.Sum256(payload)
		si := byName[c.Scenario]
		repeat := 0
		if c.Repeat > 1 {
			repeat = c.Repeat
		}
		m.Scenarios[si].Cells = append(m.Scenarios[si].Cells, CellManifest{
			Index:   c.Index,
			Key:     service.FormatKey(c.Key),
			Repeat:  repeat,
			Request: c.Request,
			SHA256:  hex.EncodeToString(sum[:]),
			Bytes:   len(payload),
		})
		results[si].Cells = append(results[si].Cells, CellResult{Cell: *c, Payload: payload})
	}
	return m, results
}

// ManifestJSON marshals the manifest deterministically (compact JSON,
// trailing newline — the same serialization the service uses).
func (r *Result) ManifestJSON() ([]byte, error) {
	return report.Marshal(r.Manifest)
}

// WriteArtifacts writes manifest.json plus one NDJSON artifact per
// scenario (one result-envelope line per cell, in cell order) into dir,
// creating it if needed. File contents are byte-identical across runs
// of the same spec.
func (r *Result) WriteArtifacts(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	manifest, err := r.ManifestJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644); err != nil {
		return err
	}
	for _, sr := range r.Scenarios {
		var buf []byte
		for _, cr := range sr.Cells {
			buf = append(buf, cr.Payload...)
		}
		if err := os.WriteFile(filepath.Join(dir, sr.Name+".ndjson"), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}
