package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("no plan armed, Enabled() = true")
	}
	if err := Inject("any.site"); err != nil {
		t.Fatalf("disarmed Inject = %v, want nil", err)
	}
}

func TestErrorInjectionWindow(t *testing.T) {
	boom := errors.New("boom")
	plan := NewPlan().Set("t.op", Fault{Err: boom, After: 2, Count: 2})
	defer Activate(plan)()

	var got []error
	for i := 0; i < 6; i++ {
		got = append(got, Inject("t.op"))
	}
	want := []error{nil, nil, boom, boom, nil, nil}
	for i := range want {
		if !errors.Is(got[i], want[i]) && got[i] != want[i] {
			t.Fatalf("pass %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if f := plan.Fired("t.op"); f != 2 {
		t.Fatalf("Fired = %d, want 2", f)
	}
	if s := plan.Seen("t.op"); s != 6 {
		t.Fatalf("Seen = %d, want 6", s)
	}
}

func TestUnarmedSitePassesThrough(t *testing.T) {
	defer Activate(NewPlan().Set("t.other", Fault{Err: errors.New("x")}))()
	if err := Inject("t.op"); err != nil {
		t.Fatalf("unarmed site Inject = %v, want nil", err)
	}
}

func TestCallbackAndSleep(t *testing.T) {
	fired := 0
	plan := NewPlan().Set("t.cb", Fault{Sleep: time.Millisecond, Callback: func() { fired++ }, Count: 1})
	defer Activate(plan)()
	start := time.Now()
	if err := Inject("t.cb"); err != nil {
		t.Fatalf("Inject = %v, want nil (callback-only fault)", err)
	}
	if fired != 1 {
		t.Fatalf("callback fired %d times, want 1", fired)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("Sleep not applied")
	}
	Inject("t.cb")
	if fired != 1 {
		t.Fatal("Count=1 fault fired twice")
	}
}

func TestRestoreReinstatesPreviousPlan(t *testing.T) {
	outerErr := errors.New("outer")
	restoreOuter := Activate(NewPlan().Set("t.nest", Fault{Err: outerErr}))
	defer restoreOuter()
	restoreInner := Activate(NewPlan()) // inner plan: site unarmed
	if err := Inject("t.nest"); err != nil {
		t.Fatalf("inner plan Inject = %v, want nil", err)
	}
	restoreInner()
	if err := Inject("t.nest"); !errors.Is(err, outerErr) {
		t.Fatalf("after restore Inject = %v, want outer error", err)
	}
}

func TestWrap(t *testing.T) {
	real := errors.New("real")
	if err := Wrap("t.wrap", real); !errors.Is(err, real) {
		t.Fatalf("disarmed Wrap = %v, want real error", err)
	}
	injected := errors.New("injected")
	defer Activate(NewPlan().Set("t.wrap", Fault{Err: injected}))()
	if err := Wrap("t.wrap", nil); !errors.Is(err, injected) {
		t.Fatalf("armed Wrap = %v, want injected error", err)
	}
}
