package pmbus

import (
	"fmt"
	"math"
	"sync"
)

// ISL68301 models the Intersil/Renesas digital multiphase controller that
// supplies the VCC_HBM rail on the VCU128. The model covers the command
// surface the paper's host tooling exercises: output on/off, VOUT
// programming in LINEAR16, UV/OV limits with latched status, and
// VIN/VOUT/IOUT/POUT/temperature telemetry.
//
// The regulator is connected to its load through two callbacks: OnVout is
// invoked whenever the output voltage changes (the HBM stacks follow the
// rail), and LoadAmps reports the load's current draw for telemetry.
type ISL68301 struct {
	mu sync.Mutex

	addr byte
	// exp is the fixed VOUT_MODE linear exponent (-12 -> 244 µV LSB).
	exp int8

	// Programmed registers.
	voutCmd     float64
	voutMax     float64
	marginLow   float64
	marginHigh  float64
	ovFault     float64
	uvFault     float64
	onOffConfig byte
	operation   byte

	// Latched status.
	statusVout byte
	cml        bool

	// Electrical environment.
	vin     float64
	tempC   float64
	slewVms float64 // output slew rate in V/ms

	// Load coupling.
	onVout   func(v float64)
	loadAmps func(v float64) float64

	// present output voltage
	vout float64
}

// ISLConfig parameterizes the regulator model.
type ISLConfig struct {
	// Address is the 7-bit PMBus address (VCU128 wiring uses 0x60 for
	// the HBM rail controller).
	Address byte
	// VoutInit is the power-on output voltage (nominal 1.20 V).
	VoutInit float64
	// VoutMax clamps VOUT_COMMAND (default 1.30 V).
	VoutMax float64
	// OVFault / UVFault are the latched fault thresholds. UVFault
	// defaults to 0.40 V: low enough that the paper's sweep below the
	// HBM's V_critical is the memory dying, not the regulator tripping.
	OVFault, UVFault float64
	// Vin is the input rail (12 V on the board).
	Vin float64
	// TempC is the controller die temperature for READ_TEMPERATURE_1.
	TempC float64
	// SlewVms is the output transition slew rate in volts/ms.
	SlewVms float64
	// OnVout receives every output-voltage change.
	OnVout func(v float64)
	// LoadAmps reports load current at the given output voltage.
	LoadAmps func(v float64) float64
}

// NewISL68301 builds the regulator with defaults filled in.
func NewISL68301(cfg ISLConfig) *ISL68301 {
	if cfg.Address == 0 {
		cfg.Address = 0x60
	}
	if cfg.VoutInit == 0 {
		cfg.VoutInit = 1.20
	}
	if cfg.VoutMax == 0 {
		cfg.VoutMax = 1.30
	}
	if cfg.OVFault == 0 {
		cfg.OVFault = 1.32
	}
	if cfg.UVFault == 0 {
		cfg.UVFault = 0.40
	}
	if cfg.Vin == 0 {
		cfg.Vin = 12.0
	}
	if cfg.TempC == 0 {
		cfg.TempC = 45
	}
	if cfg.SlewVms == 0 {
		cfg.SlewVms = 1.0 // 1 mV/µs
	}
	r := &ISL68301{
		addr:        cfg.Address,
		exp:         -12,
		voutCmd:     cfg.VoutInit,
		marginLow:   cfg.VoutInit * 0.95,
		marginHigh:  cfg.VoutInit * 1.05,
		voutMax:     cfg.VoutMax,
		ovFault:     cfg.OVFault,
		uvFault:     cfg.UVFault,
		onOffConfig: 0x17, // respond to OPERATION command
		operation:   OperationOn,
		vin:         cfg.Vin,
		tempC:       cfg.TempC,
		slewVms:     cfg.SlewVms,
		onVout:      cfg.OnVout,
		loadAmps:    cfg.LoadAmps,
	}
	r.applyLocked()
	return r
}

// Address implements Device.
func (r *ISL68301) Address() byte { return r.addr }

// Vout returns the present output voltage (0 when disabled).
func (r *ISL68301) Vout() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.vout
}

// TransitionMicros returns the time a transition between the two
// voltages takes at the configured slew rate, in microseconds. The model
// applies transitions atomically; this exposes the latency the real part
// would need, which the experiment harness accounts into its timing.
func (r *ISL68301) TransitionMicros(from, to float64) float64 {
	return math.Abs(to-from) / r.slewVms * 1000
}

// applyLocked recomputes the output voltage from operation state and
// VOUT_COMMAND, latching faults. Caller holds r.mu.
func (r *ISL68301) applyLocked() {
	var target float64
	if r.operation&OperationOn != 0 {
		switch r.operation {
		case OperationMarginLow:
			target = r.marginLow
		case OperationMarginHigh:
			target = r.marginHigh
		default:
			target = r.voutCmd
		}
	}
	if target > r.voutMax {
		target = r.voutMax
	}
	if target > 0 && target > r.ovFault {
		r.statusVout |= StatusVoutOVFault
		target = 0 // latch off on OV fault
	}
	if target > 0 && target < r.uvFault {
		r.statusVout |= StatusVoutUVFault
		target = 0 // latch off on UV fault
	}
	if target != r.vout {
		r.vout = target
		if r.onVout != nil {
			r.onVout(target)
		}
	}
}

// WriteByte implements Device.
func (r *ISL68301) WriteByteData(cmd byte, value byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch cmd {
	case CmdOperation:
		r.operation = value
		r.applyLocked()
	case CmdOnOffConfig:
		r.onOffConfig = value
	case CmdClearFaults:
		r.statusVout = 0
		r.cml = false
		r.applyLocked()
	default:
		r.cml = true
		return fmt.Errorf("%w: write byte 0x%02x", ErrUnsupportedCommand, cmd)
	}
	return nil
}

// ReadByte implements Device.
func (r *ISL68301) ReadByteData(cmd byte) (byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch cmd {
	case CmdOperation:
		return r.operation, nil
	case CmdOnOffConfig:
		return r.onOffConfig, nil
	case CmdVoutMode:
		return byte(r.exp) & 0x1f, nil
	case CmdStatusByte:
		return r.statusByteLocked(), nil
	case CmdPMBusRevision:
		return 0x22, nil // PMBus 1.2 part I & II
	default:
		r.cml = true
		return 0, fmt.Errorf("%w: read byte 0x%02x", ErrUnsupportedCommand, cmd)
	}
}

func (r *ISL68301) statusByteLocked() byte {
	var s byte
	if r.vout == 0 {
		s |= StatusOff
	}
	if r.statusVout&StatusVoutOVFault != 0 {
		s |= StatusVoutOV
	}
	if r.cml {
		s |= StatusCML
	}
	return s
}

// WriteWord implements Device.
func (r *ISL68301) WriteWord(cmd byte, value uint16) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch cmd {
	case CmdVoutCommand:
		r.voutCmd = FromLinear16(value, r.exp)
		r.applyLocked()
	case CmdVoutMax:
		r.voutMax = FromLinear16(value, r.exp)
		r.applyLocked()
	case CmdVoutMarginLow:
		r.marginLow = FromLinear16(value, r.exp)
		r.applyLocked()
	case CmdVoutMarginHigh:
		r.marginHigh = FromLinear16(value, r.exp)
		r.applyLocked()
	case CmdVoutOVFaultLimit:
		r.ovFault = FromLinear16(value, r.exp)
		r.applyLocked()
	case CmdVoutUVFaultLimit:
		r.uvFault = FromLinear16(value, r.exp)
		r.applyLocked()
	default:
		r.cml = true
		return fmt.Errorf("%w: write word 0x%02x", ErrUnsupportedCommand, cmd)
	}
	return nil
}

// ReadWord implements Device.
func (r *ISL68301) ReadWord(cmd byte) (uint16, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch cmd {
	case CmdVoutCommand:
		return Linear16(r.voutCmd, r.exp)
	case CmdVoutMax:
		return Linear16(r.voutMax, r.exp)
	case CmdVoutMarginLow:
		return Linear16(r.marginLow, r.exp)
	case CmdVoutMarginHigh:
		return Linear16(r.marginHigh, r.exp)
	case CmdVoutOVFaultLimit:
		return Linear16(r.ovFault, r.exp)
	case CmdVoutUVFaultLimit:
		return Linear16(r.uvFault, r.exp)
	case CmdReadVout:
		return Linear16(r.vout, r.exp)
	case CmdReadVin:
		return Linear11(r.vin)
	case CmdReadIout:
		return Linear11(r.loadAmpsLocked())
	case CmdReadPout:
		return Linear11(r.vout * r.loadAmpsLocked())
	case CmdReadPin:
		// Assume ~90% conversion efficiency for input telemetry.
		return Linear11(r.vout * r.loadAmpsLocked() / 0.90)
	case CmdReadTemperature1:
		return Linear11(r.tempC)
	case CmdStatusWord:
		w := uint16(r.statusByteLocked())
		if r.statusVout != 0 {
			w |= StatusWordVout
		}
		return w, nil
	case CmdStatusVout:
		return uint16(r.statusVout), nil
	case CmdICDeviceID:
		return 0x6831, nil
	default:
		r.cml = true
		return 0, fmt.Errorf("%w: read word 0x%02x", ErrUnsupportedCommand, cmd)
	}
}

func (r *ISL68301) loadAmpsLocked() float64 {
	if r.loadAmps == nil || r.vout == 0 {
		return 0
	}
	return r.loadAmps(r.vout)
}

// Faulted reports whether a VOUT fault is latched.
func (r *ISL68301) Faulted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusVout != 0
}

var _ Device = (*ISL68301)(nil)
