package core

import (
	"runtime"
	"testing"

	"hbmvolt/internal/board"
	"hbmvolt/internal/hbm"
)

// TestRunPortsWorkerPool forces the bounded worker pool on (even on a
// single-CPU machine) and checks that pooled execution is result-
// identical to sequential execution across multiple ports, patterns and
// batch repetitions — the pool reorders scheduling, never results.
func TestRunPortsWorkerPool(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	run := func(parallel bool) *ReliabilityResult {
		b := testBoard(t, board.Config{Scale: 256, Seed: 8})
		res, err := RunReliability(ReliabilityConfig{
			Board:     b,
			Ports:     []hbm.PortID{1, 4, 5, 18, 19, 20, 31},
			Grid:      []float64{0.93, 0.89},
			BatchSize: 4,
			Parallel:  parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	if len(seq.Points) != len(par.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(seq.Points), len(par.Points))
	}
	for i := range seq.Points {
		sp, pp := seq.Points[i], par.Points[i]
		if sp.MeanFlips != pp.MeanFlips || sp.Flips10 != pp.Flips10 || sp.Flips01 != pp.Flips01 {
			t.Fatalf("pooled execution changed results at %vV: %+v vs %+v", sp.Volts, sp, pp)
		}
		for j := range sp.Observations {
			so, po := sp.Observations[j], pp.Observations[j]
			if so.Port != po.Port || so.MeanFlips != po.MeanFlips || so.MeanFaulty != po.MeanFaulty {
				t.Fatalf("port %d at %vV differs under pool", so.Port, sp.Volts)
			}
		}
	}
}
