package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hbmvolt/internal/core"
)

// smallReliability is a sweep cheap enough to run for real in unit
// tests: one sensitive port, one pattern, two voltage points.
func smallReliability() SweepRequest {
	return SweepRequest{
		Kind:     KindReliability,
		Scale:    1024,
		Grid:     []float64{0.90, 0.89},
		Patterns: []string{"all1"},
		Ports:    []int{18},
		Batch:    2,
	}
}

// newTestServer builds a server over httptest and tears both down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, NewClient(ts.URL)
}

// TestLifecycleSubmitStreamResult drives the full happy path over real
// HTTP: submit → stream progress events → terminal done → fetch result,
// then replays the stream after completion and checks the history is
// intact.
func TestLifecycleSubmitStreamResult(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	sub, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Coalesced || sub.CacheHit {
		t.Fatalf("fresh submit flagged coalesced=%v cacheHit=%v", sub.Coalesced, sub.CacheHit)
	}

	var progress []Event
	var terminalType string
	err = c.Stream(ctx, sub.ID, func(e Event) error {
		switch e.Type {
		case "progress":
			progress = append(progress, e)
		default:
			terminalType = e.Type
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if terminalType != string(StateDone) {
		t.Fatalf("terminal event %q, want done", terminalType)
	}
	if len(progress) != 2 {
		t.Fatalf("progress events = %d, want 2 (one per grid point)", len(progress))
	}
	last := progress[len(progress)-1]
	if last.Done != 2 || last.Total != 2 {
		t.Fatalf("final progress %d/%d, want 2/2", last.Done, last.Total)
	}

	st, err := c.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Done != 2 {
		t.Fatalf("status = %+v", st)
	}

	payload, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Kind        string       `json:"kind"`
		Key         string       `json:"key"`
		Request     SweepRequest `json:"request"`
		Reliability struct {
			Points []struct {
				Volts float64 `json:"Volts"`
			} `json:"Points"`
		} `json:"reliability"`
	}
	if err := json.Unmarshal(payload, &env); err != nil {
		t.Fatalf("payload not JSON: %v\n%s", err, payload)
	}
	if env.Kind != KindReliability || env.Key != sub.Key {
		t.Fatalf("envelope kind=%q key=%q, want %q/%q", env.Kind, env.Key, KindReliability, sub.Key)
	}
	if len(env.Reliability.Points) != 2 || env.Reliability.Points[0].Volts != 0.90 {
		t.Fatalf("reliability points = %+v", env.Reliability.Points)
	}
	if env.Request.Workers != 0 {
		t.Fatal("payload must not echo the Workers parallelism hint")
	}

	// A late subscriber replays the full history.
	var replay []string
	if err := c.Stream(ctx, sub.ID, func(e Event) error {
		replay = append(replay, e.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replay) != 3 || replay[2] != string(StateDone) {
		t.Fatalf("replayed stream = %v", replay)
	}
}

// TestRepeatServedFromCache pins the acceptance contract: a repeated
// identical request is answered from the cache with a byte-identical
// body and no recomputation — including when it differs only in the
// Workers hint, and when the original job record has been evicted.
func TestRepeatServedFromCache(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, MaxJobs: 1})
	ctx := context.Background()

	sub, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	if state, err := c.Wait(ctx, sub.ID); err != nil || state != StateDone {
		t.Fatalf("wait: state=%v err=%v", state, err)
	}
	first, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if runs := srv.Manager().Runs(); runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}

	// Identical resubmission coalesces onto the done job.
	again, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Coalesced || !again.CacheHit || again.ID != sub.ID {
		t.Fatalf("resubmit = %+v, want coalesced cache hit on %s", again, sub.ID)
	}
	repeat, err := c.Result(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, repeat) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", first, repeat)
	}

	// A different Workers hint must key identically.
	hinted := smallReliability()
	hinted.Workers = 7
	h, err := c.Submit(ctx, hinted)
	if err != nil {
		t.Fatal(err)
	}
	if h.Key != sub.Key || !h.CacheHit {
		t.Fatalf("workers hint changed the key: %+v vs %s", h, sub.Key)
	}

	// Evict the job record (MaxJobs=1) with an unrelated sweep, then
	// resubmit: the LRU still answers without recomputation.
	other := smallReliability()
	other.Seed = 99
	o, err := c.Submit(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, o.ID); err != nil {
		t.Fatal(err)
	}
	evicted, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	if !evicted.CacheHit || evicted.State != StateDone {
		t.Fatalf("post-eviction resubmit = %+v, want immediate cache hit", evicted)
	}
	fromCache, err := c.Result(ctx, evicted.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, fromCache) {
		t.Fatal("post-eviction cached body not byte-identical")
	}
	if runs := srv.Manager().Runs(); runs != 2 {
		t.Fatalf("runs = %d, want 2 (original + unrelated sweep only)", runs)
	}
}

// blockingRunner replaces the sweep path with one that signals when it
// starts, then blocks until cancelled or released.
type blockingRunner struct {
	started chan string   // job IDs, in start order
	release chan struct{} // close to let runs complete
	payload func(j *Job) []byte
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{
		started: make(chan string, 16),
		release: make(chan struct{}),
		payload: func(j *Job) []byte { return []byte(`{"stub":"` + j.ID + `"}` + "\n") },
	}
}

func (b *blockingRunner) run(ctx context.Context, j *Job) ([]byte, error) {
	b.started <- j.ID
	j.appendEvent(Event{Type: "progress", SweepProgress: core.SweepProgress{Done: 1, Total: 2, Volts: 0.90}})
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.release:
		return b.payload(j), nil
	}
}

// TestCancelMidSweep exercises DELETE while the sweep is mid-flight:
// the event stream must end with a "cancelled" event and the job must
// settle in the cancelled state.
func TestCancelMidSweep(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	runner := newBlockingRunner()
	srv.Manager().runSweep = runner.run
	ctx := context.Background()

	sub, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started // sweep is running and has emitted progress

	streamDone := make(chan []string, 1)
	go func() {
		var types []string
		c.Stream(ctx, sub.ID, func(e Event) error {
			types = append(types, e.Type)
			return nil
		})
		streamDone <- types
	}()

	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case types := <-streamDone:
		if len(types) == 0 || types[len(types)-1] != string(StateCancelled) {
			t.Fatalf("stream events = %v, want trailing cancelled", types)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not terminate after cancel")
	}
	st, err := c.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	// Cancelled sweeps must not poison the cache: a resubmission starts
	// a fresh run rather than coalescing onto the cancelled job.
	resub, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	if resub.Coalesced || resub.CacheHit || resub.ID == sub.ID {
		t.Fatalf("resubmit after cancel = %+v, want a fresh job", resub)
	}
	<-runner.started
	close(runner.release)
	if state, err := c.Wait(ctx, resub.ID); err != nil || state != StateDone {
		t.Fatalf("resubmitted job: state=%v err=%v", state, err)
	}
}

// TestConcurrentIdenticalSubmissionsCoalesce pins the second acceptance
// criterion: two identical submissions arriving while the sweep is
// in flight share one job and one scheduler run.
func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 2})
	runner := newBlockingRunner()
	srv.Manager().runSweep = runner.run
	ctx := context.Background()

	first, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started // in flight

	// A burst of identical submissions while the first is running.
	const burst = 8
	ids := make([]string, burst)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := c.Submit(ctx, smallReliability())
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if !sub.Coalesced {
				t.Errorf("submit %d not coalesced: %+v", i, sub)
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id != first.ID {
			t.Fatalf("submission %d got job %s, want %s", i, id, first.ID)
		}
	}

	close(runner.release)
	if state, err := c.Wait(ctx, first.ID); err != nil || state != StateDone {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if runs := srv.Manager().Runs(); runs != 1 {
		t.Fatalf("runs = %d, want 1 for %d identical submissions", runs, burst+1)
	}
}

// TestQueueBound verifies the bounded backlog: with one worker busy and
// the queue full, a distinct submission is rejected with 503.
func TestQueueBound(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	runner := newBlockingRunner()
	srv.Manager().runSweep = runner.run
	ctx := context.Background()

	reqN := func(seed uint64) SweepRequest {
		r := smallReliability()
		r.Seed = seed
		return r
	}
	if _, err := c.Submit(ctx, reqN(1)); err != nil {
		t.Fatal(err)
	}
	<-runner.started // worker busy
	if _, err := c.Submit(ctx, reqN(2)); err != nil {
		t.Fatal(err) // sits in the queue
	}
	_, err := c.Submit(ctx, reqN(3))
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit err = %v, want 503", err)
	}
	close(runner.release)
}

// TestPowerSweepLifecycle runs a real power sweep through the service.
func TestPowerSweepLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	sub, err := c.Submit(ctx, SweepRequest{
		Kind:       KindPower,
		Scale:      1024,
		Grid:       []float64{1.20, 1.10},
		PortCounts: []int{0, 32},
		Samples:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	var lastWatts float64
	if err := c.Stream(ctx, sub.ID, func(e Event) error {
		if e.Type == "progress" {
			progress++
			lastWatts = e.Watts
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if progress != 4 {
		t.Fatalf("progress events = %d, want 4 (2 voltages x 2 port counts)", progress)
	}
	if lastWatts <= 0 {
		t.Fatal("power progress events must carry watts")
	}
	payload, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Power struct {
			Points        []struct{ Watts float64 }
			BaselineWatts float64
		} `json:"power"`
	}
	if err := json.Unmarshal(payload, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Power.Points) != 4 || env.Power.BaselineWatts <= 0 {
		t.Fatalf("power payload = %+v", env.Power)
	}
}

// TestMalformedRequests walks the 4xx surface.
func TestMalformedRequests(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(c.BaseURL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	badBodies := map[string]string{
		"not JSON":            `{kind:`,
		"unknown field":       `{"kind":"reliability","voltage":0.9}`,
		"missing kind":        `{}`,
		"unknown kind":        `{"kind":"thermal"}`,
		"scale not pow2":      `{"kind":"reliability","scale":3}`,
		"scale too deep":      `{"kind":"reliability","scale":1048576}`,
		"unknown pattern":     `{"kind":"reliability","patterns":["zebra"]}`,
		"port out of range":   `{"kind":"reliability","ports":[99]}`,
		"grid out of range":   `{"kind":"reliability","grid":[9.9]}`,
		"power with patterns": `{"kind":"power","patterns":["all1"]}`,
		"power with batch":    `{"kind":"power","batch":7}`,
		"power with exact":    `{"kind":"power","exact":true}`,
		"negative batch":      `{"kind":"reliability","batch":-1}`,
		"noise on rel":        `{"kind":"reliability","noise":0.01}`,
		"noise out of range":  `{"kind":"power","noise":0.9}`,
		"faultmap with batch": `{"kind":"faultmap","batch":2}`,
		"faultmap with scale": `{"kind":"faultmap","scale":1024}`,
		"ecc with exact":      `{"kind":"ecc-study","exact":true}`,
	}
	for name, body := range badBodies {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	if got := srv.Manager().Stats(); got.Queued+got.Running+got.Done != 0 {
		t.Fatalf("malformed requests created jobs: %+v", got)
	}

	for _, req := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/v1/sweeps/nope", http.StatusNotFound},
		{http.MethodGet, "/v1/sweeps/nope/result", http.StatusNotFound},
		{http.MethodGet, "/v1/sweeps/nope/events", http.StatusNotFound},
		{http.MethodDelete, "/v1/sweeps/nope", http.StatusNotFound},
	} {
		hr, err := http.NewRequestWithContext(ctx, req.method, c.BaseURL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != req.want {
			t.Errorf("%s %s: status %d, want %d", req.method, req.path, resp.StatusCode, req.want)
		}
	}

	// Result of a not-yet-done job is a 409.
	runner := newBlockingRunner()
	srv.Manager().runSweep = runner.run
	sub, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started
	_, err = c.Result(ctx, sub.ID)
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job err = %v, want 409", err)
	}
	close(runner.release)
}

// TestHealthz checks the liveness payload carries queue and cache
// statistics.
func TestHealthz(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	sub, err := c.Submit(ctx, smallReliability())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Done != 1 || h.SweepRuns != 1 || h.CacheEntries != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func asAPIError(err error, target **APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*APIError)
	if ok {
		*target = e
	}
	return ok
}

func TestCacheLRUEviction(t *testing.T) {
	cch := newResultCache(nil, NewMemoryTier(2, 1<<20))
	cch.Put(1, []byte("a"))
	cch.Put(2, []byte("b"))
	if _, ok := cch.Get(1); !ok { // refresh 1; 2 is now LRU
		t.Fatal("entry 1 missing")
	}
	cch.Put(3, []byte("c"))
	if _, ok := cch.Get(2); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if _, ok := cch.Get(1); !ok {
		t.Fatal("entry 1 evicted despite recency")
	}
	if cch.Len() != 2 {
		t.Fatalf("len = %d", cch.Len())
	}
}

// TestCacheByteAccounting pins the satellite fix: every payload kind
// weighs its real bytes, so a large analytic envelope exerts the same
// eviction pressure per byte as sweep payloads, and the byte counter
// always equals the sum of retained payload sizes.
func TestCacheByteAccounting(t *testing.T) {
	cch := newResultCache(nil, NewMemoryTier(100, 100))
	cch.Put(1, make([]byte, 40)) // a "sweep" payload
	cch.Put(2, make([]byte, 40)) // another
	if got := cch.Bytes(); got != 80 {
		t.Fatalf("bytes = %d, want 80", got)
	}
	// A 60-byte "faultmap envelope" overflows the budget: the LRU entry
	// (key 1) goes, not an entry count's worth.
	cch.Put(3, make([]byte, 60))
	if _, ok := cch.Get(1); ok {
		t.Fatal("oldest entry survived byte-pressure eviction")
	}
	if _, ok := cch.Get(2); !ok {
		t.Fatal("entry 2 evicted though the byte budget held")
	}
	if got := cch.Bytes(); got != 100 {
		t.Fatalf("bytes = %d, want 100", got)
	}
	// An envelope larger than the whole budget evicts the rest but
	// itself survives (newest entry always retained).
	cch.Put(4, make([]byte, 150))
	if cch.Len() != 1 {
		t.Fatalf("len = %d, want 1", cch.Len())
	}
	if got := cch.Bytes(); got != 150 {
		t.Fatalf("bytes = %d, want 150", got)
	}
	if _, ok := cch.Get(4); !ok {
		t.Fatal("oversized entry not retained")
	}
}

// TestCacheKeyNormalization: explicitly spelling the defaults must key
// identically to leaving them zero, and every result-affecting field
// must change the key.
func TestCacheKeyNormalization(t *testing.T) {
	base := SweepRequest{Kind: KindReliability}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	baseKey, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	explicit := SweepRequest{
		Kind:     KindReliability,
		Scale:    1024,
		Batch:    5,
		Patterns: []string{"all1", "all0"},
	}
	if err := explicit.Normalize(); err != nil {
		t.Fatal(err)
	}
	k, err := explicit.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if k != baseKey {
		t.Fatal("explicit defaults keyed differently from implicit ones")
	}

	// Explicitly empty slices normalize like absent ones — "[]" must not
	// become a sweep that tests nothing.
	empty := SweepRequest{Kind: KindReliability, Grid: []float64{}, Patterns: []string{}, Ports: []int{}}
	if err := empty.Normalize(); err != nil {
		t.Fatal(err)
	}
	ek, err := empty.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if ek != baseKey {
		t.Fatal("empty slices keyed differently from defaults")
	}
	if len(empty.Grid) == 0 || len(empty.Patterns) == 0 || len(empty.Ports) == 0 {
		t.Fatalf("empty slices not defaulted: %+v", empty)
	}

	variants := []func(*SweepRequest){
		func(r *SweepRequest) { r.Seed = 7 },
		func(r *SweepRequest) { r.Scale = 512 },
		func(r *SweepRequest) { r.Exact = true },
		func(r *SweepRequest) { r.Grid = []float64{0.9} },
		func(r *SweepRequest) { r.Patterns = []string{"all1"} },
		func(r *SweepRequest) { r.Batch = 6 },
		func(r *SweepRequest) { r.Ports = []int{3} },
		func(r *SweepRequest) { r.Kind = KindPower; r.Patterns = nil; r.Ports = nil },
	}
	seen := map[uint64]int{baseKey: -1}
	for i, mutate := range variants {
		r := SweepRequest{Kind: KindReliability}
		mutate(&r)
		if err := r.Normalize(); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		k, err := r.CacheKey()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %d", i, prev)
		}
		seen[k] = i
	}

	// Workers must NOT change the key.
	w := SweepRequest{Kind: KindReliability, Workers: 9}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	wk, err := w.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if wk != baseKey {
		t.Fatal("Workers hint changed the cache key")
	}
}

// TestAnalyticKinds runs the faultmap and ecc-study kinds end to end
// over HTTP: both are analytic studies of the full-capacity device, so
// the payloads decode into complete typed results and repeats are
// byte-identical cache hits.
func TestAnalyticKinds(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	for _, kind := range []string{KindFaultMap, KindECCStudy} {
		req := SweepRequest{Kind: kind, Grid: []float64{0.95, 0.90}}
		sub, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := c.Wait(ctx, sub.ID); err != nil || st != StateDone {
			t.Fatalf("%s: wait = %v, %v", kind, st, err)
		}
		payload, err := c.Result(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		env, err := DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case KindFaultMap:
			if env.FaultMap == nil || len(env.FaultMap.Curves) != 2 ||
				len(env.FaultMap.Fig5) != 2 || len(env.FaultMap.Usable) == 0 {
				t.Fatalf("faultmap payload incomplete: %+v", env.FaultMap)
			}
			if len(env.FaultMap.Grid) != 2 {
				t.Fatalf("faultmap grid = %v", env.FaultMap.Grid)
			}
		case KindECCStudy:
			if env.ECC == nil || len(env.ECC.Points) != 2 {
				t.Fatalf("ecc payload incomplete: %+v", env.ECC)
			}
		}
		// The request echo is normalized: analytic kinds pin scale 1.
		if env.Request.Scale != 1 {
			t.Fatalf("%s: echoed scale = %d, want 1", kind, env.Request.Scale)
		}

		resub, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !resub.Coalesced && !resub.CacheHit {
			t.Fatalf("%s: identical resubmission did not coalesce", kind)
		}
		payload2, err := c.Result(ctx, resub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatalf("%s: resubmission payload differs", kind)
		}
	}
}

// TestPowerNoiseKeyed verifies noisy power sweeps are deterministic
// (noise draws are PRF-keyed) and that noise is part of the cache key.
func TestPowerNoiseKeyed(t *testing.T) {
	noisy := SweepRequest{Kind: KindPower, Grid: []float64{1.20, 0.95}, Noise: 0.01, Samples: 2, PortCounts: []int{0, 32}}
	clean := noisy
	clean.Noise = 0

	key := func(r SweepRequest) uint64 {
		t.Helper()
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		k, err := r.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key(noisy) == key(clean) {
		t.Fatal("noise not folded into the cache key")
	}

	run := func() []byte {
		t.Helper()
		// Fresh manager per run so nothing is cache-served.
		m := NewManager(Config{Workers: 1})
		defer m.Close()
		j, _, _, err := m.Submit(noisy)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := j.Wait(context.Background()); err != nil || st != StateDone {
			t.Fatalf("wait = %v, %v (%s)", st, err, j.Err())
		}
		return j.Payload()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("noisy power sweep is not deterministic across runs")
	}
}

// TestSharedRequestKeyAndExecution pins the planner-facing service
// surface: Shared applies to reliability only, folds into the cache
// key (sparse shared sweeps are a distinct realization), and executes
// end to end into a reliability envelope.
func TestSharedRequestKeyAndExecution(t *testing.T) {
	for _, kind := range []string{KindPower, KindFaultMap, KindECCStudy} {
		r := SweepRequest{Kind: kind, Shared: true}
		if err := r.Normalize(); err == nil {
			t.Errorf("kind %s accepted shared", kind)
		}
	}

	base := SweepRequest{
		Kind:     KindReliability,
		Grid:     []float64{0.90, 0.89},
		Patterns: []string{"all1", "all0"},
		Ports:    []int{18},
		Batch:    2,
	}
	shared := base
	shared.Shared = true
	key := func(r SweepRequest) uint64 {
		t.Helper()
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		k, err := r.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key(base) == key(shared) {
		t.Fatal("shared not folded into the cache key")
	}

	m := NewManager(Config{Workers: 1})
	defer m.Close()
	j, _, _, err := m.Submit(shared)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(context.Background()); err != nil || st != StateDone {
		t.Fatalf("wait = %v, %v (%s)", st, err, j.Err())
	}
	env, err := DecodeResult(j.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if env.Reliability == nil || !env.Request.Shared {
		t.Fatalf("shared sweep envelope malformed: %+v", env.Request)
	}
	if len(env.Reliability.Points) != 2 {
		t.Fatalf("points = %d", len(env.Reliability.Points))
	}
	// Shared and legacy keys resolve to distinct computations.
	j2, coalesced, _, err := m.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	if coalesced {
		t.Fatal("legacy request coalesced onto the shared job")
	}
	if st, err := j2.Wait(context.Background()); err != nil || st != StateDone {
		t.Fatalf("wait = %v, %v (%s)", st, err, j2.Err())
	}
	if bytes.Equal(j.Payload(), j2.Payload()) {
		// Sparse realizations differ (the request echo alone differs).
		t.Fatal("shared and legacy payloads identical including request echo")
	}
}
