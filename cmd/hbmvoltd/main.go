// Command hbmvoltd serves Algorithm 1 reliability sweeps and Fig. 2/3
// power sweeps over HTTP — the sweep-as-a-service daemon on top of the
// board-fleet scheduler.
//
// Usage:
//
//	hbmvoltd [flags]
//
// API (JSON over HTTP; see internal/service):
//
//	POST   /v1/sweeps             submit {"kind":"reliability"|"power", ...}
//	GET    /v1/sweeps/{id}        status + result
//	GET    /v1/sweeps/{id}/result raw result payload (byte-stable)
//	GET    /v1/sweeps/{id}/events NDJSON progress stream
//	DELETE /v1/sweeps/{id}        cancel
//	GET    /healthz               liveness + statistics
//
// Campaign routes (see internal/campaign) fan declarative multi-
// scenario experiment specs into the same job manager:
//
//	POST   /v1/campaigns          submit a spec or {"builtin":"paper-repro"}
//	GET    /v1/campaigns          list campaign runs
//	GET    /v1/campaigns/{id}     status (+ manifest when done)
//	DELETE /v1/campaigns/{id}     cancel remaining cells
//
// Fleet mode (see README "Fleet" and internal/fleet): -self + -peers
// (or -self + -join against live seeds) join N daemons into one
// logical cache. Each sweep's cache key is rendezvous-hashed to
// exactly one owner node; non-owners forward and the fleet computes
// each unique sweep once. Membership is dynamic: nodes join and leave
// at runtime through the admin API (POST/DELETE /v1/fleet/peers)
// behind a versioned copy-on-write view, moving only ~1/N of keys per
// change. A slow owner is raced against the second-choice owner after
// the -hedge-delay; a dead, slow, or partitioned owner degrades to
// local compute — byte-identical by the determinism contract — gated
// by a per-peer circuit breaker fed by an active health prober
// (-probe-interval) and forward failures, with every call under the
// -forward-timeout deadline. Successfully forwarded payloads are
// written through to the local durable tier within
// -replica-budget-bytes, so an owner's death serves its hot keys from
// local disk instead of recomputing.
//
// Resilience (see README "Resilience"):
//
//   - -cache-dir backs the result cache with a durable disk tier:
//     computed sweeps survive a crash or restart and are served
//     byte-identically (after checksum verification) instead of being
//     recomputed.
//   - -rate/-burst enable per-client token-bucket admission control;
//     rejections carry a Retry-After derived from observed job latency,
//     as do queue-full 503s.
//   - On SIGINT/SIGTERM the daemon drains gracefully: it stops
//     accepting connections, refuses new submissions with 503, lets
//     in-flight sweeps finish for up to -drain-timeout, flushes the
//     disk tier, and exits.
//
// Observability (see README "Observability"):
//
//   - GET /metrics serves the telemetry registry in Prometheus text
//     exposition format: job, cache-tier, enum-store, admission,
//     campaign, and fleet families. /healthz statistics are views over
//     the same registry, so the two surfaces cannot drift.
//   - Every submission gets a trace ID — minted at this edge or adopted
//     from an X-Hbmvolt-Trace-Id request header — that follows the job
//     through coalescing, cache lookups, enum-store singleflight, and
//     fleet forwards; GET /v1/traces/{id} returns the recorded spans.
//   - Logs are structured JSON records (one per line, leveled via
//     -log-level) carrying the trace ID wherever one is in scope.
//
// With -pprof, net/http/pprof is mounted under /debug/pprof/ so
// campaign-scale CPU and heap profiles can be captured in place:
//
//	go tool pprof http://127.0.0.1:8023/debug/pprof/profile?seconds=30
//
// -pprof also arms mutex and block profiling (tunable via
// -mutex-profile-fraction and -block-profile-rate) so contention on the
// job queue and cache tiers is attributable; sweep execution paths are
// labeled (hbmvolt_kind, hbmvolt_mode, ...) for profile filtering.
//
// Identical requests — concurrent or repeated, standalone or inside a
// campaign — coalesce into a single computation and return
// bit-identical payloads; see the cache-key and determinism contract in
// internal/service.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hbmvolt/internal/campaign"
	"hbmvolt/internal/fleet"
	"hbmvolt/internal/service"
	"hbmvolt/internal/telemetry"
	tlog "hbmvolt/internal/telemetry/log"
)

var (
	flagAddr     = flag.String("addr", "127.0.0.1:8023", "listen address")
	flagWorkers  = flag.Int("workers", 2, "concurrent sweep jobs")
	flagQueue    = flag.Int("queue", 16, "queued-sweep backlog bound (extra submissions get 503)")
	flagCache    = flag.Int("cache", 256, "result cache entries (memory LRU)")
	flagCacheDir = flag.String("cache-dir", "", "durable result-cache directory: computed sweeps survive restarts and crashes (verified on read; empty = memory only)")
	flagDiskMax  = flag.Int64("cache-disk-bytes", 0, "disk cache payload-byte bound, LRU-evicted (0 = unbounded; needs -cache-dir)")
	flagMaxJobs  = flag.Int("max-jobs", 1024, "retained job records (oldest terminal jobs evicted)")
	flagFleet    = flag.Int("j", runtime.GOMAXPROCS(0), "default board-fleet size per sharded sweep (request \"workers\" overrides)")
	flagRate     = flag.Float64("rate", 0, "per-client submission rate limit in requests/second (0 = off); rejections get 429 with a latency-derived Retry-After")
	flagBurst    = flag.Int("burst", 8, "per-client token-bucket burst (with -rate)")
	flagDrain    = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget: in-flight sweeps get this long to finish before being cancelled")
	flagPprof    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; enables capturing CPU/heap profiles of campaign-scale runs in place)")
	flagLogLevel = flag.String("log-level", "info", "structured log verbosity: debug, info, warn, or error")

	flagMutexFrac = flag.Int("mutex-profile-fraction", 5, "with -pprof: sample 1/n of mutex contention events (0 = off)")
	flagBlockRate = flag.Int("block-profile-rate", 10000, "with -pprof: sample blocking events lasting >= this many nanoseconds (0 = off)")

	flagSelf       = flag.String("self", "", "fleet mode: this node's advertised base URL, e.g. http://10.0.0.1:8023 (requires -peers or -join)")
	flagPeers      = flag.String("peers", "", "fleet mode: comma-separated peer base URLs; every node should get the identical list (own URL included is fine)")
	flagJoin       = flag.String("join", "", "fleet mode: comma-separated seed URLs to announce this node to at startup via the membership admin API; the seeds' node set is adopted, so a new node needs no -peers and the fleet needs no restarts")
	flagFwdTimeout = flag.Duration("forward-timeout", 2*time.Second, "fleet mode: hedging deadline per forwarded HTTP call; an owner slower than this degrades to local compute")
	flagProbe      = flag.Duration("probe-interval", time.Second, "fleet mode: active health-check period per peer, jittered ±10% (0 = passive failure detection only)")
	flagHedge      = flag.Duration("hedge-delay", 0, "fleet mode: how long a forward may run before the second-choice owner is raced (0 = adaptive p95 of observed forward latencies, floored at 50ms; negative = never race, fail over only on primary failure)")
	flagRepBudget  = flag.Int64("replica-budget-bytes", 1<<30, "fleet mode: byte budget for writing forwarded payloads through to the local durable cache tier, so an owner's death serves its hot keys from local disk (negative = no replication)")
	flagTrustProxy = flag.Bool("trust-proxy", false, "trust X-Forwarded-For for per-client admission buckets (only behind a proxy that overwrites it; the header is spoofable otherwise)")
)

// options is the daemon's full configuration, decoupled from the flag
// set so tests can construct and validate it directly.
type options struct {
	addr         string
	workers      int
	queue        int
	cache        int
	cacheDir     string
	diskMax      int64
	maxJobs      int
	fleet        int
	rate         float64
	burst        int
	drainTimeout time.Duration
	pprof        bool

	// logLevel names the structured-log threshold ("" = info). The
	// profiling rates are applied only when pprof is on — sampling has a
	// (small) runtime cost, so it rides the same opt-in.
	logLevel      string
	mutexFraction int
	blockRate     int

	// Fleet mode: self is this node's advertised URL, peers the other
	// nodes'; empty self means standalone. join lists seed nodes to
	// announce self to at startup instead of (or in addition to) a
	// static peer list.
	self           string
	peers          []string
	join           []string
	forwardTimeout time.Duration
	probeInterval  time.Duration
	hedgeDelay     time.Duration
	replicaBudget  int64

	trustProxy bool
	// logger receives the daemon's structured JSON records; nil builds a
	// stderr logger at logLevel in newDaemon (tests inject their own).
	logger *tlog.Logger
}

func optionsFromFlags() options {
	return options{
		addr:         *flagAddr,
		workers:      *flagWorkers,
		queue:        *flagQueue,
		cache:        *flagCache,
		cacheDir:     *flagCacheDir,
		diskMax:      *flagDiskMax,
		maxJobs:      *flagMaxJobs,
		fleet:        *flagFleet,
		rate:         *flagRate,
		burst:        *flagBurst,
		drainTimeout: *flagDrain,
		pprof:        *flagPprof,

		logLevel:      *flagLogLevel,
		mutexFraction: *flagMutexFrac,
		blockRate:     *flagBlockRate,

		self:           *flagSelf,
		peers:          splitPeers(*flagPeers),
		join:           splitPeers(*flagJoin),
		forwardTimeout: *flagFwdTimeout,
		probeInterval:  *flagProbe,
		hedgeDelay:     *flagHedge,
		replicaBudget:  *flagRepBudget,

		trustProxy: *flagTrustProxy,
	}
}

// splitPeers parses the -peers flag: comma-separated URLs, empty
// entries dropped so trailing commas don't become ghost peers.
func splitPeers(raw string) []string {
	var peers []string
	for _, p := range strings.Split(raw, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// validate rejects configurations that would misbehave at runtime
// instead of letting them propagate into confusing failures.
func (o options) validate() error {
	if o.workers < 1 || o.queue < 1 || o.cache < 1 || o.maxJobs < 1 || o.fleet < 1 {
		return errors.New("-workers, -queue, -cache, -max-jobs and -j must all be >= 1")
	}
	if o.rate < 0 {
		return errors.New("-rate must be >= 0")
	}
	if o.rate > 0 && o.burst < 1 {
		return errors.New("-burst must be >= 1 when -rate is set")
	}
	if o.diskMax < 0 {
		return errors.New("-cache-disk-bytes must be >= 0")
	}
	if o.diskMax > 0 && o.cacheDir == "" {
		return errors.New("-cache-disk-bytes needs -cache-dir")
	}
	if o.drainTimeout <= 0 {
		return errors.New("-drain-timeout must be > 0")
	}
	if o.logLevel != "" {
		if _, err := tlog.ParseLevel(o.logLevel); err != nil {
			return fmt.Errorf("-log-level: %w", err)
		}
	}
	if o.mutexFraction < 0 {
		return errors.New("-mutex-profile-fraction must be >= 0")
	}
	if o.blockRate < 0 {
		return errors.New("-block-profile-rate must be >= 0")
	}
	if len(o.peers) > 0 && o.self == "" {
		return errors.New("-peers needs -self (peers must know this node by one agreed URL)")
	}
	if len(o.join) > 0 && o.self == "" {
		return errors.New("-join needs -self (seeds must learn this node by one agreed URL)")
	}
	if o.self != "" {
		if len(o.peers) == 0 && len(o.join) == 0 {
			return errors.New("-self needs -peers or -join (a fleet of one is just a daemon)")
		}
		if o.forwardTimeout <= 0 {
			return errors.New("-forward-timeout must be > 0")
		}
		if o.probeInterval < 0 {
			return errors.New("-probe-interval must be >= 0")
		}
	}
	return nil
}

// daemon is a constructed-but-not-yet-serving hbmvoltd instance.
type daemon struct {
	opts options
	log  *tlog.Logger
	srv  *service.Server
	fwd  *fleet.Forwarder // nil when standalone
	http *http.Server
}

// newDaemon builds the service (opening the durable cache tier, which
// runs its recovery scan here), the fleet forwarder when peer mode is
// configured, the shared telemetry registry every subsystem reports
// into, and the HTTP stack.
func newDaemon(o options) (*daemon, error) {
	if o.logger == nil {
		level := tlog.LevelInfo
		if o.logLevel != "" {
			level, _ = tlog.ParseLevel(o.logLevel) // validate() already vetted it
		}
		o.logger = tlog.New(os.Stderr, level)
	}
	// One registry serves /metrics and backs /healthz: the manager, the
	// campaign engine (via the manager), and the fleet forwarder all
	// report into it, so the two surfaces cannot drift.
	reg := telemetry.NewRegistry()
	var fwd *fleet.Forwarder
	if o.self != "" {
		var err error
		fwd, err = fleet.New(fleet.Options{
			Self:           o.self,
			Peers:          o.peers,
			ForwardTimeout: o.forwardTimeout,
			ProbeInterval:  o.probeInterval,
			HedgeDelay:     o.hedgeDelay,
			ReplicaBudget:  o.replicaBudget,
			Logger:         o.logger,
		})
		if err != nil {
			return nil, err
		}
		fwd.RegisterMetrics(reg)
		o.logger.Info("fleet mode", tlog.F("self", fwd.Self()), tlog.F("nodes", len(fwd.Nodes())))
	}
	srv, err := service.Open(service.Config{
		Workers:        o.workers,
		QueueDepth:     o.queue,
		CacheEntries:   o.cache,
		CacheDir:       o.cacheDir,
		DiskCacheBytes: o.diskMax,
		MaxJobs:        o.maxJobs,
		FleetSize:      o.fleet,
		RatePerSec:     o.rate,
		RateBurst:      o.burst,
		TrustProxy:     o.trustProxy,
		Forwarder:      forwarderOrNil(fwd),
		Metrics:        reg,
		Logger:         o.logger,
	})
	if err != nil {
		if fwd != nil {
			fwd.Close()
		}
		return nil, err
	}

	// Campaign routes share the sweep manager: campaign cells and ad-hoc
	// sweeps coalesce in one queue and result cache.
	mux := http.NewServeMux()
	campaign.NewAPI(srv.Manager()).Register(mux)
	// In fleet mode the membership admin API (join/leave at runtime)
	// rides the same listener as the sweep API.
	if fwd != nil {
		mux.Handle("/v1/fleet/peers", fwd.AdminHandler())
	}
	mux.Handle("/", srv)

	// Profiling routes are opt-in: the handlers are registered on this
	// mux explicitly (never on http.DefaultServeMux), so without -pprof
	// nothing introspectable is exposed. Mutex/block sampling rides the
	// same opt-in: the profiles are only reachable through these routes,
	// and sampling costs (a little) at runtime.
	if o.pprof {
		runtime.SetMutexProfileFraction(o.mutexFraction)
		runtime.SetBlockProfileRate(o.blockRate)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	return &daemon{
		opts: o,
		log:  o.logger.With(tlog.F("subsys", "daemon")),
		srv:  srv,
		fwd:  fwd,
		http: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}, nil
}

// forwarderOrNil converts the optional forwarder for Config without
// turning a nil *fleet.Forwarder into a non-nil interface value.
func forwarderOrNil(f *fleet.Forwarder) service.Forwarder {
	if f == nil {
		return nil
	}
	return f
}

// close releases everything newDaemon opened: the manager (which
// flushes the cache tiers) and the fleet prober.
func (d *daemon) close() {
	d.srv.Close()
	if d.fwd != nil {
		d.fwd.Close()
	}
}

// serve accepts connections on ln until ctx is cancelled, then drains
// gracefully: stop accepting, refuse new submissions, let in-flight
// sweeps finish within the drain budget, flush the durable cache tier,
// return. ln is closed by the time serve returns.
func (d *daemon) serve(ctx context.Context, ln net.Listener) error {
	o := d.opts
	errc := make(chan error, 1)
	go func() {
		d.log.Info("listening",
			tlog.F("addr", ln.Addr().String()), tlog.F("workers", o.workers),
			tlog.F("queue", o.queue), tlog.F("cache", o.cache),
			tlog.F("fleet", o.fleet), tlog.F("cache_dir", o.cacheDir))
		errc <- d.http.Serve(ln)
	}()
	if d.fwd != nil && len(o.join) > 0 {
		// Announce after the listener is up so seeds that immediately
		// probe us find a live /healthz.
		go d.joinFleet(ctx)
	}

	select {
	case err := <-errc:
		d.close()
		return err
	case <-ctx.Done():
	}

	d.log.Info("draining: refusing new work, waiting for in-flight sweeps",
		tlog.F("budget", o.drainTimeout.String()))
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()

	// Drain the job manager and the HTTP server concurrently: the
	// manager immediately starts refusing submissions (503 + Retry-After)
	// and waits for running sweeps, while Shutdown stops accepting
	// connections and waits for in-flight handlers — including NDJSON
	// event streams, which end when their jobs reach a terminal state.
	// Sequencing these would deadlock the stream case.
	drained := make(chan error, 1)
	go func() { drained <- d.srv.Manager().Drain(drainCtx) }()
	shutdownErr := d.http.Shutdown(drainCtx)
	drainErr := <-drained
	// Drain closed the manager, which flushed and closed the cache
	// tiers; close here idempotently covers the forwarder too.
	d.close()

	if drainErr != nil {
		return fmt.Errorf("drain cut short after %v: %w (remaining sweeps cancelled)", o.drainTimeout, drainErr)
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	d.log.Info("drained cleanly")
	return nil
}

// joinFleet announces this node to its -join seeds via the membership
// admin API, adopting the seeds' node set from the responses. Seeds
// may still be booting (a whole fleet often starts at once), so
// announcements retry every 500ms for up to 30s before the daemon
// settles for whatever -peers gave it.
func (d *daemon) joinFleet(ctx context.Context) {
	jctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for {
		n, err := d.fwd.Join(jctx, d.opts.join)
		if err == nil {
			d.log.Info("joined fleet",
				tlog.F("seeds", n), tlog.F("nodes", len(d.fwd.Nodes())),
				tlog.F("membership_version", d.fwd.MembershipVersion()))
			return
		}
		select {
		case <-jctx.Done():
			d.log.Warn("fleet join gave up", tlog.Err(err))
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// run is the daemon's whole lifecycle: validate, open, listen, serve
// until ctx says stop, drain.
func run(ctx context.Context, o options) error {
	if err := o.validate(); err != nil {
		return err
	}
	d, err := newDaemon(o)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		d.close()
		return err
	}
	return d.serve(ctx, ln)
}

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, optionsFromFlags()); err != nil {
		fmt.Fprintln(os.Stderr, "hbmvoltd:", err)
		os.Exit(1)
	}
}
