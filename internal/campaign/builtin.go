package campaign

import (
	"fmt"

	"hbmvolt/internal/faults"
)

// PaperRepro returns the built-in campaign that regenerates the paper's
// full result family: the Fig. 2/3 power sweep, the Fig. 4/5/6 fault
// atlas, the SEC-DED mitigation ablation, and an Algorithm 1
// reliability sweep.
//
// With smoke set, the Monte-Carlo scenarios run on the 1/1024-scale
// board with a small batch — seconds of compute, byte-stable output —
// which is what the CI golden-regression gate pins: the full ladder
// under sparse enumeration, plus a subset scenario re-testing the edge
// of the safe region with the bit-exact sampler. The full campaign runs
// Algorithm 1 at the complete 8 GB scale with sparse enumeration.
func PaperRepro(smoke bool) Spec {
	scenarios := []Scenario{
		{
			Name: "fig2-power",
			Kind: "power",
			Grid: faults.DisplayGrid(),
		},
		{
			Name: "faultmap",
			Kind: "faultmap",
		},
		{
			Name: "ecc-mitigation",
			Kind: "ecc-study",
		},
	}
	if smoke {
		scenarios = append(scenarios,
			Scenario{
				Name:   "algorithm1",
				Kind:   "reliability",
				Scales: []uint64{1024},
				Batch:  2,
				Repeat: 2,
			},
			Scenario{
				Name:        "algorithm1-exact",
				Kind:        "reliability",
				Scales:      []uint64{1024},
				Modes:       []string{"exact"},
				Grid:        []float64{0.93, 0.90, 0.87},
				Ports:       []int{5, 18},
				PatternSets: [][]string{{"all1"}, {"all0"}},
				Batch:       2,
			},
		)
	} else {
		scenarios = append(scenarios, Scenario{
			Name:   "algorithm1",
			Kind:   "reliability",
			Scales: []uint64{1},
			Batch:  5,
		})
	}
	return Spec{
		Name:        "paper-repro",
		Description: "DATE 2021 HBM undervolting result family: power sweep (Figs. 2-3), fault atlas (Figs. 4-6), SEC-DED ablation, Algorithm 1 reliability",
		Scenarios:   scenarios,
	}
}

// Builtin resolves a built-in campaign by name. Unknown names return an
// error listing what exists.
func Builtin(name string, smoke bool) (Spec, error) {
	switch name {
	case "paper-repro":
		return PaperRepro(smoke), nil
	default:
		return Spec{}, badSpec("unknown built-in campaign %q (have %q)", name, BuiltinNames())
	}
}

// BuiltinNames lists the built-in campaign names.
func BuiltinNames() []string { return []string{"paper-repro"} }

// LoadOrBuiltin resolves specArg as a built-in campaign name first,
// then as a spec file path — the CLI's lookup rule.
func LoadOrBuiltin(specArg string, smoke bool) (Spec, error) {
	for _, n := range BuiltinNames() {
		if specArg == n {
			return Builtin(specArg, smoke)
		}
	}
	spec, err := Load(specArg)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign spec %q is neither a built-in (%q) nor a readable spec file: %w",
			specArg, BuiltinNames(), err)
	}
	return spec, nil
}
