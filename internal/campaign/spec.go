// Package campaign is the declarative experiment-campaign engine: it
// turns a multi-scenario experiment description — the paper's figure
// suite, an ECC ablation, a seed-sensitivity study — into a plan of
// normalized sweep requests, executes them through the sweep service's
// job manager (internal/service), and emits a deterministic manifest
// plus per-scenario NDJSON artifacts.
//
// A campaign spec names a list of scenarios. Each scenario selects a
// sweep kind (reliability | power | faultmap | ecc-study) and a set of
// axes — device seeds, capacity scales, sampling modes, monitor noise,
// pattern sets — whose cross-product expands into one cell per
// combination. Cells are keyed by the service's fingerprint-based cache
// key, so duplicate cells (within a campaign, across campaigns, or
// across repeated runs against one daemon) coalesce onto a single
// computation, and re-running a campaign yields byte-identical
// artifacts: every payload is a pure function of its normalized
// request, and the manifest orders cells by spec position, never by
// completion order.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"hbmvolt/internal/service"
)

// Spec is a declarative experiment campaign: a named list of scenarios,
// parseable from a JSON file.
type Spec struct {
	// Name labels the campaign (and its manifest). Names must be
	// filename-safe: lowercase letters, digits, '.', '_' and '-'.
	Name string `json:"name"`
	// Description is free-form documentation carried into the manifest.
	Description string `json:"description,omitempty"`
	// Scenarios are executed in order; each expands into one or more
	// cells (see Scenario).
	Scenarios []Scenario `json:"scenarios"`

	// cells caches the expansion Normalize performs for validation, so
	// Expand after Normalize is free. Mutating a normalized spec's
	// scenarios invalidates the spec; re-Normalize it.
	cells []Cell
}

// Scenario is one experiment family within a campaign. Multi-valued
// axis fields cross-multiply: a scenario with 2 seeds × 2 modes expands
// into 4 cells. Empty axes select a single default cell along that
// dimension. Scalar shape fields are shared by every cell.
type Scenario struct {
	// Name labels the scenario and its artifact file (filename-safe,
	// unique within the campaign).
	Name string `json:"name"`
	// Kind is "reliability", "power", "faultmap" or "ecc-study".
	Kind string `json:"kind"`

	// Seeds are the device instances to realize (default {0}, the
	// calibrated paper board).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Scales are the capacity divisors to test (reliability/power;
	// powers of two; default {0} = the service default).
	Scales []uint64 `json:"scales,omitempty"`
	// Modes selects fault-sampling modes, "sparse" and/or "exact"
	// (reliability only; default {"sparse"}).
	Modes []string `json:"modes,omitempty"`
	// Noise lists monitor-chain noise sigmas (power only; default {0}).
	Noise []float64 `json:"noise,omitempty"`
	// PatternSets lists test-pattern sets, one cell per set
	// (reliability only; default one cell with the paper's {all1,all0}).
	PatternSets [][]string `json:"pattern_sets,omitempty"`

	// Grid is the voltage ladder shared by every cell (nil = the
	// paper's 1.20 V → 0.81 V sweep).
	Grid []float64 `json:"grid,omitempty"`
	// Ports restricts reliability cells to these AXI ports (nil = all).
	Ports []int `json:"ports,omitempty"`
	// PortCounts are the power cells' bandwidth operating points.
	PortCounts []int `json:"port_counts,omitempty"`
	// Batch is the reliability repetition count (0 = service default).
	Batch int `json:"batch,omitempty"`
	// Samples is the power sweep's monitor reads per point (0 = default).
	Samples int `json:"samples,omitempty"`
	// Repeat submits every cell this many times (default 1). Repeats
	// coalesce onto one computation through the service's cache key —
	// they exercise the coalescing/cache path, not independent reruns —
	// and the engine guards that the layer returned consistent bytes
	// for each submission.
	Repeat int `json:"repeat,omitempty"`
}

// Cell is one expanded scenario point: a normalized sweep request plus
// its position in the campaign.
type Cell struct {
	// Scenario is the owning scenario's name; Index is the cell's
	// position within it (axis order: seeds × scales × modes × noise ×
	// pattern sets).
	Scenario string `json:"scenario"`
	Index    int    `json:"index"`
	// Repeat is the execution count inherited from the scenario.
	Repeat int `json:"repeat"`
	// Request is the normalized sweep request (Workers always 0; the
	// engine applies its fleet hint on submission only).
	Request service.SweepRequest `json:"request"`
	// Key is the request's service cache key.
	Key uint64 `json:"-"`
}

// SpecError marks an invalid campaign spec.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func badSpec(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// maxCells bounds a campaign's total cross-product size.
const maxCells = 512

// maxRepeat bounds per-cell repetitions.
const maxRepeat = 8

// nameOK reports whether s is a safe campaign/scenario/artifact name.
func nameOK(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case i > 0 && (c == '-' || c == '_' || c == '.'):
		default:
			return false
		}
	}
	return true
}

// Parse decodes a campaign spec from JSON, rejecting unknown fields so
// a typo'd axis name cannot silently select a default.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, badSpec("parsing campaign spec: %v", err)
	}
	return s, nil
}

// Load reads and parses a campaign spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return Parse(data)
}

// Normalize validates the spec's structure, fills scenario defaults in
// place, and verifies that every cell the spec expands to is a valid,
// normalizable sweep request. After Normalize, Expand cannot fail.
func (s *Spec) Normalize() error {
	if !nameOK(s.Name) {
		return badSpec("campaign name %q: want lowercase letters, digits, '.', '_', '-' (max 64)", s.Name)
	}
	if len(s.Scenarios) == 0 {
		return badSpec("campaign %q has no scenarios", s.Name)
	}
	seen := make(map[string]bool, len(s.Scenarios))
	total := 0
	for i := range s.Scenarios {
		sc := &s.Scenarios[i]
		if !nameOK(sc.Name) {
			return badSpec("scenario %d name %q: want lowercase letters, digits, '.', '_', '-' (max 64)", i, sc.Name)
		}
		if seen[sc.Name] {
			return badSpec("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.normalize(); err != nil {
			return badSpec("scenario %q: %v", sc.Name, err)
		}
		total += sc.cellCount()
		if total > maxCells {
			return badSpec("campaign expands to more than %d cells", maxCells)
		}
	}
	cells, err := s.expand()
	if err != nil {
		return err
	}
	s.cells = cells
	return nil
}

// normalize fills one scenario's axis defaults and checks axis
// applicability against the kind. Request-level validation (grids,
// patterns, ports, ...) is delegated to service.SweepRequest.Normalize
// during expansion, so the two layers can never disagree.
func (sc *Scenario) normalize() error {
	switch sc.Kind {
	case service.KindReliability:
	case service.KindPower:
		if len(sc.Modes) != 0 {
			return badSpec("modes axis applies to kind %q only", service.KindReliability)
		}
		if len(sc.PatternSets) != 0 {
			return badSpec("pattern_sets axis applies to kind %q only", service.KindReliability)
		}
	case service.KindFaultMap, service.KindECCStudy:
		if len(sc.Modes) != 0 || len(sc.PatternSets) != 0 || len(sc.Scales) != 0 || len(sc.Noise) != 0 {
			return badSpec("seeds and grid are the only axes of kind %q", sc.Kind)
		}
	case "":
		return badSpec("missing kind: want one of %q", service.Kinds)
	default:
		return badSpec("unknown kind %q: want one of %q", sc.Kind, service.Kinds)
	}
	if len(sc.Noise) != 0 && sc.Kind != service.KindPower {
		return badSpec("noise axis applies to kind %q only", service.KindPower)
	}
	for _, m := range sc.Modes {
		if m != "sparse" && m != "exact" {
			return badSpec("mode %q: want \"sparse\" or \"exact\"", m)
		}
	}
	if sc.Repeat == 0 {
		sc.Repeat = 1
	}
	if sc.Repeat < 1 || sc.Repeat > maxRepeat {
		return badSpec("repeat %d out of [1, %d]", sc.Repeat, maxRepeat)
	}
	return nil
}

// Axis accessors return the scenario's cross-product dimensions with
// singleton defaults for empty axes. Defaults are applied here, at
// expansion, never written back into the spec — a normalized spec
// re-marshals to an equally valid spec.
func (sc *Scenario) axisSeeds() []uint64 {
	if len(sc.Seeds) == 0 {
		return []uint64{0}
	}
	return sc.Seeds
}

func (sc *Scenario) axisScales() []uint64 {
	if len(sc.Scales) == 0 {
		return []uint64{0}
	}
	return sc.Scales
}

func (sc *Scenario) axisModes() []string {
	if len(sc.Modes) == 0 {
		return []string{"sparse"}
	}
	return sc.Modes
}

func (sc *Scenario) axisNoise() []float64 {
	if len(sc.Noise) == 0 {
		return []float64{0}
	}
	return sc.Noise
}

func (sc *Scenario) axisPatternSets() [][]string {
	if len(sc.PatternSets) == 0 {
		return [][]string{nil}
	}
	return sc.PatternSets
}

// cellCount is the scenario's cross-product size.
func (sc *Scenario) cellCount() int {
	return len(sc.axisSeeds()) * len(sc.axisScales()) * len(sc.axisModes()) *
		len(sc.axisNoise()) * len(sc.axisPatternSets())
}

// CellTotal is the campaign's total cell count.
func (s *Spec) CellTotal() int {
	n := 0
	for i := range s.Scenarios {
		n += s.Scenarios[i].cellCount()
	}
	return n
}

// Executions is the total number of (cell, repeat) executions a
// normalized spec performs.
func (s *Spec) Executions() int {
	n := 0
	for i := range s.Scenarios {
		sc := &s.Scenarios[i]
		repeat := sc.Repeat
		if repeat < 1 {
			repeat = 1
		}
		n += sc.cellCount() * repeat
	}
	return n
}

// Expand walks the normalized spec's cross-products in deterministic
// axis order (seeds, then scales, modes, noise, pattern sets) and
// returns one normalized, cache-keyed sweep request per cell, in
// campaign order. After Normalize the expansion is served from its
// validation pass rather than recomputed.
func (s *Spec) Expand() ([]Cell, error) {
	if s.cells != nil {
		return s.cells, nil
	}
	return s.expand()
}

func (s *Spec) expand() ([]Cell, error) {
	var cells []Cell
	for si := range s.Scenarios {
		sc := &s.Scenarios[si]
		index := 0
		for _, seed := range sc.axisSeeds() {
			for _, scale := range sc.axisScales() {
				for _, mode := range sc.axisModes() {
					for _, noise := range sc.axisNoise() {
						for _, patterns := range sc.axisPatternSets() {
							req, err := sc.request(seed, scale, mode, noise, patterns)
							if err != nil {
								return nil, badSpec("scenario %q cell %d: %v", sc.Name, index, err)
							}
							key, err := req.CacheKey()
							if err != nil {
								return nil, badSpec("scenario %q cell %d: %v", sc.Name, index, err)
							}
							repeat := sc.Repeat
							if repeat < 1 {
								repeat = 1
							}
							cells = append(cells, Cell{
								Scenario: sc.Name,
								Index:    index,
								Repeat:   repeat,
								Request:  req,
								Key:      key,
							})
							index++
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// request builds and normalizes the sweep request of one cell. Shape
// fields are copied for every kind and left to the service's validation,
// so an inapplicable field (a batch on a power scenario) is rejected
// with the service's own message rather than silently dropped.
func (sc *Scenario) request(seed, scale uint64, mode string, noise float64, patterns []string) (service.SweepRequest, error) {
	req := service.SweepRequest{
		Kind:       sc.Kind,
		Seed:       seed,
		Scale:      scale,
		Exact:      mode == "exact",
		Grid:       sc.Grid,
		Patterns:   patterns,
		Ports:      sc.Ports,
		PortCounts: sc.PortCounts,
		Batch:      sc.Batch,
		Samples:    sc.Samples,
		Noise:      noise,
	}
	if err := req.Normalize(); err != nil {
		return service.SweepRequest{}, err
	}
	return req, nil
}
