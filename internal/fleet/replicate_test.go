package fleet

import (
	"testing"
	"time"

	"hbmvolt/internal/service"
)

func TestReplicatorAdmit(t *testing.T) {
	r := replicator{budget: 100}
	if !r.admit(60) || !r.admit(40) {
		t.Fatal("payloads within the budget must be admitted")
	}
	if r.admit(1) {
		t.Fatal("a payload past the exhausted budget must be skipped")
	}
	if r.payloads.Load() != 2 || r.bytes.Load() != 100 || r.skipped.Load() != 1 {
		t.Fatalf("ledger = %d payloads / %d bytes / %d skipped, want 2/100/1",
			r.payloads.Load(), r.bytes.Load(), r.skipped.Load())
	}

	// A too-large payload is skipped but smaller later ones still fit.
	partial := replicator{budget: 100}
	if partial.admit(101) {
		t.Fatal("an over-budget payload must be skipped")
	}
	if !partial.admit(100) {
		t.Fatal("the remaining budget must stay available after a skip")
	}

	disabled := replicator{budget: -1}
	if disabled.admit(1) || disabled.skipped.Load() != 1 {
		t.Fatal("negative budget must skip everything, counting the skips")
	}
}

// TestReplicatedPayloadServedFromDiskAfterOwnerDeath is the tentpole's
// replication proof: a forwarded payload is written through to the
// requester's durable tier, so after the requester restarts (job table
// and memory cache gone) AND the owner dies, the key still serves from
// local disk — byte-identical, with sweep_runs staying 0.
func TestReplicatedPayloadServedFromDiskAfterOwnerDeath(t *testing.T) {
	dir := t.TempDir()
	lns, urls := listenN(t, 2)
	nodes := startNodesOn(t, lns, urls, func(i int, o *Options) {
		o.ForwardTimeout = 500 * time.Millisecond
	}, func(i int, c *service.Config) {
		if i == 0 {
			c.CacheDir = dir
		}
	})
	seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
	req := smallReq(seed)
	want := localPayload(t, req)

	j, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[1].url || !info.Replicated {
		t.Fatalf("ServeInfo = %+v, want a forwarded serve admitted for replication", info)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.Replication.Payloads != 1 || h.Replication.Bytes != int64(len(want)) || h.Replication.Skipped != 0 {
		t.Fatalf("replication ledger = %+v, want exactly this payload's bytes admitted", h.Replication)
	}

	// Restart the requester's service over the same cache dir — its job
	// table and memory tier die with it — and kill the owner.
	nodes[0].hs.Close()
	nodes[0].srv.Close()
	nodes[1].kill()

	srv2, err := service.Open(service.Config{
		Workers: 2, QueueDepth: 64, CacheDir: dir, Forwarder: nodes[0].fwd,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	j2, _, _, err := srv2.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j2.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("post-restart Wait = %v, %v", st, err)
	}
	if string(j2.Payload()) != string(want) {
		t.Fatal("disk-served payload differs from single-node compute")
	}
	if runs := srv2.Manager().Runs(); runs != 0 {
		t.Fatalf("sweep_runs = %d after owner death, want 0 (replicated key must serve from the disk tier)", runs)
	}
	st := srv2.Manager().Stats()
	if st.DiskCache == nil || st.DiskCache.Recovered != 1 {
		t.Fatalf("disk tier = %+v, want the replicated payload recovered at boot", st.DiskCache)
	}
}

// TestReplicationBudgetExhaustedStaysOffDisk forwards with a 1-byte
// replica budget: the payload must be skipped (memory-only), the skip
// must be visible in the ledger, and the durable tier must stay empty.
func TestReplicationBudgetExhaustedStaysOffDisk(t *testing.T) {
	dir := t.TempDir()
	lns, urls := listenN(t, 2)
	nodes := startNodesOn(t, lns, urls, func(i int, o *Options) {
		o.ForwardTimeout = 500 * time.Millisecond
		if i == 0 {
			o.ReplicaBudget = 1 // any real payload overflows
		}
	}, func(i int, c *service.Config) {
		if i == 0 {
			c.CacheDir = dir
		}
	})
	seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
	req := smallReq(seed)

	j, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[1].url || info.Replicated {
		t.Fatalf("ServeInfo = %+v, want a forwarded serve NOT admitted for replication", info)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.Replication.Payloads != 0 || h.Replication.Skipped != 1 || h.Replication.BudgetBytes != 1 {
		t.Fatalf("replication ledger = %+v, want the payload skipped under a 1-byte budget", h.Replication)
	}
	st := nodes[0].srv.Manager().Stats()
	if st.DiskCache == nil || st.DiskCache.Entries != 0 {
		t.Fatalf("disk tier = %+v, want no entries (skipped payloads stay memory-only)", st.DiskCache)
	}
	// The payload is still served hot from memory on a resubmit.
	j2, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st2, err := j2.Wait(t.Context()); err != nil || st2 != service.StateDone {
		t.Fatalf("resubmit Wait = %v, %v", st2, err)
	}
	if runs := nodes[0].srv.Manager().Runs(); runs != 0 {
		t.Fatalf("requester ran %d sweeps, want 0 (memory tier serves the skipped payload)", runs)
	}
}

// TestLocalPayloadsBypassReplicationBudget pins the budget's scope:
// locally computed sweeps always write through to the durable tier —
// the budget gates only remote payloads.
func TestLocalPayloadsBypassReplicationBudget(t *testing.T) {
	dir := t.TempDir()
	lns, urls := listenN(t, 2)
	nodes := startNodesOn(t, lns, urls, func(i int, o *Options) {
		if i == 0 {
			o.ReplicaBudget = -1 // replication fully disabled
		}
	}, func(i int, c *service.Config) {
		if i == 0 {
			c.CacheDir = dir
		}
	})
	seed := seedOwnedBy(t, nodes[0].fwd, nodes[0].url)
	j, _, _, err := nodes[0].srv.Manager().Submit(smallReq(seed))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	st := nodes[0].srv.Manager().Stats()
	if st.DiskCache == nil || st.DiskCache.Entries != 1 {
		t.Fatalf("disk tier = %+v, want the locally owned payload durable despite replication off", st.DiskCache)
	}
}
