package hbmvolt

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"hbmvolt/internal/service"
)

// TestCampaignFig2MatchesLegacy pins the campaign engine's Fig. 2/3
// path to the legacy figures.go path byte for byte: the same device
// configuration rendered through System.RenderFig2/RenderFig3 and
// through a campaign power scenario's decoded payload must be
// indistinguishable.
func TestCampaignFig2MatchesLegacy(t *testing.T) {
	const scale = 1024

	// Legacy path: a live System (sparse sampler, matching the board the
	// service builds for the request below).
	sys, err := New(Config{Scale: scale, SparseFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if _, err := sys.RenderFig2(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RenderFig3(&legacy); err != nil {
		t.Fatal(err)
	}

	// Campaign path: the same experiment as a one-scenario spec.
	spec := CampaignSpec{
		Name: "fig2-pin",
		Scenarios: []CampaignScenario{{
			Name:   "fig2",
			Kind:   "power",
			Scales: []uint64{scale},
			Grid:   DisplayGrid(),
		}},
	}
	res, err := RunCampaign(context.Background(), spec, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env, err := service.DecodeResult(res.Scenarios[0].Cells[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if env.Power == nil {
		t.Fatal("power scenario returned no power result")
	}
	var viaCampaign bytes.Buffer
	if err := renderFig2(&viaCampaign, env.Request.Grid, env.Request.PortCounts, env.Power); err != nil {
		t.Fatal(err)
	}
	if err := renderFig3(&viaCampaign, env.Request.Grid, env.Request.PortCounts, env.Power); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(legacy.Bytes(), viaCampaign.Bytes()) {
		t.Fatalf("campaign Fig. 2/3 output differs from the legacy path:\n--- legacy ---\n%s\n--- campaign ---\n%s",
			legacy.String(), viaCampaign.String())
	}
}

// TestCampaignRenderAnalyticFigures pins the campaign renderers for the
// analytic scenarios (Figs. 4-6, ECC) to the legacy System renderers.
func TestCampaignRenderAnalyticFigures(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if _, err := sys.RenderFig4(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := sys.RenderFig5(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := sys.RenderFig6(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RenderECCStudy(&legacy); err != nil {
		t.Fatal(err)
	}

	spec := CampaignSpec{
		Name: "analytic-pin",
		Scenarios: []CampaignScenario{
			{Name: "fmap", Kind: "faultmap"},
			{Name: "ecc", Kind: "ecc-study"},
		},
	}
	res, err := RunCampaign(context.Background(), spec, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var viaCampaign bytes.Buffer
	for _, sr := range res.Scenarios {
		env, err := service.DecodeResult(sr.Cells[0].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := renderEnvelope(&viaCampaign, env); err != nil {
			t.Fatal(err)
		}
	}

	if !bytes.Equal(legacy.Bytes(), viaCampaign.Bytes()) {
		t.Fatal("campaign analytic figure output differs from the legacy path")
	}
}

// TestCampaignPaperReproSmokeGolden is the golden-regression pin for
// the whole stack: the built-in paper-repro campaign at smoke scale
// must reproduce the committed manifest and NDJSON artifacts byte for
// byte. Regenerate with: go test -run TestCampaignPaperReproSmokeGolden -update .
func TestCampaignPaperReproSmokeGolden(t *testing.T) {
	res, err := RunCampaign(context.Background(), PaperReproCampaign(true), CampaignOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteArtifacts(dir); err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join("testdata", "campaign", "paper-repro-smoke")

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries {
		got, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		goldenPath := filepath.Join(goldenDir, e.Name())
		if *updateGolden {
			if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden; run with -update after verifying the change", e.Name())
		}
	}
	if !*updateGolden {
		goldens, err := os.ReadDir(goldenDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(goldens) != len(entries) {
			t.Errorf("campaign wrote %d files, goldens have %d", len(entries), len(goldens))
		}
	}
}

// TestCampaignPaperReproSmokeSharedGolden pins the sweep planner's
// realization separately: the same smoke campaign run with
// SharedEnumeration must reproduce its own committed goldens byte for
// byte, at -j 1 and at -j 8 (the acceptance worker counts). The shared
// mode is a distinct realization of the sparse device, so these
// goldens differ from the legacy ones — which is exactly why both sets
// are pinned. Regenerate with:
// go test -run TestCampaignPaperReproSmokeSharedGolden -update .
func TestCampaignPaperReproSmokeSharedGolden(t *testing.T) {
	run := func(jobs, fleet int) map[string][]byte {
		t.Helper()
		res, err := RunCampaign(context.Background(), PaperReproCampaign(true), CampaignOptions{
			Jobs: jobs, Fleet: fleet, SharedEnumeration: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Manifest.Plan == nil || res.Manifest.Plan.SharedCells == 0 {
			t.Fatal("planned smoke campaign carries no plan")
		}
		dir := t.TempDir()
		if err := res.WriteArtifacts(dir); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		return files
	}

	j1 := run(1, 1)
	j8 := run(4, 8)
	if len(j1) != len(j8) {
		t.Fatalf("artifact sets differ across fleets: %d vs %d", len(j1), len(j8))
	}
	for name, data := range j1 {
		if !bytes.Equal(data, j8[name]) {
			t.Errorf("%s differs between -j 1 and -j 8", name)
		}
	}

	goldenDir := filepath.Join("testdata", "campaign", "paper-repro-smoke-shared")
	if *updateGolden {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range j1 {
			if err := os.WriteFile(filepath.Join(goldenDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	goldens, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("missing shared goldens (run with -update): %v", err)
	}
	if len(goldens) != len(j1) {
		t.Errorf("campaign wrote %d files, shared goldens have %d", len(j1), len(goldens))
	}
	for _, e := range goldens {
		want, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := j1[e.Name()]
		if !ok {
			t.Errorf("golden %s not produced by the shared run", e.Name())
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from shared golden; run with -update after verifying the change", e.Name())
		}
	}
}
