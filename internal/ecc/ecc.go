// Package ecc implements the SEC-DED (single-error-correct, double-
// error-detect) extended Hamming(72,64) code used by server memory
// systems, as a mitigation layer for undervolting-induced stuck bits.
//
// The paper's related work (Salami et al. PDP'19, Chang et al.
// POMACS'17) asks how far built-in ECC can absorb reduced-voltage
// faults; this package powers that ablation in the benchmark harness:
// comparing raw fault rates against post-ECC uncorrectable rates shows
// how many extra 10 mV steps a SEC-DED layer buys.
package ecc

import "math/bits"

// DataBits and CodeBits give the code geometry: 64 data bits protected
// by 7 Hamming parity bits plus one overall parity bit.
const (
	DataBits = 64
	CodeBits = 72
)

// Codeword is a 72-bit extended Hamming codeword. Bit i of the codeword
// is bit i%64 of Lo for i < 64, else bit i-64 of Hi.
type Codeword struct {
	Lo uint64 // codeword bits 0..63
	Hi uint64 // codeword bits 64..71 (low 8 bits used)
}

// Bit returns codeword bit i.
func (c Codeword) Bit(i int) uint {
	if i < 64 {
		return uint(c.Lo>>i) & 1
	}
	return uint(c.Hi>>(i-64)) & 1
}

// FlipBit returns the codeword with bit i inverted (fault injection).
func (c Codeword) FlipBit(i int) Codeword {
	if i < 64 {
		c.Lo ^= 1 << i
	} else {
		c.Hi ^= 1 << (i - 64)
	}
	return c
}

// SetBit returns the codeword with bit i forced to v (stuck-at
// behaviour).
func (c Codeword) SetBit(i int, v uint) Codeword {
	if c.Bit(i) != v {
		return c.FlipBit(i)
	}
	return c
}

// Codeword layout: position 0 holds the overall parity; positions that
// are powers of two (1,2,4,...,64) hold the seven Hamming parity bits;
// the remaining 64 positions hold data bits in ascending order.

// isPow2 reports whether p is a power of two.
func isPow2(p int) bool { return p&(p-1) == 0 }

// dataPositions lists the codeword positions of the 64 data bits.
var dataPositions = func() [DataBits]int {
	var out [DataBits]int
	n := 0
	for p := 1; p < CodeBits; p++ {
		if !isPow2(p) {
			out[n] = p
			n++
		}
	}
	return out
}()

// Encode builds the extended Hamming codeword for 64 data bits.
func Encode(data uint64) Codeword {
	var c Codeword
	for i, p := range dataPositions {
		c = c.SetBit(p, uint(data>>i)&1)
	}
	// Hamming parities: parity bit at position 2^k covers every position
	// with bit k set.
	for k := 0; k < 7; k++ {
		mask := 1 << k
		parity := uint(0)
		for p := 1; p < CodeBits; p++ {
			if p&mask != 0 && !isPow2(p) {
				parity ^= c.Bit(p)
			}
		}
		c = c.SetBit(mask, parity)
	}
	// Overall parity over the whole codeword makes it SEC-DED.
	c = c.SetBit(0, 0)
	c = c.SetBit(0, overallParity(c))
	return c
}

func overallParity(c Codeword) uint {
	return uint(bits.OnesCount64(c.Lo)+bits.OnesCount64(c.Hi)) & 1
}

// Result classifies a decode.
type Result int

const (
	// OK means the codeword was clean.
	OK Result = iota
	// Corrected means exactly one bit error was repaired.
	Corrected
	// Uncorrectable means a double error was detected (data invalid).
	Uncorrectable
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	default:
		return "uncorrectable"
	}
}

// Decode extracts the data bits, correcting a single-bit error and
// detecting double-bit errors. Triple and larger errors may alias (the
// fundamental SEC-DED limitation) — the Monte-Carlo tests quantify it.
func Decode(cw Codeword) (uint64, Result) {
	syndrome := 0
	for k := 0; k < 7; k++ {
		mask := 1 << k
		parity := uint(0)
		for p := 1; p < CodeBits; p++ {
			if p&mask != 0 {
				parity ^= cw.Bit(p)
			}
		}
		if parity != 0 {
			syndrome |= mask
		}
	}
	overallErr := overallParity(cw) != 0

	res := OK
	switch {
	case syndrome == 0 && !overallErr:
		// clean
	case overallErr:
		// Odd number of errors; assume one and correct it. Syndrome 0
		// means the overall parity bit itself flipped.
		cw = cw.FlipBit(syndrome)
		res = Corrected
	default:
		// Even number of errors with nonzero syndrome: detected, not
		// correctable.
		return 0, Uncorrectable
	}

	var data uint64
	for i, p := range dataPositions {
		data |= uint64(cw.Bit(p)) << i
	}
	return data, res
}

// WordFailureProb returns the probability that a 72-bit codeword whose
// cells fail independently at the given rate is uncorrectable (two or
// more faulty bits): 1 - (1-r)^72 - 72·r·(1-r)^71.
func WordFailureProb(cellRate float64) float64 {
	if cellRate <= 0 {
		return 0
	}
	if cellRate >= 1 {
		return 1
	}
	q := 1 - cellRate
	q71 := pow(q, CodeBits-1)
	return 1 - q*q71 - CodeBits*cellRate*q71
}

// CorrectableProb returns the probability of exactly one faulty bit in a
// codeword.
func CorrectableProb(cellRate float64) float64 {
	if cellRate <= 0 {
		return 0
	}
	if cellRate >= 1 {
		return 0
	}
	return CodeBits * cellRate * pow(1-cellRate, CodeBits-1)
}

// pow is a small positive-integer power helper (avoids math.Pow in hot
// loops).
func pow(x float64, n int) float64 {
	r := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}

// Overhead is the storage cost of the code: 12.5% extra bits.
const Overhead = float64(CodeBits-DataBits) / float64(DataBits)
