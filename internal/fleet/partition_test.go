package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"hbmvolt/internal/campaign"
	"hbmvolt/internal/chaos"
)

// The partition suite pins the fleet's headline guarantee: a campaign
// run against a 3-node fleet produces a manifest byte-identical to a
// single-node run, no matter which node dies, stalls, or severs its
// transfers mid-campaign. The chaos transport injects the partitions;
// the forwarder's degradation path absorbs them; the manifest bytes
// prove correctness never followed availability down.

// forwardSite is the chaos injection site wrapping node 0's fleet
// transport in these tests.
const forwardSite = "fleet.partition.forward"

// partitionSpec is the suite's workload: six distinct cheap
// reliability cells (3 seeds × 2 pattern sets), the same shape the
// crash-recovery suite pins.
func partitionSpec() campaign.Spec {
	return campaign.Spec{
		Name: "partition",
		Scenarios: []campaign.Scenario{{
			Name:        "rel",
			Kind:        "reliability",
			Seeds:       []uint64{0, 1, 2},
			PatternSets: [][]string{{"all1"}, {"all0"}},
			Scales:      []uint64{1024},
			Grid:        []float64{0.90, 0.89},
			Ports:       []int{0},
			Batch:       1,
		}},
	}
}

// goldenManifest runs the spec on a standalone single-node manager —
// no fleet anywhere — and returns its manifest bytes, the reference
// every partitioned fleet run must reproduce exactly.
func goldenManifest(t *testing.T) []byte {
	t.Helper()
	res, err := campaign.Run(t.Context(), partitionSpec(), campaign.Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// startPartitionFleet brings up a 3-node fleet whose (random) port
// draw gives every node ownership of at least one campaign cell, so
// partition scenarios always have remote-owned work to degrade.
// Rendezvous hashing keys on node URLs, so a lopsided draw is re-drawn
// with fresh ports. It returns the nodes plus each node's owned-cell
// count, keyed by URL.
func startPartitionFleet(t *testing.T, tune func(i int, o *Options)) ([]*testNode, map[string]int) {
	t.Helper()
	spec := partitionSpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 64; attempt++ {
		lns, urls := listenN(t, 3)
		router, err := New(Options{Self: urls[0], Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		owned := make(map[string]int)
		for _, c := range cells {
			owned[router.Owner(c.Key)]++
		}
		router.Close()
		if owned[urls[0]] > 0 && owned[urls[1]] > 0 && owned[urls[2]] > 0 {
			return startNodesOn(t, lns, urls, tune, nil), owned
		}
		for _, ln := range lns {
			ln.Close()
		}
	}
	t.Fatal("no port draw spread cell ownership over all 3 nodes in 64 attempts")
	return nil, nil
}

// runCampaign executes the suite's spec against node's manager and
// returns the manifest bytes.
func runCampaign(t *testing.T, node *testNode, opts campaign.Options) []byte {
	t.Helper()
	spec := partitionSpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Execute(t.Context(), node.srv.Manager(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestPartitionedOwnerManifestByteIdentical cuts node 0 off from both
// peers — four different ways — for an entire campaign: every
// remote-owned cell must be served degraded from local compute, the
// manifest must match the single-node golden byte for byte, and the
// degradation must be visible in /healthz.
func TestPartitionedOwnerManifestByteIdentical(t *testing.T) {
	golden := goldenManifest(t)
	scenarios := []struct {
		name  string
		fault chaos.Fault
	}{
		// The owner's process is gone: connections refuse immediately.
		{"owner-down", chaos.Fault{HTTP: chaos.HTTPRefuse}},
		// The owner is alive but slower than the hedging deadline.
		{"owner-slow", chaos.Fault{HTTP: chaos.HTTPSlow, Sleep: 500 * time.Millisecond}},
		// The link black-holes: packets vanish, nothing answers.
		{"owner-blackhole", chaos.Fault{HTTP: chaos.HTTPBlackhole}},
		// Transfers sever mid-body: bytes flow, then the connection dies.
		{"owner-drop-mid-body", chaos.Fault{HTTP: chaos.HTTPDropBody, DropAfter: 64}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			defer chaos.Activate(chaos.NewPlan().Set(forwardSite, sc.fault))()
			nodes, owned := startPartitionFleet(t, func(i int, o *Options) {
				o.ForwardTimeout = 200 * time.Millisecond
				if i == 0 {
					o.HTTPClient = &http.Client{Transport: &chaos.Transport{Site: forwardSite}}
				}
			})
			manifest := runCampaign(t, nodes[0], campaign.Options{})
			if !bytes.Equal(manifest, golden) {
				t.Fatalf("partitioned fleet manifest differs from single-node golden:\n fleet: %s\ngolden: %s", manifest, golden)
			}

			remote := owned[nodes[1].url] + owned[nodes[2].url]
			h := nodes[0].fwd.Health().(Health)
			if h.LocalOwned != uint64(owned[nodes[0].url]) || h.Forwarded != 0 || h.DegradedServes != uint64(remote) {
				t.Fatalf("health = %+v, want %d local, 0 forwarded, %d degraded", h, owned[nodes[0].url], remote)
			}

			// The same counters must be visible over the wire.
			resp, err := http.Get(nodes[0].url + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var hb struct {
				Fleet Health `json:"fleet"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
				t.Fatal(err)
			}
			if hb.Fleet.DegradedServes != uint64(remote) || len(hb.Fleet.Peers) != 2 {
				t.Fatalf("/healthz fleet block = %+v, want %d degraded serves and 2 peers", hb.Fleet, remote)
			}
		})
	}
}

// TestJoinLeaveMidCampaign churns membership while a campaign runs: a
// fourth node joins through the admin API after the second cell, and a
// founding peer is removed after the fourth. Rendezvous routing moves
// only the affected keys, every serve stays byte-identical, and the
// manifest cannot tell the churn happened.
func TestJoinLeaveMidCampaign(t *testing.T) {
	golden := goldenManifest(t)

	// A 3-node founding fleet with cell ownership spread over all three,
	// plus a 4th listener for the joiner.
	spec := partitionSpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*testNode
	var urls []string
	for attempt := 0; ; attempt++ {
		if attempt == 64 {
			t.Fatal("no port draw spread cell ownership over all 3 founding nodes in 64 attempts")
		}
		var lns []net.Listener
		lns, urls = listenN(t, 4)
		router, err := New(Options{Self: urls[0], Peers: urls[:3]})
		if err != nil {
			t.Fatal(err)
		}
		owned := make(map[string]int)
		for _, c := range cells {
			owned[router.Owner(c.Key)]++
		}
		router.Close()
		if owned[urls[0]] > 0 && owned[urls[1]] > 0 && owned[urls[2]] > 0 {
			tune := func(i int, o *Options) { o.ForwardTimeout = 300 * time.Millisecond }
			nodes = startNodesOn(t, lns[:3], urls[:3], tune, nil)
			// The joiner knows the whole fleet; the founders learn of it
			// only through the admin API mid-campaign.
			joiner := startNodesOn(t, lns[3:], urls[3:], func(i int, o *Options) {
				o.Peers = urls
				o.ForwardTimeout = 300 * time.Millisecond
			}, nil)
			nodes = append(nodes, joiner[0])
			break
		}
		for _, ln := range lns {
			ln.Close()
		}
	}

	adminPost := func(nodeURL, peer string) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"peer": peer})
		resp, err := http.Post(nodeURL+"/v1/fleet/peers", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/fleet/peers = HTTP %d", resp.StatusCode)
		}
	}
	adminDelete := func(nodeURL, peer string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, nodeURL+"/v1/fleet/peers?peer="+url.QueryEscape(peer), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE /v1/fleet/peers = HTTP %d", resp.StatusCode)
		}
	}

	manifest := runCampaign(t, nodes[0], campaign.Options{
		OnCell: func(done, total int) {
			switch done {
			case 2:
				adminPost(nodes[0].url, urls[3])
			case 4:
				adminDelete(nodes[0].url, urls[1])
			}
		},
	})
	if !bytes.Equal(manifest, golden) {
		t.Fatalf("manifest with join+leave mid-campaign differs from single-node golden:\n fleet: %s\ngolden: %s", manifest, golden)
	}
	if v := nodes[0].fwd.MembershipVersion(); v != 3 {
		t.Fatalf("membership version = %d, want 3 (boot + join + leave)", v)
	}
	m := nodes[0].fwd.Membership()
	if len(m.Nodes) != 3 {
		t.Fatalf("membership = %+v, want 3 nodes (4th joined, founder left)", m)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.LocalOwned+h.Forwarded+h.DegradedServes != 6 {
		t.Fatalf("health = %+v, want counters summing to the campaign's 6 cells", h)
	}
}

// TestKillEachPeerMidCampaign kills one real node — listener and all —
// after the campaign's first cell completes, for each peer in turn.
// (Node 0 itself being cut off from everyone is the scenario above.)
// Cells the victim served before dying were forwarded; cells after
// degrade to local compute; the manifest must not be able to tell.
func TestKillEachPeerMidCampaign(t *testing.T) {
	golden := goldenManifest(t)
	for _, victim := range []int{1, 2} {
		t.Run(fmt.Sprintf("kill-node%d", victim), func(t *testing.T) {
			nodes, _ := startPartitionFleet(t, func(i int, o *Options) {
				o.ForwardTimeout = 300 * time.Millisecond
			})
			var once sync.Once
			manifest := runCampaign(t, nodes[0], campaign.Options{
				OnCell: func(done, total int) {
					once.Do(nodes[victim].kill)
				},
			})
			if !bytes.Equal(manifest, golden) {
				t.Fatalf("manifest with node %d killed mid-campaign differs from single-node golden", victim)
			}
			h := nodes[0].fwd.Health().(Health)
			if h.LocalOwned+h.Forwarded+h.DegradedServes != 6 {
				t.Fatalf("health = %+v, want counters summing to the campaign's 6 cells", h)
			}
		})
	}
}
