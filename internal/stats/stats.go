// Package stats implements the statistical methodology of the paper's
// §II-C: batched measurements with quantified error and confidence
// margins, following Leveugle et al., "Statistical Fault Injection:
// Quantified Error and Confidence" (DATE 2009).
//
// The paper runs every test 130 times, which (for a worst-case proportion
// p = 0.5) corresponds to a ~7% margin of error at a 90% confidence
// level. SampleSize and MarginOfError encode that relationship so the
// harness can both justify the default batch size and let users trade
// runtime for tighter bounds.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Common two-sided confidence levels and their standard-normal critical
// values z such that P(|Z| <= z) = level.
var zTable = []struct {
	level float64
	z     float64
}{
	{0.80, 1.2816},
	{0.90, 1.6449},
	{0.95, 1.9600},
	{0.98, 2.3263},
	{0.99, 2.5758},
	{0.999, 3.2905},
}

// ZCritical returns the two-sided standard-normal critical value for the
// given confidence level (e.g. 0.90 -> 1.645). Levels between table
// entries are linearly interpolated; levels outside [0.80, 0.999] are an
// error.
func ZCritical(level float64) (float64, error) {
	if level < zTable[0].level || level > zTable[len(zTable)-1].level {
		return 0, fmt.Errorf("stats: confidence level %v outside supported range [%v, %v]",
			level, zTable[0].level, zTable[len(zTable)-1].level)
	}
	for i := 0; i < len(zTable)-1; i++ {
		lo, hi := zTable[i], zTable[i+1]
		if level >= lo.level && level <= hi.level {
			if hi.level == lo.level {
				return lo.z, nil
			}
			t := (level - lo.level) / (hi.level - lo.level)
			return lo.z + t*(hi.z-lo.z), nil
		}
	}
	return zTable[len(zTable)-1].z, nil
}

// SampleSize returns the number of trials required to estimate a
// proportion within margin e at the given confidence level, for a finite
// population of size n (Leveugle et al., Eq. for statistical fault
// injection). p is the assumed true proportion; use 0.5 for the
// worst case, which is what the paper does.
//
// For n <= 0 the population is treated as infinite.
func SampleSize(n int64, e, confidence, p float64) (int64, error) {
	if e <= 0 || e >= 1 {
		return 0, fmt.Errorf("stats: margin e=%v out of (0,1)", e)
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: proportion p=%v out of (0,1)", p)
	}
	z, err := ZCritical(confidence)
	if err != nil {
		return 0, err
	}
	inf := z * z * p * (1 - p) / (e * e)
	if n <= 0 {
		return int64(math.Ceil(inf)), nil
	}
	fn := float64(n)
	t := fn / (1 + e*e*(fn-1)/(z*z*p*(1-p)))
	return int64(math.Ceil(t)), nil
}

// MarginOfError inverts SampleSize for an infinite population: given a
// number of trials it returns the achievable margin at the stated
// confidence, assuming worst-case p = 0.5. The paper's batch of 130 runs
// yields ~7.2% at 90% confidence.
func MarginOfError(trials int, confidence float64) (float64, error) {
	if trials <= 0 {
		return 0, errors.New("stats: trials must be positive")
	}
	z, err := ZCritical(confidence)
	if err != nil {
		return 0, err
	}
	return z * 0.5 / math.Sqrt(float64(trials)), nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the unbiased sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Summary captures the batch statistics attached to every measured point
// in the experiment results.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	// CILow/CIHigh bound the mean at the confidence level used to build
	// the summary.
	CILow, CIHigh float64
	Confidence    float64
}

// Summarize computes a Summary of xs with a confidence interval on the
// mean at the given level.
func Summarize(xs []float64, confidence float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	z, err := ZCritical(confidence)
	if err != nil {
		return Summary{}, err
	}
	s := Summary{
		N:          len(xs),
		Mean:       Mean(xs),
		Stddev:     Stddev(xs),
		Min:        xs[0],
		Max:        xs[0],
		Confidence: confidence,
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	half := z * s.Stddev / math.Sqrt(float64(s.N))
	s.CILow, s.CIHigh = s.Mean-half, s.Mean+half
	return s, nil
}

// PoissonCI returns an approximate two-sided confidence interval for a
// Poisson rate given an observed count, using the normal approximation
// with a continuity floor. It is used to check Monte-Carlo fault counts
// against analytic expectations.
func PoissonCI(count float64, confidence float64) (lo, hi float64, err error) {
	z, err := ZCritical(confidence)
	if err != nil {
		return 0, 0, err
	}
	sd := math.Sqrt(math.Max(count, 1))
	lo = count - z*sd
	if lo < 0 {
		lo = 0
	}
	return lo, count + z*sd, nil
}

// NormalTail returns P(Z > x) for a standard normal Z.
func NormalTail(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}
