package service

import (
	"fmt"
	"sync"

	"hbmvolt/internal/lru"
	"hbmvolt/internal/telemetry"
)

// CacheTier is one storage level of the result cache: a payload store
// keyed by the request cache key. Payload slices are stored and
// returned by reference and must be treated as immutable by all
// parties; by the determinism contract a key's payload never changes,
// so every tier keeps the first write. Implementations are safe for
// concurrent use.
//
// The service ships two tiers — the in-process MemoryTier (LRU) and the
// crash-durable DiskTier — composed memory→disk write-through by the
// manager. The interface is the seam the distributed-fabric roadmap
// item plugs into (a Redis tier is another implementation, not another
// cache).
type CacheTier interface {
	// Get returns the payload for key, refreshing its recency.
	Get(key uint64) ([]byte, bool)
	// Put stores a payload. Storing an existing key refreshes recency
	// only; the stored bytes never change.
	Put(key uint64, payload []byte)
	// Len returns the live entry count.
	Len() int
	// Bytes returns the total payload bytes currently retained.
	Bytes() int64
	// Close flushes and releases the tier. The tier must not be used
	// afterwards.
	Close() error
}

// MemoryTier is the in-process CacheTier: a byte- and entry-bounded LRU
// over payload bytes (internal/lru).
type MemoryTier struct {
	mu  sync.Mutex
	lru *lru.Cache[uint64, []byte]
}

// NewMemoryTier builds a memory tier bounded by entry count and total
// payload bytes.
func NewMemoryTier(capacity int, maxBytes int64) *MemoryTier {
	if capacity < 1 {
		capacity = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &MemoryTier{lru: lru.New[uint64, []byte](capacity, maxBytes)}
}

// Get returns the payload for key, marking it most recently used.
func (t *MemoryTier) Get(key uint64) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Get(key)
}

// Put stores a payload, evicting least recently used entries while the
// entry or byte budget is exceeded.
func (t *MemoryTier) Put(key uint64, payload []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lru.Add(key, payload, int64(len(payload)))
}

// Len returns the live entry count.
func (t *MemoryTier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

// Bytes returns the total payload bytes currently retained.
func (t *MemoryTier) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Bytes()
}

// Evictions returns the cumulative capacity-eviction count.
func (t *MemoryTier) Evictions() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Evictions()
}

// Close is a no-op for the memory tier.
func (t *MemoryTier) Close() error { return nil }

// resultCache composes the cache tiers memory-first, write-through:
// a Put lands in every tier, a Get walks tiers top-down and promotes a
// lower-tier hit back into the tiers above it, so a payload that
// survived a restart on disk is served from memory from its second
// read on. It also owns the hit/miss accounting /healthz reports.
//
// Eviction pressure is measured in payload bytes (internal/lru),
// uniformly across result kinds: a campaign analytic envelope (a
// faultmap study carries the whole Fig. 4/5/6 atlas) weighs what it
// actually retains, the same way sweep payloads do, rather than
// counting as one entry like a two-point reliability sweep. An
// entry-count bound still applies on top, so a flood of tiny payloads
// cannot grow the index without limit.
type resultCache struct {
	mu sync.Mutex
	// tiers is ordered fastest-first; tiers[0] is always the MemoryTier,
	// tiers[1] (when present) the DiskTier.
	tiers []CacheTier
	// names labels the tiers in /metrics ("memory", "disk").
	names []string

	// hit[i] / miss[i] are the hbmvolt_cache_requests_total series for
	// tiers[i]: a hit answers from that tier, a miss falls through to
	// the next (or, from the last tier, to compute). /healthz derives
	// its cache_hits/cache_misses from these same counters — Touch
	// counts as a memory hit, a composite miss is a last-tier miss.
	hit, miss []*telemetry.Counter
}

// tierName labels a cache tier for metrics.
func tierName(t CacheTier, i int) string {
	switch t.(type) {
	case *MemoryTier:
		return "memory"
	case *DiskTier:
		return "disk"
	}
	return fmt.Sprintf("tier%d", i)
}

// newResultCache composes tiers fastest-first, registering each tier's
// lookup counters in met (nil met gets a private throwaway registry,
// for tests that only care about cache behavior).
func newResultCache(met *serviceMetrics, tiers ...CacheTier) *resultCache {
	if met == nil {
		met = newServiceMetrics(telemetry.NewRegistry())
	}
	c := &resultCache{tiers: tiers}
	for i, t := range tiers {
		name := tierName(t, i)
		c.names = append(c.names, name)
		c.hit = append(c.hit, met.cacheReq.With(name, "hit"))
		c.miss = append(c.miss, met.cacheReq.With(name, "miss"))
	}
	return c
}

// Get returns the payload for key from the fastest tier holding it,
// promoting lower-tier hits into the tiers above.
func (c *resultCache) Get(key uint64) ([]byte, bool) {
	payload, _, ok := c.getTier(key)
	return payload, ok
}

// getTier is Get plus the name of the tier that answered, for the
// trace layer's cache.lookup spans.
func (c *resultCache) getTier(key uint64) (payload []byte, tier string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, t := range c.tiers {
		payload, ok := t.Get(key)
		if !ok {
			c.miss[i].Inc()
			continue
		}
		for j := 0; j < i; j++ {
			c.tiers[j].Put(key, payload)
		}
		c.hit[i].Inc()
		return payload, c.names[i], true
	}
	return nil, "", false
}

// Put stores a payload write-through: every tier receives it, so a
// crash after Put returns loses nothing a restart cannot re-read.
func (c *resultCache) Put(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tier := range c.tiers {
		tier.Put(key, payload)
	}
}

// PutMemory stores a payload in the memory tier only, leaving the
// durable tier untouched. The manager uses it for forwarded payloads
// the fleet did not admit for replication: the bytes stay servable
// while hot, but never charge the disk tier — the owner's durable
// copy remains the canonical one.
func (c *resultCache) PutMemory(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tiers[0].Put(key, payload)
}

// Touch records a served-from-cache event for a payload that may or may
// not still be resident: resident entries are refreshed, evicted ones
// re-inserted (write-through, so the disk tier re-durables a payload
// that only survived on a completed job). Either way it counts as a
// hit — the caller served the bytes without recomputation, which is
// what the hit counter measures.
func (c *resultCache) Touch(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hit[0].Inc()
	for _, tier := range c.tiers {
		tier.Put(key, payload)
	}
}

// Len returns the live entry count of the memory tier.
func (c *resultCache) Len() int { return c.tiers[0].Len() }

// Bytes returns the payload bytes retained by the memory tier.
func (c *resultCache) Bytes() int64 { return c.tiers[0].Bytes() }

// Stats returns cumulative hit/miss counters, read from the same
// telemetry series /metrics renders: hits across all tiers (Touch
// included), misses of the last tier (a composite miss).
func (c *resultCache) Stats() (hits, misses uint64) {
	for _, h := range c.hit {
		hits += h.Value()
	}
	return hits, c.miss[len(c.miss)-1].Value()
}

// sampleTiers snapshots one per-tier value as labeled samples, for the
// registry's sampler-backed cache families.
func (c *resultCache) sampleTiers(f func(CacheTier) float64) []telemetry.Sample {
	out := make([]telemetry.Sample, len(c.tiers))
	for i, t := range c.tiers {
		out[i] = telemetry.Sample{Labels: []string{c.names[i]}, Value: f(t)}
	}
	return out
}

// disk returns the disk tier, if one is configured.
func (c *resultCache) disk() (*DiskTier, bool) {
	for _, tier := range c.tiers {
		if d, ok := tier.(*DiskTier); ok {
			return d, true
		}
	}
	return nil, false
}

// diskHits returns the cumulative Gets answered by the disk tier.
func (c *resultCache) diskHits() uint64 {
	for i, name := range c.names {
		if name == "disk" {
			return c.hit[i].Value()
		}
	}
	return 0
}

// Close releases every tier (slowest first, so the durable tier's final
// flush happens while the process is still healthy).
func (c *resultCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i := len(c.tiers) - 1; i >= 0; i-- {
		if err := c.tiers[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
