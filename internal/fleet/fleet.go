// Package fleet turns N hbmvoltd nodes into one logical sweep cache
// with provable graceful degradation.
//
// Every sweep/campaign request already condenses to a deterministic,
// normalized cache key (internal/service), and every payload is a pure
// function of that key — so ownership can be pure routing: rendezvous
// hashing assigns each key exactly one owner node, forwards go to the
// owner, and the fleet deduplicates compute without any coordination
// state, rebalancing only 1/N of the keyspace when a node joins or
// leaves.
//
// Membership is dynamic: the node set lives behind a versioned,
// copy-on-write view (see membership.go) that admin endpoints and the
// -join bootstrap mutate at runtime — no restarts, and by the
// rendezvous property each join/leave moves only ~1/N of the keys.
//
// Robustness is the point. A per-peer circuit breaker — fed by an
// active health prober (periodic, jittered /healthz probes) and
// passively by forward failures — decides whether an owner is worth
// trying at all; every HTTP call in the forward path runs under a
// hedging deadline; a forward that is slow past the hedge delay races
// the second-choice rendezvous owner with the loser cancelled (see
// hedge.go); and any failure to get a peer's bytes (open circuit,
// connection refused, black-holed link, slow past the deadline,
// payload severed mid-body) degrades to computing the cell locally.
// Because payloads are deterministic, the degraded response is
// byte-identical to the owner's — availability degrades, correctness
// never does, and the partition tests pin that equality byte for byte.
// Successful forwards are replicated: the verified payload is admitted
// (under a byte budget, see replicate.go) for write-through to the
// requester's own durable cache tier, so a later owner loss serves the
// key from local disk instead of recomputing.
//
// Every fallback is observable: X-Hbmvolt-Served-By /
// X-Hbmvolt-Degraded response headers, per-job served_by/degraded
// status fields, and per-peer circuit state plus degraded-serve,
// hedge, replication, and membership-version counters in /healthz and
// /metrics.
package fleet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hbmvolt/internal/service"
	"hbmvolt/internal/telemetry"
	tlog "hbmvolt/internal/telemetry/log"
)

// Options parameterizes a Forwarder.
type Options struct {
	// Self is this node's advertised base URL, e.g.
	// "http://10.0.0.1:8023". It must be the name peers know this node
	// by: every node must route a key to the same owner, so the node
	// set — and each node's spelling of it — must agree fleet-wide.
	Self string
	// Peers are the other nodes' base URLs at boot. Self is tolerated
	// in the list (and ignored), so every node can ship the same -peers
	// value. The set is mutable at runtime via AddPeer/RemovePeer (the
	// admin API) and Join; an empty boot set is valid for nodes that
	// bootstrap from -join seeds.
	Peers []string
	// ForwardTimeout is the hedging deadline on each HTTP call of the
	// forward path — submit, status poll, result fetch. A call slower
	// than this counts as a peer failure and the serve degrades to
	// local compute (default 2s).
	ForwardTimeout time.Duration
	// PollInterval paces remote job status polling (default 100ms).
	PollInterval time.Duration
	// ProbeInterval is the active health checker's period: every tick,
	// each peer's /healthz is probed and the result feeds its circuit
	// breaker — including the probe success that closes an open circuit
	// once the peer recovers. Ticks are jittered ±10% so daemons started
	// together don't probe in lockstep. 0 disables active probing (the
	// breaker then runs on passive forward failures and cooldown alone).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default ForwardTimeout).
	ProbeTimeout time.Duration
	// FailureThreshold is the consecutive-failure count that opens a
	// peer's circuit (default 3).
	FailureThreshold int
	// Cooldown is how long an open circuit blocks forwards before one
	// trial request may probe the peer again (default 5s).
	Cooldown time.Duration
	// HedgeDelay is how long a forward may run before the second-choice
	// rendezvous owner is raced against it (loser cancelled). 0 derives
	// the delay per forward: the sliding-window p95 of observed forward
	// latencies, floored at 50ms, falling back to ForwardTimeout while
	// the window is empty. Negative disables hedging (failures still
	// fail over to the second choice before degrading to local compute).
	HedgeDelay time.Duration
	// ReplicaBudget bounds hot-payload replication: the total bytes of
	// remote-owner payloads this node admits for write-through to its
	// own durable cache tier, so a later owner loss serves those keys
	// from local disk instead of recomputing. 0 → 1 GiB; negative
	// disables replication (forwarded payloads stay memory-only).
	ReplicaBudget int64
	// HTTPClient performs all fleet HTTP (nil → a plain http.Client).
	// Tests wrap a chaos.Transport here to inject partitions.
	HTTPClient *http.Client
	// Logger receives fallback and circuit-transition events as
	// structured JSON records carrying the trace ID of the affected
	// submission (nil = silent).
	Logger *tlog.Logger
}

func (o *Options) fill() {
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 2 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ForwardTimeout
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.ReplicaBudget == 0 {
		o.ReplicaBudget = 1 << 30
	}
}

// normalizeNode canonicalizes a node URL so equal nodes spell equally
// fleet-wide (scheme+host, no trailing slash).
func normalizeNode(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("fleet: node URL %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("fleet: node URL %q: want http(s)://host[:port]", raw)
	}
	if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("fleet: node URL %q: must be a bare base URL", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// peer is one remote node: its typed client and its health state.
type peer struct {
	name    string
	client  *service.Client
	breaker *breaker

	probes, probeFailures     atomic.Uint64
	forwards, forwardFailures atomic.Uint64
}

// view is one immutable membership snapshot: the sorted node set, the
// peer table, and the version that stamps it. The forwarder swaps
// views atomically (copy-on-write), so every reader — Owner, the
// forward path, the prober, the metrics samplers, /healthz — sees one
// consistent membership with no locks on the hot path.
type view struct {
	version uint64
	nodes   []string // all node names (self + peers), sorted
	peers   map[string]*peer
}

// Forwarder is the peer-routing fabric: it implements
// service.Forwarder over rendezvous hashing, per-peer circuit
// breakers, hedged forwarding, and local-compute degradation.
// Construct with New, stop the prober with Close.
type Forwarder struct {
	self  string
	opts  Options
	httpc *http.Client

	// live is the current membership view; mu serializes mutations
	// (readers never take it).
	live atomic.Pointer[view]
	mu   sync.Mutex

	localOwned atomic.Uint64 // keys this node owns, computed locally
	forwarded  atomic.Uint64 // keys served by a remote peer
	degraded   atomic.Uint64 // remote-owned keys served by local fallback

	hedge hedgeState
	rep   replicator

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a forwarder and starts its health prober (when
// Options.ProbeInterval is set). Self must be present; Peers may
// repeat or include Self (deduplicated). A fleet of one — no peers —
// is valid and serves everything locally (and may grow via
// AddPeer/Join later).
func New(opts Options) (*Forwarder, error) {
	opts.fill()
	self, err := normalizeNode(opts.Self)
	if err != nil {
		return nil, fmt.Errorf("fleet: -self: %w", err)
	}
	httpc := opts.HTTPClient
	if httpc == nil {
		// Deliberately not http.DefaultClient: fleet traffic must never
		// inherit global transport tweaks, and streaming is unused here so
		// per-call contexts are the only timeout source.
		httpc = &http.Client{}
	}
	f := &Forwarder{
		self:  self,
		opts:  opts,
		httpc: httpc,
		stopc: make(chan struct{}),
	}
	f.hedge.window.init(hedgeWindowSize)
	f.rep.budget = opts.ReplicaBudget
	v := &view{
		version: 1,
		nodes:   []string{self},
		peers:   make(map[string]*peer),
	}
	for _, raw := range opts.Peers {
		name, err := normalizeNode(raw)
		if err != nil {
			return nil, err
		}
		if name == self {
			continue
		}
		if _, dup := v.peers[name]; dup {
			continue
		}
		v.peers[name] = f.newPeer(name)
		v.nodes = append(v.nodes, name)
	}
	sort.Strings(v.nodes)
	f.live.Store(v)
	if opts.ProbeInterval > 0 {
		// The prober starts even for a fleet of one: membership is
		// dynamic, so peers may appear after boot.
		f.wg.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// newPeer builds the typed client and breaker for one remote node.
func (f *Forwarder) newPeer(name string) *peer {
	c := service.NewClient(name)
	c.HTTPClient = f.httpc
	// The forwarder's degradation policy *is* the retry policy: one
	// attempt per call, fail fast, fall back to local compute. The
	// forwarded-once marker keeps a misconfigured ring from looping.
	c.Retries = -1
	c.PollInterval = f.opts.PollInterval
	c.Header = http.Header{
		service.HeaderNoForward: []string{"1"},
		"X-Client-ID":           []string{"fleet:" + f.self},
	}
	return &peer{
		name:    name,
		client:  c,
		breaker: newBreaker(f.opts.FailureThreshold, f.opts.Cooldown),
	}
}

// Close stops the health prober. In-flight forwards finish on their
// own deadlines.
func (f *Forwarder) Close() {
	f.stopOnce.Do(func() { close(f.stopc) })
	f.wg.Wait()
}

// Self returns this node's canonical name.
func (f *Forwarder) Self() string { return f.self }

// Nodes returns every node name (self included), sorted, from the
// current membership view.
func (f *Forwarder) Nodes() []string {
	v := f.live.Load()
	return append([]string(nil), v.nodes...)
}

// rendezvousScore hashes one (node, key) pair for highest-random-
// weight routing.
func rendezvousScore(node string, keyb []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write(keyb)
	return h.Sum64()
}

// keyBytes is a key's canonical hashing form.
func keyBytes(key uint64) [8]byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	return b
}

// owner maps a cache key to its owning node within one view: every
// node scores the (node, key) pair and the highest score owns the key
// (ties break to the lexicographically smaller name). All nodes
// holding the same view agree on every owner with no coordination, and
// removing a node reassigns only that node's keys.
func (v *view) owner(key uint64) string {
	keyb := keyBytes(key)
	owner, best := "", uint64(0)
	for _, n := range v.nodes {
		if s := rendezvousScore(n, keyb[:]); owner == "" || s > best || (s == best && n < owner) {
			owner, best = n, s
		}
	}
	return owner
}

// ranked returns every node ordered by descending rendezvous score for
// key: ranked[0] is the owner, ranked[1] the node the key would move
// to if the owner left — the hedge path's second choice.
func (v *view) ranked(key uint64) []string {
	keyb := keyBytes(key)
	type scored struct {
		name  string
		score uint64
	}
	ss := make([]scored, len(v.nodes))
	for i, n := range v.nodes {
		ss[i] = scored{n, rendezvousScore(n, keyb[:])}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].name < ss[j].name
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name
	}
	return out
}

// Owner maps a cache key to its owning node by rendezvous (highest
// random weight) hashing over the current membership view.
func (f *Forwarder) Owner(key uint64) string {
	return f.live.Load().owner(key)
}

// log returns the structured logger (nil-safe: a nil Options.Logger
// yields a no-op logger) with the fleet subsystem field bound.
func (f *Forwarder) log() *tlog.Logger {
	return f.opts.Logger
}

// ExecuteSweep implements service.Forwarder: serve the key from its
// owner — hedging to the second-choice rendezvous owner when the owner
// is slow or failing — or degrade, byte-identically, to local compute
// when no remote choice can serve it. A context already cancelled by
// the caller is never blamed on a peer.
//
// The routing decision is observable three ways, all fed here: the
// serves/hedge/replication counters (/metrics, /healthz), a fleet.*
// span on the submission's trace when ctx carries one, and a
// structured log record for every degraded serve.
func (f *Forwarder) ExecuteSweep(ctx context.Context, key uint64, req service.SweepRequest, local func(context.Context) ([]byte, error)) ([]byte, service.ServeInfo, error) {
	v := f.live.Load()
	ranked := v.ranked(key)
	owner := ranked[0]
	if owner == f.self {
		f.localOwned.Add(1)
		telemetry.Record(ctx, "fleet.local", map[string]string{
			"key": service.FormatKey(key),
		})
		payload, err := local(ctx)
		return payload, service.ServeInfo{ServedBy: f.self}, err
	}
	primary := v.peers[owner]
	// The second choice is the node the key would move to if the owner
	// left the fleet. When that is self, local compute *is* the second
	// choice, and the plain degradation path covers it.
	var second *peer
	if len(ranked) > 2 && ranked[1] != f.self {
		second = v.peers[ranked[1]]
	}

	payload, served, err := f.forward(ctx, req, primary, second)
	if err == nil {
		f.forwarded.Add(1)
		info := service.ServeInfo{
			ServedBy: served.name,
			// Admit the verified payload for write-through to this node's
			// durable cache tier while the replication budget lasts, so a
			// later owner loss serves it from local disk (sweep_runs 0).
			Replicated: f.rep.admit(int64(len(payload))),
		}
		telemetry.Record(ctx, "fleet.forward", map[string]string{
			"key": service.FormatKey(key), "owner": owner, "served_by": served.name,
		})
		return payload, info, nil
	}
	if ctx.Err() != nil {
		// The job was cancelled (or the manager is shutting down): not a
		// peer fault, and nothing left to serve.
		return nil, service.ServeInfo{}, ctx.Err()
	}
	reason := "forward_failed"
	if errors.Is(err, errOpenCircuit) {
		reason = "open_circuit"
	}
	f.degraded.Add(1)
	telemetry.Record(ctx, "fleet.degrade", map[string]string{
		"key": service.FormatKey(key), "owner": owner, "reason": reason,
	})
	f.log().WithTrace(ctx).Warn("owner unavailable; serving degraded from local compute",
		tlog.F("subsys", "fleet"), tlog.F("owner", owner), tlog.F("reason", reason),
		tlog.F("key", service.FormatKey(key)), tlog.Err(err))
	payload, lerr := local(ctx)
	return payload, service.ServeInfo{ServedBy: f.self, Degraded: true}, lerr
}

// fetch drives one remote execution: submit, poll to terminal, fetch
// the verified payload. Every call runs under the hedging deadline; a
// single failed call fails the fetch — retrying is the degradation
// path's job, not this one's.
func (f *Forwarder) fetch(ctx context.Context, p *peer, req service.SweepRequest) ([]byte, error) {
	p.forwards.Add(1)
	// The owner picks its own fleet size; the submitter's parallelism
	// hint is meaningless on another node's hardware.
	req.Workers = 0

	var sub service.SubmitResponse
	err := f.call(ctx, func(cctx context.Context) error {
		var serr error
		sub, serr = p.client.Submit(cctx, req)
		return serr
	})
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", p.name, err)
	}

	// Poll rather than stream: every round trip gets its own deadline,
	// so a peer that accepts the job and then black-holes is detected
	// within one poll instead of holding a stream open forever.
	for {
		var st service.JobStatus
		err := f.call(ctx, func(cctx context.Context) error {
			var serr error
			st, serr = p.client.Status(cctx, sub.ID)
			return serr
		})
		if err != nil {
			return nil, fmt.Errorf("status of %s on %s: %w", sub.ID, p.name, err)
		}
		switch st.State {
		case service.StateDone:
			var payload []byte
			err := f.call(ctx, func(cctx context.Context) error {
				var rerr error
				payload, rerr = p.client.Result(cctx, sub.ID)
				return rerr
			})
			if err != nil {
				return nil, fmt.Errorf("result of %s from %s: %w", sub.ID, p.name, err)
			}
			return payload, nil
		case service.StateFailed:
			return nil, fmt.Errorf("%s on %s failed remotely: %s", sub.ID, p.name, st.Error)
		case service.StateCancelled:
			return nil, fmt.Errorf("%s on %s was cancelled remotely", sub.ID, p.name)
		}
		select {
		case <-time.After(f.opts.PollInterval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// call runs one HTTP round trip under the hedging deadline.
func (f *Forwarder) call(ctx context.Context, fn func(context.Context) error) error {
	cctx, cancel := context.WithTimeout(ctx, f.opts.ForwardTimeout)
	defer cancel()
	return fn(cctx)
}

// ErrNotPeer is returned by PeerState for unknown node names.
var ErrNotPeer = errors.New("fleet: no such peer")

// PeerState reports a peer's current circuit state (tests, debugging).
func (f *Forwarder) PeerState(name string) (string, error) {
	p, ok := f.live.Load().peers[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotPeer, name)
	}
	return p.breaker.State(), nil
}

// RegisterMetrics surfaces the forwarder's routing, hedge, replication
// and peer-health counters in a telemetry registry as sampler-backed
// families — the very atomics /healthz's fleet block reads, so the two
// surfaces agree by construction.
func (f *Forwarder) RegisterMetrics(r *telemetry.Registry) {
	r.CounterSampler("hbmvolt_fleet_serves_total",
		"Sweep executions by routing outcome: local (this node owned the key), forwarded (served by a remote peer, hedges included), degraded (no remote choice reachable; computed locally, byte-identical).",
		[]string{"mode"}, func() []telemetry.Sample {
			return []telemetry.Sample{
				{Labels: []string{"degraded"}, Value: float64(f.degraded.Load())},
				{Labels: []string{"forwarded"}, Value: float64(f.forwarded.Load())},
				{Labels: []string{"local"}, Value: float64(f.localOwned.Load())},
			}
		})
	r.GaugeSampler("hbmvolt_fleet_membership_version",
		"Version of the copy-on-write membership view; bumps on every AddPeer/RemovePeer (admin API or -join).",
		nil, func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(f.live.Load().version)}}
		})
	r.GaugeSampler("hbmvolt_fleet_nodes",
		"Nodes in the current membership view, self included.",
		nil, func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(len(f.live.Load().nodes))}}
		})
	r.CounterSampler("hbmvolt_fleet_hedges_total",
		"Hedged forwards by outcome: win (second-choice owner served), loss (primary served after the hedge launched), failed (both choices failed; serve degraded).",
		[]string{"outcome"}, func() []telemetry.Sample {
			return []telemetry.Sample{
				{Labels: []string{"failed"}, Value: float64(f.hedge.failed.Load())},
				{Labels: []string{"loss"}, Value: float64(f.hedge.losses.Load())},
				{Labels: []string{"win"}, Value: float64(f.hedge.wins.Load())},
			}
		})
	r.CounterSampler("hbmvolt_fleet_replicated_payloads_total",
		"Remote-owner payloads admitted for write-through to the local durable cache tier (hot-payload replication).",
		nil, func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(f.rep.payloads.Load())}}
		})
	r.CounterSampler("hbmvolt_fleet_replicated_bytes_total",
		"Bytes of remote-owner payloads admitted for write-through (bounded by the replication byte budget).",
		nil, func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(f.rep.bytes.Load())}}
		})
	r.CounterSampler("hbmvolt_fleet_replica_skipped_total",
		"Forwarded payloads not replicated because the byte budget was exhausted (or replication disabled).",
		nil, func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(f.rep.skipped.Load())}}
		})
	perPeer := func(get func(*peer) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			v := f.live.Load()
			var out []telemetry.Sample
			for _, n := range v.nodes { // sorted; stable exposition order
				if p, ok := v.peers[n]; ok {
					out = append(out, telemetry.Sample{Labels: []string{p.name}, Value: get(p)})
				}
			}
			return out
		}
	}
	r.CounterSampler("hbmvolt_fleet_peer_forwards_total",
		"Forward attempts per peer.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.forwards.Load()) }))
	r.CounterSampler("hbmvolt_fleet_peer_forward_failures_total",
		"Forward attempts per peer that failed.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.forwardFailures.Load()) }))
	r.CounterSampler("hbmvolt_fleet_peer_probes_total",
		"Active /healthz probes per peer.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.probes.Load()) }))
	r.CounterSampler("hbmvolt_fleet_peer_probe_failures_total",
		"Active /healthz probes per peer that failed.", []string{"peer"},
		perPeer(func(p *peer) float64 { return float64(p.probeFailures.Load()) }))
	r.GaugeSampler("hbmvolt_fleet_peer_circuit_state",
		"Per-peer circuit breaker state: 0 closed, 1 half-open, 2 open.", []string{"peer"},
		perPeer(func(p *peer) float64 {
			switch p.breaker.State() {
			case circuitHalfOpen:
				return 1
			case circuitOpen:
				return 2
			}
			return 0
		}))
}
