package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"hbmvolt/internal/fleet"
	"hbmvolt/internal/service"
	tlog "hbmvolt/internal/telemetry/log"
)

// testLogWriter forwards the daemon's structured records to t.Logf.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *tlog.Logger {
	return tlog.New(testLogWriter{t}, tlog.LevelDebug)
}

func TestOptionsValidate(t *testing.T) {
	base := options{
		addr: "127.0.0.1:0", workers: 2, queue: 16, cache: 256,
		maxJobs: 1024, fleet: 2, drainTimeout: time.Second,
	}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"defaults", func(o *options) {}, ""},
		{"zero workers", func(o *options) { o.workers = 0 }, ">= 1"},
		{"zero queue", func(o *options) { o.queue = 0 }, ">= 1"},
		{"zero cache", func(o *options) { o.cache = 0 }, ">= 1"},
		{"negative rate", func(o *options) { o.rate = -1 }, "-rate"},
		{"rate without burst", func(o *options) { o.rate = 2; o.burst = 0 }, "-burst"},
		{"rate with burst", func(o *options) { o.rate = 2; o.burst = 4 }, ""},
		{"disk bound without dir", func(o *options) { o.diskMax = 1 << 20 }, "-cache-dir"},
		{"disk bound with dir", func(o *options) { o.diskMax = 1 << 20; o.cacheDir = "/tmp/x" }, ""},
		{"negative disk bound", func(o *options) { o.diskMax = -1 }, "-cache-disk-bytes"},
		{"zero drain timeout", func(o *options) { o.drainTimeout = 0 }, "-drain-timeout"},
		{"peers without self", func(o *options) { o.peers = []string{"http://n2:1"} }, "-self"},
		{"join without self", func(o *options) { o.join = []string{"http://n2:1"} }, "-self"},
		{"self without peers", func(o *options) { o.self = "http://n1:1" }, "-peers"},
		{"join instead of peers", func(o *options) {
			o.self = "http://n1:1"
			o.join = []string{"http://n2:1"}
			o.forwardTimeout = time.Second
		}, ""},
		{"fleet ok", func(o *options) {
			o.self = "http://n1:1"
			o.peers = []string{"http://n2:1"}
			o.forwardTimeout = time.Second
		}, ""},
		{"fleet zero forward timeout", func(o *options) {
			o.self = "http://n1:1"
			o.peers = []string{"http://n2:1"}
		}, "-forward-timeout"},
		{"fleet negative probe interval", func(o *options) {
			o.self = "http://n1:1"
			o.peers = []string{"http://n2:1"}
			o.forwardTimeout = time.Second
			o.probeInterval = -time.Second
		}, "-probe-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error mentioning %q", err, tc.wantErr)
			}
		})
	}
}

// startDaemon builds a daemon on an ephemeral port and serves it until
// the returned cancel function is called; done receives serve's error.
func startDaemon(t *testing.T, o options) (client *service.Client, cancel context.CancelFunc, done chan error) {
	t.Helper()
	o.logger = testLogger(t)
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- d.serve(ctx, ln) }()
	return service.NewClient("http://" + ln.Addr().String()), cancelCtx, done
}

func testOptions() options {
	return options{
		addr: "127.0.0.1:0", workers: 1, queue: 16, cache: 256,
		maxJobs: 64, fleet: 1, drainTimeout: 30 * time.Second,
	}
}

func smokeSweep() service.SweepRequest {
	return service.SweepRequest{
		Kind: service.KindReliability, Scale: 1024, Ports: []int{0},
		Patterns: []string{"all1"}, Grid: []float64{0.90}, Batch: 1,
	}
}

func waitServe(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonCacheDirWiring is the -cache-dir flag's end-to-end check: a
// sweep computed by one daemon process is recovered and served — not
// recomputed — by the next daemon over the same directory.
func TestDaemonCacheDirWiring(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.cacheDir = dir

	c, cancel, done := startDaemon(t, o)
	ctx := context.Background()
	sub, err := c.Submit(ctx, smokeSweep())
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, sub.ID); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	payload, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	waitServe(t, done)

	c2, cancel2, done2 := startDaemon(t, o)
	defer func() { cancel2(); waitServe(t, done2) }()
	h, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.DiskCache == nil || h.DiskCache.Recovered != 1 {
		t.Fatalf("restarted daemon disk cache = %+v, want 1 recovered entry", h.DiskCache)
	}
	sub2, err := c2.Submit(ctx, smokeSweep())
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c2.Wait(ctx, sub2.ID); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	payload2, err := c2.Result(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(payload2) {
		t.Fatal("restarted daemon served different bytes")
	}
	h, err = c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.SweepRuns != 0 {
		t.Fatalf("restarted daemon recomputed: sweep_runs = %d, want 0", h.SweepRuns)
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" http://n1:1, ,http://n2:1,")
	if len(got) != 2 || got[0] != "http://n1:1" || got[1] != "http://n2:1" {
		t.Fatalf("splitPeers = %q, want the two URLs with blanks dropped", got)
	}
	if splitPeers("") != nil {
		t.Fatal("empty -peers must parse to no peers")
	}
}

// TestDaemonFleetWiring boots two complete daemons in peer mode — the
// -self/-peers path end to end — submits a sweep to the node that does
// NOT own its key, and checks the owner computed it, the serve marker
// says so, and /healthz carries the fleet block.
func TestDaemonFleetWiring(t *testing.T) {
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	clients := make([]*service.Client, 2)
	for i := range lns {
		o := testOptions()
		o.logger = testLogger(t)
		o.self = urls[i]
		o.peers = urls
		o.forwardTimeout = 2 * time.Second
		o.probeInterval = 0 // passive only: no probe goroutines in this test
		if err := o.validate(); err != nil {
			t.Fatal(err)
		}
		d, err := newDaemon(o)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		ln := lns[i]
		go func() { done <- d.serve(ctx, ln) }()
		t.Cleanup(func() { cancel(); waitServe(t, done) })
		clients[i] = service.NewClient(urls[i])
	}

	// Route the request like the daemons will, then submit it to the
	// other node so the serve has to cross the fleet.
	router, err := fleet.New(fleet.Options{Self: urls[0], Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	req := smokeSweep()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	key, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	owner := router.Owner(key)
	submitTo := 0
	if owner == urls[0] {
		submitTo = 1
	}

	ctx := context.Background()
	sub, err := clients[submitTo].Submit(ctx, smokeSweep())
	if err != nil {
		t.Fatal(err)
	}
	if st, err := clients[submitTo].Wait(ctx, sub.ID); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	st, err := clients[submitTo].Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.ServedBy != owner || st.Degraded {
		t.Fatalf("status served_by=%q degraded=%v, want healthy serve by owner %s", st.ServedBy, st.Degraded, owner)
	}
	h, err := clients[submitTo].Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fleet == nil {
		t.Fatal("/healthz has no fleet block in fleet mode")
	}
}

// TestDaemonJoinWiring boots a two-node fleet statically, then a third
// daemon with only -self and -join: the joiner must announce itself to
// the seeds and adopt their node set, so all three converge on one
// membership view without any restart.
func TestDaemonJoinWiring(t *testing.T) {
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	boot := func(i int, mutate func(*options)) {
		o := testOptions()
		o.logger = testLogger(t)
		o.self = urls[i]
		o.forwardTimeout = 2 * time.Second
		o.probeInterval = 0
		mutate(&o)
		if err := o.validate(); err != nil {
			t.Fatal(err)
		}
		d, err := newDaemon(o)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		ln := lns[i]
		go func() { done <- d.serve(ctx, ln) }()
		t.Cleanup(func() { cancel(); waitServe(t, done) })
	}
	boot(0, func(o *options) { o.peers = urls[:2] })
	boot(1, func(o *options) { o.peers = urls[:2] })
	boot(2, func(o *options) { o.join = urls[:2] })

	membership := func(url string) (fleet.Membership, error) {
		var m fleet.Membership
		resp, err := http.Get(url + "/v1/fleet/peers")
		if err != nil {
			return m, err
		}
		defer resp.Body.Close()
		return m, json.NewDecoder(resp.Body).Decode(&m)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		converged := true
		for _, url := range urls {
			m, err := membership(url)
			if err != nil || len(m.Nodes) != 3 {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			for _, url := range urls {
				m, err := membership(url)
				t.Logf("%s: %+v (%v)", url, m, err)
			}
			t.Fatal("fleet never converged on 3 nodes after -join")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The seeds' views were version-bumped by the announcement; the
	// joiner bumped twice (one AddPeer per adopted seed).
	if m, err := membership(urls[0]); err != nil || m.Version != 2 {
		t.Fatalf("seed membership = %+v (%v), want version 2", m, err)
	}
}

// TestDaemonSignalDrain exercises the production shutdown path against
// a live listener: SIGTERM (via the same signal.NotifyContext wiring
// main uses) triggers a graceful drain in which an in-flight sweep
// still completes and is observable by its client.
func TestDaemonSignalDrain(t *testing.T) {
	o := testOptions()
	o.logger = testLogger(t)
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- d.serve(ctx, ln) }()
	c := service.NewClient("http://" + ln.Addr().String())

	sub, err := c.Submit(context.Background(), service.SweepRequest{
		Kind: service.KindReliability, Scale: 2048, Ports: []int{0, 1},
		Patterns: []string{"all1", "all0"}, Grid: []float64{0.90, 0.89, 0.88}, Batch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Follow the job's event stream; the first delivered event proves the
	// stream is an established in-flight handler before the signal lands.
	// (A connection attempted after Shutdown would just be refused — the
	// drain contract is about work already in flight.)
	events := make(chan service.Event, 64)
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- c.Stream(context.Background(), sub.ID, func(e service.Event) error {
			events <- e
			return nil
		})
	}()
	var last service.Event
	select {
	case last = <-events:
	case <-time.After(30 * time.Second):
		t.Fatal("no event arrived on the stream")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitServe(t, done)

	// The drain kept the stream alive to the sweep's terminal event: the
	// handler ended cleanly and the last event is "done", not a cut.
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("stream cut during drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream never finished during drain")
	}
	for {
		select {
		case e := <-events:
			last = e
			continue
		default:
		}
		break
	}
	if last.Type != string(service.StateDone) {
		t.Fatalf("stream ended on %q, want %q (drain should finish the sweep)", last.Type, service.StateDone)
	}
}
