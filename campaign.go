package hbmvolt

import (
	"context"
	"fmt"
	"io"

	"hbmvolt/internal/campaign"
	"hbmvolt/internal/core"
	"hbmvolt/internal/report"
	"hbmvolt/internal/service"
)

// Campaign re-exports: a campaign is a declarative multi-scenario
// experiment spec executed through the sweep service's job manager. See
// internal/campaign for the spec format and determinism contract.
type (
	// CampaignSpec is a declarative experiment campaign.
	CampaignSpec = campaign.Spec
	// CampaignScenario is one experiment family within a campaign.
	CampaignScenario = campaign.Scenario
	// CampaignOptions parameterizes campaign execution.
	CampaignOptions = campaign.Options
	// CampaignResult is a completed campaign run.
	CampaignResult = campaign.Result
	// CampaignManifest is the deterministic campaign summary.
	CampaignManifest = campaign.Manifest
)

// LoadCampaignSpec reads a campaign spec file, or resolves a built-in
// campaign name ("paper-repro"; smoke selects its smoke-scale variant).
func LoadCampaignSpec(specArg string, smoke bool) (CampaignSpec, error) {
	return campaign.LoadOrBuiltin(specArg, smoke)
}

// PaperReproCampaign returns the built-in campaign regenerating the
// paper's full result family.
func PaperReproCampaign(smoke bool) CampaignSpec { return campaign.PaperRepro(smoke) }

// RunCampaign normalizes and executes a campaign on a private job
// manager. The manifest and artifacts are byte-identical across runs
// and across Jobs/Fleet settings.
func RunCampaign(ctx context.Context, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Run(ctx, spec, opts)
}

// RenderCampaignResult writes the human-readable figure suite of a
// completed campaign: each cell's payload is decoded and rendered with
// the same renderers the System.RenderFigN methods use, so a campaign
// covering the paper's scenarios reproduces the figure output of the
// legacy entry points byte for byte.
func RenderCampaignResult(w io.Writer, res *CampaignResult) error {
	for _, sr := range res.Scenarios {
		for _, cr := range sr.Cells {
			fmt.Fprintf(w, "===== %s", sr.Name)
			if len(sr.Cells) > 1 {
				fmt.Fprintf(w, " [cell %d]", cr.Cell.Index)
			}
			fmt.Fprintln(w, " =====")
			env, err := service.DecodeResult(cr.Payload)
			if err != nil {
				return fmt.Errorf("scenario %q cell %d: %w", sr.Name, cr.Cell.Index, err)
			}
			if err := renderEnvelope(w, env); err != nil {
				return fmt.Errorf("scenario %q cell %d: %w", sr.Name, cr.Cell.Index, err)
			}
		}
	}
	return nil
}

// renderEnvelope dispatches one decoded result to its figure renderer.
func renderEnvelope(w io.Writer, env *service.Envelope) error {
	switch {
	case env.Power != nil:
		if err := renderFig2(w, env.Request.Grid, env.Request.PortCounts, env.Power); err != nil {
			return err
		}
		return renderFig3(w, env.Request.Grid, env.Request.PortCounts, env.Power)
	case env.FaultMap != nil:
		if err := renderFig4(w, env.FaultMap.Curves); err != nil {
			return err
		}
		if err := renderFig5(w, env.FaultMap.Fig5); err != nil {
			return err
		}
		return renderFig6(w, env.FaultMap.Grid, env.FaultMap.Tolerances, env.FaultMap.Usable)
	case env.ECC != nil:
		return renderECC(w, env.ECC)
	case env.Reliability != nil:
		return renderReliability(w, env.Reliability)
	default:
		return fmt.Errorf("envelope for kind %q carries no result", env.Kind)
	}
}

// renderReliability writes an Algorithm 1 sweep as the per-observation
// fault table (ports and patterns with zero flips omitted).
func renderReliability(w io.Writer, res *ReliabilityResult) error {
	tbl := newReliabilityTable()
	for _, pt := range res.Points {
		if pt.Crashed {
			fmt.Fprintf(w, "  %.2fV: DEVICE CRASHED (power cycle performed)\n", pt.Volts)
			continue
		}
		addReliabilityRows(tbl, pt)
	}
	if tbl.Len() == 0 {
		fmt.Fprintln(w, "  no faults observed")
		return nil
	}
	_, err := tbl.WriteTo(w)
	return err
}

// newReliabilityTable builds the Algorithm 1 observation table header
// shared by the CLI's reliability command and the campaign renderer.
func newReliabilityTable() *report.Table {
	return report.NewTable("volts", "port", "pattern", "mean flips", "bit fault rate", "ci low", "ci high")
}

// addReliabilityRows appends one voltage point's nonzero observations.
func addReliabilityRows(tbl *report.Table, pt core.VoltagePoint) {
	for _, obs := range pt.Observations {
		if obs.MeanFlips == 0 {
			continue
		}
		tbl.AddRow(
			fmt.Sprintf("%.2f", pt.Volts),
			fmt.Sprintf("%d", obs.Port),
			obs.Pattern,
			fmt.Sprintf("%.1f", obs.MeanFlips),
			fmt.Sprintf("%.3g", obs.BitFaultRate),
			fmt.Sprintf("%.1f", obs.Batch.CILow),
			fmt.Sprintf("%.1f", obs.Batch.CIHigh),
		)
	}
}
