// Package telemetry is the repo's dependency-free observability layer:
// a race-safe metrics registry rendered in Prometheus text exposition
// format, and a trace layer (trace IDs + bounded span recorders) that
// follows a sweep submission across coalescing, cache tiers, the enum
// store, and fleet forwards.
//
// Determinism contract: telemetry is strictly write-beside. Nothing in
// this package may ever feed into cache keys, manifests, or payloads —
// instruments observe the data path, they never join it.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (atomic read-modify-write).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a bounded-bucket cumulative histogram (latencies,
// sizes). Buckets are upper bounds in ascending order; observations
// above the last bound land only in the implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies the histogram state for rendering.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.count
}

// LatencyBuckets is the default bucket ladder for duration histograms,
// in seconds: microsecond sweeps through half-minute campaigns.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// SizeBuckets is the default bucket ladder for byte-size histograms:
// 256 B through 16 MiB in powers of four.
func SizeBuckets() []float64 {
	return []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}
}

// Sample is one series emitted by a sampler-backed family: label
// values (matching the family's label names) plus the current value.
// Samplers let existing atomic counters (fleet peers, enum store,
// disk tiers) surface in /metrics without double accounting.
type Sample struct {
	Labels []string
	Value  float64
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one live instrument inside a family.
type series struct {
	labels []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric: fixed type, label schema, and either
// live instrument series or a sampler function.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	bounds     []float64 // histogram families

	mu      sync.Mutex
	series  map[string]*series
	order   []string // insertion-independent sorted render order, rebuilt lazily
	sampler func() []Sample
}

// Registry is a set of metric families rendered together. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup fetches or creates a family, enforcing that a name keeps one
// type and label schema for the registry's lifetime.
func (r *Registry) lookup(name, help, typ string, labelNames []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s%v, was %s%v",
				name, typ, labelNames, f.typ, f.labelNames))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with labels %v, was %v",
					name, labelNames, f.labelNames))
			}
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// get fetches or creates the series for the given label values.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	f.series[key] = s
	f.order = nil
	return s
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, typeCounter, nil, nil).get(nil).c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, typeGauge, nil, nil).get(nil).g
}

// Histogram registers (or fetches) an unlabeled histogram. The first
// registration fixes the bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.lookup(name, help, typeHistogram, nil, bounds).get(nil).h
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, typeCounter, labelNames, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, typeGauge, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, typeHistogram, labelNames, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// CounterSampler registers a counter family whose series are produced
// by fn at render time — the bridge for subsystems that already keep
// their own atomic counters. Re-registering a name replaces the
// sampler (the newest owner of the underlying state wins).
func (r *Registry) CounterSampler(name, help string, labelNames []string, fn func() []Sample) {
	f := r.lookup(name, help, typeCounter, labelNames, nil)
	f.mu.Lock()
	f.sampler = fn
	f.mu.Unlock()
}

// GaugeSampler registers a gauge family whose series are produced by
// fn at render time. Re-registering a name replaces the sampler.
func (r *Registry) GaugeSampler(name, help string, labelNames []string, fn func() []Sample) {
	f := r.lookup(name, help, typeGauge, labelNames, nil)
	f.mu.Lock()
	f.sampler = fn
	f.mu.Unlock()
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value: integral values print without
// an exponent so counters stay human-readable and goldens stable.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a {k="v",...} block, with extra appended last
// (histogram le bounds). Empty input renders nothing.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders the registry in Prometheus text exposition format:
// families sorted by name, series sorted by label values, stable
// across calls so goldens can pin the rendering.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// render writes one family's HELP/TYPE header and all series.
func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	if f.sampler != nil {
		samples := f.sampler()
		f.mu.Unlock()
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].Labels, "\xff") < strings.Join(samples[j].Labels, "\xff")
		})
		for _, s := range samples {
			if len(s.Labels) != len(f.labelNames) {
				continue // malformed sampler output; drop rather than corrupt the exposition
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labelNames, s.Labels, "", ""), formatValue(s.Value))
		}
		return
	}
	if f.order == nil {
		for key := range f.series {
			f.order = append(f.order, key)
		}
		sort.Strings(f.order)
	}
	ordered := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		ordered = append(ordered, f.series[key])
	}
	f.mu.Unlock()

	for _, s := range ordered {
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labelNames, s.labels, "", ""), s.c.Value())
		case typeGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labelNames, s.labels, "", ""), formatValue(s.g.Value()))
		case typeHistogram:
			counts, sum, count := s.h.snapshot()
			var cum uint64
			for i, bound := range f.bounds {
				cum += counts[i]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labels, "le", formatValue(bound)), cum)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labelNames, s.labels, "le", "+Inf"), count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labelNames, s.labels, "", ""), formatValue(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labelNames, s.labels, "", ""), count)
		}
	}
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
