package faults

import "testing"

// BenchmarkGlobalStuckFraction compares the memoized analytic kernel
// against the direct survival-function computation it caches. The power
// model calls this once per INA226 sample, so the gap is what the rate
// atlas buys every power sweep and figure regeneration.
func BenchmarkGlobalStuckFraction(b *testing.B) {
	b.ReportAllocs()
	m := MustNew(DefaultConfig())
	grid := PaperGrid()
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.GlobalStuckFraction(grid[i%len(grid)])
		}
	})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.computeRates(grid[i%len(grid)], AnyFlip)
		}
	})
}
